// Command pigeon runs spatial query scripts in the Pig-Latin-like
// language of SpatialHadoop's language layer (see internal/pigeon for the
// grammar). Scripts come from a file or stdin:
//
//	pigeon script.pg
//	echo "pts = GENERATE uniform 10000; idx = INDEX pts BY 'grid'; sky = SKYLINE idx; DUMP sky;" | pigeon
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/pigeon"
)

func main() {
	var (
		workers   = flag.Int("workers", 25, "simulated cluster size")
		blockSize = flag.Int64("blocksize", 256<<10, "DFS block size in bytes")
	)
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pigeon:", err)
		os.Exit(1)
	}

	sys := core.New(core.Config{Workers: *workers, BlockSize: *blockSize, Seed: 1})
	in := pigeon.New(sys, os.Stdout)
	if err := in.Exec(string(src)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
