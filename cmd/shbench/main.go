// Command shbench reproduces the paper's evaluation: one experiment per
// table and figure of §10 (plus the SIGMOD'14 system operations and a set
// of ablations). Run a single experiment with -exp fig24, everything with
// -exp all, and list the catalogue with -list.
//
// Usage:
//
//	shbench -list
//	shbench -exp fig22 -scale 0.5
//	shbench -exp all -workers 25 > results.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"spatialhadoop/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (see -list)")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier")
		workers   = flag.Int("workers", 25, "simulated cluster size")
		blockSize = flag.Int64("blocksize", 256<<10, "DFS block size in bytes")
		seed      = flag.Int64("seed", 1, "workload seed")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.Name, e.Title)
		}
		return
	}
	cfg := bench.Config{
		Scale:     *scale,
		Workers:   *workers,
		BlockSize: *blockSize,
		Seed:      *seed,
		W:         os.Stdout,
	}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "shbench:", err)
		os.Exit(1)
	}
}
