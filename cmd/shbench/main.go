// Command shbench reproduces the paper's evaluation: one experiment per
// table and figure of §10 (plus the SIGMOD'14 system operations and a set
// of ablations). Run a single experiment with -exp fig24, everything with
// -exp all, and list the catalogue with -list.
//
// Usage:
//
//	shbench -list
//	shbench -exp fig22 -scale 0.5
//	shbench -exp all -workers 25 > results.txt
//
// Profiling and observability:
//
//	-cpuprofile cpu.pprof   capture a CPU profile of the run
//	-memprofile mem.pprof   capture a heap profile at exit
//	-obsdir obs/            persist job traces (.trace.jsonl) and metric
//	                        snapshots (.metrics.json) next to the tables
//
// Profiles open with `go tool pprof`; traces with chrome://tracing after
// conversion, or directly with any JSONL reader.
//
// Chaos: every experiment accepts the shared seeded fault plan flags
// (-chaos-seed, -chaos-map-fail, -chaos-corrupt, -chaos-straggler, and
// the worker-kill family -chaos-worker-kill / -chaos-kill-phase /
// -chaos-kill-holder / -chaos-kill-budget) and must produce the same
// tables as the fault-free run; only timings move.
//
// Benchmark baseline:
//
//	-benchjson BENCH_hotpath.json   run the hot-path suite (decode cache,
//	                                partitioned shuffle, e2e queries) and
//	                                write machine-readable results
//
// Serving-layer load benchmark:
//
//	-serveload 30s -clients 8       drive the query mix over HTTP against
//	                                an in-process server at three
//	                                concurrency levels (clients/4, clients,
//	                                2x clients); any non-200 or any body
//	                                diverging from its serial oracle fails
//	                                the run
//	-servejson BENCH_serve.json     write the QPS / p50 / p99 trajectory
//	                                as machine-readable JSON
//	-servebaseline BENCH_serve.json fail if any level's p99 exceeds 3x the
//	                                baseline report's matching level
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"spatialhadoop/internal/bench"
	"spatialhadoop/internal/fault"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run (see -list)")
		scale      = flag.Float64("scale", 1.0, "dataset size multiplier")
		workers    = flag.Int("workers", 25, "simulated cluster size")
		blockSize  = flag.Int64("blocksize", 256<<10, "DFS block size in bytes")
		seed       = flag.Int64("seed", 1, "workload seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		obsDir     = flag.String("obsdir", "", "persist job traces and metric snapshots into this directory")
		benchJSON  = flag.String("benchjson", "", "run the hot-path benchmark suite and write JSON results to this file")
		serveLoad  = flag.Duration("serveload", 0, "run the serving-layer load benchmark for this total duration instead of experiments")
		clients    = flag.Int("clients", 8, "mid-level concurrent HTTP clients for -serveload (levels are clients/4, clients, 2x)")
		serveJSON  = flag.String("servejson", "", "write the -serveload QPS/p50/p99 trajectory to this JSON file")
		serveBase  = flag.String("servebaseline", "", "compare the -serveload run against this baseline JSON; fail on >3x p99 regression")
	)
	chaosPlan := fault.PlanFlags(flag.CommandLine)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "shbench:", err)
		os.Exit(1)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.Name, e.Title)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg := bench.Config{
		Scale:     *scale,
		Workers:   *workers,
		BlockSize: *blockSize,
		Seed:      *seed,
		W:         os.Stdout,
		ObsDir:    *obsDir,
		Chaos:     chaosPlan(),
	}
	if *serveLoad > 0 {
		if err := bench.ServeLoad(cfg, *serveLoad, *clients, *serveJSON, *serveBase); err != nil {
			fatal(err)
		}
	} else if *benchJSON != "" {
		if err := bench.WriteHotpathJSON(cfg, *benchJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "shbench: wrote", *benchJSON)
	} else if err := bench.Run(*exp, cfg); err != nil {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		fatal(err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}
