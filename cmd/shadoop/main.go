// Command shadoop is the one-shot SpatialHadoop driver: it stands up a
// simulated cluster, loads a dataset (generated, or read from a text file
// produced by the datagen command), builds the chosen spatial index, runs
// one operation, and reports the answer together with the pruning
// statistics the indexes achieved.
//
// Usage examples:
//
//	shadoop -op skyline -dist clustered -n 500000 -index str+
//	shadoop -op rangequery -rect 2e5,2e5,3e5,3e5 -input pts.csv
//	shadoop -op knn -point 5e5,5e5 -k 10
//	shadoop -op voronoi -n 100000 -index grid
//	shadoop -op union -polygons zips.txt -index grid
//	shadoop -op join -polygons a.txt -polygons2 b.txt -index str+
//	shadoop serve -addr :8080 -n 200000 -index str+
//
// Observability flags:
//
//	-trace out.json    write the final job's trace as Chrome trace_event
//	                   JSON (open in chrome://tracing or ui.perfetto.dev);
//	                   one span per map attempt, shuffle, reduce partition
//	                   and commit
//	-tracejsonl out.jsonl  write the same trace as one span per line
//	-metrics           print the job summary (per-phase times, top-5
//	                   slowest tasks, skewed partitions, histograms) and
//	                   the system metrics (index build and fill stats,
//	                   filter prune ratio, DFS traffic)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

func main() {
	// Subcommand dispatch: "shadoop serve ..." starts the long-running
	// HTTP query server, "shadoop worker ..." a distributed-runtime worker
	// process; everything else is the one-shot driver.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "shadoop serve:", err)
				os.Exit(1)
			}
			return
		case "worker":
			if err := runWorker(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "shadoop worker:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		op        = flag.String("op", "skyline", "rangequery|knn|join|skyline|skyline-os|hull|hull-enhanced|closest|farthest|voronoi|delaunay|ann|plot|union|union-enhanced")
		input     = flag.String("input", "", "points file from datagen (generated when empty)")
		polygons  = flag.String("polygons", "", "polygon file for union/join")
		polygons2 = flag.String("polygons2", "", "second polygon file for join")
		dist      = flag.String("dist", "clustered", "distribution for generated points")
		n         = flag.Int("n", 200000, "generated dataset size")
		indexName = flag.String("index", "str+", "grid|str|str+|quadtree|kdtree|zcurve|hilbert|heap")
		workers   = flag.Int("workers", 25, "simulated cluster size")
		blockSize = flag.Int64("blocksize", 256<<10, "block size in bytes")
		rectStr   = flag.String("rect", "", "range query rectangle minx,miny,maxx,maxy")
		pointStr  = flag.String("point", "", "kNN query point x,y")
		k         = flag.Int("k", 10, "kNN k")
		seed      = flag.Int64("seed", 1, "seed for generated data")
		out       = flag.String("out", "", "output file for -op plot (default plot.png)")
		traceFile = flag.String("trace", "", "write the job trace as Chrome trace_event JSON to this file")
		traceJSL  = flag.String("tracejsonl", "", "write the job trace as JSONL spans to this file")
		metrics   = flag.Bool("metrics", false, "print the job metrics summary and system metrics")
		chaosEv   = flag.String("chaos-events", "", "write the injected fault events as JSONL to this file")
	)
	chaosPlan := fault.PlanFlags(flag.CommandLine)
	mf := registerMasterFlags(flag.CommandLine)
	flag.Parse()

	sys := core.New(core.Config{Workers: *workers, BlockSize: *blockSize, Seed: *seed, Fault: chaosPlan()})

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "shadoop:", err)
		os.Exit(1)
	}

	// -master-listen turns this driver into a master: eligible jobs run on
	// registered worker processes instead of in-process goroutines.
	master, err := mf.start(sys)
	if err != nil {
		fatal(err)
	}
	if master != nil {
		defer master.Stop()
	}
	report := func(what string, rep *mapreduce.Report, wall time.Duration) {
		fmt.Printf("%s: %v wall; %d/%d partitions processed; counters: shuffle=%dB output=%d\n",
			what, wall.Round(time.Millisecond), rep.Splits, rep.SplitsTotal,
			rep.Counters[mapreduce.CounterShuffleBytes], rep.OutputCount)
		if *traceFile != "" && rep.Trace != nil {
			if err := writeTrace(*traceFile, rep.Trace.WriteChromeTrace); err != nil {
				fatal(err)
			}
			fmt.Printf("trace: wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceFile)
		}
		if *traceJSL != "" && rep.Trace != nil {
			if err := writeTrace(*traceJSL, rep.Trace.WriteJSONL); err != nil {
				fatal(err)
			}
			fmt.Printf("trace: wrote %s\n", *traceJSL)
		}
		if *metrics {
			fmt.Println("---- job metrics ----")
			rep.WriteSummary(os.Stdout)
			fmt.Println("---- system metrics ----")
			printSystemMetrics(os.Stdout, sys)
		}
		if *chaosEv != "" {
			if in := sys.Cluster().Injector(); in != nil {
				if err := writeTrace(*chaosEv, in.WriteEventsJSONL); err != nil {
					fatal(err)
				}
				fmt.Printf("chaos: wrote %s (%d fault events)\n", *chaosEv, len(in.Events()))
			}
		}
	}

	needsPoints := map[string]bool{
		"rangequery": true, "knn": true, "skyline": true, "skyline-os": true,
		"hull": true, "hull-enhanced": true, "closest": true, "farthest": true,
		"voronoi": true, "delaunay": true, "ann": true, "plot": true,
	}
	if needsPoints[*op] {
		pts, err := loadOrGeneratePoints(*input, *dist, *n, *seed)
		if err != nil {
			fatal(err)
		}
		if *indexName == "heap" {
			if err := sys.LoadPointsHeap("pts", pts); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %d points as a heap file\n", len(pts))
		} else {
			tech, err := sindex.ParseTechnique(*indexName)
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			f, err := sys.LoadPoints("pts", pts, tech)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("loaded %d points into %d %s partitions in %v\n",
				len(pts), len(f.Index.Cells), tech, time.Since(start).Round(time.Millisecond))
		}
	}

	start := time.Now()
	switch *op {
	case "rangequery":
		rect, err := geomio.DecodeRect(orDefault(*rectStr, "2e5,2e5,3e5,3e5"))
		if err != nil {
			fatal(err)
		}
		res, rep, err := ops.RangeQueryPoints(sys, "pts", rect)
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("range query -> %d points", len(res)), rep, time.Since(start))
	case "knn":
		q, err := geomio.DecodePoint(orDefault(*pointStr, "5e5,5e5"))
		if err != nil {
			fatal(err)
		}
		res, rep, err := ops.KNN(sys, "pts", q, *k)
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("%d-NN of %v", *k, q), rep, time.Since(start))
		for i, p := range res {
			fmt.Printf("  %2d. %v (dist %.2f)\n", i+1, p, p.Dist(q))
		}
	case "skyline":
		sky, rep, err := cg.SkylineSHadoop(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("skyline -> %d points", len(sky)), rep, time.Since(start))
	case "skyline-os":
		sky, rep, err := cg.SkylineOutputSensitive(sys, "pts", true)
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("output-sensitive skyline -> %d points", len(sky)), rep, time.Since(start))
	case "hull":
		hull, rep, err := cg.ConvexHullSHadoop(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("convex hull -> %d vertices", len(hull)), rep, time.Since(start))
	case "hull-enhanced":
		hull, rep, err := cg.ConvexHullEnhanced(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("enhanced convex hull -> %d vertices", len(hull)), rep, time.Since(start))
	case "closest":
		pair, rep, err := cg.ClosestPairSHadoop(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("closest pair %v-%v dist %.4f", pair.P, pair.Q, pair.Dist), rep, time.Since(start))
	case "farthest":
		pair, rep, err := cg.FarthestPairSHadoop(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("farthest pair %v-%v dist %.1f", pair.P, pair.Q, pair.Dist), rep, time.Since(start))
	case "plot":
		img, rep, err := ops.Plot(sys, "pts", ops.PlotConfig{Width: 512, Height: 512})
		if err != nil {
			fatal(err)
		}
		png, err := ops.EncodePlotPNG(img)
		if err != nil {
			fatal(err)
		}
		file := orDefault(*out, "plot.png")
		if err := os.WriteFile(file, png, 0o644); err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("plot -> %s (%d bytes)", file, len(png)), rep, time.Since(start))
	case "ann":
		res, rep, err := ops.AllNearestNeighbors(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("all nearest neighbours -> %d pairs", len(res)), rep, time.Since(start))
	case "delaunay":
		tris, rep, err := cg.DelaunaySHadoop(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("delaunay -> %d triangles", len(tris)), rep, time.Since(start))
	case "voronoi":
		regions, rep, stats, err := cg.VoronoiSHadoop(sys, "pts")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("voronoi -> %d regions", len(regions)), rep, time.Since(start))
		fmt.Printf("  pruning: %d sites in, %d carried after local, %d after V-merge\n",
			stats.Sites, stats.CarriedAfterLocal, stats.CarriedAfterVMerge)
	case "union", "union-enhanced":
		regs, err := loadPolygonFile(*polygons, *n, *seed)
		if err != nil {
			fatal(err)
		}
		tech, err := sindex.ParseTechnique(orDefault(*indexName, "grid"))
		if err != nil {
			fatal(err)
		}
		if _, err := sys.LoadRegions("polys", regs, tech); err != nil {
			fatal(err)
		}
		start = time.Now()
		if *op == "union-enhanced" {
			segs, rep, err := cg.UnionEnhanced(sys, "polys")
			if err != nil {
				fatal(err)
			}
			report(fmt.Sprintf("enhanced union -> %d boundary segments (length %.0f)",
				len(segs), geom.TotalLength(segs)), rep, time.Since(start))
		} else {
			region, rep, err := cg.UnionSHadoop(sys, "polys")
			if err != nil {
				fatal(err)
			}
			report(fmt.Sprintf("union -> %d rings", len(region.Rings)), rep, time.Since(start))
		}
	case "join":
		a, err := loadPolygonFile(*polygons, *n, *seed)
		if err != nil {
			fatal(err)
		}
		b, err := loadPolygonFile(*polygons2, *n/2, *seed+1)
		if err != nil {
			fatal(err)
		}
		tech, err := sindex.ParseTechnique(orDefault(*indexName, "str+"))
		if err != nil {
			fatal(err)
		}
		if _, err := sys.LoadRegions("a", a, tech); err != nil {
			fatal(err)
		}
		if _, err := sys.LoadRegions("b", b, tech); err != nil {
			fatal(err)
		}
		start = time.Now()
		pairs, rep, err := ops.SpatialJoinIndexed(sys, "a", "b")
		if err != nil {
			fatal(err)
		}
		report(fmt.Sprintf("spatial join -> %d pairs", len(pairs)), rep, time.Since(start))
	default:
		fatal(fmt.Errorf("unknown -op %q", *op))
	}

	if err := mf.finish(master); err != nil {
		fatal(err)
	}
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// writeTrace exports a trace with the given writer function to path.
func writeTrace(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printSystemMetrics dumps the system registry: index build and fill
// statistics plus DFS traffic.
func printSystemMetrics(w io.Writer, sys *core.System) {
	snap := sys.Metrics().Snapshot()
	for _, name := range snap.SortedCounterNames() {
		fmt.Fprintf(w, "  %-28s %d\n", name, snap.Counters[name])
	}
	gauges := make([]string, 0, len(snap.Gauges))
	for n := range snap.Gauges {
		gauges = append(gauges, n)
	}
	sort.Strings(gauges)
	for _, n := range gauges {
		fmt.Fprintf(w, "  %-28s %.3f\n", n, snap.Gauges[n])
	}
	hists := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		hists = append(hists, n)
	}
	sort.Strings(hists)
	for _, n := range hists {
		fmt.Fprintf(w, "  %-28s %s\n", n, snap.Histograms[n])
	}
}

// loadOrGeneratePoints reads "x,y" lines from path, or generates points.
func loadOrGeneratePoints(path, dist string, n int, seed int64) ([]geom.Point, error) {
	if path == "" {
		d, err := datagen.ParseDistribution(dist)
		if err != nil {
			return nil, err
		}
		return datagen.Points(d, n, datagen.DefaultArea, seed), nil
	}
	lines, err := readLines(path)
	if err != nil {
		return nil, err
	}
	return geomio.DecodePoints(lines)
}

// loadPolygonFile reads polygon records from path, or generates a
// tessellation of roughly n cells.
func loadPolygonFile(path string, n int, seed int64) ([]geom.Region, error) {
	if path == "" {
		side := 2
		for side*side < n/100+4 {
			side++
		}
		polys := datagen.Tessellation(side, side, datagen.DefaultArea, seed)
		out := make([]geom.Region, len(polys))
		for i, pg := range polys {
			out[i] = geom.RegionOf(pg)
		}
		return out, nil
	}
	lines, err := readLines(path)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Region, 0, len(lines))
	for _, l := range lines {
		rg, err := geomio.DecodeRegion(l)
		if err != nil {
			return nil, err
		}
		out = append(out, rg)
	}
	return out, nil
}

func readLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			lines = append(lines, line)
		}
	}
	return lines, sc.Err()
}
