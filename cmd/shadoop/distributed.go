package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/worker"
)

// This file wires the distributed runtime into the CLI: "shadoop worker"
// runs a worker process, and the -master-listen flag family turns the
// batch driver (or "shadoop serve") into a master that executes eligible
// jobs on registered workers instead of in process.

// masterFlags bundles the master-runtime flags shared by the batch driver
// and the serve subcommand.
type masterFlags struct {
	listen      *string
	minWorkers  *int
	workersWait *time.Duration
	heartbeat   *time.Duration
	lease       *time.Duration
	replication *int
	eventsFile  *string
	hbFile      *string
}

// registerMasterFlags adds the -master-* flags to fs.
func registerMasterFlags(fs *flag.FlagSet) *masterFlags {
	return &masterFlags{
		listen:      fs.String("master-listen", "", "start a master runtime on this address (e.g. 127.0.0.1:7070); eligible jobs run on registered workers"),
		minWorkers:  fs.Int("min-workers", 0, "wait for this many live workers before running (requires -master-listen)"),
		workersWait: fs.Duration("workers-wait", 30*time.Second, "how long to wait for -min-workers"),
		heartbeat:   fs.Duration("heartbeat", 100*time.Millisecond, "worker heartbeat interval"),
		lease:       fs.Duration("lease", 0, "worker lease duration (0 = 10x heartbeat)"),
		replication: fs.Int("replication", 0, "push this many replicas of each input block onto workers so maps read locally (0 = off, all input served by the master)"),
		eventsFile:  fs.String("master-events", "", "write the master's fault events (registrations, lease expiries, kills, re-issues, replica placement) as JSONL to this file"),
		hbFile:      fs.String("heartbeat-log", "", "write one JSONL event per worker heartbeat to this file"),
	}
}

// start launches the master runtime when -master-listen was given, waits
// for -min-workers, and returns the master (nil when not requested).
func (mf *masterFlags) start(sys *core.System) (*mapreduce.Master, error) {
	if *mf.listen == "" {
		if *mf.minWorkers > 0 {
			return nil, fmt.Errorf("-min-workers requires -master-listen")
		}
		return nil, nil
	}
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		Addr:             *mf.listen,
		HeartbeatEvery:   *mf.heartbeat,
		Lease:            *mf.lease,
		Replication:      *mf.replication,
		Metrics:          sys.Metrics(),
		EnableKill:       true, // armed only by a -chaos-worker-kill plan
		RecordHeartbeats: *mf.hbFile != "",
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("master: listening on %s (heartbeat %v)\n", m.Addr(), *mf.heartbeat)
	if *mf.minWorkers > 0 {
		deadline := time.Now().Add(*mf.workersWait)
		for m.LiveWorkers() < *mf.minWorkers {
			if time.Now().After(deadline) {
				m.Stop()
				return nil, fmt.Errorf("master: %d/%d workers registered after %v",
					m.LiveWorkers(), *mf.minWorkers, *mf.workersWait)
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Printf("master: %d workers registered\n", m.LiveWorkers())
	}
	return m, nil
}

// finish writes the requested master-side JSONL artifacts.
func (mf *masterFlags) finish(m *mapreduce.Master) error {
	if m == nil {
		return nil
	}
	if *mf.eventsFile != "" {
		if err := writeTrace(*mf.eventsFile, m.FaultLog().WriteJSONL); err != nil {
			return err
		}
		fmt.Printf("master: wrote %s (%d fault events)\n", *mf.eventsFile, len(m.FaultLog().Events()))
	}
	if *mf.hbFile != "" {
		if err := writeTrace(*mf.hbFile, m.HeartbeatLog().WriteJSONL); err != nil {
			return err
		}
		fmt.Printf("master: wrote %s (%d heartbeats)\n", *mf.hbFile, len(m.HeartbeatLog().Events()))
	}
	return nil
}

// runWorker is the "shadoop worker" subcommand: a worker process that
// serves one master until SIGTERM/SIGINT.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		master = fs.String("master", "", "master RPC address to register with (required)")
		dir    = fs.String("dir", "", "spill directory for intermediate shards (default: a fresh temp dir)")
		tasks  = fs.Int("tasks", 2, "concurrently executing tasks")
		listen = fs.String("listen", "127.0.0.1:0", "shard-serving listen address")
		stasks = fs.Bool("serve-tasks", false, "accept sharded-serving exec calls (pin replica partitions and answer range/kNN fragments)")
		stier  = fs.Int64("serve-tier-bytes", 0, "serving tier budget in bytes (0 = 64 MiB default; only with -serve-tasks)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := worker.Start(worker.Config{Master: *master, Dir: *dir, Tasks: *tasks, Listen: *listen,
		ServeTasks: *stasks, ServeTierBytes: *stier})
	if err != nil {
		return err
	}
	fmt.Printf("worker: id %d serving shards on %s (spill dir %s, %d task slots)\n",
		w.ID(), w.Addr(), w.Dir(), *tasks)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigc
	fmt.Printf("worker: %v: stopping\n", sig)
	w.Stop()
	w.Wait()
	return nil
}
