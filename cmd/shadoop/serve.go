package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
)

// runServe is the "shadoop serve" subcommand: stand up a cluster, load
// the serving corpus (an indexed points file "pts" plus region files "a"
// and "b" for the join endpoint), and serve queries over HTTP until
// SIGTERM/SIGINT triggers a graceful drain.
//
// Endpoints:
//
//	GET /rangequery?file=pts&rect=minx,miny,maxx,maxy   (&explain=1 inlines the execution report)
//	GET /knn?file=pts&point=x,y&k=10
//	GET /join?left=a&right=b
//	GET /plot?file=pts&width=256&height=256   (PNG)
//	GET /healthz                              (503 while draining)
//	GET /metrics                              (Prometheus text exposition)
//	GET /metrics.json                         (JSON registry dump)
//	GET /debug/trace/{id}                     (span tree of a recent request, by X-Trace-Id)
//	GET /debug/partitions                     (hot-partition skew report)
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", ":8080", "HTTP listen address")
		n           = fs.Int("n", 200000, "generated dataset size")
		dist        = fs.String("dist", "clustered", "distribution for generated points")
		indexName   = fs.String("index", "str+", "grid|str|str+|quadtree|kdtree|zcurve|hilbert")
		workers     = fs.Int("workers", 25, "simulated cluster size")
		blockSize   = fs.Int64("blocksize", 256<<10, "block size in bytes")
		seed        = fs.Int64("seed", 1, "seed for generated data")
		cacheSize   = fs.Int("cache", 256, "result cache entries (negative disables)")
		maxInFlight = fs.Int("max-inflight", 4, "jobs executing concurrently")
		queueDepth  = fs.Int("queue", 64, "jobs that may wait for a run slot")
		jobDeadline = fs.Duration("job-deadline", 30*time.Second, "per-job execution deadline (0 = none)")
		memTier     = fs.Int64("memtier-bytes", 0, "in-memory partition tier budget in bytes (0 = 64 MiB default, negative disables)")
		planner     = fs.String("planner", serve.PlannerAuto, "query engine routing: auto|local|mapreduce|sharded")
		engine      = fs.String("engine", "", "alias for -planner (wins when both are set)")
		drainWait   = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		accessLog   = fs.String("accesslog", "", "append one JSON line per request to this file (- for stdout)")
		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); off when empty")
	)
	mf := registerMasterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engine != "" {
		*planner = *engine
	}
	if !serve.ValidPlanner(*planner) {
		return fmt.Errorf("serve: unknown engine %q (want auto, local, mapreduce or sharded)", *planner)
	}

	sys := core.New(core.Config{Workers: *workers, BlockSize: *blockSize, Seed: *seed})

	// -master-listen lets the query server execute MapReduce-planned
	// queries on registered worker processes; its shadoop_mr_* metric
	// families surface through /metrics because the master shares the
	// system registry.
	master, err := mf.start(sys)
	if err != nil {
		return err
	}
	if master != nil {
		defer master.Stop()
		defer mf.finish(master)
	}

	d, err := datagen.ParseDistribution(*dist)
	if err != nil {
		return err
	}
	tech, err := sindex.ParseTechnique(*indexName)
	if err != nil {
		return err
	}
	pts := datagen.Points(d, *n, datagen.DefaultArea, *seed)
	start := time.Now()
	f, err := sys.LoadPoints("pts", pts, tech)
	if err != nil {
		return err
	}
	fmt.Printf("serve: loaded %d points into %d %s partitions in %v\n",
		len(pts), len(f.Index.Cells), tech, time.Since(start).Round(time.Millisecond))

	toRegions := func(pgs []geom.Polygon) []geom.Region {
		out := make([]geom.Region, len(pgs))
		for i, pg := range pgs {
			out[i] = geom.RegionOf(pg)
		}
		return out
	}
	if _, err := sys.LoadRegions("a", toRegions(datagen.Tessellation(8, 8, datagen.DefaultArea, *seed+1)), tech); err != nil {
		return err
	}
	if _, err := sys.LoadRegions("b", toRegions(datagen.Tessellation(7, 7, datagen.DefaultArea, *seed+2)), tech); err != nil {
		return err
	}

	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("accesslog: %w", err)
		}
		defer f.Close()
		logW = f
	}

	srv := serve.New(sys, serve.Config{
		Addr:         *addr,
		CacheSize:    *cacheSize,
		MaxInFlight:  *maxInFlight,
		QueueDepth:   *queueDepth,
		JobDeadline:  *jobDeadline,
		AccessLog:    logW,
		MemTierBytes: *memTier,
		Planner:      *planner,
	})

	if *debugAddr != "" {
		// pprof lives on its own listener so profiling endpoints are never
		// reachable through the query port.
		go func() {
			fmt.Printf("serve: pprof on http://%s/debug/pprof/\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "serve: pprof listener: %v\n", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serve: listening on %s (cache=%d max-inflight=%d queue=%d planner=%s memtier-bytes=%d)\n",
		*addr, *cacheSize, *maxInFlight, *queueDepth, *planner, *memTier)
	hint := *addr
	if strings.HasPrefix(hint, ":") {
		hint = "localhost" + hint
	}
	fmt.Printf("serve: try  curl 'http://%s/rangequery?file=pts&rect=2e5,2e5,3e5,3e5'\n", hint)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case sig := <-sigc:
		fmt.Printf("serve: %v: draining (stop admitting, finish in-flight jobs)\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	// Final metrics flush: the operator-facing summary of the run.
	snap := srv.Metrics().Snapshot()
	fmt.Println("serve: final metrics")
	for _, name := range snap.SortedCounterNames() {
		fmt.Printf("  %-28s %d\n", name, snap.Counters[name])
	}
	fmt.Println("serve: drained cleanly")
	return nil
}
