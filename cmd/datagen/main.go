// Command datagen emits the synthetic datasets of the evaluation (paper
// Fig. 20) as text records: "x,y" lines for points, '|'-separated rings of
// space-separated vertices for polygons. The output feeds the shadoop CLI
// or any external tool.
//
// Usage:
//
//	datagen -type points -dist clustered -n 1000000 > pts.csv
//	datagen -type tessellation -n 2500 -out zips.txt
//	datagen -type polygons -n 10000 -vertices 12
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geomio"
)

func main() {
	var (
		typ      = flag.String("type", "points", "points | polygons | tessellation")
		dist     = flag.String("dist", "uniform", "uniform|gaussian|correlated|anticorrelated|circular|clustered")
		n        = flag.Int("n", 100000, "number of records")
		vertices = flag.Int("vertices", 6, "vertices per polygon (polygons type)")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "", "output file (stdout if empty)")
		areaStr  = flag.String("area", "0,0,1e6,1e6", "generation area minx,miny,maxx,maxy")
	)
	flag.Parse()

	area, err := geomio.DecodeRect(*areaStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen: bad -area:", err)
		os.Exit(1)
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *typ {
	case "points":
		d, err := datagen.ParseDistribution(*dist)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		for _, p := range datagen.Points(d, *n, area, *seed) {
			fmt.Fprintln(w, geomio.EncodePoint(p))
		}
	case "polygons":
		radius := math.Min(area.Width(), area.Height()) / (2 * math.Sqrt(float64(*n)))
		for _, pg := range datagen.RandomPolygons(*n, *vertices, radius*2, area, *seed) {
			fmt.Fprintln(w, geomio.EncodePolygon(pg))
		}
	case "tessellation":
		side := int(math.Ceil(math.Sqrt(float64(*n))))
		for _, pg := range datagen.Tessellation(side, side, area, *seed) {
			fmt.Fprintln(w, geomio.EncodePolygon(pg))
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown -type %q\n", *typ)
		os.Exit(1)
	}
}
