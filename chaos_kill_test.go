// Worker-kill rows of the chaos soak matrix: a seeded decision kills a
// live worker during map execution, during shuffle fetch (the holder of
// finished shards), or during reduce execution — 3 modes x 3 seeds, each
// required to produce output byte-identical to the fault-free in-process
// run, and to replay deterministically. Workers run as goroutines here
// (the real-process variant lives in distributed_test.go); the kill
// harness routes the master's victim pid back onto Worker.Stop, which is
// process death from the runtime's point of view: heartbeats stop, the
// lease expires, spill files vanish.
package spatialhadoop_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/worker"
)

// killMode is one row of the worker-kill matrix.
type killMode struct {
	name          string
	op            string // chaosOps entry to run
	phase         string
	holder        bool
	replicaHolder bool // kill the replica holder of the map split's input
	replication   int  // data-plane replication factor (0 = plane off)
}

func killModes() []killMode {
	return []killMode{
		{name: "during-map", op: "rangequery", phase: mapreduce.TaskMap},
		{name: "during-shuffle-fetch", op: "knn", phase: mapreduce.TaskReduce, holder: true},
		{name: "during-reduce", op: "knn", phase: mapreduce.TaskReduce},
		// Replication 1 makes the victim the *sole* holder of its blocks:
		// the re-issued map must fall back to master reads and the plane
		// must re-replicate the lost blocks onto the survivor.
		{name: "replica-holder", op: "rangequery", phase: mapreduce.TaskMap, replicaHolder: true, replication: 1},
	}
}

func chaosOpByName(t *testing.T, name string) chaosOp {
	t.Helper()
	for _, op := range chaosOps() {
		if op.name == name {
			return op
		}
	}
	t.Fatalf("no chaos op %q", name)
	return chaosOp{}
}

// distChaosRun runs op on a system whose cluster has a master and two
// goroutine workers, under plan, and returns the output records, the
// master's fault log and the system metrics registry.
func distChaosRun(t *testing.T, op chaosOp, tech sindex.Technique, plan fault.Plan, replication int) ([]string, *mapreduce.Report, *fault.Log, *obs.Registry) {
	t.Helper()
	sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 6, Seed: 1, Fault: plan})
	sys.Cluster().SetRetryPolicy(chaosPolicy())

	var mu sync.Mutex
	workers := map[int]*worker.Worker{}
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 5 * time.Millisecond,
		Lease:          50 * time.Millisecond,
		Metrics:        sys.Metrics(),
		Replication:    replication,
		EnableKill:     true,
		KillFn: func(pid int) error {
			mu.Lock()
			w := workers[pid]
			mu.Unlock()
			if w != nil {
				w.Stop()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	for i := 0; i < 2; i++ {
		pid := 2000 + i
		w, err := worker.Start(worker.Config{Master: m.Addr(), Dir: t.TempDir(), Tasks: 2, FakePID: pid})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		workers[pid] = w
		mu.Unlock()
		defer w.Stop()
	}
	deadline := time.Now().Add(time.Second)
	for m.LiveWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not register in time")
		}
		time.Sleep(time.Millisecond)
	}

	op.setup(t, sys, tech)
	rep, err := op.run(sys)
	if err != nil {
		t.Fatalf("%s under %+v: %v", op.name, plan, err)
	}
	// The holder-kill job can finish before the victim's lease expires;
	// hold the master open until the loss is recorded so every cell's
	// fault log carries the full kill -> lease-expiry sequence.
	if plan.WorkerKillRate > 0 {
		deadline := time.Now().Add(2 * time.Second)
		for m.LiveWorkers() > 1 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: the killed worker's lease never expired", op.name)
			}
			time.Sleep(time.Millisecond)
		}
		// The live-worker count drops before the data plane's synchronous
		// re-replication pushes finish; hold the runtime open until they
		// land so the caller's fault-log assertions see them.
		if replication > 0 {
			for countKind(m.FaultLog(), "re-replicate") == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("%s: worker loss triggered no re-replication", op.name)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	out, err := sys.FS().ReadAll(rep.OutputFile)
	if err != nil {
		t.Fatalf("%s: reading %s: %v", op.name, rep.OutputFile, err)
	}
	return out, rep, m.FaultLog(), sys.Metrics()
}

func countKind(l *fault.Log, kind string) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// TestChaosWorkerKill is the worker-kill soak: every mode x seed cell
// must survive the death of a real worker (its spills gone with it) with
// byte-identical output, and replay deterministically.
func TestChaosWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-kill soak is not -short")
	}
	seeds := []int64{1, 2, 3}
	for _, mode := range killModes() {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			op := chaosOpByName(t, mode.op)
			// Fault-free in-process oracle for this op.
			want, _, _ := chaosRun(t, op, sindex.STR, fault.Plan{})
			for _, seed := range seeds {
				plan := fault.Plan{
					Seed:                    seed,
					WorkerKillRate:          1.0,
					WorkerKillPhase:         mode.phase,
					WorkerKillHolder:        mode.holder,
					WorkerKillReplicaHolder: mode.replicaHolder,
					KillBudget:              1,
				}
				cell := fmt.Sprintf("%s-seed%d", mode.name, seed)
				got, _, flog, reg := distChaosRun(t, op, sindex.STR, plan, mode.replication)
				if kills := countKind(flog, "worker-kill"); kills != 1 {
					t.Fatalf("%s: %d worker-kills fired, want exactly 1", cell, kills)
				}
				if countKind(flog, "worker-lost") == 0 {
					t.Fatalf("%s: the killed worker's lease never expired", cell)
				}
				if mode.replicaHolder {
					if countKind(flog, "replicate") == 0 {
						t.Fatalf("%s: no blocks were ever replicated; the data plane was off", cell)
					}
					if countKind(flog, "re-replicate") == 0 {
						t.Fatalf("%s: lost replicas were not re-replicated onto the survivor", cell)
					}
					if reg.Counter(mapreduce.MetricDFSLocalReads)+reg.Counter(mapreduce.MetricDFSRemoteReads) == 0 {
						t.Fatalf("%s: no map input was read through the data plane", cell)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("%s: %d records under worker kill vs %d fault-free", cell, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: record %d diverged under worker kill", cell, i)
					}
				}

				// Deterministic replay: same seed, same output, same kill.
				replay, _, rlog, _ := distChaosRun(t, op, sindex.STR, plan, mode.replication)
				if len(replay) != len(got) {
					t.Fatalf("%s: replay changed output size: %d vs %d", cell, len(replay), len(got))
				}
				for i := range got {
					if replay[i] != got[i] {
						t.Fatalf("%s: replay changed record %d", cell, i)
					}
				}
				if countKind(rlog, "worker-kill") != 1 {
					t.Fatalf("%s: replay fired %d kills, want 1", cell, countKind(rlog, "worker-kill"))
				}
			}
		})
	}
}
