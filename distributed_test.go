// Distributed end-to-end tests with real worker processes: the test
// binary re-executes itself as a worker (SHADOOP_WORKER_MAIN=1), so the
// master/worker runtime is exercised across genuine process boundaries —
// RPC over real sockets, spills on a real filesystem, and SIGKILL
// delivering real process death. The acceptance contract: a range query
// and an indexed spatial join on >=2 worker processes are byte-identical
// to the in-process run, and the job completes when one worker is
// SIGKILLed mid-job, with the re-issue visible in the trace and the
// master's fault log.
package spatialhadoop_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/worker"
)

// TestMain reroutes the re-executed test binary into worker mode. The
// ops package is imported above, so the worker process has the job kinds
// (range-points, knn, spatial-join) registered.
func TestMain(m *testing.M) {
	if os.Getenv("SHADOOP_WORKER_MAIN") == "1" {
		w, err := worker.Start(worker.Config{
			Master:     os.Getenv("SHADOOP_MASTER_ADDR"),
			Dir:        os.Getenv("SHADOOP_WORKER_DIR"),
			Tasks:      2,
			ServeTasks: os.Getenv("SHADOOP_WORKER_SERVE") == "1",
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		_ = w
		select {} // run until the parent kills us
	}
	os.Exit(m.Run())
}

// workerProc is one spawned worker process; exited closes when it dies.
type workerProc struct {
	cmd    *exec.Cmd
	exited chan struct{}
}

// spawnWorkerProcess re-executes the test binary as a worker process.
// extraEnv entries (e.g. SHADOOP_WORKER_SERVE=1) are appended.
func spawnWorkerProcess(t *testing.T, masterAddr string, extraEnv ...string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(append(os.Environ(),
		"SHADOOP_WORKER_MAIN=1",
		"SHADOOP_MASTER_ADDR="+masterAddr,
		"SHADOOP_WORKER_DIR="+t.TempDir(),
	), extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &workerProc{cmd: cmd, exited: make(chan struct{})}
	go func() {
		cmd.Wait()
		close(p.exited)
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		<-p.exited
	})
	return p
}

// dead reports whether the process has exited, within a grace period.
func (p *workerProc) dead(grace time.Duration) bool {
	select {
	case <-p.exited:
		return true
	case <-time.After(grace):
		return false
	}
}

func waitLive(t *testing.T, m *mapreduce.Master, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.LiveWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered in time", m.LiveWorkers(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// distCorpus loads the same dataset into a system: an STR-indexed points
// file and two indexed region files for the join.
func distCorpus(t *testing.T, sys *core.System) {
	t.Helper()
	area := geom.NewRect(0, 0, 20_000, 20_000)
	pts := datagen.Points(datagen.Clustered, 4000, area, 71)
	if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	toRegions := func(pgs []geom.Polygon) []geom.Region {
		out := make([]geom.Region, len(pgs))
		for i, pg := range pgs {
			out[i] = geom.RegionOf(pg)
		}
		return out
	}
	if _, err := sys.LoadRegions("a", toRegions(datagen.Tessellation(6, 6, area, 3)), sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadRegions("b", toRegions(datagen.Tessellation(5, 5, area, 4)), sindex.STR); err != nil {
		t.Fatal(err)
	}
}

func readOutput(t *testing.T, sys *core.System, rep *mapreduce.Report) []string {
	t.Helper()
	out, err := sys.FS().ReadAll(rep.OutputFile)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requireIdentical(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records distributed vs %d in-process", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d diverged:\n distributed: %q\n in-process:  %q", what, i, got[i], want[i])
		}
	}
}

// TestDistributedRealProcesses is the acceptance run: range query and
// indexed join on two real worker processes, byte-identical to the
// in-process execution of the same system configuration.
func TestDistributedRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e is not -short")
	}
	newSys := func() *core.System {
		return core.New(core.Config{Workers: 6, BlockSize: 8 << 10, Seed: 1})
	}

	// In-process oracle.
	ref := newSys()
	distCorpus(t, ref)
	rect := geom.NewRect(2_000, 2_000, 16_000, 16_000)
	_, rangeRep, err := ops.RangeQueryPoints(ref, "pts", rect)
	if err != nil {
		t.Fatal(err)
	}
	wantRange := readOutput(t, ref, rangeRep)
	_, joinRep, err := ops.SpatialJoinIndexed(ref, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	wantJoin := readOutput(t, ref, joinRep)
	_, knnRep, err := ops.KNN(ref, "pts", geom.Pt(10_000, 10_000), 15)
	if err != nil {
		t.Fatal(err)
	}
	wantKNN := readOutput(t, ref, knnRep)

	// Distributed system: master plus two real worker processes.
	sys := newSys()
	distCorpus(t, sys)
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		Lease:          200 * time.Millisecond,
		Metrics:        sys.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	spawnWorkerProcess(t, m.Addr())
	spawnWorkerProcess(t, m.Addr())
	waitLive(t, m, 2)

	_, rep, err := ops.RangeQueryPoints(sys, "pts", rect)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, readOutput(t, sys, rep), wantRange, "range query on real workers")

	_, rep, err = ops.SpatialJoinIndexed(sys, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, readOutput(t, sys, rep), wantJoin, "indexed join on real workers")

	_, rep, err = ops.KNN(sys, "pts", geom.Pt(10_000, 10_000), 15)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, readOutput(t, sys, rep), wantKNN, "knn on real workers")

	if got := sys.Metrics().Counter(mapreduce.MetricWorkersRegistered); got < 2 {
		t.Fatalf("workers registered = %d, want >= 2", got)
	}
}

// TestDistributedSIGKILLMidJob SIGKILLs one of three real worker
// processes at the moment it is assigned a map task. The job must
// complete with byte-identical output, the kill and the resulting worker
// loss must be in the master's fault log, and the trace must show the
// killed task's re-issued attempt winning.
func TestDistributedSIGKILLMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e is not -short")
	}
	newSys := func() *core.System {
		return core.New(core.Config{Workers: 6, BlockSize: 8 << 10, Seed: 1})
	}
	ref := newSys()
	distCorpus(t, ref)
	rect := geom.NewRect(2_000, 2_000, 16_000, 16_000)
	_, rangeRep, err := ops.RangeQueryPoints(ref, "pts", rect)
	if err != nil {
		t.Fatal(err)
	}
	wantRange := readOutput(t, ref, rangeRep)

	sys := newSys()
	distCorpus(t, sys)
	// Arm the real-process kill mode: the first map assignment SIGKILLs
	// its assignee.
	sys.Cluster().SetFault(fault.Plan{
		Seed:            11,
		WorkerKillRate:  1.0,
		WorkerKillPhase: mapreduce.TaskMap,
		KillBudget:      1,
	})
	pol := fault.DefaultRetryPolicy()
	pol.MaxAttempts = 8
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 10 * time.Millisecond
	sys.Cluster().SetRetryPolicy(pol)

	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		Lease:          200 * time.Millisecond,
		Metrics:        sys.Metrics(),
		EnableKill:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	procs := []*workerProc{
		spawnWorkerProcess(t, m.Addr()),
		spawnWorkerProcess(t, m.Addr()),
		spawnWorkerProcess(t, m.Addr()),
	}
	waitLive(t, m, 3)

	_, rep, err := ops.RangeQueryPoints(sys, "pts", rect)
	if err != nil {
		t.Fatalf("range query with SIGKILL mid-job: %v", err)
	}
	requireIdentical(t, readOutput(t, sys, rep), wantRange, "range query surviving SIGKILL")

	kills, losses := 0, 0
	for _, e := range m.FaultLog().Events() {
		switch e.Kind {
		case "worker-kill":
			kills++
		case "worker-lost":
			losses++
		}
	}
	if kills != 1 {
		t.Fatalf("fault log records %d worker-kills, want exactly 1", kills)
	}
	if losses == 0 {
		t.Fatal("fault log records no worker-lost after the SIGKILL")
	}
	if rep.Counters[mapreduce.CounterWorkerLost] == 0 {
		t.Fatal("no dispatch failed by worker death; the SIGKILL hit nothing in-flight")
	}

	// The re-issue is visible in the trace: the killed task's later
	// attempt won after the first was abandoned.
	reissued := false
	for _, s := range rep.Trace.Spans() {
		if s.Phase == obs.PhaseMap && s.Attempt > 0 && s.Outcome == obs.OutcomeOK {
			reissued = true
		}
	}
	if !reissued {
		t.Fatal("trace shows no re-issued map attempt winning after the kill")
	}

	// Exactly one of the three processes actually died, and the master's
	// pool settled on the two survivors.
	dead := 0
	for _, p := range procs {
		if p.dead(500 * time.Millisecond) {
			dead++
		}
	}
	if dead != 1 {
		t.Fatalf("%d worker processes dead, want exactly 1 (the SIGKILL victim)", dead)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.LiveWorkers() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("live workers = %d after the kill, want 2", m.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDistributedLocality is the data plane's acceptance run: with three
// real worker processes and replication 2, a multi-job workload over the
// same input files must read at least half of its map-input bytes from
// local replicas (the counters behind shadoop_dfs_local_reads_total /
// shadoop_dfs_remote_reads_total prove it), stay byte-identical to the
// in-process run, and ship fewer bytes out of the master than the same
// workload with the plane off. With DATAPLANE_ARTIFACT_DIR set, the
// replica-placement and master fault-event logs are written there as
// JSONL (CI uploads them).
func TestDistributedLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e is not -short")
	}
	newSys := func() *core.System {
		return core.New(core.Config{Workers: 6, BlockSize: 8 << 10, Seed: 1})
	}
	rects := []geom.Rect{
		geom.NewRect(2_000, 2_000, 16_000, 16_000),
		geom.NewRect(500, 9_000, 11_000, 19_500),
		geom.NewRect(7_500, 0, 19_000, 8_000),
		geom.NewRect(0, 0, 20_000, 20_000),
	}
	// Several jobs over the same inputs: replicas are pushed once at the
	// first job and reused by the rest, which is where the plane beats
	// master-served reads (those re-ship every split every job).
	runWorkload := func(sys *core.System) [][]string {
		t.Helper()
		var outs [][]string
		for _, rect := range rects {
			_, rep, err := ops.RangeQueryPoints(sys, "pts", rect)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, readOutput(t, sys, rep))
		}
		_, rep, err := ops.KNN(sys, "pts", geom.Pt(10_000, 10_000), 15)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, readOutput(t, sys, rep))
		_, rep, err = ops.SpatialJoinIndexed(sys, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, readOutput(t, sys, rep))
		return outs
	}

	ref := newSys()
	distCorpus(t, ref)
	want := runWorkload(ref)

	startCluster := func(replication int) (*core.System, *mapreduce.Master) {
		sys := newSys()
		distCorpus(t, sys)
		m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
			HeartbeatEvery: 20 * time.Millisecond,
			Lease:          200 * time.Millisecond,
			Metrics:        sys.Metrics(),
			Replication:    replication,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
		for i := 0; i < 3; i++ {
			spawnWorkerProcess(t, m.Addr())
		}
		waitLive(t, m, 3)
		return sys, m
	}

	sys, m := startCluster(2)
	got := runWorkload(sys)
	for i := range want {
		requireIdentical(t, got[i], want[i], fmt.Sprintf("workload job %d with replication 2", i))
	}

	reg := sys.Metrics()
	localBytes := reg.Counter(mapreduce.MetricDFSLocalBytes)
	remoteBytes := reg.Counter(mapreduce.MetricDFSRemoteBytes)
	if localBytes+remoteBytes == 0 {
		t.Fatal("no map-input bytes flowed through the data plane")
	}
	ratio := float64(localBytes) / float64(localBytes+remoteBytes)
	t.Logf("locality: %d local / %d remote map-input bytes (%.0f%% local), %d local / %d nonlocal dispatches",
		localBytes, remoteBytes, 100*ratio,
		reg.Counter(mapreduce.MetricDispatchLocal), reg.Counter(mapreduce.MetricDispatchNonlocal))
	if ratio < 0.5 {
		t.Fatalf("only %.0f%% of map-input bytes were read locally, want >= 50%%", 100*ratio)
	}
	egressRepl := reg.Counter(mapreduce.MetricMasterEgress)

	base, _ := startCluster(0)
	gotBase := runWorkload(base)
	for i := range want {
		requireIdentical(t, gotBase[i], want[i], fmt.Sprintf("workload job %d with the plane off", i))
	}
	egressBase := base.Metrics().Counter(mapreduce.MetricMasterEgress)
	t.Logf("master egress: %d bytes with replication 2 vs %d with the plane off", egressRepl, egressBase)
	if egressRepl >= egressBase {
		t.Fatalf("replication did not cut master egress: %d bytes vs %d with the plane off", egressRepl, egressBase)
	}

	if dir := os.Getenv("DATAPLANE_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		placement := &fault.Log{}
		for _, e := range m.FaultLog().Events() {
			if e.Kind == "replicate" || e.Kind == "re-replicate" {
				placement.Append(e)
			}
		}
		writeLog := func(name string, l *fault.Log) {
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if err := l.WriteJSONL(f); err != nil {
				t.Fatal(err)
			}
		}
		writeLog("placement-events.jsonl", placement)
		writeLog("master-events.jsonl", m.FaultLog())
	}
}
