module spatialhadoop

go 1.22
