// Serve-phase rows of the chaos soak matrix: a seeded decision SIGKILLs
// the rendezvous replica holder of a sharded query's first candidate
// partition after routing is planned but before the scatter launches —
// the worst moment, because the gather must walk the fallback ladder
// (peer holder, then master-local execution) with a dead address at the
// top. Each seed is required to produce responses byte-identical to a
// fault-free local-engine oracle and to replay deterministically.
package spatialhadoop_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/worker"
)

// shardedChaosWorkload is the fixed query mix each run answers: enough
// range rects to hit several partitions plus kNN queries that force the
// two-round protocol.
func shardedChaosWorkload(srvURL string) ([]string, error) {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var outs []string
	get := func(path string, params url.Values) error {
		resp, err := http.Get(srvURL + path + "?" + params.Encode())
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		outs = append(outs, fmt.Sprintf("%d %s", resp.StatusCode, body))
		return nil
	}
	rects := []geom.Rect{
		geom.NewRect(0, 0, 1000, 1000),
		geom.NewRect(100, 100, 400, 500),
		geom.NewRect(600, 50, 950, 700),
		geom.NewRect(250, 600, 750, 990),
	}
	for _, r := range rects {
		params := url.Values{
			"file": {"pts"},
			"rect": {ff(r.MinX) + "," + ff(r.MinY) + "," + ff(r.MaxX) + "," + ff(r.MaxY)},
		}
		if err := get("/rangequery", params); err != nil {
			return nil, err
		}
	}
	for _, kq := range []struct {
		q geom.Point
		k int
	}{{geom.Pt(500, 500), 9}, {geom.Pt(20, 980), 5}, {geom.Pt(990, 10), 17}} {
		params := url.Values{
			"file":  {"pts"},
			"point": {ff(kq.q.X) + "," + ff(kq.q.Y)},
			"k":     {strconv.Itoa(kq.k)},
		}
		if err := get("/knn", params); err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// shardedChaosRun stands up a master with two serve-capable goroutine
// workers (replication 2) under plan, serves the workload through a
// forced-sharded server, and returns the responses, the master's fault
// log and the serving registry snapshot.
func shardedChaosRun(t *testing.T, pts []geom.Point, plan fault.Plan) ([]string, *fault.Log, map[string]int64) {
	t.Helper()
	sys := core.New(core.Config{BlockSize: 4 << 10, Workers: 6, Seed: 1, Fault: plan})

	var mu sync.Mutex
	workers := map[int]*worker.Worker{}
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 5 * time.Millisecond,
		Lease:          50 * time.Millisecond,
		Metrics:        sys.Metrics(),
		Replication:    2,
		EnableKill:     true,
		KillFn: func(pid int) error {
			mu.Lock()
			w := workers[pid]
			mu.Unlock()
			if w != nil {
				w.Stop()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	// Sequential registration (wait for each) keeps worker ids — and with
	// them the rendezvous placement and the kill victim — deterministic.
	for i := 0; i < 2; i++ {
		pid := 2100 + i
		w, err := worker.Start(worker.Config{Master: m.Addr(), Dir: t.TempDir(), Tasks: 2, FakePID: pid, ServeTasks: true})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		workers[pid] = w
		mu.Unlock()
		defer w.Stop()
		deadline := time.Now().Add(time.Second)
		for m.LiveWorkers() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("worker %d did not register in time", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	if _, err := sys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
		t.Fatal(err)
	}
	s := serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerSharded})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	outs, err := shardedChaosWorkload(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return outs, m.FaultLog(), s.Metrics().Snapshot().Counters
}

// TestShardedServeChaosKill: 3 seeds, each killing the rendezvous holder
// mid-query; the gather must fall back without a byte of difference, and
// the same seed must replay the same kill at the same coordinates.
func TestShardedServeChaosKill(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded serve kill soak is not -short")
	}
	pts := proptest.GenPoints(proptest.ShapeClusters, 300, 11)

	// Fault-free oracle: the local engine over the same dataset, no
	// cluster runtime at all.
	oracleSys := core.New(core.Config{BlockSize: 4 << 10, Workers: 6, Seed: 1})
	if _, err := oracleSys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
		t.Fatal(err)
	}
	oracleSrv := httptest.NewServer(serve.New(oracleSys, serve.Config{CacheSize: -1, Planner: serve.PlannerLocal}).Handler())
	defer oracleSrv.Close()
	want, err := shardedChaosWorkload(oracleSrv.URL)
	if err != nil {
		t.Fatal(err)
	}

	killEvents := func(l *fault.Log) []string {
		var out []string
		for _, e := range l.Events() {
			if e.Kind == "worker-kill" {
				out = append(out, fmt.Sprintf("%s/%d/worker%d", e.Phase, e.Task, e.Worker))
			}
		}
		return out
	}

	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := fault.Plan{
				Seed:            seed,
				WorkerKillRate:  1.0,
				WorkerKillPhase: "serve",
				KillBudget:      1,
			}
			got, flog, counters := shardedChaosRun(t, pts, plan)
			kills := killEvents(flog)
			if len(kills) != 1 {
				t.Fatalf("%d worker-kills fired, want exactly 1: %v", len(kills), kills)
			}
			if !strings.HasPrefix(kills[0], "serve/") {
				t.Fatalf("kill fired outside the serve phase: %s", kills[0])
			}
			if fb := counters["serve.shard.fallback.peer"] + counters["serve.shard.fallback.local"]; fb == 0 {
				t.Fatalf("holder died but no fragment fell back: counters %v", counters)
			}
			if counters["serve.shard.rpc.errors"] == 0 {
				t.Fatalf("holder died but no scatter RPC failed: counters %v", counters)
			}
			if len(got) != len(want) {
				t.Fatalf("%d responses under kill vs %d fault-free", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("response %d diverged under holder kill:\n got: %.200q\nwant: %.200q", i, got[i], want[i])
				}
			}

			// Deterministic replay: same seed, same responses, same kill
			// coordinates (phase, task, victim).
			replay, rlog, _ := shardedChaosRun(t, pts, plan)
			for i := range got {
				if replay[i] != got[i] {
					t.Fatalf("replay changed response %d", i)
				}
			}
			if rk := killEvents(rlog); len(rk) != 1 || rk[0] != kills[0] {
				t.Fatalf("replay changed the kill: %v vs %v", rk, kills)
			}
		})
	}
}
