// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (backed by the same workloads as cmd/shbench, at reduced
// size), plus micro-benchmarks of the geometry kernel the operations rest
// on. Regenerate the full figures with cmd/shbench; these targets track
// relative performance per commit.
package spatialhadoop_test

import (
	"fmt"
	"io"
	"strconv"
	"testing"

	"spatialhadoop/internal/bench"
	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/voronoi"
)

// benchCfg runs an experiment at a small scale with output discarded.
func benchCfg() bench.Config {
	return bench.Config{Scale: 0.05, Workers: 8, BlockSize: 64 << 10, Seed: 1, W: io.Discard}
}

// runExperiment benches one shbench experiment end to end.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Partitioning(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig20Distributions(b *testing.B) { runExperiment(b, "fig20") }
func BenchmarkFig21Union(b *testing.B)         { runExperiment(b, "fig21") }
func BenchmarkFig22Voronoi(b *testing.B)       { runExperiment(b, "fig22") }
func BenchmarkFig23VoronoiSynth(b *testing.B)  { runExperiment(b, "fig23") }
func BenchmarkFig24Skyline(b *testing.B)       { runExperiment(b, "fig24") }
func BenchmarkFig25SkylineSynth(b *testing.B)  { runExperiment(b, "fig25") }
func BenchmarkFig26SkylineOS(b *testing.B)     { runExperiment(b, "fig26") }
func BenchmarkFig27Hull(b *testing.B)          { runExperiment(b, "fig27") }
func BenchmarkFig28HullSynth(b *testing.B)     { runExperiment(b, "fig28") }
func BenchmarkFig29Farthest(b *testing.B)      { runExperiment(b, "fig29") }
func BenchmarkFig30Closest(b *testing.B)       { runExperiment(b, "fig30") }
func BenchmarkFig31ClosestSynth(b *testing.B)  { runExperiment(b, "fig31") }
func BenchmarkSigmod14Ops(b *testing.B)        { runExperiment(b, "sigmod14") }

// ---- kernel micro-benchmarks ----

var world = geom.NewRect(0, 0, 1e6, 1e6)

func points(n int) []geom.Point {
	return datagen.Points(datagen.Uniform, n, world, 7)
}

func BenchmarkKernelConvexHull(b *testing.B) {
	pts := points(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.ConvexHull(pts)
	}
}

func BenchmarkKernelSkyline(b *testing.B) {
	pts := points(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.Skyline(pts)
	}
}

func BenchmarkKernelClosestPair(b *testing.B) {
	pts := points(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.ClosestPair(pts)
	}
}

func BenchmarkKernelDelaunay(b *testing.B) {
	pts := points(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		voronoi.NewDelaunay(pts)
	}
}

func BenchmarkKernelVoronoiSafety(b *testing.B) {
	vd := voronoi.New(points(20000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vd.SafeSitesFrontier(world)
	}
}

func BenchmarkKernelUnionArrangement(b *testing.B) {
	polys := datagen.Tessellation(20, 20, world, 3)
	regions := make([]geom.Region, len(polys))
	for i, pg := range polys {
		regions[i] = geom.RegionOf(pg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.UnionRegions(regions)
	}
}

// ---- system micro-benchmarks ----

func BenchmarkSystemLoadSTRPlus(b *testing.B) {
	pts := points(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.New(core.Config{BlockSize: 256 << 10, Workers: 8, Seed: 1})
		if _, err := sys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemRangeQuery(b *testing.B) {
	sys := core.New(core.Config{BlockSize: 256 << 10, Workers: 8, Seed: 1})
	if _, err := sys.LoadPoints("pts", points(200000), sindex.STRPlus); err != nil {
		b.Fatal(err)
	}
	q := geom.NewRect(4e5, 4e5, 4.5e5, 4.5e5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ops.RangeQueryPoints(sys, "pts", q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemKNN(b *testing.B) {
	sys := core.New(core.Config{BlockSize: 256 << 10, Workers: 8, Seed: 1})
	if _, err := sys.LoadPoints("pts", points(200000), sindex.STRPlus); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ops.KNN(sys, "pts", geom.Pt(5e5, 5e5), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemSkylineSHadoop(b *testing.B) {
	sys := core.New(core.Config{BlockSize: 256 << 10, Workers: 8, Seed: 1})
	if _, err := sys.LoadPoints("pts", points(200000), sindex.STRPlus); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cg.SkylineSHadoop(sys, "pts"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathShuffle drives a shuffle-heavy job (every record emits
// one pair) through the full runtime at several reducer counts, exercising
// the map-side partitioned shuffle and its parallel per-reducer merge.
func BenchmarkHotpathShuffle(b *testing.B) {
	for _, numRed := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("r=%d", numRed), func(b *testing.B) {
			sys := core.New(core.Config{BlockSize: 64 << 10, Workers: 8, Seed: 1})
			var recs []string
			for i := 0; i < 50000; i++ {
				recs = append(recs, "cell-"+strconv.Itoa(i%512))
			}
			if err := sys.FS().WriteFile("in", recs); err != nil {
				b.Fatal(err)
			}
			job := func(out string) *mapreduce.Job {
				return &mapreduce.Job{
					Name:  "bench-shuffle",
					Input: []string{"in"},
					Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
						for _, r := range split.Records() {
							ctx.Emit(r, "1")
						}
						return nil
					},
					Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
						ctx.Write(key + "=" + strconv.Itoa(len(values)))
						return nil
					},
					NumReducers: numRed,
					Output:      out,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Cluster().Run(job("out")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHotpathRangeQueryRepeated measures a repeated range query on a
// warm system: after the first query populates the decoded-block caches,
// every iteration is served without re-parsing records.
func BenchmarkHotpathRangeQueryRepeated(b *testing.B) {
	sys := core.New(core.Config{BlockSize: 256 << 10, Workers: 8, Seed: 1})
	if _, err := sys.LoadPoints("pts", points(200000), sindex.STRPlus); err != nil {
		b.Fatal(err)
	}
	q := geom.NewRect(4e5, 4e5, 5e5, 5e5)
	if _, _, err := ops.RangeQueryPoints(sys, "pts", q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ops.RangeQueryPoints(sys, "pts", q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathSkylineRepeated is the cached-decode end-to-end skyline:
// the first run parses every block once, the measured runs hit the cache.
func BenchmarkHotpathSkylineRepeated(b *testing.B) {
	sys := core.New(core.Config{BlockSize: 256 << 10, Workers: 8, Seed: 1})
	if _, err := sys.LoadPoints("pts", points(200000), sindex.STRPlus); err != nil {
		b.Fatal(err)
	}
	if _, _, err := cg.SkylineSHadoop(sys, "pts"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cg.SkylineSHadoop(sys, "pts"); err != nil {
			b.Fatal(err)
		}
	}
}
