// Chaos soak tests: run the paper's operations under a seeded fault plan
// (transient map/reduce failures, corrupt block reads, stragglers) across
// several index layouts and chaos seeds, and require the output to be
// byte-identical to the fault-free run. Injection decisions are hashed
// from (seed, phase, task, attempt) — never drawn from shared RNG state —
// so each cell of the matrix is reproducible; on failure the injector's
// event log can be exported by setting CHAOS_TRACE_DIR.
package spatialhadoop_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// chaosPolicy keeps soak runs fast: microsecond backoffs and a low
// speculation threshold, with a deep attempt budget so bursts of injected
// transients never exhaust it.
func chaosPolicy() fault.RetryPolicy {
	p := fault.DefaultRetryPolicy()
	p.MaxAttempts = 8
	p.BaseBackoff = 100 * time.Microsecond
	p.MaxBackoff = 2 * time.Millisecond
	p.SpeculativeMin = 10 * time.Millisecond
	return p
}

// chaosOp is one operation of the soak matrix: setup loads its datasets
// under the given index technique, run executes it and returns the final
// job report (whose OutputFile is compared against the fault-free run).
type chaosOp struct {
	name  string
	setup func(t *testing.T, sys *core.System, tech sindex.Technique)
	run   func(sys *core.System) (*mapreduce.Report, error)
}

func chaosOps() []chaosOp {
	area := geom.NewRect(0, 0, 20_000, 20_000)
	pts := datagen.Points(datagen.Clustered, 4000, area, 71)
	loadPts := func(t *testing.T, sys *core.System, tech sindex.Technique) {
		t.Helper()
		if _, err := sys.LoadPoints("pts", pts, tech); err != nil {
			t.Fatal(err)
		}
	}
	polysA := datagen.Tessellation(6, 6, area, 3)
	polysB := datagen.Tessellation(5, 5, area, 4)
	toRegions := func(pgs []geom.Polygon) []geom.Region {
		out := make([]geom.Region, len(pgs))
		for i, pg := range pgs {
			out[i] = geom.RegionOf(pg)
		}
		return out
	}
	return []chaosOp{
		{
			name:  "rangequery",
			setup: loadPts,
			run: func(sys *core.System) (*mapreduce.Report, error) {
				_, rep, err := ops.RangeQueryPoints(sys, "pts", geom.NewRect(2_000, 2_000, 16_000, 16_000))
				return rep, err
			},
		},
		{
			name:  "knn",
			setup: loadPts,
			run: func(sys *core.System) (*mapreduce.Report, error) {
				_, rep, err := ops.KNN(sys, "pts", geom.Pt(10_000, 10_000), 15)
				return rep, err
			},
		},
		{
			name: "join",
			setup: func(t *testing.T, sys *core.System, tech sindex.Technique) {
				t.Helper()
				if _, err := sys.LoadRegions("a", toRegions(polysA), tech); err != nil {
					t.Fatal(err)
				}
				if _, err := sys.LoadRegions("b", toRegions(polysB), tech); err != nil {
					t.Fatal(err)
				}
			},
			run: func(sys *core.System) (*mapreduce.Report, error) {
				_, rep, err := ops.SpatialJoinIndexed(sys, "a", "b")
				return rep, err
			},
		},
		{
			name:  "skyline",
			setup: loadPts,
			run: func(sys *core.System) (*mapreduce.Report, error) {
				_, rep, err := cg.SkylineSHadoop(sys, "pts")
				return rep, err
			},
		},
		{
			name:  "hull",
			setup: loadPts,
			run: func(sys *core.System) (*mapreduce.Report, error) {
				_, rep, err := cg.ConvexHullSHadoop(sys, "pts")
				return rep, err
			},
		},
	}
}

// chaosRun stands up a system under plan, runs op, and returns the output
// file's records plus the report.
func chaosRun(t *testing.T, op chaosOp, tech sindex.Technique, plan fault.Plan) ([]string, *mapreduce.Report, *fault.Injector) {
	t.Helper()
	sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 6, Seed: 1, Fault: plan})
	sys.Cluster().SetRetryPolicy(chaosPolicy())
	op.setup(t, sys, tech)
	rep, err := op.run(sys)
	if err != nil {
		t.Fatalf("%s under %+v: %v", op.name, plan, err)
	}
	out, err := sys.FS().ReadAll(rep.OutputFile)
	if err != nil {
		t.Fatalf("%s: reading %s: %v", op.name, rep.OutputFile, err)
	}
	return out, rep, sys.Cluster().Injector()
}

// dumpChaosEvents exports a failing cell's fault-event log when
// CHAOS_TRACE_DIR is set (the artifact CI uploads on soak failures).
func dumpChaosEvents(t *testing.T, cell string, in *fault.Injector) {
	dir := os.Getenv("CHAOS_TRACE_DIR")
	if dir == "" || in == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos trace dir: %v", err)
		return
	}
	path := filepath.Join(dir, cell+".events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Logf("chaos trace: %v", err)
		return
	}
	if err := in.WriteEventsJSONL(f); err == nil {
		t.Logf("chaos: wrote fault events to %s", path)
	}
	f.Close()
}

// TestChaosSoak is the soak matrix: 5 operations x 3 index layouts x 3
// chaos seeds, each compared byte-for-byte against the fault-free run of
// the same cell. Because retried and speculative attempts are idempotent
// and exactly one attempt per task publishes, chaos must never change a
// single output record.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak matrix is not -short")
	}
	techs := []sindex.Technique{sindex.Grid, sindex.STR, sindex.QuadTree}
	seeds := []int64{1, 2, 3}
	var totalFaults int64

	for _, op := range chaosOps() {
		op := op
		t.Run(op.name, func(t *testing.T) {
			for _, tech := range techs {
				want, _, _ := chaosRun(t, op, tech, fault.Plan{})
				for _, seed := range seeds {
					plan := fault.Plan{
						Seed:             seed,
						MapFailRate:      0.12,
						ReduceFailRate:   0.10,
						StragglerRate:    0.05,
						CorruptBlockRate: 0.05,
					}
					cell := fmt.Sprintf("%s-%s-seed%d", op.name, tech, seed)
					got, rep, in := chaosRun(t, op, tech, plan)
					ok := len(got) == len(want)
					if ok {
						for i := range want {
							if got[i] != want[i] {
								ok = false
								break
							}
						}
					}
					if !ok {
						dumpChaosEvents(t, cell, in)
						t.Fatalf("%s: output diverged under chaos: %d records vs %d fault-free",
							cell, len(got), len(want))
					}
					for _, name := range []string{
						mapreduce.CounterRetryMap, mapreduce.CounterRetryReduce,
						mapreduce.CounterRetryCommit, mapreduce.CounterStragglersInjected,
						mapreduce.CounterChecksumFailures, mapreduce.CounterSpecLaunched,
					} {
						totalFaults += rep.Counters[name]
					}
					if in != nil {
						totalFaults += int64(len(in.Events()))
					}
				}
			}
		})
	}
	if totalFaults == 0 {
		t.Error("soak matrix injected no faults at all; the plans are inert")
	}
}

// TestChaosDeterministicReplay pins the reproducibility claim directly:
// the same chaos seed produces the same injector event log and the same
// fault counters on every run of the same cell.
func TestChaosDeterministicReplay(t *testing.T) {
	op := chaosOps()[0] // range query
	plan := fault.Plan{Seed: 9, MapFailRate: 0.3, StragglerRate: 0.1, CorruptBlockRate: 0.1}
	outA, repA, inA := chaosRun(t, op, sindex.Grid, plan)
	outB, repB, inB := chaosRun(t, op, sindex.Grid, plan)

	if len(outA) != len(outB) {
		t.Fatalf("replay changed output: %d vs %d records", len(outA), len(outB))
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("replay changed record %d", i)
		}
	}
	evA, evB := inA.Events(), inB.Events()
	if len(evA) == 0 {
		t.Fatal("plan injected nothing; raise the rates")
	}
	// Event counts per (phase, task, attempt, kind) must match exactly;
	// only their interleaving may differ across runs.
	key := func(e fault.Event) string {
		return fmt.Sprintf("%s/%d/%d/%s", e.Phase, e.Task, e.Attempt, e.Kind)
	}
	countA, countB := map[string]int{}, map[string]int{}
	for _, e := range evA {
		countA[key(e)]++
	}
	for _, e := range evB {
		countB[key(e)]++
	}
	if len(countA) != len(countB) {
		t.Fatalf("replay changed event set: %d vs %d distinct events", len(countA), len(countB))
	}
	for k, n := range countA {
		if countB[k] != n {
			t.Fatalf("event %s: %d vs %d occurrences", k, n, countB[k])
		}
	}
	for _, name := range []string{
		mapreduce.CounterRetryMap, mapreduce.CounterChecksumFailures,
		mapreduce.CounterStragglersInjected,
	} {
		if repA.Counters[name] != repB.Counters[name] {
			t.Errorf("counter %s: %d vs %d", name, repA.Counters[name], repB.Counters[name])
		}
	}
}

// TestChaosConcurrentJobs: two jobs racing on one cluster under a fault
// plan — sharing the slot pool, the injector, the retry scheduler and the
// DFS — must each produce output byte-identical to its own fault-free
// serial run. This is the interop point of the serving layer (concurrent
// admitted jobs) with the fault-tolerance layer.
func TestChaosConcurrentJobs(t *testing.T) {
	area := geom.NewRect(0, 0, 20_000, 20_000)
	ptsA := datagen.Points(datagen.Clustered, 3000, area, 81)
	ptsB := datagen.Points(datagen.Uniform, 2500, area, 82)
	rectA := geom.NewRect(2_000, 2_000, 15_000, 15_000)
	rectB := geom.NewRect(5_000, 1_000, 18_000, 12_000)

	setup := func(plan fault.Plan) *core.System {
		sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 6, Seed: 1, Fault: plan})
		sys.Cluster().SetRetryPolicy(chaosPolicy())
		if _, err := sys.LoadPoints("ptsA", ptsA, sindex.STR); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.LoadPoints("ptsB", ptsB, sindex.QuadTree); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	readOut := func(sys *core.System, name string) []string {
		t.Helper()
		out, err := sys.FS().ReadAll(name)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Fault-free serial oracles.
	ref := setup(fault.Plan{})
	if _, _, err := ops.RangeQueryPointsTo(ref, "ptsA", rectA, "outA"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ops.RangeQueryPointsTo(ref, "ptsB", rectB, "outB"); err != nil {
		t.Fatal(err)
	}
	wantA, wantB := readOut(ref, "outA"), readOut(ref, "outB")

	plan := fault.Plan{Seed: 5, MapFailRate: 0.15, StragglerRate: 0.05, CorruptBlockRate: 0.05}
	sys := setup(plan)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, _, errs[0] = ops.RangeQueryPointsTo(sys, "ptsA", rectA, "outA") }()
	go func() { defer wg.Done(); _, _, errs[1] = ops.RangeQueryPointsTo(sys, "ptsB", rectB, "outB") }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent chaos job %d: %v", i, err)
		}
	}
	if in := sys.Cluster().Injector(); in == nil || len(in.Events()) == 0 {
		t.Fatal("fault plan injected nothing; the interop test exercised nothing")
	}

	for _, cmp := range []struct {
		name      string
		got, want []string
	}{
		{"outA", readOut(sys, "outA"), wantA},
		{"outB", readOut(sys, "outB"), wantB},
	} {
		if len(cmp.got) != len(cmp.want) {
			t.Fatalf("%s: %d records under concurrent chaos vs %d fault-free serial", cmp.name, len(cmp.got), len(cmp.want))
		}
		for i := range cmp.want {
			if cmp.got[i] != cmp.want[i] {
				t.Fatalf("%s record %d diverged under concurrent chaos", cmp.name, i)
			}
		}
	}
}
