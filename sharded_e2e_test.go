// Sharded-serving end-to-end test with real worker processes: a master
// serves HTTP queries through the sharded engine, scattering partition
// fragments to three serve-capable worker processes (replication 2) over
// real sockets, while one worker is SIGKILLed under concurrent load. The
// acceptance contract: every response before, during and after the kill
// is byte-identical to the in-process local-engine oracle, and the
// scatter shows up in the Prometheus exposition (written out as a CI
// artifact when SHARDED_SERVE_ARTIFACT_DIR is set).
package spatialhadoop_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
)

// shardedE2EQueries is the query mix the concurrent load loops over.
func shardedE2EQueries() []string {
	return []string{
		"/rangequery?file=pts&rect=2000,2000,16000,16000",
		"/rangequery?file=pts&rect=500,9000,11000,19500",
		"/rangequery?file=pts&rect=7500,0,19000,8000",
		"/rangequery?file=pts&rect=0,0,20000,20000",
		"/knn?file=pts&point=10000,10000&k=15",
		"/knn?file=pts&point=100,19000&k=7",
	}
}

func shardedE2ECorpus(t *testing.T, sys *core.System) {
	t.Helper()
	area := geom.NewRect(0, 0, 20_000, 20_000)
	pts := datagen.Points(datagen.Clustered, 4000, area, 71)
	if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
}

// TestShardedServingE2E: master + three real serve-capable worker
// processes at replication 2, concurrent HTTP workload, one process
// SIGKILLed mid-load, every response oracle-checked.
func TestShardedServingE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process e2e is not -short")
	}
	newSys := func() *core.System {
		return core.New(core.Config{Workers: 6, BlockSize: 8 << 10, Seed: 1})
	}

	// In-process local-engine oracle bodies.
	ref := newSys()
	shardedE2ECorpus(t, ref)
	refSrv := httptest.NewServer(serve.New(ref, serve.Config{CacheSize: -1, Planner: serve.PlannerLocal}).Handler())
	defer refSrv.Close()
	oracle := map[string]string{}
	for _, q := range shardedE2EQueries() {
		resp, err := http.Get(refSrv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("oracle GET %s: %d %s", q, resp.StatusCode, body)
		}
		oracle[q] = string(body)
	}

	// Distributed serving system.
	sys := newSys()
	shardedE2ECorpus(t, sys)
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		Lease:          200 * time.Millisecond,
		Metrics:        sys.Metrics(),
		Replication:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	procs := []*workerProc{
		spawnWorkerProcess(t, m.Addr(), "SHADOOP_WORKER_SERVE=1"),
		spawnWorkerProcess(t, m.Addr(), "SHADOOP_WORKER_SERVE=1"),
		spawnWorkerProcess(t, m.Addr(), "SHADOOP_WORKER_SERVE=1"),
	}
	waitLive(t, m, 3)

	s := serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerSharded, MaxInFlight: 8, QueueDepth: 1024, JobDeadline: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm pass: every query answered once, sharded, before any chaos.
	for _, q := range shardedE2EQueries() {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", q, resp.StatusCode, body)
		}
		if eng := resp.Header.Get("X-Engine"); eng != serve.PlannerSharded {
			t.Fatalf("GET %s: X-Engine=%q, want sharded", q, eng)
		}
		if string(body) != oracle[q] {
			t.Fatalf("GET %s: sharded body diverged from oracle", q)
		}
	}

	// Concurrent load with a SIGKILL in the middle: 4 clients loop the mix
	// for ~2s; at ~500ms one worker process dies. Every single response —
	// racing the kill, the lease expiry and the fallback ladder — must
	// still match the oracle.
	var (
		wg       sync.WaitGroup
		served   atomic.Int64
		errsMu   sync.Mutex
		failures []string
	)
	stopAt := time.Now().Add(2 * time.Second)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			queries := shardedE2EQueries()
			for i := 0; time.Now().Before(stopAt); i++ {
				q := queries[(i+c)%len(queries)]
				resp, err := http.Get(ts.URL + q)
				if err != nil {
					errsMu.Lock()
					failures = append(failures, fmt.Sprintf("client %d GET %s: %v", c, q, err))
					errsMu.Unlock()
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || string(body) != oracle[q] {
					errsMu.Lock()
					failures = append(failures, fmt.Sprintf("client %d GET %s: status %d err %v (oracle mismatch %v)",
						c, q, resp.StatusCode, err, string(body) != oracle[q]))
					errsMu.Unlock()
					return
				}
				served.Add(1)
			}
		}(c)
	}
	time.Sleep(500 * time.Millisecond)
	if err := procs[0].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	if t.Failed() {
		t.FailNow()
	}
	if !procs[0].dead(time.Second) {
		t.Fatal("the SIGKILLed worker process never exited")
	}
	t.Logf("served %d oracle-checked responses across the kill", served.Load())
	if served.Load() == 0 {
		t.Fatal("the load loop served nothing")
	}

	// The scatter is visible in the serving metrics: fragments executed on
	// workers, and the Prometheus exposition carries the shard families.
	counters := s.Metrics().Snapshot().Counters
	if counters["serve.shard.exec.remote"] == 0 {
		t.Fatalf("no fragment executed on a worker process: %v", counters)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"shadoop_serve_shard_fanout", "shadoop_serve_shard_exec_remote"} {
		if !strings.Contains(string(expo), family) {
			t.Errorf("/metrics misses the %s family", family)
		}
	}
	if dir := os.Getenv("SHARDED_SERVE_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "sharded-serve-metrics.prom"), expo, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
