// Distributed spatial join: overlay two polygon layers (say, land parcels
// and flood zones) with the indexed join of SpatialHadoop and the PBSM
// baseline over heap files, and compare the work each strategy does.
package main

import (
	"fmt"
	"log"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

func main() {
	world := geom.NewRect(0, 0, 200_000, 200_000)
	parcels := toRegions(datagen.RandomPolygons(3_000, 5, 2_000, world, 1))
	floods := toRegions(datagen.RandomPolygons(400, 8, 9_000, world, 2))

	sys := core.New(core.Config{Workers: 8, BlockSize: 64 << 10, Seed: 1})

	// Indexed join: both layers partitioned with STR+; the filter forms
	// map tasks only for partition pairs whose contents can intersect.
	if _, err := sys.LoadRegions("parcels", parcels, sindex.STRPlus); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.LoadRegions("floods", floods, sindex.STRPlus); err != nil {
		log.Fatal(err)
	}
	pairs, rep, err := ops.SpatialJoinIndexed(sys, "parcels", "floods")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed join: %d parcel-flood overlaps via %d partition-pair tasks\n",
		len(pairs), rep.MapTasks)

	// PBSM baseline: no index, so both inputs are reshuffled onto an
	// ad-hoc grid inside the job.
	if err := sys.LoadRegionsHeap("parcels-heap", parcels); err != nil {
		log.Fatal(err)
	}
	if err := sys.LoadRegionsHeap("floods-heap", floods); err != nil {
		log.Fatal(err)
	}
	pairsPBSM, repPBSM, err := ops.SpatialJoinPBSM(sys, "parcels-heap", "floods-heap", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PBSM join:    %d overlaps, but shuffled %d bytes of replicated records\n",
		len(pairsPBSM), repPBSM.Counters["shuffle.bytes"])
	fmt.Printf("results agree: %v\n", len(pairs) == len(pairsPBSM))
}

func toRegions(polys []geom.Polygon) []geom.Region {
	out := make([]geom.Region, len(polys))
	for i, pg := range polys {
		out[i] = geom.RegionOf(pg)
	}
	return out
}
