// Voronoi visualization: builds the distributed Voronoi diagram of a
// clustered dataset and renders it — regions coloured by the pipeline
// stage that finalized them (local / V-merge / H-merge, mirroring the
// paper's Fig. 8c), partition boundaries, and sites — into an SVG file.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/voronoi"
)

func main() {
	out := "voronoi.svg"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	world := geom.NewRect(0, 0, 1000, 1000)
	sites := datagen.Points(datagen.Clustered, 600, world, 21)

	sys := core.New(core.Config{Workers: 8, BlockSize: 4 << 10, Seed: 21})
	f, err := sys.LoadPoints("sites", sites, sindex.Grid)
	if err != nil {
		log.Fatal(err)
	}
	regions, _, stats, err := cg.VoronoiSHadoop(sys, "sites")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d regions; %d carried after local, %d after V-merge\n",
		len(regions), stats.CarriedAfterLocal, stats.CarriedAfterVMerge)

	// Classify each site by the stage that finalized its region, as the
	// paper's Fig. 8c colour-codes them: green = local, blue = V-merge,
	// black/grey = H-merge. The stage is recovered from the per-partition
	// safety rule.
	stage := make(map[geom.Point]int, len(sites)) // 0 local, 1 vmerge, 2 hmerge
	for _, split := range f.Splits() {
		pts, err := split.Points()
		if err != nil {
			log.Fatal(err)
		}
		if len(pts) == 0 {
			continue
		}
		vd := voronoi.New(pts)
		safe, _ := vd.SafeSitesFrontier(split.MBR)
		for i, ok := range safe {
			if ok {
				stage[vd.Site(i)] = 0
			} else {
				stage[vd.Site(i)] = 2 // refined below by the V-merge pass
			}
		}
	}
	// Regions not finalized locally: approximate V-merge vs H-merge by
	// whether the region is fully inside its grid column strip.
	for _, sr := range regions {
		if stage[sr.Site] == 0 {
			continue
		}
		for _, cell := range f.Index.Cells {
			if cell.Boundary.ContainsPoint(sr.Site) {
				strip := geom.Rect{MinX: cell.Boundary.MinX, MinY: world.MinY,
					MaxX: cell.Boundary.MaxX, MaxY: world.MaxY}
				if strip.ContainsRect(sr.Region.Bounds()) {
					stage[sr.Site] = 1
				}
				break
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="800" height="800" viewBox="0 0 1000 1000">`+"\n")
	fmt.Fprintf(&b, `<rect width="1000" height="1000" fill="white"/>`+"\n")
	fills := [3]string{"#c8e6c0", "#bcd4ee", "#e0e0e0"} // local, vmerge, hmerge
	for _, sr := range regions {
		if sr.Region.Len() < 3 {
			continue
		}
		var pts []string
		for _, v := range sr.Region.Vertices {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", v.X, 1000-v.Y))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="%s" stroke="#666" stroke-width="0.7"/>`+"\n",
			strings.Join(pts, " "), fills[stage[sr.Site]])
	}
	for _, cell := range f.Index.Cells {
		r := cell.Boundary
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#d33" stroke-width="2" stroke-dasharray="8 5"/>`+"\n",
			r.MinX, 1000-r.MaxY, r.Width(), r.Height())
	}
	for _, s := range sites {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="black"/>`+"\n", s.X, 1000-s.Y)
	}
	fmt.Fprint(&b, "</svg>\n")

	if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (green=finalized locally, blue=V-merge, grey=H-merge; dashed red = partitions)\n", out)
}
