// ZIP-code union: the paper's running example (Fig. 1). A jittered
// tessellation stands in for ZIP-code areas; the program dissolves their
// shared boundaries with all four union variants and shows why the
// enhanced (map-only) algorithm removes the merge bottleneck.
package main

import (
	"fmt"
	"log"
	"time"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

func main() {
	state := geom.NewRect(0, 0, 50_000, 50_000)
	zips := datagen.Tessellation(40, 40, state, 7) // 1600 "ZIP areas"
	fmt.Printf("input: %d polygons covering %v\n", len(zips), state)

	// Single machine baseline (grouping + merging, paper §4.1).
	start := time.Now()
	region, boundary := cg.UnionSingle(zips)
	fmt.Printf("single machine: %d rings, boundary length %.0f (%.0fms)\n",
		len(region.Rings), geom.TotalLength(boundary), float64(time.Since(start).Milliseconds()))

	regions := make([]geom.Region, len(zips))
	for i, pg := range zips {
		regions[i] = geom.RegionOf(pg)
	}
	sys := core.New(core.Config{Workers: 8, BlockSize: 16 << 10, Seed: 7})

	// Hadoop: random placement, so local unions dissolve few boundaries
	// and nearly everything is merged by one reducer.
	if err := sys.LoadRegionsHeap("zips-heap", regions); err != nil {
		log.Fatal(err)
	}
	_, repH, err := cg.UnionHadoop(sys, "zips-heap")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hadoop:   local union kept %6d vertices for the single-machine merge\n",
		repH.Counters[cg.CounterIntermediatePoints])

	// SpatialHadoop: neighbours share partitions, so most interior edges
	// vanish locally.
	if _, err := sys.LoadRegions("zips-str", regions, sindex.STR); err != nil {
		log.Fatal(err)
	}
	_, repS, err := cg.UnionSHadoop(sys, "zips-str")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shadoop:  local union kept %6d vertices for the single-machine merge\n",
		repS.Counters[cg.CounterIntermediatePoints])

	// Enhanced: clip to partition boundaries and skip the merge entirely.
	if _, err := sys.LoadRegions("zips-grid", regions, sindex.Grid); err != nil {
		log.Fatal(err)
	}
	segs, repE, err := cg.UnionEnhanced(sys, "zips-grid")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enhanced: map-only, %d boundary segments flushed directly (no merge step)\n",
		repE.Counters[cg.CounterFlushedEarly])
	fmt.Printf("enhanced boundary length %.0f (matches single machine: %v)\n",
		geom.TotalLength(segs),
		withinRel(geom.TotalLength(segs), geom.TotalLength(boundary), 1e-6))
}

func withinRel(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*b
}
