// All six CG_Hadoop operations end-to-end on one clustered dataset:
// Voronoi diagram, skyline, convex hull, farthest pair, closest pair over
// points, plus polygon union over a tessellation — each compared against
// its single-machine baseline.
package main

import (
	"fmt"
	"log"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

func main() {
	world := geom.NewRect(0, 0, 1_000_000, 1_000_000)
	points := datagen.Points(datagen.Clustered, 60_000, world, 99)

	sys := core.New(core.Config{Workers: 8, BlockSize: 128 << 10, Seed: 99})
	if _, err := sys.LoadPoints("pts", points, sindex.Grid); err != nil {
		log.Fatal(err)
	}

	// 1. Voronoi diagram with early flushing of safe regions.
	regions, _, stats, err := cg.VoronoiSHadoop(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voronoi: %d regions; %.1f%% of sites finished in the local step\n",
		len(regions), 100*(1-float64(stats.CarriedAfterLocal)/float64(stats.Sites)))

	// 1b. Delaunay triangulation (the diagram's dual) with safe-triangle
	// flushing.
	tris, _, err := cg.DelaunaySHadoop(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delaunay: %d triangles (matches single machine: %v)\n",
		len(tris), len(tris) == len(cg.DelaunaySingle(points)))

	// 2. Skyline.
	sky, _, err := cg.SkylineSHadoop(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skyline: %d points (single machine agrees: %v)\n",
		len(sky), len(sky) == len(cg.SkylineSingle(points)))

	// 3. Convex hull, both the filtered and the enhanced variant.
	hull, _, err := cg.ConvexHullSHadoop(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	hullE, _, err := cg.ConvexHullEnhanced(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convex hull: %d vertices (enhanced variant agrees: %v)\n",
		len(hull), len(hull) == len(hullE))

	// 4. Farthest pair (hull + rotating calipers + pair pruning).
	fp, _, err := cg.FarthestPairSHadoop(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("farthest pair: %v - %v  (%.0f apart)\n", fp.P, fp.Q, fp.Dist)

	// 5. Closest pair (delta-buffer pruning).
	cp, _, err := cg.ClosestPairSHadoop(sys, "pts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest pair: %v - %v  (%.3f apart)\n", cp.P, cp.Q, cp.Dist)

	// 6. Polygon union on a tessellation (separate region file).
	zips := datagen.Tessellation(25, 25, geom.NewRect(0, 0, 100_000, 100_000), 5)
	zipRegions := make([]geom.Region, len(zips))
	for i, pg := range zips {
		zipRegions[i] = geom.RegionOf(pg)
	}
	if _, err := sys.LoadRegions("zips", zipRegions, sindex.Grid); err != nil {
		log.Fatal(err)
	}
	segs, _, err := cg.UnionEnhanced(sys, "zips")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("union: %d polygons dissolve to a boundary of length %.0f\n",
		len(zips), geom.TotalLength(segs))
}
