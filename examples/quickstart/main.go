// Quickstart: stand up a simulated SpatialHadoop deployment, load a
// spatially indexed points file, and run the bread-and-butter queries —
// range query, k-nearest-neighbours and a skyline — while inspecting how
// the global index prunes work.
package main

import (
	"fmt"
	"log"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

func main() {
	// A "cluster" of 8 worker nodes with 64 KB blocks, so this small
	// dataset still splits into several spatial partitions.
	sys := core.New(core.Config{Workers: 8, BlockSize: 64 << 10, Seed: 42})

	// 100k points with city-like clustering in a 100km x 100km world.
	world := geom.NewRect(0, 0, 100_000, 100_000)
	points := datagen.Points(datagen.Clustered, 100_000, world, 42)

	// Load them as an STR+-partitioned file. The loader samples the data,
	// computes partition boundaries, routes every record, and stores the
	// global index in the file's master attachment.
	file, err := sys.LoadPoints("cities", points, sindex.STRPlus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d points into %d partitions (%d blocks)\n",
		file.File.Records, len(file.Index.Cells), len(file.File.Blocks))

	// Range query: the filter step reads only partitions overlapping the
	// query rectangle.
	query := geom.NewRect(20_000, 20_000, 30_000, 30_000)
	inRange, rep, err := ops.RangeQueryPoints(sys, "cities", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query %v: %d points, %d/%d partitions read\n",
		query, len(inRange), rep.Splits, rep.SplitsTotal)

	// k nearest neighbours of a location.
	q := geom.Pt(55_000, 47_000)
	nn, _, err := ops.KNN(sys, "cities", q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 nearest neighbours of %v:\n", q)
	for i, p := range nn {
		fmt.Printf("  %d. %v  (%.0f m away)\n", i+1, p, p.Dist(q))
	}

	// Skyline (max-max): the SpatialHadoop filter prunes partitions that
	// are dominated by others before any record is read.
	sky, rep, err := cg.SkylineSHadoop(sys, "cities")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("skyline has %d points; filter kept %d/%d partitions\n",
		len(sky), rep.Splits, rep.SplitsTotal)
}
