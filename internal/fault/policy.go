package fault

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// RetryPolicy configures how the scheduler handles failed and straggling
// task attempts. The zero policy is not valid; use DefaultRetryPolicy and
// override fields.
type RetryPolicy struct {
	// MaxAttempts is the attempt budget per task, counting the first
	// attempt (so MaxAttempts=1 disables retries). Values < 1 mean 1.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff. A seeded jitter in
	// [0.5, 1.0)x is applied so synchronized retries fan out
	// deterministically.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = no cap).
	MaxBackoff time.Duration
	// TaskDeadline bounds one attempt's wall time; an attempt exceeding
	// it is abandoned with a retryable deadline error (0 = no deadline).
	TaskDeadline time.Duration
	// Speculation enables speculative re-execution of stragglers: when a
	// task has run longer than the straggler threshold, a duplicate
	// attempt is launched and the first finisher wins.
	Speculation bool
	// SpeculativeFactor sets the straggler threshold relative to the
	// median duration of the phase's completed tasks (values <= 0 mean
	// 3): a task is a straggler once it runs Factor x median.
	SpeculativeFactor float64
	// SpeculativeMin is the floor of the straggler threshold, so tiny
	// jobs with microsecond medians do not speculate on noise.
	SpeculativeMin time.Duration
}

// DefaultRetryPolicy mirrors Hadoop's defaults scaled to the simulated
// runtime: four attempts per task, millisecond-scale capped backoff, no
// per-task deadline, and speculation for tasks at least 3x slower than
// the phase median (with a 50ms floor so unit-scale jobs never pay for
// the duplicate).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       4,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        100 * time.Millisecond,
		Speculation:       true,
		SpeculativeFactor: 3,
		SpeculativeMin:    50 * time.Millisecond,
	}
}

// maxAttempts returns the effective attempt budget.
func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// ShouldRetry reports whether a task that just failed attempt number
// attempt (0-based) with err has budget left and a retryable error.
func (p RetryPolicy) ShouldRetry(err error, attempt int) bool {
	return IsTransient(err) && attempt+1 < p.maxAttempts()
}

// Backoff returns the deterministic backoff delay before retrying the
// given attempt (the attempt that failed, 0-based): an exponential ramp
// from BaseBackoff, capped at MaxBackoff, with a seeded jitter in
// [0.5, 1.0)x derived from (seed, phase, task, attempt) so two runs with
// the same seed back off identically while distinct tasks spread out.
func (p RetryPolicy) Backoff(seed int64, phase string, task, attempt int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff << uint(attempt)
	if d < p.BaseBackoff { // shift overflow
		d = p.MaxBackoff
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Jitter draws from a distinct coordinate space ("backoff:"+phase)
	// so it never correlates with the injector's failure decisions.
	u := Uniform(seed, "backoff:"+phase, task, attempt)
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

// StragglerThreshold returns the run time beyond which a task counts as a
// straggler, given the median duration of completed tasks in its phase.
func (p RetryPolicy) StragglerThreshold(median time.Duration) time.Duration {
	f := p.SpeculativeFactor
	if f <= 0 {
		f = 3
	}
	th := time.Duration(float64(median) * f)
	if th < p.SpeculativeMin {
		th = p.SpeculativeMin
	}
	return th
}

// transientError wraps an error to mark it retryable.
type transientError struct{ err error }

func (e transientError) Error() string   { return e.err.Error() }
func (e transientError) Unwrap() error   { return e.err }
func (e transientError) Transient() bool { return true }

// Transient marks err as transient (retryable). A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err: err}
}

// Transientf formats a new transient error.
func Transientf(format string, args ...any) error {
	return transientError{err: fmt.Errorf(format, args...)}
}

// IsTransient reports whether err should be retried: it (or any error in
// its chain) declares itself transient via a `Transient() bool` method,
// or it is a deadline/cancellation error from an abandoned attempt.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
	}
	return false
}

// ErrInjected is the sentinel wrapped by every injector-produced failure,
// so tests and logs can tell injected faults from organic ones.
var ErrInjected = errors.New("fault: injected failure")

// InjectedError is a failure manufactured by the Injector.
type InjectedError struct {
	Phase     string
	Task      int
	Attempt   int
	Permanent bool
}

// Error renders the injection coordinates.
func (e *InjectedError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("fault: injected %s failure (%s task %d attempt %d)", kind, e.Phase, e.Task, e.Attempt)
}

// Unwrap ties injected errors to the ErrInjected sentinel.
func (e *InjectedError) Unwrap() error { return ErrInjected }

// Transient reports whether the scheduler may retry the attempt.
func (e *InjectedError) Transient() bool { return !e.Permanent }
