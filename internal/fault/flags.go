package fault

import "flag"

// PlanFlags registers the -chaos-* command-line flags on fs and returns a
// function that builds the configured Plan once flags are parsed. The
// returned plan is disabled (injects nothing) unless at least one rate is
// set, so binaries can register the flags unconditionally.
func PlanFlags(fs *flag.FlagSet) func() Plan {
	seed := fs.Int64("chaos-seed", 1, "seed for the chaos fault plan (takes effect when any -chaos-* rate is set)")
	mapFail := fs.Float64("chaos-map-fail", 0, "probability a map attempt fails with a transient error")
	reduceFail := fs.Float64("chaos-reduce-fail", 0, "probability a reduce or commit attempt fails with a transient error")
	permanent := fs.Float64("chaos-permanent", 0, "probability an attempt fails permanently (fails the job)")
	straggler := fs.Float64("chaos-straggler", 0, "probability an attempt straggles, triggering speculative execution")
	slowdown := fs.Float64("chaos-straggler-slowdown", 0, "injected straggler delay multiplier (<=1 means 2)")
	corrupt := fs.Float64("chaos-corrupt", 0, "probability a map attempt reads a corrupted block (retryable checksum mismatch)")
	kill := fs.Float64("chaos-worker-kill", 0, "probability dispatching an attempt SIGKILLs the assigned worker process (master runtime only)")
	killPhase := fs.String("chaos-kill-phase", "", "restrict worker kills to one phase: map or reduce (empty = any)")
	killHolder := fs.Bool("chaos-kill-holder", false, "kill a shard holder instead of the reduce assignee (death during shuffle fetch)")
	killReplicaHolder := fs.Bool("chaos-kill-replica-holder", false, "kill a replica holder of the map task's split (loss of the local input copy)")
	killBudget := fs.Int("chaos-kill-budget", 1, "max workers the plan may kill (0 = unlimited)")
	return func() Plan {
		return Plan{
			Seed:                    *seed,
			MapFailRate:             *mapFail,
			ReduceFailRate:          *reduceFail,
			PermanentFailRate:       *permanent,
			StragglerRate:           *straggler,
			StragglerSlowdown:       *slowdown,
			CorruptBlockRate:        *corrupt,
			WorkerKillRate:          *kill,
			WorkerKillPhase:         *killPhase,
			WorkerKillHolder:        *killHolder,
			WorkerKillReplicaHolder: *killReplicaHolder,
			KillBudget:              *killBudget,
		}
	}
}
