// Package fault is the fault-injection and fault-tolerance policy layer
// of the runtime. It provides a deterministic, seeded fault injector (a
// Plan describes per-phase failure, straggler and corruption rates; the
// Injector decides the fate of every task attempt from a hash of the seed
// and the attempt's coordinates, never from shared RNG state, so decisions
// do not depend on goroutine scheduling), a RetryPolicy (attempt budget,
// capped exponential backoff with seeded jitter, per-task deadline,
// speculative-execution thresholds) and a transient/permanent error
// classification used by the MapReduce scheduler to decide whether a
// failed attempt is worth retrying.
//
// The central property is determinism: the same Plan (same seed, same
// rates) makes the same decision for the same (phase, task, attempt)
// coordinate every run, so a chaos run can be replayed and its output
// compared byte-for-byte against a fault-free run.
package fault

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Phase names used as injection coordinates. They match the span phases
// of the obs package, but are re-declared here so fault has no
// dependencies and lower layers can import it freely.
const (
	PhaseMap    = "map"
	PhaseReduce = "reduce"
	PhaseCommit = "commit"
)

// Plan is a seeded fault plan: the rates at which the injector makes task
// attempts fail, straggle, or observe corrupted blocks. The zero Plan
// injects nothing.
type Plan struct {
	// Seed drives every injection decision. Two injectors with equal
	// plans make identical decisions.
	Seed int64 `json:"seed"`
	// MapFailRate is the probability that a map attempt fails with a
	// transient (retryable) error.
	MapFailRate float64 `json:"map_fail_rate,omitempty"`
	// ReduceFailRate is the probability that a reduce or commit attempt
	// fails with a transient error.
	ReduceFailRate float64 `json:"reduce_fail_rate,omitempty"`
	// PermanentFailRate is the probability that an attempt fails with a
	// permanent (non-retryable) error, failing the job.
	PermanentFailRate float64 `json:"permanent_fail_rate,omitempty"`
	// StragglerRate is the probability that an attempt straggles: it
	// still succeeds, but only after an injected delay, making it a
	// candidate for speculative re-execution.
	StragglerRate float64 `json:"straggler_rate,omitempty"`
	// StragglerSlowdown scales the injected straggler delay; the
	// scheduler multiplies it by its current straggler threshold, so a
	// slowdown of s makes the attempt roughly s times slower than the
	// point at which speculation kicks in. Values <= 1 are treated as 2.
	StragglerSlowdown float64 `json:"straggler_slowdown,omitempty"`
	// CorruptBlockRate is the probability that a map attempt's block
	// read returns corrupted bytes (surfaced as a checksum mismatch,
	// which is retryable: a re-read models fetching a healthy replica).
	CorruptBlockRate float64 `json:"corrupt_block_rate,omitempty"`
	// WorkerKillRate is the probability that handing an attempt to a
	// remote worker SIGKILLs a live worker process at that (phase, task,
	// attempt) decision point — the real-process chaos mode. It only takes
	// effect on a master runtime with a kill function installed; the
	// in-process scheduler ignores it. The kill draw uses a salted phase
	// coordinate so it is independent of the failure/straggler draw for
	// the same attempt.
	WorkerKillRate float64 `json:"worker_kill_rate,omitempty"`
	// WorkerKillPhase restricts kills to dispatches of one phase ("map"
	// or "reduce"; empty means any) — how the chaos matrix aims a kill at
	// "during map" versus "during reduce".
	WorkerKillPhase string `json:"worker_kill_phase,omitempty"`
	// WorkerKillHolder redirects a reduce-dispatch kill from the assignee
	// to a live worker holding one of its input shards, modelling death
	// during the shuffle fetch: the reducer survives but its source dies
	// under it, losing the map task's intermediate output.
	WorkerKillHolder bool `json:"worker_kill_holder,omitempty"`
	// WorkerKillReplicaHolder redirects a map-dispatch kill to a live
	// worker holding a replica of the task's split (often the assignee
	// itself, since dispatch prefers holders), modelling loss of the
	// local input copy: the re-issued map must fall back to peer or
	// master reads and the data plane must re-replicate.
	WorkerKillReplicaHolder bool `json:"worker_kill_replica_holder,omitempty"`
	// KillBudget caps the number of workers the plan may kill (0 = no
	// cap). Chaos rows typically set 1: kill exactly one real process at
	// the first seeded decision point reached.
	KillBudget int `json:"kill_budget,omitempty"`

	// FailEveryKth is the legacy counter-based mode kept for
	// Cluster.InjectFailures: every k-th map attempt (counted across the
	// injector's lifetime) fails once with a transient error. It
	// composes with the rate-based fields above.
	FailEveryKth int `json:"fail_every_kth,omitempty"`
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.MapFailRate > 0 || p.ReduceFailRate > 0 || p.PermanentFailRate > 0 ||
		p.StragglerRate > 0 || p.CorruptBlockRate > 0 || p.FailEveryKth > 0 ||
		p.WorkerKillRate > 0
}

// Kind classifies an injection decision.
type Kind int

const (
	// KindNone lets the attempt run unharmed.
	KindNone Kind = iota
	// KindTransient fails the attempt with a retryable error.
	KindTransient
	// KindPermanent fails the attempt with a non-retryable error.
	KindPermanent
	// KindCorrupt makes the attempt's block read surface a checksum
	// mismatch (retryable; only injected into the map phase).
	KindCorrupt
	// KindStraggle delays the attempt, then lets it succeed.
	KindStraggle
)

// String names the kind for event logs.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindCorrupt:
		return "corrupt"
	case KindStraggle:
		return "straggle"
	default:
		return "none"
	}
}

// Decision is the injector's verdict for one attempt.
type Decision struct {
	Kind Kind
	// Slowdown is the straggler delay multiplier (KindStraggle only).
	Slowdown float64
}

// Event records one non-trivial injection decision or runtime fault, for
// the fault-event JSONL log exported on chaos failures.
type Event struct {
	Phase   string `json:"phase"`
	Task    int    `json:"task"`
	Attempt int    `json:"attempt"`
	Kind    string `json:"kind"`
	// Worker identifies the worker involved in runtime fault events
	// (worker-lost, worker-kill, reissue); 0 for injector decisions.
	Worker int64 `json:"worker,omitempty"`
}

// Injector makes seeded injection decisions for task attempts. It is safe
// for concurrent use; its decisions depend only on the plan and the
// attempt coordinates, never on invocation order (the legacy every-k-th
// counter mode is the sole, documented exception).
type Injector struct {
	plan Plan

	mu     sync.Mutex
	kth    int64 // legacy mode attempt counter
	kills  int   // workers killed so far, against KillBudget
	events []Event
}

// NewInjector creates an injector for the plan. A nil injector (or one
// with a zero plan) injects nothing.
func NewInjector(p Plan) *Injector { return &Injector{plan: p} }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// hash64 mixes the seed and attempt coordinates with FNV-1a, then
// finalizes with a splitmix64 round so consecutive task ids land far
// apart in the output space.
func hash64(seed int64, phase string, task, attempt int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= prime64
	}
	mix(uint64(task))
	mix(uint64(attempt))
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Uniform returns the deterministic uniform [0,1) draw for an attempt
// coordinate under the given seed. Exposed so the retry policy's backoff
// jitter shares the same deterministic source.
func Uniform(seed int64, phase string, task, attempt int) float64 {
	return float64(hash64(seed, phase, task, attempt)>>11) / float64(1<<53)
}

// Decide returns the fate of one attempt. Non-none decisions are recorded
// in the injector's event log. task is the task ordinal within the phase;
// attempt numbers retries from 0 (speculative attempts use a disjoint
// attempt range so they draw independent fates).
func (in *Injector) Decide(phase string, task, attempt int) Decision {
	if in == nil {
		return Decision{}
	}
	d := Decision{}
	if in.plan.FailEveryKth > 0 && phase == PhaseMap {
		in.mu.Lock()
		in.kth++
		n := in.kth
		in.mu.Unlock()
		if n%int64(in.plan.FailEveryKth) == 0 {
			d = Decision{Kind: KindTransient}
		}
	}
	if d.Kind == KindNone && in.plan.rateSum(phase) > 0 {
		u := Uniform(in.plan.Seed, phase, task, attempt)
		failRate := in.plan.MapFailRate
		corruptRate := in.plan.CorruptBlockRate
		if phase != PhaseMap {
			failRate = in.plan.ReduceFailRate
			corruptRate = 0 // block reads happen in map tasks only
		}
		switch {
		case u < failRate:
			d = Decision{Kind: KindTransient}
		case u < failRate+in.plan.PermanentFailRate:
			d = Decision{Kind: KindPermanent}
		case u < failRate+in.plan.PermanentFailRate+corruptRate:
			d = Decision{Kind: KindCorrupt}
		case u < failRate+in.plan.PermanentFailRate+corruptRate+in.plan.StragglerRate:
			slow := in.plan.StragglerSlowdown
			if slow <= 1 {
				slow = 2
			}
			d = Decision{Kind: KindStraggle, Slowdown: slow}
		}
	}
	if d.Kind != KindNone {
		in.mu.Lock()
		in.events = append(in.events, Event{Phase: phase, Task: task, Attempt: attempt, Kind: d.Kind.String()})
		in.mu.Unlock()
	}
	return d
}

// DecideKill reports whether handing this attempt to a remote worker
// should SIGKILL that worker — the real-process chaos mode. The draw uses
// a salted phase coordinate ("kill."+phase) so it is independent of the
// failure/straggler draw Decide makes for the same attempt, and it honors
// the plan's KillBudget: once the budget is spent, no further kills fire.
// The caller records the actual kill (with the victim's identity) in its
// own event log; DecideKill only accounts the budget.
func (in *Injector) DecideKill(phase string, task, attempt int) bool {
	if in == nil || in.plan.WorkerKillRate <= 0 {
		return false
	}
	if in.plan.WorkerKillPhase != "" && phase != in.plan.WorkerKillPhase {
		return false
	}
	if Uniform(in.plan.Seed, "kill."+phase, task, attempt) >= in.plan.WorkerKillRate {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.plan.KillBudget > 0 && in.kills >= in.plan.KillBudget {
		return false
	}
	in.kills++
	return true
}

// rateSum returns the total injection probability mass for a phase.
func (p Plan) rateSum(phase string) float64 {
	s := p.PermanentFailRate + p.StragglerRate
	if phase == PhaseMap {
		return s + p.MapFailRate + p.CorruptBlockRate
	}
	return s + p.ReduceFailRate
}

// Events returns a copy of the recorded injection events.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// WriteEventsJSONL writes the recorded injection events as one JSON
// object per line — the fault-event trace uploaded by CI on chaos
// failures.
func (in *Injector) WriteEventsJSONL(w io.Writer) error {
	return writeJSONL(w, in.Events())
}

// Log is a concurrency-safe fault-event log for runtime faults the
// injector never sees: worker registrations, lease expiries, real-process
// kills, shard-loss re-issues. The master runtime keeps one per job run
// and exports it alongside the injector's decision log.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Append records one event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// WriteJSONL writes the recorded events as one JSON object per line.
func (l *Log) WriteJSONL(w io.Writer) error {
	return writeJSONL(w, l.Events())
}

func writeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
