package fault

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// TestDecideDeterministic pins the core determinism contract: two
// injectors built from the same plan return identical decisions for the
// same coordinates, in any interleaving.
func TestDecideDeterministic(t *testing.T) {
	plan := Plan{
		Seed:              42,
		MapFailRate:       0.2,
		ReduceFailRate:    0.15,
		PermanentFailRate: 0.01,
		StragglerRate:     0.1,
		StragglerSlowdown: 3,
		CorruptBlockRate:  0.05,
	}
	a, b := NewInjector(plan), NewInjector(plan)
	var first []Decision
	for task := 0; task < 50; task++ {
		for attempt := 0; attempt < 4; attempt++ {
			first = append(first, a.Decide(PhaseMap, task, attempt))
			first = append(first, a.Decide(PhaseReduce, task, attempt))
		}
	}
	// Replay in reverse order on the second injector.
	var second []Decision
	for task := 49; task >= 0; task-- {
		for attempt := 3; attempt >= 0; attempt-- {
			second = append(second, b.Decide(PhaseMap, task, attempt))
			second = append(second, b.Decide(PhaseReduce, task, attempt))
		}
	}
	byCoord := func(ds []Decision, reversed bool) map[string]Decision {
		m := make(map[string]Decision)
		i := 0
		tasks := make([]int, 50)
		for k := range tasks {
			tasks[k] = k
		}
		attempts := []int{0, 1, 2, 3}
		if reversed {
			for k := range tasks {
				tasks[k] = 49 - k
			}
			attempts = []int{3, 2, 1, 0}
		}
		for _, task := range tasks {
			for _, attempt := range attempts {
				m[fmt.Sprintf("m/%d/%d", task, attempt)] = ds[i]
				m[fmt.Sprintf("r/%d/%d", task, attempt)] = ds[i+1]
				i += 2
			}
		}
		return m
	}
	ma, mb := byCoord(first, false), byCoord(second, true)
	for k, da := range ma {
		if db := mb[k]; da != db {
			t.Fatalf("decision %s differs: %v vs %v", k, da, db)
		}
	}
	// The plan actually injected something at these rates.
	var injected int
	for _, d := range first {
		if d.Kind != KindNone {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no injections at 35%+ total rates over 400 draws")
	}
}

// TestDecideSeedSensitivity checks that changing the seed changes the set
// of injected coordinates.
func TestDecideSeedSensitivity(t *testing.T) {
	mk := func(seed int64) string {
		in := NewInjector(Plan{Seed: seed, MapFailRate: 0.3})
		var sb strings.Builder
		for task := 0; task < 100; task++ {
			if in.Decide(PhaseMap, task, 0).Kind != KindNone {
				fmt.Fprintf(&sb, "%d,", task)
			}
		}
		return sb.String()
	}
	if mk(1) == mk(2) {
		t.Error("seeds 1 and 2 injected identical coordinate sets")
	}
	if mk(1) != mk(1) {
		t.Error("same seed produced different coordinate sets")
	}
}

// TestUniformDistribution sanity-checks the hash-derived uniform draw:
// mean near 0.5 and observed rates near the configured rates.
func TestUniformDistribution(t *testing.T) {
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		u := Uniform(7, PhaseMap, i, 0)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("uniform mean = %.4f, want ~0.5", mean)
	}
	in := NewInjector(Plan{Seed: 7, MapFailRate: 0.25})
	fails := 0
	for i := 0; i < n; i++ {
		if in.Decide(PhaseMap, i, 0).Kind == KindTransient {
			fails++
		}
	}
	if rate := float64(fails) / n; math.Abs(rate-0.25) > 0.02 {
		t.Errorf("observed fail rate = %.4f, want ~0.25", rate)
	}
}

// TestEveryKthMode pins the legacy InjectFailures semantics: every k-th
// map attempt fails once, counted across the injector's lifetime.
func TestEveryKthMode(t *testing.T) {
	in := NewInjector(Plan{FailEveryKth: 3})
	var kinds []Kind
	for i := 0; i < 9; i++ {
		kinds = append(kinds, in.Decide(PhaseMap, i, 0).Kind)
	}
	for i, k := range kinds {
		want := KindNone
		if (i+1)%3 == 0 {
			want = KindTransient
		}
		if k != want {
			t.Errorf("attempt %d: kind = %v, want %v", i, k, want)
		}
	}
	// Reduce attempts do not consume the counter.
	in2 := NewInjector(Plan{FailEveryKth: 2})
	in2.Decide(PhaseReduce, 0, 0)
	if in2.Decide(PhaseMap, 0, 0).Kind != KindNone {
		t.Error("reduce decide consumed the every-kth counter")
	}
	if in2.Decide(PhaseMap, 1, 0).Kind != KindTransient {
		t.Error("second map attempt should fail with k=2")
	}
}

// TestBackoffDeterministicAndCapped checks the backoff schedule: seeded
// jitter is reproducible, the ramp is exponential, and the cap holds.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		d1 := p.Backoff(99, PhaseMap, 5, attempt)
		d2 := p.Backoff(99, PhaseMap, 5, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		raw := p.BaseBackoff << uint(attempt)
		if raw > p.MaxBackoff {
			raw = p.MaxBackoff
		}
		if d1 < raw/2 || d1 >= raw {
			t.Errorf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, raw/2, raw)
		}
	}
	if d := p.Backoff(99, PhaseMap, 5, 60); d >= p.MaxBackoff {
		t.Errorf("huge attempt backoff %v not capped below %v", d, p.MaxBackoff)
	}
	// Different tasks jitter differently under the same seed.
	same := true
	for task := 1; task < 10; task++ {
		if p.Backoff(99, PhaseMap, task, 1) != p.Backoff(99, PhaseMap, 0, 1) {
			same = false
		}
	}
	if same {
		t.Error("all tasks produced identical jitter")
	}
	if (RetryPolicy{}).Backoff(1, PhaseMap, 0, 0) != 0 {
		t.Error("zero BaseBackoff must produce zero delay")
	}
}

// TestClassification covers the transient/permanent error taxonomy.
func TestClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is not transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("unmarked errors are permanent by default")
	}
	if !IsTransient(Transientf("flaky %d", 7)) {
		t.Error("Transientf must be transient")
	}
	wrapped := fmt.Errorf("task 3: %w", Transient(errors.New("io glitch")))
	if !IsTransient(wrapped) {
		t.Error("transient marker must survive wrapping")
	}
	if !IsTransient(context.DeadlineExceeded) {
		t.Error("deadline exceeded is retryable")
	}
	if !IsTransient(fmt.Errorf("attempt: %w", context.DeadlineExceeded)) {
		t.Error("wrapped deadline exceeded is retryable")
	}
	inj := &InjectedError{Phase: PhaseMap, Task: 1, Attempt: 0}
	if !IsTransient(inj) || !errors.Is(inj, ErrInjected) {
		t.Error("injected transient failure misclassified")
	}
	perm := &InjectedError{Phase: PhaseReduce, Task: 2, Attempt: 1, Permanent: true}
	if IsTransient(perm) || !errors.Is(perm, ErrInjected) {
		t.Error("injected permanent failure misclassified")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
}

// TestShouldRetry covers the attempt budget.
func TestShouldRetry(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3}
	terr := Transientf("boom")
	if !p.ShouldRetry(terr, 0) || !p.ShouldRetry(terr, 1) {
		t.Error("attempts 0 and 1 have budget left")
	}
	if p.ShouldRetry(terr, 2) {
		t.Error("attempt 2 is the last of 3")
	}
	if p.ShouldRetry(errors.New("permanent"), 0) {
		t.Error("permanent errors are never retried")
	}
	if (RetryPolicy{}).ShouldRetry(terr, 0) {
		t.Error("MaxAttempts<1 clamps to a single attempt")
	}
}

// TestStragglerThreshold covers the factor and the floor.
func TestStragglerThreshold(t *testing.T) {
	p := RetryPolicy{SpeculativeFactor: 2, SpeculativeMin: 10 * time.Millisecond}
	if got := p.StragglerThreshold(20 * time.Millisecond); got != 40*time.Millisecond {
		t.Errorf("threshold = %v, want 40ms", got)
	}
	if got := p.StragglerThreshold(time.Millisecond); got != 10*time.Millisecond {
		t.Errorf("floored threshold = %v, want 10ms", got)
	}
	if got := (RetryPolicy{SpeculativeMin: time.Millisecond}).StragglerThreshold(time.Millisecond); got != 3*time.Millisecond {
		t.Errorf("default factor threshold = %v, want 3ms", got)
	}
}

// TestEventLogJSONL checks that injections are recorded and export as
// parseable JSONL.
func TestEventLogJSONL(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, MapFailRate: 1})
	in.Decide(PhaseMap, 0, 0)
	in.Decide(PhaseMap, 1, 0)
	events := in.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	var buf bytes.Buffer
	if err := in.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2", len(lines))
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if e.Kind != "transient" || e.Phase != PhaseMap {
			t.Errorf("event = %+v", e)
		}
	}
	// A nil injector is inert.
	var nilIn *Injector
	if d := nilIn.Decide(PhaseMap, 0, 0); d.Kind != KindNone {
		t.Error("nil injector must decide none")
	}
	if nilIn.Events() != nil {
		t.Error("nil injector has no events")
	}
}
