// Package voronoi implements the in-memory Voronoi diagram engine used by
// the distributed Voronoi construction of paper §5: a Bowyer–Watson
// incremental Delaunay triangulation, Voronoi region extraction by
// half-plane clipping against Delaunay neighbours, and the dangerous-zone
// safety rule (paper Theorem 1) with the boundary-BFS optimization that
// lets each partition flush final regions early.
package voronoi

import (
	"fmt"
	"math/rand"
	"sort"

	"spatialhadoop/internal/geom"
)

// Delaunay is a Delaunay triangulation of a set of sites.
type Delaunay struct {
	// sites are the real input points; three synthetic "super" vertices
	// are appended internally at indices n, n+1, n+2.
	sites []geom.Point
	pts   []geom.Point // sites + super vertices
	tris  []triangle
	free  []int
	last  int // last created triangle, walk start
}

type triangle struct {
	v     [3]int // vertex indices, CCW
	adj   [3]int // adj[i] is the triangle across edge (v[i], v[(i+1)%3]); -1 if none
	alive bool
}

// NewDelaunay triangulates the given sites. Duplicate points are
// triangulated once (they share a site's region). The input slice is not
// modified.
func NewDelaunay(sites []geom.Point) *Delaunay {
	d := &Delaunay{sites: sites}
	n := len(sites)
	d.pts = make([]geom.Point, n, n+3)
	copy(d.pts, sites)

	// Super triangle comfortably containing the data.
	bb := geom.RectOf(sites)
	if bb.IsEmpty() {
		bb = geom.NewRect(0, 0, 1, 1)
	}
	cx, cy := bb.Center().X, bb.Center().Y
	m := 16 * (1 + bb.Width() + bb.Height())
	s0 := geom.Point{X: cx - 2*m, Y: cy - m}
	s1 := geom.Point{X: cx + 2*m, Y: cy - m}
	s2 := geom.Point{X: cx, Y: cy + 2*m}
	d.pts = append(d.pts, s0, s1, s2)
	d.tris = append(d.tris, triangle{v: [3]int{n, n + 1, n + 2}, adj: [3]int{-1, -1, -1}, alive: true})
	d.last = 0

	// Randomized insertion order for expected near-linear behaviour.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })

	seen := make(map[geom.Point]bool, n)
	for _, i := range order {
		p := d.pts[i]
		if seen[p] {
			continue
		}
		seen[p] = true
		d.insert(i)
	}
	return d
}

// NumSites returns the number of (real) sites.
func (d *Delaunay) NumSites() int { return len(d.sites) }

// Site returns site i.
func (d *Delaunay) Site(i int) geom.Point { return d.sites[i] }

// isSuper reports whether vertex index v is a synthetic super vertex.
func (d *Delaunay) isSuper(v int) bool { return v >= len(d.sites) }

// insert adds point index pi via the Bowyer–Watson cavity algorithm.
func (d *Delaunay) insert(pi int) {
	p := d.pts[pi]
	t0 := d.locate(p)

	// Collect the cavity: triangles whose circumcircle contains p,
	// connected to the containing triangle.
	bad := map[int]bool{t0: true}
	queue := []int{t0}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, nb := range d.tris[t].adj {
			if nb < 0 || bad[nb] {
				continue
			}
			if d.circumContains(nb, p) {
				bad[nb] = true
				queue = append(queue, nb)
			}
		}
	}

	// Boundary edges of the cavity, directed CCW around it.
	type bedge struct {
		a, b    int
		outside int
	}
	var boundary []bedge
	for t := range bad {
		tr := &d.tris[t]
		for i := 0; i < 3; i++ {
			nb := tr.adj[i]
			if nb < 0 || !bad[nb] {
				boundary = append(boundary, bedge{a: tr.v[i], b: tr.v[(i+1)%3], outside: nb})
			}
		}
	}

	// Remove cavity triangles.
	for t := range bad {
		d.tris[t].alive = false
		d.free = append(d.free, t)
	}

	// Retriangulate: one new triangle per boundary edge.
	newByFirst := make(map[int]int, len(boundary)) // edge start vertex -> new triangle
	created := make([]int, 0, len(boundary))
	for _, e := range boundary {
		t := d.alloc(triangle{v: [3]int{e.a, e.b, pi}, adj: [3]int{e.outside, -1, -1}, alive: true})
		if e.outside >= 0 {
			d.setAdj(e.outside, e.b, e.a, t)
		}
		newByFirst[e.a] = t
		created = append(created, t)
	}
	// Link consecutive new triangles: edge (b, pi) of triangle (a,b,pi)
	// pairs with edge (pi, b) of the triangle starting at b.
	for _, t := range created {
		tr := &d.tris[t]
		b := tr.v[1]
		next, ok := newByFirst[b]
		if !ok {
			panic(fmt.Sprintf("voronoi: cavity boundary not closed at vertex %d", b))
		}
		tr.adj[1] = next        // edge (b, pi)
		d.tris[next].adj[2] = t // edge (pi, a=b) of the next triangle
	}
	d.last = created[0]
}

// alloc stores a triangle, reusing freed slots.
func (d *Delaunay) alloc(t triangle) int {
	if n := len(d.free); n > 0 {
		idx := d.free[n-1]
		d.free = d.free[:n-1]
		d.tris[idx] = t
		return idx
	}
	d.tris = append(d.tris, t)
	return len(d.tris) - 1
}

// setAdj updates triangle t's adjacency across directed edge (a, b).
func (d *Delaunay) setAdj(t, a, b, neighbor int) {
	tr := &d.tris[t]
	for i := 0; i < 3; i++ {
		if tr.v[i] == a && tr.v[(i+1)%3] == b {
			tr.adj[i] = neighbor
			return
		}
	}
	panic(fmt.Sprintf("voronoi: edge (%d,%d) not found in triangle %d", a, b, t))
}

// locate returns a triangle containing p, walking from the last created
// triangle and falling back to a scan if the walk cycles.
func (d *Delaunay) locate(p geom.Point) int {
	t := d.last
	if t < 0 || t >= len(d.tris) || !d.tris[t].alive {
		t = d.anyAlive()
	}
	for steps := 0; steps < 4*len(d.tris)+16; steps++ {
		tr := &d.tris[t]
		moved := false
		for i := 0; i < 3; i++ {
			a, b := d.pts[tr.v[i]], d.pts[tr.v[(i+1)%3]]
			if geom.Area2(a, b, p) < 0 {
				nb := tr.adj[i]
				if nb >= 0 {
					t = nb
					moved = true
					break
				}
			}
		}
		if !moved {
			return t
		}
	}
	// Defensive fallback: exhaustive scan.
	for i := range d.tris {
		if d.tris[i].alive && d.triContains(i, p) {
			return i
		}
	}
	panic("voronoi: point location failed")
}

func (d *Delaunay) anyAlive() int {
	for i := range d.tris {
		if d.tris[i].alive {
			return i
		}
	}
	panic("voronoi: no live triangles")
}

func (d *Delaunay) triContains(t int, p geom.Point) bool {
	tr := &d.tris[t]
	for i := 0; i < 3; i++ {
		if geom.Area2(d.pts[tr.v[i]], d.pts[tr.v[(i+1)%3]], p) < 0 {
			return false
		}
	}
	return true
}

// circumContains reports whether the circumcircle of triangle t strictly
// contains p. Triangles with exactly one super vertex are handled
// symbolically (their circumcircle degenerates to the half-plane left of
// the real edge), which keeps the predicate exact where it matters.
func (d *Delaunay) circumContains(t int, p geom.Point) bool {
	tr := &d.tris[t]
	super := -1
	nSuper := 0
	for i, v := range tr.v {
		if d.isSuper(v) {
			super = i
			nSuper++
		}
	}
	switch nSuper {
	case 1:
		u := d.pts[tr.v[(super+1)%3]]
		v := d.pts[tr.v[(super+2)%3]]
		return geom.Area2(u, v, p) > 0
	default:
		a, b, c := d.pts[tr.v[0]], d.pts[tr.v[1]], d.pts[tr.v[2]]
		return geom.InCircle(a, b, c, p)
	}
}

// Neighbors returns, for every site, the indices of its Delaunay-adjacent
// real sites (sorted). Sites adjacent to a super vertex are on the hull of
// the triangulation and their Voronoi regions are unbounded.
func (d *Delaunay) Neighbors() ([][]int, []bool) {
	n := len(d.sites)
	adj := make([]map[int]bool, n)
	onHull := make([]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool, 8)
	}
	for ti := range d.tris {
		tr := &d.tris[ti]
		if !tr.alive {
			continue
		}
		for i := 0; i < 3; i++ {
			a, b := tr.v[i], tr.v[(i+1)%3]
			switch {
			case d.isSuper(a) && !d.isSuper(b):
				onHull[b] = true
			case d.isSuper(b) && !d.isSuper(a):
				onHull[a] = true
			case !d.isSuper(a) && !d.isSuper(b):
				adj[a][b] = true
				adj[b][a] = true
			}
		}
	}
	out := make([][]int, n)
	for i, m := range adj {
		lst := make([]int, 0, len(m))
		for v := range m {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		out[i] = lst
	}
	return out, onHull
}

// Triangles returns the vertex triples of all live triangles consisting
// purely of real sites.
func (d *Delaunay) Triangles() [][3]int {
	var out [][3]int
	for i := range d.tris {
		tr := &d.tris[i]
		if !tr.alive {
			continue
		}
		if d.isSuper(tr.v[0]) || d.isSuper(tr.v[1]) || d.isSuper(tr.v[2]) {
			continue
		}
		out = append(out, tr.v)
	}
	return out
}

// CheckDelaunay verifies the empty-circumcircle property of every real
// triangle against every site, in O(T*n); it is a test oracle only.
func (d *Delaunay) CheckDelaunay() error {
	for _, tv := range d.Triangles() {
		a, b, c := d.pts[tv[0]], d.pts[tv[1]], d.pts[tv[2]]
		for i, p := range d.sites {
			if i == tv[0] || i == tv[1] || i == tv[2] {
				continue
			}
			if p.Equal(a) || p.Equal(b) || p.Equal(c) {
				continue
			}
			if geom.InCircle(a, b, c, p) {
				return fmt.Errorf("voronoi: site %v inside circumcircle of (%v,%v,%v)", p, a, b, c)
			}
		}
	}
	return nil
}
