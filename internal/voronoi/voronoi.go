package voronoi

import (
	"math"

	"spatialhadoop/internal/geom"
)

// Diagram is the Voronoi diagram of a set of sites, backed by their
// Delaunay triangulation (the dual).
type Diagram struct {
	d         *Delaunay
	neighbors [][]int
	onHull    []bool
	// circum[i] are the circumcircles (center, radius) of the Delaunay
	// triangles incident to site i; their union is the site's dangerous
	// zone (paper Fig. 9).
	circum [][]circle
}

type circle struct {
	c geom.Point
	r float64
}

// New computes the Voronoi diagram of the sites.
func New(sites []geom.Point) *Diagram {
	d := NewDelaunay(sites)
	vd := &Diagram{d: d}
	vd.neighbors, vd.onHull = d.Neighbors()
	vd.circum = make([][]circle, len(sites))
	for _, tv := range d.Triangles() {
		a, b, c := sites[tv[0]], sites[tv[1]], sites[tv[2]]
		cc, ok := geom.Circumcenter(a, b, c)
		if !ok {
			continue
		}
		circ := circle{c: cc, r: cc.Dist(a)}
		for _, v := range tv {
			vd.circum[v] = append(vd.circum[v], circ)
		}
	}
	return vd
}

// NumSites returns the number of sites.
func (vd *Diagram) NumSites() int { return vd.d.NumSites() }

// Triangles returns the Delaunay triangles (site index triples) of the
// diagram's dual triangulation.
func (vd *Diagram) Triangles() [][3]int { return vd.d.Triangles() }

// Site returns site i.
func (vd *Diagram) Site(i int) geom.Point { return vd.d.Site(i) }

// Neighbors returns the Delaunay neighbours of site i (do not modify).
func (vd *Diagram) Neighbors(i int) []int { return vd.neighbors[i] }

// IsOpen reports whether site i's Voronoi region is unbounded (the site is
// on the convex hull of the triangulation). Open regions are never safe.
func (vd *Diagram) IsOpen(i int) bool { return vd.onHull[i] }

// Region returns site i's Voronoi region clipped to the given rectangle,
// computed by clipping the rectangle against the bisector half-plane of
// every Delaunay neighbour. Because non-neighbour constraints are never
// binding on the true region, the result is exactly region(i) ∩ clip.
func (vd *Diagram) Region(i int, clip geom.Rect) geom.Polygon {
	if len(vd.neighbors[i]) == 0 && vd.NumSites() > 1 {
		// Degenerate configuration (e.g. all sites collinear): the dual
		// triangulation carries no adjacency, so fall back to clipping
		// against every other site.
		return BruteRegion(vd.d.sites, i, clip)
	}
	poly := geom.RectPoly(clip).Vertices
	s := vd.d.Site(i)
	for _, j := range vd.neighbors[i] {
		poly = clipHalfPlane(poly, s, vd.d.Site(j))
		if len(poly) == 0 {
			break
		}
	}
	return geom.Polygon{Vertices: poly}
}

// clipHalfPlane clips polygon poly to the half-plane of points at least as
// close to s as to q (Sutherland–Hodgman against the bisector).
func clipHalfPlane(poly []geom.Point, s, q geom.Point) []geom.Point {
	if len(poly) == 0 {
		return poly
	}
	// Inside test: (q-s)·x <= (q-s)·(s+q)/2.
	n := q.Sub(s)
	bound := n.Dot(geom.Midpoint(s, q))
	inside := func(p geom.Point) bool { return n.Dot(p) <= bound }
	cross := func(a, b geom.Point) geom.Point {
		da := n.Dot(a) - bound
		db := n.Dot(b) - bound
		t := da / (da - db)
		return geom.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
	}
	out := make([]geom.Point, 0, len(poly)+2)
	for i := 0; i < len(poly); i++ {
		a := poly[i]
		b := poly[(i+1)%len(poly)]
		ain, bin := inside(a), inside(b)
		switch {
		case ain && bin:
			out = append(out, b)
		case ain && !bin:
			out = append(out, cross(a, b))
		case !ain && bin:
			out = append(out, cross(a, b), b)
		}
	}
	return out
}

// Safe reports whether site i's region is safe for partition boundary
// part: the region is closed and its dangerous zone — the union of the
// circumcircles of the site's incident Delaunay triangles — lies entirely
// inside part (paper Theorem 1 / Corollary 1). Safe regions can never be
// changed by sites outside the partition, so they are flushed as final.
func (vd *Diagram) Safe(i int, part geom.Rect) bool {
	if vd.onHull[i] || len(vd.circum[i]) == 0 {
		return false
	}
	for _, c := range vd.circum[i] {
		if c.c.X-c.r < part.MinX || c.c.X+c.r > part.MaxX ||
			c.c.Y-c.r < part.MinY || c.c.Y+c.r > part.MaxY {
			return false
		}
	}
	return true
}

// SafeSites classifies every site by applying the pruning rule directly.
func (vd *Diagram) SafeSites(part geom.Rect) []bool {
	out := make([]bool, vd.NumSites())
	for i := range out {
		out[i] = vd.Safe(i, part)
	}
	return out
}

// SafeSitesFrontier classifies sites with the optimization of paper §5.2:
// all non-safe regions form a contiguous block touching the partition
// boundary, so a BFS that starts from boundary-overlapping regions and
// expands only through non-safe regions visits every non-safe region; the
// rule is evaluated only on visited regions. RuleApplications reports how
// many regions had the (expensive) dangerous-zone test evaluated.
func (vd *Diagram) SafeSitesFrontier(part geom.Rect) (safe []bool, ruleApplications int) {
	n := vd.NumSites()
	safe = make([]bool, n)
	for i := range safe {
		safe[i] = true
	}
	visited := make([]bool, n)
	var queue []int
	// Seed: open regions and regions whose dangerous zone could not be
	// evaluated; all regions overlapping the boundary are open or have a
	// circumcircle crossing it, and open regions are always on the hull.
	for i := 0; i < n; i++ {
		if vd.onHull[i] || len(vd.circum[i]) == 0 {
			safe[i] = false
			visited[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, j := range vd.neighbors[i] {
			if visited[j] {
				continue
			}
			visited[j] = true
			ruleApplications++
			if vd.Safe(j, part) {
				safe[j] = true
				continue
			}
			safe[j] = false
			queue = append(queue, j)
		}
	}
	return safe, ruleApplications
}

// RegionArea returns the area of site i's region clipped to clip; a test
// and reporting convenience.
func (vd *Diagram) RegionArea(i int, clip geom.Rect) float64 {
	return vd.Region(i, clip).Area()
}

// BruteRegion computes site i's region clipped to clip by intersecting
// half-planes against every other site — the O(n) oracle used by the
// differential tests.
func BruteRegion(sites []geom.Point, i int, clip geom.Rect) geom.Polygon {
	poly := geom.RectPoly(clip).Vertices
	s := sites[i]
	for j, q := range sites {
		if j == i || q.Equal(s) {
			continue
		}
		poly = clipHalfPlane(poly, s, q)
		if len(poly) == 0 {
			break
		}
	}
	return geom.Polygon{Vertices: poly}
}

// NearestSite returns the index of the site nearest to p (linear scan
// oracle for tests).
func NearestSite(sites []geom.Point, p geom.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, s := range sites {
		if d := s.Dist2(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
