package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
)

func TestDelaunayTiny(t *testing.T) {
	sites := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}}
	d := NewDelaunay(sites)
	tris := d.Triangles()
	if len(tris) != 1 {
		t.Fatalf("triangles = %d, want 1", len(tris))
	}
	if err := d.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunayEmptyCircumcircle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 10, 50, 200, 800} {
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		d := NewDelaunay(sites)
		if err := d.CheckDelaunay(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Euler: a triangulation of n points with h hull points has
		// 2n - 2 - h triangles.
		_, onHull := d.Neighbors()
		h := 0
		for _, b := range onHull {
			if b {
				h++
			}
		}
		if got, want := len(d.Triangles()), 2*n-2-h; got != want {
			t.Errorf("n=%d: triangles = %d, want %d (h=%d)", n, got, want, h)
		}
	}
}

func TestDelaunayDuplicates(t *testing.T) {
	sites := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}, {X: 0, Y: 0}, {X: 10, Y: 0}}
	d := NewDelaunay(sites)
	if err := d.CheckDelaunay(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	clip := geom.NewRect(0, 0, 1000, 1000)
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(150)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		vd := New(sites)
		for i := 0; i < n; i++ {
			got := vd.Region(i, clip).Area()
			want := BruteRegion(sites, i, clip).Area()
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("trial %d site %d: area %g, want %g", trial, i, got, want)
			}
		}
	}
}

func TestRegionsPartitionTheClipRect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	clip := geom.NewRect(0, 0, 100, 100)
	sites := datagen.Points(datagen.Uniform, 200, clip, 4)
	vd := New(sites)
	total := 0.0
	for i := range sites {
		total += vd.Region(i, clip).Area()
	}
	if math.Abs(total-clip.Area()) > 1e-6*clip.Area() {
		t.Errorf("region areas sum to %g, want %g", total, clip.Area())
	}
	// Random point membership: the containing region's site is nearest.
	for k := 0; k < 200; k++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		nearest := NearestSite(sites, p)
		if !vd.Region(nearest, clip).ContainsPoint(p) {
			t.Fatalf("point %v not in region of its nearest site", p)
		}
	}
}

func TestSafetyRuleIsSound(t *testing.T) {
	// Compute the VD of a partition's sites; every safe region must be
	// identical (same area) in the VD of the partition's sites plus
	// arbitrary outside sites.
	part := geom.NewRect(0, 0, 100, 100)
	inside := datagen.Points(datagen.Uniform, 300, part, 11)
	outside := datagen.Points(datagen.Uniform, 300, geom.NewRect(-200, -200, 400, 400), 12)
	var outsideOnly []geom.Point
	for _, p := range outside {
		if !part.ContainsPoint(p) {
			outsideOnly = append(outsideOnly, p)
		}
	}
	local := New(inside)
	global := New(append(append([]geom.Point{}, inside...), outsideOnly...))

	clip := geom.NewRect(-500, -500, 600, 600)
	safe := local.SafeSites(part)
	nSafe := 0
	for i, s := range safe {
		if !s {
			continue
		}
		nSafe++
		la := local.Region(i, clip).Area()
		ga := global.Region(i, clip).Area()
		if math.Abs(la-ga) > 1e-6*math.Max(1, la) {
			t.Fatalf("safe region %d changed after adding outside sites: %g vs %g", i, la, ga)
		}
	}
	if nSafe == 0 {
		t.Fatal("expected some safe regions for 300 interior sites")
	}
	t.Logf("safe: %d / %d", nSafe, len(inside))
}

func TestFrontierMatchesDirect(t *testing.T) {
	part := geom.NewRect(0, 0, 1000, 1000)
	for _, dist := range []datagen.Distribution{datagen.Uniform, datagen.Gaussian, datagen.Clustered} {
		sites := datagen.Points(dist, 600, part, 31)
		vd := New(sites)
		direct := vd.SafeSites(part)
		frontier, apps := vd.SafeSitesFrontier(part)
		for i := range direct {
			if direct[i] != frontier[i] {
				t.Fatalf("%v: site %d classified %v directly but %v by frontier",
					dist, i, direct[i], frontier[i])
			}
		}
		if apps >= len(sites) {
			t.Errorf("%v: frontier applied rule %d times for %d sites (no saving)", dist, apps, len(sites))
		}
	}
}

// TestCollinearSitesFallback checks the degenerate configuration the
// Delaunay dual cannot represent: all sites on one line. Region falls back
// to brute-force clipping, so the regions must still tile the clip rect.
func TestCollinearSitesFallback(t *testing.T) {
	clip := geom.NewRect(0, 0, 100, 100)
	sites := []geom.Point{
		{X: 10, Y: 50}, {X: 30, Y: 50}, {X: 55, Y: 50}, {X: 80, Y: 50},
	}
	vd := New(sites)
	total := 0.0
	for i := range sites {
		area := vd.Region(i, clip).Area()
		if area <= 0 {
			t.Fatalf("site %d has empty region", i)
		}
		total += area
	}
	if math.Abs(total-clip.Area()) > 1e-6*clip.Area() {
		t.Errorf("collinear regions sum to %g, want %g", total, clip.Area())
	}
	// Bisector correctness: midpoint of each gap is equidistant, points
	// clearly on one side belong to that side's region.
	if !vd.Region(0, clip).ContainsPoint(geom.Pt(5, 90)) {
		t.Error("leftmost region should own the left edge")
	}
	if !vd.Region(3, clip).ContainsPoint(geom.Pt(99, 1)) {
		t.Error("rightmost region should own the right edge")
	}
}

func TestSingleAndTwoSites(t *testing.T) {
	clip := geom.NewRect(0, 0, 10, 10)
	one := New([]geom.Point{{X: 3, Y: 3}})
	if got := one.Region(0, clip).Area(); math.Abs(got-100) > 1e-9 {
		t.Errorf("single site region area %g, want 100", got)
	}
	two := New([]geom.Point{{X: 2, Y: 5}, {X: 8, Y: 5}})
	a0 := two.Region(0, clip).Area()
	a1 := two.Region(1, clip).Area()
	if math.Abs(a0-50) > 1e-9 || math.Abs(a1-50) > 1e-9 {
		t.Errorf("two-site halves: %g, %g (want 50, 50)", a0, a1)
	}
}

func TestOpenRegionsNeverSafe(t *testing.T) {
	part := geom.NewRect(0, 0, 10, 10)
	sites := datagen.Points(datagen.Uniform, 100, part, 3)
	vd := New(sites)
	for i := 0; i < vd.NumSites(); i++ {
		if vd.IsOpen(i) && vd.Safe(i, part) {
			t.Fatalf("open region %d classified safe", i)
		}
	}
}
