package pigeon

import "testing"

// FuzzParse checks the parser never panics on arbitrary scripts.
func FuzzParse(f *testing.F) {
	f.Add("pts = GENERATE uniform 100;")
	f.Add("DUMP x LIMIT(3);")
	f.Add("a = LOAD 'f' AS points; b = INDEX a BY 'grid';")
	f.Add("= ; ( ) , '")
	f.Add("-- just a comment")
	f.Add("x = RANGE y RECT(1,2,3,4);")
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		for _, st := range stmts {
			if st.Op == "" {
				t.Fatalf("parsed statement with empty op from %q", src)
			}
		}
	})
}
