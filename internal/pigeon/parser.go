package pigeon

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is one parsed pigeon statement.
type Statement struct {
	// Target is the assigned variable ("" for DUMP/STORE/DESCRIBE).
	Target string
	// Op is the uppercased operation keyword.
	Op string
	// Args are the operand variables, in order.
	Args []string
	// Strings are quoted-literal operands (paths, technique names).
	Strings []string
	// Numbers are the numeric operands (rect coordinates, k, n, seed...).
	Numbers []float64
	// Line for error reporting.
	Line int
}

// operations and their shapes: verb -> (assigns result, min/max var args).
var statementShapes = map[string]struct {
	assigns bool
}{
	"LOAD": {true}, "GENERATE": {true}, "INDEX": {true},
	"RANGE": {true}, "KNN": {true}, "JOIN": {true},
	"SKYLINE": {true}, "CONVEXHULL": {true}, "UNION": {true},
	"VORONOI": {true}, "DELAUNAY": {true},
	"CLOSESTPAIR": {true}, "FARTHESTPAIR": {true},
	"ANN":  {true},
	"DUMP": {false}, "STORE": {false}, "DESCRIBE": {false}, "PLOT": {false},
}

// Parse turns a script into statements.
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for !p.at(tokEOF) {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return fmt.Errorf("pigeon: line %d: expected %q, found %q", p.cur().line, s, p.cur().text)
	}
	p.next()
	return nil
}

// statement parses either "<var> = VERB operands ;" or "VERB operands ;".
func (p *parser) statement() (Statement, error) {
	var st Statement
	if !p.at(tokIdent) {
		return st, fmt.Errorf("pigeon: line %d: expected identifier, found %q", p.cur().line, p.cur().text)
	}
	first := p.next()
	st.Line = first.line

	verb := strings.ToUpper(first.text)
	if _, isVerb := statementShapes[verb]; isVerb && !p.atPunct("=") {
		st.Op = verb
	} else {
		st.Target = first.text
		if err := p.expectPunct("="); err != nil {
			return st, err
		}
		if !p.at(tokIdent) {
			return st, fmt.Errorf("pigeon: line %d: expected operation after '='", p.cur().line)
		}
		st.Op = strings.ToUpper(p.next().text)
	}
	shape, ok := statementShapes[st.Op]
	if !ok {
		return st, fmt.Errorf("pigeon: line %d: unknown operation %q", st.Line, st.Op)
	}
	if shape.assigns && st.Target == "" {
		return st, fmt.Errorf("pigeon: line %d: %s must be assigned to a variable", st.Line, st.Op)
	}
	if !shape.assigns && st.Target != "" {
		return st, fmt.Errorf("pigeon: line %d: %s does not produce a result", st.Line, st.Op)
	}

	// Operands: identifiers, strings, numbers, and helper forms
	// RECT(a,b,c,d) / POINT(x,y) whose numbers are flattened, plus
	// keyword-prefixed numbers (K 5, SEED 9, LIMIT 3) whose keywords are
	// recorded as args.
	for !p.atPunct(";") {
		t := p.cur()
		switch {
		case t.kind == tokEOF:
			return st, fmt.Errorf("pigeon: line %d: missing ';'", st.Line)
		case t.kind == tokString:
			st.Strings = append(st.Strings, t.text)
			p.next()
		case t.kind == tokNumber:
			v, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return st, fmt.Errorf("pigeon: line %d: bad number %q", t.line, t.text)
			}
			st.Numbers = append(st.Numbers, v)
			p.next()
		case t.kind == tokIdent:
			p.next()
			if p.atPunct("(") {
				p.next()
				for !p.atPunct(")") {
					nt := p.cur()
					if nt.kind != tokNumber {
						return st, fmt.Errorf("pigeon: line %d: expected number in %s(...)", nt.line, t.text)
					}
					v, err := strconv.ParseFloat(nt.text, 64)
					if err != nil {
						return st, fmt.Errorf("pigeon: line %d: bad number %q", nt.line, nt.text)
					}
					st.Numbers = append(st.Numbers, v)
					p.next()
					if p.atPunct(",") {
						p.next()
					}
				}
				p.next() // ')'
				st.Args = append(st.Args, strings.ToUpper(t.text))
			} else {
				st.Args = append(st.Args, t.text)
			}
		case t.kind == tokPunct && t.text == ",":
			p.next()
		default:
			return st, fmt.Errorf("pigeon: line %d: unexpected token %q", t.line, t.text)
		}
	}
	p.next() // ';'
	return st, nil
}
