// Package pigeon implements the language layer of the SIGMOD'14 system
// paper: a small Pig-Latin-like declarative language for spatial
// processing. Scripts are sequences of statements that load or generate
// datasets, index them, run the system and CG_Hadoop operations, and dump
// or store results:
//
//	pts    = GENERATE clustered 100000 SEED(7);
//	idx    = INDEX pts BY 'str+';
//	nearby = RANGE idx RECT(1000, 1000, 5000, 4000);
//	sky    = SKYLINE idx;            -- also: CONVEXHULL, UNION, VORONOI,
//	nn     = ANN idx;                --  DELAUNAY, CLOSESTPAIR, FARTHESTPAIR,
//	j      = JOIN zidx widx;         --  KNN ... POINT(x,y) K(k)
//	DUMP sky LIMIT(10);
//	STORE nearby INTO 'nearby.txt';
//	PLOT idx INTO 'density.png' SIZE(512, 512);
//	DESCRIBE idx;
//
// The interpreter executes each statement as the corresponding MapReduce
// job(s) on a core.System.
package pigeon

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokString
	tokPunct // = ( ) , ;
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// lex splits a script into tokens. Comments run from "--" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("pigeon: line %d: unterminated string", line)
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("pigeon: line %d: unterminated string", line)
			}
			toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i, line: line})
			i = j + 1
		case strings.ContainsRune("=(),;", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i, line: line})
			i++
		case c == '+' || c == '-' || c == '.' || unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (strings.ContainsRune("+-.eE", rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				// Stop a trailing +/- that is not an exponent sign.
				if (src[j] == '+' || src[j] == '-') && j > i && src[j-1] != 'e' && src[j-1] != 'E' {
					break
				}
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i, line: line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i, line: line})
			i = j
		default:
			return nil, fmt.Errorf("pigeon: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}
