package pigeon

import (
	"fmt"
	"io"
	"os"
	"strings"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// Kind describes what a pigeon variable holds.
type Kind string

// Variable kinds.
const (
	KindPoints    Kind = "points"
	KindRegions   Kind = "regions"
	KindPairs     Kind = "pairs"     // join results, tab-separated
	KindPointPair Kind = "pointpair" // closest/farthest pair
	KindSegments  Kind = "segments"
	KindVoronoi   Kind = "voronoi"
	KindTriangles Kind = "triangles"
)

// Value is the result bound to a pigeon variable: a record batch plus,
// for indexed datasets, the name of the backing file in the system FS.
type Value struct {
	Kind Kind
	// Records are the encoded rows (geomio formats).
	Records []string
	// File is the DFS file name for indexed/loaded datasets ("" for
	// in-memory query results).
	File string
	// Indexed reports whether File carries a global index.
	Indexed bool
}

// Interp executes pigeon statements against a SpatialHadoop system.
type Interp struct {
	sys  *core.System
	vars map[string]Value
	out  io.Writer
	// ReadFile loads script-referenced paths; overridable for tests.
	ReadFile func(path string) ([]byte, error)
	nfiles   int
}

// New creates an interpreter writing DUMP output to out.
func New(sys *core.System, out io.Writer) *Interp {
	return &Interp{
		sys:      sys,
		vars:     make(map[string]Value),
		out:      out,
		ReadFile: os.ReadFile,
	}
}

// Var returns the value bound to name.
func (in *Interp) Var(name string) (Value, bool) {
	v, ok := in.vars[name]
	return v, ok
}

// Exec parses and runs a whole script.
func (in *Interp) Exec(src string) error {
	stmts, err := Parse(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := in.run(st); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) fresh(prefix string) string {
	in.nfiles++
	return fmt.Sprintf("pigeon.%s.%d", prefix, in.nfiles)
}

func (in *Interp) lookup(st Statement, i int) (Value, error) {
	if i >= len(st.Args) {
		return Value{}, fmt.Errorf("pigeon: line %d: %s needs an input variable", st.Line, st.Op)
	}
	v, ok := in.vars[st.Args[i]]
	if !ok {
		return Value{}, fmt.Errorf("pigeon: line %d: undefined variable %q", st.Line, st.Args[i])
	}
	return v, nil
}

// needNumbers fetches st.Numbers with arity checking.
func needNumbers(st Statement, n int) ([]float64, error) {
	if len(st.Numbers) < n {
		return nil, fmt.Errorf("pigeon: line %d: %s needs %d numeric arguments, got %d",
			st.Line, st.Op, n, len(st.Numbers))
	}
	return st.Numbers, nil
}

func (in *Interp) run(st Statement) error {
	switch st.Op {
	case "LOAD":
		return in.runLoad(st)
	case "GENERATE":
		return in.runGenerate(st)
	case "INDEX":
		return in.runIndex(st)
	case "RANGE":
		return in.runRange(st)
	case "KNN":
		return in.runKNN(st)
	case "JOIN":
		return in.runJoin(st)
	case "SKYLINE", "CONVEXHULL":
		return in.runPointsOp(st)
	case "CLOSESTPAIR", "FARTHESTPAIR":
		return in.runPairOp(st)
	case "VORONOI":
		return in.runVoronoi(st)
	case "DELAUNAY":
		return in.runDelaunay(st)
	case "UNION":
		return in.runUnion(st)
	case "ANN":
		return in.runANN(st)
	case "PLOT":
		return in.runPlot(st)
	case "DUMP":
		return in.runDump(st)
	case "DESCRIBE":
		return in.runDescribe(st)
	case "STORE":
		return in.runStore(st)
	default:
		return fmt.Errorf("pigeon: line %d: unhandled operation %s", st.Line, st.Op)
	}
}

// runLoad: v = LOAD 'path' AS POINTS|REGIONS;
func (in *Interp) runLoad(st Statement) error {
	if len(st.Strings) != 1 {
		return fmt.Errorf("pigeon: line %d: LOAD needs one quoted path", st.Line)
	}
	kind := KindPoints
	for _, a := range st.Args {
		switch strings.ToUpper(a) {
		case "AS", "POINTS", "POINT":
		case "REGIONS", "POLYGONS":
			kind = KindRegions
		default:
			return fmt.Errorf("pigeon: line %d: LOAD: unexpected %q", st.Line, a)
		}
	}
	data, err := in.ReadFile(st.Strings[0])
	if err != nil {
		return fmt.Errorf("pigeon: line %d: %v", st.Line, err)
	}
	var recs []string
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			recs = append(recs, l)
		}
	}
	// Validate eagerly so errors point at the LOAD statement.
	if kind == KindPoints {
		if _, err := geomio.DecodePoints(recs); err != nil {
			return fmt.Errorf("pigeon: line %d: %v", st.Line, err)
		}
	} else {
		for _, r := range recs {
			if _, err := geomio.DecodeRegion(r); err != nil {
				return fmt.Errorf("pigeon: line %d: %v", st.Line, err)
			}
		}
	}
	file := in.fresh("load")
	if err := in.sys.FS().WriteFile(file, recs); err != nil {
		return err
	}
	in.vars[st.Target] = Value{Kind: kind, Records: recs, File: file}
	return nil
}

// runGenerate: v = GENERATE <dist> <n> [SEED s];
func (in *Interp) runGenerate(st Statement) error {
	if len(st.Args) < 1 {
		return fmt.Errorf("pigeon: line %d: GENERATE needs a distribution", st.Line)
	}
	dist, err := datagen.ParseDistribution(strings.ToLower(st.Args[0]))
	if err != nil {
		return fmt.Errorf("pigeon: line %d: %v", st.Line, err)
	}
	nums, err := needNumbers(st, 1)
	if err != nil {
		return err
	}
	n := int(nums[0])
	seed := int64(1)
	if len(nums) > 1 {
		seed = int64(nums[1])
	}
	pts := datagen.Points(dist, n, datagen.DefaultArea, seed)
	recs := geomio.EncodePoints(pts)
	file := in.fresh("gen")
	if err := in.sys.FS().WriteFile(file, recs); err != nil {
		return err
	}
	in.vars[st.Target] = Value{Kind: KindPoints, Records: recs, File: file}
	return nil
}

// runIndex: v = INDEX <var> BY 'technique';
func (in *Interp) runIndex(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if len(st.Strings) != 1 {
		return fmt.Errorf("pigeon: line %d: INDEX needs a quoted technique (e.g. BY 'str+')", st.Line)
	}
	tech, err := sindex.ParseTechnique(strings.ToLower(st.Strings[0]))
	if err != nil {
		return fmt.Errorf("pigeon: line %d: %v", st.Line, err)
	}
	file := in.fresh("idx")
	switch src.Kind {
	case KindPoints:
		pts, err := geomio.DecodePoints(src.Records)
		if err != nil {
			return err
		}
		if _, err := in.sys.LoadPoints(file, pts, tech); err != nil {
			return err
		}
	case KindRegions:
		regions := make([]geom.Region, len(src.Records))
		for i, r := range src.Records {
			rg, err := geomio.DecodeRegion(r)
			if err != nil {
				return err
			}
			regions[i] = rg
		}
		if _, err := in.sys.LoadRegions(file, regions, tech); err != nil {
			return err
		}
	default:
		return fmt.Errorf("pigeon: line %d: cannot index a %s value", st.Line, src.Kind)
	}
	in.vars[st.Target] = Value{Kind: src.Kind, Records: src.Records, File: file, Indexed: true}
	return nil
}

// requireFile ensures the value is a stored dataset.
func requireFile(st Statement, v Value) error {
	if v.File == "" {
		return fmt.Errorf("pigeon: line %d: %s needs a loaded or indexed dataset", st.Line, st.Op)
	}
	return nil
}

// runRange: v = RANGE <var> RECT(x1,y1,x2,y2);
func (in *Interp) runRange(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	nums, err := needNumbers(st, 4)
	if err != nil {
		return err
	}
	rect := geom.NewRect(nums[0], nums[1], nums[2], nums[3])
	switch src.Kind {
	case KindPoints:
		res, _, err := ops.RangeQueryPoints(in.sys, src.File, rect)
		if err != nil {
			return err
		}
		in.vars[st.Target] = Value{Kind: KindPoints, Records: geomio.EncodePoints(res)}
	case KindRegions:
		res, _, err := ops.RangeQueryRegions(in.sys, src.File, rect)
		if err != nil {
			return err
		}
		recs := make([]string, len(res))
		for i, rg := range res {
			recs[i] = geomio.EncodeRegion(rg)
		}
		in.vars[st.Target] = Value{Kind: KindRegions, Records: recs}
	default:
		return fmt.Errorf("pigeon: line %d: RANGE over %s", st.Line, src.Kind)
	}
	return nil
}

// runKNN: v = KNN <var> POINT(x,y) K(<k>);
func (in *Interp) runKNN(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: KNN needs a points dataset", st.Line)
	}
	nums, err := needNumbers(st, 3)
	if err != nil {
		return fmt.Errorf("pigeon: line %d: KNN needs POINT(x,y) and K(k)", st.Line)
	}
	res, _, err := ops.KNN(in.sys, src.File, geom.Pt(nums[0], nums[1]), int(nums[2]))
	if err != nil {
		return err
	}
	in.vars[st.Target] = Value{Kind: KindPoints, Records: geomio.EncodePoints(res)}
	return nil
}

// runJoin: v = JOIN <a> <b>;
func (in *Interp) runJoin(st Statement) error {
	a, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	b, err := in.lookup(st, 1)
	if err != nil {
		return err
	}
	if err := requireFile(st, a); err != nil {
		return err
	}
	if err := requireFile(st, b); err != nil {
		return err
	}
	if a.Kind != KindRegions || b.Kind != KindRegions {
		return fmt.Errorf("pigeon: line %d: JOIN needs two region datasets", st.Line)
	}
	var recs []string
	if a.Indexed && b.Indexed {
		pairs, _, err := ops.SpatialJoinIndexed(in.sys, a.File, b.File)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			recs = append(recs, p.Left+"\t"+p.Right)
		}
	} else {
		pairs, _, err := ops.SpatialJoinPBSM(in.sys, a.File, b.File, 0)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			recs = append(recs, p.Left+"\t"+p.Right)
		}
	}
	in.vars[st.Target] = Value{Kind: KindPairs, Records: recs}
	return nil
}

// runPointsOp handles SKYLINE and CONVEXHULL.
func (in *Interp) runPointsOp(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: %s needs a points dataset", st.Line, st.Op)
	}
	var res []geom.Point
	if st.Op == "SKYLINE" {
		if src.Indexed {
			res, _, err = cg.SkylineSHadoop(in.sys, src.File)
		} else {
			res, _, err = cg.SkylineHadoop(in.sys, src.File)
		}
	} else {
		if src.Indexed {
			res, _, err = cg.ConvexHullSHadoop(in.sys, src.File)
		} else {
			res, _, err = cg.ConvexHullHadoop(in.sys, src.File)
		}
	}
	if err != nil {
		return err
	}
	in.vars[st.Target] = Value{Kind: KindPoints, Records: geomio.EncodePoints(res)}
	return nil
}

// runPairOp handles CLOSESTPAIR and FARTHESTPAIR.
func (in *Interp) runPairOp(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: %s needs a points dataset", st.Line, st.Op)
	}
	var pair geom.PointPair
	if st.Op == "CLOSESTPAIR" {
		if !src.Indexed {
			return fmt.Errorf("pigeon: line %d: CLOSESTPAIR needs an indexed dataset (INDEX ... BY 'grid')", st.Line)
		}
		pair, _, err = cg.ClosestPairSHadoop(in.sys, src.File)
	} else {
		if src.Indexed {
			pair, _, err = cg.FarthestPairSHadoop(in.sys, src.File)
		} else {
			pair, _, err = cg.FarthestPairHadoop(in.sys, src.File)
		}
	}
	if err != nil {
		return err
	}
	rec := geomio.EncodePoint(pair.P) + " " + geomio.EncodePoint(pair.Q)
	in.vars[st.Target] = Value{Kind: KindPointPair, Records: []string{rec}}
	return nil
}

func (in *Interp) runVoronoi(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if !src.Indexed || src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: VORONOI needs points indexed BY 'grid' or 'str+'", st.Line)
	}
	regions, _, _, err := cg.VoronoiSHadoop(in.sys, src.File)
	if err != nil {
		return err
	}
	recs := make([]string, len(regions))
	for i, sr := range regions {
		recs[i] = geomio.EncodePoint(sr.Site) + "|" + geomio.EncodeRegion(geom.RegionOf(sr.Region))
	}
	in.vars[st.Target] = Value{Kind: KindVoronoi, Records: recs}
	return nil
}

func (in *Interp) runDelaunay(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if !src.Indexed || src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: DELAUNAY needs points indexed with a disjoint technique", st.Line)
	}
	tris, _, err := cg.DelaunaySHadoop(in.sys, src.File)
	if err != nil {
		return err
	}
	recs := make([]string, len(tris))
	for i, tr := range tris {
		recs[i] = geomio.EncodePoint(tr.A) + " " + geomio.EncodePoint(tr.B) + " " + geomio.EncodePoint(tr.C)
	}
	in.vars[st.Target] = Value{Kind: KindTriangles, Records: recs}
	return nil
}

func (in *Interp) runUnion(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if src.Kind != KindRegions {
		return fmt.Errorf("pigeon: line %d: UNION needs a region dataset", st.Line)
	}
	region, _, err := cg.UnionSHadoop(in.sys, src.File)
	if err != nil {
		return err
	}
	recs := make([]string, len(region.Rings))
	for i, ring := range region.Rings {
		recs[i] = geomio.EncodeRegion(geom.Region{Rings: []geom.Polygon{ring}})
	}
	in.vars[st.Target] = Value{Kind: KindRegions, Records: recs}
	return nil
}

// runANN: v = ANN <var>;
func (in *Interp) runANN(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if !src.Indexed || src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: ANN needs points indexed with a disjoint technique", st.Line)
	}
	res, _, err := ops.AllNearestNeighbors(in.sys, src.File)
	if err != nil {
		return err
	}
	recs := make([]string, len(res))
	for i, r := range res {
		recs[i] = geomio.EncodePoint(r.Point) + " " + geomio.EncodePoint(r.Neighbor)
	}
	in.vars[st.Target] = Value{Kind: KindPairs, Records: recs}
	return nil
}

// runPlot: PLOT <var> INTO 'file.png' [SIZE(w,h)];
func (in *Interp) runPlot(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if err := requireFile(st, src); err != nil {
		return err
	}
	if src.Kind != KindPoints {
		return fmt.Errorf("pigeon: line %d: PLOT needs a points dataset", st.Line)
	}
	if len(st.Strings) != 1 {
		return fmt.Errorf("pigeon: line %d: PLOT needs INTO 'file.png'", st.Line)
	}
	cfg := ops.PlotConfig{}
	if len(st.Numbers) >= 2 {
		cfg.Width, cfg.Height = int(st.Numbers[0]), int(st.Numbers[1])
	}
	img, _, err := ops.Plot(in.sys, src.File, cfg)
	if err != nil {
		return err
	}
	b, err := ops.EncodePlotPNG(img)
	if err != nil {
		return err
	}
	return os.WriteFile(st.Strings[0], b, 0o644)
}

// runDump: DUMP <var> [LIMIT(n)];
func (in *Interp) runDump(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	limit := len(src.Records)
	if len(st.Numbers) > 0 {
		limit = int(st.Numbers[0])
	}
	fmt.Fprintf(in.out, "%s (%s, %d records):\n", st.Args[0], src.Kind, len(src.Records))
	for i, r := range src.Records {
		if i >= limit {
			fmt.Fprintf(in.out, "  ... %d more\n", len(src.Records)-limit)
			break
		}
		fmt.Fprintf(in.out, "  %s\n", r)
	}
	return nil
}

// runDescribe: DESCRIBE <var>;
func (in *Interp) runDescribe(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "%s: kind=%s records=%d indexed=%v",
		st.Args[0], src.Kind, len(src.Records), src.Indexed)
	if src.File != "" {
		if f, err := in.sys.Open(src.File); err == nil {
			fmt.Fprintf(in.out, " blocks=%d", len(f.File.Blocks))
			if f.Index != nil {
				fmt.Fprintf(in.out, " partitions=%d technique=%v", len(f.Index.Cells), f.Index.Technique)
			}
		}
	}
	fmt.Fprintln(in.out)
	return nil
}

// runStore: STORE <var> INTO 'path';
func (in *Interp) runStore(st Statement) error {
	src, err := in.lookup(st, 0)
	if err != nil {
		return err
	}
	if len(st.Strings) != 1 {
		return fmt.Errorf("pigeon: line %d: STORE needs a quoted path", st.Line)
	}
	return os.WriteFile(st.Strings[0], []byte(strings.Join(src.Records, "\n")+"\n"), 0o644)
}
