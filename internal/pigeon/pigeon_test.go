package pigeon

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
)

func newInterp(t *testing.T) (*Interp, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	sys := core.New(core.Config{BlockSize: 8 << 10, Workers: 4, Seed: 1})
	return New(sys, &out), &out
}

func TestLexer(t *testing.T) {
	toks, err := lex("a = LOAD 'x.csv' AS points; -- comment\nDUMP a LIMIT(3);")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].text != "a" || toks[2].text != "LOAD" || toks[3].text != "x.csv" {
		t.Fatalf("bad tokens: %+v", toks[:5])
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("a = 'unterminated"); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := lex("a = #"); err == nil {
		t.Error("expected bad character error")
	}
}

func TestParseShapes(t *testing.T) {
	stmts, err := Parse(`
		pts = GENERATE uniform 100 SEED(7);
		idx = INDEX pts BY 'grid';
		r = RANGE idx RECT(0, 0, 10, 10);
		DUMP r LIMIT(5);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if stmts[0].Op != "GENERATE" || stmts[0].Target != "pts" {
		t.Errorf("stmt 0: %+v", stmts[0])
	}
	if stmts[2].Op != "RANGE" || len(stmts[2].Numbers) != 4 {
		t.Errorf("stmt 2: %+v", stmts[2])
	}
	if stmts[3].Target != "" || stmts[3].Op != "DUMP" {
		t.Errorf("stmt 3: %+v", stmts[3])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"x = ;",
		"BOGUS pts;",
		"x = SKYLINE pts", // missing semicolon
		"DUMP x = 3;",
		"SKYLINE pts;", // result not assigned
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestEndToEndScript(t *testing.T) {
	in, out := newInterp(t)
	err := in.Exec(`
		pts = GENERATE clustered 5000 SEED(9);
		idx = INDEX pts BY 'str+';
		DESCRIBE idx;
		near = RANGE idx RECT(100000, 100000, 500000, 400000);
		nn  = KNN idx POINT(500000, 500000) K(5);
		sky = SKYLINE idx;
		hull = CONVEXHULL idx;
		cp  = CLOSESTPAIR idx;
		DUMP sky;
		DUMP nn LIMIT(2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against direct computation.
	gen := datagen.Points(datagen.Clustered, 5000, datagen.DefaultArea, 9)
	sky, _ := in.Var("sky")
	if len(sky.Records) != len(cg.SkylineSingle(gen)) {
		t.Errorf("skyline size %d, want %d", len(sky.Records), len(cg.SkylineSingle(gen)))
	}
	hull, _ := in.Var("hull")
	if len(hull.Records) != len(cg.ConvexHullSingle(gen)) {
		t.Errorf("hull size %d, want %d", len(hull.Records), len(cg.ConvexHullSingle(gen)))
	}
	nn, _ := in.Var("nn")
	if len(nn.Records) != 5 {
		t.Errorf("knn returned %d", len(nn.Records))
	}
	near, _ := in.Var("near")
	wantNear := 0
	rect := geom.NewRect(100000, 100000, 500000, 400000)
	for _, p := range gen {
		if rect.ContainsPoint(p) {
			wantNear++
		}
	}
	if len(near.Records) != wantNear {
		t.Errorf("range returned %d, want %d", len(near.Records), wantNear)
	}
	cp, _ := in.Var("cp")
	if len(cp.Records) != 1 {
		t.Fatalf("closest pair records: %v", cp.Records)
	}
	text := out.String()
	if !strings.Contains(text, "partitions=") || !strings.Contains(text, "technique=str+") {
		t.Errorf("DESCRIBE output missing metadata: %q", text)
	}
	if !strings.Contains(text, "... 3 more") {
		t.Errorf("DUMP LIMIT output wrong: %q", text)
	}
}

func TestVoronoiDelaunayUnionScript(t *testing.T) {
	in, _ := newInterp(t)
	// Provide a polygon "file" via the test hook.
	polys := datagen.Tessellation(6, 6, geom.NewRect(0, 0, 1000, 1000), 3)
	var lines []string
	for _, pg := range polys {
		lines = append(lines, geomio.EncodePolygon(pg))
	}
	in.ReadFile = func(path string) ([]byte, error) {
		if path != "zips.txt" {
			return nil, fmt.Errorf("unexpected path %q", path)
		}
		return []byte(strings.Join(lines, "\n")), nil
	}
	err := in.Exec(`
		pts  = GENERATE uniform 2000 SEED(3);
		idx  = INDEX pts BY 'grid';
		vd   = VORONOI idx;
		dt   = DELAUNAY idx;
		zips = LOAD 'zips.txt' AS regions;
		zidx = INDEX zips BY 'grid';
		u    = UNION zidx;
	`)
	if err != nil {
		t.Fatal(err)
	}
	vd, _ := in.Var("vd")
	if len(vd.Records) != 2000 {
		t.Errorf("voronoi regions: %d", len(vd.Records))
	}
	dt, _ := in.Var("dt")
	gen := datagen.Points(datagen.Uniform, 2000, datagen.DefaultArea, 3)
	if len(dt.Records) != len(cg.DelaunaySingle(gen)) {
		t.Errorf("delaunay triangles: %d, want %d", len(dt.Records), len(cg.DelaunaySingle(gen)))
	}
	u, _ := in.Var("u")
	if len(u.Records) == 0 {
		t.Error("union produced no rings")
	}
}

func TestJoinScript(t *testing.T) {
	in, _ := newInterp(t)
	a := datagen.RandomPolygons(60, 4, 60, geom.NewRect(0, 0, 1000, 1000), 5)
	b := datagen.RandomPolygons(50, 4, 70, geom.NewRect(0, 0, 1000, 1000), 6)
	enc := func(polys []geom.Polygon) string {
		var ls []string
		for _, pg := range polys {
			ls = append(ls, geomio.EncodePolygon(pg))
		}
		return strings.Join(ls, "\n")
	}
	in.ReadFile = func(path string) ([]byte, error) {
		switch path {
		case "a.txt":
			return []byte(enc(a)), nil
		case "b.txt":
			return []byte(enc(b)), nil
		}
		return nil, fmt.Errorf("no file %q", path)
	}
	err := in.Exec(`
		a  = LOAD 'a.txt' AS regions;
		b  = LOAD 'b.txt' AS regions;
		ia = INDEX a BY 'str+';
		ib = INDEX b BY 'str+';
		j  = JOIN ia ib;
		jh = JOIN a b;
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, x := range a {
		for _, y := range b {
			if x.Bounds().Intersects(y.Bounds()) {
				want++
			}
		}
	}
	j, _ := in.Var("j")
	if len(j.Records) != want {
		t.Errorf("indexed join: %d pairs, want %d", len(j.Records), want)
	}
	jh, _ := in.Var("jh")
	if len(jh.Records) != want {
		t.Errorf("PBSM join: %d pairs, want %d", len(jh.Records), want)
	}
}

func TestStoreAnnAndPlot(t *testing.T) {
	in, _ := newInterp(t)
	dir := t.TempDir()
	err := in.Exec(`
		pts = GENERATE clustered 3000 SEED(5);
		idx = INDEX pts BY 'grid';
		nn  = ANN idx;
		STORE nn INTO '` + dir + `/nn.txt';
		PLOT idx INTO '` + dir + `/density.png' SIZE(32, 32);
	`)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := os.ReadFile(dir + "/nn.txt")
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(nn), "\n"); lines != 3000 {
		t.Errorf("stored %d ANN lines, want 3000", lines)
	}
	png, err := os.ReadFile(dir + "/density.png")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(png), "\x89PNG") {
		t.Error("PLOT did not write a PNG")
	}
}

func TestRuntimeErrors(t *testing.T) {
	in, _ := newInterp(t)
	for _, src := range []string{
		"DUMP nothing;",
		"x = SKYLINE nothing;",
		"x = GENERATE pareto 10;",
		"x = GENERATE uniform 10; y = INDEX x BY 'warp';",
		"x = GENERATE uniform 10; y = KNN x POINT(1,1) K(2);", // not indexed... heap KNN allowed? requireFile passes, Indexed false
	} {
		err := in.Exec(src)
		if strings.Contains(src, "KNN") {
			// KNN over a non-indexed file is legal (single split fallback).
			continue
		}
		if err == nil {
			t.Errorf("Exec(%q): expected error", src)
		}
	}
}
