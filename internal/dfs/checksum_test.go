package dfs

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// TestChecksumRoundTrip: blocks written through the writer verify clean,
// including across a SaveDir/LoadDir cycle (checksums are recomputed on
// load because loading replays the records through a writer).
func TestChecksumRoundTrip(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 3})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	w.SetPartition("p0")
	for i := 0; i < 10; i++ {
		w.WriteRecord(fmt.Sprintf("record-%03d", i))
	}
	w.SetPartition("p1")
	for i := 0; i < 10; i++ {
		w.WriteRecord(fmt.Sprintf("other-%03d", i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("f")
	if len(f.Blocks) < 2 {
		t.Fatalf("blocks = %d, want several", len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if !b.Sealed() {
			t.Fatalf("block %d not sealed after Close", i)
		}
		if b.Checksum() == 0 {
			t.Errorf("block %d has zero checksum", i)
		}
		if err := b.Verify(); err != nil {
			t.Errorf("block %d: %v", i, err)
		}
		if err := b.VerifyCached(); err != nil {
			t.Errorf("block %d cached: %v", i, err)
		}
	}
	if issues := fs.Scrub(); len(issues) != 0 {
		t.Errorf("scrub on clean fs reported %v", issues)
	}

	dir := t.TempDir()
	if err := fs.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	fs2, err := LoadDir(filepath.Clean(dir), Config{BlockSize: 64, DataNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f2.Blocks {
		if err := b.Verify(); err != nil {
			t.Errorf("reloaded block %d: %v", i, err)
		}
	}
	if _, err := fs2.ReadAll("f"); err != nil {
		t.Errorf("ReadAll after reload: %v", err)
	}
}

// TestChecksumDetectsCorruption: a flipped byte is caught by Verify,
// VerifyCached, ReadAll and Scrub, with the typed ErrChecksum sentinel.
func TestChecksumDetectsCorruption(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	if err := fs.WriteFile("f", []string{"alpha", "beta", "gamma"}); err != nil {
		t.Fatal(err)
	}
	// Clean reads succeed and warm the verification cache.
	if _, err := fs.ReadAll("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptBlock("f", 0); err != nil {
		t.Fatal(err)
	}

	f, _ := fs.Open("f")
	b := f.Blocks[0]
	err := b.Verify()
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("Verify after corruption = %v, want ErrChecksum", err)
	}
	var cerr *ChecksumError
	if !errors.As(err, &cerr) || cerr.Block != b.ID || cerr.Want == cerr.Got {
		t.Fatalf("checksum error detail = %+v", cerr)
	}
	if !cerr.Transient() {
		t.Error("checksum failures must classify as transient (replica re-read)")
	}
	// The corruption invalidated the cached verification.
	if err := b.VerifyCached(); !errors.Is(err, ErrChecksum) {
		t.Errorf("VerifyCached after corruption = %v", err)
	}
	if _, err := fs.ReadAll("f"); !errors.Is(err, ErrChecksum) {
		t.Errorf("ReadAll after corruption = %v, want ErrChecksum", err)
	}

	issues := fs.Scrub()
	if len(issues) != 1 {
		t.Fatalf("scrub issues = %v, want exactly one", issues)
	}
	if issues[0].File != "f" || issues[0].Block != b.ID {
		t.Errorf("scrub issue = %+v", issues[0])
	}
}

// TestCorruptBlockArgs covers the hook's error paths.
func TestCorruptBlockArgs(t *testing.T) {
	fs := New(Config{})
	if err := fs.CorruptBlock("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing file: %v", err)
	}
	fs.WriteFile("f", []string{"x"})
	if err := fs.CorruptBlock("f", 5); err == nil {
		t.Error("out-of-range block index must error")
	}
}

// TestUnsealedBlockVerifiesTrivially: a file mid-write has an unsealed
// current block that must not fail verification.
func TestUnsealedBlockVerifiesTrivially(t *testing.T) {
	fs := New(Config{})
	w, _ := fs.Create("f")
	w.WriteRecord("partial")
	f, _ := fs.Open("f")
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if f.Blocks[0].Sealed() {
		t.Fatal("block sealed before Close")
	}
	if err := f.Blocks[0].Verify(); err != nil {
		t.Errorf("unsealed Verify = %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.Blocks[0].Sealed() {
		t.Error("block not sealed by Close")
	}
}
