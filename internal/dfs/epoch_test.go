package dfs

import "testing"

// TestFileEpochMonotone: every mutation of a file — creation, each record
// write, attaching a master index, the corruption hook — strictly
// advances its epoch, and the epoch is what result caches key on.
func TestFileEpochMonotone(t *testing.T) {
	fs := New(Config{BlockSize: 64})
	if got := fs.FileEpoch("f"); got != 0 {
		t.Fatalf("missing file epoch = %d, want 0", got)
	}
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	last := fs.FileEpoch("f")
	if last == 0 {
		t.Fatal("created file must have a non-zero epoch")
	}
	step := func(what string) {
		t.Helper()
		e := fs.FileEpoch("f")
		if e <= last {
			t.Fatalf("%s: epoch %d did not advance past %d", what, e, last)
		}
		last = e
	}
	w.WriteRecord("a")
	step("first write")
	w.WriteRecord("b")
	step("second write")
	w.SetMaster([]byte("idx"))
	step("set master")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptBlock("f", 0); err != nil {
		t.Fatal(err)
	}
	step("corrupt block")
}

// TestFileEpochNeverReused: deleting and re-creating a file yields a
// strictly higher epoch, so a (name, epoch) cache key can never alias an
// older incarnation's results.
func TestFileEpochNeverReused(t *testing.T) {
	fs := New(Config{})
	if err := fs.WriteFile("f", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	e1 := fs.FileEpoch("f")
	fs.Delete("f")
	if got := fs.FileEpoch("f"); got != 0 {
		t.Fatalf("deleted file epoch = %d, want 0", got)
	}
	if err := fs.WriteFile("f", []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if e2 := fs.FileEpoch("f"); e2 <= e1 {
		t.Fatalf("re-created file epoch %d not above prior %d", e2, e1)
	}

	// CreateOrReplace is the mutation path queries race against: the
	// replacement must also land above every prior epoch.
	w, err := fs.CreateOrReplace("f")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord("z")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if e3, e2 := fs.FileEpoch("f"), e1; e3 <= e2 {
		t.Fatalf("replaced file epoch %d not above prior %d", e3, e2)
	}
}

// TestEpochHook: an installed hook observes every stamp synchronously with
// the file's name and the exact epoch FileEpoch subsequently reports, and
// uninstalling (nil) stops delivery.
func TestEpochHook(t *testing.T) {
	fs := New(Config{BlockSize: 64})
	type ev struct {
		name  string
		epoch int64
	}
	var got []ev
	fs.SetEpochHook(func(name string, epoch int64) {
		got = append(got, ev{name, epoch})
	})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord("a")
	w.SetMaster([]byte("idx"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) < 3 {
		t.Fatalf("hook fired %d times, want >= 3 (create, write, set master)", len(got))
	}
	for i, e := range got {
		if e.name != "f" {
			t.Fatalf("event %d: name %q, want \"f\"", i, e.name)
		}
		if i > 0 && e.epoch <= got[i-1].epoch {
			t.Fatalf("event %d: epoch %d not monotone past %d", i, e.epoch, got[i-1].epoch)
		}
	}
	if last := got[len(got)-1].epoch; last != fs.FileEpoch("f") {
		t.Fatalf("last hook epoch %d != FileEpoch %d", last, fs.FileEpoch("f"))
	}
	fs.SetEpochHook(nil)
	n := len(got)
	if err := fs.WriteFile("g", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatal("hook fired after being uninstalled")
	}
}
