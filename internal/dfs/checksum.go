package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Block integrity: every block carries a CRC32 (IEEE) checksum over its
// records, computed once when the block is sealed (when the writer cuts
// to the next block, changes partition, or closes the file) — mirroring
// HDFS, which checksums blocks on write and verifies them on read. Read
// paths verify through VerifyCached, which recomputes at most once per
// block generation (the same amortization as the decode cache), so a
// block scanned by many jobs pays the CRC pass once. A mismatch surfaces
// as a *ChecksumError wrapping ErrChecksum; the error is transient in the
// fault-classification sense because in a replicated DFS a re-read can be
// served by a healthy replica.

// ErrChecksum is the sentinel wrapped by every block checksum mismatch.
var ErrChecksum = errors.New("dfs: block checksum mismatch")

// ChecksumError reports a corrupted block: the stored checksum does not
// match the block's current records.
type ChecksumError struct {
	Block BlockID
	Want  uint32 // checksum stored at write time
	Got   uint32 // checksum of the records as read
}

// Error renders the mismatch.
func (e *ChecksumError) Error() string {
	return fmt.Sprintf("dfs: block %d checksum mismatch: stored %08x, read %08x", e.Block, e.Want, e.Got)
}

// Unwrap ties the error to the ErrChecksum sentinel.
func (e *ChecksumError) Unwrap() error { return ErrChecksum }

// Transient marks checksum failures retryable for the scheduler: a
// re-read models fetching the block from another replica.
func (e *ChecksumError) Transient() bool { return true }

// checksumRecords computes the CRC32 over the records as they would be
// laid out on disk (record bytes plus a newline each), reusing one
// scratch buffer so sealing a block allocates at most once.
func checksumRecords(records []string) uint32 {
	var crc uint32
	var buf []byte
	for _, r := range records {
		buf = append(buf[:0], r...)
		buf = append(buf, '\n')
		crc = crc32.Update(crc, crc32.IEEETable, buf)
	}
	return crc
}

// seal stamps the block's checksum; the writer calls it exactly once,
// after the last record lands in the block.
func (b *Block) seal() {
	b.crc = checksumRecords(b.records)
	b.sealed = true
}

// Checksum returns the checksum stored when the block was sealed (0 for
// a block still under construction).
func (b *Block) Checksum() uint32 { return b.crc }

// Sealed reports whether the block has been finalized and checksummed.
func (b *Block) Sealed() bool { return b.sealed }

// Verify recomputes the block's checksum and compares it against the
// stored value, returning a *ChecksumError on mismatch. Blocks still
// under construction verify trivially.
func (b *Block) Verify() error {
	if !b.sealed {
		return nil
	}
	if got := checksumRecords(b.records); got != b.crc {
		return &ChecksumError{Block: b.ID, Want: b.crc, Got: got}
	}
	return nil
}

// VerifyCached is Verify amortized to one recompute per block generation:
// the result is cached alongside the decoded views and dropped whenever
// the block's records change, so repeated reads (map attempts, retries,
// multi-job pipelines) skip the CRC pass entirely.
func (b *Block) VerifyCached() error {
	c := b.cacheSlot()
	c.verifyOnce.Do(func() { c.verifyErr = b.Verify() })
	return c.verifyErr
}

// ScrubIssue reports one corrupt block found by Scrub.
type ScrubIssue struct {
	File  string
	Block BlockID
	Want  uint32
	Got   uint32
}

// Scrub recomputes the checksum of every sealed block in the file system
// and reports the corrupt ones — the background integrity pass HDFS data
// nodes run. Scrub always recomputes (it does not trust the cached
// verification) so it also catches corruption introduced after a block
// was last read.
func (fs *FileSystem) Scrub() []ScrubIssue {
	fs.mu.RLock()
	type blockRef struct {
		file  string
		block *Block
	}
	var refs []blockRef
	for name, f := range fs.files {
		for _, b := range f.Blocks {
			refs = append(refs, blockRef{file: name, block: b})
		}
	}
	fs.mu.RUnlock()

	var issues []ScrubIssue
	for _, ref := range refs {
		var cerr *ChecksumError
		if err := ref.block.Verify(); errors.As(err, &cerr) {
			issues = append(issues, ScrubIssue{File: ref.file, Block: cerr.Block, Want: cerr.Want, Got: cerr.Got})
		}
	}
	if s := fs.sink(); s != nil && len(issues) > 0 {
		s.Inc(MetricBlocksCorrupt, int64(len(issues)))
	}
	return issues
}

// CorruptBlock flips one byte in block i of the named file without
// updating the stored checksum — the corruption hook used by fault
// injection and integrity tests. The decode cache is invalidated so the
// next verification sees the damage.
func (fs *FileSystem) CorruptBlock(name string, i int) error {
	fs.mu.Lock()
	f, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if i < 0 || i >= len(f.Blocks) {
		return fmt.Errorf("dfs: %s has no block %d", name, i)
	}
	b := f.Blocks[i]
	for ri, rec := range b.records {
		if len(rec) == 0 {
			continue
		}
		buf := []byte(rec)
		buf[0] ^= 0x20 // flip one bit of the first byte
		b.records[ri] = string(buf)
		b.invalidate()
		fs.stamp(f)
		return nil
	}
	return fmt.Errorf("dfs: %s block %d has no corruptible record", name, i)
}
