package dfs

import (
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{BlockSize: 64, DataNodes: 3})

	// A partitioned file with a master attachment.
	w, _ := fs.Create("indexed")
	w.SetPartition("c0")
	w.WriteRecord("a0")
	w.WriteRecord("a1")
	w.SetPartition("c1")
	w.WriteRecord("b0")
	w.SetMaster([]byte("master-bytes"))
	w.Close()

	// A heap file large enough to span blocks.
	var heap []string
	for i := 0; i < 40; i++ {
		heap = append(heap, "record-record-record")
	}
	fs.WriteFile("heap", heap)

	if err := fs.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir, Config{BlockSize: 64, DataNodes: 3})
	if err != nil {
		t.Fatal(err)
	}

	f, err := got.Open("indexed")
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Master) != "master-bytes" {
		t.Errorf("master = %q", f.Master)
	}
	if len(f.Blocks) != 2 || f.Blocks[0].Partition != "c0" || f.Blocks[1].Partition != "c1" {
		t.Fatalf("partition structure lost: %+v", f.Blocks)
	}
	recs, _ := got.ReadAll("indexed")
	if len(recs) != 3 || recs[0] != "a0" || recs[2] != "b0" {
		t.Errorf("records = %v", recs)
	}

	heapGot, _ := got.ReadAll("heap")
	if len(heapGot) != 40 {
		t.Errorf("heap records = %d", len(heapGot))
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/does/not/exist", Config{}); err == nil {
		t.Error("expected error for missing dir")
	}
}

func TestSaveRejectsNewlines(t *testing.T) {
	fs := New(Config{})
	fs.WriteFile("bad", []string{"line1\nline2"})
	if err := fs.SaveDir(t.TempDir()); err == nil {
		t.Error("expected error for embedded newline")
	}
}

func TestEscapedNames(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{})
	fs.WriteFile("dir/with slash & spaces", []string{"x"})
	if err := fs.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := got.ReadAll("dir/with slash & spaces")
	if err != nil || len(recs) != 1 {
		t.Fatalf("escaped name round trip failed: %v %v", recs, err)
	}
}
