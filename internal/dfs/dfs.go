// Package dfs implements the HDFS stand-in used by the MapReduce runtime:
// a block-structured file system with a name node (file table and block
// placement), simulated data nodes, and text-record IO. The only HDFS
// behaviours the algorithms rely on are modelled faithfully: a file is a
// sequence of fixed-capacity blocks, each block lives on a data node, and
// one map task is scheduled per block (or per indexed partition).
//
// Files may carry a "master" attachment, mirroring SpatialHadoop's _master
// index file that describes the spatial partitioning of the data blocks.
package dfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/obs"
)

// DefaultBlockSize is the default block capacity in bytes. The paper uses
// 64 MB; the default here is scaled down so laptop-sized datasets still
// split into a realistic number of blocks.
const DefaultBlockSize = 1 << 20

// Config configures a FileSystem.
type Config struct {
	// BlockSize is the block capacity in bytes (DefaultBlockSize if zero).
	BlockSize int64
	// DataNodes is the number of simulated storage nodes (default 25,
	// matching the paper's cluster).
	DataNodes int
}

// BlockID identifies a block within the file system.
type BlockID int64

// Block is one storage unit: a run of text records, at most BlockSize
// bytes, hosted by a data node.
type Block struct {
	ID BlockID
	// Node is the data node hosting the block.
	Node int
	// Partition is the spatial partition key of the block, or "" for
	// non-indexed (heap) files.
	Partition string
	// Bytes is the summed encoded size of the records.
	Bytes int64

	records []string

	// crc is the CRC32 checksum stamped when the block was sealed;
	// sealed distinguishes a finished block from one still being
	// written (see checksum.go).
	crc    uint32
	sealed bool

	// cache holds lazily decoded views of the records (parsed points, an
	// operation-chosen payload). It is swapped out wholesale on write, so
	// a reader that already holds a slot keeps a consistent snapshot.
	cache atomic.Pointer[blockCache]
}

// blockCache is one generation of decoded views over a block's records.
// Each view is built at most once per generation under its own sync.Once;
// writes install a fresh generation rather than resetting, keeping the
// fast path a single atomic load.
type blockCache struct {
	ptsOnce sync.Once
	pts     []geom.Point
	ptsErr  error

	payloadOnce sync.Once
	payload     any
	payloadErr  error

	verifyOnce sync.Once
	verifyErr  error
}

// Records returns the records stored in the block. The returned slice must
// not be modified.
func (b *Block) Records() []string { return b.records }

// NumRecords returns the number of records in the block.
func (b *Block) NumRecords() int { return len(b.records) }

// cacheSlot returns the current cache generation, installing one if the
// block has never been decoded.
func (b *Block) cacheSlot() *blockCache {
	for {
		if c := b.cache.Load(); c != nil {
			return c
		}
		if b.cache.CompareAndSwap(nil, &blockCache{}) {
			continue // reload the slot we just installed
		}
	}
}

// invalidate drops all decoded views; the writer calls it whenever the
// block's records change so no reader ever sees stale decodes.
func (b *Block) invalidate() { b.cache.Store(nil) }

// Points returns the block's records decoded as points, parsing them at
// most once per block lifetime (SpatialHadoop re-reads the same blocks
// across map attempts and across the jobs of a pipeline; the text parse is
// the dominant per-visit cost). The returned slice is shared between all
// callers and must not be modified — every geometry kernel copies before
// sorting.
func (b *Block) Points() ([]geom.Point, error) {
	c := b.cacheSlot()
	c.ptsOnce.Do(func() { c.pts, c.ptsErr = geomio.DecodePoints(b.records) })
	return c.pts, c.ptsErr
}

// Payload returns the block's decoded payload, building it with build on
// first use and caching it for the block's lifetime — the generic slot for
// non-point record types (regions, segments). All callers of a block must
// agree on the payload type; the returned value is shared and must be
// treated as read-only. Like Points, the cache is dropped when the block
// is written.
func (b *Block) Payload(build func(records []string) (any, error)) (any, error) {
	c := b.cacheSlot()
	c.payloadOnce.Do(func() { c.payload, c.payloadErr = build(b.records) })
	return c.payload, c.payloadErr
}

// File is the name-node metadata for one file.
type File struct {
	Name    string
	Blocks  []*Block
	Bytes   int64
	Records int64
	// Master is an opaque attachment for index metadata (SpatialHadoop's
	// _master file). The spatial layer serializes its global index here.
	Master []byte

	// epoch is the file's mutation epoch: the value of the file system's
	// monotone clock at the file's most recent mutation (creation, record
	// write, master attachment). Because the clock is global, a file that
	// is deleted and re-created never reuses an epoch, so (name, epoch)
	// uniquely identifies one immutable state of a file's contents —
	// exactly what result caches key on to invalidate correctly.
	epoch atomic.Int64
}

// Epoch returns the file's current mutation epoch.
func (f *File) Epoch() int64 { return f.epoch.Load() }

// Sink receives file-system metrics. obs.Registry satisfies it; the
// narrow interface keeps dfs free of an observability dependency.
type Sink interface {
	Inc(name string, delta int64)
}

// Metric names emitted by the file system when a Sink is attached.
const (
	MetricBlocksWritten  = "dfs.blocks.written"
	MetricRecordsWritten = "dfs.records.written"
	MetricBlocksRead     = "dfs.blocks.read"
	MetricRecordsRead    = "dfs.records.read"
	MetricBlocksCorrupt  = "dfs.blocks.corrupt"
)

// FileSystem is the distributed file system facade: a name node plus data
// nodes. It is safe for concurrent use.
type FileSystem struct {
	mu        sync.RWMutex
	cfg       Config
	files     map[string]*File
	nextBlock BlockID
	nextNode  int
	nodeBytes []int64
	metrics   Sink

	// clock is the monotone mutation clock driving file epochs: every
	// mutation stamps the touched file with clock+1.
	clock atomic.Int64

	// epochHook, when installed, observes every stamp (see SetEpochHook).
	epochHook atomic.Pointer[func(name string, epoch int64)]
}

// stamp advances the mutation clock and records the new epoch on f.
func (fs *FileSystem) stamp(f *File) {
	e := fs.clock.Add(1)
	f.epoch.Store(e)
	if hook := fs.epochHook.Load(); hook != nil {
		(*hook)(f.Name, e)
	}
}

// SetEpochHook installs fn, called synchronously after every file mutation
// with the file's name and new epoch — the eager invalidation signal for
// caches keyed on (name, epoch), such as the serving layer's memory tier.
// One hook slot exists; nil uninstalls. The hook may run under file-system
// locks and therefore must not call back into the FileSystem; it should
// only flip its own state (epoch-keyed caches stay correct even with no
// hook at all, because a stale epoch never matches a fresh key).
func (fs *FileSystem) SetEpochHook(fn func(name string, epoch int64)) {
	if fn == nil {
		fs.epochHook.Store(nil)
		return
	}
	fs.epochHook.Store(&fn)
}

// FileEpoch returns the named file's mutation epoch, or 0 when the file
// does not exist (epochs of live files start at 1).
func (fs *FileSystem) FileEpoch(name string) int64 {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return 0
	}
	return f.Epoch()
}

// Epochs snapshots the mutation epoch of every live file. Masters embed
// the snapshot in heartbeat replies so workers holding pinned partitions
// learn about rewrites and drop stale tiers without a second RPC channel.
func (fs *FileSystem) Epochs() map[string]int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make(map[string]int64, len(fs.files))
	for name, f := range fs.files {
		out[name] = f.Epoch()
	}
	return out
}

// SetMetrics attaches a metrics sink; the file system then reports blocks
// and records read and written. A nil sink disables reporting.
func (fs *FileSystem) SetMetrics(s Sink) {
	fs.mu.Lock()
	fs.metrics = s
	fs.mu.Unlock()
}

// sink returns the attached sink, or nil.
func (fs *FileSystem) sink() Sink {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.metrics
}

// New creates an empty file system.
func New(cfg Config) *FileSystem {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.DataNodes <= 0 {
		cfg.DataNodes = 25
	}
	return &FileSystem{
		cfg:       cfg,
		files:     make(map[string]*File),
		nodeBytes: make([]int64, cfg.DataNodes),
	}
}

// BlockSize returns the configured block capacity.
func (fs *FileSystem) BlockSize() int64 { return fs.cfg.BlockSize }

// DataNodes returns the number of simulated data nodes.
func (fs *FileSystem) DataNodes() int { return fs.cfg.DataNodes }

// ErrNotFound is returned when opening a file that does not exist.
var ErrNotFound = errors.New("dfs: file not found")

// ErrExists is returned when creating a file that already exists.
var ErrExists = errors.New("dfs: file already exists")

// Writer appends records to a file under construction, cutting a new block
// whenever the current one reaches capacity. Writers are not safe for
// concurrent use.
type Writer struct {
	fs        *FileSystem
	file      *File
	partition string
	cur       *Block
	closed    bool
}

// Create creates a new file and returns a writer for it.
func (fs *FileSystem) Create(name string) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	f := &File{Name: name}
	fs.stamp(f)
	fs.files[name] = f
	return &Writer{fs: fs, file: f}, nil
}

// CreateOrReplace is Create, deleting any existing file first.
func (fs *FileSystem) CreateOrReplace(name string) (*Writer, error) {
	fs.Delete(name)
	return fs.Create(name)
}

// SetPartition directs subsequent records to blocks tagged with the given
// partition key, cutting (and sealing) the current block. The spatial
// file loader calls it once per partition.
func (w *Writer) SetPartition(key string) {
	if w.cur != nil {
		w.cur.seal()
	}
	w.cur = nil
	w.partition = key
}

// WriteRecord appends one text record.
func (w *Writer) WriteRecord(rec string) {
	if w.closed {
		panic("dfs: write on closed writer")
	}
	sz := int64(len(rec)) + 1 // newline accounting
	if w.cur == nil || w.cur.Bytes+sz > w.fs.cfg.BlockSize && w.cur.Bytes > 0 {
		w.cut()
	}
	w.cur.records = append(w.cur.records, rec)
	w.cur.Bytes += sz
	w.file.Bytes += sz
	w.file.Records++
	w.fs.stamp(w.file)
	if w.cur.cache.Load() != nil { // skip the store barrier on the common path
		w.cur.invalidate()
	}
}

// cut seals the current block and starts a new one on the next data node
// (round-robin placement).
func (w *Writer) cut() {
	if w.cur != nil {
		w.cur.seal()
	}
	fs := w.fs
	fs.mu.Lock()
	id := fs.nextBlock
	fs.nextBlock++
	node := fs.nextNode
	fs.nextNode = (fs.nextNode + 1) % fs.cfg.DataNodes
	fs.mu.Unlock()
	b := &Block{ID: id, Node: node, Partition: w.partition}
	w.cur = b
	w.file.Blocks = append(w.file.Blocks, b)
}

// Close finalizes the file and records data-node usage.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur != nil {
		w.cur.seal()
	}
	fs := w.fs
	if s := fs.sink(); s != nil {
		s.Inc(MetricBlocksWritten, int64(len(w.file.Blocks)))
		s.Inc(MetricRecordsWritten, w.file.Records)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, b := range w.file.Blocks {
		fs.nodeBytes[b.Node] += b.Bytes
	}
	return nil
}

// SetMaster attaches index metadata to the file being written.
func (w *Writer) SetMaster(master []byte) {
	w.file.Master = master
	w.fs.stamp(w.file)
}

// Open returns the metadata for a file.
func (fs *FileSystem) Open(name string) (*File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f, nil
}

// Exists reports whether the file exists.
func (fs *FileSystem) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// Delete removes a file, releasing its blocks. Deleting a missing file is
// not an error.
func (fs *FileSystem) Delete(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return
	}
	for _, b := range f.Blocks {
		fs.nodeBytes[b.Node] -= b.Bytes
	}
	delete(fs.files, name)
}

// List returns the names of all files in sorted order.
func (fs *FileSystem) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReadAll returns every record of the file in block order, verifying
// each block's checksum on the way (amortized to one CRC pass per block
// generation). A corrupted block surfaces as a *ChecksumError wrapping
// ErrChecksum.
func (fs *FileSystem) ReadAll(name string) ([]string, error) {
	return fs.ReadAllCtx(context.Background(), name)
}

// ReadAllCtx is ReadAll under a context: when the context carries a
// request trace (serving path), the read is recorded as a "dfs.read"
// span with the file name, block and record counts. Metrics still flow
// through the Sink indirection; only tracing couples dfs to obs, which
// is a leaf package.
func (fs *FileSystem) ReadAllCtx(ctx context.Context, name string) ([]string, error) {
	_, span := obs.StartSpan(ctx, "dfs.read")
	defer span.End()
	span.SetAttr("file", name)
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	span.SetAttr("blocks", fmt.Sprint(len(f.Blocks)))
	span.SetAttr("records", fmt.Sprint(f.Records))
	if s := fs.sink(); s != nil {
		s.Inc(MetricBlocksRead, int64(len(f.Blocks)))
		s.Inc(MetricRecordsRead, f.Records)
	}
	out := make([]string, 0, f.Records)
	for _, b := range f.Blocks {
		if err := b.VerifyCached(); err != nil {
			if s := fs.sink(); s != nil {
				s.Inc(MetricBlocksCorrupt, 1)
			}
			return nil, fmt.Errorf("dfs: %s: %w", name, err)
		}
		out = append(out, b.records...)
	}
	return out, nil
}

// WriteFile creates a file from records in one call.
func (fs *FileSystem) WriteFile(name string, records []string) error {
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	for _, r := range records {
		w.WriteRecord(r)
	}
	return w.Close()
}

// NodeBytes returns bytes stored per data node, for balance reporting.
func (fs *FileSystem) NodeBytes() []int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]int64, len(fs.nodeBytes))
	copy(out, fs.nodeBytes)
	return out
}
