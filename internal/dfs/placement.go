package dfs

import (
	"fmt"
	"sort"
)

// Block replica placement. The master pushes sealed block replicas onto
// registered workers so map tasks read input locally instead of pulling
// every split from the master's DFS. Placement is rendezvous hashing
// (highest-random-weight): each placement group scores every candidate
// worker with a seeded hash and takes the top Factor scorers. That gives
// the three properties the data plane needs with no placement table to
// synchronize:
//
//   - spread: the top-Factor scorers are distinct workers by construction;
//   - co-location: blocks of one spatial partition share a placement
//     group, so a global-index partition's blocks land on the same
//     workers and a map task over that partition reads everything from
//     one replica set;
//   - stability: removing a worker only re-ranks the groups that scored
//     it into their top Factor — every other group's holders are
//     untouched, which is exactly the re-replication set on worker loss.

// ReplicaPolicy is a deterministic block-to-worker placement function.
type ReplicaPolicy struct {
	// Seed salts the rendezvous hash; two policies with equal seeds make
	// identical placements for identical worker sets.
	Seed int64
	// Factor is the number of replicas per placement group.
	Factor int
}

// PlacementGroup names the co-location unit of a block: blocks of one
// spatial partition share a group (their replicas co-locate), while
// heap-file blocks, which carry no partition, each form their own group
// so an unindexed file still spreads across the pool.
func PlacementGroup(partition string, id BlockID) string {
	if partition != "" {
		return "p:" + partition
	}
	return fmt.Sprintf("b:%d", id)
}

// Place ranks the candidate workers for one placement group and returns
// the top Factor of them (fewer when the pool is smaller). The result is
// deterministic in (Seed, group, set-of-workers) — the order candidates
// are passed in does not matter.
func (p ReplicaPolicy) Place(group string, workers []int64) []int64 {
	if p.Factor <= 0 || len(workers) == 0 {
		return nil
	}
	type scored struct {
		id    int64
		score uint64
	}
	ranked := make([]scored, 0, len(workers))
	for _, id := range workers {
		ranked = append(ranked, scored{id: id, score: rendezvousScore(p.Seed, group, id)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	n := p.Factor
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].id
	}
	return out
}

// rendezvousScore hashes (seed, group, worker) with FNV-1a and a
// splitmix64 finalizer so consecutive worker ids score independently.
func rendezvousScore(seed int64, group string, worker int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(seed))
	for i := 0; i < len(group); i++ {
		h ^= uint64(group[i])
		h *= prime64
	}
	mix(uint64(worker))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
