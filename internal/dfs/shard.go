package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Intermediate-shard framing. Workers spill each map task's per-reducer
// shard to local disk and serve it to reducers over RPC; a worker that is
// SIGKILLed mid-write leaves a torn file behind. Every spill is therefore
// wrapped in a self-verifying frame — magic, payload length, CRC32 (IEEE)
// over the payload — so a torn or truncated shard is detected on read and
// surfaces as a lost shard (triggering a map re-issue) rather than as
// silently corrupt reduce input. The same integrity posture as block
// checksums (checksum.go), applied to the shuffle path.

// shardMagic marks the start of a sealed shard frame.
var shardMagic = [4]byte{'S', 'H', 'R', 'D'}

// shardHeaderSize is the frame overhead: magic + payload length + CRC32.
const shardHeaderSize = 4 + 8 + 4

// ErrTornShard is the sentinel wrapped by every shard-frame integrity
// failure: bad magic, truncation, or CRC mismatch.
var ErrTornShard = errors.New("dfs: torn shard frame")

// TornShardError reports a shard frame that failed verification.
type TornShardError struct {
	Reason string
}

// Error renders the failure.
func (e *TornShardError) Error() string {
	return fmt.Sprintf("dfs: torn shard frame: %s", e.Reason)
}

// Unwrap ties the error to the ErrTornShard sentinel.
func (e *TornShardError) Unwrap() error { return ErrTornShard }

// Transient marks torn shards retryable for the scheduler: the master
// re-runs the producing map task, so the fetch is worth re-attempting.
func (e *TornShardError) Transient() bool { return true }

// SealShard wraps a shard payload in its integrity frame.
func SealShard(payload []byte) []byte {
	out := make([]byte, shardHeaderSize+len(payload))
	copy(out[:4], shardMagic[:])
	binary.LittleEndian.PutUint64(out[4:12], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[12:16], crc32.ChecksumIEEE(payload))
	copy(out[shardHeaderSize:], payload)
	return out
}

// UnsealShard verifies a shard frame and returns its payload, or a
// *TornShardError if the frame is truncated, mislabeled or corrupt.
func UnsealShard(frame []byte) ([]byte, error) {
	if len(frame) < shardHeaderSize {
		return nil, &TornShardError{Reason: fmt.Sprintf("frame is %d bytes, header needs %d", len(frame), shardHeaderSize)}
	}
	if [4]byte(frame[:4]) != shardMagic {
		return nil, &TornShardError{Reason: "bad magic"}
	}
	n := binary.LittleEndian.Uint64(frame[4:12])
	payload := frame[shardHeaderSize:]
	if uint64(len(payload)) != n {
		return nil, &TornShardError{Reason: fmt.Sprintf("payload is %d bytes, header says %d", len(payload), n)}
	}
	want := binary.LittleEndian.Uint32(frame[12:16])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, &TornShardError{Reason: fmt.Sprintf("crc mismatch: stored %08x, read %08x", want, got)}
	}
	return payload, nil
}

// maxShardFrame bounds a declared frame payload; a header claiming more
// is damage, not data (no spill or block frame approaches a terabyte).
const maxShardFrame = 1 << 40

// PeekShardFrame inspects the start of buf for a sealed frame header and
// returns the total byte length of that frame (header + payload). It
// returns 0 with no error when buf holds less than a full header — the
// streaming-read case, where the caller needs more bytes — and a
// *TornShardError when the bytes present cannot be a frame at all.
func PeekShardFrame(buf []byte) (int, error) {
	if len(buf) < shardHeaderSize {
		return 0, nil
	}
	if [4]byte(buf[:4]) != shardMagic {
		return 0, &TornShardError{Reason: "bad magic"}
	}
	n := binary.LittleEndian.Uint64(buf[4:12])
	if n > maxShardFrame {
		return 0, &TornShardError{Reason: fmt.Sprintf("frame header claims %d payload bytes", n)}
	}
	return shardHeaderSize + int(n), nil
}

// NewBlockFromRecords builds a sealed, checksummed block holding the given
// records — the worker-side constructor for splits shipped over RPC. The
// records arrive per block so a reconstructed split iterates in exactly
// the order the in-process path would, and sealing here means the worker's
// checksum scrub covers shipped blocks too. The block carries no ID or
// data-node placement; it exists only for the duration of one task attempt.
func NewBlockFromRecords(partition string, records []string) *Block {
	b := &Block{Partition: partition, records: records}
	for _, r := range records {
		b.Bytes += int64(len(r)) + 1 // newline accounting, as the writer does
	}
	b.seal()
	return b
}
