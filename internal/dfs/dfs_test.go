package dfs

import (
	"errors"
	"fmt"
	"testing"
)

func TestCreateWriteRead(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 3})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 100; i++ {
		rec := fmt.Sprintf("record-%03d", i)
		w.WriteRecord(rec)
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBlockCutting(t *testing.T) {
	fs := New(Config{BlockSize: 25, DataNodes: 2})
	w, _ := fs.Create("f")
	for i := 0; i < 10; i++ {
		w.WriteRecord("0123456789") // 11 bytes each with newline
	}
	w.Close()
	f, _ := fs.Open("f")
	// 25-byte blocks hold two 11-byte records each: 5 blocks.
	if len(f.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		if b.Bytes > 25 {
			t.Errorf("block %d overflows: %d bytes", b.ID, b.Bytes)
		}
	}
	if f.Records != 10 {
		t.Errorf("records = %d", f.Records)
	}
}

func TestOversizeRecordGetsOwnBlock(t *testing.T) {
	fs := New(Config{BlockSize: 4, DataNodes: 1})
	w, _ := fs.Create("f")
	w.WriteRecord("this record is far larger than a block")
	w.WriteRecord("x")
	w.Close()
	got, err := fs.ReadAll("f")
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestPartitionedBlocks(t *testing.T) {
	fs := New(Config{BlockSize: 1024, DataNodes: 2})
	w, _ := fs.Create("f")
	w.SetPartition("c0")
	w.WriteRecord("a")
	w.WriteRecord("b")
	w.SetPartition("c1")
	w.WriteRecord("c")
	w.Close()
	f, _ := fs.Open("f")
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (one per partition)", len(f.Blocks))
	}
	if f.Blocks[0].Partition != "c0" || f.Blocks[1].Partition != "c1" {
		t.Errorf("partitions = %q, %q", f.Blocks[0].Partition, f.Blocks[1].Partition)
	}
	if f.Blocks[0].NumRecords() != 2 || f.Blocks[1].NumRecords() != 1 {
		t.Error("bad record placement")
	}
}

func TestErrors(t *testing.T) {
	fs := New(Config{})
	if _, err := fs.Open("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("open missing: %v", err)
	}
	if _, err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	fs.Delete("f")
	if fs.Exists("f") {
		t.Error("file should be deleted")
	}
	fs.Delete("f") // idempotent
}

func TestMasterAttachment(t *testing.T) {
	fs := New(Config{})
	w, _ := fs.Create("f")
	w.WriteRecord("data")
	w.SetMaster([]byte("index-bytes"))
	w.Close()
	f, _ := fs.Open("f")
	if string(f.Master) != "index-bytes" {
		t.Errorf("master = %q", f.Master)
	}
}

func TestListAndReplace(t *testing.T) {
	fs := New(Config{})
	fs.WriteFile("b", []string{"1"})
	fs.WriteFile("a", []string{"2"})
	if got := fs.List(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
	w, err := fs.CreateOrReplace("a")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord("replaced")
	w.Close()
	recs, _ := fs.ReadAll("a")
	if len(recs) != 1 || recs[0] != "replaced" {
		t.Errorf("replace failed: %v", recs)
	}
	if _, err := fs.ReadAll("missing"); err == nil {
		t.Error("expected error reading missing file")
	}
}

func TestNodeBytesAccounting(t *testing.T) {
	fs := New(Config{BlockSize: 16, DataNodes: 2})
	fs.WriteFile("f", []string{"0123456789", "0123456789", "0123456789"})
	total := int64(0)
	for _, b := range fs.NodeBytes() {
		total += b
	}
	f, _ := fs.Open("f")
	if total != f.Bytes {
		t.Errorf("node bytes %d, file bytes %d", total, f.Bytes)
	}
	fs.Delete("f")
	total = 0
	for _, b := range fs.NodeBytes() {
		total += b
	}
	if total != 0 {
		t.Errorf("bytes not released on delete: %d", total)
	}
}

func TestConcurrentReaders(t *testing.T) {
	fs := New(Config{BlockSize: 64, DataNodes: 4})
	var recs []string
	for i := 0; i < 500; i++ {
		recs = append(recs, fmt.Sprintf("r%04d", i))
	}
	fs.WriteFile("f", recs)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				got, err := fs.ReadAll("f")
				if err != nil || len(got) != 500 {
					t.Error("concurrent read failed")
					break
				}
				fs.List()
				fs.Exists("f")
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	fs := New(Config{BlockSize: 8, DataNodes: 4})
	w, _ := fs.Create("f")
	for i := 0; i < 32; i++ {
		w.WriteRecord("1234567") // one record per block
	}
	w.Close()
	f, _ := fs.Open("f")
	nodes := map[int]int{}
	for _, b := range f.Blocks {
		nodes[b.Node]++
	}
	if len(nodes) != 4 {
		t.Errorf("blocks spread over %d nodes, want 4", len(nodes))
	}
	for n, c := range nodes {
		if c != 8 {
			t.Errorf("node %d has %d blocks, want 8", n, c)
		}
	}
}
