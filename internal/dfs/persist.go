package dfs

import (
	"bufio"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The on-disk layout written by SaveDir: per DFS file <name> (URL-escaped),
//
//	<name>.data    records, one per line, in block order
//	<name>.meta    one "partition|numRecords|node" line per block
//	<name>.master  the raw master attachment, when present
//
// The format keeps the partition structure and the spatial master index,
// so a reloaded file system serves the same per-partition splits and
// prunes identically (blocks inside one partition may be re-cut to the
// loading file system's block size).

// SaveDir persists every file to dir (created if missing).
func (fs *FileSystem) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for name, f := range fs.files {
		esc := url.PathEscape(name)
		data, err := os.Create(filepath.Join(dir, esc+".data"))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(data)
		var meta strings.Builder
		for _, b := range f.Blocks {
			fmt.Fprintf(&meta, "%s|%d|%d\n", url.PathEscape(b.Partition), b.NumRecords(), b.Node)
			for _, rec := range b.records {
				if strings.ContainsRune(rec, '\n') {
					data.Close()
					return fmt.Errorf("dfs: record with newline cannot be persisted (file %s)", name)
				}
				fmt.Fprintln(w, rec)
			}
		}
		if err := w.Flush(); err != nil {
			data.Close()
			return err
		}
		if err := data.Close(); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, esc+".meta"), []byte(meta.String()), 0o644); err != nil {
			return err
		}
		if len(f.Master) > 0 {
			if err := os.WriteFile(filepath.Join(dir, esc+".master"), f.Master, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadDir reads a directory written by SaveDir into a fresh FileSystem.
func LoadDir(dir string, cfg Config) (*FileSystem, error) {
	fs := New(cfg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".meta") {
			continue
		}
		esc := strings.TrimSuffix(e.Name(), ".meta")
		name, err := url.PathUnescape(esc)
		if err != nil {
			return nil, fmt.Errorf("dfs: bad persisted file name %q: %v", esc, err)
		}
		metaBytes, err := os.ReadFile(filepath.Join(dir, esc+".meta"))
		if err != nil {
			return nil, err
		}
		dataBytes, err := os.ReadFile(filepath.Join(dir, esc+".data"))
		if err != nil {
			return nil, err
		}
		var records []string
		if len(dataBytes) > 0 {
			records = strings.Split(strings.TrimSuffix(string(dataBytes), "\n"), "\n")
		}

		w, err := fs.Create(name)
		if err != nil {
			return nil, err
		}
		next := 0
		for _, line := range strings.Split(strings.TrimSpace(string(metaBytes)), "\n") {
			if line == "" {
				continue
			}
			parts := strings.Split(line, "|")
			if len(parts) != 3 {
				return nil, fmt.Errorf("dfs: bad meta line %q in %s", line, e.Name())
			}
			partition, err := url.PathUnescape(parts[0])
			if err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("dfs: bad record count in %q", line)
			}
			if next+n > len(records) {
				return nil, fmt.Errorf("dfs: %s.data truncated: need %d records, have %d",
					esc, next+n, len(records))
			}
			// Force a block cut matching the persisted boundary: cut when
			// the partition changes or unconditionally between blocks.
			w.SetPartition(partition)
			for i := 0; i < n; i++ {
				w.WriteRecord(records[next])
				next++
			}
		}
		if next != len(records) {
			return nil, fmt.Errorf("dfs: %s.data has %d extra records", esc, len(records)-next)
		}
		if master, err := os.ReadFile(filepath.Join(dir, esc+".master")); err == nil {
			w.SetMaster(master)
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	return fs, nil
}
