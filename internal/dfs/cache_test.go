package dfs

import (
	"fmt"
	"testing"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
)

// writePoints stores n encoded points in one file and returns them.
func writePoints(t *testing.T, fs *FileSystem, name string, n int) []geom.Point {
	t.Helper()
	pts := make([]geom.Point, n)
	recs := make([]string, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: float64(2 * i)}
		recs[i] = geomio.EncodePoint(pts[i])
	}
	if err := fs.WriteFile(name, recs); err != nil {
		t.Fatal(err)
	}
	return pts
}

func TestBlockPointsCached(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	want := writePoints(t, fs, "pts", 50)
	f, err := fs.Open("pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(f.Blocks))
	}
	b := f.Blocks[0]
	first, err := b.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(want) {
		t.Fatalf("decoded %d points, want %d", len(first), len(want))
	}
	for i, p := range first {
		if p != want[i] {
			t.Fatalf("point %d = %v, want %v", i, p, want[i])
		}
	}
	second, err := b.Points()
	if err != nil {
		t.Fatal(err)
	}
	// The cache must serve the identical backing array, not a re-parse.
	if &first[0] != &second[0] {
		t.Error("second Points() call re-decoded instead of hitting the cache")
	}
}

func TestBlockPointsInvalidatedOnWrite(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	w, err := fs.Create("pts")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(geomio.EncodePoint(geom.Pt(1, 1)))
	f, _ := fs.Open("pts")
	b := f.Blocks[0]
	pts, err := b.Points()
	if err != nil || len(pts) != 1 {
		t.Fatalf("Points = %v, %v; want one point", pts, err)
	}
	// Appending to the open block must drop the decoded view.
	w.WriteRecord(geomio.EncodePoint(geom.Pt(2, 2)))
	pts, err = b.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1] != geom.Pt(2, 2) {
		t.Fatalf("Points after write = %v, want both points (stale cache?)", pts)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOrReplaceDropsDecodedPoints(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	writePoints(t, fs, "out", 10)
	f, _ := fs.Open("out")
	old, err := f.Blocks[0].Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 10 {
		t.Fatalf("decoded %d points, want 10", len(old))
	}

	// Replace the file with different content, as every job output commit
	// does. A reader opening the new file must see only the new points.
	w, err := fs.CreateOrReplace("out")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord(geomio.EncodePoint(geom.Pt(99, 99)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	nf, err := fs.Open("out")
	if err != nil {
		t.Fatal(err)
	}
	var got []geom.Point
	for _, b := range nf.Blocks {
		pts, err := b.Points()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pts...)
	}
	if len(got) != 1 || got[0] != geom.Pt(99, 99) {
		t.Fatalf("replaced file decodes to %v, want [{99 99}] (stale decoded points)", got)
	}
}

func TestBlockPointsError(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	if err := fs.WriteFile("bad", []string{"not-a-point"}); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("bad")
	if _, err := f.Blocks[0].Points(); err == nil {
		t.Fatal("Points on malformed records did not error")
	}
	// The error is cached too: the second call must also report it.
	if _, err := f.Blocks[0].Points(); err == nil {
		t.Fatal("cached Points error was lost")
	}
}

func TestBlockPayloadCachedAndInvalidated(t *testing.T) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	w, err := fs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRecord("a")
	w.WriteRecord("b")
	f, _ := fs.Open("f")
	b := f.Blocks[0]

	builds := 0
	build := func(recs []string) (any, error) {
		builds++
		return fmt.Sprintf("decoded:%d", len(recs)), nil
	}
	for i := 0; i < 3; i++ {
		v, err := b.Payload(build)
		if err != nil {
			t.Fatal(err)
		}
		if v != "decoded:2" {
			t.Fatalf("payload = %v", v)
		}
	}
	if builds != 1 {
		t.Fatalf("payload built %d times, want 1", builds)
	}

	w.WriteRecord("c") // invalidates
	v, err := b.Payload(build)
	if err != nil {
		t.Fatal(err)
	}
	if v != "decoded:3" {
		t.Fatalf("payload after write = %v, want decoded:3", v)
	}
	if builds != 2 {
		t.Fatalf("payload built %d times after invalidation, want 2", builds)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlockPointsUncached(b *testing.B) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	pts := make([]geom.Point, 4096)
	recs := make([]string, len(pts))
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 1.25, Y: float64(i) * 3.5}
		recs[i] = geomio.EncodePoint(pts[i])
	}
	if err := fs.WriteFile("pts", recs); err != nil {
		b.Fatal(err)
	}
	f, _ := fs.Open("pts")
	blk := f.Blocks[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := geomio.DecodePoints(blk.Records()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockPointsCached(b *testing.B) {
	fs := New(Config{BlockSize: 1 << 20, DataNodes: 2})
	pts := make([]geom.Point, 4096)
	recs := make([]string, len(pts))
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 1.25, Y: float64(i) * 3.5}
		recs[i] = geomio.EncodePoint(pts[i])
	}
	if err := fs.WriteFile("pts", recs); err != nil {
		b.Fatal(err)
	}
	f, _ := fs.Open("pts")
	blk := f.Blocks[0]
	if _, err := blk.Points(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Points(); err != nil {
			b.Fatal(err)
		}
	}
}
