package dfs

import (
	"fmt"
	"testing"
)

// Replica placement must spread: with at least Factor workers, no group
// may place two replicas on one worker.
func TestPlacementSpread(t *testing.T) {
	pol := ReplicaPolicy{Seed: 1, Factor: 3}
	workers := []int64{1, 2, 3, 4, 5}
	used := map[int64]bool{}
	for g := 0; g < 200; g++ {
		group := fmt.Sprintf("p:cell-%d", g)
		got := pol.Place(group, workers)
		if len(got) != 3 {
			t.Fatalf("group %s: placed %d replicas, want 3", group, len(got))
		}
		seen := map[int64]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("group %s: worker %d holds two replicas: %v", group, id, got)
			}
			seen[id] = true
			used[id] = true
		}
	}
	// Rendezvous hashing over 200 groups must touch the whole pool.
	if len(used) != len(workers) {
		t.Fatalf("placement used only %d of %d workers", len(used), len(workers))
	}
}

// With fewer workers than the factor, every worker holds one replica and
// none holds two.
func TestPlacementFewerWorkersThanFactor(t *testing.T) {
	pol := ReplicaPolicy{Seed: 1, Factor: 3}
	got := pol.Place("p:cell-0", []int64{7, 9})
	if len(got) != 2 {
		t.Fatalf("placed %d replicas over 2 workers, want 2", len(got))
	}
	if got[0] == got[1] {
		t.Fatalf("both replicas landed on worker %d", got[0])
	}
}

// Blocks of one spatial partition share a placement group, so their
// replicas co-locate; heap blocks get per-block groups.
func TestPlacementPartitionCoLocation(t *testing.T) {
	pol := ReplicaPolicy{Seed: 3, Factor: 2}
	workers := []int64{1, 2, 3, 4}
	a := pol.Place(PlacementGroup("cell-7", 11), workers)
	b := pol.Place(PlacementGroup("cell-7", 42), workers)
	if len(a) != len(b) {
		t.Fatalf("same partition placed differently: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("blocks of one partition split holders: %v vs %v", a, b)
		}
	}
	if PlacementGroup("", 11) == PlacementGroup("", 42) {
		t.Fatal("distinct heap blocks share a placement group")
	}
}

// Placement is a pure function of (seed, group, worker set): identical
// inputs place identically, candidate order is irrelevant, and a changed
// seed actually changes placements.
func TestPlacementDeterministic(t *testing.T) {
	workers := []int64{1, 2, 3, 4, 5}
	shuffled := []int64{4, 1, 5, 3, 2}
	pol := ReplicaPolicy{Seed: 42, Factor: 2}
	moved := 0
	for g := 0; g < 100; g++ {
		group := fmt.Sprintf("p:cell-%d", g)
		a := pol.Place(group, workers)
		b := pol.Place(group, shuffled)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("group %s: candidate order changed placement: %v vs %v", group, a, b)
		}
		if c := pol.Place(group, workers); fmt.Sprint(a) != fmt.Sprint(c) {
			t.Fatalf("group %s: replay changed placement: %v vs %v", group, a, c)
		}
		other := ReplicaPolicy{Seed: 43, Factor: 2}.Place(group, workers)
		if fmt.Sprint(a) != fmt.Sprint(other) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no placement at all")
	}
}

// Rendezvous stability: removing one worker only disturbs the groups
// that held a replica on it — everyone else's holders are unchanged,
// which is what bounds re-replication traffic on worker loss.
func TestPlacementStableUnderWorkerLoss(t *testing.T) {
	pol := ReplicaPolicy{Seed: 7, Factor: 2}
	all := []int64{1, 2, 3, 4, 5}
	without := []int64{1, 2, 3, 4}
	for g := 0; g < 100; g++ {
		group := fmt.Sprintf("p:cell-%d", g)
		before := pol.Place(group, all)
		held := false
		for _, id := range before {
			if id == 5 {
				held = true
			}
		}
		after := pol.Place(group, without)
		if held {
			continue // this group legitimately re-replicates
		}
		if fmt.Sprint(before) != fmt.Sprint(after) {
			t.Fatalf("group %s held no replica on the lost worker but moved: %v vs %v", group, before, after)
		}
	}
}
