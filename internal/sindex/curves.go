package sindex

// zInterleave returns the Z-order (Morton) value of grid coordinates
// (x, y): their bits interleaved, x in the even positions.
func zInterleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// spread inserts a zero bit between each bit of v.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// hilbertD2XY returns the distance along the Hilbert curve of order
// log2(n) at grid cell (x, y). n must be a power of two; coordinates are
// clamped into [0, n).
func hilbertD2XY(n uint32, x, y uint32) uint64 {
	if x >= n {
		x = n - 1
	}
	if y >= n {
		y = n - 1
	}
	var d uint64
	for s := n / 2; s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
