package sindex

import (
	"sync"

	"spatialhadoop/internal/geom"
)

// SFilter is the serving layer's spatial bitmap filter (the "sFilter" of
// LocationSpark): one compact occupancy bitmap per partition over a fixed
// res×res grid of the indexed space, consulted before any block or pinned
// R-tree is touched. A probe can return a false positive (the partition is
// then searched and contributes nothing) but never a false negative:
// build and probe discretize coordinates with the same floor arithmetic,
// so any cell holding a record sets every bit a query covering that record
// probes.
//
// A partition's bitmap starts conservative — the grid cells covered by the
// partition's minimal content MBR, available from the master index alone —
// and is refined to the exact occupancy of the decoded points when the
// partition is pinned into the memory tier.
type SFilter struct {
	space  geom.Rect
	res    int
	cw, ch float64

	mu    sync.RWMutex
	parts map[string]*sfilterBits
}

// sfilterBits is one partition's occupancy bitmap.
type sfilterBits struct {
	words []uint64
	set   int  // population count, maintained on Set
	exact bool // true once refined from decoded records
}

// DefaultSFilterRes is the per-axis bitmap resolution: 64×64 bits = 512
// bytes per partition.
const DefaultSFilterRes = 64

// NewSFilter builds the filter for a global index: every cell with content
// gets a conservative bitmap covering its content MBR. res <= 0 selects
// DefaultSFilterRes.
func NewSFilter(gi *GlobalIndex, res int) *SFilter {
	if res <= 0 {
		res = DefaultSFilterRes
	}
	f := &SFilter{
		space: gi.Space,
		res:   res,
		cw:    gi.Space.Width() / float64(res),
		ch:    gi.Space.Height() / float64(res),
		parts: make(map[string]*sfilterBits, len(gi.Cells)),
	}
	for _, c := range gi.Cells {
		if c.Content.IsEmpty() {
			continue
		}
		b := &sfilterBits{words: make([]uint64, (res*res+63)/64)}
		f.setRect(b, c.Content)
		f.parts[c.Key()] = b
	}
	return f
}

// col and row clamp a coordinate into the grid. The same floor expression
// serves build and probe, which is what makes pruning sound: floor of a
// monotone function is monotone, so a point's bit always lies inside the
// bit range of any rectangle containing the point.
func (f *SFilter) col(x float64) int { return clampIdx((x-f.space.MinX)/f.cw, f.res) }
func (f *SFilter) row(y float64) int { return clampIdx((y-f.space.MinY)/f.ch, f.res) }

func clampIdx(v float64, res int) int {
	i := int(v)
	if i < 0 {
		return 0
	}
	if i >= res {
		return res - 1
	}
	return i
}

func (b *sfilterBits) setBit(i int) {
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.set++
	}
}

func (b *sfilterBits) bit(i int) bool { return b.words[i/64]&(uint64(1)<<(i%64)) != 0 }

// setRect sets every bit in the grid range covered by r.
func (f *SFilter) setRect(b *sfilterBits, r geom.Rect) {
	c0, c1 := f.col(r.MinX), f.col(r.MaxX)
	r0, r1 := f.row(r.MinY), f.row(r.MaxY)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			b.setBit(row*f.res + col)
		}
	}
}

// Refine replaces a partition's conservative bitmap with the exact
// occupancy of its decoded points. The memory tier calls this when it pins
// a partition, so repeated queries prune with record-level precision.
func (f *SFilter) Refine(partition string, pts []geom.Point) {
	b := &sfilterBits{words: make([]uint64, (f.res*f.res+63)/64), exact: true}
	for _, p := range pts {
		b.setBit(f.row(p.Y)*f.res + f.col(p.X))
	}
	f.mu.Lock()
	f.parts[partition] = b
	f.mu.Unlock()
}

// MayIntersect reports whether the partition may hold a record inside q.
// False means certainly empty (sound to skip the partition); true means
// the partition must be searched. Unknown partitions answer true.
func (f *SFilter) MayIntersect(partition string, q geom.Rect) bool {
	f.mu.RLock()
	b, ok := f.parts[partition]
	f.mu.RUnlock()
	if !ok {
		return true
	}
	if !q.Intersects(f.space) {
		// Records live strictly inside the (buffered) index space.
		return false
	}
	c0, c1 := f.col(q.MinX), f.col(q.MaxX)
	r0, r1 := f.row(q.MinY), f.row(q.MaxY)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			if b.bit(row*f.res + col) {
				return true
			}
		}
	}
	return false
}

// EstimateFraction estimates the fraction of the partition's records that
// fall inside q as (occupied bits within q's grid range) / (occupied bits
// total). It is the planner's selectivity signal: multiplied by the
// partition's record count it approximates the records a local search
// would touch. Unknown or empty partitions answer 1 (no information).
func (f *SFilter) EstimateFraction(partition string, q geom.Rect) float64 {
	f.mu.RLock()
	b, ok := f.parts[partition]
	f.mu.RUnlock()
	if !ok || b.set == 0 {
		return 1
	}
	if !q.Intersects(f.space) {
		return 0
	}
	c0, c1 := f.col(q.MinX), f.col(q.MaxX)
	r0, r1 := f.row(q.MinY), f.row(q.MaxY)
	in := 0
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			if b.bit(row*f.res + col) {
				in++
			}
		}
	}
	return float64(in) / float64(b.set)
}

// Exact reports whether the partition's bitmap has been refined from
// decoded records.
func (f *SFilter) Exact(partition string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	b, ok := f.parts[partition]
	return ok && b.exact
}

// Bytes returns the filter's approximate memory footprint.
func (f *SFilter) Bytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var n int64
	for _, b := range f.parts {
		n += int64(len(b.words)) * 8
	}
	return n
}
