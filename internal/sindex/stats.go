package sindex

// PartitionStats summarizes how well a built global index filled its
// partitions. The loader computes it after record assignment and feeds it
// to the observability layer; the imbalance ratio is the quantity paper
// Table 1's skew column is about.
type PartitionStats struct {
	// Cells is the number of cells in the index.
	Cells int
	// Empty counts cells that received no records.
	Empty int
	// Overflowing counts cells whose payload exceeds one block.
	Overflowing int
	// MaxRecords and TotalRecords describe the fill distribution.
	MaxRecords   int
	TotalRecords int
	// MaxBytes and TotalBytes do the same in encoded bytes.
	MaxBytes   int64
	TotalBytes int64
}

// Imbalance returns max/avg records over non-empty cells (1.0 is a
// perfectly balanced index; higher means skew leaked into the partitions).
func (ps PartitionStats) Imbalance() float64 {
	filled := ps.Cells - ps.Empty
	if filled == 0 || ps.TotalRecords == 0 {
		return 0
	}
	avg := float64(ps.TotalRecords) / float64(filled)
	return float64(ps.MaxRecords) / avg
}

// Stats computes fill statistics for the index given per-cell record
// counts and encoded byte sizes (indexed by cell ID) and the block size
// that defines overflow.
func (gi *GlobalIndex) Stats(perCellRecords []int, perCellBytes []int64, blockSize int64) PartitionStats {
	ps := PartitionStats{Cells: len(gi.Cells)}
	for i := range gi.Cells {
		var recs int
		var bytes int64
		if i < len(perCellRecords) {
			recs = perCellRecords[i]
		}
		if i < len(perCellBytes) {
			bytes = perCellBytes[i]
		}
		if recs == 0 {
			ps.Empty++
		}
		if blockSize > 0 && bytes > blockSize {
			ps.Overflowing++
		}
		if recs > ps.MaxRecords {
			ps.MaxRecords = recs
		}
		if bytes > ps.MaxBytes {
			ps.MaxBytes = bytes
		}
		ps.TotalRecords += recs
		ps.TotalBytes += bytes
	}
	return ps
}
