package sindex

import (
	"sort"
	"sync"
)

// Hot-partition telemetry. Every query job over an indexed file touches a
// subset of its partitions: the filter function prunes some at the
// metadata level and scans the rest, and the map tasks then read records
// and produce matches. Hotness aggregates those events per (file,
// partition) across jobs, yielding the access-frequency and
// scan-selectivity statistics that hot-partition mitigation and the query
// planner consume (LocationSpark's runtime statistics, measured rather
// than assumed). Scans and prunes are recorded master-side in the filter
// (once per job); record/match counts are folded in from the job's
// win-gated task counters after it finishes, so retried and speculative
// attempts never double-count.

// PartitionHeat is the accumulated access statistics of one partition.
type PartitionHeat struct {
	Partition string `json:"partition"`
	// Scans counts jobs whose filter kept the partition (its blocks were
	// read); Prunes counts jobs whose filter eliminated it.
	Scans  int64 `json:"scans"`
	Prunes int64 `json:"prunes"`
	// Records is the number of records map tasks read from the partition;
	// Matches is how many of them satisfied the query.
	Records int64 `json:"records"`
	Matches int64 `json:"matches"`
}

// Selectivity returns Matches/Records (0 when no records were read): how
// much of the partition's data that reached a map task was actually
// useful. Persistently low selectivity on a hot partition means the
// partition boundary is too coarse for the workload.
func (p PartitionHeat) Selectivity() float64 {
	if p.Records == 0 {
		return 0
	}
	return float64(p.Matches) / float64(p.Records)
}

// FileHeat is the per-file skew report: partition heats plus aggregates.
type FileHeat struct {
	File string `json:"file"`
	// Partitions is sorted hottest first (by scans, then records, then
	// key) so a skew report's head is the repartitioning candidate list.
	Partitions []PartitionHeat `json:"partitions"`
	Scans      int64           `json:"scans"`
	Prunes     int64           `json:"prunes"`
	// Skew is max(partition scans) / mean(partition scans) — 1.0 for a
	// perfectly balanced workload, rising as access concentrates. 0 when
	// nothing was scanned.
	Skew float64 `json:"skew"`
}

// Hotness aggregates partition access statistics across jobs. Safe for
// concurrent use; one instance lives on the core.System.
type Hotness struct {
	mu     sync.Mutex
	byFile map[string]map[string]*PartitionHeat
}

// NewHotness creates an empty aggregator.
func NewHotness() *Hotness {
	return &Hotness{byFile: make(map[string]map[string]*PartitionHeat)}
}

// get returns the mutable heat cell for (file, partition), creating it.
// Callers hold h.mu. Partitionless (heap) splits are not tracked.
func (h *Hotness) get(file, partition string) *PartitionHeat {
	m, ok := h.byFile[file]
	if !ok {
		m = make(map[string]*PartitionHeat)
		h.byFile[file] = m
	}
	p, ok := m[partition]
	if !ok {
		p = &PartitionHeat{Partition: partition}
		m[partition] = p
	}
	return p
}

// RecordScan counts one filter decision that kept the partition.
func (h *Hotness) RecordScan(file, partition string) {
	if partition == "" {
		return
	}
	h.mu.Lock()
	h.get(file, partition).Scans++
	h.mu.Unlock()
}

// RecordPrune counts one filter decision that eliminated the partition.
func (h *Hotness) RecordPrune(file, partition string) {
	if partition == "" {
		return
	}
	h.mu.Lock()
	h.get(file, partition).Prunes++
	h.mu.Unlock()
}

// AddRecords adds n records read from the partition by map tasks.
func (h *Hotness) AddRecords(file, partition string, n int64) {
	if partition == "" || n == 0 {
		return
	}
	h.mu.Lock()
	h.get(file, partition).Records += n
	h.mu.Unlock()
}

// AddMatches adds n query matches produced from the partition.
func (h *Hotness) AddMatches(file, partition string, n int64) {
	if partition == "" || n == 0 {
		return
	}
	h.mu.Lock()
	h.get(file, partition).Matches += n
	h.mu.Unlock()
}

// Report returns the per-file skew reports, files sorted by name and
// partitions hottest first.
func (h *Hotness) Report() []FileHeat {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]FileHeat, 0, len(h.byFile))
	for file, parts := range h.byFile {
		fh := FileHeat{File: file, Partitions: make([]PartitionHeat, 0, len(parts))}
		var maxScans int64
		for _, p := range parts {
			fh.Partitions = append(fh.Partitions, *p)
			fh.Scans += p.Scans
			fh.Prunes += p.Prunes
			if p.Scans > maxScans {
				maxScans = p.Scans
			}
		}
		sort.Slice(fh.Partitions, func(i, j int) bool {
			a, b := fh.Partitions[i], fh.Partitions[j]
			if a.Scans != b.Scans {
				return a.Scans > b.Scans
			}
			if a.Records != b.Records {
				return a.Records > b.Records
			}
			return a.Partition < b.Partition
		})
		if fh.Scans > 0 {
			mean := float64(fh.Scans) / float64(len(fh.Partitions))
			fh.Skew = float64(maxScans) / mean
		}
		out = append(out, fh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out
}
