package sindex

import (
	"math/rand"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
)

// This file pins the record-routing contracts of AssignPoint as properties
// over seeded workloads, so any future partitioner must keep them:
//
//   - Disjoint techniques route by containment: the assigned cell contains
//     the point, and when exactly one cell's half-open interior contains it
//     the assignment is that cell (boundary points go to the lowest-ID
//     containing cell, making assignment total and unambiguous).
//   - Curve techniques route by curve position: the assigned cell's
//     [CurveLo, CurveHi) range covers curveValue(p), which pins the
//     cellForCurve binary-search boundary behaviour (inclusive lo,
//     exclusive hi, last cell open-ended).

// assignWorkload builds an adversarial point workload for a built index:
// random in-space points, points snapped onto every cell boundary edge and
// corner, and points outside the space.
func assignWorkload(gi *GlobalIndex, space geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []geom.Point
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.Pt(
			space.MinX+rng.Float64()*space.Width(),
			space.MinY+rng.Float64()*space.Height()))
	}
	for _, c := range gi.Cells {
		b := c.Boundary
		pts = append(pts,
			b.Corners()[0], b.Corners()[1], b.Corners()[2], b.Corners()[3],
			geom.Pt((b.MinX+b.MaxX)/2, b.MinY), // edge midpoints
			geom.Pt((b.MinX+b.MaxX)/2, b.MaxY),
			geom.Pt(b.MinX, (b.MinY+b.MaxY)/2),
			geom.Pt(b.MaxX, (b.MinY+b.MaxY)/2))
	}
	pts = append(pts,
		geom.Pt(space.MinX-50, space.MinY-50),
		geom.Pt(space.MaxX+50, space.MaxY+50),
		geom.Pt(space.MinX-1, (space.MinY+space.MaxY)/2))
	return pts
}

// TestAssignPointDisjointContainment: for disjoint techniques every
// in-space point maps to exactly one cell, that cell contains the point,
// and interior points (contained exclusively by a single cell) map to
// precisely that cell.
func TestAssignPointDisjointContainment(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	for _, tech := range allTechniques {
		if !tech.Disjoint() {
			continue
		}
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			for _, dist := range []datagen.Distribution{datagen.Uniform, datagen.Clustered} {
				sample := datagen.Points(dist, 1800, space, 11)
				gi := Build(tech, sample, space, 13)
				for _, p := range assignWorkload(gi, space, 17) {
					c := gi.AssignPoint(p)
					if c < 0 || c >= len(gi.Cells) {
						t.Fatalf("%v: point %v assigned to out-of-range cell %d", dist, p, c)
					}
					if space.ContainsPoint(p) && !gi.Cells[c].Boundary.ContainsPoint(p) {
						t.Fatalf("%v: point %v assigned to non-containing cell %v",
							dist, p, gi.Cells[c].Boundary)
					}
					var exclusive []int
					for i := range gi.Cells {
						if gi.Cells[i].Boundary.ContainsPointExclusive(p) {
							exclusive = append(exclusive, i)
						}
					}
					if len(exclusive) > 1 {
						t.Fatalf("%v: point %v in interior of %d cells — tiling broken",
							dist, p, len(exclusive))
					}
					if len(exclusive) == 1 && c != exclusive[0] {
						t.Fatalf("%v: interior point %v assigned to cell %d, sole containing cell is %d",
							dist, p, c, exclusive[0])
					}
				}
			}
		})
	}
}

// TestAssignPointCurveRange: for curve techniques the assigned cell's
// curve range covers the point's curve value, for every point including
// ones at the extremes of the space (curve value 0 and the maximum).
func TestAssignPointCurveRange(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	for _, tech := range []Technique{ZCurve, Hilbert} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			sample := datagen.Points(datagen.Gaussian, 1800, space, 23)
			gi := Build(tech, sample, space, 11)
			for _, p := range assignWorkload(gi, space, 29) {
				v := gi.curveValue(p)
				c := gi.AssignPoint(p)
				if c != gi.cellForCurve(v) {
					t.Fatalf("AssignPoint(%v) = %d, cellForCurve(%d) = %d", p, c, v, gi.cellForCurve(v))
				}
				cell := gi.Cells[c]
				if v < cell.CurveLo || (v >= cell.CurveHi && c != len(gi.Cells)-1) {
					t.Fatalf("point %v: curve value %d outside assigned cell range [%d,%d) (cell %d of %d)",
						p, v, cell.CurveLo, cell.CurveHi, c, len(gi.Cells))
				}
			}
			// Boundary pinning: a curve value exactly at a cell's CurveHi
			// belongs to the NEXT cell (exclusive hi), and CurveLo to its
			// own (inclusive lo).
			for i, cell := range gi.Cells {
				if got := gi.cellForCurve(cell.CurveLo); gi.Cells[got].CurveHi <= cell.CurveLo {
					t.Fatalf("cellForCurve(lo=%d) = cell %d with hi %d — lo not inclusive",
						cell.CurveLo, got, gi.Cells[got].CurveHi)
				}
				if i < len(gi.Cells)-1 {
					if got := gi.cellForCurve(cell.CurveHi); got == i {
						t.Fatalf("cellForCurve(hi=%d) stayed in cell %d — hi not exclusive", cell.CurveHi, i)
					}
				}
			}
		})
	}
}
