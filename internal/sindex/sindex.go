// Package sindex implements SpatialHadoop's global index layer: the
// spatial partitioning techniques of paper Table 1 (uniform grid, STR,
// STR+, Quad-tree, K-d tree, Z-curve, Hilbert curve), the partition
// metadata (cells with boundaries), record-to-cell assignment with
// replication for disjoint techniques, and the master-file serialization
// that persists the global index next to the data blocks.
package sindex

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spatialhadoop/internal/geom"
)

// Technique identifies a spatial partitioning technique.
type Technique int

// The partitioning techniques of paper Table 1.
const (
	Grid Technique = iota
	STR
	STRPlus
	QuadTree
	KDTree
	ZCurve
	Hilbert
)

// Info describes a technique's static properties (paper Table 1).
type Info struct {
	Name string
	// Disjoint reports whether partitions never overlap (records crossing
	// boundaries are replicated instead).
	Disjoint bool
	// HandlesSkew reports whether the technique adapts to skewed data.
	HandlesSkew bool
}

// Table1 is the catalogue of supported techniques and their properties,
// mirroring paper Table 1: all techniques handle skew except the uniform
// grid, and grid / STR+ / Quad-tree / K-d tree produce disjoint partitions.
var Table1 = map[Technique]Info{
	Grid:     {Name: "grid", Disjoint: true, HandlesSkew: false},
	STR:      {Name: "str", Disjoint: false, HandlesSkew: true},
	STRPlus:  {Name: "str+", Disjoint: true, HandlesSkew: true},
	QuadTree: {Name: "quadtree", Disjoint: true, HandlesSkew: true},
	KDTree:   {Name: "kdtree", Disjoint: true, HandlesSkew: true},
	ZCurve:   {Name: "zcurve", Disjoint: false, HandlesSkew: true},
	Hilbert:  {Name: "hilbert", Disjoint: false, HandlesSkew: true},
}

// ParseTechnique maps a name to a Technique.
func ParseTechnique(name string) (Technique, error) {
	for t, info := range Table1 {
		if info.Name == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("sindex: unknown partitioning technique %q", name)
}

// String implements fmt.Stringer.
func (t Technique) String() string {
	if info, ok := Table1[t]; ok {
		return info.Name
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Disjoint reports whether the technique produces disjoint partitions.
func (t Technique) Disjoint() bool { return Table1[t].Disjoint }

// Cell is one partition of the global index.
type Cell struct {
	// ID is the cell's ordinal within the index.
	ID int
	// Boundary is the cell's partition rectangle. For disjoint techniques
	// the boundaries tile the space; for overlapping techniques the
	// boundary is the MBR of the assigned contents and may overlap other
	// cells.
	Boundary geom.Rect
	// Content is the minimal MBR of the records actually stored in the
	// cell, set by the loader after assignment. Dominance-based filters
	// (skyline, convex hull, farthest pair) rely on content MBRs being
	// minimal: every edge of a minimal MBR carries at least one record.
	Content geom.Rect
	// CurveLo/CurveHi delimit the cell's space-filling-curve range for
	// curve-based techniques (inclusive lo, exclusive hi).
	CurveLo, CurveHi uint64
}

// Key returns the partition key used to tag this cell's blocks.
func (c Cell) Key() string { return "c" + strconv.Itoa(c.ID) }

// GlobalIndex is the partition-level (global) half of SpatialHadoop's
// two-level index. It is consulted by filter functions for pruning and by
// the loader for record assignment; it never touches individual records.
type GlobalIndex struct {
	Technique Technique
	// Space is the indexed data space (used by curve techniques and grid).
	Space geom.Rect
	Cells []Cell
	// curveRes is the per-axis resolution of the space-filling curves.
	curveRes uint32
}

// Disjoint reports whether the index's partitions are disjoint.
func (gi *GlobalIndex) Disjoint() bool { return gi.Technique.Disjoint() }

// CellByKey returns the cell with the given partition key.
func (gi *GlobalIndex) CellByKey(key string) (Cell, bool) {
	id, err := strconv.Atoi(strings.TrimPrefix(key, "c"))
	if err != nil || id < 0 || id >= len(gi.Cells) {
		return Cell{}, false
	}
	return gi.Cells[id], true
}

// AssignPoint returns the cell a point record belongs to. Disjoint
// techniques route by containment; overlapping techniques route by curve
// position or least-enlargement.
func (gi *GlobalIndex) AssignPoint(p geom.Point) int {
	switch gi.Technique {
	case ZCurve, Hilbert:
		v := gi.curveValue(p)
		return gi.cellForCurve(v)
	case STR:
		return gi.leastEnlargement(geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
	default:
		return gi.cellContaining(p)
	}
}

// AssignRect returns the cells a shape with MBR r belongs to. For disjoint
// techniques the shape is replicated to every overlapping cell (paper
// §2.3); for overlapping techniques it goes to exactly one cell.
func (gi *GlobalIndex) AssignRect(r geom.Rect) []int {
	switch gi.Technique {
	case ZCurve, Hilbert:
		return []int{gi.cellForCurve(gi.curveValue(r.Center()))}
	case STR:
		return []int{gi.leastEnlargement(r)}
	default:
		var out []int
		for i := range gi.Cells {
			if gi.Cells[i].Boundary.Intersects(r) {
				out = append(out, i)
			}
		}
		if len(out) == 0 {
			out = append(out, gi.cellContaining(r.Center()))
		}
		return out
	}
}

// cellContaining returns the disjoint cell containing p. Points on shared
// boundaries belong to the lowest-ID containing cell, so assignment is
// total and unambiguous even at the space's maximum edges.
func (gi *GlobalIndex) cellContaining(p geom.Point) int {
	fallback := -1
	for i := range gi.Cells {
		b := gi.Cells[i].Boundary
		if b.ContainsPointExclusive(p) {
			return i
		}
		if fallback < 0 && b.ContainsPoint(p) {
			fallback = i
		}
	}
	if fallback >= 0 {
		return fallback
	}
	// Outside the indexed space entirely: nearest cell.
	best, bestD := 0, geom.WorldRect().Width()
	for i := range gi.Cells {
		if d := gi.Cells[i].Boundary.MinDistPoint(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// leastEnlargement returns the cell whose boundary grows least to admit r
// (R-tree ChooseLeaf, used for the overlapping STR technique).
func (gi *GlobalIndex) leastEnlargement(r geom.Rect) int {
	best := 0
	bestGrow := geom.WorldRect().Width()
	bestArea := bestGrow
	for i := range gi.Cells {
		b := gi.Cells[i].Boundary
		grow := b.Union(r).Area() - b.Area()
		if grow < bestGrow || (grow == bestGrow && b.Area() < bestArea) {
			best, bestGrow, bestArea = i, grow, b.Area()
		}
	}
	return best
}

// cellForCurve returns the cell whose curve range contains v.
func (gi *GlobalIndex) cellForCurve(v uint64) int {
	n := len(gi.Cells)
	idx := sort.Search(n, func(i int) bool { return gi.Cells[i].CurveHi > v })
	if idx >= n {
		return n - 1
	}
	return idx
}

// curveValue maps a point to its space-filling-curve position.
func (gi *GlobalIndex) curveValue(p geom.Point) uint64 {
	x, y := gi.normalize(p)
	if gi.Technique == Hilbert {
		return hilbertD2XY(gi.curveRes, x, y)
	}
	return zInterleave(x, y)
}

// normalize maps p into integer grid coordinates of the curve resolution.
func (gi *GlobalIndex) normalize(p geom.Point) (uint32, uint32) {
	res := gi.curveRes
	w := gi.Space.Width()
	h := gi.Space.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	fx := (p.X - gi.Space.MinX) / w
	fy := (p.Y - gi.Space.MinY) / h
	x := uint32(clampf(fx) * float64(res-1))
	y := uint32(clampf(fy) * float64(res-1))
	return x, y
}

func clampf(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Encode serializes the index into the master-file format: one header line
// followed by one line per cell.
func (gi *GlobalIndex) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d\n", gi.Technique, encodeRect(gi.Space), gi.curveRes)
	for _, c := range gi.Cells {
		fmt.Fprintf(&b, "%d|%s|%s|%d|%d\n",
			c.ID, encodeRect(c.Boundary), encodeRect(c.Content), c.CurveLo, c.CurveHi)
	}
	return []byte(b.String())
}

// Decode parses a master file produced by Encode.
func Decode(master []byte) (*GlobalIndex, error) {
	lines := strings.Split(strings.TrimSpace(string(master)), "\n")
	if len(lines) < 1 {
		return nil, fmt.Errorf("sindex: empty master file")
	}
	head := strings.Split(lines[0], "|")
	if len(head) != 3 {
		return nil, fmt.Errorf("sindex: bad master header %q", lines[0])
	}
	tech, err := ParseTechnique(head[0])
	if err != nil {
		return nil, err
	}
	space, err := decodeRect(head[1])
	if err != nil {
		return nil, err
	}
	res, err := strconv.ParseUint(head[2], 10, 32)
	if err != nil {
		return nil, fmt.Errorf("sindex: bad curve resolution %q", head[2])
	}
	gi := &GlobalIndex{Technique: tech, Space: space, curveRes: uint32(res)}
	for _, line := range lines[1:] {
		parts := strings.Split(line, "|")
		if len(parts) != 5 {
			return nil, fmt.Errorf("sindex: bad cell line %q", line)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("sindex: bad cell id %q", parts[0])
		}
		mbr, err := decodeRect(parts[1])
		if err != nil {
			return nil, err
		}
		content, err := decodeRect(parts[2])
		if err != nil {
			return nil, err
		}
		lo, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sindex: bad curve lo %q", parts[3])
		}
		hi, err := strconv.ParseUint(parts[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sindex: bad curve hi %q", parts[4])
		}
		gi.Cells = append(gi.Cells, Cell{ID: id, Boundary: mbr, Content: content, CurveLo: lo, CurveHi: hi})
	}
	return gi, nil
}

func encodeRect(r geom.Rect) string {
	return fmt.Sprintf("%s,%s,%s,%s",
		formatFloat(r.MinX), formatFloat(r.MinY), formatFloat(r.MaxX), formatFloat(r.MaxY))
}

func decodeRect(s string) (geom.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("sindex: bad rect %q", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return geom.Rect{}, fmt.Errorf("sindex: bad rect coordinate %q", p)
		}
		vals[i] = v
	}
	return geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}, nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }
