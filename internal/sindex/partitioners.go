package sindex

import (
	"math"
	"sort"

	"spatialhadoop/internal/geom"
)

// Build computes a global index for the given technique from a sample of
// the data, targeting the given number of cells. The sample is what the
// SpatialHadoop loader draws in its first pass; the returned index then
// routes the full dataset in the second pass.
func Build(t Technique, sample []geom.Point, space geom.Rect, numCells int) *GlobalIndex {
	if numCells < 1 {
		numCells = 1
	}
	gi := &GlobalIndex{Technique: t, Space: space, curveRes: 1 << 15}
	switch t {
	case Grid:
		gi.Cells = gridCells(space, numCells)
	case STR, STRPlus:
		gi.Cells = strCells(sample, space, numCells, t == STRPlus)
	case QuadTree:
		gi.Cells = quadCells(sample, space, numCells)
	case KDTree:
		gi.Cells = kdCells(sample, space, numCells)
	case ZCurve, Hilbert:
		gi.Cells = curveCells(gi, sample, numCells)
	default:
		gi.Cells = gridCells(space, numCells)
	}
	for i := range gi.Cells {
		gi.Cells[i].ID = i
		gi.Cells[i].Content = geom.EmptyRect()
	}
	return gi
}

// gridCells tiles the space with a uniform ~sqrt(n) x sqrt(n) grid.
func gridCells(space geom.Rect, numCells int) []Cell {
	nx := int(math.Ceil(math.Sqrt(float64(numCells))))
	ny := (numCells + nx - 1) / nx
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	cw := space.Width() / float64(nx)
	ch := space.Height() / float64(ny)
	cells := make([]Cell, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			cells = append(cells, Cell{Boundary: geom.Rect{
				MinX: space.MinX + float64(ix)*cw,
				MinY: space.MinY + float64(iy)*ch,
				MaxX: space.MinX + float64(ix+1)*cw,
				MaxY: space.MinY + float64(iy)*ch + ch,
			}})
		}
	}
	return cells
}

// strCells implements the Sort-Tile-Recursive packing: slice the sample
// into vertical strips of equal count, then cut each strip horizontally
// into cells of equal count. In STR mode the cell boundary is the MBR of
// the sample contents (cells may overlap once real data is assigned); in
// STR+ (disjoint) mode the boundaries are extended so the cells exactly
// tile the space.
func strCells(sample []geom.Point, space geom.Rect, numCells int, disjoint bool) []Cell {
	if len(sample) == 0 {
		return gridCells(space, numCells)
	}
	nStrips := int(math.Ceil(math.Sqrt(float64(numCells))))
	perStrip := (numCells + nStrips - 1) / nStrips

	byX := make([]geom.Point, len(sample))
	copy(byX, sample)
	sort.Slice(byX, func(i, j int) bool { return byX[i].Less(byX[j]) })

	var cells []Cell
	stripSize := (len(byX) + nStrips - 1) / nStrips
	for s := 0; s < nStrips; s++ {
		lo := s * stripSize
		if lo >= len(byX) {
			break
		}
		hi := lo + stripSize
		if hi > len(byX) {
			hi = len(byX)
		}
		strip := make([]geom.Point, hi-lo)
		copy(strip, byX[lo:hi])
		sort.Slice(strip, func(i, j int) bool { return strip[i].Y < strip[j].Y })

		// Disjoint x-range of this strip when tiling.
		sMinX, sMaxX := space.MinX, space.MaxX
		if disjoint {
			if s > 0 {
				sMinX = byX[lo].X
			}
			if hi < len(byX) {
				sMaxX = byX[hi].X
			}
		}

		cellSize := (len(strip) + perStrip - 1) / perStrip
		if cellSize < 1 {
			cellSize = 1
		}
		for c := 0; c*cellSize < len(strip); c++ {
			clo := c * cellSize
			chi := clo + cellSize
			if chi > len(strip) {
				chi = len(strip)
			}
			var boundary geom.Rect
			if disjoint {
				minY, maxY := space.MinY, space.MaxY
				if clo > 0 {
					minY = strip[clo].Y
				}
				if chi < len(strip) {
					maxY = strip[chi].Y
				}
				boundary = geom.Rect{MinX: sMinX, MinY: minY, MaxX: sMaxX, MaxY: maxY}
			} else {
				boundary = geom.RectOf(strip[clo:chi])
			}
			cells = append(cells, Cell{Boundary: boundary})
		}
	}
	return cells
}

// quadCells recursively splits the space into quadrants until each leaf
// holds at most capacity sample points; the leaves tile the space.
func quadCells(sample []geom.Point, space geom.Rect, numCells int) []Cell {
	capacity := len(sample) / numCells
	if capacity < 1 {
		capacity = 1
	}
	var cells []Cell
	var rec func(r geom.Rect, pts []geom.Point, depth int)
	rec = func(r geom.Rect, pts []geom.Point, depth int) {
		if len(pts) <= capacity || depth >= 20 {
			cells = append(cells, Cell{Boundary: r})
			return
		}
		c := r.Center()
		quads := [4]geom.Rect{
			{MinX: r.MinX, MinY: r.MinY, MaxX: c.X, MaxY: c.Y},
			{MinX: c.X, MinY: r.MinY, MaxX: r.MaxX, MaxY: c.Y},
			{MinX: r.MinX, MinY: c.Y, MaxX: c.X, MaxY: r.MaxY},
			{MinX: c.X, MinY: c.Y, MaxX: r.MaxX, MaxY: r.MaxY},
		}
		var parts [4][]geom.Point
		for _, p := range pts {
			q := 0
			if p.X >= c.X {
				q |= 1
			}
			if p.Y >= c.Y {
				q |= 2
			}
			parts[q] = append(parts[q], p)
		}
		for i := range quads {
			rec(quads[i], parts[i], depth+1)
		}
	}
	rec(space, sample, 0)
	return cells
}

// kdCells builds a K-d tree over the sample (median splits, alternating
// axes) whose leaves tile the space.
func kdCells(sample []geom.Point, space geom.Rect, numCells int) []Cell {
	capacity := len(sample) / numCells
	if capacity < 1 {
		capacity = 1
	}
	pts := make([]geom.Point, len(sample))
	copy(pts, sample)
	var cells []Cell
	var rec func(r geom.Rect, pts []geom.Point, axis int, depth int)
	rec = func(r geom.Rect, pts []geom.Point, axis, depth int) {
		if len(pts) <= capacity || depth >= 30 {
			cells = append(cells, Cell{Boundary: r})
			return
		}
		if axis == 0 {
			sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		} else {
			sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
		}
		mid := len(pts) / 2
		split := pts[mid]
		left, right := r, r
		if axis == 0 {
			left.MaxX, right.MinX = split.X, split.X
		} else {
			left.MaxY, right.MinY = split.Y, split.Y
		}
		rec(left, pts[:mid], 1-axis, depth+1)
		rec(right, pts[mid:], 1-axis, depth+1)
	}
	rec(space, pts, 0, 0)
	return cells
}

// curveCells sorts the sample along the space-filling curve and chunks it
// into equal-count cells; each cell records its curve range (for
// assignment) and the MBR of its contents (for filtering).
func curveCells(gi *GlobalIndex, sample []geom.Point, numCells int) []Cell {
	if len(sample) == 0 {
		cells := gridCells(gi.Space, numCells)
		step := (uint64(1)<<62 + uint64(len(cells)) - 1) / uint64(len(cells))
		for i := range cells {
			cells[i].CurveLo = uint64(i) * step
			cells[i].CurveHi = uint64(i+1) * step
		}
		return cells
	}
	type cp struct {
		v uint64
		p geom.Point
	}
	cps := make([]cp, len(sample))
	for i, p := range sample {
		cps[i] = cp{v: gi.curveValue(p), p: p}
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].v < cps[j].v })
	chunk := (len(cps) + numCells - 1) / numCells
	if chunk < 1 {
		chunk = 1
	}
	var cells []Cell
	maxCurve := uint64(math.MaxUint64)
	for c := 0; c*chunk < len(cps); c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > len(cps) {
			hi = len(cps)
		}
		mbr := geom.EmptyRect()
		for _, e := range cps[lo:hi] {
			mbr = mbr.ExpandPoint(e.p)
		}
		cell := Cell{Boundary: mbr}
		if c == 0 {
			cell.CurveLo = 0
		} else {
			cell.CurveLo = cps[lo].v
		}
		if hi == len(cps) {
			cell.CurveHi = maxCurve
		} else {
			cell.CurveHi = cps[hi].v
		}
		if cell.CurveHi < cell.CurveLo {
			cell.CurveHi = cell.CurveLo
		}
		cells = append(cells, cell)
	}
	if len(cells) > 0 {
		cells[len(cells)-1].CurveHi = maxCurve
	}
	return cells
}
