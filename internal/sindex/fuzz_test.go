package sindex

import (
	"bytes"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
)

// masterSeed builds a small real index and returns its encoded master
// file, the honest starting point for the decode fuzzers.
func masterSeed(tech Technique) []byte {
	space := geom.NewRect(0, 0, 1000, 1000)
	sample := datagen.Points(datagen.Uniform, 600, space, 3)
	gi := Build(tech, sample, space, 6)
	for i := range gi.Cells {
		gi.Cells[i].Content = geom.NewRect(float64(i), 1, float64(i)+2, 3)
	}
	return gi.Encode()
}

// FuzzMasterDecode: Decode must never panic on arbitrary master-file
// bytes, and whenever it accepts the input, decode∘encode must be a fixed
// point — re-encoding the decoded index and decoding again yields the
// byte-identical master file.
func FuzzMasterDecode(f *testing.F) {
	for _, tech := range allTechniques {
		f.Add(masterSeed(tech))
	}
	f.Add([]byte(""))
	f.Add([]byte("grid|0,0,1,1|0\n"))
	f.Add([]byte("grid|0,0,1,1|16\n0|0,0,1,1|0,0,1,1|0|18446744073709551615\n"))
	f.Add([]byte("zcurve|0,0,1,1|not-a-number\n"))
	f.Add([]byte("grid|0,0,1,1|16\n1|bad-rect|0,0,1,1|0|1\n"))
	f.Fuzz(func(t *testing.T, master []byte) {
		gi, err := Decode(master)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		enc := gi.Encode()
		gi2, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(decoded)) failed: %v\nencoded:\n%s", err, enc)
		}
		enc2 := gi2.Encode()
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:\n%s\nsecond:\n%s", enc, enc2)
		}
		// The round-tripped index must also route points identically.
		for _, p := range []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0.5), geom.Pt(-3, 7)} {
			if len(gi.Cells) > 0 && gi.AssignPoint(p) != gi2.AssignPoint(p) {
				t.Fatalf("assignment differs after round trip for %v", p)
			}
		}
	})
}

// FuzzRectDecode: decodeRect must never panic, and every rect it accepts
// must survive encodeRect → decodeRect unchanged.
func FuzzRectDecode(f *testing.F) {
	f.Add("0,0,1,1")
	f.Add("-1e300,2.5,1e300,3.75")
	f.Add("0,0,1")
	f.Add("a,b,c,d")
	f.Add("NaN,0,1,1")
	f.Add("0,0,1,1,")
	f.Add("+Inf,-Inf,+Inf,-Inf")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := decodeRect(s)
		if err != nil {
			return
		}
		r2, err := decodeRect(encodeRect(r))
		if err != nil {
			t.Fatalf("decodeRect(encodeRect(%#v)) failed: %v", r, err)
		}
		if enc, enc2 := encodeRect(r), encodeRect(r2); enc != enc2 {
			t.Fatalf("rect round trip not a fixed point: %q vs %q", enc, enc2)
		}
	})
}
