package sindex

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
)

var allTechniques = []Technique{Grid, STR, STRPlus, QuadTree, KDTree, ZCurve, Hilbert}

func TestTable1(t *testing.T) {
	// Paper Table 1: disjointness per technique.
	wantDisjoint := map[Technique]bool{
		Grid: true, STR: false, STRPlus: true,
		QuadTree: true, KDTree: true, ZCurve: false, Hilbert: false,
	}
	for tech, want := range wantDisjoint {
		if got := tech.Disjoint(); got != want {
			t.Errorf("%v disjoint = %v, want %v", tech, got, want)
		}
	}
	if Table1[Grid].HandlesSkew {
		t.Error("uniform grid does not handle skew")
	}
	for _, tech := range []Technique{STR, STRPlus, QuadTree, KDTree, ZCurve, Hilbert} {
		if !Table1[tech].HandlesSkew {
			t.Errorf("%v should handle skew", tech)
		}
	}
}

// TestParseTechniqueRoundTrip: ParseTechnique(t.String()) is the identity
// for every technique in Table1, and unknown names produce a descriptive
// error naming the offender.
func TestParseTechniqueRoundTrip(t *testing.T) {
	if len(Table1) != len(allTechniques) {
		t.Fatalf("Table1 has %d techniques, test covers %d", len(Table1), len(allTechniques))
	}
	for tech, info := range Table1 {
		tech, info := tech, info
		t.Run(info.Name, func(t *testing.T) {
			if got := tech.String(); got != info.Name {
				t.Errorf("String() = %q, want %q", got, info.Name)
			}
			got, err := ParseTechnique(tech.String())
			if err != nil {
				t.Fatalf("ParseTechnique(%q): %v", tech.String(), err)
			}
			if got != tech {
				t.Errorf("round trip: got %v, want %v", got, tech)
			}
		})
	}
	for _, name := range []string{"", "nope", "Grid", "STR", "str ", "quad-tree", "hilbert curve"} {
		_, err := ParseTechnique(name)
		if err == nil {
			t.Errorf("ParseTechnique(%q): expected error", name)
			continue
		}
		if !strings.Contains(err.Error(), "unknown partitioning technique") ||
			!strings.Contains(err.Error(), strconv.Quote(name)) {
			t.Errorf("ParseTechnique(%q): error %q not descriptive", name, err)
		}
	}
}

// TestAssignmentTotal checks that every point is assigned to exactly one
// cell (points are never replicated) and that disjoint techniques assign by
// containment.
func TestAssignmentTotal(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	for _, tech := range allTechniques {
		for _, dist := range []datagen.Distribution{datagen.Uniform, datagen.Gaussian, datagen.Clustered} {
			sample := datagen.Points(dist, 2000, space, 42)
			gi := Build(tech, sample, space.Buffer(1), 16)
			if len(gi.Cells) == 0 {
				t.Fatalf("%v/%v: no cells", tech, dist)
			}
			data := datagen.Points(dist, 3000, space, 99)
			counts := make([]int, len(gi.Cells))
			for _, p := range data {
				c := gi.AssignPoint(p)
				if c < 0 || c >= len(gi.Cells) {
					t.Fatalf("%v/%v: bad cell %d", tech, dist, c)
				}
				counts[c]++
				if gi.Disjoint() && !gi.Cells[c].Boundary.ContainsPoint(p) {
					t.Fatalf("%v/%v: point %v assigned to non-containing cell %v",
						tech, dist, p, gi.Cells[c].Boundary)
				}
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != len(data) {
				t.Fatalf("%v/%v: assigned %d of %d", tech, dist, total, len(data))
			}
		}
	}
}

// TestDisjointTiling checks that disjoint techniques tile the space: cell
// interiors are pairwise disjoint and random points are covered.
func TestDisjointTiling(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	rng := rand.New(rand.NewSource(5))
	for _, tech := range []Technique{Grid, STRPlus, QuadTree, KDTree} {
		sample := datagen.Points(datagen.Clustered, 1500, space, 7)
		gi := Build(tech, sample, space, 12)
		for i := range gi.Cells {
			for j := i + 1; j < len(gi.Cells); j++ {
				inter := gi.Cells[i].Boundary.Intersect(gi.Cells[j].Boundary)
				if !inter.IsEmpty() && inter.Area() > 1e-9 {
					t.Fatalf("%v: cells %d and %d overlap by %g", tech, i, j, inter.Area())
				}
			}
		}
		for k := 0; k < 500; k++ {
			p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			found := false
			for i := range gi.Cells {
				if gi.Cells[i].Boundary.ContainsPoint(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v: point %v not covered by any cell", tech, p)
			}
		}
	}
}

// TestReplication checks that disjoint techniques replicate rectangles to
// every overlapping cell while overlapping techniques assign exactly one.
func TestReplication(t *testing.T) {
	space := geom.NewRect(0, 0, 100, 100)
	sample := datagen.Points(datagen.Uniform, 2000, space, 1)
	for _, tech := range allTechniques {
		gi := Build(tech, sample, space, 9)
		big := geom.NewRect(10, 10, 90, 90) // spans many cells
		cells := gi.AssignRect(big)
		if gi.Disjoint() {
			if len(cells) < 2 {
				t.Errorf("%v: big rect should replicate, got %d cells", tech, len(cells))
			}
			for _, c := range cells {
				if !gi.Cells[c].Boundary.Intersects(big) {
					t.Errorf("%v: replicated to non-overlapping cell", tech)
				}
			}
		} else if len(cells) != 1 {
			t.Errorf("%v: overlapping technique assigned %d cells, want 1", tech, len(cells))
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	space := geom.NewRect(0, 0, 1e6, 1e6)
	sample := datagen.Points(datagen.Gaussian, 3000, space, 8)
	for _, tech := range allTechniques {
		gi := Build(tech, sample, space, 20)
		for i := range gi.Cells {
			gi.Cells[i].Content = geom.NewRect(float64(i), 0, float64(i)+1, 1)
		}
		got, err := Decode(gi.Encode())
		if err != nil {
			t.Fatalf("%v: decode: %v", tech, err)
		}
		if got.Technique != gi.Technique || len(got.Cells) != len(gi.Cells) {
			t.Fatalf("%v: round trip mismatch", tech)
		}
		for i := range gi.Cells {
			if got.Cells[i] != gi.Cells[i] {
				t.Fatalf("%v: cell %d mismatch: %+v vs %+v", tech, i, got.Cells[i], gi.Cells[i])
			}
		}
		// Round-tripped index must route identically.
		for _, p := range datagen.Points(datagen.Uniform, 500, space, 77) {
			if gi.AssignPoint(p) != got.AssignPoint(p) {
				t.Fatalf("%v: assignment differs after round trip", tech)
			}
		}
	}
}

// TestSkewBalance verifies skew-handling claims of Table 1: on clustered
// data, adaptive techniques produce far better balanced partitions than the
// uniform grid.
func TestSkewBalance(t *testing.T) {
	space := geom.NewRect(0, 0, 1000, 1000)
	data := datagen.Points(datagen.Gaussian, 20000, space, 3)
	imbalance := func(tech Technique) float64 {
		gi := Build(tech, data[:5000], space, 16)
		counts := make([]int, len(gi.Cells))
		for _, p := range data {
			counts[gi.AssignPoint(p)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / (float64(len(data)) / float64(len(counts)))
	}
	gridImb := imbalance(Grid)
	strImb := imbalance(STRPlus)
	if strImb >= gridImb {
		t.Errorf("STR+ imbalance %.2f should beat grid %.2f on Gaussian data", strImb, gridImb)
	}
}

func TestCurveValues(t *testing.T) {
	if zInterleave(0, 0) != 0 {
		t.Error("z(0,0) != 0")
	}
	if zInterleave(1, 0) != 1 || zInterleave(0, 1) != 2 || zInterleave(1, 1) != 3 {
		t.Error("z first quad wrong")
	}
	// Hilbert: all cells of a 4x4 grid get distinct values in [0,16).
	seen := map[uint64]bool{}
	for x := uint32(0); x < 4; x++ {
		for y := uint32(0); y < 4; y++ {
			v := hilbertD2XY(4, x, y)
			if v >= 16 || seen[v] {
				t.Fatalf("hilbert(%d,%d) = %d invalid or duplicate", x, y, v)
			}
			seen[v] = true
		}
	}
}
