package sindex

import (
	"math/rand"
	"testing"

	"spatialhadoop/internal/geom"
)

// buildSFilterFixture indexes a deterministic point set and returns the
// index, the per-partition point assignment and the filter.
func buildSFilterFixture(t *testing.T, tech Technique, seed int64) (*GlobalIndex, map[string][]geom.Point, *SFilter) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := geom.NewRect(0, 0, 1000, 1000)
	var pts []geom.Point
	for i := 0; i < 400; i++ {
		// Clustered with outliers, so content MBRs differ from boundaries.
		if i%4 == 0 {
			pts = append(pts, geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
		} else {
			pts = append(pts, geom.Pt(200+rng.NormFloat64()*40, 700+rng.NormFloat64()*40))
		}
	}
	for i := range pts {
		if pts[i].X < 0 || pts[i].X > 1000 || pts[i].Y < 0 || pts[i].Y > 1000 {
			pts[i] = geom.Pt(500, 500)
		}
	}
	gi := Build(tech, pts, space.Buffer(1e-6), 8)
	byPart := map[string][]geom.Point{}
	for _, p := range pts {
		c := gi.AssignPoint(p)
		byPart[gi.Cells[c].Key()] = append(byPart[gi.Cells[c].Key()], p)
		gi.Cells[c].Content = gi.Cells[c].Content.ExpandPoint(p)
	}
	return gi, byPart, NewSFilter(gi, 0)
}

// TestSFilterSound: the filter must never report "certainly empty" for a
// (partition, query) pair where a linear scan finds a match — neither from
// the conservative content-MBR bitmaps nor after exact refinement.
func TestSFilterSound(t *testing.T) {
	for _, tech := range allTechniques {
		gi, byPart, f := buildSFilterFixture(t, tech, 42)
		rng := rand.New(rand.NewSource(7))
		queries := []geom.Rect{
			geom.NewRect(0, 0, 1000, 1000),
			geom.NewRect(-50, -50, -1, -1),
			geom.NewRect(199.5, 699.5, 200.5, 700.5),
		}
		for i := 0; i < 200; i++ {
			x, y := rng.Float64()*1100-50, rng.Float64()*1100-50
			queries = append(queries, geom.NewRect(x, y, x+rng.Float64()*300, y+rng.Float64()*300))
		}
		check := func(stage string) {
			for part, pts := range byPart {
				for _, q := range queries {
					any := false
					for _, p := range pts {
						if q.ContainsPoint(p) {
							any = true
							break
						}
					}
					if any && !f.MayIntersect(part, q) {
						t.Fatalf("%v/%s: %s filter false negative for %s q=%v", tech, stage, stage, part, q)
					}
					if fr := f.EstimateFraction(part, q); fr < 0 || fr > 1 {
						t.Fatalf("%v: EstimateFraction = %v out of [0,1]", tech, fr)
					}
				}
			}
		}
		check("conservative")
		for part, pts := range byPart {
			f.Refine(part, pts)
			if !f.Exact(part) {
				t.Fatalf("%v: partition %s not exact after Refine", tech, part)
			}
		}
		check("refined")
		_ = gi
	}
}

// TestSFilterPrunes: after refinement a query far away from a partition's
// records must be pruned, and a far-off query estimates fraction 0.
func TestSFilterPrunes(t *testing.T) {
	_, byPart, f := buildSFilterFixture(t, STRPlus, 3)
	for part, pts := range byPart {
		f.Refine(part, pts)
		mbr := geom.RectOf(pts)
		// A query in the opposite corner of the space, clear of the MBR.
		q := geom.NewRect(990, 990, 999, 999)
		if mbr.MaxX < 900 && mbr.MaxY < 900 {
			if f.MayIntersect(part, q) {
				t.Errorf("refined filter failed to prune %s for far query (mbr %v)", part, mbr)
			}
		}
		far := geom.NewRect(5000, 5000, 6000, 6000)
		if f.MayIntersect(part, far) {
			t.Errorf("query outside the space not pruned for %s", part)
		}
		if fr := f.EstimateFraction(part, far); fr != 0 {
			t.Errorf("EstimateFraction outside space = %v, want 0", fr)
		}
	}
}

// TestSFilterUnknownPartition: probes for partitions the filter has never
// seen must conservatively answer true.
func TestSFilterUnknownPartition(t *testing.T) {
	gi, _, f := buildSFilterFixture(t, Grid, 9)
	if !f.MayIntersect("c9999", geom.NewRect(0, 0, 10, 10)) {
		t.Error("unknown partition must answer MayIntersect=true")
	}
	if fr := f.EstimateFraction("c9999", geom.NewRect(0, 0, 10, 10)); fr != 1 {
		t.Errorf("unknown partition EstimateFraction = %v, want 1", fr)
	}
	if f.Bytes() <= 0 && len(gi.Cells) > 0 {
		t.Error("filter reports zero footprint over a non-empty index")
	}
}
