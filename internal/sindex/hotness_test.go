package sindex

import (
	"sync"
	"testing"
)

func TestHotnessAggregation(t *testing.T) {
	h := NewHotness()
	// Three jobs over file "pts": partition a scanned 3x, b scanned 1x
	// pruned 2x, c always pruned.
	for i := 0; i < 3; i++ {
		h.RecordScan("pts", "a")
	}
	h.RecordScan("pts", "b")
	h.RecordPrune("pts", "b")
	h.RecordPrune("pts", "b")
	h.RecordPrune("pts", "c")
	h.AddRecords("pts", "a", 300)
	h.AddMatches("pts", "a", 30)
	h.AddRecords("pts", "b", 100)
	h.AddMatches("pts", "b", 100)

	rep := h.Report()
	if len(rep) != 1 || rep[0].File != "pts" {
		t.Fatalf("report = %+v", rep)
	}
	fh := rep[0]
	if fh.Scans != 4 || fh.Prunes != 3 {
		t.Fatalf("totals scans=%d prunes=%d", fh.Scans, fh.Prunes)
	}
	if len(fh.Partitions) != 3 {
		t.Fatalf("got %d partitions", len(fh.Partitions))
	}
	// Hottest first.
	if fh.Partitions[0].Partition != "a" || fh.Partitions[1].Partition != "b" || fh.Partitions[2].Partition != "c" {
		t.Fatalf("order = %v %v %v", fh.Partitions[0].Partition, fh.Partitions[1].Partition, fh.Partitions[2].Partition)
	}
	if got := fh.Partitions[0].Selectivity(); got != 0.1 {
		t.Errorf("a selectivity = %v, want 0.1", got)
	}
	if got := fh.Partitions[1].Selectivity(); got != 1.0 {
		t.Errorf("b selectivity = %v, want 1", got)
	}
	if got := fh.Partitions[2].Selectivity(); got != 0 {
		t.Errorf("c selectivity = %v, want 0 (no records)", got)
	}
	// Skew: max scans 3, mean 4/3 → 2.25.
	if fh.Skew != 2.25 {
		t.Errorf("skew = %v, want 2.25", fh.Skew)
	}
}

func TestHotnessIgnoresHeapPartitions(t *testing.T) {
	h := NewHotness()
	h.RecordScan("f", "")
	h.RecordPrune("f", "")
	h.AddRecords("f", "", 10)
	h.AddMatches("f", "", 5)
	if rep := h.Report(); len(rep) != 0 {
		t.Fatalf("heap partitions should not be tracked: %+v", rep)
	}
}

func TestHotnessConcurrent(t *testing.T) {
	h := NewHotness()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.RecordScan("f", "p")
				h.AddRecords("f", "p", 2)
			}
		}()
	}
	wg.Wait()
	rep := h.Report()
	if rep[0].Partitions[0].Scans != 800 || rep[0].Partitions[0].Records != 1600 {
		t.Fatalf("concurrent counts wrong: %+v", rep[0].Partitions[0])
	}
	if rep[0].Skew != 1 {
		t.Fatalf("single-partition skew = %v, want 1", rep[0].Skew)
	}
}
