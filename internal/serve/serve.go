package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/rpc"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheSize bounds the result cache in entries (default 256; negative
	// disables caching, zero means default).
	CacheSize int
	// MaxInFlight is the number of jobs the cluster runs concurrently
	// (default 4); further admitted jobs wait in the queue.
	MaxInFlight int
	// QueueDepth bounds the admission queue (default 64); beyond it
	// requests are rejected with 429.
	QueueDepth int
	// JobDeadline bounds each admitted job's run time (0 = none).
	JobDeadline time.Duration
	// TraceRingSize bounds the in-memory ring of recent request traces
	// served by /debug/trace/{id} (default 256).
	TraceRingSize int
	// AccessLog, when non-nil, receives one JSON line per request (trace
	// ID, method, op, status, latency, cache state, bytes). Writes are
	// serialized; rotation is the caller's concern.
	AccessLog io.Writer
	// MemTierBytes budgets the in-memory partition tier backing local
	// query execution (default 64 MiB; negative disables the tier, zero
	// means default).
	MemTierBytes int64
	// Planner selects the query engine per request: PlannerAuto (default),
	// PlannerLocal, PlannerMapReduce, or PlannerSharded. Unrecognized
	// values fall back to auto; the CLI validates before it gets here. A
	// request can override the mode with ?engine=; the result cache is
	// keyed on (query, epoch) only, never the engine, because every
	// engine produces byte-identical bodies.
	Planner string
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 256
	}
	if c.MemTierBytes == 0 {
		c.MemTierBytes = 64 << 20
	}
	if !ValidPlanner(c.Planner) || c.Planner == "" {
		c.Planner = PlannerAuto
	}
	return c
}

// Server is the HTTP query front end. Every query endpoint runs as a
// MapReduce job under the cluster's admission controller and shared slot
// pool, so any mix of concurrent HTTP clients is bounded by the modelled
// cluster capacity, with overload surfacing as 429 instead of collapse.
type Server struct {
	sys      *core.System
	cfg      Config
	cache    *Cache
	mt       *MemTier // nil when the memory tier is disabled
	flight   flightGroup
	reg      *obs.Registry
	ring     *obs.TraceRing
	hs       *http.Server
	reqID    atomic.Int64
	draining atomic.Bool

	// wins holds one bounded sample window of recent latencies per
	// endpoint, backing the exact p50/p95/p99 gauges on /metrics.
	winMu sync.Mutex
	wins  map[string]*obs.SampleWindow

	// shardClients caches RPC clients to serving workers, keyed by shard
	// address; a failed call drops the entry so the fallback ladder
	// redials fresh workers instead of dead sockets.
	shardMu      sync.Mutex
	shardClients map[string]*rpc.Client

	logMu sync.Mutex // serializes AccessLog writes
}

// latencyWindowSize bounds the per-endpoint latency sample window the
// exact quantile gauges are computed over.
const latencyWindowSize = 2048

// New creates a Server over a running System and installs the admission
// controller on its cluster.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		sys:          sys,
		cfg:          cfg,
		cache:        NewCache(cfg.CacheSize, reg),
		reg:          reg,
		ring:         obs.NewTraceRing(cfg.TraceRingSize),
		wins:         make(map[string]*obs.SampleWindow),
		shardClients: make(map[string]*rpc.Client),
	}
	if cfg.MemTierBytes > 0 {
		s.mt = NewMemTier(cfg.MemTierBytes, reg)
		// Eager invalidation: any DFS mutation of a file drops its pinned
		// partitions immediately. Epoch-keyed lookups are the correctness
		// backstop (a stale pin can never serve a fresh epoch); the hook
		// just releases the memory at mutation time. Last server on a
		// shared system wins the single hook slot, which is fine for the
		// same reason.
		sys.FS().SetEpochHook(func(name string, _ int64) { s.mt.Invalidate(name) })
	}
	sys.Cluster().SetAdmission(mapreduce.AdmissionConfig{
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		JobDeadline: cfg.JobDeadline,
	})
	if m := sys.Cluster().Master(); m != nil {
		// Feed DFS epochs into heartbeat replies so serving workers drop
		// pins obsoleted by rewrites (the sharded engine re-installs this
		// per query in case the master starts later).
		m.SetEpochSource(sys.FS().Epochs)
	}
	return s
}

// Metrics returns the serving-layer metrics registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Cache returns the result cache (tests probe its state directly).
func (s *Server) ResultCache() *Cache { return s.cache }

// Handler returns the server's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rangequery", s.handle("range", s.handleRange))
	mux.HandleFunc("/knn", s.handle("knn", s.handleKNN))
	mux.HandleFunc("/join", s.handle("join", s.handleJoin))
	mux.HandleFunc("/plot", s.handle("plot", s.handlePlot))
	mux.HandleFunc("/healthz", s.handle("healthz", func(w http.ResponseWriter, r *http.Request) error {
		s.handleHealthz(w, r)
		return nil
	}))
	mux.HandleFunc("/metrics", s.handle("metrics", s.handleMetrics))
	mux.HandleFunc("/metrics.json", s.handle("metrics_json", s.handleMetricsJSON))
	mux.HandleFunc("/debug/trace/{id}", s.handle("trace", s.handleTrace))
	mux.HandleFunc("/debug/partitions", s.handle("partitions", s.handlePartitions))
	return mux
}

// ListenAndServe serves on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown. Like http.Server.Serve it returns
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.hs = &http.Server{Handler: s.Handler()}
	return s.hs.Serve(ln)
}

// Shutdown drains gracefully: stop admitting (healthz flips to 503 for
// load balancers), let in-flight HTTP handlers finish (each may span
// several jobs, e.g. the two kNN rounds), then drain the cluster's
// admission queue and stamp a final metrics snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	if derr := s.sys.Cluster().Drain(ctx); err == nil {
		err = derr
	}
	s.shardMu.Lock()
	for addr, c := range s.shardClients {
		c.Close()
		delete(s.shardClients, addr)
	}
	s.shardMu.Unlock()
	s.reg.SetGauge("serve.draining", 1)
	return err
}

// statusRecorder captures the status code and body size a handler writes,
// for the access log and the request trace's root span.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// handle wraps an endpoint with request-scoped tracing, metrics and error
// mapping: it mints a trace ID (returned as X-Trace-Id and retrievable
// via /debug/trace/{id}), opens the root "request" span the downstream
// layers hang their spans off, counts the request into per-endpoint
// labeled metrics and the exact-quantile latency window, and appends one
// access-log line.
func (s *Server) handle(name string, fn func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewReqTrace(obs.NewTraceID())
		ctx := obs.ContextWithTrace(r.Context(), tr)
		ctx, root := obs.StartSpan(ctx, "request")
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		root.SetAttr("endpoint", name)
		r = r.WithContext(ctx)
		w.Header().Set("X-Trace-Id", tr.TraceID())
		sr := &statusRecorder{ResponseWriter: w}

		s.reg.IncLabeled("serve.req", 1, "endpoint", name)
		err := fn(sr, r)
		if err != nil {
			s.reg.IncLabeled("serve.err", 1, "endpoint", name)
			writeError(sr, err)
		}
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		root.SetAttr("status", strconv.Itoa(sr.status))
		root.End()
		// The trace enters the ring only after the root span ends: every
		// span writer has returned, so readers see a quiescent tree.
		s.ring.Add(tr)

		elapsed := time.Since(start)
		us := float64(elapsed.Microseconds())
		s.reg.ObserveLabeled("serve.latency_us", us, "endpoint", name)
		s.latencyWindow(name).Observe(us)
		s.logAccess(r, name, sr, tr.TraceID(), elapsed)
	}
}

// latencyWindow returns (creating on first use) the endpoint's bounded
// latency sample window.
func (s *Server) latencyWindow(name string) *obs.SampleWindow {
	s.winMu.Lock()
	defer s.winMu.Unlock()
	w, ok := s.wins[name]
	if !ok {
		w = obs.NewSampleWindow(latencyWindowSize)
		s.wins[name] = w
	}
	return w
}

// logAccess appends one JSONL access-log line (no-op without AccessLog).
func (s *Server) logAccess(r *http.Request, name string, sr *statusRecorder, traceID string, d time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(struct {
		TS        string `json:"ts"`
		TraceID   string `json:"trace_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Op        string `json:"op"`
		Status    int    `json:"status"`
		LatencyUS int64  `json:"latency_us"`
		Cache     string `json:"cache,omitempty"`
		Bytes     int64  `json:"bytes"`
	}{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		TraceID:   traceID,
		Method:    r.Method,
		Path:      r.URL.RequestURI(),
		Op:        name,
		Status:    sr.status,
		LatencyUS: d.Microseconds(),
		Cache:     sr.Header().Get("X-Cache"),
		Bytes:     sr.bytes,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// badRequestError marks client errors (400).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// notFoundError marks lookups of server-side state that does not exist
// (e.g. an evicted or unknown trace ID).
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var br *badRequestError
	var nf *notFoundError
	switch {
	case errors.As(err, &br):
		code = http.StatusBadRequest
	case errors.As(err, &nf):
		code = http.StatusNotFound
	case errors.Is(err, mapreduce.ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, mapreduce.ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, dfs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Fixed field order keeps even error bodies deterministic.
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
	w.Write(append(body, '\n'))
}

// explainJSON is the execution report `?explain=1` inlines into JSON
// responses. Engine names who built the body ("local", "mapreduce", or
// "cache" when no engine ran); execution fields are zero on cache hits.
// For the local engine, partitions_scanned counts the partitions actually
// consulted and the sfilter fields report bitmap-filter pruning; the
// MapReduce job fields (shuffle, retries, phase times) stay zero.
type explainJSON struct {
	TraceID           string `json:"trace_id"`
	Cache             string `json:"cache"`
	Engine            string `json:"engine"`
	PartitionsTotal   int    `json:"partitions_total"`
	PartitionsScanned int    `json:"partitions_scanned"`
	PartitionsPruned  int    `json:"partitions_pruned"`
	SFilterHits       int    `json:"sfilter_hits"`
	SFilterSkips      int    `json:"sfilter_skips"`
	ShuffleBytes      int64  `json:"shuffle_bytes"`
	Retries           int64  `json:"retries"`
	Speculative       int64  `json:"speculative"`
	MapUS             int64  `json:"map_us"`
	ShuffleUS         int64  `json:"shuffle_us"`
	ReduceUS          int64  `json:"reduce_us"`
	CommitUS          int64  `json:"commit_us"`
	// Sharded-engine scatter/gather accounting (zero for other engines):
	// fan-out counts partitions scattered (both kNN rounds), remote/local
	// split the fragments by executor, and the fallback fields count
	// fragments rerouted after a holder was lost mid-query.
	ShardFanout        int `json:"shard_fanout"`
	ShardRemote        int `json:"shard_remote"`
	ShardLocal         int `json:"shard_local"`
	ShardFallbackPeer  int `json:"shard_fallback_peer"`
	ShardFallbackLocal int `json:"shard_fallback_local"`
}

func buildExplain(traceID, cache string, meta *execMeta) explainJSON {
	e := explainJSON{TraceID: traceID, Cache: cache, Engine: "cache"}
	if meta == nil {
		return e
	}
	e.Engine = meta.engine
	if st := meta.local; st != nil {
		e.PartitionsTotal = st.PartitionsTotal
		e.PartitionsScanned = st.PartitionsConsulted
		e.PartitionsPruned = st.PartitionsPruned
		e.SFilterHits = st.SFilterHits
		e.SFilterSkips = st.SFilterSkips
		if sh := meta.shard; sh != nil {
			e.ShardFanout = sh.fanout
			e.ShardRemote = sh.remote
			e.ShardLocal = sh.localExec
			e.ShardFallbackPeer = sh.fallbackPeer
			e.ShardFallbackLocal = sh.fallbackLocal
		}
		return e
	}
	rep := meta.rep
	if rep == nil {
		return e
	}
	e.PartitionsTotal = rep.SplitsTotal
	e.PartitionsScanned = rep.Splits
	e.PartitionsPruned = rep.SplitsTotal - rep.Splits
	e.ShuffleBytes = rep.Counters[mapreduce.CounterShuffleBytes]
	e.Retries = rep.Counters[mapreduce.CounterTaskRetries]
	e.Speculative = rep.Counters[mapreduce.CounterSpecLaunched]
	e.MapUS = rep.MapTime.Microseconds()
	e.ShuffleUS = rep.ShuffleTime.Microseconds()
	e.ReduceUS = rep.ReduceTime.Microseconds()
	e.CommitUS = rep.CommitTime.Microseconds()
	return e
}

// spliceExplain inserts `"explain":<report>` as the last member of the
// response's top-level JSON object. The cache stores the plain body and
// the report is spliced per response, so explained and plain responses
// stay byte-identical up to the splice and cache hits stay byte-identical
// to misses.
func spliceExplain(body []byte, e explainJSON) []byte {
	rep, err := json.Marshal(e)
	if err != nil {
		return body
	}
	i := bytes.LastIndexByte(body, '}')
	if i < 0 {
		return body
	}
	var out bytes.Buffer
	out.Grow(len(body) + len(rep) + 12)
	out.Write(body[:i])
	// An empty object ({}) takes the member without a leading comma.
	j := bytes.LastIndexByte(body[:i], '{')
	if j < 0 || len(bytes.TrimSpace(body[j+1:i])) > 0 {
		out.WriteByte(',')
	}
	out.WriteString(`"explain":`)
	out.Write(rep)
	out.Write(body[i:])
	return out.Bytes()
}

// respond serves from the cache when possible, otherwise builds the body
// under an "exec" span — coalescing identical in-flight keys so a
// thundering herd on one cold key runs one build — caches it and writes
// it. Cache state travels in the X-Cache header ("hit", "miss", or
// "coalesced" for requests that drafted behind another request's build)
// and the engine that built the body in X-Engine, so hit, miss and
// coalesced bodies stay byte-identical (the concurrency suite compares
// bodies against serial oracles); `?explain=1` splices the execution
// report into JSON bodies after the cache, so it never poisons that
// identity.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, key, contentType string, build func(ctx context.Context) ([]byte, *execMeta, error)) error {
	ctx := r.Context()
	explain := r.URL.Query().Get("explain") == "1" && contentType == "application/json"
	traceID := w.Header().Get("X-Trace-Id")

	_, probe := obs.StartSpan(ctx, "cache.probe")
	body, hit := s.cache.Get(key)
	if hit {
		probe.SetAttr("result", "hit")
	} else {
		probe.SetAttr("result", "miss")
	}
	probe.End()

	var meta *execMeta
	coalesced := false
	if !hit {
		execCtx, exec := obs.StartSpan(ctx, "exec")
		var err error
		body, meta, coalesced, err = s.flight.do(execCtx, key, func() ([]byte, *execMeta, error) {
			b, m, err := build(execCtx)
			if err != nil {
				return nil, nil, err
			}
			s.cache.Put(key, b)
			return b, m, nil
		})
		exec.End()
		if err != nil {
			return err
		}
		if coalesced {
			s.reg.Inc("serve.flight.coalesced", 1)
		}
	}

	cacheState := "miss"
	switch {
	case hit:
		cacheState = "hit"
	case coalesced:
		cacheState = "coalesced"
	}
	engine := "cache"
	if meta != nil {
		engine = meta.engine
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Engine", engine)
	if explain {
		body = spliceExplain(body, buildExplain(traceID, cacheState, meta))
	}
	// Declaring the length keeps net/http from chunking large bodies,
	// which halves the write syscalls and lets clients pre-size reads.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, enc := obs.StartSpan(ctx, "encode")
	enc.SetAttr("bytes", strconv.Itoa(len(body)))
	_, err := w.Write(body)
	enc.End()
	return err
}

// tempOut allocates a unique DFS output name for one request, so
// concurrent queries over the same file never clobber each other's job
// output (the ops default names are fixed per input file).
func (s *Server) tempOut(file string) string {
	return fmt.Sprintf("%s.serve.%d", file, s.reqID.Add(1))
}

func fnum(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// canonicalRect renders a rect as its normalized min-corner/max-corner
// form, so every corner ordering of the same rectangle maps to the same
// cache key.
func canonicalRect(r geom.Rect) string {
	return fnum(r.MinX) + "," + fnum(r.MinY) + "," + fnum(r.MaxX) + "," + fnum(r.MaxY)
}

// parseRect parses "x1,y1,x2,y2" accepting any pair of opposite corners.
func parseRect(s string) (geom.Rect, error) {
	var v [4]float64
	i := 0
	for _, part := range splitN(s, ',', 4) {
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return geom.Rect{}, badRequest("bad rect coordinate %q", part)
		}
		v[i] = f
		i++
	}
	if i != 4 {
		return geom.Rect{}, badRequest("rect wants x1,y1,x2,y2, got %q", s)
	}
	return geom.Rect{
		MinX: math.Min(v[0], v[2]),
		MinY: math.Min(v[1], v[3]),
		MaxX: math.Max(v[0], v[2]),
		MaxY: math.Max(v[1], v[3]),
	}, nil
}

func parsePoint(s string) (geom.Point, error) {
	parts := splitN(s, ',', 2)
	if len(parts) != 2 {
		return geom.Point{}, badRequest("point wants x,y, got %q", s)
	}
	x, err1 := strconv.ParseFloat(parts[0], 64)
	y, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil {
		return geom.Point{}, badRequest("bad point %q", s)
	}
	return geom.Point{X: x, Y: y}, nil
}

func splitN(s string, sep byte, max int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < max-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// --- endpoints ---

// plannerFor resolves a request's planner mode: the ?engine= override
// when present (validated), else the configured mode. The override never
// enters the cache key — every engine produces byte-identical bodies, so
// a forced-engine request may be served from a body another engine built.
func (s *Server) plannerFor(r *http.Request) (string, error) {
	v := r.URL.Query().Get("engine")
	if v == "" {
		return s.cfg.Planner, nil
	}
	if !ValidPlanner(v) {
		return "", badRequest("engine wants auto, local, mapreduce or sharded, got %q", v)
	}
	return v, nil
}

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type rangeResponse struct {
	File   string      `json:"file"`
	Rect   string      `json:"rect"`
	Count  int         `json:"count"`
	Points []pointJSON `json:"points"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) error {
	file := r.URL.Query().Get("file")
	if file == "" {
		return badRequest("missing file parameter")
	}
	rect, err := parseRect(r.URL.Query().Get("rect"))
	if err != nil {
		return err
	}
	mode, err := s.plannerFor(r)
	if err != nil {
		return err
	}
	canon := canonicalRect(rect)
	epoch := s.sys.FS().FileEpoch(file)
	// The engine never enters the key: all engines produce byte-identical
	// bodies, so a forced-engine request may safely hit a body another
	// engine cached.
	key := fmt.Sprintf("range|%s@%d|%s", file, epoch, canon)
	return s.respond(w, r, key, "application/json", func(ctx context.Context) ([]byte, *execMeta, error) {
		var (
			pts  []geom.Point
			meta *execMeta
		)
		if mode == PlannerSharded {
			spts, smeta, ok, err := s.shardedRange(file, epoch, rect)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				s.reg.Inc("serve.planner.sharded", 1)
				pts, meta = spts, smeta
			}
			// A heap file has no partitions to scatter: fall through to
			// MapReduce (planRange below returns nil for unindexed files).
		}
		if meta == nil {
			if src := s.planRange(mode, file, epoch, rect); src != nil {
				matches, stats, err := ops.LocalRangeMatches(s.sys, file, src, rect)
				if err != nil {
					return nil, nil, err
				}
				s.reg.Inc("serve.planner.local", 1)
				meta = &execMeta{engine: PlannerLocal, local: stats}
				// Fast path: merge the partitions' sorted streams, copying
				// pre-encoded fragments — no global sort, no float formatting.
				if body, ok := encodeRangeBodyMatches(file, canon, matches); ok {
					return body, meta, nil
				}
				for _, m := range matches {
					for _, id := range m.IDs {
						pts = append(pts, m.Part.Pts[id])
					}
				}
			} else {
				out := s.tempOut(file)
				defer s.sys.FS().Delete(out)
				mpts, rep, err := ops.RangeQueryPointsCtx(ctx, s.sys, file, rect, out)
				if err != nil {
					return nil, nil, err
				}
				s.reg.Inc("serve.planner.mapreduce", 1)
				pts, meta = mpts, &execMeta{engine: PlannerMapReduce, rep: rep}
			}
		}
		geom.SortPointsXY(pts)
		body, err := encodeRangeBody(file, canon, pts)
		return body, meta, err
	})
}

type neighborJSON struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Dist float64 `json:"dist"`
}

type knnResponse struct {
	File      string         `json:"file"`
	Point     string         `json:"point"`
	K         int            `json:"k"`
	Count     int            `json:"count"`
	Neighbors []neighborJSON `json:"neighbors"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) error {
	file := r.URL.Query().Get("file")
	if file == "" {
		return badRequest("missing file parameter")
	}
	q, err := parsePoint(r.URL.Query().Get("point"))
	if err != nil {
		return err
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 {
		return badRequest("k wants a positive integer, got %q", r.URL.Query().Get("k"))
	}
	mode, err := s.plannerFor(r)
	if err != nil {
		return err
	}
	canonPt := fnum(q.X) + "," + fnum(q.Y)
	epoch := s.sys.FS().FileEpoch(file)
	key := fmt.Sprintf("knn|%s@%d|%s|%d", file, epoch, canonPt, k)
	return s.respond(w, r, key, "application/json", func(ctx context.Context) ([]byte, *execMeta, error) {
		var (
			pts  []geom.Point
			meta *execMeta
		)
		if mode == PlannerSharded {
			spts, smeta, ok, err := s.shardedKNN(file, epoch, q, k)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				s.reg.Inc("serve.planner.sharded", 1)
				pts, meta = spts, smeta
			}
		}
		if meta == nil {
			if src := s.planKNN(mode, file, epoch); src != nil {
				lpts, stats, err := ops.LocalKNNPoints(s.sys, file, src, q, k)
				if err != nil {
					return nil, nil, err
				}
				s.reg.Inc("serve.planner.local", 1)
				pts, meta = lpts, &execMeta{engine: PlannerLocal, local: stats}
			} else {
				prefix := s.tempOut(file)
				defer func() {
					s.sys.FS().Delete(prefix + ".r1")
					s.sys.FS().Delete(prefix + ".r2")
				}()
				mpts, rep, err := ops.KNNCtx(ctx, s.sys, file, q, k, prefix)
				if err != nil {
					return nil, nil, err
				}
				s.reg.Inc("serve.planner.mapreduce", 1)
				pts, meta = mpts, &execMeta{engine: PlannerMapReduce, rep: rep}
			}
		}
		nbs := make([]neighborJSON, len(pts))
		for i, p := range pts {
			nbs[i] = neighborJSON{X: p.X, Y: p.Y, Dist: math.Hypot(p.X-q.X, p.Y-q.Y)}
		}
		// (dist, x, y) order makes distance ties deterministic, which the
		// byte-level oracle comparison requires.
		slices.SortFunc(nbs, func(a, b neighborJSON) int {
			switch {
			case a.Dist < b.Dist:
				return -1
			case a.Dist > b.Dist:
				return 1
			case a.X < b.X:
				return -1
			case a.X > b.X:
				return 1
			case a.Y < b.Y:
				return -1
			case a.Y > b.Y:
				return 1
			}
			return 0
		})
		body, err := encodeKNNBody(file, canonPt, k, nbs)
		return body, meta, err
	})
}

type joinPairJSON struct {
	Left  string `json:"left"`
	Right string `json:"right"`
}

type joinResponse struct {
	Left  string         `json:"left"`
	Right string         `json:"right"`
	Count int            `json:"count"`
	Pairs []joinPairJSON `json:"pairs"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) error {
	left := r.URL.Query().Get("left")
	right := r.URL.Query().Get("right")
	if left == "" || right == "" {
		return badRequest("missing left/right parameter")
	}
	// Both inputs' epochs key the entry: mutating either side invalidates.
	key := fmt.Sprintf("join|%s@%d|%s@%d", left, s.sys.FS().FileEpoch(left), right, s.sys.FS().FileEpoch(right))
	return s.respond(w, r, key, "application/json", func(ctx context.Context) ([]byte, *execMeta, error) {
		out := s.tempOut(left)
		defer s.sys.FS().Delete(out)
		pairs, rep, err := ops.SpatialJoinIndexedCtx(ctx, s.sys, left, right, out)
		if err != nil {
			return nil, nil, err
		}
		slices.SortFunc(pairs, func(a, b ops.JoinPair) int {
			if c := strings.Compare(a.Left, b.Left); c != 0 {
				return c
			}
			return strings.Compare(a.Right, b.Right)
		})
		resp := joinResponse{Left: left, Right: right, Count: len(pairs), Pairs: make([]joinPairJSON, len(pairs))}
		for i, p := range pairs {
			resp.Pairs[i] = joinPairJSON{Left: p.Left, Right: p.Right}
		}
		body, err := marshalBody(resp)
		return body, &execMeta{engine: PlannerMapReduce, rep: rep}, err
	})
}

func (s *Server) handlePlot(w http.ResponseWriter, r *http.Request) error {
	file := r.URL.Query().Get("file")
	if file == "" {
		return badRequest("missing file parameter")
	}
	width, height := 256, 256
	if v := r.URL.Query().Get("width"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return badRequest("bad width %q", v)
		}
		width = n
	}
	if v := r.URL.Query().Get("height"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return badRequest("bad height %q", v)
		}
		height = n
	}
	key := fmt.Sprintf("plot|%s@%d|%dx%d", file, s.sys.FS().FileEpoch(file), width, height)
	return s.respond(w, r, key, "image/png", func(ctx context.Context) ([]byte, *execMeta, error) {
		out := s.tempOut(file)
		defer s.sys.FS().Delete(out)
		img, rep, err := ops.PlotCtx(ctx, s.sys, file, ops.PlotConfig{Width: width, Height: height, Out: out})
		if err != nil {
			return nil, nil, err
		}
		body, err := ops.EncodePlotPNG(img)
		return body, &execMeta{engine: PlannerMapReduce, rep: rep}, err
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// refreshGauges recomputes the point-in-time gauges (admission, slots, Go
// runtime, exact latency quantiles) immediately before a metrics snapshot
// is taken.
func (s *Server) refreshGauges() {
	inFlight, queued := s.sys.Cluster().AdmissionStats()
	pool := s.sys.Cluster().Slots()
	s.reg.SetGauge("serve.jobs.inflight", float64(inFlight))
	s.reg.SetGauge("serve.jobs.queued", float64(queued))
	var pinned int
	var pinnedBytes int64
	if s.mt != nil {
		pinned, pinnedBytes = s.mt.Stats()
	}
	s.reg.SetGauge("serve.memtier.pinned_partitions", float64(pinned))
	s.reg.SetGauge("serve.memtier.bytes", float64(pinnedBytes))
	s.reg.SetGauge("cluster.slots.cap", float64(pool.Cap()))
	s.reg.SetGauge("cluster.slots.inuse", float64(pool.InUse()))
	s.reg.SetGauge("cluster.slots.highwater", float64(pool.HighWater()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.SetGauge("go.goroutines", float64(runtime.NumGoroutine()))
	s.reg.SetGauge("go.heap.alloc_bytes", float64(ms.HeapAlloc))
	s.reg.SetGauge("go.gc.cycles", float64(ms.NumGC))
	s.reg.SetGauge("go.gc.pause_total_us", float64(ms.PauseTotalNs)/1e3)

	// Exact per-endpoint quantiles over the bounded latency window; the
	// quantile is a label, never part of the family name.
	s.winMu.Lock()
	wins := make(map[string]*obs.SampleWindow, len(s.wins))
	for name, win := range s.wins {
		wins[name] = win
	}
	s.winMu.Unlock()
	for name, win := range wins {
		qs := win.Quantiles(0.5, 0.95, 0.99)
		for i, q := range []string{"0.5", "0.95", "0.99"} {
			s.reg.SetGauge(obs.Name("serve.latency_quantile_us", "endpoint", name, "quantile", q), qs[i])
		}
	}
}

// hotSnapshot renders the hot-partition telemetry as a transient metrics
// snapshot, so it rides the same Prometheus exposition path as the
// registries.
func (s *Server) hotSnapshot() *obs.Snapshot {
	snap := &obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistogramSnapshot{},
	}
	for _, fh := range s.sys.Hotness().Report() {
		snap.Gauges[obs.Name("ops.file.skew", "file", fh.File)] = fh.Skew
		for _, ph := range fh.Partitions {
			l := []string{"file", fh.File, "partition", ph.Partition}
			snap.Counters[obs.Name("ops.partition.scans", l...)] = ph.Scans
			snap.Counters[obs.Name("ops.partition.prunes", l...)] = ph.Prunes
			snap.Counters[obs.Name("ops.partition.records", l...)] = ph.Records
			snap.Counters[obs.Name("ops.partition.matches", l...)] = ph.Matches
			snap.Gauges[obs.Name("ops.partition.selectivity", l...)] = ph.Selectivity()
		}
	}
	return snap
}

// handleMetrics serves the Prometheus text exposition of the serving
// registry, the system registry and the hot-partition telemetry. The
// former JSON dump lives on /metrics.json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	s.refreshGauges()
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, s.reg.Snapshot(), s.sys.Metrics().Snapshot(), s.hotSnapshot()); err != nil {
		return err
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
	return nil
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) error {
	s.refreshGauges()
	body, err := json.Marshal(struct {
		Serve  *obs.Snapshot `json:"serve"`
		System *obs.Snapshot `json:"system"`
	}{Serve: s.reg.Snapshot(), System: s.sys.Metrics().Snapshot()})
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
	return nil
}

// handleTrace returns the span tree of a recent request by trace ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	tr := s.ring.Get(id)
	if tr == nil {
		return &notFoundError{msg: fmt.Sprintf("trace %q not found (evicted or never issued)", id)}
	}
	body, err := json.Marshal(tr.Snapshot())
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
	return nil
}

// handlePartitions returns the hot-partition skew report: per file, the
// partitions hottest-first with scan/prune counts and scan selectivity.
func (s *Server) handlePartitions(w http.ResponseWriter, r *http.Request) error {
	body, err := json.Marshal(struct {
		Files []sindex.FileHeat `json:"files"`
	}{Files: s.sys.Hotness().Report()})
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
	return nil
}

func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
