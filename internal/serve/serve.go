package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/ops"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheSize bounds the result cache in entries (default 256; negative
	// disables caching, zero means default).
	CacheSize int
	// MaxInFlight is the number of jobs the cluster runs concurrently
	// (default 4); further admitted jobs wait in the queue.
	MaxInFlight int
	// QueueDepth bounds the admission queue (default 64); beyond it
	// requests are rejected with 429.
	QueueDepth int
	// JobDeadline bounds each admitted job's run time (0 = none).
	JobDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Server is the HTTP query front end. Every query endpoint runs as a
// MapReduce job under the cluster's admission controller and shared slot
// pool, so any mix of concurrent HTTP clients is bounded by the modelled
// cluster capacity, with overload surfacing as 429 instead of collapse.
type Server struct {
	sys      *core.System
	cfg      Config
	cache    *Cache
	reg      *obs.Registry
	hs       *http.Server
	reqID    atomic.Int64
	draining atomic.Bool
}

// New creates a Server over a running System and installs the admission
// controller on its cluster.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		sys:   sys,
		cfg:   cfg,
		cache: NewCache(cfg.CacheSize, reg),
		reg:   reg,
	}
	sys.Cluster().SetAdmission(mapreduce.AdmissionConfig{
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		JobDeadline: cfg.JobDeadline,
	})
	return s
}

// Metrics returns the serving-layer metrics registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Cache returns the result cache (tests probe its state directly).
func (s *Server) ResultCache() *Cache { return s.cache }

// Handler returns the server's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rangequery", s.handle("range", s.handleRange))
	mux.HandleFunc("/knn", s.handle("knn", s.handleKNN))
	mux.HandleFunc("/join", s.handle("join", s.handleJoin))
	mux.HandleFunc("/plot", s.handle("plot", s.handlePlot))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handle("metrics", s.handleMetrics))
	return mux
}

// ListenAndServe serves on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown. Like http.Server.Serve it returns
// http.ErrServerClosed after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.hs = &http.Server{Handler: s.Handler()}
	return s.hs.Serve(ln)
}

// Shutdown drains gracefully: stop admitting (healthz flips to 503 for
// load balancers), let in-flight HTTP handlers finish (each may span
// several jobs, e.g. the two kNN rounds), then drain the cluster's
// admission queue and stamp a final metrics snapshot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	if derr := s.sys.Cluster().Drain(ctx); err == nil {
		err = derr
	}
	s.reg.SetGauge("serve.draining", 1)
	return err
}

// handle wraps an endpoint with request counting, latency observation and
// error mapping.
func (s *Server) handle(name string, fn func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.reg.Inc("serve.req."+name, 1)
		err := fn(w, r)
		s.reg.Observe("serve.latency_us."+name, float64(time.Since(start).Microseconds()))
		if err != nil {
			s.reg.Inc("serve.err."+name, 1)
			writeError(w, err)
		}
	}
}

// badRequestError marks client errors (400).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var br *badRequestError
	switch {
	case errors.As(err, &br):
		code = http.StatusBadRequest
	case errors.Is(err, mapreduce.ErrOverloaded):
		code = http.StatusTooManyRequests
	case errors.Is(err, mapreduce.ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, dfs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// Fixed field order keeps even error bodies deterministic.
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
	w.Write(append(body, '\n'))
}

// respond serves from the cache when possible, otherwise builds the body,
// caches it and writes it. Cache state travels in the X-Cache header so
// hit and miss bodies stay byte-identical (the concurrency suite compares
// bodies against serial oracles).
func (s *Server) respond(w http.ResponseWriter, key, contentType string, build func() ([]byte, error)) error {
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return nil
	}
	body, err := build()
	if err != nil {
		return err
	}
	s.cache.Put(key, body)
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Cache", "miss")
	w.Write(body)
	return nil
}

// tempOut allocates a unique DFS output name for one request, so
// concurrent queries over the same file never clobber each other's job
// output (the ops default names are fixed per input file).
func (s *Server) tempOut(file string) string {
	return fmt.Sprintf("%s.serve.%d", file, s.reqID.Add(1))
}

func fnum(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// canonicalRect renders a rect as its normalized min-corner/max-corner
// form, so every corner ordering of the same rectangle maps to the same
// cache key.
func canonicalRect(r geom.Rect) string {
	return fnum(r.MinX) + "," + fnum(r.MinY) + "," + fnum(r.MaxX) + "," + fnum(r.MaxY)
}

// parseRect parses "x1,y1,x2,y2" accepting any pair of opposite corners.
func parseRect(s string) (geom.Rect, error) {
	var v [4]float64
	i := 0
	for _, part := range splitN(s, ',', 4) {
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return geom.Rect{}, badRequest("bad rect coordinate %q", part)
		}
		v[i] = f
		i++
	}
	if i != 4 {
		return geom.Rect{}, badRequest("rect wants x1,y1,x2,y2, got %q", s)
	}
	return geom.Rect{
		MinX: math.Min(v[0], v[2]),
		MinY: math.Min(v[1], v[3]),
		MaxX: math.Max(v[0], v[2]),
		MaxY: math.Max(v[1], v[3]),
	}, nil
}

func parsePoint(s string) (geom.Point, error) {
	parts := splitN(s, ',', 2)
	if len(parts) != 2 {
		return geom.Point{}, badRequest("point wants x,y, got %q", s)
	}
	x, err1 := strconv.ParseFloat(parts[0], 64)
	y, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil {
		return geom.Point{}, badRequest("bad point %q", s)
	}
	return geom.Point{X: x, Y: y}, nil
}

func splitN(s string, sep byte, max int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < max-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// --- endpoints ---

type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type rangeResponse struct {
	File   string      `json:"file"`
	Rect   string      `json:"rect"`
	Count  int         `json:"count"`
	Points []pointJSON `json:"points"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) error {
	file := r.URL.Query().Get("file")
	if file == "" {
		return badRequest("missing file parameter")
	}
	rect, err := parseRect(r.URL.Query().Get("rect"))
	if err != nil {
		return err
	}
	canon := canonicalRect(rect)
	key := fmt.Sprintf("range|%s@%d|%s", file, s.sys.FS().FileEpoch(file), canon)
	return s.respond(w, key, "application/json", func() ([]byte, error) {
		out := s.tempOut(file)
		defer s.sys.FS().Delete(out)
		pts, _, err := ops.RangeQueryPointsTo(s.sys, file, rect, out)
		if err != nil {
			return nil, err
		}
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].X != pts[j].X {
				return pts[i].X < pts[j].X
			}
			return pts[i].Y < pts[j].Y
		})
		resp := rangeResponse{File: file, Rect: canon, Count: len(pts), Points: make([]pointJSON, len(pts))}
		for i, p := range pts {
			resp.Points[i] = pointJSON{X: p.X, Y: p.Y}
		}
		return marshalBody(resp)
	})
}

type neighborJSON struct {
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Dist float64 `json:"dist"`
}

type knnResponse struct {
	File      string         `json:"file"`
	Point     string         `json:"point"`
	K         int            `json:"k"`
	Count     int            `json:"count"`
	Neighbors []neighborJSON `json:"neighbors"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) error {
	file := r.URL.Query().Get("file")
	if file == "" {
		return badRequest("missing file parameter")
	}
	q, err := parsePoint(r.URL.Query().Get("point"))
	if err != nil {
		return err
	}
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k < 1 {
		return badRequest("k wants a positive integer, got %q", r.URL.Query().Get("k"))
	}
	canonPt := fnum(q.X) + "," + fnum(q.Y)
	key := fmt.Sprintf("knn|%s@%d|%s|%d", file, s.sys.FS().FileEpoch(file), canonPt, k)
	return s.respond(w, key, "application/json", func() ([]byte, error) {
		prefix := s.tempOut(file)
		defer func() {
			s.sys.FS().Delete(prefix + ".r1")
			s.sys.FS().Delete(prefix + ".r2")
		}()
		pts, _, err := ops.KNNTo(s.sys, file, q, k, prefix)
		if err != nil {
			return nil, err
		}
		nbs := make([]neighborJSON, len(pts))
		for i, p := range pts {
			nbs[i] = neighborJSON{X: p.X, Y: p.Y, Dist: math.Hypot(p.X-q.X, p.Y-q.Y)}
		}
		// (dist, x, y) order makes distance ties deterministic, which the
		// byte-level oracle comparison requires.
		sort.Slice(nbs, func(i, j int) bool {
			if nbs[i].Dist != nbs[j].Dist {
				return nbs[i].Dist < nbs[j].Dist
			}
			if nbs[i].X != nbs[j].X {
				return nbs[i].X < nbs[j].X
			}
			return nbs[i].Y < nbs[j].Y
		})
		resp := knnResponse{File: file, Point: canonPt, K: k, Count: len(nbs), Neighbors: nbs}
		return marshalBody(resp)
	})
}

type joinPairJSON struct {
	Left  string `json:"left"`
	Right string `json:"right"`
}

type joinResponse struct {
	Left  string         `json:"left"`
	Right string         `json:"right"`
	Count int            `json:"count"`
	Pairs []joinPairJSON `json:"pairs"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) error {
	left := r.URL.Query().Get("left")
	right := r.URL.Query().Get("right")
	if left == "" || right == "" {
		return badRequest("missing left/right parameter")
	}
	// Both inputs' epochs key the entry: mutating either side invalidates.
	key := fmt.Sprintf("join|%s@%d|%s@%d", left, s.sys.FS().FileEpoch(left), right, s.sys.FS().FileEpoch(right))
	return s.respond(w, key, "application/json", func() ([]byte, error) {
		out := s.tempOut(left)
		defer s.sys.FS().Delete(out)
		pairs, _, err := ops.SpatialJoinIndexedTo(s.sys, left, right, out)
		if err != nil {
			return nil, err
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Left != pairs[j].Left {
				return pairs[i].Left < pairs[j].Left
			}
			return pairs[i].Right < pairs[j].Right
		})
		resp := joinResponse{Left: left, Right: right, Count: len(pairs), Pairs: make([]joinPairJSON, len(pairs))}
		for i, p := range pairs {
			resp.Pairs[i] = joinPairJSON{Left: p.Left, Right: p.Right}
		}
		return marshalBody(resp)
	})
}

func (s *Server) handlePlot(w http.ResponseWriter, r *http.Request) error {
	file := r.URL.Query().Get("file")
	if file == "" {
		return badRequest("missing file parameter")
	}
	width, height := 256, 256
	if v := r.URL.Query().Get("width"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return badRequest("bad width %q", v)
		}
		width = n
	}
	if v := r.URL.Query().Get("height"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return badRequest("bad height %q", v)
		}
		height = n
	}
	key := fmt.Sprintf("plot|%s@%d|%dx%d", file, s.sys.FS().FileEpoch(file), width, height)
	return s.respond(w, key, "image/png", func() ([]byte, error) {
		out := s.tempOut(file)
		defer s.sys.FS().Delete(out)
		img, _, err := ops.Plot(s.sys, file, ops.PlotConfig{Width: width, Height: height, Out: out})
		if err != nil {
			return nil, err
		}
		return ops.EncodePlotPNG(img)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	inFlight, queued := s.sys.Cluster().AdmissionStats()
	pool := s.sys.Cluster().Slots()
	s.reg.SetGauge("serve.jobs.inflight", float64(inFlight))
	s.reg.SetGauge("serve.jobs.queued", float64(queued))
	s.reg.SetGauge("cluster.slots.cap", float64(pool.Cap()))
	s.reg.SetGauge("cluster.slots.inuse", float64(pool.InUse()))
	s.reg.SetGauge("cluster.slots.highwater", float64(pool.HighWater()))
	body, err := json.Marshal(struct {
		Serve  *obs.Snapshot `json:"serve"`
		System *obs.Snapshot `json:"system"`
	}{Serve: s.reg.Snapshot(), System: s.sys.Metrics().Snapshot()})
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
	return nil
}

func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
