package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"slices"
	"testing"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
)

// TestAppendJSONFloatMatchesEncodingJSON: the hand-rolled float encoder
// must agree with encoding/json bit for bit across magnitude regimes —
// the cache stores bodies, so any divergence would surface as a phantom
// miss or a broken oracle comparison.
func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	fixed := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.125, 123.456, -9999.875,
		1e-6, 9.999e-7, 1e-7, -1e-7, 1e20, 1e21, -2.5e21, 1e300, -1e-300,
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	rng := rand.New(rand.NewSource(42))
	vals := fixed
	for i := 0; i < 10_000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		vals = append(vals, f)
	}
	// Lattice-quantized values like the generators produce.
	for i := 0; i < 1000; i++ {
		vals = append(vals, math.Round(rng.Float64()*8_000_000)/8)
	}
	for _, f := range vals {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendJSONFloat(nil, f)
		if err != nil {
			t.Fatalf("%v (bits %x): %v", f, math.Float64bits(f), err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("float %v (bits %x): encoder %q, encoding/json %q",
				f, math.Float64bits(f), got, want)
		}
	}
	if _, err := appendJSONFloat(nil, math.Inf(1)); err == nil {
		t.Error("encoding +Inf should error like encoding/json")
	}
	if _, err := appendJSONFloat(nil, math.NaN()); err == nil {
		t.Error("encoding NaN should error like encoding/json")
	}
}

// TestEncodeBodiesMatchEncodingJSON: whole range and kNN bodies from the
// fast encoders must be byte-identical to marshalBody over the mirror
// structs, including the empty-result and escaping-fallback cases.
func TestEncodeBodiesMatchEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPts := func(n int) []geom.Point {
		out := make([]geom.Point, n)
		for i := range out {
			out[i] = geom.Pt(math.Round(rng.Float64()*8000)/8, rng.NormFloat64()*1e5)
		}
		return out
	}
	files := []string{"pts", "p-1_2.bin", "", "a<b&c>d", `quo"te\slash`, "uni\u00e9", "ctl\n"}
	for _, file := range files {
		for _, n := range []int{0, 1, 7, 300} {
			pts := randPts(n)
			rect := canonicalRect(geom.NewRect(0, 0, 1000, 1000))
			want := rangeResponse{File: file, Rect: rect, Count: len(pts), Points: make([]pointJSON, len(pts))}
			for i, p := range pts {
				want.Points[i] = pointJSON{X: p.X, Y: p.Y}
			}
			wantBody, err := marshalBody(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := encodeRangeBody(file, rect, pts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantBody) {
				t.Fatalf("range body file=%q n=%d:\n got %q\nwant %q", file, n, got, wantBody)
			}

			nbs := make([]neighborJSON, len(pts))
			for i, p := range pts {
				nbs[i] = neighborJSON{X: p.X, Y: p.Y, Dist: math.Hypot(p.X, p.Y)}
			}
			wantK, err := marshalBody(knnResponse{File: file, Point: "1,2", K: n + 1, Count: len(nbs), Neighbors: nbs})
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := encodeKNNBody(file, "1,2", n+1, nbs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotK, wantK) {
				t.Fatalf("knn body file=%q n=%d:\n got %q\nwant %q", file, n, gotK, wantK)
			}
		}
	}
}

// TestEncodeRangeBodyMatchesMergesIdentically pins the fragment-merge
// fast path to the sort-then-encode slow path over real pinned
// partitions: for every query, merging the partitions' pre-encoded
// sorted streams must produce the same bytes as materializing, globally
// sorting and float-formatting the points.
func TestEncodeRangeBodyMatchesMergesIdentically(t *testing.T) {
	sys := newServeSystem(t)
	f, err := sys.Open("pts1")
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*ops.LocalPartition, 0, len(f.Splits()))
	for _, sp := range f.Splits() {
		part, err := ops.PinSplit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if part.Frag == nil {
			t.Fatalf("partition %s: no fragments built", part.Key)
		}
		if !slices.IsSortedFunc(part.Pts, func(a, b geom.Point) int {
			switch {
			case a.X < b.X:
				return -1
			case a.X > b.X:
				return 1
			case a.Y < b.Y:
				return -1
			case a.Y > b.Y:
				return 1
			}
			return 0
		}) {
			t.Fatalf("partition %s: pinned points not canonically sorted", part.Key)
		}
		parts = append(parts, part)
	}
	rng := rand.New(rand.NewSource(5))
	rects := []geom.Rect{
		geom.NewRect(0, 0, 10_000, 10_000), // everything: full merge
		geom.NewRect(0, 0, 0, 0),           // nothing
	}
	for i := 0; i < 30; i++ {
		x, y := rng.Float64()*9000, rng.Float64()*9000
		rects = append(rects, geom.NewRect(x, y, x+rng.Float64()*4000, y+rng.Float64()*4000))
	}
	for _, q := range rects {
		var matches []ops.LocalMatch
		var pts []geom.Point
		for _, part := range parts {
			ids := part.Tree.Search(q, nil)
			slices.Sort(ids)
			if len(ids) == 0 {
				continue
			}
			matches = append(matches, ops.LocalMatch{Part: part, IDs: ids})
			for _, id := range ids {
				pts = append(pts, part.Pts[id])
			}
		}
		canon := canonicalRect(q)
		got, ok := encodeRangeBodyMatches("pts1", canon, matches)
		if !ok {
			t.Fatalf("rect %s: merge path unexpectedly refused", canon)
		}
		geom.SortPointsXY(pts)
		want, err := encodeRangeBody("pts1", canon, pts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rect %s: merged body diverges from sort-then-encode\n got %.200q\nwant %.200q", canon, got, want)
		}
	}
	// Non-plain strings must route to the fallback.
	if _, ok := encodeRangeBodyMatches("a<b", "0,0,1,1", nil); ok {
		t.Error("merge path accepted a file name that needs JSON escaping")
	}
}
