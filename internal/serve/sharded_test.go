// Cross-worker epoch correctness for the sharded engine: partitions are
// pinned in per-worker memory tiers, so a DFS rewrite on the master must
// invalidate worker-held pins — eagerly via the heartbeat epoch feed, and
// as a hard backstop via the epoch key every exec call carries. External
// test package: these tests drive real workers, and internal/worker
// imports internal/serve for the tier.
package serve_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/worker"
)

// startServeWorkers attaches a master (replication 2, fast heartbeats)
// and n serve-capable goroutine workers to sys.
func startServeWorkers(t *testing.T, sys *core.System, n int) ([]*worker.Worker, func()) {
	t.Helper()
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 5 * time.Millisecond,
		Lease:          100 * time.Millisecond,
		Metrics:        sys.Metrics(),
		Replication:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]*worker.Worker, 0, n)
	stop := func() {
		for _, w := range workers {
			w.Stop()
		}
		m.Stop()
	}
	for i := 0; i < n; i++ {
		w, err := worker.Start(worker.Config{Master: m.Addr(), Dir: t.TempDir(), Tasks: 2, FakePID: 9200 + i, ServeTasks: true})
		if err != nil {
			stop()
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.LiveWorkers() < n {
		if time.Now().After(deadline) {
			stop()
			t.Fatal("serve workers never registered")
		}
		time.Sleep(time.Millisecond)
	}
	return workers, stop
}

func tierPartitions(workers []*worker.Worker) int {
	total := 0
	for _, w := range workers {
		parts, _ := w.ServeTierStats()
		total += parts
	}
	return total
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestShardedEpochInvalidation: a rewrite of a file whose partitions are
// pinned on workers must (a) eagerly empty the worker tiers through the
// heartbeat epoch feed — no query needed — and (b) never let a stale
// worker pin answer for the new epoch: the first post-rewrite sharded
// query sees the new point.
func TestShardedEpochInvalidation(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 2048, Workers: 4, Seed: 7})
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Clustered, 800, area, 5)
	if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	workers, stop := startServeWorkers(t, sys, 2)
	defer stop()

	srv := serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerSharded})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const query = "/rangequery?file=pts&rect=0,0,1000,1000"
	before := getBody(t, ts.URL+query)
	if strings.Contains(before, `"x":123.5,"y":456.5`) {
		t.Fatal("sentinel point present before the rewrite")
	}
	if tierPartitions(workers) == 0 {
		t.Fatal("sharded query pinned nothing on the workers")
	}

	// Rewrite with one extra point: a new epoch. The heartbeat feed must
	// drain every worker pin of the old epoch without any further query.
	pts2 := append(append([]geom.Point{}, pts...), geom.Pt(123.5, 456.5))
	if _, err := sys.LoadPoints("pts", pts2, sindex.STR); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tierPartitions(workers) != 0 {
		if time.Now().After(deadline) {
			parts := tierPartitions(workers)
			t.Fatalf("%d stale worker pins survived the epoch bump", parts)
		}
		time.Sleep(time.Millisecond)
	}

	after := getBody(t, ts.URL+query)
	if !strings.Contains(after, `"x":123.5,"y":456.5`) {
		t.Fatalf("post-rewrite sharded response misses the new point: %.300q", after)
	}
}

// TestCacheKeyEngineless pins the result-cache contract: the key is
// (operation, file@epoch, canonical query) — the engine never enters it.
// All engines produce byte-identical bodies, so a forced-engine request
// must safely hit a body another engine cached: X-Engine reports "cache",
// the bytes are the first build's, and ?explain=1 splices its report
// after the cache so it cannot poison the shared entry.
func TestCacheKeyEngineless(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 2048, Workers: 4, Seed: 3})
	pts := datagen.Points(datagen.Clustered, 500, geom.NewRect(0, 0, 1000, 1000), 13)
	if _, err := sys.LoadPoints("pts", pts, sindex.STRPlus); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sys, serve.Config{CacheSize: 64, Planner: serve.PlannerAuto})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(q string) (string, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", q, resp.StatusCode, body)
		}
		return string(body), resp.Header
	}

	const query = "/rangequery?file=pts&rect=100,100,700,700"
	first, h := get(query + "&engine=mapreduce")
	if h.Get("X-Cache") != "miss" || h.Get("X-Engine") != "mapreduce" {
		t.Fatalf("first request: X-Cache=%q X-Engine=%q, want miss/mapreduce", h.Get("X-Cache"), h.Get("X-Engine"))
	}
	for _, engine := range []string{"local", "sharded", "auto"} {
		body, h := get(query + "&engine=" + engine)
		if h.Get("X-Cache") != "hit" {
			t.Fatalf("engine=%s: X-Cache=%q, want hit — the engine leaked into the cache key", engine, h.Get("X-Cache"))
		}
		if h.Get("X-Engine") != "cache" {
			t.Fatalf("engine=%s: X-Engine=%q, want cache", engine, h.Get("X-Engine"))
		}
		if body != first {
			t.Fatalf("engine=%s: cached body diverged from the mapreduce build", engine)
		}
	}

	// Explain splices post-cache: the explained hit is the cached body
	// with `,"explain":{...}}` grafted onto its final brace — the shared
	// entry itself stays plain.
	explained, h := get(query + "&engine=sharded&explain=1")
	if h.Get("X-Cache") != "hit" {
		t.Fatalf("explained request: X-Cache=%q, want hit", h.Get("X-Cache"))
	}
	prefix := strings.TrimSuffix(strings.TrimSuffix(first, "\n"), "}") + `,"explain":`
	if !strings.HasPrefix(explained, prefix) || !strings.HasSuffix(strings.TrimSuffix(explained, "\n"), "}") {
		t.Fatalf("explain was not spliced onto the cached body:\n%.300q", explained)
	}
	plain, _ := get(query)
	if plain != first {
		t.Fatal("the explained hit poisoned the cached entry")
	}
}

// TestShardedEpochInterleaving races waves of concurrent sharded queries
// — scattering to worker tiers — against serial epoch bumps between
// waves. Every response of every wave must match that epoch's
// MapReduce-engine oracle byte for byte; under -race this exercises the
// pin/exec/heartbeat-drop interleavings across process-simulated workers.
func TestShardedEpochInterleaving(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 1024, Workers: 4, Seed: 9})
	area := geom.NewRect(0, 0, 1000, 1000)
	base := datagen.Points(datagen.Clustered, 600, area, 31)
	load := func(extra int) {
		pts := append([]geom.Point{}, base...)
		for i := 0; i < extra; i++ {
			pts = append(pts, geom.Pt(float64(i)+0.25, float64(i)+0.75))
		}
		if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
			t.Fatal(err)
		}
	}
	load(0)
	_, stop := startServeWorkers(t, sys, 2)
	defer stop()

	srv := serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerSharded, MaxInFlight: 4, QueueDepth: 1024, JobDeadline: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{
		"/rangequery?file=pts&rect=0,0,400,400",
		"/rangequery?file=pts&rect=600,600,1000,1000",
		"/rangequery?file=pts&rect=0,600,400,1000",
		"/knn?file=pts&point=500,500&k=7",
	}
	for wave := 0; wave < 3; wave++ {
		// Per-epoch oracle: tier off, forced MapReduce, same system. With
		// the tier off the oracle installs no epoch hook, so it cannot
		// steal the sharded server's invalidation path.
		ots := httptest.NewServer(serve.New(sys, serve.Config{CacheSize: -1, MemTierBytes: -1, Planner: serve.PlannerMapReduce, MaxInFlight: 4, QueueDepth: 1024, JobDeadline: 30 * time.Second}).Handler())
		oracle := map[string]string{}
		for _, q := range queries {
			oracle[q] = getBody(t, ots.URL+q)
		}
		ots.Close()

		const repeats = 4
		var wg sync.WaitGroup
		errs := make(chan error, len(queries)*repeats)
		for r := 0; r < repeats; r++ {
			for _, q := range queries {
				wg.Add(1)
				go func(q string) {
					defer wg.Done()
					resp, err := http.Get(ts.URL + q)
					if err != nil {
						errs <- err
						return
					}
					defer resp.Body.Close()
					body, err := io.ReadAll(resp.Body)
					if err != nil {
						errs <- err
						return
					}
					if string(body) != oracle[q] {
						errs <- fmt.Errorf("wave: %s diverged from oracle", q)
					}
				}(q)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
		load(wave + 1)
	}
}
