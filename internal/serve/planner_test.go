package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
)

// TestPlannerForcedModes: the three planner modes must return
// byte-identical bodies while routing to the engines they promise —
// X-Engine reports "local" under forced local, "mapreduce" under forced
// MapReduce, and auto picks local for selective queries and MapReduce for
// full scans.
func TestPlannerForcedModes(t *testing.T) {
	sys := newServeSystem(t)
	servers := map[string]*httptest.Server{}
	for _, mode := range []string{PlannerAuto, PlannerLocal, PlannerMapReduce} {
		srv := New(sys, Config{CacheSize: -1, Planner: mode})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		servers[mode] = ts
	}

	queries := []struct {
		path       string
		autoEngine string // expected X-Engine under the auto planner
	}{
		{"/rangequery?file=pts1&rect=2000,2000,3500,3500", PlannerLocal},
		{"/rangequery?file=pts1&rect=0,0,10000,10000", PlannerMapReduce},
		{"/knn?file=pts1&point=5000,5000&k=10", PlannerLocal},
		{"/knn?file=pts2&point=100,9900&k=3", PlannerLocal},
	}
	for _, q := range queries {
		bodies := map[string][]byte{}
		engines := map[string]string{}
		for mode, ts := range servers {
			resp, err := ts.Client().Get(ts.URL + q.path)
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s mode %s: status %d: %s", q.path, mode, resp.StatusCode, body)
			}
			bodies[mode] = body
			engines[mode] = resp.Header.Get("X-Engine")
		}
		if !bytes.Equal(bodies[PlannerLocal], bodies[PlannerMapReduce]) || !bytes.Equal(bodies[PlannerAuto], bodies[PlannerMapReduce]) {
			t.Fatalf("%s: bodies differ across planner modes", q.path)
		}
		if engines[PlannerLocal] != PlannerLocal {
			t.Errorf("%s: forced local served by %q", q.path, engines[PlannerLocal])
		}
		if engines[PlannerMapReduce] != PlannerMapReduce {
			t.Errorf("%s: forced mapreduce served by %q", q.path, engines[PlannerMapReduce])
		}
		if engines[PlannerAuto] != q.autoEngine {
			t.Errorf("%s: auto planner served by %q, want %q", q.path, engines[PlannerAuto], q.autoEngine)
		}
	}
}

// TestPlannerHeapFallsBack: heap files have no global index, so even a
// forced-local planner must route them to MapReduce (and still answer
// correctly).
func TestPlannerHeapFallsBack(t *testing.T) {
	sys := newServeSystem(t)
	if err := sys.LoadPointsHeap("heap", datagen.Points(datagen.Uniform, 500, geom.NewRect(0, 0, 100, 100), 3)); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, Config{CacheSize: -1, Planner: PlannerLocal})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/rangequery?file=heap&rect=10,10,40,40")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if eng := resp.Header.Get("X-Engine"); eng != PlannerMapReduce {
		t.Errorf("heap file served by %q, want mapreduce", eng)
	}
}

// TestSingleflightCoalesces: concurrent identical cold-key requests run
// one build; followers report X-Cache=coalesced with byte-identical
// bodies. The flightGroup is driven directly with a gated build so the
// overlap is deterministic, then an HTTP smoke run checks the wiring.
func TestSingleflightCoalesces(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	builds := 0
	leaderDone := make(chan struct{})
	var followerBody []byte
	var followerCoalesced bool
	followerDone := make(chan struct{})

	go func() {
		defer close(leaderDone)
		body, _, coalesced, err := g.do(t.Context(), "k", func() ([]byte, *execMeta, error) {
			builds++
			close(started)
			<-release
			return []byte("built"), &execMeta{engine: PlannerLocal}, nil
		})
		if err != nil || coalesced || string(body) != "built" {
			t.Errorf("leader: body %q coalesced %v err %v", body, coalesced, err)
		}
	}()
	<-started
	followerEntered := make(chan struct{})
	go func() {
		defer close(followerDone)
		close(followerEntered)
		body, meta, coalesced, err := g.do(t.Context(), "k", func() ([]byte, *execMeta, error) {
			builds++
			return []byte("dup"), nil, nil
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerBody, followerCoalesced = body, coalesced
		if meta == nil || meta.engine != PlannerLocal {
			t.Errorf("follower meta = %+v, want leader's", meta)
		}
	}()
	// The leader's entry is already in the flight map (it registered before
	// closing started), so the follower coalesces as soon as its do() runs
	// the map lookup; the grace sleep lets it get there before release.
	<-followerEntered
	time.Sleep(50 * time.Millisecond)
	close(release)
	<-leaderDone
	<-followerDone
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (coalesced)", builds)
	}
	if !followerCoalesced || string(followerBody) != "built" {
		t.Fatalf("follower: coalesced=%v body=%q", followerCoalesced, followerBody)
	}

	// HTTP smoke: 16 identical requests against an uncached server; every
	// body matches, and leaders + followers account for all 16.
	sys := newServeSystem(t)
	srv := New(sys, Config{CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	const n = 16
	var wg sync.WaitGroup
	states := make([]string, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, cache := fetch(t, ts.Client(), ts.URL+"/rangequery?file=pts1&rect=1000,1000,4000,4000")
			if code == http.StatusOK {
				states[i], bodies[i] = cache, body
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if states[i] == "" {
			t.Fatalf("request %d failed", i)
		}
		if states[i] != "miss" && states[i] != "coalesced" {
			t.Fatalf("request %d: X-Cache %q, want miss or coalesced", i, states[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
