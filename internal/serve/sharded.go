package serve

import (
	"net/rpc"
	"sync"
	"time"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// The sharded engine: the master stays a thin router. It prunes candidate
// partitions with the same geometry (Split.Cover) and bitmap filters the
// local engine uses, then scatters each surviving partition to the worker
// holding its replica (rendezvous-first), falling back down a ladder —
// remaining replica holders, then pin-and-execute on the master — when a
// holder is lost mid-query. Workers answer from per-worker memory tiers
// keyed by (file, epoch, partition); the gather merges the sorted
// fragments with the canonical comparators, so the body is byte-identical
// to the local and MapReduce engines. kNN runs the existing two-round
// protocol with per-worker candidate sets and the (dist, record)
// tie-break; only the per-partition search moves to the shards.

// shardStats is one sharded query's scatter/gather accounting, surfaced
// through ?explain=1 and the serve.shard.* metric families.
type shardStats struct {
	fanout        int // partitions scattered (both kNN rounds summed)
	remote        int // fragments answered by a worker executor
	localExec     int // fragments executed on the master
	fallbackPeer  int // remote answers that skipped >=1 dead holder
	fallbackLocal int // local executions forced by holder loss
}

// shardOutcome describes how one partition's fragment was obtained.
type shardOutcome struct {
	remote   bool
	fellBack bool // at least one holder failed before the answer
}

func (sh *shardStats) tally(o shardOutcome) {
	if o.remote {
		sh.remote++
		if o.fellBack {
			sh.fallbackPeer++
		}
	} else {
		sh.localExec++
		if o.fellBack {
			sh.fallbackLocal++
		}
	}
}

// shardTarget is one candidate partition's routing: its fallback ladder
// of holder addresses (placement order) and the replica-aware descriptor
// shipped with the exec call. Empty holders means master-local execution
// (no master runtime, data plane off, or no serve-capable holders).
type shardTarget struct {
	holders []string
	meta    *mapreduce.WireSplitMeta
}

// masterForServe resolves the cluster's master runtime (nil when serving
// in process) and keeps the heartbeat epoch feed installed so serving
// workers drop pins that DFS rewrites obsoleted.
func (s *Server) masterForServe() *mapreduce.Master {
	m := s.sys.Cluster().Master()
	if m != nil {
		m.SetEpochSource(s.sys.FS().Epochs)
	}
	return m
}

// scatterTargets plans the routing for the candidate partitions: replicas
// are ensured (idempotent), holders resolved in placement order, and the
// serve-phase chaos hook consulted sequentially per target — before any
// scatter goroutine launches — so kill decisions replay deterministically
// under a seeded fault plan.
func (s *Server) scatterTargets(m *mapreduce.Master, cand []*mapreduce.Split) []shardTarget {
	out := make([]shardTarget, len(cand))
	if m == nil {
		return out
	}
	m.EnsureServeReplicas(cand)
	for i, sp := range cand {
		holders := m.ServeHolders(sp)
		if len(holders) > 0 {
			m.MaybeKillServeTarget(i, holders[0])
		}
		out[i] = shardTarget{holders: holders, meta: m.ServeMeta(sp)}
	}
	return out
}

// shardClient returns a cached RPC client for a worker's shard address.
func (s *Server) shardClient(addr string) (*rpc.Client, error) {
	s.shardMu.Lock()
	if c, ok := s.shardClients[addr]; ok {
		s.shardMu.Unlock()
		return c, nil
	}
	s.shardMu.Unlock()
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.shardMu.Lock()
	if prev, ok := s.shardClients[addr]; ok {
		s.shardMu.Unlock()
		c.Close()
		return prev, nil
	}
	if s.shardClients == nil {
		s.shardClients = make(map[string]*rpc.Client)
	}
	s.shardClients[addr] = c
	s.shardMu.Unlock()
	return c, nil
}

// dropShardClient discards a cached client after a failed call (the
// worker likely died; the next query redials or falls back).
func (s *Server) dropShardClient(addr string, c *rpc.Client) {
	s.shardMu.Lock()
	if s.shardClients[addr] == c {
		delete(s.shardClients, addr)
	}
	s.shardMu.Unlock()
	c.Close()
}

// callShard performs one exec RPC against a holder through the client
// cache.
func (s *Server) callShard(addr, method string, args, reply any) error {
	c, err := s.shardClient(addr)
	if err != nil {
		return err
	}
	if err := c.Call(method, args, reply); err != nil {
		s.dropShardClient(addr, c)
		return err
	}
	return nil
}

// pinLocal pins one split on the master — the bottom of the fallback
// ladder. With the memory tier on, the pin is cached and deduplicated;
// without it the split is decoded per call.
func (s *Server) pinLocal(file string, epoch int64, sp *mapreduce.Split) (*ops.LocalPartition, error) {
	if s.mt != nil {
		return s.mt.PinPartition(file, epoch, sp)
	}
	return ops.PinSplit(sp)
}

// observeShard publishes one query's scatter accounting.
func (s *Server) observeShard(sh *shardStats) {
	s.reg.Observe("serve.shard.fanout", float64(sh.fanout))
	if sh.remote > 0 {
		s.reg.Inc("serve.shard.exec.remote", int64(sh.remote))
	}
	if sh.localExec > 0 {
		s.reg.Inc("serve.shard.exec.local", int64(sh.localExec))
	}
	if sh.fallbackPeer > 0 {
		s.reg.Inc("serve.shard.fallback.peer", int64(sh.fallbackPeer))
	}
	if sh.fallbackLocal > 0 {
		s.reg.Inc("serve.shard.fallback.local", int64(sh.fallbackLocal))
	}
}

// execRangeShard obtains one partition's range fragment down the ladder:
// each holder in placement order, then master-local execution.
func (s *Server) execRangeShard(tgt shardTarget, file string, epoch int64, sp *mapreduce.Split, rect geom.Rect) ([]geom.Point, int64, shardOutcome, error) {
	var out shardOutcome
	args := mapreduce.ExecRangeArgs{File: file, Epoch: epoch, Meta: tgt.meta, Query: rect}
	for hi, addr := range tgt.holders {
		start := time.Now()
		var reply mapreduce.ExecRangeReply
		if err := s.callShard(addr, mapreduce.ShardService+".ExecRange", args, &reply); err != nil {
			s.reg.Inc("serve.shard.rpc.errors", 1)
			continue
		}
		s.reg.ObserveLabeled("serve.shard.latency_us", float64(time.Since(start).Microseconds()), "path", "remote")
		out.remote, out.fellBack = true, hi > 0
		return reply.Points, reply.Records, out, nil
	}
	start := time.Now()
	part, err := s.pinLocal(file, epoch, sp)
	if err != nil {
		return nil, 0, out, err
	}
	s.reg.ObserveLabeled("serve.shard.latency_us", float64(time.Since(start).Microseconds()), "path", "local")
	out.fellBack = len(tgt.holders) > 0
	return ops.PartitionRangePoints(part, rect), int64(len(part.Recs)), out, nil
}

// execKNNShard obtains one partition's sorted, k-truncated candidate set
// down the same ladder.
func (s *Server) execKNNShard(tgt shardTarget, file string, epoch int64, sp *mapreduce.Split, q geom.Point, k int) ([]ops.KNNCandidate, int64, shardOutcome, error) {
	var out shardOutcome
	args := mapreduce.ExecKNNArgs{File: file, Epoch: epoch, Meta: tgt.meta, Q: q, K: k}
	for hi, addr := range tgt.holders {
		start := time.Now()
		var reply mapreduce.ExecKNNReply
		if err := s.callShard(addr, mapreduce.ShardService+".ExecKNN", args, &reply); err != nil {
			s.reg.Inc("serve.shard.rpc.errors", 1)
			continue
		}
		s.reg.ObserveLabeled("serve.shard.latency_us", float64(time.Since(start).Microseconds()), "path", "remote")
		out.remote, out.fellBack = true, hi > 0
		cands := make([]ops.KNNCandidate, len(reply.Cands))
		for i, c := range reply.Cands {
			cands[i] = ops.KNNCandidate{Dist: c.Dist, Rec: c.Rec}
		}
		return cands, reply.Records, out, nil
	}
	start := time.Now()
	part, err := s.pinLocal(file, epoch, sp)
	if err != nil {
		return nil, 0, out, err
	}
	s.reg.ObserveLabeled("serve.shard.latency_us", float64(time.Since(start).Microseconds()), "path", "local")
	out.fellBack = len(tgt.holders) > 0
	return ops.SortKNNCandidates(ops.PartitionKNNCandidates(part, q, k), k), int64(len(part.Recs)), out, nil
}

// shardedRange executes a range query with the sharded engine. ok=false
// (with nil error) means the file is a heap — no partitions to scatter —
// and the caller should fall through to MapReduce.
func (s *Server) shardedRange(file string, epoch int64, rect geom.Rect) ([]geom.Point, *execMeta, bool, error) {
	f, err := s.sys.Open(file)
	if err != nil {
		return nil, nil, false, err
	}
	if f.Index == nil {
		return nil, nil, false, nil
	}
	m := s.masterForServe()
	splits := f.Splits()
	stats := &ops.LocalStats{PartitionsTotal: len(splits), Rounds: 1}
	sh := &shardStats{}
	hot := s.sys.Hotness()
	var sf *sindex.SFilter
	if s.mt != nil {
		sf = s.mt.Source(file, epoch, f.Index).sf
	}
	var cand []*mapreduce.Split
	for _, sp := range splits {
		if !sp.Cover().Intersects(rect) {
			stats.PartitionsPruned++
			hot.RecordPrune(file, sp.Partition)
			continue
		}
		if sf != nil {
			if !sf.MayIntersect(sp.Partition, rect) {
				stats.PartitionsPruned++
				stats.SFilterSkips++
				hot.RecordPrune(file, sp.Partition)
				continue
			}
			stats.SFilterHits++
		}
		cand = append(cand, sp)
	}
	sh.fanout = len(cand)
	targets := s.scatterTargets(m, cand)
	frags := make([][]geom.Point, len(cand))
	recs := make([]int64, len(cand))
	outs := make([]shardOutcome, len(cand))
	errs := make([]error, len(cand))
	var wg sync.WaitGroup
	for i, sp := range cand {
		wg.Add(1)
		go func(i int, sp *mapreduce.Split) {
			defer wg.Done()
			frags[i], recs[i], outs[i], errs[i] = s.execRangeShard(targets[i], file, epoch, sp, rect)
		}(i, sp)
	}
	wg.Wait()
	var pts []geom.Point
	for i, sp := range cand {
		if errs[i] != nil {
			return nil, nil, false, errs[i]
		}
		stats.PartitionsConsulted++
		hot.RecordScan(file, sp.Partition)
		hot.AddRecords(file, sp.Partition, recs[i])
		stats.Matches += len(frags[i])
		hot.AddMatches(file, sp.Partition, int64(len(frags[i])))
		sh.tally(outs[i])
		pts = append(pts, frags[i]...)
	}
	s.observeShard(sh)
	return pts, &execMeta{engine: PlannerSharded, local: stats, shard: sh}, true, nil
}

// shardedKNN executes a kNN query with the sharded engine: the same
// two-round protocol as LocalKNNPoints, with the per-partition search
// scattered to replica holders. ok=false means heap file.
func (s *Server) shardedKNN(file string, epoch int64, q geom.Point, k int) ([]geom.Point, *execMeta, bool, error) {
	f, err := s.sys.Open(file)
	if err != nil {
		return nil, nil, false, err
	}
	if f.Index == nil {
		return nil, nil, false, nil
	}
	m := s.masterForServe()
	splits := f.Splits()
	stats := &ops.LocalStats{}
	sh := &shardStats{}
	hot := s.sys.Hotness()

	// round scatters the kept splits and merges their candidate sets with
	// the canonical comparator, mirroring the local engine's bookkeeping.
	round := func(kept map[*mapreduce.Split]bool) ([]ops.KNNCandidate, error) {
		stats.Rounds++
		stats.PartitionsTotal = len(splits)
		stats.PartitionsConsulted, stats.PartitionsPruned = 0, 0
		var cand []*mapreduce.Split
		for _, sp := range splits {
			if !kept[sp] {
				stats.PartitionsPruned++
				hot.RecordPrune(file, sp.Partition)
				continue
			}
			cand = append(cand, sp)
		}
		sh.fanout += len(cand)
		targets := s.scatterTargets(m, cand)
		frags := make([][]ops.KNNCandidate, len(cand))
		recs := make([]int64, len(cand))
		outs := make([]shardOutcome, len(cand))
		errs := make([]error, len(cand))
		var wg sync.WaitGroup
		for i, sp := range cand {
			wg.Add(1)
			go func(i int, sp *mapreduce.Split) {
				defer wg.Done()
				frags[i], recs[i], outs[i], errs[i] = s.execKNNShard(targets[i], file, epoch, sp, q, k)
			}(i, sp)
		}
		wg.Wait()
		var all []ops.KNNCandidate
		for i, sp := range cand {
			if errs[i] != nil {
				return nil, errs[i]
			}
			stats.PartitionsConsulted++
			hot.RecordScan(file, sp.Partition)
			hot.AddRecords(file, sp.Partition, recs[i])
			stats.Matches += len(frags[i])
			hot.AddMatches(file, sp.Partition, int64(len(frags[i])))
			sh.tally(outs[i])
			all = append(all, frags[i]...)
		}
		return ops.SortKNNCandidates(all, k), nil
	}

	// Round 1: the smallest-area partition covering q, or everything —
	// identical to the local engine, so both engines keep the same splits
	// and the correctness-circle decision below matches bit for bit.
	r1 := make(map[*mapreduce.Split]bool, len(splits))
	var best *mapreduce.Split
	for _, sp := range splits {
		if sp.Cover().ContainsPoint(q) && (best == nil || sp.Cover().Area() < best.Cover().Area()) {
			best = sp
		}
	}
	if best == nil {
		for _, sp := range splits {
			r1[sp] = true
		}
	} else {
		r1[best] = true
	}
	cands, err := round(r1)
	if err != nil {
		return nil, nil, false, err
	}

	needSecond := len(cands) < k && k > 0
	if !needSecond && len(cands) > 0 {
		radius := cands[min(k, len(cands))-1].Dist
		circle := geom.Rect{MinX: q.X - radius, MinY: q.Y - radius, MaxX: q.X + radius, MaxY: q.Y + radius}
		scannedAll := len(r1) == len(splits)
		ownsCircle := false
		if f.Index.Disjoint() && len(r1) == 1 {
			for sp := range r1 {
				ownsCircle = sp.MBR.ContainsRect(circle)
			}
		}
		if !scannedAll && !ownsCircle {
			needSecond = true
		}
	}
	if needSecond {
		radius := 0.0
		if len(cands) >= k && k > 0 {
			radius = cands[k-1].Dist
		}
		kept := make(map[*mapreduce.Split]bool, len(splits))
		for _, sp := range splits {
			if radius == 0 || sp.Cover().MinDistPoint(q) <= radius {
				kept[sp] = true
			}
		}
		cands, err = round(kept)
		if err != nil {
			return nil, nil, false, err
		}
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	pts := make([]geom.Point, len(cands))
	for i, c := range cands {
		p, err := geomio.DecodePoint(c.Rec)
		if err != nil {
			return nil, nil, false, err
		}
		pts[i] = p
	}
	s.observeShard(sh)
	return pts, &execMeta{engine: PlannerSharded, local: stats, shard: sh}, true, nil
}
