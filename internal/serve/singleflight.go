package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent builds of the same response key: the
// first caller (the leader) runs the build, every later caller with the
// same key waits for the leader's result instead of running a duplicate
// job. A thundering herd on one cold key therefore costs one execution.
// Hand-rolled rather than x/sync/singleflight to keep the tree
// dependency-free; semantics differ deliberately in that followers honor
// their own context cancellation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	body []byte
	meta *execMeta
	err  error
}

// do returns the build's result, running it only in the leader.
// coalesced is true for followers that waited on another request's build.
func (g *flightGroup) do(ctx context.Context, key string, build func() ([]byte, *execMeta, error)) (body []byte, meta *execMeta, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.body, c.meta, true, c.err
		case <-ctx.Done():
			return nil, nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.body, c.meta, c.err = build()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.body, c.meta, false, c.err
}
