package serve

import (
	"strconv"
	"unicode/utf8"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/ops"
)

// Hand-rolled encoders for the two hot response bodies. encoding/json's
// reflective struct walk plus its generic float path dominated the serve
// CPU profile; these emit byte-identical output with append-only calls.
// Byte identity with encoding/json is load-bearing — cached, coalesced
// and freshly built responses must compare equal — and is pinned by a
// differential test against json.Marshal.

// jsonPlain reports whether s renders under encoding/json as itself, with
// no escaping: printable ASCII minus the characters json escapes (quotes,
// backslash and the HTML-safety set). Strings that fail this are routed
// through the reflective fallback rather than replicating the escaper.
func jsonPlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= utf8.RuneSelf || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendJSONFloat appends f exactly as encoding/json renders a float64
// (see geomio.AppendJSONFloat, shared with the pinned-partition fragment
// builder).
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	return geomio.AppendJSONFloat(b, f)
}

// encodeRangeBody renders a rangeResponse body (with trailing newline).
func encodeRangeBody(file, rect string, pts []geom.Point) ([]byte, error) {
	if !jsonPlain(file) || !jsonPlain(rect) {
		resp := rangeResponse{File: file, Rect: rect, Count: len(pts), Points: make([]pointJSON, len(pts))}
		for i, p := range pts {
			resp.Points[i] = pointJSON{X: p.X, Y: p.Y}
		}
		return marshalBody(resp)
	}
	var err error
	// ~17 bytes per shortest-form float plus the per-point framing; an
	// overshoot here is cheaper than re-growing a multi-hundred-KB body.
	b := make([]byte, 0, 64+len(file)+len(rect)+48*len(pts))
	b = append(b, `{"file":"`...)
	b = append(b, file...)
	b = append(b, `","rect":"`...)
	b = append(b, rect...)
	b = append(b, `","count":`...)
	b = strconv.AppendInt(b, int64(len(pts)), 10)
	b = append(b, `,"points":[`...)
	for i, p := range pts {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"x":`...)
		if b, err = appendJSONFloat(b, p.X); err != nil {
			return nil, err
		}
		b = append(b, `,"y":`...)
		if b, err = appendJSONFloat(b, p.Y); err != nil {
			return nil, err
		}
		b = append(b, '}')
	}
	b = append(b, "]}\n"...)
	return b, nil
}

// encodeRangeBodyMatches renders a rangeResponse body directly from
// per-partition sorted match streams: a k-way merge by (X, then Y) whose
// point objects are copied from the partitions' pre-encoded fragments
// instead of re-formatting floats. Byte-identical to sorting the matched
// points and calling encodeRangeBody (pinned by a differential test).
// Returns ok=false — caller must fall back — when any partition lacks
// fragments or a string needs escaping.
func encodeRangeBodyMatches(file, rect string, matches []ops.LocalMatch) ([]byte, bool) {
	if !jsonPlain(file) || !jsonPlain(rect) {
		return nil, false
	}
	total := 0
	payload := 0 // exact points-array byte size, from the fragment offsets
	for _, m := range matches {
		if m.Part.Frag == nil {
			return nil, false
		}
		total += len(m.IDs)
		for _, id := range m.IDs {
			payload += int(m.Part.FragOff[id+1] - m.Part.FragOff[id])
		}
	}
	b := make([]byte, 0, 64+len(file)+len(rect)+payload+total)
	b = append(b, `{"file":"`...)
	b = append(b, file...)
	b = append(b, `","rect":"`...)
	b = append(b, rect...)
	b = append(b, `","count":`...)
	b = strconv.AppendInt(b, int64(total), 10)
	b = append(b, `,"points":[`...)
	// heads[i] indexes matches[i].IDs; linear min-scan per emit (the
	// planner caps local execution at a handful of partitions).
	heads := make([]int, len(matches))
	for n := 0; n < total; n++ {
		best := -1
		var bp geom.Point
		for i, m := range matches {
			if heads[i] == len(m.IDs) {
				continue
			}
			p := m.Part.Pts[m.IDs[heads[i]]]
			if best < 0 || p.X < bp.X || (p.X == bp.X && p.Y < bp.Y) {
				best, bp = i, p
			}
		}
		m := matches[best]
		id := m.IDs[heads[best]]
		heads[best]++
		if n > 0 {
			b = append(b, ',')
		}
		b = append(b, m.Part.Frag[m.Part.FragOff[id]:m.Part.FragOff[id+1]]...)
	}
	b = append(b, "]}\n"...)
	return b, true
}

// encodeKNNBody renders a knnResponse body (with trailing newline).
func encodeKNNBody(file, point string, k int, nbs []neighborJSON) ([]byte, error) {
	if !jsonPlain(file) || !jsonPlain(point) {
		return marshalBody(knnResponse{File: file, Point: point, K: k, Count: len(nbs), Neighbors: nbs})
	}
	var err error
	b := make([]byte, 0, 96+len(file)+len(point)+72*len(nbs))
	b = append(b, `{"file":"`...)
	b = append(b, file...)
	b = append(b, `","point":"`...)
	b = append(b, point...)
	b = append(b, `","k":`...)
	b = strconv.AppendInt(b, int64(k), 10)
	b = append(b, `,"count":`...)
	b = strconv.AppendInt(b, int64(len(nbs)), 10)
	b = append(b, `,"neighbors":[`...)
	for i, n := range nbs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"x":`...)
		if b, err = appendJSONFloat(b, n.X); err != nil {
			return nil, err
		}
		b = append(b, `,"y":`...)
		if b, err = appendJSONFloat(b, n.Y); err != nil {
			return nil, err
		}
		b = append(b, `,"dist":`...)
		if b, err = appendJSONFloat(b, n.Dist); err != nil {
			return nil, err
		}
		b = append(b, '}')
	}
	b = append(b, "]}\n"...)
	return b, nil
}
