package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"spatialhadoop/internal/obs"
)

// getWithTrace issues one GET and returns the response plus body.
func getWithTrace(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp, buf.Bytes()
}

// fetchTrace pulls the retained trace snapshot for a trace ID.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) obs.ReqTraceSnapshot {
	t.Helper()
	resp, body := getWithTrace(t, ts, "/debug/trace/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: status %d, body %s", id, resp.StatusCode, body)
	}
	var snap obs.ReqTraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	return snap
}

// TestTraceEndToEnd drives one range query and checks its span tree:
// every serving response carries X-Trace-Id, the ID resolves on
// /debug/trace/{id}, and the trace shows the request's path through the
// stack — cache probe, admission queue wait, job phases, slot waits and
// DFS reads.
func TestTraceEndToEnd(t *testing.T) {
	sys := newServeSystem(t)
	// Forced MapReduce: the span assertions below describe the job path
	// (queue.wait, phases, slot.wait); the planner must not reroute the
	// query to the local engine.
	srv := New(sys, Config{Planner: PlannerMapReduce})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := getWithTrace(t, ts, "/rangequery?file=pts1&rect=1000,1000,6000,6000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Trace-Id")
	if len(id) != 16 {
		t.Fatalf("X-Trace-Id = %q, want 16 hex chars", id)
	}

	snap := fetchTrace(t, ts, id)
	if snap.TraceID != id {
		t.Errorf("snapshot trace ID %q != header %q", snap.TraceID, id)
	}
	names := snap.SpanNames()
	for _, want := range []string{
		"request", "cache.probe", "exec", "encode", // serving layer
		"queue.wait", "job", // admission + job root
		"phase.filter", "phase.map", "phase.commit", // phases (map-only job)
		"slot.wait", // scheduler slot pool
		"dfs.read",  // result read-back
	} {
		if names[want] == 0 {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	// The root span records the request's routing and outcome.
	root := snap.Spans[0]
	if root.Name != "request" || root.Parent != 0 {
		t.Fatalf("first span = %q parent %d, want root request span", root.Name, root.Parent)
	}
	if root.Attrs["endpoint"] != "range" || root.Attrs["status"] != "200" {
		t.Errorf("root attrs = %v, want endpoint=range status=200", root.Attrs)
	}
	// Spans form a tree: every parent ID exists.
	ids := map[int64]bool{}
	for _, sp := range snap.Spans {
		ids[sp.ID] = true
	}
	for _, sp := range snap.Spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %q has dangling parent %d", sp.Name, sp.Parent)
		}
	}

	// A cache hit runs no job: its trace has a hit probe and no exec span.
	resp2, _ := getWithTrace(t, ts, "/rangequery?file=pts1&rect=1000,1000,6000,6000")
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	id2 := resp2.Header.Get("X-Trace-Id")
	if id2 == id {
		t.Fatalf("trace IDs must be per-request, both %q", id)
	}
	snap2 := fetchTrace(t, ts, id2)
	names2 := snap2.SpanNames()
	if names2["exec"] != 0 || names2["job"] != 0 {
		t.Errorf("cache-hit trace ran a job: %v", names2)
	}
	var probeResult string
	for _, sp := range snap2.Spans {
		if sp.Name == "cache.probe" {
			probeResult = sp.Attrs["result"]
		}
	}
	if probeResult != "hit" {
		t.Errorf("cache.probe result = %q, want hit", probeResult)
	}

	// Unknown IDs 404.
	resp3, _ := getWithTrace(t, ts, "/debug/trace/ffffffffffffffff")
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", resp3.StatusCode)
	}
}

// TestExplainReport checks ?explain=1: the execution report is spliced
// into the JSON body, reflects the job's pruning and cache state, and
// never leaks into the cached bytes (hits stay byte-identical to misses).
func TestExplainReport(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const q = "/rangequery?file=pts1&rect=1000,1000,4000,4000"
	respMiss, bodyMiss := getWithTrace(t, ts, q+"&explain=1")
	if respMiss.StatusCode != http.StatusOK || respMiss.Header.Get("X-Cache") != "miss" {
		t.Fatalf("explain miss: status %d cache %q", respMiss.StatusCode, respMiss.Header.Get("X-Cache"))
	}
	var withExplain struct {
		Count   int `json:"count"`
		Explain struct {
			TraceID           string `json:"trace_id"`
			Cache             string `json:"cache"`
			Engine            string `json:"engine"`
			PartitionsTotal   int    `json:"partitions_total"`
			PartitionsScanned int    `json:"partitions_scanned"`
			PartitionsPruned  int    `json:"partitions_pruned"`
			SFilterHits       int    `json:"sfilter_hits"`
			SFilterSkips      int    `json:"sfilter_skips"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(bodyMiss, &withExplain); err != nil {
		t.Fatalf("explained body is not JSON: %v\n%s", err, bodyMiss)
	}
	e := withExplain.Explain
	if e.TraceID != respMiss.Header.Get("X-Trace-Id") {
		t.Errorf("explain trace_id %q != header %q", e.TraceID, respMiss.Header.Get("X-Trace-Id"))
	}
	if e.Cache != "miss" {
		t.Errorf("explain cache = %q, want miss", e.Cache)
	}
	if e.PartitionsTotal <= 0 || e.PartitionsScanned <= 0 {
		t.Errorf("explain partitions: total %d scanned %d, want > 0", e.PartitionsTotal, e.PartitionsScanned)
	}
	if e.PartitionsScanned+e.PartitionsPruned != e.PartitionsTotal {
		t.Errorf("scanned %d + pruned %d != total %d", e.PartitionsScanned, e.PartitionsPruned, e.PartitionsTotal)
	}
	// The planner decision is visible both as the explain engine field and
	// the X-Engine header, and they agree.
	if e.Engine != PlannerLocal && e.Engine != PlannerMapReduce {
		t.Errorf("explain engine = %q, want local or mapreduce", e.Engine)
	}
	if hdr := respMiss.Header.Get("X-Engine"); hdr != e.Engine {
		t.Errorf("X-Engine %q != explain engine %q", hdr, e.Engine)
	}
	if e.Engine == PlannerLocal && e.SFilterHits != e.PartitionsScanned {
		t.Errorf("local engine: sfilter_hits %d != partitions_scanned %d", e.SFilterHits, e.PartitionsScanned)
	}

	// The cache stores the plain body: a plain request after the explained
	// miss is a hit with no explain member.
	respPlain, bodyPlain := getWithTrace(t, ts, q)
	if respPlain.Header.Get("X-Cache") != "hit" {
		t.Fatalf("plain request after explained miss: X-Cache %q, want hit", respPlain.Header.Get("X-Cache"))
	}
	if bytes.Contains(bodyPlain, []byte(`"explain"`)) {
		t.Errorf("cached body contains explain report: %s", bodyPlain)
	}

	// An explained hit reports cache=hit with no job stats, and its body
	// minus the report matches the cached bytes.
	respHit, bodyHit := getWithTrace(t, ts, q+"&explain=1")
	if respHit.Header.Get("X-Cache") != "hit" {
		t.Fatalf("explained hit: X-Cache %q", respHit.Header.Get("X-Cache"))
	}
	var hitExplain struct {
		Count   int `json:"count"`
		Explain struct {
			Cache           string `json:"cache"`
			Engine          string `json:"engine"`
			PartitionsTotal int    `json:"partitions_total"`
		} `json:"explain"`
	}
	if err := json.Unmarshal(bodyHit, &hitExplain); err != nil {
		t.Fatalf("explained hit body: %v", err)
	}
	if hitExplain.Explain.Cache != "hit" || hitExplain.Explain.PartitionsTotal != 0 {
		t.Errorf("explained hit report = %+v, want cache=hit with zero job stats", hitExplain.Explain)
	}
	if hitExplain.Explain.Engine != "cache" || respHit.Header.Get("X-Engine") != "cache" {
		t.Errorf("explained hit engine = %q header %q, want cache", hitExplain.Explain.Engine, respHit.Header.Get("X-Engine"))
	}
	if hitExplain.Count != withExplain.Count {
		t.Errorf("hit count %d != miss count %d", hitExplain.Count, withExplain.Count)
	}

	// PNG responses ignore explain (no JSON to splice into).
	respPlot, bodyPlot := getWithTrace(t, ts, "/plot?file=pts1&width=32&height=32&explain=1")
	if respPlot.StatusCode != http.StatusOK {
		t.Fatalf("plot status %d", respPlot.StatusCode)
	}
	if !bytes.HasPrefix(bodyPlot, []byte("\x89PNG")) {
		t.Errorf("explained plot is not a PNG")
	}
}

// TestMetricsPrometheus checks /metrics end to end: the body parses as
// Prometheus text, every family obeys the shadoop_[a-z_]+ naming rule,
// and the serving, cluster, runtime and hot-partition families are all
// present with sane values.
func TestMetricsPrometheus(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range []string{
		"/rangequery?file=pts1&rect=1000,1000,6000,6000",
		"/rangequery?file=pts1&rect=1000,1000,6000,6000", // cache hit
		"/rangequery?file=pts1&rect=0,0,10000,10000",     // full scan → mapreduce
		"/knn?file=pts2&point=5000,5000&k=5",             // selective → local
	} {
		if resp, body := getWithTrace(t, ts, q); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %s", q, resp.StatusCode, body)
		}
	}

	resp, body := getWithTrace(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	pm, err := obs.ParsePrometheus(body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}

	families := map[string]bool{}
	for _, s := range pm.Samples {
		base := s.Name
		base = strings.TrimSuffix(base, "_bucket")
		base = strings.TrimSuffix(base, "_sum")
		base = strings.TrimSuffix(base, "_count")
		base = strings.TrimSuffix(base, "_total")
		families[base] = true
	}
	for fam := range families {
		if !obs.ValidPromName(fam) {
			t.Errorf("family %q violates the shadoop_[a-z_]+ naming rule", fam)
		}
	}

	reqs, ok := pm.Get("shadoop_serve_req_total", map[string]string{"endpoint": "range"})
	if !ok || reqs < 2 {
		t.Errorf("shadoop_serve_req_total{endpoint=range} = %v (ok=%v), want >= 2", reqs, ok)
	}
	if _, ok := pm.Get("shadoop_serve_cache_hits_total", nil); !ok {
		t.Errorf("missing shadoop_serve_cache_hits_total")
	}
	if v, ok := pm.Get("shadoop_serve_latency_quantile_us", map[string]string{"endpoint": "range", "quantile": "0.99"}); !ok || v <= 0 {
		t.Errorf("p99 gauge for range = %v (ok=%v), want > 0", v, ok)
	}
	if g, ok := pm.Get("shadoop_go_goroutines", nil); !ok || g < 1 {
		t.Errorf("shadoop_go_goroutines = %v (ok=%v)", g, ok)
	}
	if _, ok := pm.Get("shadoop_cluster_slots_cap", nil); !ok {
		t.Errorf("missing shadoop_cluster_slots_cap")
	}
	// Memory-tier gauges and planner counters: the selective kNN above ran
	// locally (pinning partitions), the full scan ran as a job.
	if v, ok := pm.Get("shadoop_serve_memtier_pinned_partitions", nil); !ok || v < 1 {
		t.Errorf("shadoop_serve_memtier_pinned_partitions = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := pm.Get("shadoop_serve_memtier_bytes", nil); !ok || v <= 0 {
		t.Errorf("shadoop_serve_memtier_bytes = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := pm.Get("shadoop_serve_planner_local_total", nil); !ok || v < 1 {
		t.Errorf("shadoop_serve_planner_local_total = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := pm.Get("shadoop_serve_planner_mapreduce_total", nil); !ok || v < 1 {
		t.Errorf("shadoop_serve_planner_mapreduce_total = %v (ok=%v), want >= 1", v, ok)
	}
	// Hot-partition telemetry rides the same exposition.
	foundScan := false
	for _, s := range pm.Samples {
		if s.Name == "shadoop_ops_partition_scans_total" && s.Labels["file"] == "pts1" {
			foundScan = true
		}
	}
	if !foundScan {
		t.Errorf("no shadoop_ops_partition_scans_total{file=pts1} series")
	}
	// Histograms survive the round trip with their label sets.
	if _, ok := pm.Types["shadoop_serve_latency_us"]; !ok {
		t.Errorf("missing histogram family shadoop_serve_latency_us")
	}

	// /metrics.json still serves the structured dump.
	respJSON, bodyJSON := getWithTrace(t, ts, "/metrics.json")
	if respJSON.StatusCode != http.StatusOK {
		t.Fatalf("/metrics.json status %d", respJSON.StatusCode)
	}
	var dump struct {
		Serve  *obs.Snapshot `json:"serve"`
		System *obs.Snapshot `json:"system"`
	}
	if err := json.Unmarshal(bodyJSON, &dump); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if dump.Serve == nil || dump.System == nil {
		t.Fatalf("/metrics.json missing sections")
	}
}

// TestPartitionsReport checks /debug/partitions: after queries with
// different footprints the skew report ranks partitions hottest-first
// and its counts are consistent.
func TestPartitionsReport(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Whole-file scans touch every partition; corner queries concentrate
	// heat on a subset, producing measurable skew.
	for _, q := range []string{
		"/rangequery?file=pts1&rect=0,0,10000,10000",
		"/rangequery?file=pts1&rect=0,0,1500,1500",
		"/rangequery?file=pts1&rect=0,0,1500,1500",
		"/rangequery?file=pts1&rect=0,0,1000,1000",
	} {
		if resp, body := getWithTrace(t, ts, q); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %s", q, resp.StatusCode, body)
		}
	}

	resp, body := getWithTrace(t, ts, "/debug/partitions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/partitions status %d", resp.StatusCode)
	}
	var rep struct {
		Files []struct {
			File       string  `json:"file"`
			Scans      int64   `json:"scans"`
			Prunes     int64   `json:"prunes"`
			Skew       float64 `json:"skew"`
			Partitions []struct {
				Partition string `json:"partition"`
				Scans     int64  `json:"scans"`
				Records   int64  `json:"records"`
				Matches   int64  `json:"matches"`
			} `json:"partitions"`
		} `json:"files"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decode partitions report: %v", err)
	}
	var pts1 *struct {
		File       string  `json:"file"`
		Scans      int64   `json:"scans"`
		Prunes     int64   `json:"prunes"`
		Skew       float64 `json:"skew"`
		Partitions []struct {
			Partition string `json:"partition"`
			Scans     int64  `json:"scans"`
			Records   int64  `json:"records"`
			Matches   int64  `json:"matches"`
		} `json:"partitions"`
	}
	for i := range rep.Files {
		if rep.Files[i].File == "pts1" {
			pts1 = &rep.Files[i]
		}
	}
	if pts1 == nil {
		t.Fatalf("no pts1 entry in %s", body)
	}
	if len(pts1.Partitions) < 2 {
		t.Skipf("pts1 indexed into %d partition(s); skew needs >= 2", len(pts1.Partitions))
	}
	if pts1.Skew <= 1 {
		t.Errorf("skew = %v, want > 1 after concentrated corner queries", pts1.Skew)
	}
	for i := 1; i < len(pts1.Partitions); i++ {
		if pts1.Partitions[i].Scans > pts1.Partitions[i-1].Scans {
			t.Errorf("partitions not hottest-first: %v then %v", pts1.Partitions[i-1], pts1.Partitions[i])
		}
	}
	var sum int64
	for _, p := range pts1.Partitions {
		sum += p.Scans
	}
	if sum != pts1.Scans {
		t.Errorf("file scans %d != partition sum %d", pts1.Scans, sum)
	}
}

// TestAccessLog checks the JSONL access log: one line per request with
// trace ID, op, status and latency.
func TestAccessLog(t *testing.T) {
	sys := newServeSystem(t)
	var logBuf bytes.Buffer
	srv := New(sys, Config{AccessLog: &syncBuffer{buf: &logBuf}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp1, _ := getWithTrace(t, ts, "/rangequery?file=pts1&rect=1000,1000,2000,2000")
	resp2, _ := getWithTrace(t, ts, "/rangequery?file=nope&rect=0,0,1,1")
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing file: status %d, want 404", resp2.StatusCode)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	type entry struct {
		TraceID   string `json:"trace_id"`
		Op        string `json:"op"`
		Status    int    `json:"status"`
		LatencyUS int64  `json:"latency_us"`
		Cache     string `json:"cache"`
	}
	var e1, e2 entry
	if err := json.Unmarshal([]byte(lines[0]), &e1); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e2); err != nil {
		t.Fatalf("line 2: %v", err)
	}
	if e1.TraceID != resp1.Header.Get("X-Trace-Id") || e1.Op != "range" || e1.Status != 200 || e1.Cache != "miss" {
		t.Errorf("line 1 = %+v", e1)
	}
	if e2.Status != 404 || e2.LatencyUS < 0 {
		t.Errorf("line 2 = %+v", e2)
	}
}

// syncBuffer adapts bytes.Buffer for concurrent writer use in tests (the
// server serializes writes itself; this guards the test's reads).
type syncBuffer struct {
	buf *bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) { return b.buf.Write(p) }

// TestTraceIDFormat pins the wire format of trace IDs so dashboards can
// rely on it.
func TestTraceIDFormat(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	sys := newServeSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := getWithTrace(t, ts, "/healthz")
	if id := resp.Header.Get("X-Trace-Id"); !re.MatchString(id) {
		t.Errorf("X-Trace-Id %q is not 16 lowercase hex chars", id)
	}
}
