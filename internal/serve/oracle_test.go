package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"io"
	"net/http"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
)

// rangeBody / knnBody mirror the serving layer's JSON response shapes
// (this file lives in the external test package, so it decodes them from
// the wire format like any client would).
type rangeBody struct {
	Points []struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"points"`
}

type knnBody struct {
	Neighbors []struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"neighbors"`
}

// fetch issues one GET and returns status, body and the X-Cache header.
func fetch(t *testing.T, client *http.Client, url string) (int, []byte, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Cache")
}

// TestServeCacheHitMissByteIdentical pins the serving layer's caching
// contract with the property-testing harness instead of bespoke
// comparators: for a seeded workload over both a disjoint and an
// overlapping technique, the cache-disabled response, the first (miss)
// response and the second (hit) response of every query must be
// byte-identical — only the X-Cache header may differ — and the range and
// kNN bodies must agree with the proptest brute-force oracles.
func TestServeCacheHitMissByteIdentical(t *testing.T) {
	sys := proptest.NewSystem(proptest.DefaultWorkers)
	pts := proptest.GenPoints(proptest.ShapeMixture, 96, 51)
	files := map[string]sindex.Technique{
		"pts-quad": sindex.QuadTree, // disjoint
		"pts-str":  sindex.STR,      // overlapping: exercises the Cover() pruning path
	}
	for file, tech := range files {
		if _, err := sys.LoadPoints(file, pts, tech); err != nil {
			t.Fatal(err)
		}
	}

	var urls []string
	seen := map[string]bool{}
	add := func(u string) {
		if !seen[u] {
			seen[u] = true
			urls = append(urls, u)
		}
	}
	for file := range files {
		for _, q := range proptest.GenQueryRects(51) {
			add(fmt.Sprintf("/rangequery?file=%s&rect=%g,%g,%g,%g",
				file, q.MinX, q.MinY, q.MaxX, q.MaxY))
		}
		for _, kq := range proptest.GenKNNQueries(len(pts), 51) {
			if kq.K < 1 {
				continue // the HTTP endpoint rejects k < 1 by contract
			}
			add(fmt.Sprintf("/knn?file=%s&point=%g,%g&k=%d",
				file, kq.Q.X, kq.Q.Y, kq.K))
		}
		add("/plot?file=" + file + "&width=32&height=32")
	}

	// Cache-disabled oracle server first (serially, then closed, so its
	// temp outputs never collide with the caching server's).
	usrv := serve.New(sys, serve.Config{CacheSize: -1})
	uts := httptest.NewServer(usrv.Handler())
	uncached := make(map[string][]byte, len(urls))
	for _, u := range urls {
		code, body, xc := fetch(t, uts.Client(), uts.URL+u)
		if code != 200 {
			t.Fatalf("uncached %s: status %d: %s", u, code, body)
		}
		if xc == "hit" {
			t.Fatalf("uncached %s: served from a cache that should be disabled", u)
		}
		uncached[u] = body
	}
	uts.Close()

	srv := serve.New(sys, serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, u := range urls {
		code, miss, xc := fetch(t, ts.Client(), ts.URL+u)
		if code != 200 {
			t.Fatalf("miss %s: status %d: %s", u, code, miss)
		}
		if xc != "miss" {
			t.Fatalf("first %s: X-Cache = %q, want miss", u, xc)
		}
		_, hit, xc := fetch(t, ts.Client(), ts.URL+u)
		if xc != "hit" {
			t.Fatalf("second %s: X-Cache = %q, want hit", u, xc)
		}
		if !bytes.Equal(miss, hit) {
			t.Errorf("%s: hit body differs from miss body", u)
		}
		if !bytes.Equal(miss, uncached[u]) {
			t.Errorf("%s: cached-server body differs from cache-disabled body", u)
		}
	}

	// Differential spot checks through the full HTTP path, using the
	// harness oracles rather than ad-hoc recomputation.
	for file := range files {
		for _, q := range proptest.GenQueryRects(51) {
			u := fmt.Sprintf("/rangequery?file=%s&rect=%g,%g,%g,%g", file, q.MinX, q.MinY, q.MaxX, q.MaxY)
			var resp rangeBody
			if err := json.Unmarshal(uncached[u], &resp); err != nil {
				t.Fatalf("%s: %v", u, err)
			}
			got := make([]geom.Point, len(resp.Points))
			for i, p := range resp.Points {
				got[i] = geom.Pt(p.X, p.Y)
			}
			if want := proptest.OracleRange(pts, q); proptest.CanonPoints(got) != proptest.CanonPoints(want) {
				t.Errorf("%s: body disagrees with brute-force oracle (%d vs %d points)",
					u, len(got), len(want))
			}
		}
		for _, kq := range proptest.GenKNNQueries(len(pts), 51) {
			if kq.K < 1 {
				continue
			}
			u := fmt.Sprintf("/knn?file=%s&point=%g,%g&k=%d", file, kq.Q.X, kq.Q.Y, kq.K)
			var resp knnBody
			if err := json.Unmarshal(uncached[u], &resp); err != nil {
				t.Fatalf("%s: %v", u, err)
			}
			got := make([]geom.Point, len(resp.Neighbors))
			for i, nb := range resp.Neighbors {
				got[i] = geom.Pt(nb.X, nb.Y)
			}
			oracle := proptest.OracleKNN(pts, kq.Q, kq.K)
			if msg := proptest.CompareKNN(got, oracle, kq.Q, pts); msg != "" {
				t.Errorf("%s: %s", u, msg)
			}
		}
	}
}
