// Package serve is the concurrent query-serving layer over the
// SpatialHadoop core: an HTTP front end whose range, kNN, join and plot
// endpoints execute as MapReduce jobs under the cluster's shared worker
// slot pool and job admission controller, with an LRU result cache keyed
// by (file, DFS mutation epoch, canonicalized query) so repeated queries
// over unchanged files skip the cluster entirely — and any mutation of an
// input file invalidates exactly the results derived from it.
package serve

import (
	"container/list"
	"sync"

	"spatialhadoop/internal/obs"
)

// Cache metric names, registered in the server's obs registry.
const (
	CounterCacheHits      = "serve.cache.hits"
	CounterCacheMisses    = "serve.cache.misses"
	CounterCacheEvictions = "serve.cache.evictions"
	GaugeCacheEntries     = "serve.cache.entries"
)

// Cache is a bounded LRU over fully rendered response bodies. Keys embed
// the source files' DFS epochs, so entries for a mutated file are never
// hit again (they age out at the LRU tail); the cache itself never needs
// explicit invalidation. It is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	reg   *obs.Registry // optional hit/miss/eviction counters
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache creates a cache holding up to max entries; max <= 0 disables
// caching (every Get misses, Put is a no-op). reg may be nil.
func NewCache(max int, reg *obs.Registry) *Cache {
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		reg:   reg,
	}
}

// Get returns the cached body for key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c.max <= 0 {
		c.count(CounterCacheMisses)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	var body []byte
	if ok {
		c.ll.MoveToFront(el)
		// Grab the slice inside the lock: Put updates an existing entry's
		// body in place, so reading it after unlock would race.
		body = el.Value.(*cacheEntry).body
	}
	c.mu.Unlock()
	if !ok {
		c.count(CounterCacheMisses)
		return nil, false
	}
	c.count(CounterCacheHits)
	return body, true
}

// Put stores body under key, evicting least-recently-used entries over
// capacity. The caller must not modify body afterwards.
func (c *Cache) Put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		c.mu.Unlock()
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	evicted := 0
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		evicted++
	}
	n := c.ll.Len()
	c.mu.Unlock()
	if evicted > 0 && c.reg != nil {
		c.reg.Inc(CounterCacheEvictions, int64(evicted))
	}
	if c.reg != nil {
		c.reg.SetGauge(GaugeCacheEntries, float64(n))
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Contains reports whether key is cached, without touching recency — the
// probe the eviction-order tests use.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

func (c *Cache) count(name string) {
	if c.reg != nil {
		c.reg.Inc(name, 1)
	}
}
