package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/sindex"
)

// TestCacheStaleEpochRegression is the stale-result regression test: two
// byte-identical queries with a data reload in between must NOT serve the
// second from cache — the reload bumps the file's DFS epoch, the cache
// key changes, and the fresh result must reflect the new data.
func TestCacheStaleEpochRegression(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 2048, Workers: 4, Seed: 7})
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Uniform, 500, area, 5)
	if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	epoch1 := sys.FS().FileEpoch("pts")

	srv := New(sys, Config{CacheSize: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := "/rangequery?file=pts&rect=0,0,1000,1000"
	code, body1, cache1 := fetch(t, ts.Client(), ts.URL+q)
	if code != http.StatusOK || cache1 != "miss" {
		t.Fatalf("first query: status %d X-Cache=%q", code, cache1)
	}
	if code, body, cache := fetch(t, ts.Client(), ts.URL+q); code != http.StatusOK || cache != "hit" || string(body) != string(body1) {
		t.Fatalf("warm query: status %d X-Cache=%q bodyEqual=%v", code, cache, string(body) == string(body1))
	}

	// Reload with one extra, distinctive point. This is a whole-file
	// replace (CreateOrReplace), the mutation path serving races against.
	marker := geom.Pt(123.5, 456.5)
	if _, err := sys.LoadPoints("pts", append(append([]geom.Point{}, pts...), marker), sindex.STR); err != nil {
		t.Fatal(err)
	}
	if epoch2 := sys.FS().FileEpoch("pts"); epoch2 <= epoch1 {
		t.Fatalf("reload did not advance epoch: %d -> %d", epoch1, epoch2)
	}

	code, body2, cache2 := fetch(t, ts.Client(), ts.URL+q)
	if code != http.StatusOK {
		t.Fatalf("post-reload query: status %d", code)
	}
	if cache2 != "miss" {
		t.Fatalf("post-reload query served from cache (X-Cache=%q): stale result", cache2)
	}
	if string(body2) == string(body1) {
		t.Fatal("post-reload body identical to pre-reload body; new point missing")
	}
	if !strings.Contains(string(body2), `{"x":123.5,"y":456.5}`) {
		t.Fatalf("post-reload body does not contain the new point: %.300s", body2)
	}
}

// TestCacheLRUEvictionOrder table-tests the LRU policy: the least
// recently *used* (not least recently inserted) entry is evicted.
func TestCacheLRUEvictionOrder(t *testing.T) {
	body := func(i int) []byte { return []byte(fmt.Sprintf("body-%d", i)) }
	for _, tc := range []struct {
		name    string
		max     int
		ops     func(c *Cache)
		present []string
		absent  []string
	}{
		{
			name: "insert order evicts oldest",
			max:  2,
			ops: func(c *Cache) {
				c.Put("a", body(1))
				c.Put("b", body(2))
				c.Put("c", body(3))
			},
			present: []string{"b", "c"},
			absent:  []string{"a"},
		},
		{
			name: "get refreshes recency",
			max:  2,
			ops: func(c *Cache) {
				c.Put("a", body(1))
				c.Put("b", body(2))
				c.Get("a") // a is now more recent than b
				c.Put("c", body(3))
			},
			present: []string{"a", "c"},
			absent:  []string{"b"},
		},
		{
			name: "re-put refreshes recency and replaces body",
			max:  2,
			ops: func(c *Cache) {
				c.Put("a", body(1))
				c.Put("b", body(2))
				c.Put("a", body(9))
				c.Put("c", body(3))
			},
			present: []string{"a", "c"},
			absent:  []string{"b"},
		},
		{
			name: "zero or negative capacity disables",
			max:  -1,
			ops: func(c *Cache) {
				c.Put("a", body(1))
			},
			absent: []string{"a"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			c := NewCache(tc.max, reg)
			tc.ops(c)
			for _, k := range tc.present {
				if !c.Contains(k) {
					t.Errorf("key %q missing, want present", k)
				}
			}
			for _, k := range tc.absent {
				if c.Contains(k) {
					t.Errorf("key %q present, want evicted/absent", k)
				}
			}
			if tc.max > 0 && c.Len() > tc.max {
				t.Errorf("cache holds %d entries, cap %d", c.Len(), tc.max)
			}
		})
	}

	// Replaced bodies are served, not the originals.
	c := NewCache(2, nil)
	c.Put("a", body(1))
	c.Put("a", body(9))
	if got, ok := c.Get("a"); !ok || string(got) != "body-9" {
		t.Errorf("re-put body = %q ok=%v, want body-9", got, ok)
	}
}

// TestCacheEvictionCounter: evictions surface in the obs registry.
func TestCacheEvictionCounter(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(1, reg)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3"))
	if got := reg.Counter(CounterCacheEvictions); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
	c.Get("c")
	c.Get("nope")
	if hits, misses := reg.Counter(CounterCacheHits), reg.Counter(CounterCacheMisses); hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

// TestCacheRectCanonicalization: the same rectangle given by any pair of
// opposite corners maps to the same cache key, so the second spelling is
// a hit with a byte-identical body (modulo the canonicalized echo of the
// rect, which is identical too).
func TestCacheRectCanonicalization(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 2048, Workers: 4, Seed: 7})
	area := geom.NewRect(0, 0, 1000, 1000)
	if _, err := sys.LoadPoints("pts", datagen.Points(datagen.Uniform, 400, area, 6), sindex.Grid); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, Config{CacheSize: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spellings := []string{
		"/rangequery?file=pts&rect=100,100,900,900",
		"/rangequery?file=pts&rect=900,900,100,100", // max corner first
		"/rangequery?file=pts&rect=100,900,900,100", // mixed corners
		"/rangequery?file=pts&rect=900,100,100,900", // other mix
	}
	code, want, cache := fetch(t, ts.Client(), ts.URL+spellings[0])
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("first spelling: status %d X-Cache=%q", code, cache)
	}
	for _, q := range spellings[1:] {
		code, body, cache := fetch(t, ts.Client(), ts.URL+q)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", q, code)
		}
		if cache != "hit" {
			t.Errorf("%s: X-Cache=%q, want hit (canonicalization failed)", q, cache)
		}
		if string(body) != string(want) {
			t.Errorf("%s: body differs from canonical spelling", q)
		}
	}
	if n := srv.ResultCache().Len(); n != 1 {
		t.Errorf("cache holds %d entries for one canonical query, want 1", n)
	}
}
