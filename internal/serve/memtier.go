package serve

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// MemTier is the serving layer's memory-resident read tier: partitions
// pinned as decoded points + per-partition R-trees (ops.LocalPartition),
// under a byte budget with LRU eviction, plus one spatial bitmap filter
// (sindex.SFilter) per file generation. Everything is keyed by
// (file, DFS mutation epoch): a write to the file mints a new epoch, so
// stale pinned data can never answer a fresh query even if the eager
// invalidation signal (the DFS epoch hook) were lost. The hook just frees
// the memory sooner.
type MemTier struct {
	budget int64
	reg    *obs.Registry

	mu      sync.Mutex
	lru     *list.List               // front = most recently used
	entries map[string]*list.Element // "file@epoch|partition" → *tierEntry
	pending map[string]*pinCall      // same key; pins in flight
	filters map[string]*sindex.SFilter
	bytes   int64
}

type tierEntry struct {
	key  string
	part *ops.LocalPartition
}

// pinCall deduplicates concurrent pins of the same partition: one loader
// decodes, everyone else waits for it.
type pinCall struct {
	done chan struct{}
	part *ops.LocalPartition
	err  error
}

// NewMemTier creates a tier with the given byte budget (> 0).
func NewMemTier(budget int64, reg *obs.Registry) *MemTier {
	return &MemTier{
		budget:  budget,
		reg:     reg,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		pending: make(map[string]*pinCall),
		filters: make(map[string]*sindex.SFilter),
	}
}

func tierKey(file string, epoch int64, partition string) string {
	return fileKey(file, epoch) + "|" + partition
}

func fileKey(file string, epoch int64) string {
	return file + "@" + strconv.FormatInt(epoch, 10)
}

// Source returns an ops.LocalSource bound to one (file, epoch, index):
// what the local executors pin through. The bitmap filter is created from
// the master index on first use of the generation and refined as
// partitions get pinned.
func (t *MemTier) Source(file string, epoch int64, gi *sindex.GlobalIndex) *tierSource {
	fk := fileKey(file, epoch)
	t.mu.Lock()
	sf, ok := t.filters[fk]
	if !ok {
		t.mu.Unlock()
		// Build outside the lock (O(cells) bitmap fills), then publish.
		built := sindex.NewSFilter(gi, 0)
		t.mu.Lock()
		if sf, ok = t.filters[fk]; !ok {
			t.filters[fk] = built
			sf = built
		}
	}
	t.mu.Unlock()
	return &tierSource{t: t, file: file, epoch: epoch, sf: sf}
}

// pin returns the partition's memory-resident form, loading and refining
// the bitmap filter on a miss, deduplicating concurrent loads, and
// evicting least-recently-used partitions past the byte budget.
func (t *MemTier) pin(file string, epoch int64, sf *sindex.SFilter, sp *mapreduce.Split) (*ops.LocalPartition, error) {
	key := tierKey(file, epoch, sp.Partition)
	t.mu.Lock()
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		t.mu.Unlock()
		t.reg.Inc("serve.memtier.hits", 1)
		return el.Value.(*tierEntry).part, nil
	}
	if c, ok := t.pending[key]; ok {
		t.mu.Unlock()
		<-c.done
		if c.err == nil {
			t.reg.Inc("serve.memtier.hits", 1)
		}
		return c.part, c.err
	}
	c := &pinCall{done: make(chan struct{})}
	t.pending[key] = c
	t.mu.Unlock()

	t.reg.Inc("serve.memtier.misses", 1)
	part, err := ops.PinSplit(sp)
	if err == nil && sf != nil {
		// Exact bitmap for the pinned generation: later queries prune at
		// record precision. (Worker executors pin without a filter — the
		// master already pruned; bitmap soundness means skipping it can
		// only scan more, never change bytes.)
		sf.Refine(part.Key, part.Pts)
	}

	t.mu.Lock()
	delete(t.pending, key)
	c.part, c.err = part, err
	if err == nil {
		t.entries[key] = t.lru.PushFront(&tierEntry{key: key, part: part})
		t.bytes += part.Bytes
		t.evictLocked()
	}
	t.mu.Unlock()
	close(c.done)
	return part, err
}

// evictLocked drops LRU tail entries until the budget holds. The newest
// entry survives even when it alone exceeds the budget: the query that
// pinned it is using it right now, and evicting it would only thrash.
func (t *MemTier) evictLocked() {
	for t.bytes > t.budget && t.lru.Len() > 1 {
		el := t.lru.Back()
		e := el.Value.(*tierEntry)
		t.lru.Remove(el)
		delete(t.entries, e.key)
		t.bytes -= e.part.Bytes
		t.reg.Inc("serve.memtier.evictions", 1)
	}
}

// Invalidate eagerly drops every pinned partition and filter of the file,
// across all epochs. It is the DFS epoch hook target and must therefore
// never call back into the file system — it only touches the tier's own
// maps. Correctness does not depend on it running: epoch-keyed lookups
// already miss stale generations.
func (t *MemTier) Invalidate(file string) {
	prefix := file + "@"
	t.mu.Lock()
	var drop []*list.Element
	for key, el := range t.entries {
		if strings.HasPrefix(key, prefix) {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		e := el.Value.(*tierEntry)
		t.lru.Remove(el)
		delete(t.entries, e.key)
		t.bytes -= e.part.Bytes
	}
	for fk := range t.filters {
		if strings.HasPrefix(fk, prefix) {
			delete(t.filters, fk)
		}
	}
	t.mu.Unlock()
	if len(drop) > 0 {
		t.reg.Inc("serve.memtier.invalidations", int64(len(drop)))
	}
}

// Lookup returns the partition when resident, touching LRU order — the
// worker executor's fast path, checked before it assembles blocks.
func (t *MemTier) Lookup(file string, epoch int64, partition string) (*ops.LocalPartition, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.entries[tierKey(file, epoch, partition)]
	if !ok {
		return nil, false
	}
	t.lru.MoveToFront(el)
	t.reg.Inc("serve.memtier.hits", 1)
	return el.Value.(*tierEntry).part, true
}

// PinPartition pins a split without a bitmap filter: the worker
// executor's entry point, where pruning already happened on the master.
func (t *MemTier) PinPartition(file string, epoch int64, sp *mapreduce.Split) (*ops.LocalPartition, error) {
	return t.pin(file, epoch, nil, sp)
}

// DropStale drops every pinned partition and filter of the file whose
// epoch is older than epoch — the heartbeat-driven half of cross-worker
// invalidation (the master's heartbeat reply carries current epochs).
func (t *MemTier) DropStale(file string, epoch int64) {
	prefix := file + "@"
	stale := func(key string) bool {
		rest, ok := strings.CutPrefix(key, prefix)
		if !ok {
			return false
		}
		if i := strings.IndexByte(rest, '|'); i >= 0 {
			rest = rest[:i]
		}
		e, err := strconv.ParseInt(rest, 10, 64)
		return err == nil && e < epoch
	}
	t.mu.Lock()
	var drop []*list.Element
	for key, el := range t.entries {
		if stale(key) {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		e := el.Value.(*tierEntry)
		t.lru.Remove(el)
		delete(t.entries, e.key)
		t.bytes -= e.part.Bytes
	}
	for fk := range t.filters {
		if stale(fk) {
			delete(t.filters, fk)
		}
	}
	t.mu.Unlock()
	if len(drop) > 0 {
		t.reg.Inc("serve.memtier.invalidations", int64(len(drop)))
	}
}

// Pinned reports whether the partition is currently resident (without
// touching LRU order — the planner peeks, it doesn't use).
func (t *MemTier) Pinned(file string, epoch int64, partition string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.entries[tierKey(file, epoch, partition)]
	return ok
}

// Stats returns the pinned partition count and byte footprint.
func (t *MemTier) Stats() (partitions int, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len(), t.bytes
}

// tierSource adapts the tier to ops.LocalSource for one file generation.
type tierSource struct {
	t     *MemTier
	file  string
	epoch int64
	sf    *sindex.SFilter
}

func (src *tierSource) Pin(sp *mapreduce.Split) (*ops.LocalPartition, error) {
	return src.t.pin(src.file, src.epoch, src.sf, sp)
}

func (src *tierSource) Filter() *sindex.SFilter { return src.sf }

var _ ops.LocalSource = (*tierSource)(nil)
