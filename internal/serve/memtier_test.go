package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

// counterValue reads a counter from the serving registry snapshot.
func counterValue(s *Server, name string) int64 {
	return s.Metrics().Snapshot().Counters[name]
}

// TestMemTierEvictionBudget: a budget far below the file's footprint
// forces LRU eviction on every new pin, yet answers stay correct and the
// tier's byte accounting never exceeds budget (modulo the single newest
// entry, which is always allowed to stay).
func TestMemTierEvictionBudget(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{CacheSize: -1, MemTierBytes: 4 << 10, Planner: PlannerLocal})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oracleSrv := New(sys, Config{CacheSize: -1, MemTierBytes: -1, Planner: PlannerMapReduce})
	ots := httptest.NewServer(oracleSrv.Handler())
	defer ots.Close()

	queries := []string{
		"/rangequery?file=pts1&rect=0,0,2500,2500",
		"/rangequery?file=pts1&rect=7500,7500,10000,10000",
		"/rangequery?file=pts1&rect=0,7500,2500,10000",
		"/knn?file=pts1&point=9000,1000&k=15",
		"/rangequery?file=pts1&rect=0,0,2500,2500",
	}
	for _, q := range queries {
		code, body, _ := fetch(t, ts.Client(), ts.URL+q)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, code, body)
		}
		_, want, _ := fetch(t, ots.Client(), ots.URL+q)
		if !bytes.Equal(body, want) {
			t.Fatalf("%s: local body under eviction pressure != mapreduce oracle", q)
		}
		parts, bytesPinned := srv.mt.Stats()
		if parts > 1 && bytesPinned > 4<<10 {
			t.Fatalf("tier holds %d parts / %d bytes, budget 4096", parts, bytesPinned)
		}
	}
	if evs := counterValue(srv, "serve.memtier.evictions"); evs == 0 {
		t.Error("no evictions recorded under a 4KiB budget")
	}
}

// TestMemTierEpochInvalidation: mutating a file must (a) eagerly drop its
// pinned partitions via the DFS epoch hook and (b) never let a stale pin
// answer for the new epoch — fresh queries see the new data.
func TestMemTierEpochInvalidation(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 2048, Workers: 4, Seed: 7})
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Clustered, 800, area, 5)
	if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, Config{CacheSize: -1, Planner: PlannerLocal})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const q = "/rangequery?file=pts&rect=0,0,1000,1000"
	code, body1, _ := fetch(t, ts.Client(), ts.URL+q)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if parts, _ := srv.mt.Stats(); parts == 0 {
		t.Fatal("query pinned nothing")
	}

	// Rewrite the file with one extra point: every mutation stamps a new
	// epoch, and the hook drops the pins mid-write.
	pts2 := append(append([]geom.Point{}, pts...), geom.Pt(123.5, 456.5))
	if _, err := sys.LoadPoints("pts", pts2, sindex.STR); err != nil {
		t.Fatal(err)
	}
	if parts, bytesPinned := srv.mt.Stats(); parts != 0 || bytesPinned != 0 {
		t.Fatalf("after rewrite: %d partitions / %d bytes still pinned", parts, bytesPinned)
	}
	if inv := counterValue(srv, "serve.memtier.invalidations"); inv == 0 {
		t.Error("no invalidations recorded")
	}

	_, body2, _ := fetch(t, ts.Client(), ts.URL+q)
	if bytes.Equal(body1, body2) {
		t.Fatal("post-rewrite response identical to pre-rewrite response")
	}
	if !bytes.Contains(body2, []byte(`{"x":123.5,"y":456.5}`)) {
		t.Fatalf("post-rewrite response misses the new point: %s", body2)
	}
}

// TestMemTierEvictionEpochInterleaving races concurrent query waves (under
// a budget small enough to force eviction churn and with concurrent direct
// invalidations) against serial epoch bumps between waves. Every response
// of every wave must match that epoch's MapReduce oracle. Run under -race
// this exercises pin/evict/invalidate interleavings end to end.
func TestMemTierEvictionEpochInterleaving(t *testing.T) {
	sys := core.New(core.Config{BlockSize: 1024, Workers: 4, Seed: 9})
	area := geom.NewRect(0, 0, 1000, 1000)
	base := datagen.Points(datagen.Clustered, 900, area, 31)
	load := func(extra int) {
		pts := append([]geom.Point{}, base...)
		for i := 0; i < extra; i++ {
			pts = append(pts, geom.Pt(float64(i)+0.25, float64(i)+0.75))
		}
		if _, err := sys.LoadPoints("pts", pts, sindex.QuadTree); err != nil {
			t.Fatal(err)
		}
	}
	load(0)

	srv := New(sys, Config{CacheSize: -1, MemTierBytes: 8 << 10, Planner: PlannerLocal, MaxInFlight: 4, QueueDepth: 1024, JobDeadline: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// The oracle server is built per epoch below; tier off, forced jobs.
	queries := []string{
		"/rangequery?file=pts&rect=0,0,400,400",
		"/rangequery?file=pts&rect=600,600,1000,1000",
		"/rangequery?file=pts&rect=0,600,400,1000",
		"/rangequery?file=pts&rect=0,0,1000,1000",
		"/knn?file=pts&point=100,900&k=12",
		"/knn?file=pts&point=0.5,0.5&k=7",
	}

	for wave := 0; wave < 3; wave++ {
		oracleSrv := New(sys, Config{CacheSize: -1, MemTierBytes: -1, Planner: PlannerMapReduce, MaxInFlight: 4, QueueDepth: 1024, JobDeadline: 30 * time.Second})
		ots := httptest.NewServer(oracleSrv.Handler())
		oracle := make(map[string][]byte, len(queries))
		for _, q := range queries {
			code, body, _ := fetch(t, ots.Client(), ots.URL+q)
			if code != http.StatusOK {
				t.Fatalf("wave %d oracle %s: status %d: %s", wave, q, code, body)
			}
			oracle[q] = body
		}
		ots.Close()
		// The oracle server installed its (no-op) view of the epoch hook;
		// rebind the tier server's hook for the next mutation.
		sys.FS().SetEpochHook(func(name string, _ int64) { srv.mt.Invalidate(name) })

		const repeats = 4
		var wg sync.WaitGroup
		errs := make(chan error, len(queries)*repeats)
		for rep := 0; rep < repeats; rep++ {
			for _, q := range queries {
				wg.Add(1)
				go func(q string) {
					defer wg.Done()
					code, body, _ := fetch(t, ts.Client(), ts.URL+q)
					if code != http.StatusOK {
						errs <- errf("wave %d %s: status %d", wave, q, code)
						return
					}
					if !bytes.Equal(body, oracle[q]) {
						errs <- errf("wave %d %s: body != oracle", wave, q)
					}
				}(q)
			}
		}
		// Concurrent direct invalidations stress pin-vs-drop interleaving
		// (the epoch itself is unchanged, so answers are unaffected).
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.mt.Invalidate("pts")
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if t.Failed() {
			t.FailNow()
		}
		// Serial epoch bump between waves (the DFS has a single-writer
		// model): the hook must leave the tier empty.
		load(wave + 1)
		if parts, _ := srv.mt.Stats(); parts != 0 {
			t.Fatalf("wave %d: %d partitions survived the epoch bump", wave, parts)
		}
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
