package serve

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

// newServeSystem stands up a system with the serving test corpus: two
// indexed point files under different techniques plus two tessellated
// region files for the join endpoint.
func newServeSystem(t *testing.T) *core.System {
	t.Helper()
	sys := core.New(core.Config{BlockSize: 2048, Workers: 4, Seed: 7})
	area := geom.NewRect(0, 0, 10_000, 10_000)
	if _, err := sys.LoadPoints("pts1", datagen.Points(datagen.Clustered, 2500, area, 11), sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadPoints("pts2", datagen.Points(datagen.Uniform, 2000, area, 12), sindex.QuadTree); err != nil {
		t.Fatal(err)
	}
	toRegions := func(pgs []geom.Polygon) []geom.Region {
		out := make([]geom.Region, len(pgs))
		for i, pg := range pgs {
			out[i] = geom.RegionOf(pg)
		}
		return out
	}
	if _, err := sys.LoadRegions("a", toRegions(datagen.Tessellation(5, 5, area, 3)), sindex.Grid); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LoadRegions("b", toRegions(datagen.Tessellation(4, 4, area, 4)), sindex.Grid); err != nil {
		t.Fatal(err)
	}
	return sys
}

// serveQueries is the mixed workload: range, kNN, join and plot requests
// over all four files, several of them touching overlapping extents so
// concurrent jobs contend on the same blocks and local indexes.
func serveQueries() []string {
	var qs []string
	for _, file := range []string{"pts1", "pts2"} {
		qs = append(qs,
			"/rangequery?file="+file+"&rect=1000,1000,6000,6000",
			"/rangequery?file="+file+"&rect=2500,2500,7500,7500",
			"/rangequery?file="+file+"&rect=0,0,10000,10000",
			"/knn?file="+file+"&point=5000,5000&k=10",
			"/knn?file="+file+"&point=1234,8765&k=25",
		)
	}
	qs = append(qs,
		"/join?left=a&right=b",
		"/join?left=b&right=a",
		"/plot?file=pts1&width=64&height=64",
		"/plot?file=pts2&width=48&height=48",
	)
	return qs
}

// fetch issues one GET and returns status, body and the X-Cache header.
func fetch(t *testing.T, client *http.Client, url string) (int, []byte, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Cache")
}

// TestServeConcurrentOracle is the core serving-layer test: at least 64
// overlapping HTTP queries (mixed kinds, mixed files, mixed cache state)
// race against one shared cluster, and every single response must be
// byte-identical to the answer computed serially beforehand. Run under
// -race this also shakes out data races across the admission controller,
// slot pool, result cache and block caches.
func TestServeConcurrentOracle(t *testing.T) {
	sys := newServeSystem(t)
	queries := serveQueries()

	// Phase 1: serial oracles through an uncached server, one at a time —
	// memory tier off and planner forced to MapReduce, so the concurrent
	// servers below (default tier + auto planner) are checked across
	// engines: any local-path answer must be byte-identical to the
	// MapReduce oracle.
	oracleSrv := New(sys, Config{CacheSize: -1, MaxInFlight: 1, QueueDepth: 1, MemTierBytes: -1, Planner: PlannerMapReduce})
	ots := httptest.NewServer(oracleSrv.Handler())
	oracle := make(map[string][]byte, len(queries))
	for _, q := range queries {
		code, body, _ := fetch(t, ots.Client(), ots.URL+q)
		if code != http.StatusOK {
			t.Fatalf("oracle %s: status %d: %s", q, code, body)
		}
		oracle[q] = body
	}
	ots.Close()

	for _, tc := range []struct {
		name      string
		cacheSize int
	}{
		{name: "uncached", cacheSize: -1},
		{name: "cached", cacheSize: 128},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(sys, Config{
				CacheSize:   tc.cacheSize,
				MaxInFlight: 4,
				QueueDepth:  1024,
				JobDeadline: 30 * time.Second,
			})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// Phase 2: the same queries, repeated and shuffled, fired all at
			// once. 5 repeats of 14 queries = 70 concurrent requests.
			const repeats = 5
			var workload []string
			for i := 0; i < repeats; i++ {
				workload = append(workload, queries...)
			}
			rng := rand.New(rand.NewSource(99))
			rng.Shuffle(len(workload), func(i, j int) { workload[i], workload[j] = workload[j], workload[i] })
			if len(workload) < 64 {
				t.Fatalf("workload has %d requests, want >= 64", len(workload))
			}

			errs := make([]error, len(workload))
			var wg sync.WaitGroup
			for i, q := range workload {
				wg.Add(1)
				go func(i int, q string) {
					defer wg.Done()
					resp, err := ts.Client().Get(ts.URL + q)
					if err != nil {
						errs[i] = err
						return
					}
					defer resp.Body.Close()
					body, err := io.ReadAll(resp.Body)
					if err != nil {
						errs[i] = err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs[i] = fmt.Errorf("%s: status %d: %s", q, resp.StatusCode, body)
						return
					}
					if want := oracle[q]; string(body) != string(want) {
						errs[i] = fmt.Errorf("%s: body diverged from serial oracle\n got: %.200s\nwant: %.200s", q, body, want)
					}
				}(i, q)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Error(err)
				}
			}

			if tc.cacheSize > 0 {
				// A warm re-request must hit and still be byte-identical
				// (X-Cache is the only permitted difference). The concurrent
				// phase itself may see anywhere from 0 to 56 hits — all
				// duplicates can probe before the first Put lands — so only
				// this post-quiescence hit is deterministic.
				q := queries[0]
				code, body, cacheHdr := fetch(t, ts.Client(), ts.URL+q)
				if code != http.StatusOK || cacheHdr != "hit" {
					t.Fatalf("expected warm hit for %s, got status %d X-Cache=%q", q, code, cacheHdr)
				}
				if string(body) != string(oracle[q]) {
					t.Errorf("cache hit body diverged from oracle for %s", q)
				}
			}
		})
	}
}

// TestServeGracefulDrain: after Shutdown starts, healthz flips to 503,
// in-flight queries still complete correctly, and new jobs are refused
// with 503 rather than hanging.
func TestServeGracefulDrain(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{CacheSize: -1, MaxInFlight: 2, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := "/rangequery?file=pts1&rect=1000,1000,6000,6000"
	_, want, _ := fetch(t, ts.Client(), ts.URL+q)

	// Launch a burst of queries, then shut down while they are in flight.
	const n = 12
	type result struct {
		code int
		body []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := fetch(t, ts.Client(), ts.URL+q)
			results[i] = result{code: code, body: body}
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	for i, r := range results {
		switch r.code {
		case http.StatusOK:
			if string(r.body) != string(want) {
				t.Errorf("request %d completed during drain with wrong body", i)
			}
		case http.StatusServiceUnavailable:
			// Refused after drain began — acceptable.
		default:
			t.Errorf("request %d: status %d: %s", i, r.code, r.body)
		}
	}

	if code, body, _ := fetch(t, ts.Client(), ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: status %d body %q, want 503", code, body)
	}
	if code, _, _ := fetch(t, ts.Client(), ts.URL+q); code != http.StatusServiceUnavailable {
		t.Errorf("query after drain: status %d, want 503", code)
	}
}

// TestServeErrors pins the error mapping: bad parameters are 400, a
// missing file is 404, both with deterministic JSON bodies.
func TestServeErrors(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		url  string
		code int
	}{
		{"/rangequery?file=pts1&rect=1,2,3", http.StatusBadRequest},
		{"/rangequery?rect=1,2,3,4", http.StatusBadRequest},
		{"/rangequery?file=nope&rect=1,2,3,4", http.StatusNotFound},
		{"/knn?file=pts1&point=5,5&k=0", http.StatusBadRequest},
		{"/knn?file=pts1&point=oops&k=3", http.StatusBadRequest},
		{"/join?left=a", http.StatusBadRequest},
		{"/join?left=a&right=nope", http.StatusNotFound},
		{"/plot?file=pts1&width=-3", http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body, _ := fetch(t, ts.Client(), ts.URL+tc.url)
		if code != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.url, code, body, tc.code)
		}
	}
}

// TestServeTempOutputsCleaned: query outputs are per-request temporaries
// and must not accumulate in the DFS.
func TestServeTempOutputsCleaned(t *testing.T) {
	sys := newServeSystem(t)
	srv := New(sys, Config{CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := len(sys.FS().List())
	for _, q := range []string{
		"/rangequery?file=pts1&rect=1000,1000,6000,6000",
		"/knn?file=pts1&point=5000,5000&k=5",
		"/join?left=a&right=b",
		"/plot?file=pts2&width=32&height=32",
	} {
		if code, body, _ := fetch(t, ts.Client(), ts.URL+q); code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, code, body)
		}
	}
	if after := len(sys.FS().List()); after != before {
		t.Errorf("DFS grew from %d to %d files; temporary query outputs leaked: %v", before, after, sys.FS().List())
	}
}
