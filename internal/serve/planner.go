package serve

import (
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/ops"
)

// Planner modes for Config.Planner.
const (
	// PlannerAuto routes each query from index statistics and estimated
	// selectivity: selective queries over few partitions run in-process
	// against the memory tier, everything else runs as a MapReduce job.
	PlannerAuto = "auto"
	// PlannerLocal forces the in-memory engine (MapReduce still serves
	// heap files and the operations with no local engine).
	PlannerLocal = "local"
	// PlannerMapReduce forces the MapReduce engine.
	PlannerMapReduce = "mapreduce"
	// PlannerSharded scatters candidate partitions to the workers holding
	// their replicas (rendezvous-first, then any holder, then master-local
	// execution) and gathers the sorted fragments into the same canonical
	// body the local engine builds. Heap files — which have no partitions
	// to scatter — fall through to MapReduce.
	PlannerSharded = "sharded"
)

// ValidPlanner reports whether mode names a planner mode ("" = auto).
func ValidPlanner(mode string) bool {
	switch mode {
	case "", PlannerAuto, PlannerLocal, PlannerMapReduce, PlannerSharded:
		return true
	}
	return false
}

// Planner auto-mode thresholds: a range query runs locally when, after
// cover + bitmap pruning, at most plannerLocalMaxParts partitions remain
// and the estimated records touched (per-partition record count × bitmap
// selectivity) stay under plannerLocalMaxRecords — i.e. when scheduling a
// job would cost more than the scan itself. Already-pinned candidate sets
// waive the record bound: the data is memory-resident either way.
const (
	plannerLocalMaxParts   = 8
	plannerLocalMaxRecords = 8192
)

// execMeta describes how one response body was built, for the X-Engine
// header, the explain report, and the planner counters. Exactly one of
// rep/local is set; shard is set only by the sharded engine (which also
// fills local with its partition accounting).
type execMeta struct {
	engine string // "local", "mapreduce" or "sharded"
	rep    *mapreduce.Report
	local  *ops.LocalStats
	shard  *shardStats
}

// planRange decides the engine for a range query under the given planner
// mode (the per-request engine override or Config.Planner). A non-nil
// source means local execution through it; nil means MapReduce.
func (s *Server) planRange(mode, file string, epoch int64, rect geom.Rect) *tierSource {
	src, f := s.localSource(mode, file, epoch)
	if src == nil {
		return nil
	}
	if mode == PlannerLocal {
		return src
	}
	candidates, pinned := 0, 0
	estRecords := 0.0
	for _, sp := range f.Splits() {
		if !sp.Cover().Intersects(rect) || !src.sf.MayIntersect(sp.Partition, rect) {
			continue
		}
		candidates++
		estRecords += float64(sp.NumRecords()) * src.sf.EstimateFraction(sp.Partition, rect)
		if s.mt.Pinned(file, epoch, sp.Partition) {
			pinned++
		}
	}
	if candidates > plannerLocalMaxParts {
		return nil
	}
	if estRecords <= plannerLocalMaxRecords || pinned == candidates {
		return src
	}
	return nil
}

// planKNN decides the engine for a kNN query. The kNN protocol is
// selective by construction (round one touches a single partition, round
// two only the correctness circle), so any indexed file runs locally when
// the tier is on.
func (s *Server) planKNN(mode, file string, epoch int64) *tierSource {
	src, _ := s.localSource(mode, file, epoch)
	return src
}

// localSource returns the memory-tier source for the file generation, or
// (nil, nil) when local execution is impossible (tier disabled, planner
// forced to MapReduce, file missing or unindexed).
func (s *Server) localSource(mode, file string, epoch int64) (*tierSource, *core.IndexedFile) {
	if s.mt == nil || mode == PlannerMapReduce {
		return nil, nil
	}
	f, err := s.sys.Open(file)
	if err != nil || f.Index == nil {
		return nil, nil
	}
	return s.mt.Source(file, epoch, f.Index), f
}
