package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialhadoop/internal/geom"
)

func randEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		es[i] = Entry{
			MBR: geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10),
			ID:  i,
		}
	}
	return es
}

func linearSearch(es []Entry, q geom.Rect) []int {
	var out []int
	for _, e := range es {
		if e.MBR.Intersects(q) {
			out = append(out, e.ID)
		}
	}
	return out
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 100, 2000} {
		es := randEntries(rng, n)
		tr := Bulk(es, 8)
		if tr.Len() != n {
			t.Fatalf("len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 30; q++ {
			x, y := rng.Float64()*1000, rng.Float64()*1000
			query := geom.NewRect(x, y, x+rng.Float64()*200, y+rng.Float64()*200)
			got := tr.Search(query, nil)
			want := linearSearch(es, query)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d: got %d results, want %d", n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d: result %d = %d, want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNearestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := BulkPoints(pts, 8)
	for q := 0; q < 20; q++ {
		query := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(10)
		got := tr.Nearest(query, k)
		if len(got) != k {
			t.Fatalf("got %d neighbours, want %d", len(got), k)
		}
		dists := make([]float64, len(pts))
		for i, p := range pts {
			dists[i] = p.Dist(query)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if diff := nb.Dist - dists[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("neighbour %d dist %g, want %g", i, nb.Dist, dists[i])
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatal("neighbours not in increasing order")
			}
		}
	}
}

func TestNearestMoreThanAvailable(t *testing.T) {
	tr := BulkPoints([]geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}, 4)
	got := tr.Nearest(geom.Pt(0, 0), 10)
	if len(got) != 2 {
		t.Fatalf("got %d, want 2", len(got))
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Bulk(nil, 4)
	if got := tr.Search(geom.NewRect(0, 0, 1, 1), nil); got != nil {
		t.Errorf("search on empty = %v", got)
	}
	if got := tr.Nearest(geom.Pt(0, 0), 3); got != nil {
		t.Errorf("nearest on empty = %v", got)
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("bounds of empty tree should be empty")
	}
}

func TestVisitEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	es := randEntries(rng, 300)
	tr := Bulk(es, 8)
	count := 0
	tr.Visit(geom.NewRect(0, 0, 1000, 1000), func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visited %d, want early stop at 5", count)
	}
}

// TestNearestWithTiesCompleteness: the tie-complete candidate set must hold
// exactly every point whose distance is <= the k-th smallest distance — no
// matter how ties were packed into leaves. A grid of duplicated coordinates
// manufactures large tie groups straddling node boundaries.
func TestNearestWithTiesCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for dup := 0; dup < 3; dup++ {
				pts = append(pts, geom.Pt(float64(x), float64(y)))
			}
		}
	}
	for _, fanout := range []int{2, 4, 16} {
		tr := BulkPoints(pts, fanout)
		for q := 0; q < 40; q++ {
			query := geom.Pt(float64(rng.Intn(9)), float64(rng.Intn(9)))
			k := 1 + rng.Intn(len(pts)+4)
			got := tr.NearestWithTies(query, k)
			dists := make([]float64, len(pts))
			for i, p := range pts {
				dists[i] = p.Dist(query)
			}
			sort.Float64s(dists)
			kth := dists[len(dists)-1]
			if k <= len(dists) {
				kth = dists[k-1]
			}
			want := 0
			for _, d := range dists {
				if d <= kth {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("fanout=%d k=%d: got %d candidates, want %d (kth=%g)", fanout, k, len(got), want, kth)
			}
			for i, nb := range got {
				if nb.Dist > kth+1e-12 {
					t.Fatalf("candidate %d dist %g beyond kth %g", i, nb.Dist, kth)
				}
				if i > 0 && nb.Dist < got[i-1].Dist {
					t.Fatal("candidates not in nondecreasing order")
				}
			}
		}
	}
	if got := BulkPoints(pts, 4).NearestWithTies(geom.Pt(0, 0), 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	var empty Tree
	if got := empty.NearestWithTies(geom.Pt(0, 0), 3); got != nil {
		t.Fatal("empty tree must return nil")
	}
}
