// Package rtree implements the local (per-partition) index of
// SpatialHadoop's two-level indexing scheme: an R-tree bulk-loaded with the
// Sort-Tile-Recursive algorithm. Local indexes organize the records inside
// one partition and serve range and nearest-neighbour queries without
// scanning every record.
package rtree

import (
	"container/heap"
	"math"
	"sort"

	"spatialhadoop/internal/geom"
)

// Entry is one indexed item: an MBR plus the caller's record identifier.
type Entry struct {
	MBR geom.Rect
	ID  int
}

// node is an R-tree node; leaves hold entries, internal nodes hold children.
type node struct {
	mbr      geom.Rect
	children []*node
	entries  []Entry
	leaf     bool
}

// Tree is an immutable STR-packed R-tree.
type Tree struct {
	root *node
	size int
	fan  int
}

// DefaultFanout is the node capacity used when none is given.
const DefaultFanout = 16

// Bulk builds a tree over the entries with the given fanout (node
// capacity). The input slice is not retained.
func Bulk(entries []Entry, fanout int) *Tree {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	t := &Tree{size: len(entries), fan: fanout}
	if len(entries) == 0 {
		return t
	}
	// STR packing: sort by center x, slice, sort slices by center y, pack.
	es := make([]Entry, len(entries))
	copy(es, entries)
	leaves := packLeaves(es, fanout)
	t.root = packUp(leaves, fanout)
	return t
}

// BulkPoints builds a tree over points, using their slice index as ID.
func BulkPoints(pts []geom.Point, fanout int) *Tree {
	es := make([]Entry, len(pts))
	for i, p := range pts {
		es[i] = Entry{MBR: geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, ID: i}
	}
	return Bulk(es, fanout)
}

func packLeaves(es []Entry, fanout int) []*node {
	sort.Slice(es, func(i, j int) bool { return es[i].MBR.Center().X < es[j].MBR.Center().X })
	nLeaves := (len(es) + fanout - 1) / fanout
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := nSlices * fanout
	var leaves []*node
	for s := 0; s*sliceSize < len(es); s++ {
		lo := s * sliceSize
		hi := lo + sliceSize
		if hi > len(es) {
			hi = len(es)
		}
		slice := es[lo:hi]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].MBR.Center().Y < slice[j].MBR.Center().Y
		})
		for c := 0; c*fanout < len(slice); c++ {
			clo := c * fanout
			chi := clo + fanout
			if chi > len(slice) {
				chi = len(slice)
			}
			n := &node{leaf: true, entries: append([]Entry(nil), slice[clo:chi]...)}
			n.mbr = geom.EmptyRect()
			for _, e := range n.entries {
				n.mbr = n.mbr.Union(e.MBR)
			}
			leaves = append(leaves, n)
		}
	}
	return leaves
}

func packUp(nodes []*node, fanout int) *node {
	for len(nodes) > 1 {
		sort.Slice(nodes, func(i, j int) bool {
			return nodes[i].mbr.Center().X < nodes[j].mbr.Center().X
		})
		var next []*node
		for c := 0; c*fanout < len(nodes); c++ {
			lo := c * fanout
			hi := lo + fanout
			if hi > len(nodes) {
				hi = len(nodes)
			}
			n := &node{children: append([]*node(nil), nodes[lo:hi]...)}
			n.mbr = geom.EmptyRect()
			for _, ch := range n.children {
				n.mbr = n.mbr.Union(ch.mbr)
			}
			next = append(next, n)
		}
		nodes = next
	}
	return nodes[0]
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Bounds returns the MBR of all entries.
func (t *Tree) Bounds() geom.Rect {
	if t.root == nil {
		return geom.EmptyRect()
	}
	return t.root.mbr
}

// Search appends to dst the IDs of all entries whose MBR intersects query
// and returns the extended slice.
func (t *Tree) Search(query geom.Rect, dst []int) []int {
	if t.root == nil {
		return dst
	}
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !n.mbr.Intersects(query) {
			continue
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.MBR.Intersects(query) {
					dst = append(dst, e.ID)
				}
			}
			continue
		}
		stack = append(stack, n.children...)
	}
	return dst
}

// Visit calls fn for every entry whose MBR intersects query, stopping if
// fn returns false.
func (t *Tree) Visit(query geom.Rect, fn func(Entry) bool) {
	if t.root == nil {
		return
	}
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !n.mbr.Intersects(query) {
			continue
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.MBR.Intersects(query) && !fn(e) {
					return
				}
			}
			continue
		}
		stack = append(stack, n.children...)
	}
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	Entry Entry
	Dist  float64
}

// nnItem is a best-first search queue element.
type nnItem struct {
	n    *node
	e    Entry
	leaf bool
	dist float64
}

type nnQueue []nnItem

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Nearest returns the k entries nearest to p in increasing distance order
// (fewer if the tree holds fewer), using best-first search.
func (t *Tree) Nearest(p geom.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := &nnQueue{{n: t.root, dist: t.root.mbr.MinDistPoint(p)}}
	heap.Init(q)
	var out []Neighbor
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(nnItem)
		if it.leaf {
			out = append(out, Neighbor{Entry: it.e, Dist: it.dist})
			continue
		}
		if it.n.leaf {
			for _, e := range it.n.entries {
				heap.Push(q, nnItem{e: e, leaf: true, dist: e.MBR.MinDistPoint(p)})
			}
			continue
		}
		for _, ch := range it.n.children {
			heap.Push(q, nnItem{n: ch, dist: ch.mbr.MinDistPoint(p)})
		}
	}
	return out
}

// NearestWithTies returns the k nearest entries plus every further entry
// whose distance equals the k-th distance exactly. Callers that must pick
// a deterministic top-k independent of tree shape (the kNN map phase and
// the in-memory serving engine feed the same records through differently
// bulk-loaded trees) take the tie-complete candidate set and break ties
// themselves; plain Nearest would resolve ties by heap order, which
// depends on how entries were packed into leaves.
func (t *Tree) NearestWithTies(p geom.Point, k int) []Neighbor {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := &nnQueue{{n: t.root, dist: t.root.mbr.MinDistPoint(p)}}
	heap.Init(q)
	var out []Neighbor
	for q.Len() > 0 {
		// Pop order is nondecreasing in dist, so once k results are in
		// hand anything strictly beyond the k-th distance ends the search;
		// items at exactly that distance are still expanded and kept.
		if len(out) >= k && (*q)[0].dist > out[len(out)-1].Dist {
			break
		}
		it := heap.Pop(q).(nnItem)
		if it.leaf {
			if len(out) >= k && it.dist > out[len(out)-1].Dist {
				break
			}
			out = append(out, Neighbor{Entry: it.e, Dist: it.dist})
			continue
		}
		if it.n.leaf {
			for _, e := range it.n.entries {
				heap.Push(q, nnItem{e: e, leaf: true, dist: e.MBR.MinDistPoint(p)})
			}
			continue
		}
		for _, ch := range it.n.children {
			heap.Push(q, nnItem{n: ch, dist: ch.mbr.MinDistPoint(p)})
		}
	}
	return out
}
