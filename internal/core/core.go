// Package core is the SpatialHadoop system facade: it ties the block file
// system, the MapReduce runtime and the spatial index layer together. It
// provides the spatial file loaders (heap and indexed), the spatial file
// splitter that turns an indexed file into MBR-carrying splits for the
// filter functions, the spatial record reader with cached local (R-tree)
// indexes, and pruning statistics.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/rtree"
	"spatialhadoop/internal/sindex"
)

// System-level metric names (index loads and file-system traffic; per-job
// metrics live in the mapreduce.Report of each run).
const (
	MetricIndexBuildUS      = "sindex.build_us"
	MetricPartitionsCreated = "sindex.partitions.created"
	MetricPartitionsEmpty   = "sindex.partitions.empty"
	MetricPartitionOverflow = "sindex.partitions.overflow"
	MetricPartitionFill     = "sindex.partition.fill"
	GaugePartitionImbalance = "sindex.partition.imbalance"
)

// Config configures a System.
type Config struct {
	// BlockSize is the DFS block capacity in bytes (dfs.DefaultBlockSize
	// if zero).
	BlockSize int64
	// Workers is the number of concurrent worker slots, i.e. the cluster
	// size (default 25, matching the paper's deployment).
	Workers int
	// SampleSize caps the loader's partitioning sample (default 10000).
	SampleSize int
	// Seed drives sampling; loads are deterministic given a seed.
	Seed int64
	// Fault is the seeded chaos plan installed on the cluster (a disabled
	// plan injects nothing). Jobs retry, speculate and re-read through the
	// cluster's fault.RetryPolicy regardless; the plan only adds faults.
	Fault fault.Plan
}

// System is a running SpatialHadoop deployment: one file system and one
// compute cluster.
type System struct {
	fs      *dfs.FileSystem
	cluster *mapreduce.Cluster
	cfg     Config

	// metrics is the system-level registry: index build and fill stats,
	// file-system traffic. Per-job metrics live in each job's Report.
	metrics *obs.Registry

	// hot aggregates per-partition access statistics (scans, prunes,
	// records, matches) across query jobs — the hot-partition telemetry
	// the skew report and a future repartitioner read.
	hot *sindex.Hotness

	// localIndexes caches per-block R-trees, modelling SpatialHadoop's
	// persisted local indexes.
	localIndexes sync.Map // *dfs.Block -> *rtree.Tree
}

// New creates a System.
func New(cfg Config) *System {
	if cfg.Workers <= 0 {
		cfg.Workers = 25
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 10000
	}
	fs := dfs.New(dfs.Config{BlockSize: cfg.BlockSize, DataNodes: cfg.Workers})
	return NewWithFS(cfg, fs)
}

// NewWithFS creates a System over an existing file system — typically one
// reloaded with dfs.LoadDir. Indexed files keep their master attachments,
// so reopened files prune exactly as before.
func NewWithFS(cfg Config, fs *dfs.FileSystem) *System {
	if cfg.Workers <= 0 {
		cfg.Workers = 25
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = 10000
	}
	reg := obs.NewRegistry()
	fs.SetMetrics(reg)
	sys := &System{
		fs:      fs,
		cluster: mapreduce.NewCluster(fs, cfg.Workers),
		cfg:     cfg,
		metrics: reg,
		hot:     sindex.NewHotness(),
	}
	if cfg.Fault.Enabled() {
		sys.cluster.SetFault(cfg.Fault)
	}
	return sys
}

// FS returns the file system.
func (s *System) FS() *dfs.FileSystem { return s.fs }

// Metrics returns the system-level metrics registry (index builds,
// file-system traffic).
func (s *System) Metrics() *obs.Registry { return s.metrics }

// Cluster returns the compute cluster.
func (s *System) Cluster() *mapreduce.Cluster { return s.cluster }

// Hotness returns the system's hot-partition telemetry aggregator.
func (s *System) Hotness() *sindex.Hotness { return s.hot }

// IndexedFile is an open spatially-indexed file: the data blocks plus the
// decoded global index.
type IndexedFile struct {
	Name  string
	File  *dfs.File
	Index *sindex.GlobalIndex
}

// LoadPointsHeap stores points as a heap (non-indexed) file: records are
// written in input order and split into blocks with no spatial awareness —
// the default Hadoop loader of the paper's "Hadoop" algorithm variants.
func (s *System) LoadPointsHeap(name string, pts []geom.Point) error {
	return s.fs.WriteFile(name, geomio.EncodePoints(pts))
}

// LoadRegionsHeap stores regions as a heap file.
func (s *System) LoadRegionsHeap(name string, regions []geom.Region) error {
	recs := make([]string, len(regions))
	for i, rg := range regions {
		recs[i] = geomio.EncodeRegion(rg)
	}
	return s.fs.WriteFile(name, recs)
}

// numCells returns the target partition count for a payload of the given
// encoded size.
func (s *System) numCells(totalBytes int64) int {
	bs := s.fs.BlockSize()
	n := int((totalBytes + bs - 1) / bs)
	if n < 1 {
		n = 1
	}
	return n
}

// samplePoints draws a bounded random sample for index construction.
func (s *System) samplePoints(pts []geom.Point) []geom.Point {
	if len(pts) <= s.cfg.SampleSize {
		return pts
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + 1))
	sample := make([]geom.Point, s.cfg.SampleSize)
	for i := range sample {
		sample[i] = pts[rng.Intn(len(pts))]
	}
	return sample
}

// LoadPoints spatially partitions and stores points with the given
// technique, writing the global index as the file's master attachment.
// This is SpatialHadoop's indexed file loader.
func (s *System) LoadPoints(name string, pts []geom.Point, t sindex.Technique) (*IndexedFile, error) {
	recs := geomio.EncodePoints(pts)
	var totalBytes int64
	for _, r := range recs {
		totalBytes += int64(len(r)) + 1
	}
	space := geom.RectOf(pts)
	if space.IsEmpty() {
		space = geom.NewRect(0, 0, 1, 1)
	}
	// Expand slightly so max-edge points fall strictly inside cells.
	space = space.Buffer(1e-9 * (1 + space.Width() + space.Height()))
	buildStart := time.Now()
	gi := sindex.Build(t, s.samplePoints(pts), space, s.numCells(totalBytes))
	s.recordBuild(time.Since(buildStart), gi)

	byCell := make([][]string, len(gi.Cells))
	for i, p := range pts {
		c := gi.AssignPoint(p)
		byCell[c] = append(byCell[c], recs[i])
		gi.Cells[c].Content = gi.Cells[c].Content.ExpandPoint(p)
	}
	return s.writeIndexed(name, gi, byCell)
}

// LoadRegions spatially partitions and stores regions. With a disjoint
// technique, regions overlapping several cells are replicated to each
// (paper §2.3); consumers deduplicate with the reference-point rule.
func (s *System) LoadRegions(name string, regions []geom.Region, t sindex.Technique) (*IndexedFile, error) {
	recs := make([]string, len(regions))
	centers := make([]geom.Point, len(regions))
	var totalBytes int64
	space := geom.EmptyRect()
	for i, rg := range regions {
		recs[i] = geomio.EncodeRegion(rg)
		totalBytes += int64(len(recs[i])) + 1
		b := rg.Bounds()
		centers[i] = b.Center()
		space = space.Union(b)
	}
	if space.IsEmpty() {
		space = geom.NewRect(0, 0, 1, 1)
	}
	space = space.Buffer(1e-9 * (1 + space.Width() + space.Height()))
	buildStart := time.Now()
	gi := sindex.Build(t, s.samplePoints(centers), space, s.numCells(totalBytes))
	s.recordBuild(time.Since(buildStart), gi)

	byCell := make([][]string, len(gi.Cells))
	for i, rg := range regions {
		b := rg.Bounds()
		for _, c := range gi.AssignRect(b) {
			byCell[c] = append(byCell[c], recs[i])
			gi.Cells[c].Content = gi.Cells[c].Content.Union(b)
		}
	}
	return s.writeIndexed(name, gi, byCell)
}

// recordBuild registers one global index construction with the metrics.
func (s *System) recordBuild(d time.Duration, gi *sindex.GlobalIndex) {
	s.metrics.Observe(MetricIndexBuildUS, float64(d.Microseconds()))
	s.metrics.Inc(MetricPartitionsCreated, int64(len(gi.Cells)))
}

// recordFill registers the post-assignment partition fill statistics.
func (s *System) recordFill(gi *sindex.GlobalIndex, byCell [][]string) {
	perRecs := make([]int, len(byCell))
	perBytes := make([]int64, len(byCell))
	for i, cellRecs := range byCell {
		perRecs[i] = len(cellRecs)
		for _, r := range cellRecs {
			perBytes[i] += int64(len(r)) + 1
		}
		if len(cellRecs) > 0 {
			s.metrics.Observe(MetricPartitionFill, float64(len(cellRecs)))
		}
	}
	ps := gi.Stats(perRecs, perBytes, s.fs.BlockSize())
	s.metrics.Inc(MetricPartitionsEmpty, int64(ps.Empty))
	s.metrics.Inc(MetricPartitionOverflow, int64(ps.Overflowing))
	s.metrics.SetGauge(GaugePartitionImbalance, ps.Imbalance())
}

// writeIndexed writes the partitioned records and the master index.
func (s *System) writeIndexed(name string, gi *sindex.GlobalIndex, byCell [][]string) (*IndexedFile, error) {
	s.recordFill(gi, byCell)
	w, err := s.fs.CreateOrReplace(name)
	if err != nil {
		return nil, err
	}
	for ci, cellRecs := range byCell {
		if len(cellRecs) == 0 {
			continue
		}
		w.SetPartition(gi.Cells[ci].Key())
		for _, r := range cellRecs {
			w.WriteRecord(r)
		}
	}
	w.SetMaster(gi.Encode())
	if err := w.Close(); err != nil {
		return nil, err
	}
	return s.Open(name)
}

// Open opens an indexed file, decoding its master index. Opening a heap
// file returns an IndexedFile with a nil Index.
func (s *System) Open(name string) (*IndexedFile, error) {
	f, err := s.fs.Open(name)
	if err != nil {
		return nil, err
	}
	out := &IndexedFile{Name: name, File: f}
	if len(f.Master) > 0 {
		gi, err := sindex.Decode(f.Master)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		out.Index = gi
	}
	return out, nil
}

// Splits is the spatial file splitter: it returns one split per partition
// of an indexed file, carrying the partition boundary and the minimal
// content MBR so that filter functions can prune without reading records.
// For heap files it degrades to one split per block with no spatial
// metadata, matching plain Hadoop.
func (f *IndexedFile) Splits() []*mapreduce.Split {
	if f.Index == nil {
		var splits []*mapreduce.Split
		for _, b := range f.File.Blocks {
			splits = append(splits, &mapreduce.Split{
				MBR:        geom.WorldRect(),
				ContentMBR: geom.EmptyRect(),
				Blocks:     []*dfs.Block{b},
			})
		}
		return splits
	}
	byKey := make(map[string][]*dfs.Block)
	for _, b := range f.File.Blocks {
		byKey[b.Partition] = append(byKey[b.Partition], b)
	}
	var splits []*mapreduce.Split
	for _, cell := range f.Index.Cells {
		blocks := byKey[cell.Key()]
		if len(blocks) == 0 {
			continue
		}
		splits = append(splits, &mapreduce.Split{
			Partition:  cell.Key(),
			MBR:        cell.Boundary,
			ContentMBR: cell.Content,
			Blocks:     blocks,
		})
	}
	return splits
}

// LocalIndex returns the cached R-tree local index over a block's records
// (points files only). The first request builds the index, modelling the
// local index SpatialHadoop persists alongside each block.
func (s *System) LocalIndex(b *dfs.Block) (*rtree.Tree, error) {
	if t, ok := s.localIndexes.Load(b); ok {
		return t.(*rtree.Tree), nil
	}
	pts, err := b.Points() // served from the block's decode cache
	if err != nil {
		return nil, err
	}
	t := rtree.BulkPoints(pts, rtree.DefaultFanout)
	s.localIndexes.Store(b, t)
	return t, nil
}

// ReadPoints decodes every point record of a file.
func (s *System) ReadPoints(name string) ([]geom.Point, error) {
	return s.ReadPointsCtx(context.Background(), name)
}

// ReadPointsCtx is ReadPoints under a context, so a request trace on the
// context records the underlying DFS read as a span.
func (s *System) ReadPointsCtx(ctx context.Context, name string) ([]geom.Point, error) {
	recs, err := s.fs.ReadAllCtx(ctx, name)
	if err != nil {
		return nil, err
	}
	return geomio.DecodePoints(recs)
}

// ReadRegions decodes every region record of a file.
func (s *System) ReadRegions(name string) ([]geom.Region, error) {
	recs, err := s.fs.ReadAll(name)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Region, len(recs))
	for i, r := range recs {
		rg, err := geomio.DecodeRegion(r)
		if err != nil {
			return nil, err
		}
		out[i] = rg
	}
	return out, nil
}
