package core

import (
	"sort"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/sindex"
)

var loadTechniques = []sindex.Technique{
	sindex.Grid, sindex.STR, sindex.STRPlus, sindex.QuadTree,
	sindex.KDTree, sindex.ZCurve, sindex.Hilbert,
}

// TestLoadPointsConservation checks that indexing loses and duplicates no
// point records for any technique.
func TestLoadPointsConservation(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Clustered, 5000, area, 3)
	want := geomio.EncodePoints(pts)
	sort.Strings(want)
	for _, tech := range loadTechniques {
		sys := New(Config{BlockSize: 8 << 10, Workers: 4, Seed: 1})
		f, err := sys.LoadPoints("pts", pts, tech)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.FS().ReadAll("pts")
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("%v: %d records, want %d", tech, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: record %d mismatch", tech, i)
			}
		}
		if f.Index == nil {
			t.Fatalf("%v: no index", tech)
		}
		if f.Index.Technique != tech {
			t.Fatalf("%v: technique round trip failed", tech)
		}
	}
}

// TestSplitsCoverAllBlocks checks the spatial file splitter assigns every
// block to exactly one split and carries the right metadata.
func TestSplitsCoverAllBlocks(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Uniform, 5000, area, 5)
	sys := New(Config{BlockSize: 4 << 10, Workers: 4, Seed: 1})
	f, err := sys.LoadPoints("pts", pts, sindex.Grid)
	if err != nil {
		t.Fatal(err)
	}
	splits := f.Splits()
	if len(splits) < 2 {
		t.Fatalf("expected several splits, got %d", len(splits))
	}
	nblocks := 0
	for _, s := range splits {
		nblocks += len(s.Blocks)
		// Every record must be inside the partition boundary (grid is
		// disjoint, points are never replicated).
		recPts, err := geomio.DecodePoints(s.Records())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range recPts {
			if !s.MBR.ContainsPoint(p) {
				t.Fatalf("point %v outside partition %v", p, s.MBR)
			}
			if !s.ContentMBR.ContainsPoint(p) {
				t.Fatalf("point %v outside content MBR %v", p, s.ContentMBR)
			}
		}
		if !s.MBR.ContainsRect(s.ContentMBR) {
			t.Fatalf("content MBR %v exceeds boundary %v", s.ContentMBR, s.MBR)
		}
	}
	if nblocks != len(f.File.Blocks) {
		t.Fatalf("splits cover %d blocks, file has %d", nblocks, len(f.File.Blocks))
	}
}

// TestMasterFileRoundTrip checks the index survives the master-file
// encoding when a file is reopened.
func TestMasterFileRoundTrip(t *testing.T) {
	pts := datagen.Points(datagen.Gaussian, 2000, geom.NewRect(0, 0, 500, 500), 7)
	sys := New(Config{BlockSize: 4 << 10, Workers: 2, Seed: 1})
	f1, err := sys.LoadPoints("pts", pts, sindex.STRPlus)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sys.Open("pts")
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Index.Cells) != len(f2.Index.Cells) {
		t.Fatal("cells differ after reopen")
	}
	for i := range f1.Index.Cells {
		if f1.Index.Cells[i] != f2.Index.Cells[i] {
			t.Fatalf("cell %d differs after reopen", i)
		}
	}
}

// TestLoadRegionsReplication checks region loading with a disjoint
// technique replicates boundary-crossing records and the reader sees them.
func TestLoadRegionsReplication(t *testing.T) {
	area := geom.NewRect(0, 0, 400, 400)
	polys := datagen.RandomPolygons(200, 5, 40, area, 9)
	regions := make([]geom.Region, len(polys))
	for i, pg := range polys {
		regions[i] = geom.RegionOf(pg)
	}
	sys := New(Config{BlockSize: 4 << 10, Workers: 4, Seed: 1})
	f, err := sys.LoadRegions("regs", regions, sindex.QuadTree)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, b := range f.File.Blocks {
		total += int64(b.NumRecords())
	}
	if total <= int64(len(regions)) {
		t.Errorf("expected replication to add records: %d stored for %d input", total, len(regions))
	}
	// Distinct records must equal the input set.
	recs, _ := sys.FS().ReadAll("regs")
	distinct := map[string]bool{}
	for _, r := range recs {
		distinct[r] = true
	}
	if len(distinct) != len(regions) {
		t.Errorf("distinct records = %d, want %d", len(distinct), len(regions))
	}
}

func TestLocalIndexCaching(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 1000, geom.NewRect(0, 0, 100, 100), 11)
	sys := New(Config{BlockSize: 4 << 10, Workers: 2, Seed: 1})
	f, err := sys.LoadPoints("pts", pts, sindex.Grid)
	if err != nil {
		t.Fatal(err)
	}
	b := f.File.Blocks[0]
	t1, err := sys.LocalIndex(b)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sys.LocalIndex(b)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("local index not cached")
	}
	if t1.Len() != b.NumRecords() {
		t.Errorf("index holds %d entries, block has %d", t1.Len(), b.NumRecords())
	}
}

// TestPersistedSystemRoundTrip saves a system with an indexed file to disk
// and reloads it; the reopened file must keep its index and records.
func TestPersistedSystemRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pts := datagen.Points(datagen.Clustered, 2000, geom.NewRect(0, 0, 1000, 1000), 17)
	sys := New(Config{BlockSize: 8 << 10, Workers: 4, Seed: 1})
	f1, err := sys.LoadPoints("pts", pts, sindex.QuadTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FS().SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	fs2, err := dfs.LoadDir(dir, dfs.Config{BlockSize: 8 << 10, DataNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	sys2 := NewWithFS(Config{BlockSize: 8 << 10, Workers: 4, Seed: 1}, fs2)
	f2, err := sys2.Open("pts")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Index == nil || len(f2.Index.Cells) != len(f1.Index.Cells) {
		t.Fatal("index lost through persistence")
	}
	got, err := sys2.ReadPoints("pts")
	if err != nil || len(got) != len(pts) {
		t.Fatalf("reloaded %d points, want %d (%v)", len(got), len(pts), err)
	}
	if len(f2.Splits()) != len(f1.Splits()) {
		t.Errorf("splits differ after reload: %d vs %d", len(f2.Splits()), len(f1.Splits()))
	}
}

func TestOpenMissingFile(t *testing.T) {
	sys := New(Config{})
	if _, err := sys.Open("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestReadBackPointsAndRegions(t *testing.T) {
	sys := New(Config{BlockSize: 1 << 10, Workers: 2, Seed: 1})
	pts := datagen.Points(datagen.Uniform, 500, geom.NewRect(0, 0, 10, 10), 13)
	if err := sys.LoadPointsHeap("p", pts); err != nil {
		t.Fatal(err)
	}
	got, err := sys.ReadPoints("p")
	if err != nil || len(got) != len(pts) {
		t.Fatalf("ReadPoints: %d, %v", len(got), err)
	}
	regions := []geom.Region{geom.RegionOf(geom.Poly(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)))}
	if err := sys.LoadRegionsHeap("r", regions); err != nil {
		t.Fatal(err)
	}
	regs, err := sys.ReadRegions("r")
	if err != nil || len(regs) != 1 || regs[0].VertexCount() != 3 {
		t.Fatalf("ReadRegions: %v, %v", regs, err)
	}
}
