package proptest

import (
	"os"
	"path/filepath"

	"spatialhadoop/internal/sindex"
)

// Seed layout: a case seed packs its entire identity — base round, op,
// technique, shape — into one int64, so a single -proptest.seed=N flag
// regenerates the exact failing case: dataset, workload and all.
//
//	seed = base*1_000_000 + opIdx*10_000 + techIdx*100 + shapeIdx

// CaseSeed packs (base, op, tech, shape) into one replayable seed.
func CaseSeed(base int64, opIdx, techIdx, shapeIdx int) int64 {
	return base*1_000_000 + int64(opIdx)*10_000 + int64(techIdx)*100 + int64(shapeIdx)
}

// CaseFromSeed decodes a seed back into its fully generated Case. It is
// total: any int64 yields a valid case (indices are reduced mod the
// catalogue sizes), which lets fuzzers drive it with arbitrary integers.
func CaseFromSeed(seed int64) Case {
	if seed < 0 {
		seed = -seed
	}
	shapeIdx := int(seed%100) % len(Shapes)
	techIdx := int(seed/100%100) % len(Techniques)
	opIdx := int(seed/10_000%100) % len(CheckOrder)
	return GenCase(CheckOrder[opIdx], Techniques[techIdx], Shapes[shapeIdx], seed)
}

// GenCase builds the fully generated Case for one (op, tech, shape, seed)
// combination. Dataset sizes are kept small enough that the brute oracles
// are instant but large enough that the 1 KiB block size forces a genuine
// multi-partition index.
func GenCase(op string, tech sindex.Technique, shape Shape, seed int64) Case {
	c := Case{Op: op, Tech: tech, Shape: shape, Seed: seed}
	const n = 96
	switch op {
	case "range", "knn", "ann", "plot", "skyline", "hull", "closest-pair", "farthest-pair", "serve-planner", "serve-sharded":
		c.Pts = GenPoints(shape, n, seed)
	}
	switch op {
	case "range":
		c.Queries = GenQueryRects(seed)
	case "serve-planner", "serve-sharded":
		c.Queries = GenQueryRects(seed)
		c.KNNs = GenKNNQueries(len(c.Pts), seed)
	case "range-regions":
		c.Left = GenRegions(40, seed)
		c.Queries = GenQueryRects(seed)
	case "knn":
		c.KNNs = GenKNNQueries(len(c.Pts), seed)
	case "join":
		c.Left = GenRegions(28, seed)
		c.Right = GenRegions(28, seed+1)
	case "plot":
		c.Extents = GenPlotExtents(seed)
		c.Width, c.Height = 32, 32
	case "union":
		c.Left = GenRegions(24, seed)
	}
	return c
}

// Failure is one failing property with its minimized counterexample.
type Failure struct {
	Case   Case   // the original failing case
	Msg    string // the original failure message
	Shrunk Case   // the ddmin-minimized case (still failing)
}

// runCheck executes one check with remote-engine cleanup: any runtime a
// Case.System() call started is torn down before returning, so shrink
// probes and matrix sweeps never accumulate live masters.
func runCheck(check Check, c Case) string {
	defer CloseEngines()
	return check(c)
}

// RunCase executes one case; on failure it shrinks the counterexample and
// returns the report, otherwise nil.
func RunCase(c Case) *Failure {
	check := Checks[c.Op]
	run := func(c Case) string { return runCheck(check, c) }
	msg := run(c)
	if msg == "" {
		return nil
	}
	return &Failure{Case: c, Msg: msg, Shrunk: Shrink(c, run)}
}

// Report renders the failure for test logs: what broke, the replayable
// seed one-liner, and a paste-ready repro test with the shrunk literals.
// When PROPTEST_ARTIFACT_DIR is set the report is also written there (the
// CI soak job uploads that directory when it fails).
func (f *Failure) Report() string {
	shrunkMsg := runCheck(Checks[f.Shrunk.Op], f.Shrunk)
	report := sprintf(
		"property %s × %v × %v failed: %s\n\nshrunk to %d points / %d+%d regions: %s\n\nreplay:\n\t%s\n\nrepro test:\n%s",
		f.Case.Op, f.Case.Tech, f.Case.Shape, f.Msg,
		len(f.Shrunk.Pts), len(f.Shrunk.Left), len(f.Shrunk.Right), shrunkMsg,
		ReplayLine(f.Case), ReproSnippet(f.Shrunk, shrunkMsg))
	if dir := os.Getenv("PROPTEST_ARTIFACT_DIR"); dir != "" {
		name := sprintf("proptest-%s-%s-seed%d.txt", identifier(f.Case.Op), identifier(f.Case.Tech.String()), f.Case.Seed)
		if err := os.MkdirAll(dir, 0o755); err == nil {
			_ = os.WriteFile(filepath.Join(dir, name), []byte(report), 0o644)
		}
	}
	return report
}

// RunMatrix runs the full op × technique sweep for one base seed, rotating
// the dataset shape with the (op, tech) index so the shape catalogue is
// covered across the sweep, and returns all (shrunk) failures.
func RunMatrix(base int64) []*Failure {
	var fails []*Failure
	for oi := range CheckOrder {
		for ti := range Techniques {
			shapeIdx := (oi + ti + int(base)) % len(Shapes)
			if f := RunCase(CaseFromSeed(CaseSeed(base, oi, ti, shapeIdx))); f != nil {
				fails = append(fails, f)
			}
		}
	}
	return fails
}

// RunSoakRound runs the complete op × technique × shape cross product for
// one base seed (one soak round).
func RunSoakRound(base int64) []*Failure {
	var fails []*Failure
	for oi := range CheckOrder {
		for ti := range Techniques {
			for si := range Shapes {
				if f := RunCase(CaseFromSeed(CaseSeed(base, oi, ti, si))); f != nil {
					fails = append(fails, f)
				}
			}
		}
	}
	return fails
}
