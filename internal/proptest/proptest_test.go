package proptest_test

import (
	"fmt"
	"testing"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/sindex"
)

// TestPropertyMatrix is the short-mode core of the harness: every
// operation × every technique runs against its brute-force oracle under a
// fixed seed matrix, with the dataset shape rotated over the (op, tech)
// index so the whole shape catalogue is exercised across the sweep.
func TestPropertyMatrix(t *testing.T) {
	bases := []int64{1, 2}
	if testing.Short() {
		bases = bases[:1]
	}
	for _, base := range bases {
		for oi, op := range proptest.CheckOrder {
			for ti, tech := range proptest.Techniques {
				shapeIdx := (oi + ti + int(base)) % len(proptest.Shapes)
				c := proptest.CaseFromSeed(proptest.CaseSeed(base, oi, ti, shapeIdx))
				t.Run(fmt.Sprintf("%s/%v/%v/base%d", op, tech, c.Shape, base), func(t *testing.T) {
					t.Parallel()
					if f := proptest.RunCase(c); f != nil {
						t.Error(f.Report())
					}
				})
			}
		}
	}
}

// TestPropertyReplay re-runs exactly one case from its packed seed — the
// one-liner printed by every failure report. With no seed it is a no-op.
func TestPropertyReplay(t *testing.T) {
	if *proptest.FlagSeed == 0 {
		t.Skip("no -proptest.seed given")
	}
	c := proptest.CaseFromSeed(*proptest.FlagSeed)
	t.Logf("replaying %s × %v × %v (seed %d)", c.Op, c.Tech, c.Shape, c.Seed)
	if f := proptest.RunCase(c); f != nil {
		t.Error(f.Report())
	}
}

// TestPropertySoak runs -proptest.rounds extra full cross-product rounds
// (op × technique × shape), each derived from -proptest.seed. CI's soak
// job passes a time-derived seed; local runs opt in explicitly.
func TestPropertySoak(t *testing.T) {
	rounds := *proptest.FlagRounds
	if rounds == 0 {
		t.Skip("no -proptest.rounds given")
	}
	base := *proptest.FlagSeed
	if base == 0 {
		base = 1
	}
	for r := 0; r < rounds; r++ {
		for _, f := range proptest.RunSoakRound(base + int64(r)) {
			t.Error(f.Report())
		}
		t.Logf("soak round %d/%d (base seed %d) done", r+1, rounds, base+int64(r))
	}
}

// TestInvariantRangeMonotone: growing the query rect can only grow the
// result, for every technique over an adversarial mixture dataset.
func TestInvariantRangeMonotone(t *testing.T) {
	pts := proptest.GenPoints(proptest.ShapeMixture, 120, 31)
	outer := proptest.Space
	mid := geom.NewRect(125, 125, 875, 875)
	inner := geom.NewRect(250, 250, 500, 500)
	for _, tech := range proptest.Techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			if msg := proptest.InvariantRangeMonotone(tech, pts, []geom.Rect{outer, mid, inner}); msg != "" {
				t.Error(msg)
			}
		})
	}
}

// TestInvariantTechniqueIndependent: range, skyline and hull answers must
// be byte-identical across all seven partitioning techniques.
func TestInvariantTechniqueIndependent(t *testing.T) {
	pts := proptest.GenPoints(proptest.ShapeClusters, 110, 37)
	query := geom.NewRect(100, 100, 700, 650)
	cases := []struct {
		op    string
		canon func(tech sindex.Technique) (string, error)
	}{
		{"range", func(tech sindex.Technique) (string, error) {
			sys := proptest.NewSystem(proptest.DefaultWorkers)
			if _, err := sys.LoadPoints("pts", pts, tech); err != nil {
				return "", err
			}
			got, _, err := ops.RangeQueryPoints(sys, "pts", query)
			return proptest.CanonPoints(got), err
		}},
		{"skyline", func(tech sindex.Technique) (string, error) {
			sys := proptest.NewSystem(proptest.DefaultWorkers)
			if _, err := sys.LoadPoints("pts", pts, tech); err != nil {
				return "", err
			}
			got, _, err := cg.SkylineSHadoop(sys, "pts")
			return proptest.CanonPoints(got), err
		}},
		{"hull", func(tech sindex.Technique) (string, error) {
			sys := proptest.NewSystem(proptest.DefaultWorkers)
			if _, err := sys.LoadPoints("pts", pts, tech); err != nil {
				return "", err
			}
			got, _, err := cg.ConvexHullSHadoop(sys, "pts")
			return proptest.CanonPoints(got), err
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op, func(t *testing.T) {
			t.Parallel()
			if msg := proptest.InvariantTechniqueIndependent(tc.op, tc.canon); msg != "" {
				t.Error(msg)
			}
		})
	}
}

// TestInvariantWorkerIndependent: the same query must give the same bytes
// whether the cluster has 1, 2, 4 or 9 workers.
func TestInvariantWorkerIndependent(t *testing.T) {
	pts := proptest.GenPoints(proptest.ShapeUniform, 130, 41)
	query := geom.NewRect(50, 200, 800, 900)
	cases := []struct {
		op    string
		canon func(workers int) (string, error)
	}{
		{"range", func(workers int) (string, error) {
			sys := proptest.NewSystem(workers)
			if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
				return "", err
			}
			got, _, err := ops.RangeQueryPoints(sys, "pts", query)
			return proptest.CanonPoints(got), err
		}},
		{"knn", func(workers int) (string, error) {
			sys := proptest.NewSystem(workers)
			if _, err := sys.LoadPoints("pts", pts, sindex.QuadTree); err != nil {
				return "", err
			}
			got, _, err := ops.KNN(sys, "pts", geom.Pt(400, 400), 7)
			return proptest.CanonPoints(got), err
		}},
		{"skyline", func(workers int) (string, error) {
			sys := proptest.NewSystem(workers)
			if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
				return "", err
			}
			got, _, err := cg.SkylineSHadoop(sys, "pts")
			return proptest.CanonPoints(got), err
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op, func(t *testing.T) {
			t.Parallel()
			if msg := proptest.InvariantWorkerIndependent(tc.op, tc.canon); msg != "" {
				t.Error(msg)
			}
		})
	}
}

// TestInvariantJoinSymmetric: join(A, B) == join(B, A) with sides swapped,
// for every technique.
func TestInvariantJoinSymmetric(t *testing.T) {
	left := proptest.GenRegions(24, 43)
	right := proptest.GenRegions(24, 44)
	for _, tech := range proptest.Techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			if msg := proptest.InvariantJoinSymmetric(tech, left, right); msg != "" {
				t.Error(msg)
			}
		})
	}
}

// TestInvariantIdempotent: the distributed skyline of a skyline (and hull
// of a hull) is a fixed point.
func TestInvariantIdempotent(t *testing.T) {
	pts := proptest.GenPoints(proptest.ShapeMixture, 100, 47)
	distSkyline := func(in []geom.Point) []geom.Point {
		sys := proptest.NewSystem(proptest.DefaultWorkers)
		if _, err := sys.LoadPoints("pts", in, sindex.STRPlus); err != nil {
			t.Fatal(err)
		}
		out, _, err := cg.SkylineSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	distHull := func(in []geom.Point) []geom.Point {
		sys := proptest.NewSystem(proptest.DefaultWorkers)
		if _, err := sys.LoadPoints("pts", in, sindex.STRPlus); err != nil {
			t.Fatal(err)
		}
		out, _, err := cg.ConvexHullSHadoop(sys, "pts")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if msg := proptest.InvariantIdempotent("skyline", distSkyline, pts); msg != "" {
		t.Error(msg)
	}
	if msg := proptest.InvariantIdempotent("hull", distHull, pts); msg != "" {
		t.Error(msg)
	}
}

// TestGeneratorsDeterministic: the whole harness contract rests on
// generation being a pure function of the seed.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, shape := range proptest.Shapes {
		a := proptest.GenPoints(shape, 64, 99)
		b := proptest.GenPoints(shape, 64, 99)
		if proptest.CanonPoints(a) != proptest.CanonPoints(b) {
			t.Errorf("GenPoints(%v) not deterministic", shape)
		}
		if len(a) != 64 {
			t.Errorf("GenPoints(%v) returned %d points, want 64", shape, len(a))
		}
		for _, p := range a {
			if !proptest.Space.Buffer(1).ContainsPoint(p) {
				t.Errorf("GenPoints(%v) produced far-out point %v", shape, p)
			}
		}
	}
	c1 := proptest.CaseFromSeed(1_020_304)
	c2 := proptest.CaseFromSeed(1_020_304)
	if proptest.CanonPoints(c1.Pts) != proptest.CanonPoints(c2.Pts) || c1.Op != c2.Op || c1.Tech != c2.Tech {
		t.Error("CaseFromSeed not deterministic")
	}
}
