package proptest

import (
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// Metamorphic invariants: relations between runs of the system on related
// inputs that must hold even when no oracle predicts either output alone.
// Each returns "" on success or a failure description.

// InvariantRangeMonotone: if inner ⊆ outer then range(inner) ⊆
// range(outer), for a nested chain of query rects over one loaded file.
func InvariantRangeMonotone(tech sindex.Technique, pts []geom.Point, chain []geom.Rect) string {
	if len(pts) == 0 || len(chain) < 2 {
		return ""
	}
	sys := NewSystem(DefaultWorkers)
	if _, err := sys.LoadPoints("pts", pts, tech); err != nil {
		return sprintf("load: %v", err)
	}
	results := make([][]geom.Point, len(chain))
	for i, q := range chain {
		got, _, err := ops.RangeQueryPoints(sys, "pts", q)
		if err != nil {
			return sprintf("range %v: %v", q, err)
		}
		results[i] = got
	}
	for i := 1; i < len(chain); i++ {
		if !chain[i-1].ContainsRect(chain[i]) {
			return sprintf("invariant misuse: %v does not contain %v", chain[i-1], chain[i])
		}
		if !ContainsAll(results[i-1], results[i]) {
			return sprintf("monotonicity: range(%v) ⊄ range(%v): %d vs %d points",
				chain[i], chain[i-1], len(results[i]), len(results[i-1]))
		}
	}
	return ""
}

// InvariantTechniqueIndependent: the answer of an operation must not
// depend on the partitioning technique. Runs the op's canonical answer
// under every technique and requires byte equality across the sweep.
func InvariantTechniqueIndependent(op string, canon func(tech sindex.Technique) (string, error)) string {
	var base string
	var baseTech sindex.Technique
	for i, tech := range Techniques {
		s, err := canon(tech)
		if err != nil {
			return sprintf("%s under %v: %v", op, tech, err)
		}
		if i == 0 {
			base, baseTech = s, tech
			continue
		}
		if s != base {
			return sprintf("%s: answer under %v differs from %v:\n %v: %q\n %v: %q",
				op, tech, baseTech, tech, s, baseTech, base)
		}
	}
	return ""
}

// InvariantWorkerIndependent: the answer must not depend on the degree of
// parallelism (scheduling independence).
func InvariantWorkerIndependent(op string, canon func(workers int) (string, error)) string {
	var base string
	counts := []int{1, 2, DefaultWorkers, 9}
	for i, w := range counts {
		s, err := canon(w)
		if err != nil {
			return sprintf("%s with %d workers: %v", op, w, err)
		}
		if i == 0 {
			base = s
			continue
		}
		if s != base {
			return sprintf("%s: answer with %d workers differs from %d workers", op, w, counts[0])
		}
	}
	return ""
}

// InvariantRemoteWorkerIndependent: the answer must not depend on how
// many remote workers the distributed runtime runs — 1, 2 or 3 workers
// (different dispatch interleavings, replica placements and shuffle
// paths) must produce byte-identical output.
func InvariantRemoteWorkerIndependent(op string, canon func(remoteWorkers int) (string, error)) string {
	var base string
	counts := []int{1, 2, 3}
	for i, n := range counts {
		s, err := canon(n)
		if err != nil {
			return sprintf("%s with %d remote workers: %v", op, n, err)
		}
		if i == 0 {
			base = s
			continue
		}
		if s != base {
			return sprintf("%s: answer with %d remote workers differs from %d", op, n, counts[0])
		}
	}
	return ""
}

// InvariantShardedWorkerIndependent: a sharded serving answer must not
// depend on the worker pool size or the replication factor — every
// (workers, replication) combination in {1,2,3} × {1,2} (different
// placements, scatter fan-outs and fallback ladders) must produce
// byte-identical output.
func InvariantShardedWorkerIndependent(op string, canon func(workers, replication int) (string, error)) string {
	var base string
	first := true
	for _, n := range []int{1, 2, 3} {
		for _, repl := range []int{1, 2} {
			s, err := canon(n, repl)
			if err != nil {
				return sprintf("%s with %d serve workers replication %d: %v", op, n, repl, err)
			}
			if first {
				base, first = s, false
				continue
			}
			if s != base {
				return sprintf("%s: answer with %d serve workers replication %d differs from 1 worker replication 1", op, n, repl)
			}
		}
	}
	return ""
}

// InvariantJoinSymmetric: join(A, B) must equal join(B, A) with the pair
// sides swapped.
func InvariantJoinSymmetric(tech sindex.Technique, left, right []geom.Region) string {
	if len(left) == 0 || len(right) == 0 {
		return ""
	}
	sys := NewSystem(DefaultWorkers)
	if _, err := sys.LoadRegions("left", left, tech); err != nil {
		return sprintf("load left: %v", err)
	}
	if _, err := sys.LoadRegions("right", right, tech); err != nil {
		return sprintf("load right: %v", err)
	}
	lr, _, err := ops.SpatialJoinIndexed(sys, "left", "right")
	if err != nil {
		return sprintf("join l,r: %v", err)
	}
	rl, _, err := ops.SpatialJoinIndexed(sys, "right", "left")
	if err != nil {
		return sprintf("join r,l: %v", err)
	}
	swapped := make([]ops.JoinPair, len(rl))
	for i, p := range rl {
		swapped[i] = ops.JoinPair{Left: p.Right, Right: p.Left}
	}
	if CanonStrings(CanonJoinPairs(lr)) != CanonStrings(CanonJoinPairs(swapped)) {
		return sprintf("join not symmetric: %d pairs one way, %d the other", len(lr), len(rl))
	}
	return ""
}

// InvariantIdempotent: re-running an idempotent reducer (skyline of a
// skyline, hull of a hull) must be a fixed point.
func InvariantIdempotent(op string, f func([]geom.Point) []geom.Point, pts []geom.Point) string {
	once := f(pts)
	twice := f(once)
	if CanonPoints(once) != CanonPoints(twice) {
		return sprintf("%s not idempotent: %q then %q", op, CanonPoints(once), CanonPoints(twice))
	}
	return ""
}
