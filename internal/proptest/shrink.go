package proptest

import (
	"fmt"
	"strconv"
	"strings"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

// Shrink minimizes a failing Case while check(c) keeps failing: first the
// query workload (usually down to a single query), then the dataset via
// ddmin, then the surviving query's parameters (rect sides pulled inward,
// k reduced). The returned Case fails the same check with — in every
// mutation experiment run against this harness — at most a handful of
// points, small enough to eyeball.
func Shrink(c Case, check Check) Case {
	if check(c) == "" {
		return c // not failing; nothing to shrink
	}
	fails := func(t Case) bool { return check(t) != "" }

	c.Queries = ddmin(c.Queries, func(qs []geom.Rect) bool {
		t := c
		t.Queries = qs
		return fails(t)
	})
	c.KNNs = ddmin(c.KNNs, func(ks []KNNQuery) bool {
		t := c
		t.KNNs = ks
		return fails(t)
	})
	c.Extents = ddmin(c.Extents, func(es []geom.Rect) bool {
		t := c
		t.Extents = es
		return fails(t)
	})

	// Shrink the block size before the dataset: a bug that needs several
	// blocks to express (shuffle, dedup, multi-round protocols) can then be
	// exhibited by a handful of points instead of a block's worth.
	for bs := c.blockSize(); bs > 32; bs /= 2 {
		t := c
		t.BlockSize = bs / 2
		if !fails(t) {
			break
		}
		c.BlockSize = bs / 2
	}

	c.Pts = ddmin(c.Pts, func(ps []geom.Point) bool {
		t := c
		t.Pts = ps
		return fails(t)
	})
	c.Left = ddmin(c.Left, func(rs []geom.Region) bool {
		t := c
		t.Left = rs
		return fails(t)
	})
	c.Right = ddmin(c.Right, func(rs []geom.Region) bool {
		t := c
		t.Right = rs
		return fails(t)
	})

	// Parameter refinement on the surviving workload.
	if len(c.Queries) == 1 {
		c.Queries[0] = shrinkRect(c.Queries[0], func(r geom.Rect) bool {
			t := c
			t.Queries = []geom.Rect{r}
			return fails(t)
		})
	}
	if len(c.KNNs) == 1 {
		c.KNNs[0].K = shrinkInt(c.KNNs[0].K, func(k int) bool {
			t := c
			t.KNNs = []KNNQuery{{Q: c.KNNs[0].Q, K: k}}
			return fails(t)
		})
	}
	return c
}

// ddmin is the classic delta-debugging minimizer: remove progressively
// finer-grained chunks of the input while the predicate keeps failing,
// finishing with single-element removal, so the result is 1-minimal (no
// single element can be dropped).
func ddmin[T any](items []T, fails func([]T) bool) []T {
	if len(items) == 0 || !fails(items) {
		return items
	}
	cur := items
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			trial := make([]T, 0, len(cur)-(end-start))
			trial = append(trial, cur[:start]...)
			trial = append(trial, cur[end:]...)
			if len(trial) > 0 && fails(trial) {
				cur = trial
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}
	return cur
}

// shrinkRect pulls each side of a failing query rect halfway toward the
// center while the predicate keeps failing, converging on a small rect
// around whatever boundary the bug lives on.
func shrinkRect(r geom.Rect, fails func(geom.Rect) bool) geom.Rect {
	for i := 0; i < 32; i++ {
		cx, cy := r.Center().X, r.Center().Y
		improved := false
		for _, trial := range []geom.Rect{
			{MinX: (r.MinX + cx) / 2, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY},
			{MinX: r.MinX, MinY: (r.MinY + cy) / 2, MaxX: r.MaxX, MaxY: r.MaxY},
			{MinX: r.MinX, MinY: r.MinY, MaxX: (r.MaxX + cx) / 2, MaxY: r.MaxY},
			{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: (r.MaxY + cy) / 2},
		} {
			if trial != r && fails(trial) {
				r = trial
				improved = true
				break
			}
		}
		if !improved {
			return r
		}
	}
	return r
}

// shrinkInt lowers a failing k by binary descent.
func shrinkInt(k int, fails func(int) bool) int {
	for k > 0 {
		next := k / 2
		if !fails(next) {
			break
		}
		k = next
	}
	return k
}

// ReplayLine renders the go test one-liner that deterministically re-runs
// the failing round. The seed alone regenerates dataset, workload and
// schedule, so this line is the entire bug report.
func ReplayLine(c Case) string {
	return sprintf("go test ./internal/proptest -run TestPropertyReplay -proptest.seed=%d", c.Seed)
}

// ReproSnippet renders a self-contained Go test function with the shrunk
// case spelled out as literals, ready to paste next to the code under
// test.
func ReproSnippet(c Case, msg string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Reproduces: %s\n", strings.SplitN(msg, "\n", 2)[0])
	fmt.Fprintf(&b, "// Replay: %s\n", ReplayLine(c))
	fmt.Fprintf(&b, "func TestRepro_%s_%s_seed%d(t *testing.T) {\n",
		identifier(c.Op), identifier(c.Tech.String()), c.Seed)
	fmt.Fprintf(&b, "\tc := proptest.Case{\n")
	fmt.Fprintf(&b, "\t\tOp:   %q,\n", c.Op)
	fmt.Fprintf(&b, "\t\tTech: %s,\n", techIdent(c.Tech))
	fmt.Fprintf(&b, "\t\tSeed: %d,\n", c.Seed)
	if c.Workers != 0 {
		fmt.Fprintf(&b, "\t\tWorkers: %d,\n", c.Workers)
	}
	if c.BlockSize != 0 {
		fmt.Fprintf(&b, "\t\tBlockSize: %d,\n", c.BlockSize)
	}
	if len(c.Pts) > 0 {
		fmt.Fprintf(&b, "\t\tPts: %s,\n", pointsLiteral(c.Pts, "\t\t"))
	}
	if len(c.Left) > 0 {
		fmt.Fprintf(&b, "\t\tLeft: %s,\n", regionsLiteral(c.Left, "\t\t"))
	}
	if len(c.Right) > 0 {
		fmt.Fprintf(&b, "\t\tRight: %s,\n", regionsLiteral(c.Right, "\t\t"))
	}
	if len(c.Queries) > 0 {
		fmt.Fprintf(&b, "\t\tQueries: %s,\n", rectsLiteral(c.Queries, "\t\t"))
	}
	for _, kq := range c.KNNs {
		fmt.Fprintf(&b, "\t\tKNNs: []proptest.KNNQuery{{Q: %s, K: %d}},\n", pointLiteral(kq.Q), kq.K)
	}
	if len(c.Extents) > 0 {
		fmt.Fprintf(&b, "\t\tExtents: %s,\n", rectsLiteral(c.Extents, "\t\t"))
		fmt.Fprintf(&b, "\t\tWidth: %d, Height: %d,\n", c.Width, c.Height)
	}
	fmt.Fprintf(&b, "\t}\n")
	fmt.Fprintf(&b, "\tif msg := proptest.Checks[%q](c); msg != \"\" {\n\t\tt.Fatal(msg)\n\t}\n}\n", c.Op)
	return b.String()
}

func identifier(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}

func techIdent(t sindex.Technique) string {
	switch t {
	case sindex.Grid:
		return "sindex.Grid"
	case sindex.STR:
		return "sindex.STR"
	case sindex.STRPlus:
		return "sindex.STRPlus"
	case sindex.QuadTree:
		return "sindex.QuadTree"
	case sindex.KDTree:
		return "sindex.KDTree"
	case sindex.ZCurve:
		return "sindex.ZCurve"
	case sindex.Hilbert:
		return "sindex.Hilbert"
	default:
		return sprintf("sindex.Technique(%d)", int(t))
	}
}

func flit(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func pointLiteral(p geom.Point) string {
	return sprintf("geom.Pt(%s, %s)", flit(p.X), flit(p.Y))
}

func rectLiteral(r geom.Rect) string {
	return sprintf("geom.NewRect(%s, %s, %s, %s)", flit(r.MinX), flit(r.MinY), flit(r.MaxX), flit(r.MaxY))
}

func pointsLiteral(pts []geom.Point, indent string) string {
	var b strings.Builder
	b.WriteString("[]geom.Point{\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s\t%s,\n", indent, pointLiteral(p))
	}
	b.WriteString(indent + "}")
	return b.String()
}

func rectsLiteral(rs []geom.Rect, indent string) string {
	var b strings.Builder
	b.WriteString("[]geom.Rect{\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%s\t%s,\n", indent, rectLiteral(r))
	}
	b.WriteString(indent + "}")
	return b.String()
}

func regionsLiteral(rs []geom.Region, indent string) string {
	var b strings.Builder
	b.WriteString("[]geom.Region{\n")
	for _, rg := range rs {
		fmt.Fprintf(&b, "%s\tgeom.RegionOf(geom.Poly(", indent)
		for i, p := range rg.Rings[0].Vertices {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(pointLiteral(p))
		}
		b.WriteString(")),\n")
	}
	b.WriteString(indent + "}")
	return b.String()
}
