package proptest_test

import (
	"strings"
	"testing"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/sindex"
)

// This file is the harness's detection-power suite. Each "planted bug" is
// a Check wired to a deliberately wrong oracle — the differential image of
// a classic implementation mutation (dropped boundary point, off-by-one
// truncation, flipped comparison, missing axis flip, strict-vs-inclusive
// intersection, skipped zero-distance pair). The real system disagrees
// with the wrong oracle, so the check must fail on some fixed-seed case —
// proving that an implementation carrying the same mutation would be
// caught — and the shrinker must then minimize the counterexample to at
// most 16 points (the bound promised in the acceptance criteria, verified
// here on every run, not just in the one-off mutation experiment).
//
// The complementary experiment — mutating the real source and watching
// TestPropertyMatrix fail — is documented in DESIGN.md ("Planted-bug
// validation") with the shrunk counterexamples it produced.

// plantedBug pairs a buggy-oracle check with the case generator that
// searches for a seed exposing it.
type plantedBug struct {
	name     string
	check    proptest.Check
	gen      func(seed int64) proptest.Case
	maxSeeds int64
}

func plantedBugs() []plantedBug {
	return []plantedBug{
		{
			// A dropped boundary point (e.g. strCells forgetting to extend
			// the last column to the space edge, or exclusive containment
			// on the query's max edges).
			name: "range-boundary-drop",
			gen: func(seed int64) proptest.Case {
				return proptest.GenCase("range", sindex.STR, proptest.ShapeBoundary, seed)
			},
			check: func(c proptest.Case) string {
				sys := c.System()
				if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
					return ""
				}
				for _, q := range c.Queries {
					got, _, err := ops.RangeQueryPoints(sys, "pts", q)
					if err != nil {
						return ""
					}
					var want []geom.Point // buggy: strict max edges
					for _, p := range c.Pts {
						if p.X >= q.MinX && p.X < q.MaxX && p.Y >= q.MinY && p.Y < q.MaxY {
							want = append(want, p)
						}
					}
					if proptest.CanonPoints(got) != proptest.CanonPoints(want) {
						return "planted boundary-drop detected"
					}
				}
				return ""
			},
			maxSeeds: 8,
		},
		{
			// An off-by-one in the kNN reducer's truncation (keeping k-1
			// candidates).
			name: "knn-truncate-offbyone",
			gen: func(seed int64) proptest.Case {
				return proptest.GenCase("knn", sindex.QuadTree, proptest.ShapeUniform, seed)
			},
			check: func(c proptest.Case) string {
				sys := c.System()
				if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
					return ""
				}
				for _, kq := range c.KNNs {
					got, _, err := ops.KNN(sys, "pts", kq.Q, kq.K)
					if err != nil {
						return ""
					}
					want := proptest.OracleKNN(c.Pts, kq.Q, kq.K)
					if len(want) > 0 {
						want = want[:len(want)-1] // buggy: off-by-one truncation
					}
					if len(got) != len(want) {
						return "planted knn off-by-one detected"
					}
				}
				return ""
			},
			maxSeeds: 8,
		},
		{
			// Strict instead of inclusive MBR intersection in the join
			// predicate: record pairs that touch along an edge vanish.
			name: "join-touch-drop",
			gen: func(seed int64) proptest.Case {
				return proptest.GenCase("join", sindex.Grid, proptest.ShapeUniform, seed)
			},
			check: func(c proptest.Case) string {
				sys := c.System()
				if _, err := sys.LoadRegions("left", c.Left, c.Tech); err != nil {
					return ""
				}
				if _, err := sys.LoadRegions("right", c.Right, c.Tech); err != nil {
					return ""
				}
				got, _, err := ops.SpatialJoinIndexed(sys, "left", "right")
				if err != nil {
					return ""
				}
				strict := 0 // buggy oracle: open intersection
				for _, l := range c.Left {
					lb := l.Bounds()
					for _, r := range c.Right {
						rb := r.Bounds()
						if lb.MinX < rb.MaxX && rb.MinX < lb.MaxX && lb.MinY < rb.MaxY && rb.MinY < lb.MaxY {
							strict++
						}
					}
				}
				if len(got) != strict {
					return "planted strict-intersection detected"
				}
				return ""
			},
			maxSeeds: 48,
		},
		{
			// A flipped comparison in the dominance test (skyline axis
			// inverted).
			name: "skyline-flip",
			gen: func(seed int64) proptest.Case {
				return proptest.GenCase("skyline", sindex.KDTree, proptest.ShapeClusters, seed)
			},
			check: func(c proptest.Case) string {
				want := proptest.OracleSkyline(c.Pts)
				var flipped []geom.Point // buggy: Y axis inverted
				for _, p := range c.Pts {
					dominated := false
					for _, q := range c.Pts {
						if q != p && q.X >= p.X && q.Y <= p.Y && (q.X > p.X || q.Y < p.Y) {
							dominated = true
							break
						}
					}
					if !dominated {
						flipped = append(flipped, p)
					}
				}
				if proptest.CanonPoints(want) != proptest.CanonPoints(flipped) {
					return "planted dominance-flip detected"
				}
				return ""
			},
			maxSeeds: 4,
		},
		{
			// Skipping zero-distance pairs in the closest-pair reducer, so
			// exact duplicates are never reported.
			name: "closest-pair-skip-duplicates",
			gen: func(seed int64) proptest.Case {
				return proptest.GenCase("closest-pair", sindex.Grid, proptest.ShapeDuplicates, seed)
			},
			check: func(c proptest.Case) string {
				if len(c.Pts) < 2 {
					return ""
				}
				sys := c.System()
				if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
					return ""
				}
				pair, _, err := cg.ClosestPairSHadoop(sys, "pts")
				if err != nil {
					return ""
				}
				best := -1.0 // buggy oracle: ignores d == 0
				for i := range c.Pts {
					for j := i + 1; j < len(c.Pts); j++ {
						if d := c.Pts[i].Dist(c.Pts[j]); d > 0 && (best < 0 || d < best) {
							best = d
						}
					}
				}
				if best < 0 || pair.Dist != best {
					return "planted skip-duplicates detected"
				}
				return ""
			},
			maxSeeds: 8,
		},
		{
			// A missing Y-axis flip in the plot rasterizer (screen
			// coordinates grow downward; world coordinates grow upward).
			name: "plot-missing-yflip",
			gen: func(seed int64) proptest.Case {
				return proptest.GenCase("plot", sindex.STRPlus, proptest.ShapeClusters, seed)
			},
			check: func(c proptest.Case) string {
				sys := c.System()
				if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
					return ""
				}
				w, h := c.Width, c.Height
				if w == 0 {
					w, h = 32, 32
				}
				for _, extent := range c.Extents {
					img, _, err := ops.Plot(sys, "pts", ops.PlotConfig{Width: w, Height: h, Extent: extent})
					if err != nil {
						return ""
					}
					want := proptest.OraclePlot(c.Pts, extent, w, h)
					for y := 0; y < h; y++ {
						for x := 0; x < w; x++ {
							// buggy: read the oracle unflipped
							if img.GrayAt(x, y).Y != want[(h-1-y)*w+x] {
								return "planted missing-yflip detected"
							}
						}
					}
				}
				return ""
			},
			maxSeeds: 8,
		},
	}
}

// TestPlantedBugsCaughtAndShrunk: every planted bug must be detected
// within its seed budget, and the shrinker must bring the counterexample
// down to at most 16 points (resp. regions), per the acceptance criteria.
func TestPlantedBugsCaughtAndShrunk(t *testing.T) {
	for _, pb := range plantedBugs() {
		pb := pb
		t.Run(pb.name, func(t *testing.T) {
			t.Parallel()
			var failing *proptest.Case
			var msg string
			for seed := int64(1); seed <= pb.maxSeeds; seed++ {
				c := pb.gen(seed)
				if m := pb.check(c); m != "" {
					failing, msg = &c, m
					break
				}
			}
			if failing == nil {
				t.Fatalf("planted bug %s not detected within %d seeds — harness has a blind spot", pb.name, pb.maxSeeds)
			}
			t.Logf("%s: detected (%s), shrinking...", pb.name, msg)
			shrunk := proptest.Shrink(*failing, pb.check)
			if m := pb.check(shrunk); m == "" {
				t.Fatalf("%s: shrunk case no longer fails", pb.name)
			}
			if n := len(shrunk.Pts); n > 16 {
				t.Errorf("%s: shrunk counterexample has %d points, want <= 16", pb.name, n)
			}
			if n := len(shrunk.Left) + len(shrunk.Right); n > 16 {
				t.Errorf("%s: shrunk counterexample has %d regions, want <= 16", pb.name, n)
			}
			t.Logf("%s: shrunk to %d points, %d+%d regions, %d queries, %d knn queries",
				pb.name, len(shrunk.Pts), len(shrunk.Left), len(shrunk.Right), len(shrunk.Queries), len(shrunk.KNNs))
			snippet := proptest.ReproSnippet(shrunk, pb.name)
			if len(snippet) == 0 {
				t.Errorf("%s: empty repro snippet", pb.name)
			}
		})
	}
}

// TestShrinkReporting pins the replay line and repro snippet formats the
// failure reports promise.
func TestShrinkReporting(t *testing.T) {
	c := proptest.Case{
		Op:      "range",
		Tech:    sindex.Grid,
		Seed:    42,
		Pts:     []geom.Point{geom.Pt(1, 2)},
		Queries: []geom.Rect{geom.NewRect(0, 0, 10, 10)},
	}
	line := proptest.ReplayLine(c)
	if want := "go test ./internal/proptest -run TestPropertyReplay -proptest.seed=42"; line != want {
		t.Errorf("ReplayLine = %q, want %q", line, want)
	}
	snippet := proptest.ReproSnippet(c, "boom")
	for _, want := range []string{
		"func TestRepro_range_grid_seed42(t *testing.T)",
		"sindex.Grid",
		"geom.Pt(1, 2)",
		"geom.NewRect(0, 0, 10, 10)",
		`proptest.Checks["range"]`,
		"-proptest.seed=42",
	} {
		if !strings.Contains(snippet, want) {
			t.Errorf("repro snippet missing %q:\n%s", want, snippet)
		}
	}
}
