package proptest

import (
	"math"

	"spatialhadoop/internal/cg"
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/sindex"
)

// Case is one self-contained differential-check input: a dataset, a
// technique, the operation's query workload, and the seed/shape pedigree
// needed to print a replay line. A Case can be executed by any Check and
// minimized by Shrink; each Check builds a fresh system, runs its whole
// workload against the brute oracle and returns "" or a failure message.
type Case struct {
	Op      string
	Tech    sindex.Technique
	Shape   Shape
	Seed    int64
	Workers int
	// BlockSize overrides the DFS block size (0 = DefaultBlockSize). The
	// shrinker halves it when a failure persists at finer partition
	// granularity, because bugs that need multiple blocks to express can
	// then be exhibited with far fewer points.
	BlockSize int
	// Engine selects the execution engine (default EngineInProcess);
	// EngineRemote runs the case's systems under an in-test master with
	// RemoteWorkers goroutine workers and a replicated data plane.
	Engine Engine
	// RemoteWorkers is the remote engine's pool size (0 = DefaultRemoteWorkers).
	RemoteWorkers int

	Pts   []geom.Point  // point-file operations
	Left  []geom.Region // region range / join left / union input
	Right []geom.Region // join right

	Queries       []geom.Rect // range / range-regions workload
	KNNs          []KNNQuery  // knn workload
	Extents       []geom.Rect // plot workload
	Width, Height int         // plot raster size
}

func (c Case) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return DefaultWorkers
}

func (c Case) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return DefaultBlockSize
}

// System stands up the fresh system this case's checks run against.
// Under EngineRemote it also attaches a live master/worker runtime,
// tracked for teardown by CloseEngines.
func (c Case) System() *core.System {
	sys := NewSystemBlock(c.workers(), c.blockSize())
	n := c.RemoteWorkers
	if n <= 0 {
		n = DefaultRemoteWorkers
	}
	switch c.Engine {
	case EngineRemote:
		trackEngine(StartRemoteRuntime(sys, n))
	case EngineSharded:
		trackEngine(StartShardedRuntime(sys, n, 2))
	}
	return sys
}

// Check runs one distributed operation against its brute-force oracle.
type Check func(Case) string

// Checks is the operation catalogue: every entry is swept over every
// technique (with rotating dataset shapes) by the short-mode matrix and
// over the full shape cross product by the soak rounds.
var Checks = map[string]Check{
	"range":         CheckRange,
	"range-regions": CheckRangeRegions,
	"knn":           CheckKNN,
	"join":          CheckJoin,
	"ann":           CheckANN,
	"plot":          CheckPlot,
	"skyline":       CheckSkyline,
	"hull":          CheckHullOp,
	"closest-pair":  CheckClosestPair,
	"farthest-pair": CheckFarthestPair,
	"union":         CheckUnion,
	"serve-planner": CheckServePlanner,
	"serve-sharded": CheckServeSharded,
}

// CheckOrder is the deterministic iteration order of Checks. New
// operations are appended at the END: the op index is packed into replay
// and fuzz-corpus seeds, so reordering would silently change what every
// archived seed decodes to.
var CheckOrder = []string{
	"range", "range-regions", "knn", "join", "ann", "plot",
	"skyline", "hull", "closest-pair", "farthest-pair", "union",
	"serve-planner", "serve-sharded",
}

// loadPoints stands up a fresh system with the case's point file indexed
// under the case's technique.
func (c Case) loadPoints() (*core.System, string) {
	sys := c.System()
	if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
		return nil, sprintf("load pts: %v", err)
	}
	return sys, ""
}

// CheckRange: distributed range query == linear scan, byte for byte, for
// every query rect in the workload.
func CheckRange(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	for _, q := range c.Queries {
		got, _, err := ops.RangeQueryPoints(sys, "pts", q)
		if err != nil {
			return sprintf("range %v: %v", q, err)
		}
		want := OracleRange(c.Pts, q)
		if CanonPoints(got) != CanonPoints(want) {
			return sprintf("range %v: got %d points, oracle %d\n got: %q\nwant: %q",
				q, len(got), len(want), CanonPoints(got), CanonPoints(want))
		}
	}
	return ""
}

// CheckRangeRegions: distributed region range query (with reference-point
// dedup of replicated records) == linear MBR scan.
func CheckRangeRegions(c Case) string {
	if len(c.Left) == 0 {
		return ""
	}
	sys := c.System()
	if _, err := sys.LoadRegions("regs", c.Left, c.Tech); err != nil {
		return sprintf("load regs: %v", err)
	}
	for _, q := range c.Queries {
		got, _, err := ops.RangeQueryRegions(sys, "regs", q)
		if err != nil {
			return sprintf("range-regions %v: %v", q, err)
		}
		want := OracleRangeRegions(c.Left, q)
		if CanonStrings(encodeRegions(got)) != CanonStrings(want) {
			return sprintf("range-regions %v: got %d regions, oracle %d",
				q, len(got), len(want))
		}
	}
	return ""
}

// CheckKNN: distributed two-round kNN == deterministic-tie oracle, by
// count and distance multiset, for every (q, k) in the workload.
func CheckKNN(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	for _, kq := range c.KNNs {
		got, _, err := ops.KNN(sys, "pts", kq.Q, kq.K)
		if err != nil {
			return sprintf("knn q=%v k=%d: %v", kq.Q, kq.K, err)
		}
		want := OracleKNN(c.Pts, kq.Q, kq.K)
		if msg := CompareKNN(got, want, kq.Q, c.Pts); msg != "" {
			return sprintf("knn q=%v k=%d: %s", kq.Q, kq.K, msg)
		}
	}
	return ""
}

// CheckJoin: distributed indexed join == quadratic nested loop, as exact
// record-pair sets.
func CheckJoin(c Case) string {
	if len(c.Left) == 0 || len(c.Right) == 0 {
		return ""
	}
	sys := c.System()
	if _, err := sys.LoadRegions("left", c.Left, c.Tech); err != nil {
		return sprintf("load left: %v", err)
	}
	if _, err := sys.LoadRegions("right", c.Right, c.Tech); err != nil {
		return sprintf("load right: %v", err)
	}
	got, _, err := ops.SpatialJoinIndexed(sys, "left", "right")
	if err != nil {
		return sprintf("join: %v", err)
	}
	gotCanon := CanonStrings(CanonJoinPairs(got))
	wantCanon := CanonStrings(OracleJoin(c.Left, c.Right))
	if gotCanon != wantCanon {
		return sprintf("join: got %d pairs, oracle set differs\n got: %q\nwant: %q",
			len(got), gotCanon, wantCanon)
	}
	return ""
}

// CheckANN: on disjoint indexes distributed ANN == O(n²) scan by distance;
// on overlapping indexes the op must refuse with an error.
func CheckANN(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	got, _, err := ops.AllNearestNeighbors(sys, "pts")
	if !c.Tech.Disjoint() {
		if err == nil {
			return sprintf("ann on overlapping index %v unexpectedly succeeded", c.Tech)
		}
		return ""
	}
	if err != nil {
		return sprintf("ann: %v", err)
	}
	return CompareANN(got, OracleANN(c.Pts))
}

// CheckPlot: distributed plot raster == direct rasterization, byte for
// byte across the whole gray buffer, for every extent in the workload.
func CheckPlot(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w, h = 32, 32
	}
	for _, extent := range c.Extents {
		img, _, err := ops.Plot(sys, "pts", ops.PlotConfig{Width: w, Height: h, Extent: extent})
		if err != nil {
			return sprintf("plot %v: %v", extent, err)
		}
		want := OraclePlot(c.Pts, extent, w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if got := img.GrayAt(x, y).Y; got != want[y*w+x] {
					return sprintf("plot extent=%v %dx%d: pixel (%d,%d) = %d, oracle %d",
						extent, w, h, x, y, got, want[y*w+x])
				}
			}
		}
	}
	return ""
}

// CheckSkyline: distributed skyline (filter + output-sensitive variants)
// == O(n²) dominance scan.
func CheckSkyline(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	want := CanonPoints(OracleSkyline(c.Pts))
	got, _, err := cg.SkylineSHadoop(sys, "pts")
	if err != nil {
		return sprintf("skyline: %v", err)
	}
	if CanonPoints(got) != want {
		return sprintf("skyline: got %q, oracle %q", CanonPoints(got), want)
	}
	osGot, _, err := cg.SkylineOutputSensitive(sys, "pts", true)
	if !c.Tech.Disjoint() {
		if err == nil {
			return sprintf("skyline-os on overlapping index %v unexpectedly succeeded", c.Tech)
		}
		return ""
	}
	if err != nil {
		return sprintf("skyline-os: %v", err)
	}
	if CanonPoints(osGot) != want {
		return sprintf("skyline-os: got %q, oracle %q", CanonPoints(osGot), want)
	}
	return ""
}

// CheckHullOp: distributed hulls (filtered and enhanced) equal the
// single-machine hull exactly, and independently satisfy the structural
// hull definition (convex ring of input points containing every input).
func CheckHullOp(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	single := cg.ConvexHullSingle(c.Pts)
	for _, variant := range []struct {
		name string
		run  func() ([]geom.Point, error)
	}{
		{"hull", func() ([]geom.Point, error) { h, _, err := cg.ConvexHullSHadoop(sys, "pts"); return h, err }},
		{"hull-enhanced", func() ([]geom.Point, error) { h, _, err := cg.ConvexHullEnhanced(sys, "pts"); return h, err }},
	} {
		got, err := variant.run()
		if err != nil {
			return sprintf("%s: %v", variant.name, err)
		}
		if msg := CheckHull(got, c.Pts); msg != "" {
			return sprintf("%s: %s", variant.name, msg)
		}
		if CanonPoints(got) != CanonPoints(single) {
			return sprintf("%s: got %q, single-machine %q",
				variant.name, CanonPoints(got), CanonPoints(single))
		}
	}
	return ""
}

// CheckClosestPair: on disjoint indexes the distributed closest pair
// reports the true O(n²) minimum distance between two input points; on
// overlapping indexes the op must refuse.
func CheckClosestPair(c Case) string {
	if len(c.Pts) < 2 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	pair, _, err := cg.ClosestPairSHadoop(sys, "pts")
	if !c.Tech.Disjoint() {
		if err == nil {
			return sprintf("closest-pair on overlapping index %v unexpectedly succeeded", c.Tech)
		}
		return ""
	}
	if err != nil {
		return sprintf("closest-pair: %v", err)
	}
	want, _ := OracleClosestPairDist(c.Pts)
	return comparePair("closest-pair", pair, want, c.Pts)
}

// CheckFarthestPair: the distributed farthest pair reports the true O(n²)
// maximum distance (any indexed technique).
func CheckFarthestPair(c Case) string {
	if len(c.Pts) < 2 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	pair, _, err := cg.FarthestPairSHadoop(sys, "pts")
	if err != nil {
		return sprintf("farthest-pair: %v", err)
	}
	want, _ := OracleFarthestPairDist(c.Pts)
	return comparePair("farthest-pair", pair, want, c.Pts)
}

// comparePair validates a reported point pair: both endpoints must be
// input points, their mutual distance must match the reported distance,
// and the reported distance must equal the oracle extreme (within last-ulp
// tolerance for the Hypot vs Sqrt route difference).
func comparePair(op string, pair geom.PointPair, want float64, pts []geom.Point) string {
	if !ContainsAll(pts, []geom.Point{pair.P}) || !ContainsAll(pts, []geom.Point{pair.Q}) {
		return sprintf("%s: endpoints %v-%v are not input points", op, pair.P, pair.Q)
	}
	if d := pair.P.Dist(pair.Q); !approxEq(d, pair.Dist) {
		return sprintf("%s: reported dist %.17g but endpoints are %.17g apart", op, pair.Dist, d)
	}
	if !approxEq(pair.Dist, want) {
		return sprintf("%s: dist %.17g, oracle %.17g", op, pair.Dist, want)
	}
	return ""
}

// CheckUnion: the distributed union boundary matches the single-machine
// union (equal total boundary length, mutual midpoint coverage) and agrees
// with input-derived membership probes. On disjoint indexes the enhanced
// map-only variant is additionally held to the same boundary.
func CheckUnion(c Case) string {
	if len(c.Left) == 0 {
		return ""
	}
	sys := c.System()
	if _, err := sys.LoadRegions("regs", c.Left, c.Tech); err != nil {
		return sprintf("load regs: %v", err)
	}
	polys := make([]geom.Polygon, len(c.Left))
	for i, rg := range c.Left {
		polys[i] = rg.Rings[0]
	}
	_, singleSegs := cg.UnionSingle(polys)

	region, _, err := cg.UnionSHadoop(sys, "regs")
	if err != nil {
		return sprintf("union: %v", err)
	}
	if msg := compareBoundary("union", region.Edges(), singleSegs); msg != "" {
		return msg
	}
	for _, probe := range OracleUnion(c.Left, c.Seed) {
		if got := region.ContainsPoint(probe.P); got != probe.Inside {
			return sprintf("union: probe %v inside=%v, oracle %v", probe.P, got, probe.Inside)
		}
	}

	segs, _, err := cg.UnionEnhanced(sys, "regs")
	if !c.Tech.Disjoint() {
		if err == nil {
			return sprintf("union-enhanced on overlapping index %v unexpectedly succeeded", c.Tech)
		}
		return ""
	}
	if err != nil {
		return sprintf("union-enhanced: %v", err)
	}
	return compareBoundary("union-enhanced", segs, singleSegs)
}

// compareBoundary checks two union boundaries for geometric equality: same
// total length and every segment midpoint of each lies on the other
// (robust to different segment splitting of the same polyline).
func compareBoundary(op string, got, want []geom.Segment) string {
	lg, lw := geom.TotalLength(got), geom.TotalLength(want)
	if math.Abs(lg-lw) > 1e-6*math.Max(1, math.Max(lg, lw)) {
		return sprintf("%s: boundary length %.17g, single-machine %.17g", op, lg, lw)
	}
	for _, s := range got {
		if !geom.OnAnySegment(s.Midpoint(), want) {
			return sprintf("%s: segment %v not on single-machine boundary", op, s)
		}
	}
	for _, s := range want {
		if !geom.OnAnySegment(s.Midpoint(), got) {
			return sprintf("%s: single-machine segment %v missing from result", op, s)
		}
	}
	return ""
}

func encodeRegions(regions []geom.Region) []string {
	out := make([]string, len(regions))
	for i, rg := range regions {
		out[i] = geomio.EncodeRegion(rg)
	}
	return out
}
