package proptest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"

	"spatialhadoop/internal/serve"
)

// CheckServeSharded is the scatter/gather differential for the sharded
// serving engine: a server forced onto Planner "sharded" — routing every
// candidate partition to the worker holding its replica and gathering the
// fragments — must answer byte-identically (status and body) to a server
// forced onto the local in-memory engine over the same loaded system. The
// case is run under EngineSharded, so the scatters reach real
// serve-capable goroutine workers over RPC; every successful sharded
// response must also carry X-Engine: sharded, proving the fragments did
// come through the scatter path rather than an engine fallback.
func CheckServeSharded(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	c.Engine = EngineSharded
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	shardSrv := httptest.NewServer(serve.New(sys, serve.Config{
		CacheSize: -1, Planner: serve.PlannerSharded,
	}).Handler())
	defer shardSrv.Close()
	oracleSrv := httptest.NewServer(serve.New(sys, serve.Config{
		CacheSize: -1, Planner: serve.PlannerLocal,
	}).Handler())
	defer oracleSrv.Close()

	compare := func(path string, params url.Values) string {
		u := path + "?" + params.Encode()
		sc, sb, seng, err := serveGetEngine(shardSrv.URL + u)
		if err != nil {
			return sprintf("serve-sharded GET %s: %v", u, err)
		}
		oc, ob, err := serveGet(oracleSrv.URL + u)
		if err != nil {
			return sprintf("serve-sharded oracle GET %s: %v", u, err)
		}
		if sc != oc || string(sb) != string(ob) {
			return sprintf("serve-sharded %s: sharded engine (%d, %.200q) != local engine (%d, %.200q)",
				u, sc, sb, oc, ob)
		}
		if sc == http.StatusOK && seng != serve.PlannerSharded {
			return sprintf("serve-sharded %s: X-Engine = %q, want %q", u, seng, serve.PlannerSharded)
		}
		return ""
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range c.Queries {
		params := url.Values{
			"file": {"pts"},
			"rect": {ff(r.MinX) + "," + ff(r.MinY) + "," + ff(r.MaxX) + "," + ff(r.MaxY)},
		}
		if msg := compare("/rangequery", params); msg != "" {
			return msg
		}
	}
	for _, kq := range c.KNNs {
		params := url.Values{
			"file":  {"pts"},
			"point": {ff(kq.Q.X) + "," + ff(kq.Q.Y)},
			"k":     {strconv.Itoa(kq.K)},
		}
		if msg := compare("/knn", params); msg != "" {
			return msg
		}
	}
	return ""
}

// serveGetEngine is serveGet plus the response's X-Engine header.
func serveGetEngine(u string) (int, []byte, string, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, "", err
	}
	return resp.StatusCode, body, resp.Header.Get("X-Engine"), nil
}
