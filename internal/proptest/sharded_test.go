// Sharded-serving property tests: the scatter/gather engine is held to
// byte identity against the in-process local engine across the full
// technique matrix, and to independence from the worker pool size and
// replication factor.
package proptest_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/serve"
	"spatialhadoop/internal/sindex"
)

// TestEngineShardedDifferential: the full differential matrix — range and
// kNN workloads × every Table-1 technique × seeds — through the sharded
// scatter path with real serve-capable workers.
func TestEngineShardedDifferential(t *testing.T) {
	// Sequential: CloseEngines is process-global (see engine_test.go).
	for _, tech := range proptest.Techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				c := proptest.GenCase("serve-sharded", tech, proptest.Shapes[int(seed)%len(proptest.Shapes)], seed)
				if f := proptest.RunCase(c); f != nil {
					t.Fatalf("serve-sharded × %v seed %d:\n%s", tech, seed, f.Report())
				}
			}
		})
	}
}

// shardedWorkload runs the case's range + kNN workload against one HTTP
// server and returns every response, status and body, concatenated.
func shardedWorkload(srv *httptest.Server, c proptest.Case) (string, error) {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var outs []string
	get := func(path string, params url.Values) error {
		resp, err := http.Get(srv.URL + path + "?" + params.Encode())
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		outs = append(outs, fmt.Sprintf("%d %s", resp.StatusCode, body))
		return nil
	}
	for _, r := range c.Queries {
		params := url.Values{
			"file": {"pts"},
			"rect": {ff(r.MinX) + "," + ff(r.MinY) + "," + ff(r.MaxX) + "," + ff(r.MaxY)},
		}
		if err := get("/rangequery", params); err != nil {
			return "", err
		}
	}
	for _, kq := range c.KNNs {
		params := url.Values{
			"file":  {"pts"},
			"point": {ff(kq.Q.X) + "," + ff(kq.Q.Y)},
			"k":     {strconv.Itoa(kq.K)},
		}
		if err := get("/knn", params); err != nil {
			return "", err
		}
	}
	return strings.Join(outs, "\x00"), nil
}

// TestShardedWorkerIndependence: the sharded engine's answers must not
// depend on how many serve workers hold replicas or on the replication
// factor, and every combination must match the in-process local oracle
// byte for byte.
func TestShardedWorkerIndependence(t *testing.T) {
	c := proptest.GenCase("serve-sharded", sindex.STRPlus, proptest.ShapeClusters, 7)

	// In-process oracle: the local engine over the same dataset, no
	// distributed runtime at all.
	oracle := func() string {
		sys := proptest.NewSystemBlock(proptest.DefaultWorkers, proptest.DefaultBlockSize)
		if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerLocal}).Handler())
		defer srv.Close()
		out, err := shardedWorkload(srv, c)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}()

	canon := func(workers, replication int) (string, error) {
		sys := proptest.NewSystemBlock(proptest.DefaultWorkers, proptest.DefaultBlockSize)
		defer proptest.StartShardedRuntime(sys, workers, replication)()
		if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
			return "", err
		}
		srv := httptest.NewServer(serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerSharded}).Handler())
		defer srv.Close()
		out, err := shardedWorkload(srv, c)
		if err != nil {
			return "", err
		}
		if out != oracle {
			return "", fmt.Errorf("sharded answer diverged from in-process oracle")
		}
		return out, nil
	}
	if msg := proptest.InvariantShardedWorkerIndependent("serve-sharded", canon); msg != "" {
		t.Error(msg)
	}
}

// TestShardedExecutesRemotely pins down that the sharded engine really
// routes fragments to worker executors when replica holders exist — the
// byte-identity tests above would also pass if every scatter silently
// fell back to master-local execution.
func TestShardedExecutesRemotely(t *testing.T) {
	c := proptest.GenCase("serve-sharded", sindex.STRPlus, proptest.ShapeUniform, 3)
	sys := proptest.NewSystemBlock(proptest.DefaultWorkers, proptest.DefaultBlockSize)
	defer proptest.StartShardedRuntime(sys, 2, 2)()
	if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
		t.Fatal(err)
	}
	s := serve.New(sys, serve.Config{CacheSize: -1, Planner: serve.PlannerSharded})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if _, err := shardedWorkload(srv, c); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Counters["serve.shard.exec.remote"] == 0 {
		t.Fatalf("no fragment executed on a worker: counters %v", snap.Counters)
	}
}
