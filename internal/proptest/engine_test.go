// Remote-engine property tests: the distributed runtime (in-test master,
// replicated data plane, goroutine workers) is held to the same
// brute-force oracles as the in-process scheduler, to byte identity
// against the in-process answers, and to worker-count independence.
package proptest_test

import (
	"strings"
	"testing"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/ops"
	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/sindex"
)

// remoteOps are the operations whose job kinds execute on workers; the
// rest fall back in process under the remote engine (covered by
// TestEngineRemoteDifferential picking them up identically is trivial).
var remoteOps = []string{"range", "knn", "join"}

// TestEngineRemoteDifferential: the full differential checks — the same
// oracles the in-process matrix runs against — under the remote engine,
// across seeds and techniques.
func TestEngineRemoteDifferential(t *testing.T) {
	// No t.Parallel here: CloseEngines is process-global, so concurrent
	// remote-engine checks would tear down each other's runtimes
	// mid-check (and the jobs would silently fall back in process).
	for _, op := range remoteOps {
		op := op
		t.Run(op, func(t *testing.T) {
			for _, tech := range []sindex.Technique{sindex.STRPlus, sindex.Grid} {
				for seed := int64(1); seed <= 3; seed++ {
					c := proptest.GenCase(op, tech, proptest.Shapes[int(seed)%len(proptest.Shapes)], seed)
					c.Engine = proptest.EngineRemote
					if f := proptest.RunCase(c); f != nil {
						t.Fatalf("remote %s × %v seed %d:\n%s", op, tech, seed, f.Report())
					}
				}
			}
		})
	}
}

// canonCase runs one case's workload on its own engine and returns the
// canonical byte encoding of every answer, concatenated.
func canonCase(t *testing.T, c proptest.Case) string {
	t.Helper()
	defer proptest.CloseEngines()
	sys := c.System()
	var outs []string
	switch c.Op {
	case "range":
		if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
			t.Fatal(err)
		}
		for _, q := range c.Queries {
			got, _, err := ops.RangeQueryPoints(sys, "pts", q)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, proptest.CanonPoints(got))
		}
	case "knn":
		if _, err := sys.LoadPoints("pts", c.Pts, c.Tech); err != nil {
			t.Fatal(err)
		}
		for _, kq := range c.KNNs {
			got, _, err := ops.KNN(sys, "pts", kq.Q, kq.K)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, proptest.CanonPoints(got))
		}
	case "join":
		if _, err := sys.LoadRegions("left", c.Left, c.Tech); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.LoadRegions("right", c.Right, c.Tech); err != nil {
			t.Fatal(err)
		}
		got, _, err := ops.SpatialJoinIndexed(sys, "left", "right")
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, proptest.CanonStrings(proptest.CanonJoinPairs(got)))
	default:
		t.Fatalf("canonCase: unsupported op %s", c.Op)
	}
	return strings.Join(outs, "\x00")
}

// TestEngineRemoteMatchesInProcess: identical cases on the two engines
// must produce byte-identical answers.
func TestEngineRemoteMatchesInProcess(t *testing.T) {
	// Sequential for the same CloseEngines reason as the differential.
	for _, op := range remoteOps {
		op := op
		t.Run(op, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				c := proptest.GenCase(op, sindex.STRPlus, proptest.Shapes[int(seed)%len(proptest.Shapes)], seed)
				inproc := canonCase(t, c)
				c.Engine = proptest.EngineRemote
				remote := canonCase(t, c)
				if inproc != remote {
					t.Fatalf("%s seed %d: remote answer diverged from in-process", op, seed)
				}
			}
		})
	}
}

// TestEngineRemoteWorkerIndependence: the answer must not depend on the
// remote pool size — 1, 2 and 3 workers give the same bytes.
func TestEngineRemoteWorkerIndependence(t *testing.T) {
	pts := proptest.GenPoints(proptest.ShapeUniform, 130, 41)
	query := geom.NewRect(50, 200, 800, 900)
	cases := []struct {
		op    string
		canon func(remoteWorkers int) (string, error)
	}{
		{"range", func(n int) (string, error) {
			sys := proptest.NewSystem(proptest.DefaultWorkers)
			defer proptest.StartRemoteRuntime(sys, n)()
			if _, err := sys.LoadPoints("pts", pts, sindex.STR); err != nil {
				return "", err
			}
			got, _, err := ops.RangeQueryPoints(sys, "pts", query)
			return proptest.CanonPoints(got), err
		}},
		{"knn", func(n int) (string, error) {
			sys := proptest.NewSystem(proptest.DefaultWorkers)
			defer proptest.StartRemoteRuntime(sys, n)()
			if _, err := sys.LoadPoints("pts", pts, sindex.QuadTree); err != nil {
				return "", err
			}
			got, _, err := ops.KNN(sys, "pts", geom.Pt(400, 400), 7)
			return proptest.CanonPoints(got), err
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op, func(t *testing.T) {
			t.Parallel()
			if msg := proptest.InvariantRemoteWorkerIndependent(tc.op, tc.canon); msg != "" {
				t.Error(msg)
			}
		})
	}
}
