package proptest

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"

	"spatialhadoop/internal/serve"
)

// CheckServePlanner is the metamorphic planner-path-independence
// invariant of the serving layer: for every range and kNN request in the
// workload, a server forced onto the local in-memory engine (pinned
// R-trees + sFilter) must answer byte-identically — status and body — to
// a server forced onto full MapReduce over the same loaded system. The
// planner's engine choice is an optimization and must never be
// observable in the response. Error requests (k = 0 and the like) are
// held to the same standard: both engines go through the same front
// door, so even failures must match.
func CheckServePlanner(c Case) string {
	if len(c.Pts) == 0 {
		return ""
	}
	sys, msg := c.loadPoints()
	if msg != "" {
		return msg
	}
	localSrv := httptest.NewServer(serve.New(sys, serve.Config{
		CacheSize: -1, Planner: serve.PlannerLocal,
	}).Handler())
	defer localSrv.Close()
	mrSrv := httptest.NewServer(serve.New(sys, serve.Config{
		CacheSize: -1, MemTierBytes: -1, Planner: serve.PlannerMapReduce,
	}).Handler())
	defer mrSrv.Close()

	compare := func(path string, params url.Values) string {
		u := path + "?" + params.Encode()
		lc, lb, err := serveGet(localSrv.URL + u)
		if err != nil {
			return sprintf("serve-planner local GET %s: %v", u, err)
		}
		mc, mb, err := serveGet(mrSrv.URL + u)
		if err != nil {
			return sprintf("serve-planner mapreduce GET %s: %v", u, err)
		}
		if lc != mc || string(lb) != string(mb) {
			return sprintf("serve-planner %s: local engine (%d, %.200q) != mapreduce engine (%d, %.200q)",
				u, lc, lb, mc, mb)
		}
		return ""
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range c.Queries {
		params := url.Values{
			"file": {"pts"},
			"rect": {ff(r.MinX) + "," + ff(r.MinY) + "," + ff(r.MaxX) + "," + ff(r.MaxY)},
		}
		if msg := compare("/rangequery", params); msg != "" {
			return msg
		}
	}
	for _, kq := range c.KNNs {
		params := url.Values{
			"file":  {"pts"},
			"point": {ff(kq.Q.X) + "," + ff(kq.Q.Y)},
			"k":     {strconv.Itoa(kq.K)},
		}
		if msg := compare("/knn", params); msg != "" {
			return msg
		}
	}
	return ""
}

// serveGet issues one GET and returns status plus body (errors are
// transport failures, not HTTP error statuses).
func serveGet(u string) (int, []byte, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}
