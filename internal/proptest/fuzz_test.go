package proptest_test

import (
	"math"
	"testing"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/proptest"
	"spatialhadoop/internal/sindex"
)

// FuzzCaseSeed drives the whole harness from one integer: any int64
// decodes (mod the catalogue sizes) into a full op × technique × shape
// case, so the fuzzer explores the exact space the seed-matrix samples.
// Every discovered failure is automatically a replayable -proptest.seed.
func FuzzCaseSeed(f *testing.F) {
	f.Add(int64(1_000_000)) // range × grid
	f.Add(int64(2_041_203)) // knn × str × diagonal
	f.Add(int64(3_100_506)) // union-ish corner of the space
	f.Add(int64(1_110_304)) // serve-planner × quadtree: local vs mapreduce engines
	f.Fuzz(func(t *testing.T, seed int64) {
		c := proptest.CaseFromSeed(seed)
		if fail := proptest.RunCase(c); fail != nil {
			t.Error(fail.Report())
		}
	})
}

// FuzzRangeDifferential fuzzes the range query rect directly against the
// brute oracle over a fixed adversarial dataset: arbitrary float corners
// (NaN/Inf rejected, corners normalized) must never panic and must always
// agree with the linear scan.
func FuzzRangeDifferential(f *testing.F) {
	f.Add(int64(7), 0.0, 0.0, 1000.0, 1000.0)
	f.Add(int64(7), 125.0, 125.0, 125.0, 125.0)
	f.Add(int64(9), -50.0, 400.0, 2000.0, 400.0)
	f.Fuzz(func(t *testing.T, seed int64, x1, y1, x2, y2 float64) {
		for _, v := range []float64{x1, y1, x2, y2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip("degenerate coordinate")
			}
		}
		c := proptest.GenCase("range", sindex.STRPlus, proptest.ShapeMixture, seed)
		c.Queries = []geom.Rect{geom.NewRect(x1, y1, x2, y2)}
		if fail := proptest.RunCase(c); fail != nil {
			t.Error(fail.Report())
		}
	})
}
