// Package proptest is the deterministic property-testing harness for the
// whole query stack. It generates seeded adversarial workloads (gen.go),
// checks every distributed operation against an independent brute-force
// oracle (oracle.go, props.go), verifies metamorphic invariants that no
// single oracle can express (invariants.go), and minimizes failing
// (dataset, query) pairs into replayable counterexamples (shrink.go).
//
// The harness has three entry modes, all driven from go test:
//
//   - short mode: a fixed seed matrix covering every operation × every
//     sindex.Technique × every generator shape (proptest_test.go);
//   - soak mode: -proptest.rounds=N runs N extra randomized rounds, each
//     derived from -proptest.seed (CI passes a time-derived seed);
//   - replay: -proptest.seed=S re-runs the exact failing round printed by
//     a previous failure, and every failure additionally prints a
//     self-contained Go test snippet with the shrunk literal inputs.
//
// Every generator, oracle and shrink step is a pure function of its seed,
// so a failure line like
//
//	go test ./internal/proptest -run TestPropertyMatrix -proptest.seed=42
//
// reproduces the same counterexample byte for byte.
package proptest

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/sindex"
)

// Flags: registered in the package (it is only ever linked into test
// binaries) so that every suite that drives the harness shares the same
// replay interface.
var (
	// FlagSeed overrides the base seed of the soak rounds; 0 keeps the
	// fixed short-mode matrix only.
	FlagSeed = flag.Int64("proptest.seed", 0, "base seed for property-test soak rounds (0 = fixed matrix only)")
	// FlagRounds is the number of extra randomized soak rounds.
	FlagRounds = flag.Int("proptest.rounds", 0, "extra randomized property-test rounds per operation")
)

// Techniques is the full Table-1 technique matrix the harness sweeps.
var Techniques = []sindex.Technique{
	sindex.Grid, sindex.STR, sindex.STRPlus, sindex.QuadTree,
	sindex.KDTree, sindex.ZCurve, sindex.Hilbert,
}

// DefaultBlockSize is the harness's DFS block size: small enough that the
// ~100-point generator datasets span several blocks, so a multi-partition
// index is built and the distributed path (filter, replication, dedup,
// shuffle) is actually exercised rather than degenerating to one cell.
const DefaultBlockSize = 1 << 10

// NewSystem builds a small in-memory deployment at DefaultBlockSize.
func NewSystem(workers int) *core.System {
	return NewSystemBlock(workers, DefaultBlockSize)
}

// NewSystemBlock is NewSystem with an explicit block size; the shrinker
// lowers it to exhibit multi-block bugs with fewer points.
func NewSystemBlock(workers, blockSize int) *core.System {
	return core.New(core.Config{BlockSize: int64(blockSize), Workers: workers, Seed: 1})
}

// DefaultWorkers is the harness's cluster size; invariants.go additionally
// sweeps other worker counts to pin scheduling-independence.
const DefaultWorkers = 4

// CanonPoints returns the canonical byte encoding of a point multiset:
// sorted by (x, y) and encoded with the system's own record codec, so two
// result sets are equal iff their encodings are byte-identical.
func CanonPoints(pts []geom.Point) string {
	recs := make([]string, len(pts))
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for i, p := range sorted {
		recs[i] = geomio.EncodePoint(p)
	}
	return strings.Join(recs, "\n")
}

// CanonStrings returns the canonical encoding of a string multiset.
func CanonStrings(ss []string) string {
	sorted := make([]string, len(ss))
	copy(sorted, ss)
	sort.Strings(sorted)
	return strings.Join(sorted, "\n")
}

// sprintf keeps failure-message formatting terse across the package.
func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// ContainsAll reports whether every element of sub is present in super
// (multiset containment over canonical point encodings).
func ContainsAll(super, sub []geom.Point) bool {
	have := map[string]int{}
	for _, p := range super {
		have[geomio.EncodePoint(p)]++
	}
	for _, p := range sub {
		k := geomio.EncodePoint(p)
		if have[k] == 0 {
			return false
		}
		have[k]--
	}
	return true
}
