package proptest

import (
	"sync"
	"time"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/worker"
)

// Execution-engine knob: a Case can run its system on the in-process
// scheduler (the default) or under the real distributed runtime — an
// in-test master with a replicated data plane and N goroutine workers.
// Every differential check and invariant works unchanged under either
// engine, which is the point: the remote path is held to byte identity
// against the same brute-force oracles as the in-process path.

// Engine selects a Case's execution engine.
type Engine int

const (
	// EngineInProcess runs jobs on the in-process scheduler.
	EngineInProcess Engine = iota
	// EngineRemote runs jobs on an in-test master/worker pool (jobs whose
	// kinds are not registered for remote execution still fall back in
	// process — identically, which the checks verify).
	EngineRemote
	// EngineSharded is EngineRemote with serve-capable workers: the pool
	// additionally answers the serving layer's sharded scatter calls, so a
	// Planner: "sharded" server routes partition fragments to real replica
	// holders instead of degenerating to master-local execution.
	EngineSharded
)

// DefaultRemoteWorkers is the remote engine's pool size when a Case does
// not choose one.
const DefaultRemoteWorkers = 2

var (
	engineMu      sync.Mutex
	engineClosers []func()
)

// trackEngine records a runtime teardown to run at the end of the
// current check (see CloseEngines).
func trackEngine(close func()) {
	engineMu.Lock()
	engineClosers = append(engineClosers, close)
	engineMu.Unlock()
}

// CloseEngines tears down every remote runtime started since the last
// call. The harness calls it after each check execution (including every
// shrink probe), so a check may build several remote systems and leak
// none.
func CloseEngines() {
	engineMu.Lock()
	closers := engineClosers
	engineClosers = nil
	engineMu.Unlock()
	for _, close := range closers {
		close()
	}
}

// StartRemoteRuntime attaches a distributed runtime to a system: a
// master with the data plane on (replication 2) and n goroutine workers,
// all registered before it returns. The returned function tears the
// runtime down.
func StartRemoteRuntime(sys *core.System, n int) func() {
	return startRuntime(sys, n, 2, false)
}

// StartShardedRuntime is StartRemoteRuntime with serve-capable workers
// (Config.ServeTasks) and a chosen replication factor, for byte-identity
// sweeps of the sharded serving engine across pool sizes and replica
// counts.
func StartShardedRuntime(sys *core.System, n, replication int) func() {
	return startRuntime(sys, n, replication, true)
}

func startRuntime(sys *core.System, n, replication int, serveTasks bool) func() {
	m, err := sys.Cluster().StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery: 5 * time.Millisecond,
		Lease:          100 * time.Millisecond,
		Metrics:        sys.Metrics(),
		Replication:    replication,
	})
	if err != nil {
		panic(sprintf("proptest: start master: %v", err))
	}
	pidBase := 9000
	if serveTasks {
		pidBase = 9100
	}
	workers := make([]*worker.Worker, 0, n)
	stop := func() {
		for _, w := range workers {
			w.Stop()
		}
		m.Stop()
	}
	for i := 0; i < n; i++ {
		w, err := worker.Start(worker.Config{Master: m.Addr(), Tasks: 2, FakePID: pidBase + i, ServeTasks: serveTasks})
		if err != nil {
			stop()
			panic(sprintf("proptest: start worker %d: %v", i, err))
		}
		workers = append(workers, w)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.LiveWorkers() < n {
		if time.Now().After(deadline) {
			stop()
			panic(sprintf("proptest: %d workers never registered", n))
		}
		time.Sleep(time.Millisecond)
	}
	return stop
}
