package proptest

import (
	"fmt"
	"math"
	"math/rand"

	"spatialhadoop/internal/geom"
)

// Space is the generation space for every dataset. Generators place points
// on its exact boundary on purpose: the half-open cell containment and the
// max-edge fallback of the index layer only misbehave at the space's edges.
var Space = geom.NewRect(0, 0, 1000, 1000)

// Shape identifies one adversarial dataset shape. The catalogue follows the
// distributions on which partitioning papers report correctness and skew
// bugs: clustered, collinear, duplicate-heavy, axis-degenerate and
// boundary-straddling data.
type Shape int

// The dataset shapes of the generator taxonomy (DESIGN.md "Property
// testing").
const (
	// ShapeUniform scatters points uniformly — the control group.
	ShapeUniform Shape = iota
	// ShapeClusters concentrates points in a few tight Gaussian clusters,
	// stressing skew handling and empty-partition paths.
	ShapeClusters
	// ShapeDiagonal puts all points on the main diagonal (exactly
	// collinear), degenerating hulls, Delaunay structures and k-d splits.
	ShapeDiagonal
	// ShapeDuplicates draws from a tiny value pool so most points repeat
	// exactly, stressing tie-breaking and self-exclusion logic.
	ShapeDuplicates
	// ShapeAxisDegenerate puts every point on one horizontal and one
	// vertical line (zero-width/zero-height extents).
	ShapeAxisDegenerate
	// ShapeBoundary places points on the space's exact edges and corners,
	// where half-open containment and max-edge fallbacks live.
	ShapeBoundary
	// ShapeMixture combines all of the above in one dataset.
	ShapeMixture
)

// Shapes is the full generator matrix.
var Shapes = []Shape{
	ShapeUniform, ShapeClusters, ShapeDiagonal, ShapeDuplicates,
	ShapeAxisDegenerate, ShapeBoundary, ShapeMixture,
}

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeUniform:
		return "uniform"
	case ShapeClusters:
		return "clusters"
	case ShapeDiagonal:
		return "diagonal"
	case ShapeDuplicates:
		return "duplicates"
	case ShapeAxisDegenerate:
		return "axis-degenerate"
	case ShapeBoundary:
		return "boundary"
	case ShapeMixture:
		return "mixture"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// quantize snaps a coordinate to a coarse lattice. Quantized coordinates
// make exact ties (equal x, equal y, equal distances) common instead of
// measure-zero, which is where comparison-flip and boundary bugs hide.
func quantize(v float64) float64 { return math.Round(v*8) / 8 }

// GenPoints generates n points of the given shape, deterministically from
// the seed.
func GenPoints(shape Shape, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	return genPoints(rng, shape, n)
}

func genPoints(rng *rand.Rand, shape Shape, n int) []geom.Point {
	w, h := Space.Width(), Space.Height()
	uniform := func() geom.Point {
		return geom.Pt(quantize(Space.MinX+rng.Float64()*w), quantize(Space.MinY+rng.Float64()*h))
	}
	pts := make([]geom.Point, 0, n)
	switch shape {
	case ShapeUniform:
		for i := 0; i < n; i++ {
			pts = append(pts, uniform())
		}
	case ShapeClusters:
		k := 2 + rng.Intn(4)
		centers := make([]geom.Point, k)
		for i := range centers {
			centers[i] = uniform()
		}
		for i := 0; i < n; i++ {
			c := centers[rng.Intn(k)]
			p := geom.Pt(
				quantize(c.X+rng.NormFloat64()*w*0.01),
				quantize(c.Y+rng.NormFloat64()*h*0.01),
			)
			if !Space.ContainsPoint(p) {
				p = uniform()
			}
			pts = append(pts, p)
		}
	case ShapeDiagonal:
		for i := 0; i < n; i++ {
			t := quantize(rng.Float64() * w)
			pts = append(pts, geom.Pt(Space.MinX+t, Space.MinY+t))
		}
	case ShapeDuplicates:
		pool := make([]geom.Point, 1+n/8)
		for i := range pool {
			pool[i] = uniform()
		}
		for i := 0; i < n; i++ {
			pts = append(pts, pool[rng.Intn(len(pool))])
		}
	case ShapeAxisDegenerate:
		x0, y0 := uniform().X, uniform().Y
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				pts = append(pts, geom.Pt(x0, quantize(Space.MinY+rng.Float64()*h)))
			} else {
				pts = append(pts, geom.Pt(quantize(Space.MinX+rng.Float64()*w), y0))
			}
		}
	case ShapeBoundary:
		corners := Space.Corners()
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0: // exact corner
				pts = append(pts, corners[rng.Intn(4)])
			case 1: // on an edge
				t := quantize(rng.Float64() * w)
				switch rng.Intn(4) {
				case 0:
					pts = append(pts, geom.Pt(Space.MinX+t, Space.MinY))
				case 1:
					pts = append(pts, geom.Pt(Space.MinX+t, Space.MaxY))
				case 2:
					pts = append(pts, geom.Pt(Space.MinX, Space.MinY+t))
				default:
					pts = append(pts, geom.Pt(Space.MaxX, Space.MinY+t))
				}
			default: // just inside an edge
				p := uniform()
				if rng.Intn(2) == 0 {
					p.X = Space.MaxX - 1.0/8
				} else {
					p.Y = Space.MaxY - 1.0/8
				}
				pts = append(pts, p)
			}
		}
	case ShapeMixture:
		for len(pts) < n {
			sub := Shapes[rng.Intn(len(Shapes)-1)] // exclude ShapeMixture itself
			chunk := 1 + rng.Intn(n/4+1)
			if chunk > n-len(pts) {
				chunk = n - len(pts)
			}
			pts = append(pts, genPoints(rng, sub, chunk)...)
		}
	default:
		panic(fmt.Sprintf("proptest: unknown shape %d", int(shape)))
	}
	return pts
}

// GenRects generates n rectangles with adversarial aspect ratios and
// overlap structure: squares, long thin slivers, zero-area degenerate
// rects, nested stacks and exact duplicates.
func GenRects(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	w, h := Space.Width(), Space.Height()
	var out []geom.Rect
	base := func() geom.Rect {
		cx := quantize(Space.MinX + rng.Float64()*w)
		cy := quantize(Space.MinY + rng.Float64()*h)
		var rw, rh float64
		switch rng.Intn(4) {
		case 0: // square-ish
			rw = quantize(rng.Float64() * w * 0.1)
			rh = rw
		case 1: // wide sliver
			rw = quantize(rng.Float64() * w * 0.5)
			rh = quantize(rng.Float64() * 2)
		case 2: // tall sliver
			rw = quantize(rng.Float64() * 2)
			rh = quantize(rng.Float64() * h * 0.5)
		default: // degenerate (zero area)
			rw, rh = 0, 0
		}
		return geom.NewRect(cx, cy, math.Min(cx+rw, Space.MaxX), math.Min(cy+rh, Space.MaxY))
	}
	for len(out) < n {
		r := base()
		out = append(out, r)
		// Sometimes add a nested child and an exact duplicate.
		if rng.Intn(3) == 0 && len(out) < n {
			out = append(out, geom.NewRect(
				r.MinX+r.Width()/4, r.MinY+r.Height()/4,
				r.MaxX-r.Width()/4, r.MaxY-r.Height()/4,
			))
		}
		if rng.Intn(4) == 0 && len(out) < n {
			out = append(out, r)
		}
	}
	return out
}

// GenRegions converts a generated rect set into region records (the
// region-file currency of range-regions, join and union).
func GenRegions(n int, seed int64) []geom.Region {
	rects := GenRects(n, seed)
	out := make([]geom.Region, len(rects))
	for i, r := range rects {
		// Degenerate rects get a minimal extent so polygon edges exist.
		if r.Width() == 0 {
			r.MaxX += 1.0 / 8
		}
		if r.Height() == 0 {
			r.MaxY += 1.0 / 8
		}
		out[i] = geom.RegionOf(geom.RectPoly(r))
	}
	return out
}

// GenQueryRects generates a range-query workload over the dataset: nested
// rect chains, disjoint far-away rects, empty rects, whole-space and
// degenerate line/point queries.
func GenQueryRects(seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	w, h := Space.Width(), Space.Height()
	rnd := func(scale float64) geom.Rect {
		x := quantize(Space.MinX + rng.Float64()*w)
		y := quantize(Space.MinY + rng.Float64()*h)
		return geom.NewRect(x, y,
			math.Min(x+quantize(rng.Float64()*w*scale), Space.MaxX),
			math.Min(y+quantize(rng.Float64()*h*scale), Space.MaxY))
	}
	qs := []geom.Rect{
		Space,                              // whole space
		Space.Buffer(10),                   // superset of the space
		geom.NewRect(-100, -100, -50, -50), // fully outside
		rnd(0.3),
		rnd(0.05),
	}
	// A nested chain: outer ⊃ mid ⊃ inner, for the monotonicity invariant.
	outer := rnd(0.6)
	mid := geom.NewRect(
		outer.MinX+outer.Width()/8, outer.MinY+outer.Height()/8,
		outer.MaxX-outer.Width()/8, outer.MaxY-outer.Height()/8)
	inner := geom.NewRect(
		mid.MinX+mid.Width()/8, mid.MinY+mid.Height()/8,
		mid.MaxX-mid.Width()/8, mid.MaxY-mid.Height()/8)
	qs = append(qs, outer, mid, inner)
	// Degenerate: a horizontal line query and a point query on the lattice.
	p := geom.Pt(quantize(rng.Float64()*w), quantize(rng.Float64()*h))
	qs = append(qs,
		geom.NewRect(Space.MinX, p.Y, Space.MaxX, p.Y),
		geom.NewRect(p.X, p.Y, p.X, p.Y),
	)
	return qs
}

// GenKNNQueries generates kNN query points (on-lattice, off-lattice, at
// the space corners, far outside) with the k schedule of the issue:
// k ∈ {0, 1, n, >n} plus a mid-range value.
func GenKNNQueries(n int, seed int64) []KNNQuery {
	rng := rand.New(rand.NewSource(seed ^ 0x4d4d))
	w, h := Space.Width(), Space.Height()
	sites := []geom.Point{
		geom.Pt(quantize(rng.Float64()*w), quantize(rng.Float64()*h)),
		geom.Pt(rng.Float64()*w, rng.Float64()*h), // off-lattice
		Space.Corners()[rng.Intn(4)],
		geom.Pt(Space.MaxX+100, Space.MaxY+100), // outside the space
	}
	ks := []int{0, 1, 3, n, n + 5}
	var out []KNNQuery
	for i, q := range sites {
		out = append(out, KNNQuery{Q: q, K: ks[i%len(ks)]})
	}
	// Ensure every k in the schedule appears at least once.
	for _, k := range ks {
		out = append(out, KNNQuery{Q: sites[k%len(sites)], K: k})
	}
	return out
}

// KNNQuery is one kNN workload item.
type KNNQuery struct {
	Q geom.Point
	K int
}

// GenPlotExtents generates plot extents: the full space, a zoomed window
// and a window hanging off the data.
func GenPlotExtents(seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed ^ 0x9107))
	w := Space.Width()
	x := quantize(rng.Float64() * w * 0.5)
	return []geom.Rect{
		Space,
		geom.NewRect(x, x, x+w/4, x+w/4),
		geom.NewRect(Space.MaxX-w/8, Space.MaxY-w/8, Space.MaxX+w/8, Space.MaxY+w/8),
	}
}
