package proptest

import (
	"math"
	"sort"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/ops"
)

// The oracles below are deliberately naive single-machine implementations
// — linear scans and O(n²) loops, sharing no pruning, indexing or sweeping
// code with the system under test. They define what every distributed
// operation must return.

// OracleRange returns the points inside query (boundary inclusive), in
// canonical order.
func OracleRange(pts []geom.Point, query geom.Rect) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if query.ContainsPoint(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// OracleRangeRegions returns the regions whose MBR intersects query, in
// canonical encoded order.
func OracleRangeRegions(regions []geom.Region, query geom.Rect) []string {
	var out []string
	for _, rg := range regions {
		if rg.Bounds().Intersects(query) {
			out = append(out, geomio.EncodeRegion(rg))
		}
	}
	sort.Strings(out)
	return out
}

// OracleKNN returns the k nearest points to q with the deterministic tie
// rule (dist, then x, then y). When more than k points tie at the cutoff
// distance the rule decides which survive; distributed implementations may
// break such ties differently, so CompareKNN checks distance multisets
// rather than identity at the boundary.
func OracleKNN(pts []geom.Point, q geom.Point, k int) []geom.Point {
	if k <= 0 {
		return nil
	}
	sorted := make([]geom.Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := sorted[i].Dist(q), sorted[j].Dist(q)
		if di != dj {
			return di < dj
		}
		return sorted[i].Less(sorted[j])
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// CompareKNN checks a distributed kNN answer against the oracle: the count
// must match, the distance multisets must match exactly, and every
// returned point must be an input point at its claimed distance. Ties at
// the k-th distance may legitimately resolve to different points.
func CompareKNN(got, oracle []geom.Point, q geom.Point, pts []geom.Point) string {
	if len(got) != len(oracle) {
		return sprintf("knn returned %d points, oracle %d", len(got), len(oracle))
	}
	inputs := map[geom.Point]bool{}
	for _, p := range pts {
		inputs[p] = true
	}
	gd := distances(got, q)
	od := distances(oracle, q)
	for i := range gd {
		if gd[i] != od[i] {
			return sprintf("knn distance %d: got %.17g, oracle %.17g", i, gd[i], od[i])
		}
	}
	for _, p := range got {
		if !inputs[p] {
			return sprintf("knn returned non-input point %v", p)
		}
	}
	return ""
}

func distances(pts []geom.Point, q geom.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Dist(q)
	}
	sort.Float64s(out)
	return out
}

// OracleJoin returns every pair of region records whose MBRs intersect, as
// tab-joined "left\tright" strings in canonical order. It is the quadratic
// nested loop the plane-sweep plus partition-pair plus reference-point
// machinery must reproduce exactly.
func OracleJoin(left, right []geom.Region) []string {
	var out []string
	for _, l := range left {
		lb := l.Bounds()
		le := geomio.EncodeRegion(l)
		for _, r := range right {
			if lb.Intersects(r.Bounds()) {
				out = append(out, le+"\t"+geomio.EncodeRegion(r))
			}
		}
	}
	sort.Strings(out)
	return out
}

// CanonJoinPairs canonicalizes a distributed join answer for comparison
// with OracleJoin.
func CanonJoinPairs(pairs []ops.JoinPair) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.Left + "\t" + p.Right
	}
	sort.Strings(out)
	return out
}

// OracleANN returns, for every point, the distance to its nearest other
// point (coincident duplicates count as neighbours at distance zero), as
// (point, dist) entries sorted by point. Neighbour identity is not part of
// the contract — ties make it ambiguous — so only distances are compared.
func OracleANN(pts []geom.Point) []ANNEntry {
	out := make([]ANNEntry, 0, len(pts))
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			out = append(out, ANNEntry{P: p, Dist: best})
		}
	}
	sortANNEntries(out)
	return out
}

// ANNEntry is one all-nearest-neighbours oracle row.
type ANNEntry struct {
	P    geom.Point
	Dist float64
}

func sortANNEntries(es []ANNEntry) {
	sort.Slice(es, func(i, j int) bool {
		if !es[i].P.Equal(es[j].P) {
			return es[i].P.Less(es[j].P)
		}
		return es[i].Dist < es[j].Dist
	})
}

// CompareANN checks a distributed ANN answer against the oracle with a
// tiny relative tolerance: equal true distances computed through different
// floating routes (Hypot vs Sqrt of a sum) may differ in the last ulp.
func CompareANN(got []ops.ANNResult, oracle []ANNEntry) string {
	if len(got) != len(oracle) {
		return sprintf("ann returned %d entries, oracle %d", len(got), len(oracle))
	}
	entries := make([]ANNEntry, len(got))
	for i, r := range got {
		entries[i] = ANNEntry{P: r.Point, Dist: r.Dist}
	}
	sortANNEntries(entries)
	for i := range entries {
		if !entries[i].P.Equal(oracle[i].P) {
			return sprintf("ann entry %d: point %v, oracle %v", i, entries[i].P, oracle[i].P)
		}
		if !approxEq(entries[i].Dist, oracle[i].Dist) {
			return sprintf("ann entry %d (%v): dist %.17g, oracle %.17g",
				i, entries[i].P, entries[i].Dist, oracle[i].Dist)
		}
	}
	return ""
}

// OracleSkyline is the O(n²) dominance scan (geom.SkylineBrute shares no
// code with the sweep used by the system).
func OracleSkyline(pts []geom.Point) []geom.Point { return geom.SkylineBrute(pts) }

// OracleClosestPairDist returns the minimum pairwise distance by the O(n²)
// definition, computed with the same Hypot the system reports, and whether
// a pair exists.
func OracleClosestPairDist(pts []geom.Point) (float64, bool) {
	if len(pts) < 2 {
		return 0, false
	}
	best := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < best {
				best = d
			}
		}
	}
	return best, true
}

// OracleFarthestPairDist returns the maximum pairwise distance by the
// O(n²) definition.
func OracleFarthestPairDist(pts []geom.Point) (float64, bool) {
	if len(pts) < 2 {
		return 0, false
	}
	best := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d > best {
				best = d
			}
		}
	}
	return best, true
}

// CheckHull verifies a hull answer without trusting any hull code: every
// claimed vertex must be an input point, the ring must be convex, and
// every input point must lie inside or on the ring. For degenerate hulls
// (fewer than 3 vertices) every input must lie on the segment (or point)
// they span.
func CheckHull(hull, pts []geom.Point) string {
	inputs := map[geom.Point]bool{}
	for _, p := range pts {
		inputs[p] = true
	}
	for _, v := range hull {
		if !inputs[v] {
			return sprintf("hull vertex %v is not an input point", v)
		}
	}
	if len(pts) > 0 && len(hull) == 0 {
		return "hull empty for non-empty input"
	}
	switch {
	case len(hull) == 1:
		for _, p := range pts {
			if !p.Equal(hull[0]) {
				return sprintf("point %v outside single-vertex hull %v", p, hull[0])
			}
		}
	case len(hull) == 2:
		seg := geom.Seg(hull[0], hull[1])
		for _, p := range pts {
			if !seg.ContainsPoint(p) {
				return sprintf("point %v not on degenerate hull segment %v", p, seg)
			}
		}
	case len(hull) >= 3:
		if !geom.IsConvex(hull) {
			return sprintf("hull ring not convex: %v", hull)
		}
		for _, p := range pts {
			if !pointInConvexRing(p, hull) {
				return sprintf("input point %v outside hull", p)
			}
		}
	}
	return ""
}

// pointInConvexRing reports whether p is inside or on the CCW convex ring,
// with a relative epsilon on the cross products: hull edges between
// far-apart vertices accumulate rounding that exact comparisons reject.
func pointInConvexRing(p geom.Point, ring []geom.Point) bool {
	n := len(ring)
	for i := 0; i < n; i++ {
		a, b := ring[i], ring[(i+1)%n]
		scale := math.Max(1, math.Max(a.Dist2(b), p.Dist2(a)))
		if geom.Area2(a, b, p) < -1e-9*scale {
			return false
		}
	}
	return true
}

// OracleUnionProbes returns seeded membership probes for a union result:
// each input region's sampled interior points (which must be inside the
// union) and far-outside points (which must not).
type UnionProbe struct {
	P      geom.Point
	Inside bool
}

// OracleUnion computes membership probes from the inputs alone: a probe
// point is inside the union iff some input region contains it. Probes that
// sit within eps of any region boundary are skipped — membership there is
// legitimately float-ambiguous.
func OracleUnion(regions []geom.Region, seed int64) []UnionProbe {
	var probes []UnionProbe
	add := func(p geom.Point) {
		const eps = 1e-6
		inside := false
		for _, rg := range regions {
			b := rg.Bounds()
			// Near-boundary probes are ambiguous under floating arithmetic.
			onEdge := (math.Abs(p.X-b.MinX) < eps || math.Abs(p.X-b.MaxX) < eps ||
				math.Abs(p.Y-b.MinY) < eps || math.Abs(p.Y-b.MaxY) < eps) &&
				b.Buffer(eps).ContainsPoint(p)
			if onEdge {
				return
			}
			if rg.ContainsPoint(p) {
				inside = true
			}
		}
		probes = append(probes, UnionProbe{P: p, Inside: inside})
	}
	for _, rg := range regions {
		add(rg.Bounds().Center())
	}
	// Seeded off-grid probes spread over the space and beyond.
	x := float64(seed%97) / 97
	for i := 0; i < 64; i++ {
		x = math.Mod(x*997+0.137, 1)
		y := math.Mod(x*31+0.618, 1)
		add(geom.Pt(Space.MinX-50+x*(Space.Width()+100), Space.MinY-50+y*(Space.Height()+100)))
	}
	return probes
}

// OraclePlot rasterizes points directly (no partitioning, no shuffle) with
// the documented pixel mapping and density grading, returning the raster's
// gray bytes for byte-for-byte comparison with the distributed plot.
func OraclePlot(pts []geom.Point, extent geom.Rect, w, h int) []uint8 {
	counts := make([]uint32, w*h)
	var max uint32
	for _, p := range pts {
		if !extent.ContainsPoint(p) {
			continue
		}
		px := int((p.X - extent.MinX) / extent.Width() * float64(w))
		py := int((extent.MaxY - p.Y) / extent.Height() * float64(h))
		if px >= w {
			px = w - 1
		}
		if py >= h {
			py = h - 1
		}
		counts[py*w+px]++
		if counts[py*w+px] > max {
			max = counts[py*w+px]
		}
	}
	pix := make([]uint8, w*h)
	if max > 0 {
		for i, c := range counts {
			if c == 0 {
				continue
			}
			pix[i] = uint8(55 + 200*math.Sqrt(float64(c)/float64(max)))
		}
	}
	return pix
}

// approxEq compares two floats with a tight relative tolerance, enough to
// absorb last-ulp differences between Hypot and Sqrt-of-sum routes.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
