package cg

import (
	"fmt"
	"strconv"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/voronoi"
)

// SiteRegion is one Voronoi diagram entry: a site and its region clipped
// to the data space.
type SiteRegion struct {
	Site   geom.Point
	Region geom.Polygon
}

// VoronoiStats reports the pruning power of the safe-region rule
// (paper Fig. 22b): how many sites survive each merge level.
type VoronoiStats struct {
	Sites              int
	CarriedAfterLocal  int
	CarriedAfterVMerge int
}

// VoronoiSingle is the single-machine baseline: one in-memory Voronoi
// diagram of all sites, with every region clipped to the data space.
func VoronoiSingle(sites []geom.Point, space geom.Rect) []SiteRegion {
	vd := voronoi.New(sites)
	out := make([]SiteRegion, vd.NumSites())
	for i := range out {
		out[i] = SiteRegion{Site: vd.Site(i), Region: vd.Region(i, space)}
	}
	return out
}

// Record formats of the distributed Voronoi pipeline.
const (
	vdFinalPrefix = "R|"   // final region: R|site|ring
	vdCarryN      = "C|N|" // carried, region still to be produced
	vdCarryS      = "C|S|" // carried support, region already emitted
)

func encodeSiteRegion(site geom.Point, region geom.Polygon) string {
	return vdFinalPrefix + geomio.EncodePoint(site) + "|" +
		geomio.EncodeRegion(geom.RegionOf(region))
}

func decodeSiteRegion(rec string) (SiteRegion, error) {
	body := strings.TrimPrefix(rec, vdFinalPrefix)
	i := strings.IndexByte(body, '|')
	if i < 0 {
		return SiteRegion{}, fmt.Errorf("cg: bad voronoi region record %q", rec)
	}
	site, err := geomio.DecodePoint(body[:i])
	if err != nil {
		return SiteRegion{}, err
	}
	rg, err := geomio.DecodeRegion(body[i+1:])
	if err != nil {
		return SiteRegion{}, err
	}
	var ring geom.Polygon
	if len(rg.Rings) > 0 {
		ring = rg.Rings[0]
	}
	return SiteRegion{Site: site, Region: ring}, nil
}

// emitCarried classifies and serializes the carried site set of one merge
// level: every non-safe site plus its Delaunay neighbours (the "support"
// sites whose regions are already final but whose positions the next merge
// needs to reconstruct boundary geometry). alreadyEmitted marks sites
// whose regions have been flushed at this or a previous level.
func emitCarried(vd *voronoi.Diagram, safe []bool, alreadyEmitted []bool, emit func(flagSupport bool, site geom.Point)) (carried int) {
	support := make([]bool, vd.NumSites())
	for i := range safe {
		if safe[i] {
			continue
		}
		for _, j := range vd.Neighbors(i) {
			if safe[j] || alreadyEmitted[j] {
				support[j] = true
			}
		}
	}
	for i := range safe {
		switch {
		case !safe[i] && !alreadyEmitted[i]:
			emit(false, vd.Site(i))
			carried++
		case support[i]:
			emit(true, vd.Site(i))
			carried++
		}
	}
	return carried
}

// VoronoiSHadoop builds the Voronoi diagram of a spatially indexed points
// file with the algorithm of paper §5.2: local VDs per partition flush
// safe regions immediately (pruning), a V-merge reducer per column merges
// the survivors and flushes newly safe regions, and the H-merge step on
// the master finishes the boundary sites. The file must be indexed with
// grid or STR+ partitioning (columns must be separable by vertical lines).
func VoronoiSHadoop(sys *core.System, file string) ([]SiteRegion, *mapreduce.Report, *VoronoiStats, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, nil, err
	}
	if f.Index == nil {
		return nil, nil, nil, errNotIndexed("voronoi", file)
	}
	if f.Index.Technique != sindex.Grid && f.Index.Technique != sindex.STRPlus {
		return nil, nil, nil, fmt.Errorf(
			"cg: voronoi V/H-merge requires column-separable partitions (grid or str+), file %q uses %v",
			file, f.Index.Technique)
	}
	space := f.Index.Space
	out := file + ".voronoi.out"
	job := &mapreduce.Job{
		Name:        "voronoi",
		Splits:      f.Splits(),
		NumReducers: sys.Cluster().Workers(),
		Conf: map[string]string{
			"space": geomio.EncodeRect(space),
		},
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			if len(pts) == 0 {
				return nil
			}
			vd := voronoi.New(pts)
			safe, _ := vd.SafeSitesFrontier(split.MBR)
			for i, ok := range safe {
				if ok {
					ctx.Write(encodeSiteRegion(vd.Site(i), vd.Region(i, split.MBR)))
					ctx.Inc(CounterFlushedEarly, 1)
				}
			}
			// Column key: the x-range of the partition; grid and STR+
			// cells of one column share it exactly.
			col := strconv.FormatFloat(split.MBR.MinX, 'g', 17, 64) + "," +
				strconv.FormatFloat(split.MBR.MaxX, 'g', 17, 64)
			n := emitCarried(vd, safe, make([]bool, len(safe)), func(sup bool, site geom.Point) {
				prefix := vdCarryN
				if sup {
					prefix = vdCarryS
				}
				ctx.Emit(col, prefix+geomio.EncodePoint(site))
			})
			ctx.Inc(CounterIntermediatePoints, int64(n))
			ctx.Inc("cg.vd.carried.local", int64(n))
			return nil
		},
		// V-merge: one group per column.
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			space, err := geomio.DecodeRect(ctx.Config("space"))
			if err != nil {
				return err
			}
			parts := strings.SplitN(key, ",", 2)
			minX, err1 := strconv.ParseFloat(parts[0], 64)
			maxX, err2 := strconv.ParseFloat(parts[1], 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("cg: bad voronoi column key %q", key)
			}
			strip := geom.Rect{MinX: minX, MinY: space.MinY, MaxX: maxX, MaxY: space.MaxY}

			sites := make([]geom.Point, 0, len(values))
			preEmitted := make([]bool, 0, len(values))
			for _, v := range values {
				switch {
				case strings.HasPrefix(v, vdCarryN):
					p, err := geomio.DecodePoint(strings.TrimPrefix(v, vdCarryN))
					if err != nil {
						return err
					}
					sites = append(sites, p)
					preEmitted = append(preEmitted, false)
				case strings.HasPrefix(v, vdCarryS):
					p, err := geomio.DecodePoint(strings.TrimPrefix(v, vdCarryS))
					if err != nil {
						return err
					}
					sites = append(sites, p)
					preEmitted = append(preEmitted, true)
				default:
					return fmt.Errorf("cg: bad carried voronoi record %q", v)
				}
			}
			if len(sites) == 0 {
				return nil
			}
			vd := voronoi.New(sites)
			safe, _ := vd.SafeSitesFrontier(strip)
			for i := range sites {
				if safe[i] && !preEmitted[i] {
					ctx.Write(encodeSiteRegion(vd.Site(i), vd.Region(i, strip)))
					ctx.Inc(CounterFlushedEarly, 1)
				}
			}
			n := emitCarried(vd, safe, preEmitted, func(sup bool, site geom.Point) {
				prefix := vdCarryN
				if sup {
					prefix = vdCarryS
				}
				ctx.Write(prefix + geomio.EncodePoint(site))
			})
			ctx.Inc("cg.vd.carried.vmerge", int64(n))
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, nil, err
	}

	// H-merge (paper's CommitJob): read back final regions and carried
	// sites, compute the diagram of the carried boundary sites and finish
	// their regions on the master.
	recs, err := sys.FS().ReadAll(out)
	if err != nil {
		return nil, nil, nil, err
	}
	var regions []SiteRegion
	var carried []geom.Point
	var carriedEmitted []bool
	for _, rec := range recs {
		switch {
		case strings.HasPrefix(rec, vdFinalPrefix):
			sr, err := decodeSiteRegion(rec)
			if err != nil {
				return nil, nil, nil, err
			}
			regions = append(regions, sr)
		case strings.HasPrefix(rec, vdCarryN):
			p, err := geomio.DecodePoint(strings.TrimPrefix(rec, vdCarryN))
			if err != nil {
				return nil, nil, nil, err
			}
			carried = append(carried, p)
			carriedEmitted = append(carriedEmitted, false)
		case strings.HasPrefix(rec, vdCarryS):
			p, err := geomio.DecodePoint(strings.TrimPrefix(rec, vdCarryS))
			if err != nil {
				return nil, nil, nil, err
			}
			carried = append(carried, p)
			carriedEmitted = append(carriedEmitted, true)
		default:
			return nil, nil, nil, fmt.Errorf("cg: bad voronoi output record %q", rec)
		}
	}
	if len(carried) > 0 {
		vd := voronoi.New(carried)
		for i := range carried {
			if !carriedEmitted[i] {
				regions = append(regions, SiteRegion{Site: vd.Site(i), Region: vd.Region(i, space)})
			}
		}
	}
	stats := &VoronoiStats{
		Sites:              int(f.File.Records),
		CarriedAfterLocal:  int(rep.Counters["cg.vd.carried.local"]),
		CarriedAfterVMerge: int(rep.Counters["cg.vd.carried.vmerge"]),
	}
	return regions, rep, stats, nil
}

// VoronoiHadoop is the pre-existing Hadoop construction of paper §5.1
// (Akdogan et al.): points are range-partitioned into vertical strips, a
// reducer builds each strip's diagram in parallel, and the merge step runs
// on a single machine over the full diagram — the bottleneck the
// SpatialHadoop algorithm removes. Strips cannot flush any region early
// because non-spatial block placement gives no disjointness guarantee
// until the shuffle, and the merge sees every site.
func VoronoiHadoop(sys *core.System, file string, space geom.Rect) ([]SiteRegion, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	strips := sys.Cluster().Workers()
	out := file + ".voronoi-hadoop.out"
	job := &mapreduce.Job{
		Name:        "voronoi-hadoop",
		Splits:      f.Splits(),
		NumReducers: strips,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			w := space.Width() / float64(strips)
			for _, p := range pts {
				s := int((p.X - space.MinX) / w)
				if s < 0 {
					s = 0
				}
				if s >= strips {
					s = strips - 1
				}
				ctx.Emit(strconv.Itoa(s), geomio.EncodePoint(p))
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			if len(pts) == 0 {
				return nil
			}
			// The strip diagram is built in parallel, but without disjoint
			// partition metadata no region can be proven final: every site
			// is forwarded to the single-machine merge.
			voronoi.NewDelaunay(pts)
			for _, p := range pts {
				ctx.Write(vdCarryN + geomio.EncodePoint(p))
				ctx.Inc(CounterIntermediatePoints, 1)
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	recs, err := sys.FS().ReadAll(out)
	if err != nil {
		return nil, nil, err
	}
	sites := make([]geom.Point, 0, len(recs))
	for _, rec := range recs {
		p, err := geomio.DecodePoint(strings.TrimPrefix(rec, vdCarryN))
		if err != nil {
			return nil, nil, err
		}
		sites = append(sites, p)
	}
	return VoronoiSingle(sites, space), rep, nil
}
