package cg

import (
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// SkylineSingle is the single-machine baseline: the in-memory
// divide-and-conquer skyline (paper §6).
func SkylineSingle(pts []geom.Point) []geom.Point {
	return geom.Skyline(pts)
}

// SkylineFilter is the SpatialHadoop filter step of paper §6.2 (Algorithm
// 4, lines 3–11): a cell is pruned when another cell's guaranteed points
// dominate its entire content MBR. It returns the surviving splits.
func SkylineFilter(splits []*mapreduce.Split) []*mapreduce.Split {
	var selected []*mapreduce.Split
	for _, c := range splits {
		dominated := false
		for _, s := range selected {
			if geom.RectDominatedBy(contentOf(c), contentOf(s)) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Remove previously selected cells now dominated by c.
		keep := selected[:0]
		for _, s := range selected {
			if !geom.RectDominatedBy(contentOf(s), contentOf(c)) {
				keep = append(keep, s)
			}
		}
		selected = append(keep, c)
	}
	return selected
}

// skylineJob is the shared map/combine/reduce of the Hadoop and
// SpatialHadoop skyline algorithms (Algorithm 4): local skylines in the
// map/combine, global skyline in a single reducer.
func skylineJob(name string, splits []*mapreduce.Split, filter mapreduce.FilterFunc, out string) *mapreduce.Job {
	localSky := func(ctx *mapreduce.TaskContext, key string, values []string) error {
		pts, err := geomio.DecodePoints(values)
		if err != nil {
			return err
		}
		for _, p := range geom.Skyline(pts) {
			ctx.Emit(key, geomio.EncodePoint(p))
		}
		return nil
	}
	return &mapreduce.Job{
		Name:   name,
		Splits: splits,
		Filter: filter,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			for _, p := range geom.Skyline(pts) {
				ctx.Emit("1", geomio.EncodePoint(p))
				ctx.Inc(CounterIntermediatePoints, 1)
			}
			return nil
		},
		Combine: localSky,
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			for _, p := range geom.Skyline(pts) {
				ctx.Write(geomio.EncodePoint(p))
			}
			return nil
		},
		Output: out,
	}
}

// SkylineHadoop computes the skyline of a heap points file (paper §6.1):
// every block is processed; local skylines meet in one reducer.
func SkylineHadoop(sys *core.System, file string) ([]geom.Point, *mapreduce.Report, error) {
	return runSkyline(sys, file, false)
}

// SkylineSHadoop computes the skyline of a spatially indexed points file
// (paper §6.2): the filter step prunes dominated partitions before any
// record is read.
func SkylineSHadoop(sys *core.System, file string) ([]geom.Point, *mapreduce.Report, error) {
	return runSkyline(sys, file, true)
}

func runSkyline(sys *core.System, file string, filtered bool) ([]geom.Point, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	var filter mapreduce.FilterFunc
	if filtered {
		filter = SkylineFilter
	}
	out := file + ".skyline.out"
	rep, err := sys.Cluster().Run(skylineJob("skyline", f.Splits(), filter, out))
	if err != nil {
		return nil, nil, err
	}
	pts, err := sys.ReadPoints(out)
	if err != nil {
		return nil, nil, err
	}
	return geom.Skyline(pts), rep, nil
}

// DominancePowerSet returns SKY, the skyline of the union of every cell's
// dominance-power set (the top-left and bottom-right corners of its
// minimal content MBR), per paper §6.3. Any point dominated by SKY cannot
// be on the final skyline (Theorem 2).
func DominancePowerSet(splits []*mapreduce.Split) []geom.Point {
	var corners []geom.Point
	for _, s := range splits {
		c := contentOf(s)
		if c.IsEmpty() {
			continue
		}
		corners = append(corners, c.TopLeft(), c.BottomRight())
	}
	return geom.Skyline(corners)
}

// ReduceSKYForCell selects the at-most-4-point subset SKY(c) of SKY with
// the same dominance power over cell c (paper Theorem 4); it is the
// communication optimization of Appendix B.
func ReduceSKYForCell(sky []geom.Point, c geom.Rect) []geom.Point {
	var out []geom.Point
	// R1: strictly beyond the top-right corner — any such point dominates
	// the whole cell.
	for _, p := range sky {
		if p.X > c.MaxX && p.Y > c.MaxY {
			return []geom.Point{p}
		}
	}
	var leftmostR4, rightmostR2 *geom.Point
	for i := range sky {
		p := sky[i]
		switch {
		case p.X >= c.MinX && p.X <= c.MaxX && p.Y >= c.MinY && p.Y <= c.MaxY:
			out = append(out, p) // R3: inside the cell
		case p.X >= c.MinX && p.X <= c.MaxX && p.Y > c.MaxY:
			if rightmostR2 == nil || p.X > rightmostR2.X {
				rightmostR2 = &sky[i]
			}
		case p.X > c.MaxX && p.Y >= c.MinY && p.Y <= c.MaxY:
			if leftmostR4 == nil || p.X < leftmostR4.X {
				leftmostR4 = &sky[i]
			}
		}
	}
	if rightmostR2 != nil {
		out = append(out, *rightmostR2)
	}
	if leftmostR4 != nil {
		out = append(out, *leftmostR4)
	}
	return out
}

// SkylineOutputSensitive computes the skyline as a single map-only job
// (paper §6.3): the global dominance power set SKY is broadcast; each
// partition writes the part of the final skyline it owns directly to the
// output, with no merge step to bottleneck on. The file must be indexed
// with a disjoint technique. When reduceComm is true, each task uses only
// the Theorem-4 subset SKY(c) of at most four points.
func SkylineOutputSensitive(sys *core.System, file string, reduceComm bool) ([]geom.Point, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	if f.Index == nil || !f.Index.Disjoint() {
		return nil, nil, errNotDisjoint("skyline-os", file)
	}
	splits := f.Splits()
	sky := DominancePowerSet(splits)
	skyEnc := make([]string, len(sky))
	for i, p := range sky {
		skyEnc[i] = geomio.EncodePoint(p)
	}
	out := file + ".skyline-os.out"
	job := &mapreduce.Job{
		Name:   "skyline-os",
		Splits: splits,
		Filter: SkylineFilter,
		Conf:   map[string]string{"sky": strings.Join(skyEnc, " ")},
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			skyPts, err := geomio.DecodePoints(strings.Fields(ctx.Config("sky")))
			if err != nil {
				return err
			}
			if reduceComm {
				skyPts = ReduceSKYForCell(skyPts, contentOf(split))
				ctx.Inc("cg.sky.points.shipped", int64(len(skyPts)))
			} else {
				ctx.Inc("cg.sky.points.shipped", int64(len(skyPts)))
			}
			pts, err := split.Points()
			if err != nil {
				return err
			}
			for _, p := range geom.Skyline(pts) {
				dominated := false
				for _, s := range skyPts {
					if s.Dominates(p) {
						dominated = true
						break
					}
				}
				if !dominated {
					ctx.Write(geomio.EncodePoint(p))
					ctx.Inc(CounterFlushedEarly, 1)
				}
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	pts, err := sys.ReadPoints(out)
	if err != nil {
		return nil, nil, err
	}
	return sortPoints(pts), rep, nil
}
