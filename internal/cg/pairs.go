package cg

import (
	"fmt"
	"math"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// ClosestPairSingle is the single-machine divide-and-conquer baseline
// (paper §9).
func ClosestPairSingle(pts []geom.Point) (geom.PointPair, bool) {
	return geom.ClosestPair(pts)
}

// ClosestPairSHadoop computes the closest pair over a disjoint spatially
// indexed points file (paper §9.2): each map task finds its partition's
// local closest pair and forwards, besides the pair itself, only the
// points within delta of the partition boundary — the candidates that
// could pair with a point of a neighbouring cell. One reducer finds the
// global pair among the forwarded points.
func ClosestPairSHadoop(sys *core.System, file string) (geom.PointPair, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	if f.Index == nil || !f.Index.Disjoint() {
		return geom.PointPair{}, nil, errNotDisjoint("closestpair", file)
	}
	out := file + ".closest.out"
	job := &mapreduce.Job{
		Name:   "closestpair",
		Splits: f.Splits(),
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			pair, ok := geom.ClosestPair(pts)
			if !ok {
				// 0 or 1 point: everything is a candidate.
				for _, p := range pts {
					ctx.Emit("1", geomio.EncodePoint(p))
					ctx.Inc(CounterIntermediatePoints, 1)
				}
				return nil
			}
			ctx.Emit("1", geomio.EncodePoint(pair.P))
			ctx.Emit("1", geomio.EncodePoint(pair.Q))
			ctx.Inc(CounterIntermediatePoints, 2)
			// Forward only points within delta of the boundary (paper Fig.
			// 19): any point deeper inside is closer to pair.P/pair.Q's
			// distance within its own cell than to any foreign point.
			inner := split.MBR.Inner(pair.Dist)
			for _, p := range pts {
				if p.Equal(pair.P) || p.Equal(pair.Q) {
					continue
				}
				if !inner.StrictlyContainsPoint(p) {
					ctx.Emit("1", geomio.EncodePoint(p))
					ctx.Inc(CounterIntermediatePoints, 1)
				}
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			pair, ok := geom.ClosestPair(pts)
			if !ok {
				return nil
			}
			ctx.Write(geomio.EncodePoint(pair.P) + " " + geomio.EncodePoint(pair.Q))
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	return readPairOutput(sys, out, rep)
}

// FarthestPairSingle is the single-machine baseline: convex hull plus
// rotating calipers (paper §8).
func FarthestPairSingle(pts []geom.Point) (geom.PointPair, bool) {
	if len(pts) < 2 {
		return geom.PointPair{}, false
	}
	p, q, d := geom.FarthestPair(pts)
	return geom.PointPair{P: p, Q: q, Dist: d}, true
}

// FarthestPairHadoop computes the farthest pair of a heap file by the
// hull-based route available without an index (paper §8.1): local hulls in
// the map phase, then rotating calipers over all collected hull points in
// a single reducer — the bottleneck the paper calls out.
func FarthestPairHadoop(sys *core.System, file string) (geom.PointPair, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	out := file + ".farthest.out"
	job := &mapreduce.Job{
		Name:   "farthestpair-hadoop",
		Splits: f.Splits(),
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			for _, p := range geom.ConvexHull(pts) {
				ctx.Emit("1", geomio.EncodePoint(p))
				ctx.Inc(CounterIntermediatePoints, 1)
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			if len(pts) < 2 {
				return nil
			}
			p, q, _ := geom.FarthestPair(pts)
			ctx.Write(geomio.EncodePoint(p) + " " + geomio.EncodePoint(q))
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	return readPairOutput(sys, out, rep)
}

// FarthestPairFilter implements the two-pass pair pruning of paper §8.2:
// pass one computes the greatest lower bound (GLB) over all partition
// pairs using the tighter minimal-MBR bound of Fig. 18a; pass two keeps
// only the pairs whose upper bound reaches the GLB. The returned splits
// carry the two partitions of each surviving pair.
func FarthestPairFilter(splits []*mapreduce.Split) []*mapreduce.Split {
	glb := 0.0
	for i := 0; i < len(splits); i++ {
		for j := i; j < len(splits); j++ {
			var lb float64
			if i == j {
				// A single minimal MBR guarantees a pair at least as far
				// apart as its longer side (points on opposite edges).
				c := contentOf(splits[i])
				lb = math.Max(c.Width(), c.Height())
			} else {
				lb = contentOf(splits[i]).FarthestPairLowerBound(contentOf(splits[j]))
			}
			if lb > glb {
				glb = lb
			}
		}
	}
	var out []*mapreduce.Split
	for i := 0; i < len(splits); i++ {
		for j := i; j < len(splits); j++ {
			ub := contentOf(splits[i]).MaxDist(contentOf(splits[j]))
			if ub < glb {
				continue
			}
			s := &mapreduce.Split{
				Partition:  splits[i].Partition + "*" + splits[j].Partition,
				MBR:        splits[i].MBR.Union(splits[j].MBR),
				ContentMBR: contentOf(splits[i]).Union(contentOf(splits[j])),
				Blocks:     splits[i].Blocks,
			}
			if j != i {
				s.Extra = splits[j].Blocks
			}
			out = append(out, s)
		}
	}
	return out
}

// FarthestPairSHadoop computes the farthest pair over an indexed points
// file (paper §8.2): the filter selects candidate partition pairs by the
// GLB rule, each map task solves its pair with hull plus rotating
// calipers, and the reducer takes the maximum.
func FarthestPairSHadoop(sys *core.System, file string) (geom.PointPair, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	if f.Index == nil {
		return geom.PointPair{}, nil, errNotIndexed("farthestpair", file)
	}
	out := file + ".farthest.out"
	job := &mapreduce.Job{
		Name:   "farthestpair",
		Splits: f.Splits(),
		Filter: FarthestPairFilter,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			extra, err := split.ExtraPoints()
			if err != nil {
				return err
			}
			pts = append(pts, extra...)
			if len(pts) < 2 {
				return nil
			}
			p, q, _ := geom.FarthestPair(pts)
			ctx.Emit("1", geomio.EncodePoint(p)+" "+geomio.EncodePoint(q))
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			best := geom.PointPair{Dist: -1}
			for _, v := range values {
				pair, err := decodePair(v)
				if err != nil {
					return err
				}
				if pair.Dist > best.Dist {
					best = pair
				}
			}
			if best.Dist >= 0 {
				ctx.Write(geomio.EncodePoint(best.P) + " " + geomio.EncodePoint(best.Q))
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	return readPairOutput(sys, out, rep)
}

func decodePair(s string) (geom.PointPair, error) {
	i := strings.LastIndexByte(s, ' ')
	if i < 0 {
		return geom.PointPair{}, fmt.Errorf("cg: bad pair record %q", s)
	}
	p, err := geomio.DecodePoint(s[:i])
	if err != nil {
		return geom.PointPair{}, err
	}
	q, err := geomio.DecodePoint(s[i+1:])
	if err != nil {
		return geom.PointPair{}, err
	}
	return geom.PointPair{P: p, Q: q, Dist: p.Dist(q)}, nil
}

func readPairOutput(sys *core.System, out string, rep *mapreduce.Report) (geom.PointPair, *mapreduce.Report, error) {
	recs, err := sys.FS().ReadAll(out)
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	if len(recs) == 0 {
		return geom.PointPair{}, rep, fmt.Errorf("cg: no pair produced")
	}
	pair, err := decodePair(recs[0])
	if err != nil {
		return geom.PointPair{}, nil, err
	}
	return pair, rep, nil
}
