package cg

import (
	"math"
	"sort"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// ConvexHullSingle is the single-machine baseline: Andrew's monotone chain
// (paper §7).
func ConvexHullSingle(pts []geom.Point) []geom.Point {
	return geom.ConvexHull(pts)
}

// HullFilter is the SpatialHadoop convex hull filter (paper §7.2): a
// partition can contribute to the hull only if it survives the skyline
// filter in at least one of the four quadrants, so the filter keeps the
// union of the four skyline-filter selections.
func HullFilter(splits []*mapreduce.Split) []*mapreduce.Split {
	keep := make(map[*mapreduce.Split]bool)
	for _, quad := range []geom.Quadrant{geom.QuadMaxMax, geom.QuadMaxMin, geom.QuadMinMax, geom.QuadMinMin} {
		for _, s := range skylineFilterQuad(splits, quad) {
			keep[s] = true
		}
	}
	var out []*mapreduce.Split
	for _, s := range splits {
		if keep[s] {
			out = append(out, s)
		}
	}
	return out
}

// skylineFilterQuad is SkylineFilter generalized to a quadrant.
func skylineFilterQuad(splits []*mapreduce.Split, quad geom.Quadrant) []*mapreduce.Split {
	var selected []*mapreduce.Split
	for _, c := range splits {
		dominated := false
		for _, s := range selected {
			if geom.RectDominatedByQuad(contentOf(c), contentOf(s), quad) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		keep := selected[:0]
		for _, s := range selected {
			if !geom.RectDominatedByQuad(contentOf(s), contentOf(c), quad) {
				keep = append(keep, s)
			}
		}
		selected = append(keep, c)
	}
	return selected
}

// hullJob is the shared Hadoop/SpatialHadoop convex hull job (Algorithm 5):
// local hulls in map/combine, the global hull in one reducer.
func hullJob(name string, splits []*mapreduce.Split, filter mapreduce.FilterFunc, out string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:   name,
		Splits: splits,
		Filter: filter,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			for _, p := range geom.ConvexHull(pts) {
				ctx.Emit("1", geomio.EncodePoint(p))
				ctx.Inc(CounterIntermediatePoints, 1)
			}
			return nil
		},
		Combine: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			for _, p := range geom.ConvexHull(pts) {
				ctx.Emit(key, geomio.EncodePoint(p))
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			for _, p := range geom.ConvexHull(pts) {
				ctx.Write(geomio.EncodePoint(p))
			}
			return nil
		},
		Output: out,
	}
}

// ConvexHullHadoop computes the hull of a heap points file (paper §7.1).
func ConvexHullHadoop(sys *core.System, file string) ([]geom.Point, *mapreduce.Report, error) {
	return runHull(sys, file, nil)
}

// ConvexHullSHadoop computes the hull of an indexed points file with the
// four-skylines filter step (paper §7.2).
func ConvexHullSHadoop(sys *core.System, file string) ([]geom.Point, *mapreduce.Report, error) {
	return runHull(sys, file, HullFilter)
}

func runHull(sys *core.System, file string, filter mapreduce.FilterFunc) ([]geom.Point, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	out := file + ".hull.out"
	rep, err := sys.Cluster().Run(hullJob("convexhull", f.Splits(), filter, out))
	if err != nil {
		return nil, nil, err
	}
	pts, err := sys.ReadPoints(out)
	if err != nil {
		return nil, nil, err
	}
	return geom.ConvexHull(pts), rep, nil
}

// arc is a closed angular interval [from, to] on the direction circle,
// wrapping modulo 2π when to < from.
type arc struct{ from, to float64 }

func normAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// boxAheadArc returns the arc of directions v for which the entire box b
// lies in the half-plane {x : <x - t, v> >= 0}, i.e. directions where some
// point of the box's partition certainly projects ahead of t (paper Fig.
// 16a: the arc between the two directions perpendicular to the tangents
// from t to the box). ok is false when no such direction exists (t inside
// or touching the box).
func boxAheadArc(t geom.Point, b geom.Rect) (arc, bool) {
	// Intersect the four half-circle constraints angle(v) ∈
	// [angle(c-t)-π/2, angle(c-t)+π/2] as a running arc.
	lo, hi := -math.Pi, math.Pi // offsets relative to first corner angle
	corners := b.Corners()
	base := math.Atan2(corners[0].Y-t.Y, corners[0].X-t.X)
	for _, c := range corners {
		d := c.Sub(t)
		if d.Norm() == 0 {
			return arc{}, false
		}
		ang := math.Atan2(d.Y, d.X)
		// Offset of this corner's constraint center from base, in (-π, π].
		off := math.Atan2(math.Sin(ang-base), math.Cos(ang-base))
		if off-math.Pi/2 > lo {
			lo = off - math.Pi/2
		}
		if off+math.Pi/2 < hi {
			hi = off + math.Pi/2
		}
	}
	if lo > hi {
		return arc{}, false
	}
	return arc{from: normAngle(base + lo), to: normAngle(base + hi)}, true
}

// ownBlockedArc returns the directions in which some *other* vertex of the
// local hull projects at least as far as vertex i: the complement of the
// open arc of outward normals between the two edges adjacent to i.
func ownBlockedArc(hull []geom.Point, i int) (arc, bool) {
	n := len(hull)
	if n < 2 {
		return arc{}, false
	}
	if n == 2 {
		// The other point wins on its own half-circle.
		o := hull[1-i]
		d := o.Sub(hull[i])
		ang := math.Atan2(d.Y, d.X)
		return arc{from: normAngle(ang - math.Pi/2), to: normAngle(ang + math.Pi/2)}, true
	}
	prev := hull[(i-1+n)%n]
	next := hull[(i+1)%n]
	t := hull[i]
	// Outward normals of the CCW edges (prev, t) and (t, next).
	n1 := normAngle(math.Atan2(t.Y-prev.Y, t.X-prev.X) - math.Pi/2)
	n2 := normAngle(math.Atan2(next.Y-t.Y, next.X-t.X) - math.Pi/2)
	// t is the strict maximum only for directions strictly inside the arc
	// from n1 to n2 (going CCW); everywhere else another vertex ties or
	// wins.
	return arc{from: n2, to: n1}, true
}

// arcsCoverCircle reports whether the union of the arcs covers the entire
// direction circle. Coverage is decided with a small slack so that keeping
// a vertex (returning false) is favoured near ties — discarding is the
// action that must be certain.
func arcsCoverCircle(arcs []arc) bool {
	if len(arcs) == 0 {
		return false
	}
	const eps = 1e-12
	// Unroll wrapping arcs into [0, 4π).
	type iv struct{ a, b float64 }
	var ivs []iv
	for _, c := range arcs {
		a, b := c.from, c.to
		if b < a {
			b += 2 * math.Pi
		}
		ivs = append(ivs, iv{a, b}, iv{a + 2*math.Pi, b + 2*math.Pi})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	// Sweep from the start of the first arc; the circle is covered iff we
	// can chain arcs across a full 2π span.
	start := ivs[0].a
	reach := start
	for _, v := range ivs {
		if v.a > reach+eps {
			return false
		}
		if v.b > reach {
			reach = v.b
		}
		if reach >= start+2*math.Pi-eps {
			return true
		}
	}
	return false
}

// ConvexHullEnhanced is the more scalable SpatialHadoop hull of paper
// §7.3: every map task computes its local hull and discards each vertex
// whose infeasible-direction set I_t covers the whole circle — using the
// exact arc for its own partition and the conservative box arcs (Theorem
// 3) for every other partition, whose content MBRs are broadcast. A final
// reducer computes the hull of the few survivors.
func ConvexHullEnhanced(sys *core.System, file string) ([]geom.Point, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	if f.Index == nil {
		return nil, nil, errNotIndexed("convexhull-enhanced", file)
	}
	splits := f.Splits()
	// Broadcast all partition content MBRs.
	var mbrs []string
	for _, s := range splits {
		mbrs = append(mbrs, geomio.EncodeRect(contentOf(s)))
	}
	out := file + ".hull-enh.out"
	job := &mapreduce.Job{
		Name:   "convexhull-enhanced",
		Splits: splits,
		Conf:   map[string]string{"mbrs": strings.Join(mbrs, ";"), "self": ""},
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			boxes, err := decodeRects(ctx.Config("mbrs"))
			if err != nil {
				return err
			}
			pts, err := split.Points()
			if err != nil {
				return err
			}
			hull := geom.ConvexHull(pts)
			self := contentOf(split)
			for i, t := range hull {
				arcs := make([]arc, 0, len(boxes)+1)
				if a, ok := ownBlockedArc(hull, i); ok {
					arcs = append(arcs, a)
				}
				for _, b := range boxes {
					if b.IsEmpty() || b == self {
						continue
					}
					if a, ok := boxAheadArc(t, b); ok {
						arcs = append(arcs, a)
					}
				}
				if !arcsCoverCircle(arcs) {
					ctx.Emit("1", geomio.EncodePoint(t))
					ctx.Inc(CounterIntermediatePoints, 1)
				}
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			pts, err := geomio.DecodePoints(values)
			if err != nil {
				return err
			}
			for _, p := range geom.ConvexHull(pts) {
				ctx.Write(geomio.EncodePoint(p))
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	pts, err := sys.ReadPoints(out)
	if err != nil {
		return nil, nil, err
	}
	return geom.ConvexHull(pts), rep, nil
}

func decodeRects(s string) ([]geom.Rect, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]geom.Rect, len(parts))
	for i, p := range parts {
		r, err := geomio.DecodeRect(p)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
