package cg

import (
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

func triangleSet(t *testing.T, tris []Triangle) map[Triangle]bool {
	t.Helper()
	out := make(map[Triangle]bool, len(tris))
	for _, tr := range tris {
		if out[tr] {
			t.Fatalf("duplicate triangle %v", tr)
		}
		out[tr] = true
	}
	return out
}

func TestDelaunaySHadoopMatchesSingle(t *testing.T) {
	for _, tc := range []struct {
		dist datagen.Distribution
		tech sindex.Technique
		n    int
	}{
		{datagen.Uniform, sindex.Grid, 1500},
		{datagen.Gaussian, sindex.STRPlus, 1500},
		{datagen.Clustered, sindex.QuadTree, 1200},
		{datagen.Clustered, sindex.KDTree, 1200},
	} {
		area := geom.NewRect(0, 0, 10000, 10000)
		pts := datagen.Points(tc.dist, tc.n, area, 53)
		want := triangleSet(t, DelaunaySingle(pts))

		sys := newSys(4 << 10)
		if _, err := sys.LoadPoints("dt", pts, tc.tech); err != nil {
			t.Fatal(err)
		}
		got, rep, err := DelaunaySHadoop(sys, "dt")
		if err != nil {
			t.Fatal(err)
		}
		gotSet := triangleSet(t, got)
		if len(gotSet) != len(want) {
			t.Fatalf("%v/%v: %d triangles, want %d", tc.dist, tc.tech, len(gotSet), len(want))
		}
		for tr := range want {
			if !gotSet[tr] {
				t.Fatalf("%v/%v: triangle %v missing", tc.dist, tc.tech, tr)
			}
		}
		// Most triangles must be flushed by the local step.
		if rep.SplitsTotal > 4 {
			flushed := rep.Counters[CounterFlushedEarly]
			if flushed < int64(len(want))/4 {
				t.Errorf("%v/%v: only %d of %d triangles flushed early",
					tc.dist, tc.tech, flushed, len(want))
			}
		}
	}
}

func TestDelaunayRequiresDisjoint(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 400, geom.NewRect(0, 0, 100, 100), 3)
	sys := newSys(2 << 10)
	if _, err := sys.LoadPoints("str", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DelaunaySHadoop(sys, "str"); err == nil {
		t.Error("expected error for overlapping index")
	}
}

// TestDelaunayVoronoiDuality checks the textbook duality on a small set:
// every Delaunay edge's two sites are Voronoi neighbours.
func TestDelaunayVoronoiDuality(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Uniform, 300, area, 59)
	tris := DelaunaySingle(pts)
	// Empty circumcircle property.
	for i, tr := range tris {
		if i%7 != 0 {
			continue
		}
		c, ok := geom.Circumcenter(tr.A, tr.B, tr.C)
		if !ok {
			continue
		}
		r2 := c.Dist2(tr.A)
		for _, p := range pts {
			if p.Equal(tr.A) || p.Equal(tr.B) || p.Equal(tr.C) {
				continue
			}
			if c.Dist2(p) < r2*(1-1e-9) {
				t.Fatalf("site %v strictly inside circumcircle of %v", p, tr)
			}
		}
	}
}
