package cg

import (
	"math"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
)

// sameBoundary checks two union results agree: equal total boundary length
// and every sampled got-segment midpoint lies on some want-segment.
func sameBoundary(t *testing.T, name string, got, want []geom.Segment) {
	t.Helper()
	gl, wl := geom.TotalLength(got), geom.TotalLength(want)
	if math.Abs(gl-wl) > 1e-6*math.Max(1, wl) {
		t.Fatalf("%s: boundary length %.9g, want %.9g", name, gl, wl)
	}
	step := len(got)/50 + 1
	for i := 0; i < len(got); i += step {
		m := got[i].Midpoint()
		if !geom.OnAnySegment(m, want) {
			t.Fatalf("%s: segment %v not on reference boundary", name, got[i])
		}
	}
}

func TestUnionSingleTessellation(t *testing.T) {
	area := geom.NewRect(0, 0, 100, 100)
	polys := datagen.Tessellation(6, 6, area, 5)
	region, segs := UnionSingle(polys)
	// The tessellation's union is exactly the area rectangle boundary.
	want := geom.RectPoly(area).Edges()
	sameBoundary(t, "tessellation", segs, geom.CanonicalizeSegments(want))
	if len(region.Rings) == 0 {
		t.Fatal("no rings stitched")
	}
}

func TestUnionSingleRandomPolygons(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	polys := datagen.RandomPolygons(60, 8, 60, area, 9)
	region, segs := UnionSingle(polys)
	if len(segs) == 0 {
		t.Fatal("empty boundary")
	}
	// Union invariants: every original polygon's interior sample is inside
	// the union; points far outside are not.
	for _, pg := range polys {
		c := pg.Bounds().Center()
		if pg.ContainsPoint(c) && !region.ContainsPoint(c) {
			t.Fatalf("polygon center %v missing from union", c)
		}
	}
	if region.ContainsPoint(geom.Pt(-50, -50)) {
		t.Error("outside point inside union")
	}
}

func TestUnionVariantsMatchSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 400, 400)
	for _, tc := range []struct {
		name  string
		polys []geom.Polygon
	}{
		{"tessellation", datagen.Tessellation(8, 8, area, 11)},
		{"random", datagen.RandomPolygons(80, 6, 25, area, 13)},
	} {
		_, wantSegs := UnionSingle(tc.polys)

		regions := make([]geom.Region, len(tc.polys))
		for i, pg := range tc.polys {
			regions[i] = geom.RegionOf(pg)
		}

		sys := newSys(2 << 10)
		if err := sys.LoadRegionsHeap("heap", regions); err != nil {
			t.Fatal(err)
		}
		gotH, _, err := UnionHadoop(sys, "heap")
		if err != nil {
			t.Fatal(err)
		}
		_, gotHSegs := UnionRegionsResult(gotH)
		sameBoundary(t, tc.name+"/hadoop", gotHSegs, wantSegs)

		for _, tech := range []sindex.Technique{sindex.STR, sindex.Grid, sindex.QuadTree} {
			if _, err := sys.LoadRegions("idx-"+tech.String(), regions, tech); err != nil {
				t.Fatal(err)
			}
			gotS, _, err := UnionSHadoop(sys, "idx-"+tech.String())
			if err != nil {
				t.Fatal(err)
			}
			_, gotSSegs := UnionRegionsResult(gotS)
			sameBoundary(t, tc.name+"/shadoop/"+tech.String(), gotSSegs, wantSegs)
		}

		// Enhanced: map-only, needs a disjoint index. Its output segments
		// are the single-machine boundary cut at partition lines, so the
		// comparison is by total length and midpoint containment.
		if _, err := sys.LoadRegions("enh", regions, sindex.Grid); err != nil {
			t.Fatal(err)
		}
		gotE, rep, err := UnionEnhanced(sys, "enh")
		if err != nil {
			t.Fatal(err)
		}
		sameBoundary(t, tc.name+"/enhanced", gotE, wantSegs)
		if rep.ReduceTasks != 1 || rep.Counters["reduce.groups"] != 0 {
			t.Errorf("%s: enhanced union must be map-only, got %d reduce groups",
				tc.name, rep.Counters["reduce.groups"])
		}
	}
}

func TestUnionEnhancedRequiresDisjoint(t *testing.T) {
	area := geom.NewRect(0, 0, 100, 100)
	polys := datagen.Tessellation(3, 3, area, 2)
	regions := make([]geom.Region, len(polys))
	for i, pg := range polys {
		regions[i] = geom.RegionOf(pg)
	}
	sys := newSys(2 << 10)
	if _, err := sys.LoadRegions("str", regions, sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnionEnhanced(sys, "str"); err == nil {
		t.Error("expected error for overlapping index")
	}
}

// UnionRegionsResult recomputes the canonical boundary segments of a union
// result region (already a valid union, so its ring edges are the
// boundary).
func UnionRegionsResult(rg geom.Region) (geom.Region, []geom.Segment) {
	return rg, geom.CanonicalizeSegments(rg.Edges())
}
