package cg

import (
	"spatialhadoop/internal/core"
	"spatialhadoop/internal/dsu"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
)

// UnionSingle is the single-machine polygon union of paper §4.1: a
// grouping step clusters transitively-overlapping polygons with a
// disjoint-set structure, and a merging step computes each group's union
// independently. It returns the union as a multi-ring region plus its
// canonical boundary segments.
func UnionSingle(polys []geom.Polygon) (geom.Region, []geom.Segment) {
	regions := make([]geom.Region, len(polys))
	for i, pg := range polys {
		regions[i] = geom.RegionOf(pg)
	}
	return unionGrouped(regions)
}

// unionGrouped groups overlapping regions (paper §4.1 grouping step, via
// DSU over MBR-overlap candidates refined by true intersection) and unions
// each group separately (merging step). It returns the combined result and
// the canonical boundary segments.
func unionGrouped(regions []geom.Region) (geom.Region, []geom.Segment) {
	groups, segs := unionGroups(regions)
	var rings []geom.Polygon
	for _, g := range groups {
		rings = append(rings, g.Rings...)
	}
	return geom.Region{Rings: rings}, segs
}

// unionGroups unions each connected group of overlapping regions
// independently and returns one multi-ring region per group. Keeping a
// group's rings together in one record is essential: a ring describing a
// hole only means "hole" in the company of its enclosing ring.
func unionGroups(regions []geom.Region) ([]geom.Region, []geom.Segment) {
	n := len(regions)
	if n == 0 {
		return nil, nil
	}
	d := dsu.New(n)
	// Candidate pairs by MBR overlap (a grid-accelerated self spatial
	// join); the DSU makes each accepted merge nearly free, so only the
	// geometric intersection test matters.
	bounds := make([]geom.Rect, n)
	for i, rg := range regions {
		bounds[i] = rg.Bounds()
	}
	for _, pair := range geom.OverlapCandidates(bounds) {
		i, j := pair[0], pair[1]
		if d.Same(i, j) {
			continue
		}
		if regionsTouch(regions[i], regions[j]) {
			d.Union(i, j)
		}
	}
	var groups []geom.Region
	var allSegs []geom.Segment
	for _, group := range d.Groups() {
		if len(group) == 1 {
			rg := regions[group[0]]
			groups = append(groups, rg)
			allSegs = append(allSegs, rg.Edges()...)
			continue
		}
		members := make([]geom.Region, len(group))
		for k, idx := range group {
			members[k] = regions[idx]
		}
		merged, segs := geom.UnionRegions(members)
		groups = append(groups, merged)
		allSegs = append(allSegs, segs...)
	}
	return groups, geom.CanonicalizeSegments(allSegs)
}

// regionsTouch reports whether two regions share any point.
func regionsTouch(a, b geom.Region) bool {
	for _, ra := range a.Rings {
		for _, rb := range b.Rings {
			if ra.Intersects(rb) {
				return true
			}
		}
	}
	return false
}

// unionJob is the shared Hadoop/SpatialHadoop union job (Algorithm 1):
// the map computes the local union of its split and emits each resulting
// region with a constant key; the single reducer unions the local results.
func unionJob(name string, splits []*mapreduce.Split, out string) *mapreduce.Job {
	return &mapreduce.Job{
		Name:   name,
		Splits: splits,
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			regions, err := decodeRegions(split.Records())
			if err != nil {
				return err
			}
			groups, _ := unionGroups(regions)
			for _, g := range groups {
				ctx.Emit("1", geomio.EncodeRegion(g))
				ctx.Inc(CounterIntermediatePoints, int64(g.VertexCount()))
			}
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			regions, err := decodeRegions(values)
			if err != nil {
				return err
			}
			groups, _ := unionGroups(regions)
			for _, g := range groups {
				ctx.Write(geomio.EncodeRegion(g))
			}
			return nil
		},
		Output: out,
	}
}

// UnionHadoop computes the polygon union of a heap region file (paper
// §4.2): the default loader scatters polygons randomly, so the local union
// step removes few edges and nearly all work lands on the single reducer.
func UnionHadoop(sys *core.System, file string) (geom.Region, *mapreduce.Report, error) {
	return runUnion(sys, file)
}

// UnionSHadoop computes the polygon union of a spatially indexed region
// file (paper §4.3): adjacent polygons share partitions, so the local
// union step removes most interior edges before the merge.
func UnionSHadoop(sys *core.System, file string) (geom.Region, *mapreduce.Report, error) {
	return runUnion(sys, file)
}

func runUnion(sys *core.System, file string) (geom.Region, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return geom.Region{}, nil, err
	}
	out := file + ".union.out"
	rep, err := sys.Cluster().Run(unionJob("union", f.Splits(), out))
	if err != nil {
		return geom.Region{}, nil, err
	}
	regions, err := sys.ReadRegions(out)
	if err != nil {
		return geom.Region{}, nil, err
	}
	var rings []geom.Polygon
	for _, rg := range regions {
		rings = append(rings, rg.Rings...)
	}
	return geom.Region{Rings: rings}, rep, nil
}

// UnionEnhanced is the enhanced SpatialHadoop union of paper §4.4: a
// map-only job over a disjoint spatial index. Each map task computes its
// local union and prunes the result to its partition boundary; every
// boundary segment of the global union is produced by exactly one
// partition, so no merge step exists at all. The output is the union
// boundary as clipped segments.
func UnionEnhanced(sys *core.System, file string) ([]geom.Segment, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	if f.Index == nil || !f.Index.Disjoint() {
		return nil, nil, errNotDisjoint("union-enhanced", file)
	}
	out := file + ".union-enh.out"
	job := &mapreduce.Job{
		Name:   "union-enhanced",
		Splits: f.Splits(),
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			regions, err := decodeRegions(split.Records())
			if err != nil {
				return err
			}
			_, segs := unionGrouped(regions)
			clipped := geom.ClipBoundaryToRect(segs, split.MBR)
			for _, s := range clipped {
				ctx.Write(geomio.EncodeSegment(s))
				ctx.Inc(CounterFlushedEarly, 1)
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	recs, err := sys.FS().ReadAll(out)
	if err != nil {
		return nil, nil, err
	}
	segs, err := geomio.DecodeSegments(recs)
	if err != nil {
		return nil, nil, err
	}
	return geom.CanonicalizeSegments(segs), rep, nil
}

func decodeRegions(recs []string) ([]geom.Region, error) {
	out := make([]geom.Region, len(recs))
	for i, r := range recs {
		rg, err := geomio.DecodeRegion(r)
		if err != nil {
			return nil, err
		}
		out[i] = rg
	}
	return out, nil
}
