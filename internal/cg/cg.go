// Package cg implements the CG_Hadoop suite: the six computational
// geometry operations of the paper (polygon union, Voronoi diagram,
// skyline, convex hull, farthest pair, closest pair), each in the variants
// the paper evaluates — a single-machine baseline, a Hadoop version over
// heap files, a SpatialHadoop version over indexed files, and, where the
// paper defines one, an enhanced/output-sensitive version that eliminates
// the single-machine merge bottleneck.
//
// Every operation is an instance of the five-step skeleton of paper §3
// (see Table 2):
//
//	partition -> filter -> local process -> prune -> merge
//
// Partitioning is done by the loaders in package core; the filter step is
// a mapreduce.FilterFunc over the global index; local processing runs in
// map tasks; pruning either discards data (skyline, closest pair) or
// early-flushes final output (enhanced union, Voronoi, output-sensitive
// skyline) through TaskContext.Write; merging is the reduce/commit step.
package cg

import (
	"fmt"
	"sort"

	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/mapreduce"
)

// errNotIndexed reports an operation run on a file without a global index.
func errNotIndexed(op, file string) error {
	return fmt.Errorf("cg: %s requires a spatially indexed file, %q has no index", op, file)
}

// errNotDisjoint reports an operation that needs disjoint partitions run
// on an overlapping index (see paper Table 2, "disjoint spatial").
func errNotDisjoint(op, file string) error {
	return fmt.Errorf("cg: %s requires a disjoint spatial partitioning of %q", op, file)
}

// sortPoints sorts points canonically in place and returns the slice.
func sortPoints(pts []geom.Point) []geom.Point {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
	return pts
}

// Counter names reported by the operations, used by the benchmark harness
// to reproduce the paper's pruning-power figures.
const (
	// CounterPartitionsProcessed counts map tasks actually run after the
	// filter step (Figs. 24b and 27b).
	CounterPartitionsProcessed = mapreduce.CounterSplitsMapped
	// CounterIntermediatePoints counts records that survive local pruning
	// and reach the merge step (Figs. 22b and 30b).
	CounterIntermediatePoints = "cg.intermediate.points"
	// CounterFlushedEarly counts final output records flushed by the
	// pruning step, bypassing the merge.
	CounterFlushedEarly = "cg.flushed.early"
)

// FilterIntersecting returns a filter keeping splits whose record cover
// (boundary united with content MBR) intersects r. The union matters for
// overlapping techniques, whose sample-derived boundaries under-cover.
func FilterIntersecting(r geom.Rect) mapreduce.FilterFunc {
	return func(splits []*mapreduce.Split) []*mapreduce.Split {
		var keep []*mapreduce.Split
		for _, s := range splits {
			if s.Cover().Intersects(r) {
				keep = append(keep, s)
			}
		}
		return keep
	}
}

// contentOf returns the split's minimal content MBR, falling back to the
// partition boundary when the loader did not record one.
func contentOf(s *mapreduce.Split) geom.Rect {
	if !s.ContentMBR.IsEmpty() {
		return s.ContentMBR
	}
	return s.MBR
}
