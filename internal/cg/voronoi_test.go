package cg

import (
	"math"
	"testing"

	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/sindex"
	"spatialhadoop/internal/voronoi"
)

// regionAreasBySite indexes region areas by their site for comparison.
func regionAreasBySite(t *testing.T, srs []SiteRegion) map[geom.Point]float64 {
	t.Helper()
	out := make(map[geom.Point]float64, len(srs))
	for _, sr := range srs {
		if _, dup := out[sr.Site]; dup {
			t.Fatalf("site %v has two regions", sr.Site)
		}
		out[sr.Site] = sr.Region.Area()
	}
	return out
}

func TestVoronoiSHadoopMatchesSingle(t *testing.T) {
	for _, tc := range []struct {
		dist datagen.Distribution
		n    int
		tech sindex.Technique
	}{
		{datagen.Uniform, 1500, sindex.Grid},
		{datagen.Gaussian, 1500, sindex.Grid},
		{datagen.Clustered, 1200, sindex.Grid},
		{datagen.Uniform, 1500, sindex.STRPlus},
		{datagen.Clustered, 1200, sindex.STRPlus},
	} {
		area := geom.NewRect(0, 0, 10000, 10000)
		pts := datagen.Points(tc.dist, tc.n, area, 41)
		sys := newSys(4 << 10)
		f, err := sys.LoadPoints("vd", pts, tc.tech)
		if err != nil {
			t.Fatal(err)
		}
		space := f.Index.Space

		want := regionAreasBySite(t, VoronoiSingle(pts, space))
		got, rep, stats, err := VoronoiSHadoop(sys, "vd")
		if err != nil {
			t.Fatal(err)
		}
		gotAreas := regionAreasBySite(t, got)
		if len(gotAreas) != len(want) {
			t.Fatalf("%v/%v: %d regions, want %d", tc.dist, tc.tech, len(gotAreas), len(want))
		}
		for site, wa := range want {
			ga, ok := gotAreas[site]
			if !ok {
				t.Fatalf("%v/%v: site %v missing from distributed result", tc.dist, tc.tech, site)
			}
			// A safe region was clipped to its partition, the reference to
			// the whole space; safe regions are interior so both clips are
			// supersets of the region. Compare areas.
			if math.Abs(ga-wa) > 1e-6*math.Max(1, wa) {
				t.Fatalf("%v/%v: site %v region area %g, want %g", tc.dist, tc.tech, site, ga, wa)
			}
		}
		// The pruning rule must flush most regions before the merge steps
		// (paper Fig. 22b reports ~99% after the local step).
		if rep.SplitsTotal > 4 {
			frac := float64(stats.CarriedAfterLocal) / float64(len(pts))
			if frac > 0.9 {
				t.Errorf("%v/%v: local step carried %.0f%% of sites, pruning ineffective",
					tc.dist, tc.tech, 100*frac)
			}
		}
	}
}

func TestVoronoiSHadoopRejectsUnmergeableIndex(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 400, geom.NewRect(0, 0, 100, 100), 3)
	sys := newSys(2 << 10)
	if _, err := sys.LoadPoints("quad", pts, sindex.QuadTree); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := VoronoiSHadoop(sys, "quad"); err == nil {
		t.Error("expected error: quad-tree columns are not separable by vertical lines")
	}
}

func TestVoronoiHadoopMatchesSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Uniform, 800, area, 43)
	sys := newSys(4 << 10)
	if err := sys.LoadPointsHeap("vdh", pts); err != nil {
		t.Fatal(err)
	}
	got, rep, err := VoronoiHadoop(sys, "vdh", area)
	if err != nil {
		t.Fatal(err)
	}
	want := regionAreasBySite(t, VoronoiSingle(pts, area))
	gotAreas := regionAreasBySite(t, got)
	if len(gotAreas) != len(want) {
		t.Fatalf("%d regions, want %d", len(gotAreas), len(want))
	}
	for site, wa := range want {
		if math.Abs(gotAreas[site]-wa) > 1e-6*math.Max(1, wa) {
			t.Fatalf("site %v area %g, want %g", site, gotAreas[site], wa)
		}
	}
	// The Hadoop algorithm's merge bottleneck: every site reaches it.
	if fw := rep.Counters[CounterIntermediatePoints]; fw != int64(len(pts)) {
		t.Errorf("hadoop VD forwarded %d sites, expected all %d", fw, len(pts))
	}
}

// TestVoronoiRegionsTile checks a global invariant of the distributed
// result: the region areas sum to the index space area (regions tile it).
func TestVoronoiRegionsTile(t *testing.T) {
	area := geom.NewRect(0, 0, 5000, 5000)
	pts := datagen.Points(datagen.Clustered, 1000, area, 47)
	sys := newSys(4 << 10)
	f, err := sys.LoadPoints("vd", pts, sindex.Grid)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := VoronoiSHadoop(sys, "vd")
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, sr := range got {
		total += sr.Region.Area()
	}
	space := f.Index.Space
	if math.Abs(total-space.Area()) > 1e-6*space.Area() {
		t.Errorf("regions sum to %g, space area is %g", total, space.Area())
	}
	// Spot-check: each region contains its site and the site is the
	// nearest among all sites for the region's centroid-ish vertex mix.
	sites := make([]geom.Point, len(pts))
	copy(sites, pts)
	for i, sr := range got {
		if i%17 != 0 || sr.Region.Len() < 3 {
			continue
		}
		if !sr.Region.ContainsPoint(sr.Site) {
			t.Fatalf("region of %v does not contain its site", sr.Site)
		}
		c := centroid(sr.Region)
		if sr.Region.ContainsPoint(c) {
			if n := voronoi.NearestSite(sites, c); !sites[n].Equal(sr.Site) {
				t.Fatalf("centroid of %v's region is nearer to %v", sr.Site, sites[n])
			}
		}
	}
}

func centroid(pg geom.Polygon) geom.Point {
	var c geom.Point
	for _, v := range pg.Vertices {
		c = c.Add(v)
	}
	return c.Scale(1 / float64(len(pg.Vertices)))
}
