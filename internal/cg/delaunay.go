package cg

import (
	"fmt"
	"sort"
	"strings"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/voronoi"
)

// Triangle is one Delaunay triangle, vertices in canonical order.
type Triangle struct {
	A, B, C geom.Point
}

// canonicalTriangle orders the vertices so equal triangles compare equal.
func canonicalTriangle(a, b, c geom.Point) Triangle {
	v := []geom.Point{a, b, c}
	sort.Slice(v, func(i, j int) bool { return v[i].Less(v[j]) })
	return Triangle{A: v[0], B: v[1], C: v[2]}
}

func encodeTriangle(t Triangle) string {
	return geomio.EncodePoint(t.A) + " " + geomio.EncodePoint(t.B) + " " + geomio.EncodePoint(t.C)
}

func decodeTriangle(s string) (Triangle, error) {
	parts := strings.Fields(s)
	if len(parts) != 3 {
		return Triangle{}, fmt.Errorf("cg: bad triangle record %q", s)
	}
	var v [3]geom.Point
	for i, p := range parts {
		pt, err := geomio.DecodePoint(p)
		if err != nil {
			return Triangle{}, err
		}
		v[i] = pt
	}
	return canonicalTriangle(v[0], v[1], v[2]), nil
}

// DelaunaySingle computes the Delaunay triangulation of the sites on one
// machine; triangles are returned in canonical form.
func DelaunaySingle(sites []geom.Point) []Triangle {
	vd := voronoi.New(sites)
	tris := vd.Triangles()
	out := make([]Triangle, 0, len(tris))
	for _, t := range tris {
		out = append(out, canonicalTriangle(vd.Site(t[0]), vd.Site(t[1]), vd.Site(t[2])))
	}
	return out
}

// DelaunaySHadoop computes the Delaunay triangulation of a disjointly
// indexed points file — the companion operation the paper names next to
// the Voronoi diagram as "always producing an output several times larger
// than the input" (§3). It reuses the dangerous-zone machinery:
//
//   - Map (per partition): build the local triangulation, classify sites
//     with the safety rule, and flush every triangle whose three vertices
//     are safe — their incident circumcircles lie inside the partition, so
//     no outside site can break the empty-circle property. Carry the
//     non-safe sites plus their local Delaunay neighbours.
//   - Reduce: triangulate the carried boundary sites and emit the
//     triangles incident to at least one non-safe site. Every not-yet
//     -emitted triangle of the global triangulation has a non-safe vertex,
//     all of whose global neighbours were carried, so its geometry is
//     reconstructed exactly; triangles whose vertices are all support
//     sites were already emitted by their home partitions.
func DelaunaySHadoop(sys *core.System, file string) ([]Triangle, *mapreduce.Report, error) {
	f, err := sys.Open(file)
	if err != nil {
		return nil, nil, err
	}
	if f.Index == nil || !f.Index.Disjoint() {
		return nil, nil, errNotDisjoint("delaunay", file)
	}
	out := file + ".delaunay.out"
	job := &mapreduce.Job{
		Name:   "delaunay",
		Splits: f.Splits(),
		Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
			pts, err := split.Points()
			if err != nil {
				return err
			}
			if len(pts) == 0 {
				return nil
			}
			vd := voronoi.New(pts)
			safe, _ := vd.SafeSitesFrontier(split.MBR)
			for _, t := range vd.Triangles() {
				if safe[t[0]] && safe[t[1]] && safe[t[2]] {
					ctx.Write(encodeTriangle(canonicalTriangle(
						vd.Site(t[0]), vd.Site(t[1]), vd.Site(t[2]))))
					ctx.Inc(CounterFlushedEarly, 1)
				}
			}
			n := emitCarried(vd, safe, make([]bool, len(safe)), func(sup bool, site geom.Point) {
				prefix := vdCarryN
				if sup {
					prefix = vdCarryS
				}
				ctx.Emit("1", prefix+geomio.EncodePoint(site))
			})
			ctx.Inc(CounterIntermediatePoints, int64(n))
			return nil
		},
		Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
			var sites []geom.Point
			var carriedN []bool
			for _, v := range values {
				switch {
				case strings.HasPrefix(v, vdCarryN):
					p, err := geomio.DecodePoint(strings.TrimPrefix(v, vdCarryN))
					if err != nil {
						return err
					}
					sites = append(sites, p)
					carriedN = append(carriedN, true)
				case strings.HasPrefix(v, vdCarryS):
					p, err := geomio.DecodePoint(strings.TrimPrefix(v, vdCarryS))
					if err != nil {
						return err
					}
					sites = append(sites, p)
					carriedN = append(carriedN, false)
				default:
					return fmt.Errorf("cg: bad carried delaunay record %q", v)
				}
			}
			if len(sites) < 3 {
				return nil
			}
			vd := voronoi.New(sites)
			for _, t := range vd.Triangles() {
				if carriedN[t[0]] || carriedN[t[1]] || carriedN[t[2]] {
					ctx.Write(encodeTriangle(canonicalTriangle(
						vd.Site(t[0]), vd.Site(t[1]), vd.Site(t[2]))))
				}
			}
			return nil
		},
		Output: out,
	}
	rep, err := sys.Cluster().Run(job)
	if err != nil {
		return nil, nil, err
	}
	recs, err := sys.FS().ReadAll(out)
	if err != nil {
		return nil, nil, err
	}
	tris := make([]Triangle, 0, len(recs))
	for _, r := range recs {
		t, err := decodeTriangle(r)
		if err != nil {
			return nil, nil, err
		}
		tris = append(tris, t)
	}
	return tris, rep, nil
}
