package cg

import (
	"math"
	"sort"
	"testing"

	"spatialhadoop/internal/core"
	"spatialhadoop/internal/datagen"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
	"spatialhadoop/internal/sindex"
)

// newSys builds a small cluster whose block size forces multiple
// partitions for the test datasets.
func newSys(blockSize int64) *core.System {
	return core.New(core.Config{BlockSize: blockSize, Workers: 8, Seed: 1})
}

func samePointSets(t *testing.T, name string, got, want []geom.Point) {
	t.Helper()
	g := append([]geom.Point(nil), got...)
	w := append([]geom.Point(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i].Less(g[j]) })
	sort.Slice(w, func(i, j int) bool { return w[i].Less(w[j]) })
	if len(g) != len(w) {
		t.Fatalf("%s: %d points, want %d\n got: %v\nwant: %v", name, len(g), len(w), g, w)
	}
	for i := range g {
		if !g[i].Equal(w[i]) {
			t.Fatalf("%s: point %d = %v, want %v", name, i, g[i], w[i])
		}
	}
}

var testDistributions = []datagen.Distribution{
	datagen.Uniform, datagen.Gaussian, datagen.Correlated,
	datagen.ReverselyCorrelated, datagen.Clustered,
}

func TestSkylineVariantsMatchSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 10000, 10000)
	for _, dist := range testDistributions {
		pts := datagen.Points(dist, 3000, area, 7)
		want := SkylineSingle(pts)

		sys := newSys(8 << 10)
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			t.Fatal(err)
		}
		got, _, err := SkylineHadoop(sys, "heap")
		if err != nil {
			t.Fatal(err)
		}
		samePointSets(t, dist.String()+"/hadoop", got, want)

		for _, tech := range []sindex.Technique{sindex.Grid, sindex.STR, sindex.STRPlus, sindex.QuadTree} {
			if _, err := sys.LoadPoints("idx-"+tech.String(), pts, tech); err != nil {
				t.Fatal(err)
			}
			got, rep, err := SkylineSHadoop(sys, "idx-"+tech.String())
			if err != nil {
				t.Fatal(err)
			}
			samePointSets(t, dist.String()+"/shadoop/"+tech.String(), got, want)
			if rep.Splits >= rep.SplitsTotal && rep.SplitsTotal > 3 {
				t.Errorf("%v/%v: skyline filter pruned nothing (%d of %d)",
					dist, tech, rep.Splits, rep.SplitsTotal)
			}
		}
	}
}

func TestSkylineOutputSensitiveMatchesSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 10000, 10000)
	for _, dist := range testDistributions {
		pts := datagen.Points(dist, 3000, area, 13)
		want := SkylineSingle(pts)
		sys := newSys(8 << 10)
		if _, err := sys.LoadPoints("pts", pts, sindex.Grid); err != nil {
			t.Fatal(err)
		}
		for _, reduced := range []bool{false, true} {
			got, _, err := SkylineOutputSensitive(sys, "pts", reduced)
			if err != nil {
				t.Fatal(err)
			}
			samePointSets(t, dist.String()+"/os", got, want)
		}
	}
}

func TestSkylineOSRequiresDisjoint(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 500, geom.NewRect(0, 0, 100, 100), 3)
	sys := newSys(4 << 10)
	if _, err := sys.LoadPoints("str", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SkylineOutputSensitive(sys, "str", false); err == nil {
		t.Error("expected error for overlapping index")
	}
}

func TestReduceSKYKeepsDominancePower(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	pts := datagen.Points(datagen.Uniform, 2000, area, 17)
	sys := newSys(4 << 10)
	f, err := sys.LoadPoints("pts", pts, sindex.Grid)
	if err != nil {
		t.Fatal(err)
	}
	splits := f.Splits()
	sky := DominancePowerSet(splits)
	for _, s := range splits {
		cell := contentOf(s)
		reduced := ReduceSKYForCell(sky, cell)
		if len(reduced) > 4 {
			t.Fatalf("reduced SKY has %d points, theorem allows at most 4", len(reduced))
		}
		// Same dominance power over every point in the cell: test with the
		// actual records of the split.
		recPts, err := geomio.DecodePoints(s.Records())
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range recPts {
			full := dominatedBy(p, sky)
			red := dominatedBy(p, reduced)
			if full != red {
				t.Fatalf("point %v: dominated by SKY=%v but by SKY(c)=%v", p, full, red)
			}
		}
	}
}

func dominatedBy(p geom.Point, sky []geom.Point) bool {
	for _, s := range sky {
		if s.Dominates(p) {
			return true
		}
	}
	return false
}

func TestConvexHullVariantsMatchSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 10000, 10000)
	for _, dist := range testDistributions {
		pts := datagen.Points(dist, 3000, area, 23)
		want := ConvexHullSingle(pts)

		sys := newSys(8 << 10)
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			t.Fatal(err)
		}
		got, _, err := ConvexHullHadoop(sys, "heap")
		if err != nil {
			t.Fatal(err)
		}
		samePointSets(t, dist.String()+"/hull-hadoop", got, want)

		for _, tech := range []sindex.Technique{sindex.Grid, sindex.STR, sindex.QuadTree} {
			if _, err := sys.LoadPoints("idx-"+tech.String(), pts, tech); err != nil {
				t.Fatal(err)
			}
			got, rep, err := ConvexHullSHadoop(sys, "idx-"+tech.String())
			if err != nil {
				t.Fatal(err)
			}
			samePointSets(t, dist.String()+"/hull-shadoop/"+tech.String(), got, want)
			if dist == datagen.Uniform && rep.Splits >= rep.SplitsTotal && rep.SplitsTotal > 6 {
				t.Errorf("%v/%v: hull filter pruned nothing (%d of %d)",
					dist, tech, rep.Splits, rep.SplitsTotal)
			}
		}

		if _, err := sys.LoadPoints("enh", pts, sindex.Grid); err != nil {
			t.Fatal(err)
		}
		got, rep, err := ConvexHullEnhanced(sys, "enh")
		if err != nil {
			t.Fatal(err)
		}
		samePointSets(t, dist.String()+"/hull-enhanced", got, want)
		if dist == datagen.Uniform && rep.Counters[CounterIntermediatePoints] > int64(len(pts))/2 {
			t.Errorf("enhanced hull forwarded %d of %d points", rep.Counters[CounterIntermediatePoints], len(pts))
		}
	}
}

func TestClosestPairMatchesSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 10000, 10000)
	for _, dist := range testDistributions {
		pts := datagen.Points(dist, 2500, area, 29)
		want, ok := ClosestPairSingle(pts)
		if !ok {
			t.Fatal("no single-machine pair")
		}
		sys := newSys(8 << 10)
		for _, tech := range []sindex.Technique{sindex.Grid, sindex.STRPlus, sindex.QuadTree, sindex.KDTree} {
			if _, err := sys.LoadPoints("cp-"+tech.String(), pts, tech); err != nil {
				t.Fatal(err)
			}
			got, rep, err := ClosestPairSHadoop(sys, "cp-"+tech.String())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-9 {
				t.Fatalf("%v/%v: dist %g, want %g", dist, tech, got.Dist, want.Dist)
			}
			if fw := rep.Counters[CounterIntermediatePoints]; fw >= int64(len(pts)) {
				t.Errorf("%v/%v: forwarded all %d points, pruning ineffective", dist, tech, fw)
			}
		}
	}
}

func TestClosestPairRequiresDisjoint(t *testing.T) {
	pts := datagen.Points(datagen.Uniform, 500, geom.NewRect(0, 0, 100, 100), 3)
	sys := newSys(4 << 10)
	if _, err := sys.LoadPoints("str", pts, sindex.STR); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ClosestPairSHadoop(sys, "str"); err == nil {
		t.Error("expected error for overlapping index")
	}
}

func TestFarthestPairMatchesSingle(t *testing.T) {
	area := geom.NewRect(0, 0, 10000, 10000)
	for _, dist := range []datagen.Distribution{datagen.Uniform, datagen.Gaussian, datagen.Circular, datagen.Clustered} {
		pts := datagen.Points(dist, 2500, area, 31)
		want, _ := FarthestPairSingle(pts)

		sys := newSys(8 << 10)
		if err := sys.LoadPointsHeap("heap", pts); err != nil {
			t.Fatal(err)
		}
		got, _, err := FarthestPairHadoop(sys, "heap")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("%v/hadoop: dist %g, want %g", dist, got.Dist, want.Dist)
		}

		for _, tech := range []sindex.Technique{sindex.Grid, sindex.STR, sindex.QuadTree} {
			if _, err := sys.LoadPoints("fp-"+tech.String(), pts, tech); err != nil {
				t.Fatal(err)
			}
			got, rep, err := FarthestPairSHadoop(sys, "fp-"+tech.String())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-9 {
				t.Fatalf("%v/%v: dist %g, want %g", dist, tech, got.Dist, want.Dist)
			}
			// The pair filter must prune most of the O(G^2) pairs.
			total := rep.SplitsTotal
			if total > 4 && rep.Splits >= total*(total+1)/2 {
				t.Errorf("%v/%v: no pair pruned (%d pairs of %d partitions)", dist, tech, rep.Splits, total)
			}
		}
	}
}
