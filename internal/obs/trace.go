package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span phases used by the MapReduce runtime. A trace has exactly one
// PhaseJob root span; every other span is its child.
const (
	PhaseJob     = "job"
	PhaseFilter  = "filter"
	PhaseMap     = "map"
	PhaseShuffle = "shuffle"
	PhaseReduce  = "reduce"
	PhaseCommit  = "commit"
)

// Span outcomes.
const (
	OutcomeOK     = "ok"
	OutcomeRetry  = "retry" // transient failure, the task was re-attempted
	OutcomeFailed = "failed"
	// OutcomeDuplicate marks an attempt that finished after another
	// attempt of the same task had already won (speculative execution or
	// an abandoned deadline attempt); its output was suppressed.
	OutcomeDuplicate = "duplicate"
	// OutcomeReissue marks a map task re-executed after its original
	// attempt had already won, because the worker holding its intermediate
	// shards died before every reducer fetched them. The re-run's shards
	// replace the lost ones but its metrics are suppressed, so the task is
	// still counted exactly once in the job counters.
	OutcomeReissue = "reissue"
)

// Span is one traced unit of work: a map attempt, the shuffle, one reduce
// partition, or the commit step. Field writes after Trace.Start and before
// Finish are owned by the executing goroutine; the Trace only reads spans
// after the job ends.
type Span struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"` // 0 = no parent (the root job span)
	Name   string `json:"name"`
	Phase  string `json:"phase"`
	// Task is the task ordinal within its phase (-1 when not task-scoped).
	Task int `json:"task"`
	// Partition is the split/partition id the span worked on, if any.
	Partition string `json:"partition,omitempty"`
	// Attempt numbers retries of the same task, starting at 0.
	Attempt int `json:"attempt"`
	// Speculative marks a duplicate attempt launched against a straggler.
	Speculative bool   `json:"spec,omitempty"`
	RecordsIn   int64  `json:"records_in"`
	RecordsOut  int64  `json:"records_out"`
	Bytes       int64  `json:"bytes"`
	Outcome     string `json:"outcome"`
	// StartUS/DurUS are microseconds relative to the trace origin.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`

	start time.Time
}

// Finish stamps the span's duration and outcome.
func (s *Span) Finish(outcome string) {
	s.DurUS = int64(time.Since(s.start) / time.Microsecond)
	if s.DurUS < 1 {
		s.DurUS = 1 // zero-width spans vanish in trace viewers
	}
	s.Outcome = outcome
}

// Trace is the in-memory span log of one job. Starting spans is safe from
// concurrent tasks; export runs after the job finishes.
type Trace struct {
	Job string `json:"job"`

	mu     sync.Mutex
	origin time.Time
	spans  []*Span
	nextID int64
}

// NewTrace creates a trace whose span timestamps are relative to now.
func NewTrace(job string) *Trace {
	return &Trace{Job: job, origin: time.Now()}
}

// Start opens a new span. parent is the enclosing span's ID (0 for the
// root). task is the task ordinal within the phase, or -1.
func (t *Trace) Start(name, phase string, parent int64, task int) *Span {
	now := time.Now()
	t.mu.Lock()
	t.nextID++
	s := &Span{
		ID:      t.nextID,
		Parent:  parent,
		Name:    name,
		Phase:   phase,
		Task:    task,
		StartUS: int64(now.Sub(t.origin) / time.Microsecond),
		start:   now,
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Spans returns the recorded spans in start order.
func (t *Trace) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// WriteJSONL writes one JSON object per span, one per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.Spans() {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseJSONL re-parses the output of WriteJSONL.
func ParseJSONL(data []byte) ([]*Span, error) {
	var out []*Span
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		s := &Span{}
		if err := json.Unmarshal(line, s); err != nil {
			return nil, fmt.Errorf("obs: bad span line %q: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one trace_event entry in the Chrome/Perfetto JSON format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID lays spans out on viewer rows: one row for the job/shuffle/
// commit master work, one row per map task and one per reduce partition.
func chromeTID(s *Span) int64 {
	switch s.Phase {
	case PhaseMap:
		return 1000 + int64(s.Task)
	case PhaseReduce:
		return 2000 + int64(s.Task)
	default:
		return 0
	}
}

// WriteChromeTrace writes the trace in Chrome trace_event JSON, loadable
// in chrome://tracing and https://ui.perfetto.dev.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	ct := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans))}
	for _, s := range spans {
		args := map[string]string{
			"phase":       s.Phase,
			"outcome":     s.Outcome,
			"records_in":  fmt.Sprint(s.RecordsIn),
			"records_out": fmt.Sprint(s.RecordsOut),
			"bytes":       fmt.Sprint(s.Bytes),
			"attempt":     fmt.Sprint(s.Attempt),
		}
		if s.Partition != "" {
			args["partition"] = s.Partition
		}
		if s.Speculative {
			args["speculative"] = "true"
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Phase,
			Ph:   "X", // complete event: ts + dur
			TS:   s.StartUS,
			Dur:  s.DurUS,
			PID:  1,
			TID:  chromeTID(s),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ValidateChromeTrace checks that data is structurally valid trace_event
// JSON: parseable, at least one event, and every event a complete ("X")
// event with a name, category and non-negative timing. It lets tests
// verify exported traces without eyeballing a viewer.
func ValidateChromeTrace(data []byte) error {
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		return fmt.Errorf("obs: invalid chrome trace: %w", err)
	}
	if len(ct.TraceEvents) == 0 {
		return fmt.Errorf("obs: chrome trace has no events")
	}
	for i, e := range ct.TraceEvents {
		if e.Name == "" || e.Cat == "" {
			return fmt.Errorf("obs: event %d missing name/cat", i)
		}
		if e.Ph != "X" {
			return fmt.Errorf("obs: event %d has ph %q, want \"X\"", i, e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			return fmt.Errorf("obs: event %d has negative timing", i)
		}
	}
	return nil
}
