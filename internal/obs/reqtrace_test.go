package obs

import (
	"context"
	"sync"
	"testing"
)

func TestReqTraceSpanTree(t *testing.T) {
	tr := NewReqTrace("abc123")
	ctx := ContextWithTrace(context.Background(), tr)

	reqCtx, root := StartSpan(ctx, "request")
	root.SetAttr("path", "/range")
	execCtx, exec := StartSpan(reqCtx, "exec")
	_, read := StartSpan(execCtx, "dfs.read")
	read.End()
	exec.End()
	_, enc := StartSpan(reqCtx, "encode")
	enc.End()
	root.End()

	snap := tr.Snapshot()
	if snap.TraceID != "abc123" {
		t.Fatalf("TraceID = %q", snap.TraceID)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	byName := map[string]ReqSpan{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["request"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["request"].Parent)
	}
	if byName["exec"].Parent != byName["request"].ID {
		t.Errorf("exec parent = %d, want %d", byName["exec"].Parent, byName["request"].ID)
	}
	if byName["dfs.read"].Parent != byName["exec"].ID {
		t.Errorf("dfs.read parent = %d, want %d", byName["dfs.read"].Parent, byName["exec"].ID)
	}
	if byName["encode"].Parent != byName["request"].ID {
		t.Errorf("encode parent = %d, want %d", byName["encode"].Parent, byName["request"].ID)
	}
	if byName["request"].Attrs["path"] != "/range" {
		t.Errorf("attrs = %v", byName["request"].Attrs)
	}
	names := snap.SpanNames()
	if names["request"] != 1 || names["exec"] != 1 {
		t.Errorf("SpanNames = %v", names)
	}
	if snap.DurUS != byName["request"].DurUS {
		t.Errorf("snapshot DurUS %d != root span %d", snap.DurUS, byName["request"].DurUS)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	got, s := StartSpan(ctx, "anything")
	if got != ctx {
		t.Fatal("context should be returned unchanged without a trace")
	}
	if s != nil {
		t.Fatal("span should be nil without a trace")
	}
	// All methods are no-ops on nil.
	s.SetAttr("k", "v")
	s.End()
	s.End()
	if TraceFrom(ctx) != nil {
		t.Fatal("TraceFrom on bare context should be nil")
	}
}

func TestReqTraceSpanCap(t *testing.T) {
	tr := NewReqTrace("cap")
	ctx := ContextWithTrace(context.Background(), tr)
	for i := 0; i < MaxReqSpans+5; i++ {
		_, s := StartSpan(ctx, "s")
		s.End()
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != MaxReqSpans {
		t.Fatalf("got %d spans, want cap %d", len(snap.Spans), MaxReqSpans)
	}
	if snap.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", snap.Dropped)
	}
}

func TestReqTraceConcurrentSpans(t *testing.T) {
	tr := NewReqTrace("conc")
	ctx := ContextWithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, s := StartSpan(ctx, "task")
				s.SetAttr("k", "v")
				s.End()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Snapshot().Spans); n != 160 {
		t.Fatalf("got %d spans, want 160", n)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(2)
	t1, t2, t3 := NewReqTrace("t1"), NewReqTrace("t2"), NewReqTrace("t3")
	r.Add(t1)
	r.Add(t2)
	if r.Len() != 2 || r.Get("t1") != t1 || r.Get("t2") != t2 {
		t.Fatal("ring should hold both traces")
	}
	r.Add(t3) // evicts t1
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Get("t1") != nil {
		t.Fatal("t1 should have been evicted")
	}
	if r.Get("t2") != t2 || r.Get("t3") != t3 {
		t.Fatal("t2/t3 should survive")
	}
	// Duplicate IDs keep the first entry.
	dup := NewReqTrace("t3")
	r.Add(dup)
	if r.Get("t3") != t3 || r.Len() != 2 {
		t.Fatal("duplicate Add should be ignored")
	}
}

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestReqTraceSnapshotIsDeepCopy(t *testing.T) {
	tr := NewReqTrace("deep")
	ctx := ContextWithTrace(context.Background(), tr)
	_, s := StartSpan(ctx, "a")
	s.SetAttr("k", "v1")
	snap := tr.Snapshot()
	s.SetAttr("k", "v2")
	s.End()
	if snap.Spans[0].Attrs["k"] != "v1" {
		t.Fatal("snapshot attrs should not see later mutation")
	}
}

func BenchmarkStartSpanNoTrace(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "x")
		s.End()
	}
}
