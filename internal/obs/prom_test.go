package obs

import (
	"bytes"
	"os"
	"testing"
)

func TestNameCanonical(t *testing.T) {
	if got := Name("serve.req"); got != "serve.req" {
		t.Fatalf("unlabeled Name = %q", got)
	}
	// Keys sort regardless of argument order.
	a := Name("m", "b", "2", "a", "1")
	b := Name("m", "a", "1", "b", "2")
	if a != b || a != `m{a="1",b="2"}` {
		t.Fatalf("Name not canonical: %q vs %q", a, b)
	}
	// Values are escaped.
	if got := Name("m", "k", "a\"b\\c\nd"); got != `m{k="a\"b\\c\nd"}` {
		t.Fatalf("escaped Name = %q", got)
	}
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct {
		in, base, labels string
	}{
		{"serve.req", "serve.req", ""},
		{`serve.req{endpoint="range"}`, "serve.req", `endpoint="range"`},
		{`m{a="1",b="2"}`, "m", `a="1",b="2"`},
		{"weird{unclosed", "weird{unclosed", ""},
	} {
		base, labels := SplitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("SplitName(%q) = (%q, %q), want (%q, %q)", tc.in, base, labels, tc.base, tc.labels)
		}
	}
}

// goldenRegistry builds the fixture registry the golden exposition file
// was rendered from.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.IncLabeled("serve.req", 3, "endpoint", "range")
	r.IncLabeled("serve.req", 1, "endpoint", "knn")
	r.Inc("dfs.blocks.read", 42)
	r.SetGauge("admission.queue.depth", 2)
	r.SetGaugeLabeled("serve.latency_quantile_us", 1500, "endpoint", "range", "quantile", "0.5")
	for _, v := range []float64{1, 3, 100} {
		r.ObserveLabeled("serve.latency_us", v, "endpoint", "range")
	}
	r.SetGaugeLabeled("test.escape", 7, "path", "a\"b\\c\nd")
	r.SetGauge("serve.memtier.pinned_partitions", 3)
	r.SetGauge("serve.memtier.bytes", 8192)
	r.Inc("serve.planner.local", 5)
	r.Inc("serve.planner.mapreduce", 2)
	// Worker lifecycle families exported by the distributed runtime's
	// master (mapreduce.MetricWorkers*/Gauge* — literals here because obs
	// cannot import mapreduce).
	r.Inc("mr.workers.registered", 3)
	r.Inc("mr.workers.lost", 1)
	r.SetGauge("mr.workers.live", 2)
	r.SetGauge("mr.heartbeats.missed", 4)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/prom_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusParsesBack(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	m, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if v, ok := m.Get("shadoop_serve_req_total", map[string]string{"endpoint": "range"}); !ok || v != 3 {
		t.Fatalf("serve_req{range} = %v, %v", v, ok)
	}
	if v, ok := m.Get("shadoop_dfs_blocks_read_total", nil); !ok || v != 42 {
		t.Fatalf("dfs_blocks_read = %v, %v", v, ok)
	}
	if v, ok := m.Get("shadoop_serve_latency_us_bucket", map[string]string{"endpoint": "range", "le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("latency +Inf bucket = %v, %v", v, ok)
	}
	if v, ok := m.Get("shadoop_serve_latency_us_sum", map[string]string{"endpoint": "range"}); !ok || v != 104 {
		t.Fatalf("latency sum = %v, %v", v, ok)
	}
	if v, ok := m.Get("shadoop_mr_workers_registered_total", nil); !ok || v != 3 {
		t.Fatalf("mr_workers_registered = %v, %v", v, ok)
	}
	if v, ok := m.Get("shadoop_mr_workers_live", nil); !ok || v != 2 {
		t.Fatalf("mr_workers_live = %v, %v", v, ok)
	}
	// Escaped label round-trips back to the raw value.
	if v, ok := m.Get("shadoop_test_escape", map[string]string{"path": "a\"b\\c\nd"}); !ok || v != 7 {
		t.Fatalf("escaped label did not round-trip: %v, %v", v, ok)
	}
	if m.Types["shadoop_serve_req_total"] != "counter" ||
		m.Types["shadoop_admission_queue_depth"] != "gauge" ||
		m.Types["shadoop_serve_latency_us"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", m.Types)
	}
}

func TestWritePrometheusMergesSnapshots(t *testing.T) {
	a := NewRegistry()
	a.Inc("x.total_requests", 2)
	a.SetGauge("x.depth", 1)
	b := NewRegistry()
	b.Inc("x.total_requests", 5)
	b.SetGauge("x.depth", 9)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a.Snapshot(), b.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	m, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get("shadoop_x_total_requests_total", nil); v != 7 {
		t.Fatalf("counters should sum across snapshots, got %v", v)
	}
	if v, _ := m.Get("shadoop_x_depth", nil); v != 9 {
		t.Fatalf("later gauge should win, got %v", v)
	}
}

func TestValidPromName(t *testing.T) {
	for name, want := range map[string]bool{
		"shadoop_serve_req":  true,
		"shadoop_latency_us": true,
		"shadoop_p99":        false, // digits are banned: quantiles go in labels
		"serve_req":          false, // missing prefix
		"shadoop_Upper":      false,
		"shadoop_dash-name":  false,
	} {
		if got := ValidPromName(name); got != want {
			t.Errorf("ValidPromName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for label, input := range map[string]string{
		"empty":            "",
		"comments only":    "# HELP x y\n",
		"no value":         "shadoop_x\n",
		"bad value":        "shadoop_x pizza\n",
		"bad name":         "9leading_digit 1\n",
		"unterminated":     `shadoop_x{a="1" 2` + "\n",
		"unquoted label":   "shadoop_x{a=1} 2\n",
		"trailing fields":  "shadoop_x 1 1234567890\n",
		"duplicate series": "shadoop_x{a=\"1\"} 1\nshadoop_x{a=\"1\"} 2\n",
		"bad escape":       `shadoop_x{a="\q"} 1` + "\n",
	} {
		if _, err := ParsePrometheus([]byte(input)); err == nil {
			t.Errorf("%s: want parse error, got none", label)
		}
	}
}

func TestParsePrometheusLabelEdgeCases(t *testing.T) {
	// Commas and braces inside quoted values must not split pairs.
	in := `shadoop_x{a="v,w",b="x}y"} 5` + "\n"
	m, err := ParsePrometheus([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get("shadoop_x", map[string]string{"a": "v,w", "b": "x}y"}); !ok || v != 5 {
		t.Fatalf("quoted separators mishandled: %v %v %+v", v, ok, m.Samples)
	}
}

func TestPromNameConversion(t *testing.T) {
	if got := PromName("serve.cache.hits"); got != "shadoop_serve_cache_hits" {
		t.Fatalf("PromName = %q", got)
	}
	if !ValidPromName(PromName("serve.latency_us")) {
		t.Fatal("converted name should satisfy the naming rule")
	}
}
