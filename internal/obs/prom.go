package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition for Registry snapshots, plus the canonical
// labeled-name encoding that gives the registry label support without
// changing its storage model.
//
// A labeled metric is stored under its canonical name,
// `base{k1="v1",k2="v2"}` with keys sorted and values escaped, produced
// by Name and decoded by SplitName. The exposition writer renders every
// counter, gauge and histogram of one or more snapshots in the standard
// Prometheus text format: dot-separated registry names become
// `shadoop_`-prefixed underscore names (the naming rule
// `^shadoop_[a-z_]+$` is pinned by tests), counters gain the
// conventional `_total` suffix, and histograms expand to cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.

// Name renders a metric name with labels in canonical form: label keys
// sorted, values escaped. With no labels it returns base unchanged.
// Registry methods accept the result anywhere a plain name is accepted.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// IncLabeled adds delta to the counter base with the given label pairs.
func (r *Registry) IncLabeled(base string, delta int64, kv ...string) {
	r.Inc(Name(base, kv...), delta)
}

// SetGaugeLabeled sets the gauge base with the given label pairs.
func (r *Registry) SetGaugeLabeled(base string, v float64, kv ...string) {
	r.SetGauge(Name(base, kv...), v)
}

// ObserveLabeled records one observation into the histogram base with
// the given label pairs.
func (r *Registry) ObserveLabeled(base string, v float64, kv ...string) {
	r.Observe(Name(base, kv...), v)
}

// SplitName decodes a canonical name into its base and rendered label
// block ("" when unlabeled). The label block keeps its escaping — it is
// pasted verbatim into the exposition.
func SplitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// PromNamePattern is the naming rule every exposed metric family must
// match; a CI test walks a live server's /metrics against it.
const PromNamePattern = `^shadoop_[a-z_]+$`

var promNameRE = regexp.MustCompile(PromNamePattern)

// ValidPromName reports whether a rendered family name obeys the naming
// rule.
func ValidPromName(name string) bool { return promNameRE.MatchString(name) }

// PromName converts a registry metric base name to its exposition family
// name: dots become underscores under the shadoop_ prefix. The result is
// NOT sanitized — a registry name with characters outside [a-z_.] yields
// an invalid family name, which the naming-rule test rejects, so bad
// names fail loudly instead of being silently rewritten.
func PromName(base string) string {
	return "shadoop_" + strings.ReplaceAll(base, ".", "_")
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type promSeries struct {
	labels string
	render func(w io.Writer, family, labels string)
}

type promFamily struct {
	name   string // rendered family name
	typ    string // counter | gauge | histogram
	help   string
	series []promSeries
}

// WritePrometheus renders the given snapshots in the Prometheus text
// format (version 0.0.4). Families are sorted by name and series by
// label set, so the output is deterministic; when several snapshots
// carry the same metric, counter values sum and gauge/histogram values
// from later snapshots win.
func WritePrometheus(w io.Writer, snaps ...*Snapshot) error {
	counters := map[string]int64{}
	gauges := map[string]float64{}
	hists := map[string]HistogramSnapshot{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for k, v := range s.Counters {
			counters[k] += v
		}
		for k, v := range s.Gauges {
			gauges[k] = v
		}
		for k, v := range s.Histograms {
			hists[k] = v
		}
	}

	fams := map[string]*promFamily{}
	family := func(base, typ string) *promFamily {
		name := PromName(base)
		if typ == "counter" {
			name += "_total"
		}
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ, help: typ + " " + base}
			fams[name] = f
		}
		return f
	}

	for k, v := range counters {
		base, labels := SplitName(k)
		v := v
		family(base, "counter").series = append(family(base, "counter").series, promSeries{
			labels: labels,
			render: func(w io.Writer, fam, labels string) {
				fmt.Fprintf(w, "%s%s %d\n", fam, renderLabels(labels), v)
			},
		})
	}
	for k, v := range gauges {
		base, labels := SplitName(k)
		v := v
		family(base, "gauge").series = append(family(base, "gauge").series, promSeries{
			labels: labels,
			render: func(w io.Writer, fam, labels string) {
				fmt.Fprintf(w, "%s%s %s\n", fam, renderLabels(labels), promFloat(v))
			},
		})
	}
	for k, h := range hists {
		base, labels := SplitName(k)
		h := h
		family(base, "histogram").series = append(family(base, "histogram").series, promSeries{
			labels: labels,
			render: func(w io.Writer, fam, labels string) {
				renderHistogram(w, fam, labels, h)
			},
		})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			s.render(w, f.name, s.labels)
		}
	}
	return nil
}

func renderLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// renderHistogram writes the cumulative bucket series, stopping at the
// first bucket that reaches the total count (every higher bucket would
// repeat it), then +Inf, _sum and _count.
func renderHistogram(w io.Writer, fam, labels string, h HistogramSnapshot) {
	joinLe := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return "{" + labels + `,le="` + le + `"}`
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if c != 0 || cum == 0 && i == 0 {
			// Upper bound of bucket i is 2^i (bucket 0 holds v < 1).
			fmt.Fprintf(w, "%s_bucket%s %d\n", fam, joinLe(promFloat(math.Exp2(float64(i)))), cum)
		}
		if cum == h.Count && h.Count > 0 {
			break
		}
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", fam, joinLe("+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", fam, renderLabels(labels), promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", fam, renderLabels(labels), h.Count)
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromMetrics is a parsed exposition: samples in input order plus the
// TYPE declared per family.
type PromMetrics struct {
	Samples []PromSample
	Types   map[string]string
}

// Get returns the value of the sample with the given name whose labels
// are a superset of want (nil matches the first sample of the name).
func (m *PromMetrics) Get(name string, want map[string]string) (float64, bool) {
sample:
	for _, s := range m.Samples {
		if s.Name != name {
			continue
		}
		for k, v := range want {
			if s.Labels[k] != v {
				continue sample
			}
		}
		return s.Value, true
	}
	return 0, false
}

// ParsePrometheus is a minimal in-tree parser for the text exposition
// format: enough to validate structure (names, label syntax, float
// values, no duplicate series) and to let tests assert on scraped
// values without an external dependency.
func ParsePrometheus(data []byte) (*PromMetrics, error) {
	out := &PromMetrics{Types: map[string]string{}}
	seen := map[string]bool{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		sample, key, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		if seen[key] {
			return nil, fmt.Errorf("obs: line %d: duplicate series %s", ln+1, key)
		}
		seen[key] = true
		out.Samples = append(out.Samples, sample)
	}
	if len(out.Samples) == 0 {
		return nil, fmt.Errorf("obs: exposition has no samples")
	}
	return out, nil
}

var promSeriesNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func parsePromLine(line string) (PromSample, string, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, "", fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !promSeriesNameRE.MatchString(s.Name) {
		return s, "", fmt.Errorf("bad metric name %q", s.Name)
	}
	var keyParts []string
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQ := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQ && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQ = !inQ
			case !inQ && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, "", fmt.Errorf("unterminated label block in %q", line)
		}
		block := rest[1:end]
		rest = rest[end+1:]
		for _, kv := range splitLabelPairs(block) {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				return s, "", fmt.Errorf("bad label pair %q", kv)
			}
			k := kv[:eq]
			v := kv[eq+1:]
			if !promSeriesNameRE.MatchString(k) {
				return s, "", fmt.Errorf("bad label name %q", k)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, "", fmt.Errorf("unquoted label value in %q", kv)
			}
			uv, err := unescapeLabel(v[1 : len(v)-1])
			if err != nil {
				return s, "", err
			}
			s.Labels[k] = uv
			keyParts = append(keyParts, k+"="+uv)
		}
	}
	rest = strings.TrimSpace(rest)
	// A timestamp field after the value is valid exposition; we don't emit
	// one, so reject it to keep the parser honest about what we produce.
	if strings.ContainsAny(rest, " \t") {
		return s, "", fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, "", fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	sort.Strings(keyParts)
	return s, s.Name + "{" + strings.Join(keyParts, ",") + "}", nil
}

// splitLabelPairs splits a label block on commas outside quotes.
func splitLabelPairs(block string) []string {
	var out []string
	start := 0
	inQ := false
	for i := 0; i < len(block); i++ {
		switch {
		case inQ && block[i] == '\\':
			i++
		case block[i] == '"':
			inQ = !inQ
		case !inQ && block[i] == ',':
			out = append(out, block[start:i])
			start = i + 1
		}
	}
	if start < len(block) {
		out = append(out, block[start:])
	}
	return out
}

func unescapeLabel(v string) (string, error) {
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '\\' {
			b.WriteByte(v[i])
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("dangling escape in label value %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("bad escape \\%c in label value %q", v[i], v)
		}
	}
	return b.String(), nil
}
