// Package obs is the observability substrate of the runtime: a metrics
// registry (counters, gauges, log-scale histograms), per-task metric
// buffers that are merged into the registry once per task, and a
// structured job trace with one span per map attempt, shuffle, reduce
// partition and commit. Traces export as JSONL and as Chrome trace_event
// JSON (loadable in chrome://tracing or Perfetto); metrics export as a
// point-in-time Snapshot that Report embeds and the benchmark harness
// persists next to timings.
//
// Naming scheme: metric and span names are dot-separated lowercase paths,
// "<layer>.<object>.<aspect>", e.g. "map.records.in", "dfs.blocks.read",
// "sindex.partitions.created". Histogram names carry their unit as the
// last component ("map.task.duration_us", "sindex.partition.fill").
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// NumBuckets is the number of histogram buckets. Bucket i counts values v
// with 2^(i-1) <= v < 2^i (bucket 0 counts v < 1), so the buckets cover
// the full range of durations in microseconds, byte sizes and record
// counts the runtime observes.
const NumBuckets = 48

// bucketOf maps a value to its log-scale bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	i := int(math.Floor(math.Log2(v))) + 1
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketLo returns the inclusive lower bound of bucket i.
func BucketLo(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Exp2(float64(i - 1))
}

// histogram accumulates observations into fixed log-scale buckets.
type histogram struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [NumBuckets]int64
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Buckets []int64 `json:"buckets"`
}

// Mean returns the mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from
// the bucket boundaries.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			hi := math.Exp2(float64(i))
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// String renders a compact one-line summary.
func (h HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%.0f p95<=%.0f max=%.0f",
		h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max)
}

// Snapshot is a point-in-time copy of a Registry, suitable for embedding
// in a job Report and serializing to JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a set of named counters, gauges and histograms. It is safe
// for concurrent use, but hot paths should not call it per emitted value:
// tasks accumulate into a TaskMetrics buffer and Merge it once at task
// end, so the registry mutex is taken once per task, not once per pair.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Inc adds delta to counter name.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the current value of counter name.
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets gauge name to v.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe records one histogram observation. Master-side call sites only;
// task-side observations go through TaskMetrics.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	r.observeLocked(name, v)
	r.mu.Unlock()
}

func (r *Registry) observeLocked(name string, v float64) {
	h, ok := r.hists[name]
	if !ok {
		h = &histogram{}
		r.hists[name] = h
	}
	h.observe(v)
}

// Merge folds a task's local buffer into the registry under one lock.
func (r *Registry) Merge(t *TaskMetrics) {
	if t == nil {
		return
	}
	r.mu.Lock()
	for name, delta := range t.counters {
		r.counters[name] += delta
	}
	for name, vals := range t.observations {
		for _, v := range vals {
			r.observeLocked(name, v)
		}
	}
	r.mu.Unlock()
}

// Snapshot returns a deep copy of the registry state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		buckets := make([]int64, NumBuckets)
		copy(buckets, h.buckets[:])
		s.Histograms[k] = HistogramSnapshot{
			Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: buckets,
		}
	}
	return s
}

// SortedCounterNames returns the snapshot's counter names in order.
func (s *Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TaskMetrics is a task-local metrics buffer. It is not safe for
// concurrent use — each task attempt owns one — and it only becomes
// visible when the runtime merges it into the job registry after the
// attempt succeeds, so failed attempts cost nothing and retries do not
// double-count.
type TaskMetrics struct {
	counters     map[string]int64
	observations map[string][]float64
}

// NewTaskMetrics creates an empty buffer.
func NewTaskMetrics() *TaskMetrics {
	return &TaskMetrics{
		counters:     make(map[string]int64),
		observations: make(map[string][]float64),
	}
}

// Inc adds delta to the buffered counter name. No locks are taken.
func (t *TaskMetrics) Inc(name string, delta int64) {
	t.counters[name] += delta
}

// Get returns the buffered value of counter name.
func (t *TaskMetrics) Get(name string) int64 { return t.counters[name] }

// Observe buffers one histogram observation.
func (t *TaskMetrics) Observe(name string, v float64) {
	t.observations[name] = append(t.observations[name], v)
}

// TaskMetricsWire is the serializable form of a TaskMetrics buffer. Remote
// workers execute task attempts in another process and ship the buffer
// back over RPC; the master imports it and merges it through the same
// win gate as an in-process attempt, so the exactly-once merge semantics
// are identical on both paths.
type TaskMetricsWire struct {
	Counters     map[string]int64
	Observations map[string][]float64
}

// Export copies the buffer into its wire form.
func (t *TaskMetrics) Export() TaskMetricsWire {
	w := TaskMetricsWire{
		Counters:     make(map[string]int64, len(t.counters)),
		Observations: make(map[string][]float64, len(t.observations)),
	}
	for k, v := range t.counters {
		w.Counters[k] = v
	}
	for k, vs := range t.observations {
		w.Observations[k] = append([]float64(nil), vs...)
	}
	return w
}

// ImportTaskMetrics rebuilds a TaskMetrics buffer from its wire form.
func ImportTaskMetrics(w TaskMetricsWire) *TaskMetrics {
	t := NewTaskMetrics()
	for k, v := range w.Counters {
		t.counters[k] = v
	}
	for k, vs := range w.Observations {
		t.observations[k] = append([]float64(nil), vs...)
	}
	return t
}
