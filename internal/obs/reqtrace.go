package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Request-scoped tracing. A ReqTrace is minted per served request (the
// serving layer creates one per HTTP request and returns its ID in the
// X-Trace-Id header) and travels through the stack inside a
// context.Context: admission, the slot pool, the scheduler, cache probes
// and DFS reads each open a span against whatever trace the context
// carries. Call sites are unconditional — StartSpan on a context without
// a trace returns a nil span whose methods are no-ops — so the batch
// paths (no trace installed) pay only two context lookups per span site.
//
// Unlike obs.Trace (the per-job span log consumed by the bench harness),
// a ReqTrace is a bounded, concurrency-safe span tree keyed by a string
// trace ID and retained in a TraceRing for the /debug/trace/{id}
// endpoint.

// MaxReqSpans bounds the spans recorded per request trace; spans started
// beyond the cap are dropped (counted in Dropped) so a pathological job
// cannot grow a trace without bound.
const MaxReqSpans = 512

// ReqSpan is one unit of work inside a request trace. Exported fields
// are read via ReqTrace.Snapshot after the request finishes; mutation
// goes through SetAttr/End, which lock the owning trace.
type ReqSpan struct {
	ID      int64             `json:"id"`
	Parent  int64             `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`

	tr    *ReqTrace
	start time.Time
	ended bool
}

// SetAttr attaches a key/value attribute to the span. Safe on a nil span.
func (s *ReqSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
	s.tr.mu.Unlock()
}

// End stamps the span's duration. Only the first End counts; safe on a
// nil span.
func (s *ReqSpan) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.DurUS = int64(time.Since(s.start) / time.Microsecond)
	}
	s.tr.mu.Unlock()
}

// ReqTrace is the span tree of one request. Safe for concurrent use:
// map tasks of a traced job start spans from many goroutines.
type ReqTrace struct {
	id    string
	begin time.Time

	mu      sync.Mutex
	spans   []*ReqSpan
	nextID  int64
	dropped int
}

// NewReqTrace creates an empty trace with the given ID.
func NewReqTrace(id string) *ReqTrace {
	return &ReqTrace{id: id, begin: time.Now()}
}

// TraceID returns the trace's identifier.
func (t *ReqTrace) TraceID() string { return t.id }

// startSpan opens a span under parent (0 = root). Returns nil once the
// span cap is reached.
func (t *ReqTrace) startSpan(name string, parent int64) *ReqSpan {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= MaxReqSpans {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &ReqSpan{
		ID:      t.nextID,
		Parent:  parent,
		Name:    name,
		StartUS: int64(now.Sub(t.begin) / time.Microsecond),
		tr:      t,
		start:   now,
	}
	t.spans = append(t.spans, s)
	return s
}

// ReqTraceSnapshot is the exported state of one finished request trace.
type ReqTraceSnapshot struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	DurUS   int64     `json:"dur_us"`
	Dropped int       `json:"dropped,omitempty"`
	Spans   []ReqSpan `json:"spans"`
}

// Snapshot returns a deep copy of the trace in span start order. DurUS
// is the root span's duration (the longest span when no root exists).
func (t *ReqTrace) Snapshot() ReqTraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := ReqTraceSnapshot{
		TraceID: t.id,
		Start:   t.begin,
		Dropped: t.dropped,
		Spans:   make([]ReqSpan, len(t.spans)),
	}
	for i, s := range t.spans {
		c := *s
		c.tr = nil
		if len(s.Attrs) > 0 {
			c.Attrs = make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs {
				c.Attrs[k] = v
			}
		}
		if s.Parent == 0 || c.DurUS > snap.DurUS {
			snap.DurUS = c.DurUS
		}
		snap.Spans[i] = c
	}
	return snap
}

// SpanNames returns the distinct span names present in the trace, a
// convenience for tests asserting trace shape.
func (s ReqTraceSnapshot) SpanNames() map[string]int {
	out := make(map[string]int, len(s.Spans))
	for _, sp := range s.Spans {
		out[sp.Name]++
	}
	return out
}

type reqTraceKey struct{}
type reqSpanKey struct{}

// ContextWithTrace installs a request trace on the context.
func ContextWithTrace(ctx context.Context, t *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, t)
}

// TraceFrom returns the context's request trace, or nil.
func TraceFrom(ctx context.Context) *ReqTrace {
	t, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return t
}

// StartSpan opens a span named name under the context's current span,
// returning a derived context (carrying the new span as parent for
// nested StartSpan calls) and the span itself. Without a trace on the
// context it returns ctx unchanged and a nil span whose End/SetAttr are
// no-ops, so call sites never branch.
func StartSpan(ctx context.Context, name string) (context.Context, *ReqSpan) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(reqSpanKey{}).(int64)
	s := t.startSpan(name, parent)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, reqSpanKey{}, s.ID), s
}

// NewTraceID returns a fresh random 64-bit trace identifier in hex.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a time-derived ID rather than panicking in a serving path.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

// TraceRing retains the most recent request traces for the
// /debug/trace/{id} endpoint: a bounded FIFO plus an ID index. Adding
// beyond capacity evicts the oldest trace.
type TraceRing struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string]*ReqTrace
}

// NewTraceRing creates a ring holding up to capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{cap: capacity, byID: make(map[string]*ReqTrace, capacity)}
}

// Add retains t, evicting the oldest trace when full.
func (r *TraceRing) Add(t *ReqTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[t.id]; ok {
		return // duplicate ID: keep the first
	}
	r.order = append(r.order, t.id)
	r.byID[t.id] = t
	for len(r.order) > r.cap {
		delete(r.byID, r.order[0])
		r.order = r.order[1:]
	}
}

// Get returns the retained trace with the given ID, or nil.
func (r *TraceRing) Get(id string) *ReqTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len returns the number of retained traces.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
