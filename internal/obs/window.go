package obs

import (
	"math"
	"sort"
	"sync"
)

// Exact quantiles. The registry's log₂ histograms answer "p99 is below
// 2^i" — good enough for job reports, too coarse for the serve-latency
// trajectory the benchmark tracks. A SampleWindow keeps the raw values
// of the most recent observations in a bounded ring so p50/p95/p99 can
// be extracted at their exact ranks.

// ExactQuantile returns the q-quantile (0 <= q <= 1) of samples using
// the nearest-rank definition: the value at rank ceil(q·n) of the
// sorted samples, so q=0 is the minimum and q=1 the maximum. It does
// not modify samples; an empty slice yields 0.
func ExactQuantile(samples []float64, q float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, samples)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// SampleWindow is a concurrency-safe ring of the most recent N
// observations. Once full, each new observation overwrites the oldest,
// so quantiles reflect recent behavior rather than the whole process
// lifetime.
type SampleWindow struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	full  bool
	total int64
}

// NewSampleWindow creates a window retaining up to capacity samples
// (minimum 1).
func NewSampleWindow(capacity int) *SampleWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &SampleWindow{buf: make([]float64, 0, capacity)}
}

// Observe records one sample, evicting the oldest when full.
func (w *SampleWindow) Observe(v float64) {
	w.mu.Lock()
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, v)
	} else {
		w.full = true
		w.buf[w.next] = v
		w.next = (w.next + 1) % cap(w.buf)
	}
	w.total++
	w.mu.Unlock()
}

// Count returns the total number of observations ever recorded (not the
// retained count).
func (w *SampleWindow) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Len returns the number of retained samples.
func (w *SampleWindow) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Quantile returns the exact q-quantile over the retained samples (0
// when empty).
func (w *SampleWindow) Quantile(q float64) float64 {
	w.mu.Lock()
	samples := make([]float64, len(w.buf))
	copy(samples, w.buf)
	w.mu.Unlock()
	return ExactQuantile(samples, q)
}

// Quantiles returns the exact quantiles for each q in one pass over the
// retained samples.
func (w *SampleWindow) Quantiles(qs ...float64) []float64 {
	w.mu.Lock()
	sorted := make([]float64, len(w.buf))
	copy(sorted, w.buf)
	w.mu.Unlock()
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	n := len(sorted)
	for i, q := range qs {
		if n == 0 {
			continue
		}
		rank := int(math.Ceil(q * float64(n)))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		out[i] = sorted[rank-1]
	}
	return out
}
