package obs

import (
	"testing"
)

func TestExactQuantileRanks(t *testing.T) {
	// 1..100: nearest-rank quantiles land exactly on integers.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	} {
		if got := ExactQuantile(samples, tc.q); got != tc.want {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	// Rank boundaries with n=4: ceil(0.25*4)=1, ceil(0.5*4)=2,
	// ceil(0.51*4)=3.
	four := []float64{10, 20, 30, 40}
	if got := ExactQuantile(four, 0.25); got != 10 {
		t.Errorf("q=0.25 over 4: got %v, want 10", got)
	}
	if got := ExactQuantile(four, 0.5); got != 20 {
		t.Errorf("q=0.5 over 4: got %v, want 20", got)
	}
	if got := ExactQuantile(four, 0.51); got != 30 {
		t.Errorf("q=0.51 over 4: got %v, want 30", got)
	}
}

func TestExactQuantileDegenerate(t *testing.T) {
	if got := ExactQuantile(nil, 0.99); got != 0 {
		t.Errorf("empty: got %v, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := ExactQuantile([]float64{7}, q); got != 7 {
			t.Errorf("single sample q=%v: got %v, want 7", q, got)
		}
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	ExactQuantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestSampleWindowEviction(t *testing.T) {
	w := NewSampleWindow(4)
	for v := 1; v <= 6; v++ {
		w.Observe(float64(v))
	}
	if w.Count() != 6 {
		t.Fatalf("Count = %d, want 6", w.Count())
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	// Retained window is {3,4,5,6}: 1 and 2 were evicted.
	if got := w.Quantile(0); got != 3 {
		t.Errorf("min of window = %v, want 3", got)
	}
	if got := w.Quantile(1); got != 6 {
		t.Errorf("max of window = %v, want 6", got)
	}
	qs := w.Quantiles(0.5, 1)
	if qs[0] != 4 || qs[1] != 6 {
		t.Errorf("Quantiles = %v, want [4 6]", qs)
	}
}

func TestSampleWindowEmptyAndMinCap(t *testing.T) {
	w := NewSampleWindow(0) // clamps to 1
	if got := w.Quantile(0.99); got != 0 {
		t.Errorf("empty window quantile = %v, want 0", got)
	}
	w.Observe(5)
	w.Observe(9)
	if w.Len() != 1 || w.Quantile(0.5) != 9 {
		t.Errorf("cap-1 window should hold only the latest: len=%d q=%v", w.Len(), w.Quantile(0.5))
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	// Empty histogram.
	var empty HistogramSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty: got %v, want 0", got)
	}

	// Single sample: the bucket upper bound clamps to Max.
	r := NewRegistry()
	r.Observe("h", 5)
	h := r.Snapshot().Histograms["h"]
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("single sample: got %v, want 5", got)
	}

	// Values exactly on bucket boundaries: 1, 2, 4 land in buckets 1, 2, 3.
	r2 := NewRegistry()
	for _, v := range []float64{1, 2, 4} {
		r2.Observe("h", v)
	}
	h2 := r2.Snapshot().Histograms["h"]
	if got := h2.Quantile(1.0 / 3.0); got != 2 {
		t.Errorf("q=1/3: got %v, want bucket bound 2", got)
	}
	if got := h2.Quantile(0.5); got != 4 {
		t.Errorf("q=0.5: got %v, want bucket bound 4", got)
	}
	if got := h2.Quantile(1); got != 4 {
		t.Errorf("q=1: got %v, want max 4 (clamped below bound 8)", got)
	}
}
