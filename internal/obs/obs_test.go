package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {3, 2}, {4, 3}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := bucketOf(1e30); got != NumBuckets-1 {
		t.Errorf("huge value bucket = %d, want %d", got, NumBuckets-1)
	}
	// Bucket bounds must be consistent with assignment: BucketLo(i) is the
	// smallest value mapping to bucket i.
	for i := 1; i < 10; i++ {
		if bucketOf(BucketLo(i)) != i {
			t.Errorf("BucketLo(%d)=%v maps to bucket %d", i, BucketLo(i), bucketOf(BucketLo(i)))
		}
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Inc("a", 2)
	r.Inc("a", 3)
	r.SetGauge("g", 0.75)
	if r.Counter("a") != 5 {
		t.Errorf("counter a = %d", r.Counter("a"))
	}
	s := r.Snapshot()
	if s.Counters["a"] != 5 || s.Gauges["g"] != 0.75 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.Observe("h", float64(i))
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 100 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("histogram = %+v", h)
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("mean = %v", m)
	}
	// Quantiles are bucket upper bounds: p50 of 1..100 lands in the
	// [32,64) bucket, so the bound is 64.
	if q := h.Quantile(0.5); q != 64 {
		t.Errorf("p50 bound = %v, want 64", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100 bound = %v, want max", q)
	}
	if !strings.Contains(h.String(), "n=100") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestTaskMetricsMergeOnce(t *testing.T) {
	r := NewRegistry()
	tm := NewTaskMetrics()
	tm.Inc("records", 7)
	tm.Inc("records", 3)
	tm.Observe("dur", 12)
	// Nothing visible before the merge.
	if r.Counter("records") != 0 {
		t.Fatal("task buffer leaked into registry before merge")
	}
	r.Merge(tm)
	if r.Counter("records") != 10 {
		t.Errorf("records = %d", r.Counter("records"))
	}
	if h := r.Snapshot().Histograms["dur"]; h.Count != 1 || h.Sum != 12 {
		t.Errorf("dur histogram = %+v", h)
	}
	r.Merge(nil) // must be a no-op
}

func TestRegistryConcurrentMerge(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm := NewTaskMetrics()
			for j := 0; j < 100; j++ {
				tm.Inc("n", 1)
				tm.Observe("v", float64(j))
			}
			r.Merge(tm)
		}()
	}
	wg.Wait()
	if r.Counter("n") != 3200 {
		t.Errorf("n = %d", r.Counter("n"))
	}
	if h := r.Snapshot().Histograms["v"]; h.Count != 3200 {
		t.Errorf("v count = %d", h.Count)
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewTrace("test-job")
	root := tr.Start("job", PhaseJob, 0, -1)
	m := tr.Start("map-0", PhaseMap, root.ID, 0)
	m.Partition = "c3"
	m.RecordsIn = 10
	m.RecordsOut = 4
	m.Bytes = 123
	m.Finish(OutcomeOK)
	s := tr.Start("shuffle", PhaseShuffle, root.ID, -1)
	s.Finish(OutcomeOK)
	root.Finish(OutcomeOK)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[1].Parent != spans[0].ID || spans[1].Phase != PhaseMap {
		t.Errorf("map span links wrong: %+v", spans[1])
	}
	if spans[1].Partition != "c3" || spans[1].RecordsIn != 10 || spans[1].Bytes != 123 {
		t.Errorf("map span payload lost: %+v", spans[1])
	}
	if spans[1].Outcome != OutcomeOK || spans[1].DurUS < 1 {
		t.Errorf("map span timing/outcome: %+v", spans[1])
	}
}

func TestChromeTraceExportValidates(t *testing.T) {
	tr := NewTrace("test-job")
	root := tr.Start("job", PhaseJob, 0, -1)
	for i := 0; i < 3; i++ {
		sp := tr.Start("map", PhaseMap, root.ID, i)
		sp.Finish(OutcomeOK)
	}
	root.Finish(OutcomeOK)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace([]byte("{}")); err == nil {
		t.Error("empty trace should not validate")
	}
	if err := ValidateChromeTrace([]byte("not json")); err == nil {
		t.Error("garbage should not validate")
	}
}
