// Package datagen generates the synthetic workloads of the evaluation:
// the five point distributions of paper Fig. 20 (uniform, Gaussian,
// correlated, reversely correlated, circular), a clustered mixture standing
// in for the OSM real datasets, and ZIP-code-like polygon tessellations for
// the union operation. All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"spatialhadoop/internal/geom"
)

// Distribution identifies one of the synthetic point distributions.
type Distribution int

// The synthetic distributions of paper Fig. 20, plus Clustered which stands
// in for the skewed OSM real data.
const (
	Uniform Distribution = iota
	Gaussian
	Correlated
	ReverselyCorrelated
	Circular
	Clustered
)

// ParseDistribution maps a name to a Distribution.
func ParseDistribution(name string) (Distribution, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "gaussian":
		return Gaussian, nil
	case "correlated":
		return Correlated, nil
	case "anticorrelated", "reversely-correlated":
		return ReverselyCorrelated, nil
	case "circular":
		return Circular, nil
	case "clustered", "osm":
		return Clustered, nil
	default:
		return 0, fmt.Errorf("datagen: unknown distribution %q", name)
	}
}

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Correlated:
		return "correlated"
	case ReverselyCorrelated:
		return "anticorrelated"
	case Circular:
		return "circular"
	case Clustered:
		return "clustered"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// DefaultArea is the generation area used throughout the evaluation,
// mirroring the paper's 1M x 1M synthetic space.
var DefaultArea = geom.NewRect(0, 0, 1e6, 1e6)

// Points generates n points of the given distribution inside area.
func Points(dist Distribution, n int, area geom.Rect, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	w, h := area.Width(), area.Height()
	cx, cy := area.Center().X, area.Center().Y

	// resample draws from gen until the point falls inside the area.
	// Clamping to the boundary would pile up thousands of exactly
	// collinear points on the area's edges — a Delaunay-degenerate
	// configuration no real dataset exhibits.
	resample := func(gen func() geom.Point) geom.Point {
		for i := 0; i < 64; i++ {
			if p := gen(); area.ContainsPoint(p) {
				return p
			}
		}
		return geom.Point{
			X: area.MinX + rng.Float64()*w,
			Y: area.MinY + rng.Float64()*h,
		}
	}

	switch dist {
	case Uniform:
		for i := 0; i < n; i++ {
			pts = append(pts, geom.Point{
				X: area.MinX + rng.Float64()*w,
				Y: area.MinY + rng.Float64()*h,
			})
		}
	case Gaussian:
		for i := 0; i < n; i++ {
			pts = append(pts, resample(func() geom.Point {
				return geom.Point{
					X: cx + rng.NormFloat64()*w/6,
					Y: cy + rng.NormFloat64()*h/6,
				}
			}))
		}
	case Correlated:
		// Points concentrated around the main diagonal: positions where x
		// and y are positively correlated (best case for skyline).
		for i := 0; i < n; i++ {
			pts = append(pts, resample(func() geom.Point {
				t := rng.Float64()
				jit := rng.NormFloat64() * 0.05
				return geom.Point{
					X: area.MinX + t*w,
					Y: area.MinY + (t+jit)*h,
				}
			}))
		}
	case ReverselyCorrelated:
		// Points around the anti-diagonal (worst case for skyline: a large
		// fraction of the input is on the skyline).
		for i := 0; i < n; i++ {
			pts = append(pts, resample(func() geom.Point {
				t := rng.Float64()
				jit := rng.NormFloat64() * 0.05
				return geom.Point{
					X: area.MinX + t*w,
					Y: area.MinY + (1-t+jit)*h,
				}
			}))
		}
	case Circular:
		// Points on a thin annulus: the worst case for farthest pair, where
		// the convex hull contains a large fraction of the input.
		r := math.Min(w, h) * 0.45
		for i := 0; i < n; i++ {
			theta := rng.Float64() * 2 * math.Pi
			rr := r * (0.98 + rng.Float64()*0.04)
			pts = append(pts, geom.Point{
				X: cx + rr*math.Cos(theta),
				Y: cy + rr*math.Sin(theta),
			})
		}
	case Clustered:
		pts = clusteredPoints(rng, n, area)
	default:
		panic(fmt.Sprintf("datagen: unknown distribution %d", int(dist)))
	}
	return pts
}

// clusteredPoints emits a skewed mixture: a number of Gaussian clusters of
// varying density plus a uniform background, approximating the spatial
// skew of OpenStreetMap extracts.
func clusteredPoints(rng *rand.Rand, n int, area geom.Rect) []geom.Point {
	w, h := area.Width(), area.Height()
	nClusters := 24
	type cluster struct {
		c      geom.Point
		sigma  float64
		weight float64
	}
	clusters := make([]cluster, nClusters)
	totalW := 0.0
	for i := range clusters {
		wgt := math.Pow(rng.Float64(), 2) + 0.02
		clusters[i] = cluster{
			c: geom.Point{
				X: area.MinX + rng.Float64()*w,
				Y: area.MinY + rng.Float64()*h,
			},
			sigma:  (0.005 + rng.Float64()*0.04) * math.Min(w, h),
			weight: wgt,
		}
		totalW += wgt
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.15 {
			pts = append(pts, geom.Point{
				X: area.MinX + rng.Float64()*w,
				Y: area.MinY + rng.Float64()*h,
			})
			continue
		}
		r := rng.Float64() * totalW
		var cl cluster
		for _, c := range clusters {
			if r -= c.weight; r <= 0 {
				cl = c
				break
			}
			cl = c
		}
		// Resample draws that land outside the area (see Points).
		p := geom.Point{X: area.MinX - 1, Y: area.MinY - 1}
		for try := 0; try < 64 && !area.ContainsPoint(p); try++ {
			p = geom.Point{
				X: cl.c.X + rng.NormFloat64()*cl.sigma,
				Y: cl.c.Y + rng.NormFloat64()*cl.sigma,
			}
		}
		if !area.ContainsPoint(p) {
			p = geom.Point{
				X: area.MinX + rng.Float64()*w,
				Y: area.MinY + rng.Float64()*h,
			}
		}
		pts = append(pts, p)
	}
	return pts
}

// Tessellation generates a ZIP-code-like set of polygons: a jittered grid
// of cells whose union is (approximately) the outer boundary of the grid,
// mirroring the union running example of paper Fig. 1. Cells share edges
// with their neighbours so the local union step genuinely removes interior
// segments. nx*ny polygons are produced.
func Tessellation(nx, ny int, area geom.Rect, seed int64) []geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	// Jittered lattice of (nx+1) x (ny+1) shared corner points.
	xs := make([][]geom.Point, ny+1)
	cw := area.Width() / float64(nx)
	ch := area.Height() / float64(ny)
	jx := cw * 0.25
	jy := ch * 0.25
	for iy := 0; iy <= ny; iy++ {
		xs[iy] = make([]geom.Point, nx+1)
		for ix := 0; ix <= nx; ix++ {
			p := geom.Point{
				X: area.MinX + float64(ix)*cw,
				Y: area.MinY + float64(iy)*ch,
			}
			// Interior lattice points are jittered; boundary points stay
			// put so the union boundary is the exact area rectangle.
			if ix > 0 && ix < nx {
				p.X += (rng.Float64()*2 - 1) * jx
			}
			if iy > 0 && iy < ny {
				p.Y += (rng.Float64()*2 - 1) * jy
			}
			xs[iy][ix] = p
		}
	}
	polys := make([]geom.Polygon, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			polys = append(polys, geom.Poly(
				xs[iy][ix], xs[iy][ix+1], xs[iy+1][ix+1], xs[iy+1][ix],
			))
		}
	}
	return polys
}

// RandomPolygons generates n random convex polygons with the given mean
// radius scattered over area; unlike Tessellation they may overlap
// arbitrarily or not at all. Used for the "complex" vs "simple" union
// datasets: vertices controls polygon complexity.
func RandomPolygons(n, vertices int, meanRadius float64, area geom.Rect, seed int64) []geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	polys := make([]geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		c := geom.Point{
			X: area.MinX + rng.Float64()*area.Width(),
			Y: area.MinY + rng.Float64()*area.Height(),
		}
		r := meanRadius * (0.5 + rng.Float64())
		k := vertices
		if k < 3 {
			k = 3
		}
		// Random convex polygon: sorted random angles around the center.
		angles := make([]float64, k)
		for j := range angles {
			angles[j] = rng.Float64() * 2 * math.Pi
		}
		sortFloats(angles)
		pts := make([]geom.Point, 0, k)
		for _, a := range angles {
			rr := r * (0.8 + rng.Float64()*0.4)
			pts = append(pts, geom.Point{X: c.X + rr*math.Cos(a), Y: c.Y + rr*math.Sin(a)})
		}
		pg := geom.Polygon{Vertices: geom.ConvexHull(pts)}
		if pg.Len() >= 3 {
			polys = append(polys, pg)
		}
	}
	return polys
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
