package datagen

import (
	"math"
	"testing"

	"spatialhadoop/internal/geom"
)

func TestAllDistributionsInArea(t *testing.T) {
	area := geom.NewRect(10, 20, 510, 520)
	for _, dist := range []Distribution{Uniform, Gaussian, Correlated, ReverselyCorrelated, Circular, Clustered} {
		pts := Points(dist, 2000, area, 42)
		if len(pts) != 2000 {
			t.Fatalf("%v: %d points", dist, len(pts))
		}
		for _, p := range pts {
			if !area.ContainsPoint(p) {
				t.Fatalf("%v: point %v outside area", dist, p)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Points(Clustered, 500, DefaultArea, 7)
	b := Points(Clustered, 500, DefaultArea, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same dataset")
		}
	}
	c := Points(Clustered, 500, DefaultArea, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

// TestNoBoundaryPileUp guards against the degenerate collinear clamping
// that breaks Delaunay-based processing: only a negligible share of points
// may sit exactly on the area border.
func TestNoBoundaryPileUp(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	for _, dist := range []Distribution{Gaussian, Clustered, Correlated, ReverselyCorrelated} {
		pts := Points(dist, 5000, area, 3)
		onEdge := 0
		for _, p := range pts {
			if p.X == area.MinX || p.X == area.MaxX || p.Y == area.MinY || p.Y == area.MaxY {
				onEdge++
			}
		}
		if onEdge > 5 {
			t.Errorf("%v: %d points exactly on the boundary", dist, onEdge)
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	area := geom.NewRect(0, 0, 1000, 1000)
	// Correlated: x and y strongly positively correlated.
	corr := correlation(Points(Correlated, 5000, area, 5))
	if corr < 0.8 {
		t.Errorf("correlated: r = %.2f, want > 0.8", corr)
	}
	anti := correlation(Points(ReverselyCorrelated, 5000, area, 5))
	if anti > -0.8 {
		t.Errorf("anticorrelated: r = %.2f, want < -0.8", anti)
	}
	// Circular: all points at a narrow band of radii from the center.
	c := area.Center()
	for _, p := range Points(Circular, 2000, area, 5) {
		r := p.Dist(c) / (math.Min(area.Width(), area.Height()) * 0.45)
		if r < 0.97 || r > 1.03 {
			t.Fatalf("circular: radius ratio %.3f out of band", r)
		}
	}
	// Gaussian: mass concentrated near the center.
	inner := 0
	gauss := Points(Gaussian, 5000, area, 5)
	for _, p := range gauss {
		if p.Dist(c) < 350 {
			inner++
		}
	}
	if float64(inner)/float64(len(gauss)) < 0.75 {
		t.Errorf("gaussian: only %d of %d points near center", inner, len(gauss))
	}
}

func correlation(pts []geom.Point) float64 {
	var sx, sy, sxx, syy, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		syy += p.Y * p.Y
		sxy += p.X * p.Y
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}

func TestTessellationProperties(t *testing.T) {
	area := geom.NewRect(0, 0, 100, 200)
	polys := Tessellation(5, 10, area, 3)
	if len(polys) != 50 {
		t.Fatalf("got %d polygons, want 50", len(polys))
	}
	totalArea := 0.0
	for _, pg := range polys {
		if pg.Len() != 4 {
			t.Fatalf("cell with %d vertices", pg.Len())
		}
		totalArea += pg.Area()
	}
	// The cells tile the area exactly.
	if math.Abs(totalArea-area.Area()) > 1e-6*area.Area() {
		t.Errorf("cells cover %g, area is %g", totalArea, area.Area())
	}
}

func TestRandomPolygonsConvex(t *testing.T) {
	polys := RandomPolygons(100, 8, 30, geom.NewRect(0, 0, 1000, 1000), 5)
	if len(polys) == 0 {
		t.Fatal("no polygons")
	}
	for _, pg := range polys {
		if !geom.IsConvex(pg.Vertices) {
			t.Fatalf("polygon not convex: %v", pg)
		}
		if pg.Area() <= 0 {
			t.Fatal("degenerate polygon")
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for _, name := range []string{"uniform", "gaussian", "correlated", "anticorrelated", "circular", "clustered"} {
		d, err := ParseDistribution(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.String() != name {
			t.Errorf("round trip %q -> %q", name, d.String())
		}
	}
	if _, err := ParseDistribution("pareto"); err == nil {
		t.Error("expected error")
	}
}
