package geom

import "math"

// edgeGrid is a uniform spatial hash over item MBRs used to find candidate
// intersecting pairs without the O(n^2) all-pairs scan.
type edgeGrid struct {
	bounds Rect
	nx, ny int
	cw, ch float64
	cells  map[int][]int
}

// newEdgeGrid sizes a grid for roughly n items over the given bounds.
func newEdgeGrid(bounds Rect, n int) *edgeGrid {
	if bounds.IsEmpty() || bounds.Width() == 0 && bounds.Height() == 0 {
		bounds = bounds.Buffer(1)
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	if side > 512 {
		side = 512
	}
	g := &edgeGrid{bounds: bounds, nx: side, ny: side, cells: make(map[int][]int)}
	g.cw = bounds.Width() / float64(side)
	g.ch = bounds.Height() / float64(side)
	if g.cw <= 0 {
		g.cw = 1
	}
	if g.ch <= 0 {
		g.ch = 1
	}
	return g
}

func (g *edgeGrid) cellRange(r Rect) (x0, y0, x1, y1 int) {
	x0 = g.clampX(int((r.MinX - g.bounds.MinX) / g.cw))
	x1 = g.clampX(int((r.MaxX - g.bounds.MinX) / g.cw))
	y0 = g.clampY(int((r.MinY - g.bounds.MinY) / g.ch))
	y1 = g.clampY(int((r.MaxY - g.bounds.MinY) / g.ch))
	return
}

func (g *edgeGrid) clampX(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.nx {
		return g.nx - 1
	}
	return i
}

func (g *edgeGrid) clampY(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.ny {
		return g.ny - 1
	}
	return i
}

// insert registers item id with the cells overlapping r.
func (g *edgeGrid) insert(id int, r Rect) {
	x0, y0, x1, y1 := g.cellRange(r)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			c := y*g.nx + x
			g.cells[c] = append(g.cells[c], id)
		}
	}
}

// forEachPair calls fn once for each unordered pair of items sharing a
// cell. Pairs spanning several shared cells are reported once.
func (g *edgeGrid) forEachPair(fn func(i, j int)) {
	seen := make(map[uint64]struct{})
	for _, ids := range g.cells {
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				i, j := ids[a], ids[b]
				if i > j {
					i, j = j, i
				}
				k := uint64(i)<<32 | uint64(uint32(j))
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				fn(i, j)
			}
		}
	}
}

// OverlapCandidates returns the unordered index pairs whose rectangles
// intersect, found via a uniform spatial hash — the candidate set for the
// polygon-union grouping step and other self-join style passes.
func OverlapCandidates(bounds []Rect) [][2]int {
	all := EmptyRect()
	for _, b := range bounds {
		all = all.Union(b)
	}
	g := newEdgeGrid(all, len(bounds))
	for i, b := range bounds {
		g.insert(i, b)
	}
	var out [][2]int
	g.forEachPair(func(i, j int) {
		if bounds[i].Intersects(bounds[j]) {
			out = append(out, [2]int{i, j})
		}
	})
	return out
}

// forEachAt calls fn for every item whose cell contains p, stopping early
// when fn returns false.
func (g *edgeGrid) forEachAt(p Point, fn func(id int) bool) {
	x := g.clampX(int((p.X - g.bounds.MinX) / g.cw))
	y := g.clampY(int((p.Y - g.bounds.MinY) / g.ch))
	for _, id := range g.cells[y*g.nx+x] {
		if !fn(id) {
			return
		}
	}
}
