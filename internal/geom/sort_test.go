package geom

import (
	"math/rand"
	"slices"
	"testing"
)

// TestSortPointsXYMatchesGenericSort pins the specialized introsort to the
// ordering of the generic comparator sort it replaced, across sizes that
// exercise the insertion, quicksort and (via adversarial equal keys)
// partitioning paths.
func TestSortPointsXYMatchesGenericSort(t *testing.T) {
	ref := func(p []Point) {
		slices.SortFunc(p, func(a, b Point) int {
			switch {
			case a.X < b.X:
				return -1
			case a.X > b.X:
				return 1
			case a.Y < b.Y:
				return -1
			case a.Y > b.Y:
				return 1
			}
			return 0
		})
	}
	rng := rand.New(rand.NewSource(11))
	gen := func(n, dup int) []Point {
		out := make([]Point, n)
		for i := range out {
			if dup > 0 {
				out[i] = Pt(float64(rng.Intn(dup)), float64(rng.Intn(dup)))
			} else {
				out[i] = Pt(rng.NormFloat64()*1e6, rng.Float64()*1e6)
			}
		}
		return out
	}
	for _, n := range []int{0, 1, 2, 3, 12, 13, 100, 5000} {
		for _, dup := range []int{0, 1, 3} {
			a := gen(n, dup)
			b := slices.Clone(a)
			SortPointsXY(a)
			ref(b)
			if !slices.Equal(a, b) {
				t.Fatalf("n=%d dup=%d: specialized sort diverges from reference", n, dup)
			}
		}
	}
	// Pre-sorted and reverse-sorted inputs (quicksort worst cases).
	asc := make([]Point, 4096)
	for i := range asc {
		asc[i] = Pt(float64(i), float64(-i))
	}
	desc := slices.Clone(asc)
	slices.Reverse(desc)
	SortPointsXY(desc)
	if !slices.Equal(desc, asc) {
		t.Fatal("reverse-sorted input not restored to ascending order")
	}
	again := slices.Clone(asc)
	SortPointsXY(again)
	if !slices.Equal(again, asc) {
		t.Fatal("already-sorted input perturbed")
	}
}
