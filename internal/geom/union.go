package geom

import (
	"math"
	"sort"
)

// Region is a plane region bounded by one or more rings interpreted with
// the even-odd rule. A simple polygon is a single-ring region; the union of
// overlapping polygons may produce multiple outer rings and holes. Region
// is the record type that flows through the distributed union pipeline: the
// local union step emits regions, and the merge step unions regions again.
type Region struct {
	Rings []Polygon
}

// RegionOf wraps a single polygon as a region.
func RegionOf(pg Polygon) Region { return Region{Rings: []Polygon{pg}} }

// Bounds returns the MBR of all rings.
func (rg Region) Bounds() Rect {
	b := EmptyRect()
	for _, ring := range rg.Rings {
		b = b.Union(ring.Bounds())
	}
	return b
}

// Edges returns the edges of all rings.
func (rg Region) Edges() []Segment {
	var out []Segment
	for _, ring := range rg.Rings {
		out = append(out, ring.Edges()...)
	}
	return out
}

// VertexCount returns the total number of vertices across rings. It stands
// in for record size in pruning statistics.
func (rg Region) VertexCount() int {
	n := 0
	for _, ring := range rg.Rings {
		n += len(ring.Vertices)
	}
	return n
}

// ContainsPoint reports whether p is inside the region by the even-odd
// rule (boundary points count as inside).
func (rg Region) ContainsPoint(p Point) bool {
	crossings := 0
	for _, ring := range rg.Rings {
		v := ring.Vertices
		if len(v) < 3 {
			continue
		}
		for i, j := 0, len(v)-1; i < len(v); j, i = i, i+1 {
			a, b := v[i], v[j]
			if Seg(a, b).ContainsPoint(p) {
				return true
			}
			if (a.Y > p.Y) != (b.Y > p.Y) {
				x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
				if p.X < x {
					crossings++
				}
			}
		}
	}
	return crossings%2 == 1
}

// UnionRegions computes the union of regions: the boundary of the set of
// points covered by at least one region. It returns the result both as a
// stitched multi-ring region and as the canonical boundary segment set.
//
// The algorithm is a segment arrangement (DESIGN.md substitution for the
// JTS buffer trick): split every edge at its intersections with edges of
// other regions, then keep exactly the sub-segments that have covered space
// on one side and free space on the other.
func UnionRegions(regions []Region) (Region, []Segment) {
	segs := UnionBoundarySegments(regions)
	return StitchRings(segs), segs
}

// UnionPolygons is a convenience wrapper over UnionRegions for plain
// polygons.
func UnionPolygons(polys []Polygon) (Region, []Segment) {
	regions := make([]Region, len(polys))
	for i, pg := range polys {
		regions[i] = RegionOf(pg)
	}
	return UnionRegions(regions)
}

// ownedEdge tags an edge with the region it came from.
type ownedEdge struct {
	seg   Segment
	owner int
	cuts  []Point
}

// UnionBoundarySegments returns the boundary of the union of the regions
// as a deduplicated, canonically-oriented segment set sorted in a
// deterministic order.
func UnionBoundarySegments(regions []Region) []Segment {
	var edges []ownedEdge
	bounds := EmptyRect()
	for i, rg := range regions {
		for _, e := range rg.Edges() {
			edges = append(edges, ownedEdge{seg: e, owner: i})
		}
		bounds = bounds.Union(rg.Bounds())
	}
	if len(edges) == 0 {
		return nil
	}

	eps := sideEps(bounds)
	grid := newEdgeGrid(bounds, len(edges))
	for i := range edges {
		grid.insert(i, edges[i].seg.Bounds())
	}

	// Split edges at pairwise intersections (edges of the same region are
	// assumed non-crossing: rings of one region come from a previous valid
	// union or a simple polygon).
	grid.forEachPair(func(i, j int) {
		if edges[i].owner == edges[j].owner {
			return
		}
		pts := IntersectSegments(edges[i].seg, edges[j].seg)
		for _, p := range pts {
			edges[i].cuts = append(edges[i].cuts, p)
			edges[j].cuts = append(edges[j].cuts, p)
		}
	})

	// Index regions for coverage queries.
	rgrid := newEdgeGrid(bounds, len(regions))
	for i := range regions {
		rgrid.insert(i, regions[i].Bounds())
	}

	covered := func(p Point) bool {
		hit := false
		rgrid.forEachAt(p, func(i int) bool {
			if regions[i].ContainsPoint(p) {
				hit = true
				return false
			}
			return true
		})
		return hit
	}

	// Sub-segments shorter than this carry no boundary information; they
	// arise from intersection points computed twice with 1-ULP jitter and
	// would otherwise poison downstream vertex matching.
	minLen := eps * 1e-2

	var out []Segment
	for _, e := range edges {
		for _, sub := range e.seg.SplitAt(e.cuts) {
			if sub.Length() < minLen {
				continue
			}
			m := sub.Midpoint()
			// Unit normal of the sub-segment.
			d := sub.B.Sub(sub.A)
			n := Point{-d.Y, d.X}
			ln := n.Norm()
			if ln == 0 {
				continue
			}
			n = n.Scale(eps / ln)
			left := covered(m.Add(n))
			right := covered(m.Sub(n))
			if left != right {
				out = append(out, sub.Canonical())
			}
		}
	}
	return dedupeSegments(out)
}

// sideEps picks the offset used for side-of-boundary coverage probes,
// proportional to the data extent.
func sideEps(b Rect) float64 {
	diag := math.Hypot(b.Width(), b.Height())
	if diag == 0 || math.IsInf(diag, 0) {
		return 1e-9
	}
	return math.Max(1e-9, diag*1e-8)
}

// CanonicalizeSegments returns a canonically-oriented, sorted, deduplicated
// copy of the segments — the normal form union results are compared in.
func CanonicalizeSegments(segs []Segment) []Segment {
	return dedupeSegments(append([]Segment(nil), segs...))
}

// pointSnapper maps points that coincide up to a tolerance onto a single
// representative, so that coordinates reconstructed through different
// intersection chains (differing in the last float bits) compare equal.
type pointSnapper struct {
	q    float64
	reps map[[2]int64][]Point
}

func newPointSnapper(bounds Rect) *pointSnapper {
	q := math.Max(1e-15, math.Hypot(bounds.Width(), bounds.Height())*1e-11)
	return &pointSnapper{q: q, reps: make(map[[2]int64][]Point)}
}

// snap returns the canonical representative for p, registering p as a new
// representative when no existing one lies within the tolerance.
func (ps *pointSnapper) snap(p Point) Point {
	cx := int64(math.Floor(p.X / ps.q))
	cy := int64(math.Floor(p.Y / ps.q))
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, r := range ps.reps[[2]int64{cx + dx, cy + dy}] {
				if math.Abs(r.X-p.X) <= ps.q && math.Abs(r.Y-p.Y) <= ps.q {
					return r
				}
			}
		}
	}
	ps.reps[[2]int64{cx, cy}] = append(ps.reps[[2]int64{cx, cy}], p)
	return p
}

// dedupeSegments snaps endpoints, canonicalizes, sorts and removes
// duplicate segments. Snapping makes near-identical copies — the same
// boundary piece reconstructed through different intersection chains, or
// replicated records under disjoint partitioning — exactly equal, so the
// later ring stitching connects them reliably.
func dedupeSegments(segs []Segment) []Segment {
	if len(segs) == 0 {
		return segs
	}
	bounds := EmptyRect()
	for _, s := range segs {
		bounds = bounds.Union(s.Bounds())
	}
	ps := newPointSnapper(bounds)
	seen := make(map[Segment]bool, len(segs))
	out := segs[:0]
	for i := range segs {
		s := Segment{A: ps.snap(segs[i].A), B: ps.snap(segs[i].B)}.Canonical()
		if s.IsDegenerate() || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return segLess(out[i], out[j]) })
	return out
}

func segLess(a, b Segment) bool {
	if !a.A.Equal(b.A) {
		return a.A.Less(b.A)
	}
	return a.B.Less(b.B)
}

// StitchRings assembles boundary segments into closed rings. Every vertex
// of a valid union boundary has even degree, so a walk that always leaves a
// vertex by an unused edge terminates with all edges consumed. Chains that
// fail to close (numerically degenerate inputs) are emitted as open rings
// so no boundary is silently lost.
func StitchRings(segs []Segment) Region {
	// Endpoints are snapped to cluster representatives so that vertices
	// computed through different intersection pairs (and thus differing in
	// the last float bits) still connect.
	bounds := EmptyRect()
	for _, s := range segs {
		bounds = bounds.Union(s.Bounds())
	}
	ps := newPointSnapper(bounds)
	snapped := make([]Segment, 0, len(segs))
	for _, s := range segs {
		sn := Segment{A: ps.snap(s.A), B: ps.snap(s.B)}
		if !sn.IsDegenerate() {
			snapped = append(snapped, sn)
		}
	}
	segs = snapped
	type vkey struct{ x, y float64 }
	adj := make(map[vkey][]int, len(segs))
	used := make([]bool, len(segs))
	key := func(p Point) vkey { return vkey{p.X, p.Y} }
	for i, s := range segs {
		adj[key(s.A)] = append(adj[key(s.A)], i)
		adj[key(s.B)] = append(adj[key(s.B)], i)
	}

	var rings []Polygon
	for start := range segs {
		if used[start] {
			continue
		}
		used[start] = true
		ring := []Point{segs[start].A, segs[start].B}
		cur := segs[start].B
		first := key(segs[start].A)
		for key(cur) != first {
			found := -1
			for _, ei := range adj[key(cur)] {
				if !used[ei] {
					found = ei
					break
				}
			}
			if found == -1 {
				break // open chain; keep what we have
			}
			used[found] = true
			next := segs[found].B
			if key(segs[found].A) != key(cur) {
				next = segs[found].A
			}
			cur = next
			if key(cur) != first {
				ring = append(ring, cur)
			}
		}
		rings = append(rings, Polygon{Vertices: ring})
	}
	return Region{Rings: rings}
}

// ClipBoundaryToRect clips boundary segments to a rectangle, the pruning
// step of the enhanced union algorithm (paper §4.4): every part of the
// local result outside the partition boundary is discarded, because it is
// either interior to the global union or regenerated exactly by the
// neighbouring partition.
func ClipBoundaryToRect(segs []Segment, r Rect) []Segment {
	out := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if c, ok := s.ClipToRect(r); ok {
			out = append(out, c.Canonical())
		}
	}
	return dedupeSegments(out)
}

// TotalLength returns the summed length of the segments; union variants are
// compared by boundary length plus point-on-boundary sampling.
func TotalLength(segs []Segment) float64 {
	sum := 0.0
	for _, s := range segs {
		sum += s.Length()
	}
	return sum
}

// OnAnySegment reports whether p lies on at least one of the segments.
func OnAnySegment(p Point, segs []Segment) bool {
	for _, s := range segs {
		if s.ContainsPoint(p) {
			return true
		}
	}
	return false
}
