package geom

import (
	"math"
	"sort"
)

// PointPair is a pair of points together with their distance.
type PointPair struct {
	P, Q Point
	Dist float64
}

// ClosestPair returns the pair of points at minimum Euclidean distance
// using the classical divide-and-conquer algorithm (paper §9). For fewer
// than two points it returns ok=false.
//
// The input slice is not modified.
func ClosestPair(pts []Point) (PointPair, bool) {
	if len(pts) < 2 {
		return PointPair{}, false
	}
	px := make([]Point, len(pts))
	copy(px, pts)
	sort.Slice(px, func(i, j int) bool { return px[i].Less(px[j]) })
	py := make([]Point, len(px))
	copy(py, px)
	sort.Slice(py, func(i, j int) bool { return py[i].Y < py[j].Y })
	p, q, d2 := closestRec(px, py)
	return PointPair{P: p, Q: q, Dist: math.Sqrt(d2)}, true
}

// closestRec computes the closest pair of px (sorted canonically by x) using
// py (the same multiset sorted by y). It returns the pair and the squared
// distance.
func closestRec(px, py []Point) (Point, Point, float64) {
	n := len(px)
	if n <= 3 {
		best := math.Inf(1)
		var a, b Point
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if d := px[i].Dist2(px[j]); d < best {
					best, a, b = d, px[i], px[j]
				}
			}
		}
		return a, b, best
	}
	mid := n / 2
	midPt := px[mid]

	// Partition py into the two halves, preserving y order. Points are
	// routed by the same canonical order used to split px so that points
	// sharing the pivot's x coordinate land consistently.
	ly := make([]Point, 0, mid)
	ry := make([]Point, 0, n-mid)
	for _, p := range py {
		if p.Less(midPt) {
			ly = append(ly, p)
		} else {
			ry = append(ry, p)
		}
	}

	la, lb, ld := closestRec(px[:mid], ly)
	ra, rb, rd := closestRec(px[mid:], ry)

	a, b, best := la, lb, ld
	if rd < best {
		a, b, best = ra, rb, rd
	}

	// Strip: points within sqrt(best) of the dividing line, in y order.
	limit := math.Sqrt(best)
	strip := make([]Point, 0, 32)
	for _, p := range py {
		if math.Abs(p.X-midPt.X) < limit {
			strip = append(strip, p)
		}
	}
	for i := 0; i < len(strip); i++ {
		for j := i + 1; j < len(strip) && strip[j].Y-strip[i].Y < limit; j++ {
			if d := strip[i].Dist2(strip[j]); d < best {
				best, a, b = d, strip[i], strip[j]
				limit = math.Sqrt(best)
			}
		}
	}
	return a, b, best
}

// ClosestPairBrute returns the closest pair by checking all O(n^2) pairs.
// It is the oracle for differential tests.
func ClosestPairBrute(pts []Point) (PointPair, bool) {
	if len(pts) < 2 {
		return PointPair{}, false
	}
	best := math.Inf(1)
	var a, b Point
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist2(pts[j]); d < best {
				best, a, b = d, pts[i], pts[j]
			}
		}
	}
	return PointPair{P: a, Q: b, Dist: math.Sqrt(best)}, true
}
