package geom

import (
	"fmt"
	"math"
	"sort"
)

// Segment is a line segment between two endpoints.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return Midpoint(s.A, s.B) }

// Bounds returns the MBR of s.
func (s Segment) Bounds() Rect {
	return NewRect(s.A.X, s.A.Y, s.B.X, s.B.Y)
}

// Reverse returns s with its endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A} }

// Canonical returns s oriented so that A <= B in the canonical point order.
// Canonical segments compare equal regardless of original direction, which
// lets union results from different execution plans be compared as sets.
func (s Segment) Canonical() Segment {
	if s.B.Less(s.A) {
		return s.Reverse()
	}
	return s
}

// IsDegenerate reports whether the segment has zero length.
func (s Segment) IsDegenerate() bool { return s.A.Equal(s.B) }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("%v-%v", s.A, s.B) }

// ContainsPoint reports whether p lies on s (within a small tolerance
// proportional to the segment length). Degenerate and near-degenerate
// segments contain only points coincident with their endpoints.
func (s Segment) ContainsPoint(p Point) bool {
	const eps = 1e-9
	d := s.B.Sub(s.A)
	dn := d.Norm()
	if dn <= eps {
		return p.Dist(s.A) <= eps
	}
	ap := p.Sub(s.A)
	// Perpendicular distance from the segment's line.
	if math.Abs(d.Cross(ap))/dn > eps*math.Max(1, dn) {
		return false
	}
	t := ap.Dot(d)
	return t >= -eps && t <= d.Dot(d)+eps
}

// IntersectSegments computes the intersection of s and t. It returns the
// intersection points (zero, one, or — for collinear overlap — the two
// endpoints of the shared sub-segment). Parallelism and collinearity are
// decided with a small relative tolerance so that copies of the same
// boundary piece reconstructed with last-bit jitter are recognized as
// overlapping rather than crossing.
func IntersectSegments(s, t Segment) []Point {
	p, r := s.A, s.B.Sub(s.A)
	q, u := t.A, t.B.Sub(t.A)
	rxu := r.Cross(u)
	qp := q.Sub(p)

	if math.Abs(rxu) <= 1e-12*r.Norm()*u.Norm() {
		// Parallel. Collinear when the offset between the lines is
		// negligible relative to the geometry.
		if math.Abs(qp.Cross(r)) > 1e-9*math.Max(1, qp.Norm())*r.Norm() {
			return nil // parallel, non-intersecting
		}
		// Collinear: project onto r and find the overlap interval.
		rr := r.Dot(r)
		if rr == 0 {
			if t.ContainsPoint(p) {
				return []Point{p}
			}
			return nil
		}
		t0 := qp.Dot(r) / rr
		t1 := t0 + u.Dot(r)/rr
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		lo, hi = math.Max(lo, 0), math.Min(hi, 1)
		if lo > hi {
			return nil
		}
		a := p.Add(r.Scale(lo))
		b := p.Add(r.Scale(hi))
		if a.Equal(b) {
			return []Point{a}
		}
		return []Point{a, b}
	}

	tt := qp.Cross(u) / rxu
	uu := qp.Cross(r) / rxu
	const eps = 1e-12
	if tt < -eps || tt > 1+eps || uu < -eps || uu > 1+eps {
		return nil
	}
	return []Point{p.Add(r.Scale(clamp01(tt)))}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// SplitAt returns s cut into sub-segments at the given points. Points not
// on the segment are ignored; the result is ordered from A to B and
// degenerate pieces are dropped.
func (s Segment) SplitAt(pts []Point) []Segment {
	if len(pts) == 0 {
		return []Segment{s}
	}
	d := s.B.Sub(s.A)
	dd := d.Dot(d)
	type cut struct {
		t float64
		p Point
	}
	cuts := make([]cut, 0, len(pts)+2)
	cuts = append(cuts, cut{0, s.A}, cut{1, s.B})
	for _, p := range pts {
		if !s.ContainsPoint(p) {
			continue
		}
		t := 0.0
		if dd > 0 {
			t = p.Sub(s.A).Dot(d) / dd
		}
		cuts = append(cuts, cut{clamp01(t), p})
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].t < cuts[j].t })
	out := make([]Segment, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		seg := Segment{A: cuts[i-1].p, B: cuts[i].p}
		if !seg.IsDegenerate() {
			out = append(out, seg)
		}
	}
	return out
}

// ClipToRect returns the portion of s inside r and reports whether any
// portion remains. It implements Liang–Barsky clipping and is the pruning
// primitive of the enhanced union algorithm (paper §4.4).
func (s Segment) ClipToRect(r Rect) (Segment, bool) {
	t0, t1 := 0.0, 1.0
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y

	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}

	if !clip(-dx, s.A.X-r.MinX) || !clip(dx, r.MaxX-s.A.X) ||
		!clip(-dy, s.A.Y-r.MinY) || !clip(dy, r.MaxY-s.A.Y) {
		return Segment{}, false
	}
	out := Segment{
		A: Point{s.A.X + t0*dx, s.A.Y + t0*dy},
		B: Point{s.A.X + t1*dx, s.A.Y + t1*dy},
	}
	if out.IsDegenerate() {
		return Segment{}, false
	}
	return out, true
}
