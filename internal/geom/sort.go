package geom

// SortPointsXY sorts points by X, breaking ties by Y — the canonical
// response order of the serving layer. It is a hand-specialized introsort:
// the generic slices.SortFunc pays a non-inlinable closure call per
// comparison, which showed up as a double-digit share of the serve CPU
// profile when large range results are canonicalized. Ordering semantics
// are identical to sorting with a (X, then Y) comparator, and are pinned
// by a differential test against the generic sort.
func SortPointsXY(p []Point) {
	if len(p) < 2 {
		return
	}
	depth := 0
	for n := len(p); n > 0; n >>= 1 {
		depth++
	}
	quickPointsXY(p, 2*depth)
}

func pointLessXY(a, b Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

func quickPointsXY(p []Point, depth int) {
	for len(p) > 12 {
		if depth == 0 {
			heapPointsXY(p)
			return
		}
		depth--
		// Median-of-three pivot at p[0].
		m := len(p) / 2
		h := len(p) - 1
		if pointLessXY(p[m], p[0]) {
			p[m], p[0] = p[0], p[m]
		}
		if pointLessXY(p[h], p[m]) {
			p[h], p[m] = p[m], p[h]
			if pointLessXY(p[m], p[0]) {
				p[m], p[0] = p[0], p[m]
			}
		}
		p[0], p[m] = p[m], p[0]
		pivot := p[0]
		i, j := 1, h
		for {
			for i <= j && pointLessXY(p[i], pivot) {
				i++
			}
			for i <= j && pointLessXY(pivot, p[j]) {
				j--
			}
			if i > j {
				break
			}
			p[i], p[j] = p[j], p[i]
			i++
			j--
		}
		p[0], p[j] = p[j], p[0]
		// Recurse into the smaller side, iterate on the larger.
		if j < len(p)-j-1 {
			quickPointsXY(p[:j], depth)
			p = p[j+1:]
		} else {
			quickPointsXY(p[j+1:], depth)
			p = p[:j]
		}
	}
	// Insertion sort for short runs.
	for i := 1; i < len(p); i++ {
		v := p[i]
		j := i - 1
		for j >= 0 && pointLessXY(v, p[j]) {
			p[j+1] = p[j]
			j--
		}
		p[j+1] = v
	}
}

func heapPointsXY(p []Point) {
	n := len(p)
	for i := n/2 - 1; i >= 0; i-- {
		siftPointsXY(p, i, n)
	}
	for i := n - 1; i > 0; i-- {
		p[0], p[i] = p[i], p[0]
		siftPointsXY(p, 0, i)
	}
}

func siftPointsXY(p []Point, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && pointLessXY(p[c], p[c+1]) {
			c++
		}
		if !pointLessXY(p[root], p[c]) {
			return
		}
		p[root], p[c] = p[c], p[root]
		root = c
	}
}
