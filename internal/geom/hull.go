package geom

import "sort"

// ConvexHull returns the convex hull of pts using Andrew's monotone chain
// algorithm (paper §7). The result is in counter-clockwise order with no
// collinear interior vertices. Degenerate inputs (fewer than three distinct
// points, or all collinear) return the distinct extreme points.
//
// The input slice is not modified.
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		out := make([]Point, len(uniq))
		copy(out, uniq)
		return out
	}
	return hullOfSorted(uniq)
}

// hullOfSorted computes the hull of points already sorted by (x, y) with no
// duplicates.
func hullOfSorted(pts []Point) []Point {
	n := len(pts)
	hull := make([]Point, 0, 2*n)
	// Lower chain.
	for _, p := range pts {
		for len(hull) >= 2 && Area2(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper chain.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && Area2(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

// IsConvex reports whether the ring makes only counter-clockwise (or
// collinear) turns. It is the property checked by the hull tests.
func IsConvex(ring []Point) bool {
	n := len(ring)
	if n < 3 {
		return true
	}
	for i := 0; i < n; i++ {
		a, b, c := ring[i], ring[(i+1)%n], ring[(i+2)%n]
		if Orient(a, b, c) == Clockwise {
			return false
		}
	}
	return true
}

// FarthestPair returns the two points of pts at maximum Euclidean distance
// and that distance. It computes the convex hull and walks it with the
// rotating-calipers method (paper §8), falling back to the trivial scan for
// tiny hulls.
func FarthestPair(pts []Point) (Point, Point, float64) {
	hull := ConvexHull(pts)
	return farthestOnHull(hull)
}

// farthestOnHull runs rotating calipers over a convex CCW ring.
func farthestOnHull(hull []Point) (Point, Point, float64) {
	n := len(hull)
	switch n {
	case 0:
		return Point{}, Point{}, 0
	case 1:
		return hull[0], hull[0], 0
	case 2:
		return hull[0], hull[1], hull[0].Dist(hull[1])
	}
	bestA, bestB := hull[0], hull[1]
	best := bestA.Dist2(bestB)
	j := 1
	for i := 0; i < n; i++ {
		ni := (i + 1) % n
		// Advance the antipodal pointer while the triangle area keeps
		// growing: the farthest vertex from edge (i, i+1).
		for {
			nj := (j + 1) % n
			if Area2(hull[i], hull[ni], hull[nj]) > Area2(hull[i], hull[ni], hull[j]) {
				j = nj
			} else {
				break
			}
		}
		for _, cand := range [2]Point{hull[i], hull[ni]} {
			if d := cand.Dist2(hull[j]); d > best {
				best, bestA, bestB = d, cand, hull[j]
			}
		}
	}
	// The calipers walk is O(n); double-check tiny hulls exhaustively to be
	// immune to collinear degeneracies.
	if n <= 8 {
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if d := hull[a].Dist2(hull[b]); d > best {
					best, bestA, bestB = d, hull[a], hull[b]
				}
			}
		}
	}
	return bestA, bestB, bestA.Dist(bestB)
}

// FarthestPairBrute returns the farthest pair by checking all O(n^2) pairs.
// It is the oracle for differential tests and the "brute force in Hadoop"
// strategy discussed in paper §8.1.
func FarthestPairBrute(pts []Point) (Point, Point, float64) {
	if len(pts) == 0 {
		return Point{}, Point{}, 0
	}
	bestA, bestB := pts[0], pts[0]
	best := 0.0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist2(pts[j]); d > best {
				best, bestA, bestB = d, pts[i], pts[j]
			}
		}
	}
	return bestA, bestB, bestA.Dist(bestB)
}
