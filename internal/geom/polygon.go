package geom

import (
	"fmt"
	"strings"
)

// Polygon is a simple polygon given by its ring of vertices. The ring is
// implicitly closed: an edge connects the last vertex back to the first.
type Polygon struct {
	Vertices []Point
}

// Poly constructs a Polygon from vertices.
func Poly(pts ...Point) Polygon { return Polygon{Vertices: pts} }

// RectPoly returns r as a counter-clockwise polygon.
func RectPoly(r Rect) Polygon {
	c := r.Corners()
	return Polygon{Vertices: c[:]}
}

// Len returns the number of vertices.
func (pg Polygon) Len() int { return len(pg.Vertices) }

// Edge returns the i-th edge of the polygon.
func (pg Polygon) Edge(i int) Segment {
	j := i + 1
	if j == len(pg.Vertices) {
		j = 0
	}
	return Segment{A: pg.Vertices[i], B: pg.Vertices[j]}
}

// Edges returns all edges of the polygon.
func (pg Polygon) Edges() []Segment {
	out := make([]Segment, 0, len(pg.Vertices))
	for i := range pg.Vertices {
		e := pg.Edge(i)
		if !e.IsDegenerate() {
			out = append(out, e)
		}
	}
	return out
}

// Bounds returns the MBR of the polygon.
func (pg Polygon) Bounds() Rect { return RectOf(pg.Vertices) }

// SignedArea returns the signed area (positive for counter-clockwise rings).
func (pg Polygon) SignedArea() float64 {
	v := pg.Vertices
	if len(v) < 3 {
		return 0
	}
	area := 0.0
	for i := range v {
		j := (i + 1) % len(v)
		area += v[i].Cross(v[j])
	}
	return area / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 {
	a := pg.SignedArea()
	if a < 0 {
		return -a
	}
	return a
}

// IsCCW reports whether the ring is counter-clockwise.
func (pg Polygon) IsCCW() bool { return pg.SignedArea() > 0 }

// Reverse returns the polygon with the opposite winding.
func (pg Polygon) Reverse() Polygon {
	v := make([]Point, len(pg.Vertices))
	for i, p := range pg.Vertices {
		v[len(v)-1-i] = p
	}
	return Polygon{Vertices: v}
}

// ContainsPoint reports whether p is inside the polygon (boundary counts as
// inside). It uses the even-odd ray-casting rule.
func (pg Polygon) ContainsPoint(p Point) bool {
	v := pg.Vertices
	if len(v) < 3 {
		return false
	}
	inside := false
	for i, j := 0, len(v)-1; i < len(v); j, i = i, i+1 {
		a, b := v[i], v[j]
		if Seg(a, b).ContainsPoint(p) {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// StrictlyContainsPoint reports whether p is strictly inside the polygon
// (points on the boundary are excluded). The union arrangement keeps a
// sub-segment only when its midpoint is not strictly inside any other
// polygon.
func (pg Polygon) StrictlyContainsPoint(p Point) bool {
	v := pg.Vertices
	if len(v) < 3 {
		return false
	}
	for i := range v {
		if pg.Edge(i).ContainsPoint(p) {
			return false
		}
	}
	inside := false
	for i, j := 0, len(v)-1; i < len(v); j, i = i, i+1 {
		a, b := v[i], v[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// Intersects reports whether the two polygons share any point (edge
// crossing or full containment).
func (pg Polygon) Intersects(other Polygon) bool {
	if !pg.Bounds().Intersects(other.Bounds()) {
		return false
	}
	for i := range pg.Vertices {
		e := pg.Edge(i)
		for j := range other.Vertices {
			if len(IntersectSegments(e, other.Edge(j))) > 0 {
				return true
			}
		}
	}
	if len(other.Vertices) > 0 && pg.ContainsPoint(other.Vertices[0]) {
		return true
	}
	if len(pg.Vertices) > 0 && other.ContainsPoint(pg.Vertices[0]) {
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (pg Polygon) String() string {
	var b strings.Builder
	b.WriteString("POLYGON(")
	for i, p := range pg.Vertices {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g,%g", p.X, p.Y)
	}
	b.WriteByte(')')
	return b.String()
}
