package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// genRect draws a random non-degenerate rectangle.
func genRect(rng *rand.Rand) Rect {
	x, y := rng.Float64()*100, rng.Float64()*100
	return NewRect(x, y, x+rng.Float64()*50+0.1, y+rng.Float64()*50+0.1)
}

// TestRectAlgebraLaws checks the lattice laws the spatial index relies on.
func TestRectAlgebraLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b, c := genRect(rng), genRect(rng), genRect(rng)
		// Union is commutative, associative, monotone.
		if a.Union(b) != b.Union(a) {
			t.Fatal("union not commutative")
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			t.Fatal("union not associative")
		}
		if !a.Union(b).ContainsRect(a) {
			t.Fatal("union not expansive")
		}
		// Intersection is commutative and contained in both.
		ab := a.Intersect(b)
		if ab != b.Intersect(a) {
			t.Fatal("intersect not commutative")
		}
		if !ab.IsEmpty() && (!a.ContainsRect(ab) || !b.ContainsRect(ab)) {
			t.Fatal("intersection escapes operands")
		}
		// Intersects is consistent with Intersect.
		if a.Intersects(b) != !ab.IsEmpty() {
			t.Fatal("Intersects inconsistent with Intersect")
		}
		// MinDist is zero iff they intersect; symmetric.
		if (a.MinDist(b) == 0) != a.Intersects(b) {
			t.Fatal("MinDist zero iff intersecting")
		}
		if a.MinDist(b) != b.MinDist(a) || a.MaxDist(b) != b.MaxDist(a) {
			t.Fatal("distances not symmetric")
		}
		if a.MinDist(b) > a.MaxDist(b) {
			t.Fatal("MinDist exceeds MaxDist")
		}
	}
}

// TestClipProperties checks Liang–Barsky clipping against membership.
func TestClipProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := NewRect(20, 20, 80, 80)
	for i := 0; i < 2000; i++ {
		s := Segment{
			A: Pt(rng.Float64()*100, rng.Float64()*100),
			B: Pt(rng.Float64()*100, rng.Float64()*100),
		}
		c, ok := s.ClipToRect(r)
		// Sample points of s; inside samples must be on the clip result.
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
			p := Pt(s.A.X+f*(s.B.X-s.A.X), s.A.Y+f*(s.B.Y-s.A.Y))
			if r.Buffer(-1e-9).ContainsPoint(p) {
				if !ok {
					t.Fatalf("segment %v has interior point %v but clip dropped it", s, p)
				}
				if !c.ContainsPoint(p) {
					t.Fatalf("clip of %v lost interior point %v (got %v)", s, p, c)
				}
			}
		}
		if ok {
			// Clip result lies inside the rect and on the original line.
			for _, e := range []Point{c.A, c.B} {
				if !r.Buffer(1e-9).ContainsPoint(e) {
					t.Fatalf("clip endpoint %v outside rect", e)
				}
				if !s.ContainsPoint(e) {
					t.Fatalf("clip endpoint %v not on original segment %v", e, s)
				}
			}
		}
	}
}

// TestHullIdempotent checks hull(hull(P)) == hull(P) and permutation
// invariance.
func TestHullIdempotent(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 3+rng.Intn(100), 100)
		h1 := ConvexHull(pts)
		h2 := ConvexHull(h1)
		if len(h1) != len(h2) {
			return false
		}
		// Permutation invariance.
		perm := make([]Point, len(pts))
		copy(perm, pts)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		h3 := ConvexHull(perm)
		if len(h1) != len(h3) {
			return false
		}
		set := map[Point]bool{}
		for _, p := range h1 {
			set[p] = true
		}
		for _, p := range h3 {
			if !set[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSkylineMergeAssociative checks that merging partial skylines in any
// grouping yields the global skyline — the property the distributed
// algorithm depends on.
func TestSkylineMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		pts := randPoints(rng, 50+rng.Intn(200), 1000)
		want := Skyline(pts)
		// Random partition into 3 groups.
		var g [3][]Point
		for _, p := range pts {
			i := rng.Intn(3)
			g[i] = append(g[i], p)
		}
		got := MergeSkylines(MergeSkylines(Skyline(g[0]), Skyline(g[1])), Skyline(g[2]))
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: point %d differs", trial, i)
			}
		}
	}
}

// TestUnionRectanglesExactArea unions random axis-aligned rectangles and
// checks the stitched region against the exact union area computed by
// coordinate compression.
func TestUnionRectanglesExactArea(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(12)
		rects := make([]Rect, n)
		regions := make([]Region, n)
		for i := range rects {
			rects[i] = genRect(rng)
			regions[i] = RegionOf(RectPoly(rects[i]))
		}
		region, _ := UnionRegions(regions)

		// Exact union area by coordinate compression.
		var xs, ys []float64
		for _, r := range rects {
			xs = append(xs, r.MinX, r.MaxX)
			ys = append(ys, r.MinY, r.MaxY)
		}
		sort.Float64s(xs)
		sort.Float64s(ys)
		want := 0.0
		for i := 0; i+1 < len(xs); i++ {
			for j := 0; j+1 < len(ys); j++ {
				cx, cy := (xs[i]+xs[i+1])/2, (ys[j]+ys[j+1])/2
				covered := false
				for _, r := range rects {
					if r.ContainsPoint(Pt(cx, cy)) {
						covered = true
						break
					}
				}
				if covered {
					want += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
				}
			}
		}

		// Region area by the same compression over region membership
		// (cells are homogeneous for axis-aligned input).
		got := 0.0
		for i := 0; i+1 < len(xs); i++ {
			for j := 0; j+1 < len(ys); j++ {
				cx, cy := (xs[i]+xs[i+1])/2, (ys[j]+ys[j+1])/2
				if region.ContainsPoint(Pt(cx, cy)) {
					got += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
				}
			}
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("trial %d: union area %g, want %g", trial, got, want)
		}
	}
}

// TestPolygonAreaShoelaceConsistency checks SignedArea against the
// triangle decomposition for random convex polygons.
func TestPolygonAreaShoelaceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		pts := randPoints(rng, 3+rng.Intn(20), 50)
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		pg := Polygon{Vertices: hull}
		want := 0.0
		for i := 1; i+1 < len(hull); i++ {
			want += Area2(hull[0], hull[i], hull[i+1]) / 2
		}
		if math.Abs(pg.SignedArea()-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("area %g, want %g", pg.SignedArea(), want)
		}
	}
}

// TestDominanceTransitive checks the dominance relation's strict partial
// order properties used throughout the skyline proofs.
func TestDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		a := Pt(rng.Float64()*10, rng.Float64()*10)
		b := Pt(rng.Float64()*10, rng.Float64()*10)
		c := Pt(rng.Float64()*10, rng.Float64()*10)
		if a.Dominates(a) {
			t.Fatal("dominance not irreflexive")
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatal("dominance not antisymmetric")
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatal("dominance not transitive")
		}
	}
}
