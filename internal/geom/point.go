// Package geom provides the computational-geometry kernel used by every
// layer of the system: primitive shapes (points, rectangles, segments,
// polygons), robust-enough predicates, and the classical single-machine
// algorithms (convex hull, skyline, closest pair, rotating calipers,
// polygon union) that the distributed operations build upon.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed as
// vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison form in hot loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Equal reports whether p and q are the same point.
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Less orders points by x, breaking ties by y. It is the canonical sort
// order used by the divide-and-conquer algorithms.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Dominates reports whether p dominates q in the skyline (max-max) sense:
// every coordinate of p is >= the corresponding coordinate of q with strict
// inequality in at least one.
func (p Point) Dominates(q Point) bool {
	return p.X >= q.X && p.Y >= q.Y && (p.X > q.X || p.Y > q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Orientation classifies the turn p->q->r.
type Orientation int

// Turn directions returned by Orient.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

// Orient returns the orientation of the ordered triple (p, q, r).
func Orient(p, q, r Point) Orientation {
	v := cross3(p, q, r)
	switch {
	case v > 0:
		return CounterClockwise
	case v < 0:
		return Clockwise
	default:
		return Collinear
	}
}

// cross3 returns twice the signed area of triangle pqr.
func cross3(p, q, r Point) float64 {
	return (q.X-p.X)*(r.Y-p.Y) - (q.Y-p.Y)*(r.X-p.X)
}

// Area2 returns twice the signed area of triangle pqr (positive when pqr is
// counter-clockwise).
func Area2(p, q, r Point) float64 { return cross3(p, q, r) }

// InCircle reports whether point d lies strictly inside the circumcircle of
// the counter-clockwise triangle (a, b, c). It is the Delaunay predicate.
func InCircle(a, b, c, d Point) bool {
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// Circumcenter returns the center of the circle through a, b and c, and
// reports whether it exists (it does not when the points are collinear).
func Circumcenter(a, b, c Point) (Point, bool) {
	d := 2 * (a.X*(b.Y-c.Y) + b.X*(c.Y-a.Y) + c.X*(a.Y-b.Y))
	if d == 0 {
		return Point{}, false
	}
	a2 := a.X*a.X + a.Y*a.Y
	b2 := b.X*b.X + b.Y*b.Y
	c2 := c.X*c.X + c.Y*c.Y
	ux := (a2*(b.Y-c.Y) + b2*(c.Y-a.Y) + c2*(a.Y-b.Y)) / d
	uy := (a2*(c.X-b.X) + b2*(a.X-c.X) + c2*(b.X-a.X)) / d
	return Point{ux, uy}, true
}
