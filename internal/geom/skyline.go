package geom

import "sort"

// Skyline returns the max-max skyline of pts: the points not dominated by
// any other point, where p dominates q when p.X >= q.X and p.Y >= q.Y with
// at least one strict inequality (paper §6). The result is sorted by
// increasing x (hence decreasing y).
//
// The input slice is not modified.
func Skyline(pts []Point) []Point {
	return SkylineQuadrant(pts, QuadMaxMax)
}

// Quadrant selects one of the four skyline orientations. The convex hull
// filter (paper §7.2) needs all four.
type Quadrant int

// The four skyline quadrants.
const (
	QuadMaxMax Quadrant = iota // prefer large x, large y
	QuadMaxMin                 // prefer large x, small y
	QuadMinMax                 // prefer small x, large y
	QuadMinMin                 // prefer small x, small y
)

// transform maps a point into max-max space for the given quadrant.
func (q Quadrant) transform(p Point) Point {
	switch q {
	case QuadMaxMin:
		return Point{p.X, -p.Y}
	case QuadMinMax:
		return Point{-p.X, p.Y}
	case QuadMinMin:
		return Point{-p.X, -p.Y}
	default:
		return p
	}
}

// DominatesIn reports whether a dominates b in quadrant q.
func (q Quadrant) DominatesIn(a, b Point) bool {
	return q.transform(a).Dominates(q.transform(b))
}

// SkylineQuadrant returns the skyline of pts in the given quadrant, sorted
// by increasing x.
func SkylineQuadrant(pts []Point, quad Quadrant) []Point {
	if len(pts) == 0 {
		return nil
	}
	work := make([]Point, len(pts))
	for i, p := range pts {
		work[i] = quad.transform(p)
	}
	sky := skylineMaxMax(work)
	for i, p := range sky {
		// transform is an involution, so it maps results back.
		sky[i] = quad.transform(p)
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i].Less(sky[j]) })
	return sky
}

// skylineMaxMax computes the max-max skyline via a right-to-left sweep of
// the points in canonical order: a point is on the skyline iff its y value
// exceeds every y seen so far (to its right).
func skylineMaxMax(pts []Point) []Point {
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	var sky []Point
	bestY := 0.0
	have := false
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		if !have || p.Y > bestY {
			sky = append(sky, p)
			bestY = p.Y
			have = true
		}
	}
	// Reverse into increasing-x order.
	for i, j := 0, len(sky)-1; i < j; i, j = i+1, j-1 {
		sky[i], sky[j] = sky[j], sky[i]
	}
	return sky
}

// SkylineBrute computes the max-max skyline by the O(n^2) definition. It is
// the oracle for differential tests.
func SkylineBrute(pts []Point) []Point {
	var sky []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
			// Treat exact duplicates as one point: keep the first.
			if q.Equal(p) && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	sort.Slice(sky, func(i, j int) bool { return sky[i].Less(sky[j]) })
	return sky
}

// MergeSkylines combines several partial max-max skylines into the skyline
// of their union. Partial skylines from non-spatially-partitioned data may
// overlap, so the merge recomputes the skyline of the concatenation
// (paper §6.1).
func MergeSkylines(parts ...[]Point) []Point {
	var all []Point
	for _, p := range parts {
		all = append(all, p...)
	}
	return Skyline(all)
}

// RectDominatedBy reports whether cell a is entirely dominated by cell b in
// the max-max sense (paper §6.2, Fig. 12): some corner of b that is
// guaranteed to contain a data point dominates the top-right corner of a.
// Because MBRs are minimal, each edge of b carries at least one data point,
// so its bottom-left, bottom-right and top-left corners are all dominated
// by actual data points of b.
func RectDominatedBy(a, b Rect) bool {
	target := Point{a.MaxX, a.MaxY}
	for _, c := range []Point{
		{b.MinX, b.MinY}, // bottom-left
		{b.MaxX, b.MinY}, // bottom-right
		{b.MinX, b.MaxY}, // top-left
	} {
		if c.Dominates(target) {
			return true
		}
	}
	return false
}

// RectDominatedByQuad generalizes RectDominatedBy to any quadrant, used by
// the convex hull filter which applies the skyline filter in all four
// orientations.
func RectDominatedByQuad(a, b Rect, quad Quadrant) bool {
	ta := transformRect(a, quad)
	tb := transformRect(b, quad)
	return RectDominatedBy(ta, tb)
}

func transformRect(r Rect, quad Quadrant) Rect {
	c1 := quad.transform(Point{r.MinX, r.MinY})
	c2 := quad.transform(Point{r.MaxX, r.MaxY})
	return NewRect(c1.X, c1.Y, c2.X, c2.Y)
}
