package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoints(rng *rand.Rand, n int, scale float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * scale, Y: rng.Float64() * scale}
	}
	return pts
}

func TestOrient(t *testing.T) {
	if Orient(Pt(0, 0), Pt(1, 0), Pt(1, 1)) != CounterClockwise {
		t.Error("expected CCW")
	}
	if Orient(Pt(0, 0), Pt(1, 0), Pt(1, -1)) != Clockwise {
		t.Error("expected CW")
	}
	if Orient(Pt(0, 0), Pt(1, 1), Pt(2, 2)) != Collinear {
		t.Error("expected collinear")
	}
}

func TestInCircle(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0) — CCW order.
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if !InCircle(a, b, c, Pt(0, 0)) {
		t.Error("origin should be inside")
	}
	if InCircle(a, b, c, Pt(2, 2)) {
		t.Error("(2,2) should be outside")
	}
	if InCircle(a, b, c, Pt(0, -1)) {
		t.Error("point on circle is not strictly inside")
	}
}

func TestCircumcenter(t *testing.T) {
	c, ok := Circumcenter(Pt(1, 0), Pt(0, 1), Pt(-1, 0))
	if !ok {
		t.Fatal("expected circumcenter")
	}
	if c.Dist(Pt(0, 0)) > 1e-12 {
		t.Errorf("got %v, want origin", c)
	}
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points have no circumcenter")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 4, 1, 2) // unordered corners normalize
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 3 || r.MaxY != 4 {
		t.Fatalf("bad normalization: %v", r)
	}
	if r.Area() != 4 {
		t.Errorf("area = %g, want 4", r.Area())
	}
	if !r.ContainsPoint(Pt(1, 2)) || !r.ContainsPoint(Pt(3, 4)) {
		t.Error("boundary points should be contained")
	}
	if r.ContainsPointExclusive(Pt(3, 4)) {
		t.Error("max corner excluded in half-open containment")
	}
	if EmptyRect().Area() != 0 {
		t.Error("empty rect has zero area")
	}
	u := r.Union(NewRect(10, 10, 11, 11))
	if u.MaxX != 11 || u.MinX != 1 {
		t.Errorf("bad union %v", u)
	}
}

func TestRectDistances(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(4, 3, 5, 4)
	if got := a.MinDist(b); math.Abs(got-math.Hypot(3, 2)) > 1e-12 {
		t.Errorf("MinDist = %g", got)
	}
	if got := a.MaxDist(b); math.Abs(got-math.Hypot(5, 4)) > 1e-12 {
		t.Errorf("MaxDist = %g", got)
	}
	if got := a.MinDist(NewRect(0.5, 0.5, 2, 2)); got != 0 {
		t.Errorf("overlapping MinDist = %g, want 0", got)
	}
	// Lower bound <= actual farthest distance <= upper bound, with points
	// on the MBR sides.
	lb := a.FarthestPairLowerBound(b)
	if lb > a.MaxDist(b) {
		t.Errorf("lower bound %g exceeds upper bound %g", lb, a.MaxDist(b))
	}
	if lb < 4 { // horizontal side separation is 5-... max(|4-... compute: max(|5-0|,|1-4|)=5; dy: max(|4-0|,|1-3|)=4; lb = 5
		t.Errorf("lower bound %g too small", lb)
	}
}

func TestSegmentIntersection(t *testing.T) {
	got := IntersectSegments(Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)))
	if len(got) != 1 || got[0].Dist(Pt(1, 1)) > 1e-12 {
		t.Errorf("crossing = %v, want (1,1)", got)
	}
	if got := IntersectSegments(Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1))); got != nil {
		t.Errorf("parallel disjoint = %v, want nil", got)
	}
	// Collinear overlap.
	got = IntersectSegments(Seg(Pt(0, 0), Pt(3, 0)), Seg(Pt(1, 0), Pt(5, 0)))
	if len(got) != 2 {
		t.Fatalf("collinear overlap = %v, want 2 points", got)
	}
	if got[0].Dist(Pt(1, 0)) > 1e-12 || got[1].Dist(Pt(3, 0)) > 1e-12 {
		t.Errorf("overlap endpoints = %v", got)
	}
	// Touching at an endpoint.
	got = IntersectSegments(Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)))
	if len(got) != 1 || got[0].Dist(Pt(1, 1)) > 1e-12 {
		t.Errorf("endpoint touch = %v", got)
	}
}

func TestSegmentClip(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if c, ok := Seg(Pt(-5, 5), Pt(15, 5)).ClipToRect(r); !ok ||
		c.A.Dist(Pt(0, 5)) > 1e-12 || c.B.Dist(Pt(10, 5)) > 1e-12 {
		t.Errorf("clip across = %v %v", c, ok)
	}
	if _, ok := Seg(Pt(-5, -5), Pt(-1, -1)).ClipToRect(r); ok {
		t.Error("fully outside should not clip")
	}
	if c, ok := Seg(Pt(1, 1), Pt(2, 2)).ClipToRect(r); !ok || c != Seg(Pt(1, 1), Pt(2, 2)) {
		t.Errorf("fully inside should be unchanged, got %v %v", c, ok)
	}
}

func TestSegmentSplitAt(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	parts := s.SplitAt([]Point{Pt(4, 0), Pt(7, 0), Pt(100, 100)})
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	if parts[0].B.X != 4 || parts[1].B.X != 7 || parts[2].B.X != 10 {
		t.Errorf("bad parts: %v", parts)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := Poly(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4))
	if !sq.ContainsPoint(Pt(2, 2)) {
		t.Error("interior point")
	}
	if !sq.ContainsPoint(Pt(0, 2)) {
		t.Error("boundary point counts as inside")
	}
	if sq.StrictlyContainsPoint(Pt(0, 2)) {
		t.Error("boundary point is not strictly inside")
	}
	if sq.ContainsPoint(Pt(5, 5)) {
		t.Error("outside point")
	}
	if sq.SignedArea() != 16 {
		t.Errorf("area = %g", sq.SignedArea())
	}
	if !sq.IsCCW() {
		t.Error("should be CCW")
	}
	if sq.Reverse().IsCCW() {
		t.Error("reverse should be CW")
	}
}

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {2, 0}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v, want 4 corners", hull)
	}
	if !IsConvex(hull) {
		t.Error("hull not convex")
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("empty = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Errorf("single = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(h) != 1 {
		t.Errorf("duplicates = %v", h)
	}
	h := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 {
		t.Errorf("collinear = %v, want 2 extremes", h)
	}
}

func TestConvexHullProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pts := randPoints(rng, 3+rng.Intn(200), 100)
		hull := ConvexHull(pts)
		if !IsConvex(hull) {
			t.Fatalf("trial %d: hull not convex", trial)
		}
		pg := Polygon{Vertices: hull}
		if len(hull) >= 3 {
			for _, p := range pts {
				if !pg.ContainsPoint(p) {
					t.Fatalf("trial %d: point %v outside hull", trial, p)
				}
			}
		}
	}
}

func TestFarthestPairMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		pts := randPoints(rng, 2+rng.Intn(150), 50)
		_, _, d := FarthestPair(pts)
		_, _, bd := FarthestPairBrute(pts)
		if math.Abs(d-bd) > 1e-9 {
			t.Fatalf("trial %d: calipers %g vs brute %g", trial, d, bd)
		}
	}
}

func TestClosestPairMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		pts := randPoints(rng, 2+rng.Intn(200), 50)
		got, ok := ClosestPair(pts)
		if !ok {
			t.Fatal("expected pair")
		}
		want, _ := ClosestPairBrute(pts)
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d: dc %g vs brute %g", trial, got.Dist, want.Dist)
		}
	}
}

func TestClosestPairDuplicates(t *testing.T) {
	pts := []Point{{1, 1}, {5, 5}, {1, 1}}
	got, ok := ClosestPair(pts)
	if !ok || got.Dist != 0 {
		t.Fatalf("duplicate points should give distance 0, got %v", got)
	}
}

func TestSkylineMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		pts := randPoints(rng, 1+rng.Intn(200), 50)
		got := Skyline(pts)
		want := SkylineBrute(pts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d points", trial, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("trial %d: mismatch at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSkylineInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 1+rng.Intn(300), 1000)
		sky := Skyline(pts)
		// No skyline point dominated by any input point.
		for _, s := range sky {
			for _, p := range pts {
				if p.Dominates(s) {
					return false
				}
			}
		}
		// Every input point dominated by or equal to some skyline point.
		for _, p := range pts {
			ok := false
			for _, s := range sky {
				if s.Equal(p) || s.Dominates(p) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSkylineQuadrants(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	if got := SkylineQuadrant(pts, QuadMaxMax); len(got) != 1 || !got[0].Equal(Pt(1, 1)) {
		t.Errorf("maxmax = %v", got)
	}
	if got := SkylineQuadrant(pts, QuadMinMin); len(got) != 1 || !got[0].Equal(Pt(0, 0)) {
		t.Errorf("minmin = %v", got)
	}
	if got := SkylineQuadrant(pts, QuadMinMax); len(got) != 1 || !got[0].Equal(Pt(0, 1)) {
		t.Errorf("minmax = %v", got)
	}
	if got := SkylineQuadrant(pts, QuadMaxMin); len(got) != 1 || !got[0].Equal(Pt(1, 0)) {
		t.Errorf("maxmin = %v", got)
	}
}

func TestRectDominance(t *testing.T) {
	// c5 bottom-left dominates c1 top-right (paper Fig. 12 situation).
	c1 := NewRect(0, 0, 2, 2)
	c5 := NewRect(3, 3, 5, 5)
	if !RectDominatedBy(c1, c5) {
		t.Error("c1 should be dominated by c5")
	}
	if RectDominatedBy(c5, c1) {
		t.Error("c5 not dominated by c1")
	}
	// Overlapping cells do not dominate each other.
	c2 := NewRect(1, 1, 4, 4)
	if RectDominatedBy(c2, c5) && RectDominatedBy(c5, c2) {
		t.Error("mutual domination impossible")
	}
}

func TestUnionDisjointSquares(t *testing.T) {
	a := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	b := Poly(Pt(5, 5), Pt(6, 5), Pt(6, 6), Pt(5, 6))
	_, segs := UnionPolygons([]Polygon{a, b})
	if got, want := TotalLength(segs), 8.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("boundary length = %g, want %g", got, want)
	}
}

func TestUnionSharedEdge(t *testing.T) {
	// Two unit squares sharing an edge: union boundary is the 2x1 rect
	// perimeter (6), with the shared edge removed.
	a := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	b := Poly(Pt(1, 0), Pt(2, 0), Pt(2, 1), Pt(1, 1))
	region, segs := UnionPolygons([]Polygon{a, b})
	if got, want := TotalLength(segs), 6.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("boundary length = %g, want %g", got, want)
	}
	if !region.ContainsPoint(Pt(1, 0.5)) {
		t.Error("point on removed shared edge is interior to the union")
	}
}

func TestUnionOverlappingSquares(t *testing.T) {
	// Unit squares at (0,0) and (0.5,0.5): union boundary length is
	// 2*perimeter - 2*overlap boundary inside = staircase of length 8 - 2.
	a := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	b := Poly(Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1.5, 1.5), Pt(0.5, 1.5))
	region, segs := UnionPolygons([]Polygon{a, b})
	if got, want := TotalLength(segs), 6.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("boundary length = %g, want %g", got, want)
	}
	if !region.ContainsPoint(Pt(0.75, 0.75)) {
		t.Error("overlap interior is inside")
	}
	if region.ContainsPoint(Pt(1.4, 0.1)) {
		t.Error("outside point")
	}
	for _, p := range []Point{{0.2, 0.2}, {1.2, 1.2}, {0.75, 0.75}} {
		if !region.ContainsPoint(p) {
			t.Errorf("union should contain %v", p)
		}
	}
}

func TestUnionContainedPolygon(t *testing.T) {
	outer := Poly(Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10))
	inner := Poly(Pt(2, 2), Pt(3, 2), Pt(3, 3), Pt(2, 3))
	_, segs := UnionPolygons([]Polygon{outer, inner})
	if got, want := TotalLength(segs), 40.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("boundary length = %g, want %g (inner boundary removed)", got, want)
	}
}

func TestUnionIdempotentRegion(t *testing.T) {
	// Union of the union's region with itself is the same boundary.
	a := Poly(Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2))
	b := Poly(Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3))
	region, segs := UnionPolygons([]Polygon{a, b})
	_, segs2 := UnionRegions([]Region{region})
	if math.Abs(TotalLength(segs)-TotalLength(segs2)) > 1e-9 {
		t.Errorf("re-union changed boundary: %g vs %g", TotalLength(segs), TotalLength(segs2))
	}
}

func TestClipBoundaryToRect(t *testing.T) {
	segs := []Segment{Seg(Pt(-5, 0), Pt(5, 0)), Seg(Pt(20, 20), Pt(30, 30))}
	got := ClipBoundaryToRect(segs, NewRect(0, -1, 10, 1))
	if len(got) != 1 {
		t.Fatalf("got %d segments, want 1", len(got))
	}
	if got[0].A.X != 0 || got[0].B.X != 5 {
		t.Errorf("clipped = %v", got[0])
	}
}

func TestStitchRingsClosesSquare(t *testing.T) {
	sq := Poly(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
	region := StitchRings(sq.Edges())
	if len(region.Rings) != 1 {
		t.Fatalf("rings = %d, want 1", len(region.Rings))
	}
	if got := region.Rings[0].Len(); got != 4 {
		t.Errorf("ring has %d vertices, want 4", got)
	}
}
