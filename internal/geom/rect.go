package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle described by its minimum and maximum
// corners. A Rect is the minimum bounding rectangle (MBR) currency of the
// whole system: partitions, index cells and shapes all expose one.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Rect union: a rectangle that
// contains nothing and expands to whatever is added to it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// WorldRect returns a rectangle covering the entire plane.
func WorldRect() Rect {
	return Rect{
		MinX: math.Inf(-1), MinY: math.Inf(-1),
		MaxX: math.Inf(1), MaxY: math.Inf(1),
	}
}

// NewRect returns the rectangle with the given corners, normalizing the
// coordinate order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// RectOf returns the MBR of a set of points.
func RectOf(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExpandPoint(p)
	}
	return r
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r (zero for empty rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Corners returns the four corner points of r in counter-clockwise order
// starting from the bottom-left corner.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// TopLeft returns the top-left corner, the point with the highest dominance
// power over cells to the left (paper §6.3).
func (r Rect) TopLeft() Point { return Point{r.MinX, r.MaxY} }

// BottomRight returns the bottom-right corner, the point with the highest
// dominance power over cells below (paper §6.3).
func (r Rect) BottomRight() Point { return Point{r.MaxX, r.MinY} }

// ContainsPoint reports whether p lies in r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsPointExclusive reports whether p lies in the half-open cell
// [MinX,MaxX) x [MinY,MaxY). Disjoint partitioners use it so a point on a
// shared edge belongs to exactly one cell.
func (r Rect) ContainsPointExclusive(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// StrictlyContainsPoint reports whether p lies in the interior of r.
func (r Rect) StrictlyContainsPoint(p Point) bool {
	return p.X > r.MinX && p.X < r.MaxX && p.Y > r.MinY && p.Y < r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExpandPoint returns r grown to include p.
func (r Rect) ExpandPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X), MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X), MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Buffer returns r grown by d on every side (shrunk when d is negative).
func (r Rect) Buffer(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// Inner returns the rectangle obtained by moving every side of r inward by
// d. The closest-pair pruning step keeps only points outside Inner(delta).
func (r Rect) Inner(d float64) Rect {
	return Rect{MinX: r.MinX + d, MinY: r.MinY + d, MaxX: r.MaxX - d, MaxY: r.MaxY - d}
}

// MinDist returns the minimum distance between any point of r and any point
// of s (zero when they intersect).
func (r Rect) MinDist(s Rect) float64 {
	dx := math.Max(0, math.Max(s.MinX-r.MaxX, r.MinX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MaxY, r.MinY-s.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDist returns the maximum distance between any point of r and any point
// of s: the largest pairwise corner distance. It is the farthest-pair upper
// bound of paper §8.2.
func (r Rect) MaxDist(s Rect) float64 {
	best := 0.0
	for _, a := range r.Corners() {
		for _, b := range s.Corners() {
			if d := a.Dist(b); d > best {
				best = d
			}
		}
	}
	return best
}

// FarthestPairLowerBound returns the farthest-pair lower bound between two
// minimal MBRs (paper §8.2, Fig. 18a): because each MBR has at least one
// data point on each of its four sides, there is guaranteed to be a pair at
// least as far apart as the larger of the maximum horizontal-side and
// maximum vertical-side separations.
func (r Rect) FarthestPairLowerBound(s Rect) float64 {
	// Maximum separation between a vertical side of r and a vertical side
	// of s; points on those sides differ at least that much in x.
	dx := math.Max(math.Abs(s.MaxX-r.MinX), math.Abs(r.MaxX-s.MinX))
	dy := math.Max(math.Abs(s.MaxY-r.MinY), math.Abs(r.MaxY-s.MinY))
	return math.Max(dx, dy)
}

// MinDistPoint returns the minimum distance from p to any point of r.
func (r Rect) MinDistPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDistPoint returns the maximum distance from p to any point of r.
func (r Rect) MaxDistPoint(p Point) float64 {
	best := 0.0
	for _, c := range r.Corners() {
		if d := p.Dist(c); d > best {
			best = d
		}
	}
	return best
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
