// Package dsu implements a disjoint-set (union–find) forest with union by
// rank and path compression. The polygon union grouping step (paper §4.1)
// uses it to cluster transitively-overlapping polygons in near-constant
// time per merge.
package dsu

// DSU is a disjoint-set forest over the integers [0, n).
type DSU struct {
	parent []int
	rank   []byte
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]byte, n), sets: n}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }

// Groups returns the members of each set, keyed by nothing in particular:
// the order of groups and of members within a group follows element order.
func (d *DSU) Groups() [][]int {
	byRoot := make(map[int][]int)
	order := make([]int, 0)
	for i := range d.parent {
		r := d.Find(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}
