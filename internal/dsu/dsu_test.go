package dsu

import (
	"math/rand"
	"testing"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 {
		t.Fatalf("sets = %d, want 5", d.Sets())
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("repeat union should not merge")
	}
	d.Union(2, 3)
	if d.Sets() != 3 {
		t.Errorf("sets = %d, want 3", d.Sets())
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Error("bad connectivity")
	}
	d.Union(1, 3)
	if !d.Same(0, 2) {
		t.Error("transitive connectivity")
	}
}

func TestGroups(t *testing.T) {
	d := New(6)
	d.Union(0, 2)
	d.Union(2, 4)
	d.Union(1, 5)
	groups := d.Groups()
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[3] != 1 || sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("group sizes = %v", sizes)
	}
}

func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	d := New(n)
	naive := make([]int, n)
	for i := range naive {
		naive[i] = i
	}
	relabel := func(from, to int) {
		for i := range naive {
			if naive[i] == from {
				naive[i] = to
			}
		}
	}
	for op := 0; op < 2000; op++ {
		a, b := rng.Intn(n), rng.Intn(n)
		d.Union(a, b)
		relabel(naive[a], naive[b])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d.Same(i, j) != (naive[i] == naive[j]) {
				t.Fatalf("connectivity mismatch at (%d,%d)", i, j)
			}
		}
	}
}
