package mapreduce

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/sindex"
)

// TestRetryDoesNotDoubleCountCounters is the regression test for the
// retry inflation bug: failed attempts used to increment map.records.in
// (and re-run the combiner's counters), so injected failures inflated the
// job counters. Only the successful attempt may count.
func TestRetryDoesNotDoubleCountCounters(t *testing.T) {
	const records = 30
	c := newTestCluster(t, 16, 4)
	var recs []string
	for i := 0; i < records; i++ {
		recs = append(recs, fmt.Sprintf("%012d", i))
	}
	c.FS().WriteFile("in", recs)
	// Hash-seeded injection gives every (task, attempt) a fixed fate, so
	// the retry pattern is identical under any scheduling interleaving
	// (the legacy global-counter mode was order-dependent and could
	// exhaust a task's budget under concurrent-job scheduling). Seed 3
	// yields 12 retries across these 30 tasks with none exhausting.
	c.SetFault(fault.Plan{MapFailRate: 0.3, Seed: 3})
	rep, err := c.Run(&Job{
		Name:  "flaky-counters",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Inc("user.mapped", 1)
				ctx.Emit("k", r)
			}
			return nil
		},
		Combine: func(ctx *TaskContext, key string, values []string) error {
			ctx.Inc("user.combined", int64(len(values)))
			ctx.Emit(key, strconv.Itoa(len(values)))
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values []string) error {
			for range values {
				ctx.Write(key)
			}
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterTaskRetries] == 0 {
		t.Fatal("expected injected retries; the regression test exercised nothing")
	}
	if got := rep.Counters[CounterMapRecordsIn]; got != records {
		t.Errorf("map.records.in = %d, want %d (retries must not double-count)", got, records)
	}
	if got := rep.Counters["user.mapped"]; got != records {
		t.Errorf("user.mapped = %d, want %d", got, records)
	}
	if got := rep.Counters["user.combined"]; got != records {
		t.Errorf("user.combined = %d, want %d (combiner re-runs must not double-count)", got, records)
	}
}

// TestTraceSpansPerPhase runs a full map+reduce+commit job and checks the
// exported trace: the Chrome trace_event JSON is structurally valid, the
// JSONL round-trips, and there is at least one span per map task, the
// shuffle, each reduce partition and the commit, all parented on the job
// root span.
func TestTraceSpansPerPhase(t *testing.T) {
	c := newTestCluster(t, 256, 4)
	writeText(t, c)
	job := wordCountJob("out")
	job.Commit = func(cluster *Cluster, addOutput func(string)) error {
		addOutput("committed")
		return nil
	}
	rep, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Metrics == nil {
		t.Fatal("report is missing trace/metrics")
	}

	// Chrome trace export validates structurally.
	var chrome bytes.Buffer
	if err := rep.Trace.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(chrome.Bytes()); err != nil {
		t.Fatal(err)
	}

	// JSONL round-trip preserves span count and links.
	var jsonl bytes.Buffer
	if err := rep.Trace.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ParseJSONL(jsonl.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(rep.Trace.Spans()) {
		t.Fatalf("round-trip span count = %d, want %d", len(spans), len(rep.Trace.Spans()))
	}

	byPhase := map[string]int{}
	var rootID int64
	for _, s := range spans {
		byPhase[s.Phase]++
		if s.Phase == obs.PhaseJob {
			rootID = s.ID
		}
	}
	if byPhase[obs.PhaseJob] != 1 {
		t.Fatalf("job spans = %d, want 1", byPhase[obs.PhaseJob])
	}
	if byPhase[obs.PhaseMap] != rep.MapTasks {
		t.Errorf("map spans = %d, want %d", byPhase[obs.PhaseMap], rep.MapTasks)
	}
	if byPhase[obs.PhaseShuffle] != 1 {
		t.Errorf("shuffle spans = %d, want 1", byPhase[obs.PhaseShuffle])
	}
	if byPhase[obs.PhaseReduce] != rep.ReduceTasks {
		t.Errorf("reduce spans = %d, want %d", byPhase[obs.PhaseReduce], rep.ReduceTasks)
	}
	if byPhase[obs.PhaseCommit] != 1 {
		t.Errorf("commit spans = %d, want 1", byPhase[obs.PhaseCommit])
	}
	for _, s := range spans {
		if s.Phase == obs.PhaseJob {
			continue
		}
		if s.Parent != rootID {
			t.Errorf("span %s (%s) parent = %d, want root %d", s.Name, s.Phase, s.Parent, rootID)
		}
		if s.Outcome != obs.OutcomeOK {
			t.Errorf("span %s outcome = %q", s.Name, s.Outcome)
		}
	}

	// The per-phase histograms exist in the snapshot.
	for _, h := range []string{HistMapTaskDurationUS, HistReduceTaskDurationUS} {
		if rep.Metrics.Histograms[h].Count == 0 {
			t.Errorf("histogram %s is empty", h)
		}
	}
}

// TestRetriedAttemptsAppearInTrace checks that failed attempts leave
// retry-outcome spans behind rather than vanishing.
func TestRetriedAttemptsAppearInTrace(t *testing.T) {
	c := newTestCluster(t, 16, 4)
	var recs []string
	for i := 0; i < 30; i++ {
		recs = append(recs, fmt.Sprintf("%012d", i))
	}
	c.FS().WriteFile("in", recs)
	c.InjectFailures(3)
	rep, err := c.Run(&Job{
		Name:  "flaky-trace",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Write(r)
			}
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	var retrySpans, okMapSpans int64
	for _, s := range rep.Trace.Spans() {
		if s.Phase != obs.PhaseMap {
			continue
		}
		switch s.Outcome {
		case obs.OutcomeRetry:
			retrySpans++
		case obs.OutcomeOK:
			okMapSpans++
		}
	}
	if retrySpans != rep.Counters[CounterTaskRetries] {
		t.Errorf("retry spans = %d, counter = %d", retrySpans, rep.Counters[CounterTaskRetries])
	}
	if okMapSpans != int64(rep.MapTasks) {
		t.Errorf("ok map spans = %d, want %d", okMapSpans, rep.MapTasks)
	}
}

func TestSimulatedParallelEdgeCases(t *testing.T) {
	// workers=0 must clamp to 1: the makespan is the full work sum.
	r := &Report{
		MapWorkSum: 10 * time.Second, MapTaskMax: 4 * time.Second,
		ShuffleTime:   time.Second,
		ReduceWorkSum: 2 * time.Second, ReduceTaskMax: 2 * time.Second,
		CommitTime: time.Second,
	}
	if got := r.SimulatedParallel(0); got != 14*time.Second {
		t.Errorf("workers=0 makespan = %v, want 14s", got)
	}
	// One dominating task: the phase cannot beat the longest task no
	// matter how many workers.
	if got := r.SimulatedParallel(1000); got != 4*time.Second+time.Second+2*time.Second+time.Second {
		t.Errorf("dominating-task makespan = %v", got)
	}
	// Empty reduce phase contributes nothing.
	r2 := &Report{MapWorkSum: 6 * time.Second, MapTaskMax: 2 * time.Second}
	if got := r2.SimulatedParallel(3); got != 2*time.Second {
		t.Errorf("empty-phases makespan = %v, want 2s", got)
	}
	// Zero-everything report must not panic or go negative.
	if got := (&Report{}).SimulatedParallel(5); got != 0 {
		t.Errorf("zero report makespan = %v", got)
	}
}

// TestMakeSplitsUsesMasterIndexMBR checks that default splits of an
// indexed file carry the real partition boundaries from the master index
// (not the world rectangle), so a Filter on the default split path can
// prune.
func TestMakeSplitsUsesMasterIndexMBR(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	gi := &sindex.GlobalIndex{
		Technique: sindex.Grid,
		Space:     geom.NewRect(0, 0, 10, 10),
		Cells: []sindex.Cell{
			{ID: 0, Boundary: geom.NewRect(0, 0, 5, 10), Content: geom.NewRect(1, 1, 4, 9)},
			{ID: 1, Boundary: geom.NewRect(5, 0, 10, 10), Content: geom.NewRect(6, 1, 9, 9)},
		},
	}
	w, err := c.FS().Create("indexed")
	if err != nil {
		t.Fatal(err)
	}
	w.SetPartition("c0")
	w.WriteRecord("left")
	w.SetPartition("c1")
	w.WriteRecord("right")
	w.SetMaster(gi.Encode())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	splits, err := c.MakeSplits([]string{"indexed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("splits = %d, want 2", len(splits))
	}
	world := geom.WorldRect()
	for _, s := range splits {
		cell, ok := gi.CellByKey(s.Partition)
		if !ok {
			t.Fatalf("split has unknown partition %q", s.Partition)
		}
		if s.MBR == world {
			t.Errorf("split %s MBR is the world rect; master index boundary was discarded", s.Partition)
		}
		if s.MBR != cell.Boundary {
			t.Errorf("split %s MBR = %+v, want cell boundary %+v", s.Partition, s.MBR, cell.Boundary)
		}
		if s.ContentMBR != cell.Content {
			t.Errorf("split %s ContentMBR = %+v, want cell content %+v", s.Partition, s.ContentMBR, cell.Content)
		}
	}

	// A Filter on the default split path (Input, no explicit Splits) must
	// see the real MBRs and be able to prune.
	query := geom.NewRect(6, 4, 7, 6) // inside cell c1 only
	rep, err := c.Run(&Job{
		Name:  "filtered-indexed",
		Input: []string{"indexed"},
		Filter: func(splits []*Split) []*Split {
			var keep []*Split
			for _, s := range splits {
				if s.MBR.Intersects(query) {
					keep = append(keep, s)
				}
			}
			return keep
		},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Write(r)
			}
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Splits != 1 || rep.SplitsTotal != 2 {
		t.Errorf("filter pruned %d/%d, want 1/2", rep.Splits, rep.SplitsTotal)
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 1 || out[0] != "right" {
		t.Errorf("out = %v, want [right]", out)
	}
}

// TestCountersShim checks the compatibility shim over the registry.
func TestCountersShim(t *testing.T) {
	reg := obs.NewRegistry()
	cs := NewCounters(reg)
	cs.Inc("x", 5)
	cs.Inc("x", 2)
	if cs.Get("x") != 7 {
		t.Errorf("Get = %d", cs.Get("x"))
	}
	snap := cs.Snapshot()
	if snap["x"] != 7 {
		t.Errorf("Snapshot = %v", snap)
	}
	// The shim shares the registry; registry-side increments show through.
	reg.Inc("x", 3)
	if cs.Get("x") != 10 {
		t.Errorf("Get after registry inc = %d", cs.Get("x"))
	}
}

// TestWriteSummary smoke-tests the human-readable summary rendering.
func TestWriteSummary(t *testing.T) {
	c := newTestCluster(t, 256, 4)
	writeText(t, c)
	rep, err := c.Run(wordCountJob("out"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"phase", "map", "shuffle", "reduce", "commit", "slowest tasks", "histograms:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestGaugeFilterPruneRatio checks the prune-ratio gauge the evaluation
// figures cite.
func TestGaugeFilterPruneRatio(t *testing.T) {
	c := newTestCluster(t, 16, 2)
	var recs []string
	for i := 0; i < 40; i++ {
		recs = append(recs, fmt.Sprintf("%012d", i))
	}
	c.FS().WriteFile("in", recs)
	rep, err := c.Run(&Job{
		Name:   "pruned",
		Input:  []string{"in"},
		Filter: func(splits []*Split) []*Split { return splits[:1] },
		Map:    func(ctx *TaskContext, split *Split) error { return nil },
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio, ok := rep.Metrics.Gauges[GaugeFilterPruneRatio]
	if !ok {
		t.Fatal("prune ratio gauge missing")
	}
	want := float64(rep.SplitsTotal-rep.Splits) / float64(rep.SplitsTotal)
	if ratio != want {
		t.Errorf("prune ratio = %v, want %v", ratio, want)
	}
}
