package mapreduce

import (
	"os"
	"syscall"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
)

// Serving-side routing exposure: the sharded serving engine (the master's
// HTTP planner) consults the data plane's placement table to scatter
// partition work to replica holders. These methods are the read-only view
// it needs — where each split's replicas live, in rendezvous order — plus
// the epoch feed heartbeats piggyback and the serve-phase chaos hook.

// EnsureServeReplicas places replicas of the splits' blocks on live
// workers (idempotent; blocks already placed are skipped). The serving
// engine calls it before scattering so a freshly indexed file gets its
// replicas on first query rather than first batch job. No-op when the
// data plane is off (replication 0).
func (m *Master) EnsureServeReplicas(splits []*Split) {
	m.plane.ensureReplicated(splits)
}

// ServeMeta builds the replica-aware split descriptor a serving worker
// needs to assemble the partition from its replica store (falling through
// to peers and the master exactly like a map task). Nil when the data
// plane is off.
func (m *Master) ServeMeta(s *Split) *WireSplitMeta {
	if m.plane == nil {
		return nil
	}
	return &WireSplitMeta{
		Partition:  s.Partition,
		MBR:        s.MBR,
		ContentMBR: s.ContentMBR,
		Tag:        s.Tag,
		Blocks:     m.plane.blockRefs(s),
	}
}

// ServeHolders returns the shard-serving addresses of live, serve-capable
// workers holding the split's replicas, in placement (rendezvous) order:
// the first entry is the scatter target, the rest the fallback ladder.
func (m *Master) ServeHolders(s *Split) []string {
	if m.plane == nil {
		return nil
	}
	ids := m.plane.serveHolderIDs(s)
	out := make([]string, 0, len(ids))
	m.mu.Lock()
	for _, id := range ids {
		if ws := m.workers[id]; ws != nil && ws.live && ws.canServe {
			out = append(out, ws.addr)
		}
	}
	m.mu.Unlock()
	return out
}

// serveHolderIDs returns the split's replica holders in placement order:
// the first block's push order (rendezvous rank among the workers live at
// placement time) leads, holders of further blocks append. Unlike
// holdersFor — which sorts by id for the locality set — order matters
// here: the rendezvous-first holder is the scatter target.
func (p *dataPlane) serveHolderIDs(s *Split) []int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int64
	seen := map[int64]bool{}
	collect := func(b *dfs.Block) {
		pb := p.blocks[b.ID]
		if pb == nil {
			return
		}
		for _, id := range pb.holders {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	for _, b := range s.Blocks {
		collect(b)
	}
	for _, b := range s.Extra {
		collect(b)
	}
	return out
}

// SetEpochSource installs the callback whose snapshot of DFS file epochs
// the master embeds in heartbeat replies, so serving workers drop stale
// pinned partitions without a second control channel. The serving layer
// installs sys.FS().Epochs here; last install wins.
func (m *Master) SetEpochSource(fn func() map[string]int64) {
	m.mu.Lock()
	m.epochSrc = fn
	m.mu.Unlock()
}

// epochSnapshot invokes the installed epoch source (nil map when none).
func (m *Master) epochSnapshot() map[string]int64 {
	m.mu.Lock()
	fn := m.epochSrc
	m.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// MaybeKillServeTarget consults the fault plan's worker-kill mode for one
// scatter target of a sharded serving query (phase "serve", task = the
// candidate partition's index) and kills the addressed worker when the
// seeded decision fires — the chaos hook the serving fallback ladder is
// tested against. Decisions depend only on (plan, task), never on timing,
// so a soak replays deterministically.
func (m *Master) MaybeKillServeTarget(task int, addr string) {
	if !m.opts.EnableKill || addr == "" {
		return
	}
	in := m.c.Injector()
	if in == nil || !in.DecideKill("serve", task, 0) {
		return
	}
	var victim *workerState
	m.mu.Lock()
	for _, ws := range m.workers {
		if ws.live && ws.addr == addr {
			victim = ws
			break
		}
	}
	m.mu.Unlock()
	if victim == nil {
		return
	}
	m.flog.Append(fault.Event{Phase: "serve", Task: task, Kind: "worker-kill", Worker: victim.id})
	if kf := m.opts.KillFn; kf != nil {
		_ = kf(victim.pid)
		return
	}
	if victim.pid > 0 && victim.pid != os.Getpid() {
		_ = syscall.Kill(victim.pid, syscall.SIGKILL)
	}
}
