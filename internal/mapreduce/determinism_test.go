package mapreduce

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"spatialhadoop/internal/dfs"
)

// runWordCount runs the canonical job on a cluster with the given worker
// count and returns the sorted output.
func runWordCount(t *testing.T, workers int) []string {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 128, DataNodes: workers})
	c := NewCluster(fs, workers)
	var recs []string
	for i := 0; i < 97; i++ {
		recs = append(recs, "alpha beta gamma delta "+strconv.Itoa(i%7))
	}
	if err := fs.WriteFile("text", recs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(wordCountJob("out")); err != nil {
		t.Fatal(err)
	}
	out, err := fs.ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// TestOutputIndependentOfWorkerCount checks the cluster size changes only
// scheduling, never the answer.
func TestOutputIndependentOfWorkerCount(t *testing.T) {
	ref := runWordCount(t, 1)
	for _, w := range []int{2, 5, 16} {
		got := runWordCount(t, w)
		if strings.Join(got, ";") != strings.Join(ref, ";") {
			t.Fatalf("workers=%d changed the output", w)
		}
	}
}

// TestReducerCountInvariance checks the hash-partitioned shuffle produces
// the same grouped answer for any reducer count.
func TestReducerCountInvariance(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 64, DataNodes: 4})
	c := NewCluster(fs, 4)
	var recs []string
	for i := 0; i < 50; i++ {
		recs = append(recs, strconv.Itoa(i%11))
	}
	fs.WriteFile("in", recs)
	run := func(numRed int) []string {
		job := &Job{
			Name:  "group",
			Input: []string{"in"},
			Map: func(ctx *TaskContext, split *Split) error {
				for _, r := range split.Records() {
					ctx.Emit(r, "1")
				}
				return nil
			},
			Reduce: func(ctx *TaskContext, key string, values []string) error {
				ctx.Write(key + "=" + strconv.Itoa(len(values)))
				return nil
			},
			NumReducers: numRed,
			Output:      "out" + strconv.Itoa(numRed),
		}
		if _, err := c.Run(job); err != nil {
			t.Fatal(err)
		}
		out, _ := fs.ReadAll(job.Output)
		sort.Strings(out)
		return out
	}
	ref := run(1)
	for _, nr := range []int{2, 3, 7, 32} {
		got := run(nr)
		if strings.Join(got, ";") != strings.Join(ref, ";") {
			t.Fatalf("numReducers=%d changed the grouped output", nr)
		}
	}
}

// TestSimulatedParallelBounds checks the LPT estimate is sane: between the
// longest task and the serial total, and non-increasing in workers.
func TestSimulatedParallelBounds(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 64, DataNodes: 4})
	c := NewCluster(fs, 4)
	var recs []string
	for i := 0; i < 64; i++ {
		recs = append(recs, strings.Repeat("word ", 20))
	}
	fs.WriteFile("text", recs)
	rep, err := c.Run(wordCountJob("out"))
	if err != nil {
		t.Fatal(err)
	}
	serial := rep.MapWorkSum + rep.ReduceWorkSum + rep.ShuffleTime + rep.CommitTime
	one := rep.SimulatedParallel(1)
	if one < serial {
		t.Errorf("1 worker estimate %v below serial cost %v", one, serial)
	}
	prev := one
	for _, w := range []int{2, 4, 25, 1000} {
		cur := rep.SimulatedParallel(w)
		if cur > prev {
			t.Errorf("estimate increased with more workers: %v -> %v", prev, cur)
		}
		if cur < rep.MapTaskMax {
			t.Errorf("estimate %v below longest map task %v", cur, rep.MapTaskMax)
		}
		prev = cur
	}
}
