package mapreduce

import (
	"context"
	"sync/atomic"
)

// SlotPool is the cluster-wide worker slot pool. Every task attempt of
// every concurrently running job — map, reduce and speculative duplicates
// alike — acquires one slot before executing, so the total task
// parallelism of the cluster is bounded by one global cap instead of one
// cap per job. Before the pool existed each job allocated its own
// semaphore, so N concurrent jobs oversubscribed the cluster N-fold.
//
// The capacity models the cluster's worker slots (the paper's machine
// count), not the host's cores: on a smaller host the Go scheduler
// interleaves the slot holders, which preserves throughput and — more
// importantly — keeps a one-core test box able to run a speculative
// duplicate while its straggling primary sleeps on another slot.
type SlotPool struct {
	sem   chan struct{}
	inUse atomic.Int64
	high  atomic.Int64
}

// NewSlotPool creates a pool with the given capacity (minimum 1).
func NewSlotPool(capacity int) *SlotPool {
	if capacity < 1 {
		capacity = 1
	}
	return &SlotPool{sem: make(chan struct{}, capacity)}
}

// Cap returns the pool capacity.
func (p *SlotPool) Cap() int { return cap(p.sem) }

// InUse returns the number of slots currently held.
func (p *SlotPool) InUse() int { return int(p.inUse.Load()) }

// HighWater returns the maximum number of slots ever held at once — the
// sampled invariant the concurrency property tests pin against Cap.
func (p *SlotPool) HighWater() int { return int(p.high.Load()) }

// Acquire blocks until a slot is free or ctx is done.
func (p *SlotPool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		p.acquired()
		return nil
	default:
	}
	select {
	case p.sem <- struct{}{}:
		p.acquired()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking; it reports whether one was
// free. Speculative duplicates use it: speculation is opportunistic, so
// when the cluster is saturated the monitor simply retries at its next
// tick instead of queueing behind the very tasks it wants to second-guess.
func (p *SlotPool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		p.acquired()
		return true
	default:
		return false
	}
}

// Release returns a slot to the pool.
func (p *SlotPool) Release() {
	p.inUse.Add(-1)
	<-p.sem
}

// acquired bumps the usage gauge and folds it into the high-water mark.
func (p *SlotPool) acquired() {
	cur := p.inUse.Add(1)
	for {
		h := p.high.Load()
		if cur <= h || p.high.CompareAndSwap(h, cur) {
			return
		}
	}
}
