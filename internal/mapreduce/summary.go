package mapreduce

import (
	"fmt"
	"io"
	"sort"
	"time"

	"spatialhadoop/internal/obs"
)

// NewCounters wraps a registry in the compatibility counter interface.
func NewCounters(reg *obs.Registry) *Counters { return &Counters{reg: reg} }

// WriteSummary renders a human-readable job summary: the per-phase time
// table (wall time, work sum, longest task), the top-N slowest tasks, the
// most skewed reduce partitions, the runtime gauges (filter prune ratio)
// and the per-phase histograms. It is what `shadoop -metrics` prints.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "job %q: %v total, %d/%d splits processed", r.Job, r.Total.Round(time.Microsecond), r.Splits, r.SplitsTotal)
	if r.Metrics != nil {
		if ratio, ok := r.Metrics.Gauges[GaugeFilterPruneRatio]; ok {
			fmt.Fprintf(w, " (filter pruned %.1f%%)", 100*ratio)
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-8s  %12s  %12s  %12s  %6s\n", "phase", "wall", "work-sum", "max-task", "tasks")
	row := func(phase string, wall, sum, max time.Duration, tasks int) {
		fmt.Fprintf(w, "%-8s  %12s  %12s  %12s  %6d\n",
			phase, wall.Round(time.Microsecond), sum.Round(time.Microsecond),
			max.Round(time.Microsecond), tasks)
	}
	row("map", r.MapTime, r.MapWorkSum, r.MapTaskMax, r.MapTasks)
	row("shuffle", r.ShuffleTime, r.ShuffleTime, r.ShuffleTime, 1)
	row("reduce", r.ReduceTime, r.ReduceWorkSum, r.ReduceTaskMax, r.ReduceTasks)
	row("commit", r.CommitTime, r.CommitTime, r.CommitTime, 1)

	if r.Counters != nil {
		fmt.Fprintf(w, "shuffle: %d bytes in %d pairs; retries: %d; output: %d records\n",
			r.Counters[CounterShuffleBytes], r.Counters[CounterShufflePairs],
			r.Counters[CounterTaskRetries], r.Counters[CounterOutputRecords])
	}

	writeFaultTable(w, r)

	if r.Trace != nil {
		writeSlowestTasks(w, r.Trace, 5)
		writeSkewedPartitions(w, r.Trace, 5)
	}
	if r.Metrics != nil && len(r.Metrics.Histograms) > 0 {
		names := make([]string, 0, len(r.Metrics.Histograms))
		for n := range r.Metrics.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "histograms:")
		for _, n := range names {
			fmt.Fprintf(w, "  %-28s %s\n", n, r.Metrics.Histograms[n].String())
		}
	}
}

// faultCounters are the scheduler's fault-tolerance counters in summary
// display order, with their human labels.
var faultCounters = []struct {
	name  string
	label string
}{
	{CounterRetryMap, "map retries"},
	{CounterRetryReduce, "reduce retries"},
	{CounterRetryCommit, "commit retries"},
	{CounterStragglersInjected, "stragglers injected"},
	{CounterSpecLaunched, "speculative launched"},
	{CounterSpecWon, "speculative won"},
	{CounterSpecSuppressed, "duplicates suppressed"},
	{CounterDeadlineExceeded, "deadlines exceeded"},
	{CounterChecksumFailures, "checksum failures"},
	{CounterWorkerLost, "workers lost mid-task"},
	{CounterReissuedMaps, "map shards re-issued"},
}

// writeFaultTable prints the fault-tolerance event table. A fault-free
// run prints nothing: the table appears only when the scheduler retried,
// speculated, hit a deadline or saw a checksum mismatch.
func writeFaultTable(w io.Writer, r *Report) {
	if r.Counters == nil {
		return
	}
	any := false
	for _, fc := range faultCounters {
		if r.Counters[fc.name] > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintln(w, "fault events:")
	for _, fc := range faultCounters {
		if v := r.Counters[fc.name]; v > 0 {
			fmt.Fprintf(w, "  %-22s %6d\n", fc.label, v)
		}
	}
}

// writeSlowestTasks prints the top-n slowest successful task spans.
func writeSlowestTasks(w io.Writer, tr *obs.Trace, n int) {
	var tasks []*obs.Span
	for _, s := range tr.Spans() {
		if (s.Phase == obs.PhaseMap || s.Phase == obs.PhaseReduce) && s.Outcome == obs.OutcomeOK {
			tasks = append(tasks, s)
		}
	}
	if len(tasks) == 0 {
		return
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].DurUS > tasks[j].DurUS })
	if len(tasks) > n {
		tasks = tasks[:n]
	}
	fmt.Fprintf(w, "top %d slowest tasks:\n", len(tasks))
	for _, s := range tasks {
		part := s.Partition
		if part == "" {
			part = "-"
		}
		fmt.Fprintf(w, "  %-12s partition=%-6s %8dus  in=%-8d out=%-8d bytes=%d\n",
			s.Name, part, s.DurUS, s.RecordsIn, s.RecordsOut, s.Bytes)
	}
}

// writeSkewedPartitions prints the reduce partitions (or, for map-only
// jobs, the map tasks) with the highest record counts relative to the
// phase mean — the skew view the LPT simulation is sensitive to.
func writeSkewedPartitions(w io.Writer, tr *obs.Trace, n int) {
	phase := obs.PhaseReduce
	var spans []*obs.Span
	for _, s := range tr.Spans() {
		if s.Phase == phase && s.Outcome == obs.OutcomeOK {
			spans = append(spans, s)
		}
	}
	if len(spans) == 0 {
		phase = obs.PhaseMap
		for _, s := range tr.Spans() {
			if s.Phase == phase && s.Outcome == obs.OutcomeOK {
				spans = append(spans, s)
			}
		}
	}
	if len(spans) < 2 {
		return
	}
	var total int64
	for _, s := range spans {
		total += s.RecordsIn
	}
	mean := float64(total) / float64(len(spans))
	if mean <= 0 {
		return
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].RecordsIn > spans[j].RecordsIn })
	if len(spans) > n {
		spans = spans[:n]
	}
	fmt.Fprintf(w, "most skewed %s partitions (mean %.0f records):\n", phase, mean)
	for _, s := range spans {
		part := s.Partition
		if part == "" {
			part = fmt.Sprintf("#%d", s.Task)
		}
		fmt.Fprintf(w, "  %-12s partition=%-6s records=%-8d %.2fx mean\n",
			s.Name, part, s.RecordsIn, float64(s.RecordsIn)/mean)
	}
}
