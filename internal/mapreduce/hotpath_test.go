package mapreduce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/geomio"
)

// TestPartitionOfStability pins the shard assignment of the inlined
// FNV-1a loop: it must match the stdlib hash/fnv (the previous
// implementation) bit for bit, so indexes and persisted expectations keyed
// by reducer stay valid, and must be stable across releases (pinned
// values).
func TestPartitionOfStability(t *testing.T) {
	keys := []string{"", "a", "k", "alpha", "cell-0007", "x,y", "1", "the quick brown fox"}
	for _, key := range keys {
		h := fnv.New32a()
		h.Write([]byte(key))
		for _, n := range []int{1, 2, 4, 7, 16, 64} {
			want := int(h.Sum32() % uint32(n))
			if got := partitionOf(key, n); got != want {
				t.Errorf("partitionOf(%q, %d) = %d, want %d (hash/fnv)", key, n, got, want)
			}
		}
	}
	// Pinned absolute assignments: these may never change, or previously
	// written expectations about key→reducer routing silently break.
	pinned := map[string]int{"": 5, "a": 12, "alpha": 11, "cell-0007": 13}
	for key, want := range pinned {
		if got := partitionOf(key, 16); got != want {
			t.Errorf("partitionOf(%q, 16) = %d, want pinned %d", key, got, want)
		}
	}
}

func TestPartitionOfAllocFree(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		partitionOf("some-shuffle-key", 16)
	})
	if allocs != 0 {
		t.Errorf("partitionOf allocates %.1f objects per call, want 0", allocs)
	}
}

// TestShuffleCountersSingleSource checks the deduplicated shuffle
// accounting: the shuffle span and the job counters must report identical
// pair and byte totals, both equal to a hand computation over the emitted
// pairs.
func TestShuffleCountersSingleSource(t *testing.T) {
	c := newTestCluster(t, 128, 4)
	var recs []string
	for i := 0; i < 60; i++ {
		recs = append(recs, fmt.Sprintf("w%02d", i%9))
	}
	c.FS().WriteFile("in", recs)
	rep, err := c.Run(&Job{
		Name:  "counted",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Emit(r, "1")
			}
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values []string) error {
			ctx.Write(key + "=" + strconv.Itoa(len(values)))
			return nil
		},
		NumReducers: 4,
		Output:      "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantPairs, wantBytes int64
	for _, r := range recs {
		wantPairs++
		wantBytes += int64(len(r) + 1) // key + "1"
	}
	if got := rep.Counters[CounterShufflePairs]; got != wantPairs {
		t.Errorf("shuffle.pairs counter = %d, want %d", got, wantPairs)
	}
	if got := rep.Counters[CounterShuffleBytes]; got != wantBytes {
		t.Errorf("shuffle.bytes counter = %d, want %d", got, wantBytes)
	}
	var shSpans int
	for _, s := range rep.Trace.Spans() {
		if s.Phase != "shuffle" {
			continue
		}
		shSpans++
		if s.RecordsIn != wantPairs {
			t.Errorf("shuffle span records-in = %d, want %d", s.RecordsIn, wantPairs)
		}
		if s.Bytes != wantBytes {
			t.Errorf("shuffle span bytes = %d, want %d", s.Bytes, wantBytes)
		}
	}
	if shSpans != 1 {
		t.Fatalf("shuffle spans = %d, want 1", shSpans)
	}
}

// TestMapSideShuffleGrouping checks that the map-side sharded shuffle
// delivers every key to exactly one reduce group with all its values, for
// several reducer counts, with a combiner in play.
func TestMapSideShuffleGrouping(t *testing.T) {
	c := newTestCluster(t, 64, 4)
	var recs []string
	for i := 0; i < 120; i++ {
		recs = append(recs, "key"+strconv.Itoa(i%13))
	}
	c.FS().WriteFile("in", recs)
	for _, numRed := range []int{1, 4, 16} {
		out := "out" + strconv.Itoa(numRed)
		rep, err := c.Run(&Job{
			Name:  "grouping",
			Input: []string{"in"},
			Map: func(ctx *TaskContext, split *Split) error {
				for _, r := range split.Records() {
					ctx.Emit(r, "1")
				}
				return nil
			},
			Combine: func(ctx *TaskContext, key string, values []string) error {
				ctx.Emit(key, strconv.Itoa(len(values)))
				return nil
			},
			Reduce: func(ctx *TaskContext, key string, values []string) error {
				total := 0
				for _, v := range values {
					n, err := strconv.Atoi(v)
					if err != nil {
						return err
					}
					total += n
				}
				ctx.Write(key + "=" + strconv.Itoa(total))
				return nil
			},
			NumReducers: numRed,
			Output:      out,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := c.FS().ReadAll(out)
		sort.Strings(got)
		var want []string
		for k := 0; k < 13; k++ {
			count := 120/13 + boolToInt(k < 120%13)
			want = append(want, "key"+strconv.Itoa(k)+"="+strconv.Itoa(count))
		}
		sort.Strings(want)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Errorf("numRed=%d grouped output = %v, want %v", numRed, got, want)
		}
		if rep.ReduceTasks != numRed {
			t.Errorf("reduce tasks = %d, want %d", rep.ReduceTasks, numRed)
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestRetriedAttemptObservesDecodeCache is the regression test for the
// decoded-block cache under retries: with injected failures, the retried
// attempts re-run the map function, but each block's records must be
// parsed exactly once — the retry hits the cache — and the output must be
// identical to a failure-free run.
func TestRetriedAttemptObservesDecodeCache(t *testing.T) {
	buildInput := func(c *Cluster) {
		var recs []string
		for i := 0; i < 64; i++ {
			recs = append(recs, geomio.EncodePoint(geom.Pt(float64(i), float64(i%7))))
		}
		if err := c.FS().WriteFile("pts", recs); err != nil {
			t.Fatal(err)
		}
	}
	var decodes atomic.Int64
	job := func(out string) *Job {
		return &Job{
			Name:  "sum-x",
			Input: []string{"pts"},
			Map: func(ctx *TaskContext, split *Split) error {
				// Points() goes through each block's decode cache; the
				// payload hook counts how many times a block is built, so
				// the test observes cache hits directly.
				for _, b := range split.Blocks {
					if _, err := b.Payload(func(recs []string) (any, error) {
						decodes.Add(1)
						return geomio.DecodePoints(recs)
					}); err != nil {
						return err
					}
				}
				pts, err := split.Points()
				if err != nil {
					return err
				}
				sum := 0.0
				for _, p := range pts {
					sum += p.X
				}
				ctx.Write(strconv.FormatFloat(sum, 'g', -1, 64))
				return nil
			},
			Output: out,
		}
	}

	clean := newTestCluster(t, 256, 4)
	buildInput(clean)
	if _, err := clean.Run(job("out")); err != nil {
		t.Fatal(err)
	}
	want, _ := clean.FS().ReadAll("out")
	sort.Strings(want)

	flaky := newTestCluster(t, 256, 4)
	buildInput(flaky)
	f, _ := flaky.FS().Open("pts")
	nblocks := int64(len(f.Blocks))
	decodes.Store(0)
	flaky.InjectFailures(2)
	rep, err := flaky.Run(job("out"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterTaskRetries] == 0 {
		t.Fatal("expected injected retries; the regression test exercised nothing")
	}
	got, _ := flaky.FS().ReadAll("out")
	sort.Strings(got)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("flaky output = %v, want %v", got, want)
	}
	if decodes.Load() != nblocks {
		t.Errorf("blocks decoded %d times across retries, want %d (one per block)",
			decodes.Load(), nblocks)
	}
}

// TestSplitRecordsShareSingleBlock pins the no-copy fast path: a
// single-block split serves the block's record slice directly.
func TestSplitRecordsShareSingleBlock(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, DataNodes: 2})
	fs.WriteFile("f", []string{"a", "b", "c"})
	f, _ := fs.Open("f")
	s := &Split{Blocks: f.Blocks}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %v", recs)
	}
	if &recs[0] != &f.Blocks[0].Records()[0] {
		t.Error("single-block split copied the record slice")
	}
	if s.NumRecords() != 3 {
		t.Errorf("NumRecords = %d", s.NumRecords())
	}
}

// TestSplitPointsMultiBlock checks the concatenating path decodes across
// blocks in order.
func TestSplitPointsMultiBlock(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 24, DataNodes: 2})
	var want []geom.Point
	var recs []string
	for i := 0; i < 20; i++ {
		p := geom.Pt(float64(i), float64(i))
		want = append(want, p)
		recs = append(recs, geomio.EncodePoint(p))
	}
	fs.WriteFile("f", recs)
	f, _ := fs.Open("f")
	if len(f.Blocks) < 2 {
		t.Fatalf("blocks = %d, want multi-block file", len(f.Blocks))
	}
	s := &Split{Blocks: f.Blocks}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(want) {
		t.Fatalf("points = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
}
