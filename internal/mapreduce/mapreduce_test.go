package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
)

func newTestCluster(t *testing.T, blockSize int64, workers int) *Cluster {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: blockSize, DataNodes: workers})
	return NewCluster(fs, workers)
}

// wordCountJob is the canonical MapReduce smoke test.
func wordCountJob(output string) *Job {
	return &Job{
		Name:  "wordcount",
		Input: []string{"text"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, rec := range split.Records() {
				for _, w := range strings.Fields(rec) {
					ctx.Emit(w, "1")
				}
			}
			return nil
		},
		Combine: func(ctx *TaskContext, key string, values []string) error {
			ctx.Emit(key, strconv.Itoa(len(values)))
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values []string) error {
			sum := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				sum += n
			}
			ctx.Write(fmt.Sprintf("%s\t%d", key, sum))
			return nil
		},
		NumReducers: 3,
		Output:      "out",
	}
}

func writeText(t *testing.T, c *Cluster) {
	t.Helper()
	var recs []string
	for i := 0; i < 200; i++ {
		recs = append(recs, "the quick brown fox jumps over the lazy dog")
	}
	if err := c.FS().WriteFile("text", recs); err != nil {
		t.Fatal(err)
	}
}

func TestWordCount(t *testing.T) {
	c := newTestCluster(t, 256, 4)
	writeText(t, c)
	rep, err := c.Run(wordCountJob("out"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Splits < 2 {
		t.Errorf("expected multiple splits, got %d", rep.Splits)
	}
	out, err := c.FS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, rec := range out {
		parts := strings.Split(rec, "\t")
		n, _ := strconv.Atoi(parts[1])
		counts[parts[0]] = n
	}
	if counts["the"] != 400 || counts["fox"] != 200 {
		t.Errorf("counts = %v", counts)
	}
	if len(counts) != 8 {
		t.Errorf("distinct words = %d, want 8", len(counts))
	}
	if rep.Counters[CounterMapRecordsIn] != 200 {
		t.Errorf("map records in = %d", rep.Counters[CounterMapRecordsIn])
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	c := newTestCluster(t, 256, 4)
	writeText(t, c)
	withCombiner, err := c.Run(wordCountJob("out"))
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob("out2")
	job.Combine = nil
	job.Output = "out2"
	withoutCombiner, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if withCombiner.Counters[CounterShuffleBytes] >= withoutCombiner.Counters[CounterShuffleBytes] {
		t.Errorf("combiner should cut shuffle bytes: %d vs %d",
			withCombiner.Counters[CounterShuffleBytes], withoutCombiner.Counters[CounterShuffleBytes])
	}
	// Results must be identical either way.
	a, _ := c.FS().ReadAll("out")
	b, _ := c.FS().ReadAll("out2")
	sort.Strings(a)
	sort.Strings(b)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Error("combiner changed the result")
	}
}

func TestMapOnlyJobDirectOutput(t *testing.T) {
	c := newTestCluster(t, 64, 2)
	c.FS().WriteFile("in", []string{"a", "b", "c", "d", "e", "f", "g", "h"})
	_, err := c.Run(&Job{
		Name:  "identity",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Write("out:" + r)
			}
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 8 {
		t.Fatalf("output = %v", out)
	}
}

func TestFilterPrunesSplits(t *testing.T) {
	c := newTestCluster(t, 16, 2)
	var recs []string
	for i := 0; i < 40; i++ {
		recs = append(recs, fmt.Sprintf("%012d", i))
	}
	c.FS().WriteFile("in", recs)
	rep, err := c.Run(&Job{
		Name:  "filtered",
		Input: []string{"in"},
		Filter: func(splits []*Split) []*Split {
			return splits[:2]
		},
		Map: func(ctx *TaskContext, split *Split) error {
			for range split.Records() {
				ctx.Inc("seen", 1)
			}
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SplitsTotal <= rep.Splits {
		t.Errorf("filter should prune: %d of %d", rep.Splits, rep.SplitsTotal)
	}
	if rep.Counters["seen"] >= 40 {
		t.Errorf("saw %d records; pruning had no effect", rep.Counters["seen"])
	}
}

func TestExplicitSplitsAndTags(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	c.FS().WriteFile("in", []string{"x", "y"})
	f, _ := c.FS().Open("in")
	splits := []*Split{
		{Partition: "p0", MBR: geom.NewRect(0, 0, 1, 1), Blocks: f.Blocks, Tag: "hello"},
	}
	_, err := c.Run(&Job{
		Name:   "tagged",
		Splits: splits,
		Map: func(ctx *TaskContext, split *Split) error {
			ctx.Write(split.Tag + ":" + split.Partition)
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 1 || out[0] != "hello:p0" {
		t.Errorf("out = %v", out)
	}
}

func TestCommitHook(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	c.FS().WriteFile("in", []string{"1", "2", "3"})
	_, err := c.Run(&Job{
		Name:  "commit",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Emit("k", r)
			}
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values []string) error {
			ctx.Write("reduced:" + strconv.Itoa(len(values)))
			return nil
		},
		Commit: func(cluster *Cluster, addOutput func(string)) error {
			addOutput("committed")
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.FS().ReadAll("out")
	joined := strings.Join(out, ";")
	if !strings.Contains(joined, "reduced:3") || !strings.Contains(joined, "committed") {
		t.Errorf("out = %v", out)
	}
}

func TestConfBroadcast(t *testing.T) {
	c := newTestCluster(t, 1024, 2)
	c.FS().WriteFile("in", []string{"r"})
	_, err := c.Run(&Job{
		Name:  "conf",
		Input: []string{"in"},
		Conf:  map[string]string{"sky": "value42"},
		Map: func(ctx *TaskContext, split *Split) error {
			ctx.Write(ctx.Config("sky"))
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 1 || out[0] != "value42" {
		t.Errorf("out = %v", out)
	}
}

// TestFailureInjectionRetries checks that transient task failures are
// retried and do not duplicate or lose output.
func TestFailureInjectionRetries(t *testing.T) {
	c := newTestCluster(t, 16, 4)
	var recs []string
	for i := 0; i < 30; i++ {
		recs = append(recs, fmt.Sprintf("%012d", i))
	}
	c.FS().WriteFile("in", recs)
	c.InjectFailures(3) // every third attempt dies once
	rep, err := c.Run(&Job{
		Name:  "flaky",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Write(r)
			}
			return nil
		},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterTaskRetries] == 0 {
		t.Error("expected some retries")
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 30 {
		t.Fatalf("output records = %d, want exactly 30 (no loss, no duplication)", len(out))
	}
	sort.Strings(out)
	for i, r := range out {
		if r != fmt.Sprintf("%012d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
}

func TestJobValidation(t *testing.T) {
	c := newTestCluster(t, 64, 1)
	if _, err := c.Run(&Job{Name: "nomap", Output: "o"}); err == nil {
		t.Error("expected error for missing map")
	}
	if _, err := c.Run(&Job{Name: "noout", Map: func(*TaskContext, *Split) error { return nil }}); err == nil {
		t.Error("expected error for missing output")
	}
	if _, err := c.Run(&Job{
		Name:   "badinput",
		Input:  []string{"missing"},
		Map:    func(*TaskContext, *Split) error { return nil },
		Output: "o",
	}); err == nil {
		t.Error("expected error for missing input")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := newTestCluster(t, 64, 2)
	c.FS().WriteFile("in", []string{"x"})
	_, err := c.Run(&Job{
		Name:  "maperr",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			return fmt.Errorf("boom")
		},
		Output: "out",
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}
