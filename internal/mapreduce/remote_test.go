// Distributed-runtime tests at the mapreduce/worker seam, with workers
// running as goroutines in this process: registration and lease
// lifecycle, remote execution byte-identity against the in-process path,
// worker death mid-job, and the exactly-once accounting of shard-loss
// re-issues. These run in the external test package because the worker
// package imports mapreduce.
package mapreduce_test

import (
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/mapreduce"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/worker"
)

// The test job kind: word count, the canonical exercise of the full
// map/combine/shuffle/reduce pipeline. Registered once for the package.
func init() {
	mapreduce.RegisterKind("test-wordcount", func(conf map[string]string) (mapreduce.KindFuncs, error) {
		return mapreduce.KindFuncs{
			Map: func(ctx *mapreduce.TaskContext, split *mapreduce.Split) error {
				for _, rec := range split.Records() {
					for _, w := range strings.Fields(rec) {
						ctx.Emit(w, "1")
					}
				}
				return nil
			},
			Combine: func(ctx *mapreduce.TaskContext, key string, values []string) error {
				ctx.Emit(key, strconv.Itoa(len(values)))
				return nil
			},
			Reduce: func(ctx *mapreduce.TaskContext, key string, values []string) error {
				sum := 0
				for _, v := range values {
					n, err := strconv.Atoi(v)
					if err != nil {
						return err
					}
					sum += n
				}
				ctx.Write(fmt.Sprintf("%s\t%d", key, sum))
				return nil
			},
		}, nil
	})
}

func kindWordCountJob() *mapreduce.Job {
	kf, err := mapreduce.BuildKind("test-wordcount", nil)
	if err != nil {
		panic(err)
	}
	return &mapreduce.Job{
		Name:        "wordcount",
		Kind:        "test-wordcount",
		Input:       []string{"text"},
		Map:         kf.Map,
		Combine:     kf.Combine,
		Reduce:      kf.Reduce,
		NumReducers: 3,
		Output:      "out",
	}
}

func writeDistText(t *testing.T, c *mapreduce.Cluster) {
	t.Helper()
	recs := make([]string, 0, 120)
	for i := 0; i < 120; i++ {
		recs = append(recs, fmt.Sprintf("the quick brown fox %d jumps over the lazy dog", i%7))
	}
	if err := c.FS().WriteFile("text", recs); err != nil {
		t.Fatal(err)
	}
}

// fastPolicy keeps the tests quick under bursts of worker-death retries.
func fastPolicy() fault.RetryPolicy {
	p := fault.DefaultRetryPolicy()
	p.MaxAttempts = 8
	p.BaseBackoff = 100 * time.Microsecond
	p.MaxBackoff = 2 * time.Millisecond
	p.SpeculativeMin = 50 * time.Millisecond
	return p
}

// workerPool runs n goroutine workers against one master, with a KillFn
// that maps the fake pids back onto Worker.Stop — so the master's kill
// mode exercises real (if in-process) worker death.
type workerPool struct {
	mu      sync.Mutex
	workers map[int]*worker.Worker // by fake pid
}

func (p *workerPool) kill(pid int) error {
	p.mu.Lock()
	w := p.workers[pid]
	p.mu.Unlock()
	if w != nil {
		w.Stop()
	}
	return nil
}

func (p *workerPool) stopAll() {
	p.mu.Lock()
	ws := make([]*worker.Worker, 0, len(p.workers))
	for _, w := range p.workers {
		ws = append(ws, w)
	}
	p.mu.Unlock()
	for _, w := range ws {
		w.Stop()
	}
}

// startDistributed stands up a cluster, a master with test-speed leases,
// and n goroutine workers, and waits until all are under lease.
func startDistributed(t *testing.T, n int, reg *obs.Registry) (*mapreduce.Cluster, *mapreduce.Master, *workerPool) {
	return startDistributedRepl(t, n, reg, 0)
}

// startDistributedRepl is startDistributed with the data plane on at the
// given replication factor.
func startDistributedRepl(t *testing.T, n int, reg *obs.Registry, replication int) (*mapreduce.Cluster, *mapreduce.Master, *workerPool) {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 256, DataNodes: 4})
	c := mapreduce.NewCluster(fs, 4)
	c.SetRetryPolicy(fastPolicy())
	pool := &workerPool{workers: make(map[int]*worker.Worker)}
	m, err := c.StartMaster(mapreduce.MasterOptions{
		HeartbeatEvery:   5 * time.Millisecond,
		Lease:            50 * time.Millisecond,
		Metrics:          reg,
		EnableKill:       true,
		KillFn:           pool.kill,
		RecordHeartbeats: true,
		Replication:      replication,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	for i := 0; i < n; i++ {
		pid := 1000 + i
		w, err := worker.Start(worker.Config{
			Master:  m.Addr(),
			Dir:     t.TempDir(),
			Tasks:   2,
			FakePID: pid,
		})
		if err != nil {
			t.Fatal(err)
		}
		pool.mu.Lock()
		pool.workers[pid] = w
		pool.mu.Unlock()
	}
	t.Cleanup(pool.stopAll)
	waitFor(t, time.Second, func() bool { return m.LiveWorkers() == n })
	return c, m, pool
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// inProcessOracle runs the same job fully in process and returns its
// output records and report.
func inProcessOracle(t *testing.T) ([]string, *mapreduce.Report) {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 256, DataNodes: 4})
	c := mapreduce.NewCluster(fs, 4)
	writeDistText(t, c)
	rep, err := c.Run(kindWordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.FS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

func readOut(t *testing.T, c *mapreduce.Cluster) []string {
	t.Helper()
	out, err := c.FS().ReadAll("out")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameRecords(t *testing.T, got, want []string, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records vs %d in-process", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d diverged: %q vs %q", what, i, got[i], want[i])
		}
	}
}

// countFaultEvents tallies a fault log's events by kind.
func countFaultEvents(l *fault.Log) map[string]int {
	out := map[string]int{}
	for _, e := range l.Events() {
		out[e.Kind]++
	}
	return out
}

// TestWorkerPoolLifecycle pins registration, the lifecycle metrics, the
// heartbeat log, and lease expiry on silent death.
func TestWorkerPoolLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	_, m, pool := startDistributed(t, 2, reg)

	if got := reg.Counter(mapreduce.MetricWorkersRegistered); got != 2 {
		t.Fatalf("registered counter = %d, want 2", got)
	}
	if got := reg.Snapshot().Gauges[mapreduce.GaugeWorkersLive]; got != 2 {
		t.Fatalf("live gauge = %v, want 2", got)
	}

	// Stop one worker without telling the master: its lease must expire.
	pool.kill(1000)
	waitFor(t, time.Second, func() bool { return m.LiveWorkers() == 1 })
	if got := reg.Counter(mapreduce.MetricWorkersLost); got != 1 {
		t.Fatalf("lost counter = %d, want 1", got)
	}
	ev := countFaultEvents(m.FaultLog())
	if ev["worker-register"] != 2 || ev["worker-lost"] != 1 {
		t.Fatalf("fault events = %v, want 2 registrations and 1 loss", ev)
	}
	waitFor(t, time.Second, func() bool { return len(m.HeartbeatLog().Events()) > 0 })
	for _, e := range m.HeartbeatLog().Events() {
		if e.Worker == 0 {
			t.Fatalf("heartbeat event without worker id: %+v", e)
		}
	}
}

// TestRemoteByteIdentity is the core contract: the same job on real
// workers produces byte-identical output to the in-process run, and it
// genuinely ran remotely (tasks were dispatched to workers). Spill files
// are no evidence anymore — end-of-job GC removes them.
func TestRemoteByteIdentity(t *testing.T) {
	want, wantRep := inProcessOracle(t)

	reg := obs.NewRegistry()
	c, _, _ := startDistributed(t, 2, reg)
	writeDistText(t, c)
	rep, err := c.Run(kindWordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "remote wordcount")

	// The data counters must agree exactly with the in-process run.
	for _, name := range []string{
		mapreduce.CounterMapRecordsIn, mapreduce.CounterMapRecordsOut,
		mapreduce.CounterShufflePairs, mapreduce.CounterReduceGroups,
		mapreduce.CounterOutputRecords,
	} {
		if rep.Counters[name] != wantRep.Counters[name] {
			t.Errorf("counter %s = %d remotely, %d in process", name, rep.Counters[name], wantRep.Counters[name])
		}
	}

	if reg.Counter(mapreduce.MetricTasksDispatched) == 0 {
		t.Fatal("no task was dispatched to a worker; the job did not run remotely")
	}
}

func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".r") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRemoteFallbackNoWorkers: a master with an empty pool must leave
// jobs on the in-process path.
func TestRemoteFallbackNoWorkers(t *testing.T) {
	want, _ := inProcessOracle(t)
	fs := dfs.New(dfs.Config{BlockSize: 256, DataNodes: 4})
	c := mapreduce.NewCluster(fs, 4)
	m, err := c.StartMaster(mapreduce.MasterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	writeDistText(t, c)
	if _, err := c.Run(kindWordCountJob()); err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "fallback wordcount")
}

// TestWorkerKillDuringMap kills the assignee the moment its first map
// task is assigned: the dispatch dies with the worker, the lease expires,
// and the scheduler re-runs the task elsewhere — output unchanged.
func TestWorkerKillDuringMap(t *testing.T) {
	want, _ := inProcessOracle(t)

	c, m, _ := startDistributed(t, 2, obs.NewRegistry())
	c.SetFault(fault.Plan{
		Seed:            7,
		WorkerKillRate:  1.0,
		WorkerKillPhase: mapreduce.TaskMap,
		KillBudget:      1,
	})
	writeDistText(t, c)
	rep, err := c.Run(kindWordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "wordcount with map-phase kill")

	ev := countFaultEvents(m.FaultLog())
	if ev["worker-kill"] != 1 {
		t.Fatalf("fault events = %v, want exactly 1 worker-kill", ev)
	}
	if ev["worker-lost"] == 0 {
		t.Fatalf("fault events = %v, want a worker-lost after the kill", ev)
	}
	if rep.Counters[mapreduce.CounterWorkerLost] == 0 {
		t.Fatal("no dispatch was failed by worker death; the kill hit nothing in-flight")
	}
}

// TestReissueCountedExactlyOnce is the exactly-once regression: kill the
// worker holding finished map shards while a reduce is being assigned
// (death during shuffle fetch). The lost map tasks are re-executed, yet
// every job counter must match the fault-free run — the re-run's metrics
// are suppressed — and each map task must have exactly one winning span,
// with the re-runs marked as reissue spans.
func TestReissueCountedExactlyOnce(t *testing.T) {
	want, wantRep := inProcessOracle(t)

	c, m, _ := startDistributed(t, 2, obs.NewRegistry())
	c.SetFault(fault.Plan{
		Seed:             3,
		WorkerKillRate:   1.0,
		WorkerKillPhase:  mapreduce.TaskReduce,
		WorkerKillHolder: true,
		KillBudget:       1,
	})
	writeDistText(t, c)
	rep, err := c.Run(kindWordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "wordcount with holder kill")

	if rep.Counters[mapreduce.CounterReissuedMaps] == 0 {
		t.Fatal("holder death re-issued no map task; the scenario did not trigger")
	}
	ev := countFaultEvents(m.FaultLog())
	if ev["worker-kill"] != 1 || ev["reissue"] == 0 {
		t.Fatalf("fault events = %v, want 1 worker-kill and >=1 reissue", ev)
	}

	// Counters: exactly once. Everything the tasks measured must be
	// identical to the fault-free run, re-issues notwithstanding.
	for _, name := range []string{
		mapreduce.CounterMapRecordsIn, mapreduce.CounterMapRecordsOut,
		mapreduce.CounterShufflePairs, mapreduce.CounterReduceGroups,
		mapreduce.CounterOutputRecords,
	} {
		if rep.Counters[name] != wantRep.Counters[name] {
			t.Errorf("counter %s = %d with reissue, %d fault-free — the re-run double- or under-counted",
				name, rep.Counters[name], wantRep.Counters[name])
		}
	}

	// Spans: per map task exactly one winner (outcome ok); the re-runs
	// appear only as reissue spans.
	okByTask := map[int]int{}
	reissues := 0
	for _, s := range rep.Trace.Spans() {
		if s.Phase != obs.PhaseMap {
			continue
		}
		switch s.Outcome {
		case obs.OutcomeOK:
			okByTask[s.Task]++
		case obs.OutcomeReissue:
			reissues++
			if s.Attempt < 2000 {
				t.Errorf("reissue span of task %d has attempt %d, want the reissue range (2000+)", s.Task, s.Attempt)
			}
		}
	}
	if reissues == 0 {
		t.Fatal("no reissue span recorded")
	}
	for task, n := range okByTask {
		if n != 1 {
			t.Errorf("map task %d has %d winning spans, want exactly 1", task, n)
		}
	}
	if int64(reissues) != rep.Counters[mapreduce.CounterReissuedMaps] {
		t.Errorf("%d reissue spans vs counter %d", reissues, rep.Counters[mapreduce.CounterReissuedMaps])
	}
}

// TestSpillGC is the spill-leak regression: after a sequence of jobs,
// every worker's job spill directories must be garbage-collected (the
// drop is asynchronous, so the assertion polls). Replica files survive —
// only job<J>/ trees are per-job state.
func TestSpillGC(t *testing.T) {
	c, _, pool := startDistributed(t, 2, obs.NewRegistry())
	writeDistText(t, c)
	for i := 0; i < 3; i++ {
		job := kindWordCountJob()
		job.Output = fmt.Sprintf("out%d", i)
		if _, err := c.Run(job); err != nil {
			t.Fatal(err)
		}
	}
	pool.mu.Lock()
	dirs := make([]string, 0, len(pool.workers))
	for _, w := range pool.workers {
		dirs = append(dirs, w.Dir())
	}
	pool.mu.Unlock()
	waitFor(t, 2*time.Second, func() bool {
		total := 0
		for _, dir := range dirs {
			total += countSpillFiles(t, dir)
		}
		return total == 0
	})
}

// TestLocalityMetrics: with the data plane on, map input is read from
// local replicas (the locality counters prove it), dispatch prefers
// holders, and output stays byte-identical to the in-process run.
func TestLocalityMetrics(t *testing.T) {
	want, _ := inProcessOracle(t)

	reg := obs.NewRegistry()
	c, _, _ := startDistributedRepl(t, 3, reg, 2)
	writeDistText(t, c)
	if _, err := c.Run(kindWordCountJob()); err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "replicated wordcount")

	if reg.Counter(mapreduce.MetricDFSLocalReads) == 0 {
		t.Fatal("no map input block was read from a local replica")
	}
	if reg.Counter(mapreduce.MetricDispatchLocal) == 0 {
		t.Fatal("no map dispatch went to a replica holder")
	}
	local := reg.Counter(mapreduce.MetricDFSLocalBytes)
	remote := reg.Counter(mapreduce.MetricDFSRemoteBytes)
	if local+remote == 0 {
		t.Fatal("read path reported no input bytes at all")
	}
	t.Logf("locality: %d local / %d remote bytes", local, remote)
}

// TestStreamingShuffleChunks forces the shuffle through absurdly small
// chunks — every frame arrives in many pieces and most chunks split a
// frame — and requires byte-identical output: the incremental decoder
// must reassemble exactly what a whole-shard fetch would have.
func TestStreamingShuffleChunks(t *testing.T) {
	want, _ := inProcessOracle(t)

	old := mapreduce.ShuffleChunkBytes
	mapreduce.ShuffleChunkBytes = 7
	defer func() { mapreduce.ShuffleChunkBytes = old }()

	c, _, _ := startDistributed(t, 2, obs.NewRegistry())
	writeDistText(t, c)
	if _, err := c.Run(kindWordCountJob()); err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "tiny-chunk shuffle wordcount")
}

// TestTotalWorkerLossFallsBack: every worker dies mid-pool; the job must
// still complete (in process) with identical output.
func TestTotalWorkerLossFallsBack(t *testing.T) {
	want, _ := inProcessOracle(t)
	c, m, pool := startDistributed(t, 2, obs.NewRegistry())
	writeDistText(t, c)
	pool.stopAll()
	waitFor(t, time.Second, func() bool { return m.LiveWorkers() == 0 })
	if _, err := c.Run(kindWordCountJob()); err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, readOut(t, c), want, "wordcount after total worker loss")
}
