package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialhadoop/internal/dfs"
)

// sleepJob writes its input through to output, holding each map task open
// for d so concurrent tasks overlap observably.
func sleepJob(name, output string, d time.Duration, running, high *atomic.Int64) *Job {
	return &Job{
		Name:  name,
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			if running != nil {
				n := running.Add(1)
				for {
					h := high.Load()
					if n <= h || high.CompareAndSwap(h, n) {
						break
					}
				}
				defer running.Add(-1)
			}
			time.Sleep(d)
			for _, r := range split.Records() {
				ctx.Write(r)
			}
			return nil
		},
		Output: output,
	}
}

func writeInput(t *testing.T, fs *dfs.FileSystem, n int) {
	t.Helper()
	recs := make([]string, n)
	for i := range recs {
		recs[i] = fmt.Sprintf("rec-%03d", i)
	}
	if err := fs.WriteFile("in", recs); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentJobsShareSlotPool is the oversubscription regression
// test: before the shared pool, each racing RunCtx took its own
// execSlots() worth of workers, so J concurrent jobs ran J*workers map
// tasks at once. Now every task of every job acquires from one
// cluster-level pool, and the observed task concurrency must never
// exceed the cluster's worker count.
func TestConcurrentJobsShareSlotPool(t *testing.T) {
	const workers = 2
	const jobs = 4
	c := newTestCluster(t, 64, workers) // small blocks -> several map tasks per job
	writeInput(t, c.fs, 40)

	var running, high atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			job := sleepJob("shared", fmt.Sprintf("out%d", j), 2*time.Millisecond, &running, &high)
			_, errs[j] = c.RunCtx(context.Background(), job)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
	if got := high.Load(); got > workers {
		t.Fatalf("observed %d concurrent map tasks across %d jobs, cluster cap is %d: jobs are not sharing the slot pool", got, jobs, workers)
	}
	if hw, cap := c.Slots().HighWater(), c.Slots().Cap(); hw > cap {
		t.Fatalf("pool high-water %d exceeds capacity %d", hw, cap)
	}
}

// TestSlotPoolHighWaterProperty: across randomized mixes of concurrent
// jobs (varying job counts, task durations and cluster sizes), the shared
// pool's high-water mark never exceeds its capacity, and the pool is idle
// once all jobs return.
func TestSlotPoolHighWaterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		workers := 1 + rng.Intn(4)
		jobs := 2 + rng.Intn(4)
		c := newTestCluster(t, int64(32+rng.Intn(96)), workers)
		writeInput(t, c.fs, 20+rng.Intn(40))

		var wg sync.WaitGroup
		errs := make([]error, jobs)
		for j := 0; j < jobs; j++ {
			d := time.Duration(rng.Intn(3)) * time.Millisecond
			wg.Add(1)
			go func(j int, d time.Duration) {
				defer wg.Done()
				_, errs[j] = c.RunCtx(context.Background(), sleepJob("prop", fmt.Sprintf("out%d", j), d, nil, nil))
			}(j, d)
		}
		wg.Wait()
		for j, err := range errs {
			if err != nil {
				t.Fatalf("trial %d job %d: %v", trial, j, err)
			}
		}
		if hw, cap := c.Slots().HighWater(), c.Slots().Cap(); hw > cap {
			t.Fatalf("trial %d (workers=%d jobs=%d): high-water %d > cap %d", trial, workers, jobs, hw, cap)
		}
		if inUse := c.Slots().InUse(); inUse != 0 {
			t.Fatalf("trial %d: %d slots still held after all jobs returned", trial, inUse)
		}
	}
}

// gateJob blocks its (single) map task until gate closes, so tests can
// hold a run slot open deliberately.
func gateJob(output string, gate chan struct{}) *Job {
	return &Job{
		Name:  "gated",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			<-gate
			for _, r := range split.Records() {
				ctx.Write(r)
			}
			return nil
		},
		Output: output,
	}
}

// waitStats polls AdmissionStats until cond holds or the deadline passes.
func waitStats(t *testing.T, c *Cluster, cond func(inFlight, queued int) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(c.AdmissionStats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	inFlight, queued := c.AdmissionStats()
	t.Fatalf("admission never reached expected state; inFlight=%d queued=%d", inFlight, queued)
}

// TestOverloadRejectionOnlyWhenFull: a submission is rejected with
// ErrOverloaded only when the run slots AND the wait queue are both
// genuinely full, and the rejection reports exactly that occupancy.
func TestOverloadRejectionOnlyWhenFull(t *testing.T) {
	c := newTestCluster(t, 1<<20, 2) // one block -> one map task per job
	writeInput(t, c.fs, 8)
	c.SetAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 2})

	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(1)
	go func() { defer wg.Done(); _, errs[0] = c.RunCtx(context.Background(), gateJob("out0", gate)) }()
	waitStats(t, c, func(inFlight, queued int) bool { return inFlight == 1 })

	// Fill the queue. These block in enter() until the gate opens.
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RunCtx(context.Background(), gateJob(fmt.Sprintf("out%d", i), gate))
		}(i)
	}
	waitStats(t, c, func(inFlight, queued int) bool { return inFlight == 1 && queued == 2 })

	// Slots and queue both full: the next submission must be rejected,
	// and the typed error must prove both were full at decision time.
	_, err := c.RunCtx(context.Background(), gateJob("outX", gate))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full cluster accepted a job: err=%v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("rejection is not an *OverloadError: %v", err)
	}
	if oe.InFlight != oe.MaxInFlight || oe.Queued != oe.QueueDepth {
		t.Fatalf("rejection with spare capacity: %+v", oe)
	}

	// Free capacity: the same submission is now admitted, proving
	// rejections happen only at genuine saturation.
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted job %d failed: %v", i, err)
		}
	}
	if _, err := c.RunCtx(context.Background(), gateJob("outY", gate)); err != nil {
		t.Fatalf("job rejected after capacity freed: %v", err)
	}
}

// TestDrainCompletesAdmittedJobs: Drain lets every admitted job — running
// and queued — finish, refuses new work with ErrDraining, and returns
// only at quiescence.
func TestDrainCompletesAdmittedJobs(t *testing.T) {
	c := newTestCluster(t, 1<<20, 2)
	writeInput(t, c.fs, 8)
	c.SetAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 8})

	gate := make(chan struct{})
	const jobs = 4
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RunCtx(context.Background(), gateJob(fmt.Sprintf("out%d", i), gate))
		}(i)
	}
	waitStats(t, c, func(inFlight, queued int) bool { return inFlight == 1 && queued == jobs-1 })

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- c.Drain(ctx)
	}()
	// Drain must not complete while jobs are still admitted.
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned (%v) with jobs still in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	// New submissions are refused once draining.
	if _, err := c.RunCtx(context.Background(), gateJob("outX", gate)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission during drain: err=%v, want ErrDraining", err)
	}

	close(gate)
	wg.Wait()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted job %d failed during drain: %v", i, err)
		}
	}
	// Every admitted job's output must exist and be complete.
	for i := 0; i < jobs; i++ {
		recs, err := c.fs.ReadAll(fmt.Sprintf("out%d", i))
		if err != nil {
			t.Fatalf("out%d: %v", i, err)
		}
		if len(recs) != 8 {
			t.Fatalf("out%d has %d records, want 8", i, len(recs))
		}
	}
}

// TestQueuedJobCancellation: a queued job whose context is cancelled
// leaves the queue cleanly and does not leak occupancy.
func TestQueuedJobCancellation(t *testing.T) {
	c := newTestCluster(t, 1<<20, 2)
	writeInput(t, c.fs, 4)
	c.SetAdmission(AdmissionConfig{MaxInFlight: 1, QueueDepth: 4})

	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr error
	go func() { defer wg.Done(); _, firstErr = c.RunCtx(context.Background(), gateJob("out0", gate)) }()
	waitStats(t, c, func(inFlight, queued int) bool { return inFlight == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := c.RunCtx(ctx, gateJob("out1", gate))
		queued <- err
	}()
	waitStats(t, c, func(inFlight, q int) bool { return q == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued job: err=%v", err)
	}
	waitStats(t, c, func(inFlight, q int) bool { return q == 0 })

	close(gate)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("running job: %v", firstErr)
	}
	if inFlight, q := c.AdmissionStats(); inFlight != 0 || q != 0 {
		t.Fatalf("occupancy leaked: inFlight=%d queued=%d", inFlight, q)
	}
}
