package mapreduce

import (
	"fmt"
	"net/rpc"
	"sort"
	"sync"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/obs"
)

// Job kinds. Map/reduce functions are Go closures and cannot ship over
// RPC, so a job that may run on remote workers carries a Kind name; both
// sides rebuild the job's functions from the kind's registered builder
// and the job's Conf (which, like Hadoop's job configuration, is the only
// state broadcast to tasks). Jobs without a Kind — or with one no builder
// was registered for — always run in process.

// KindFuncs is the set of task-side functions a kind builder produces.
// Filter and Commit hooks are master-only and never rebuilt remotely.
type KindFuncs struct {
	Map     MapFunc
	Combine ReduceFunc
	Reduce  ReduceFunc
}

// KindBuilder rebuilds a job kind's functions from its configuration.
type KindBuilder func(conf map[string]string) (KindFuncs, error)

var (
	kindsMu sync.RWMutex
	kinds   = map[string]KindBuilder{}
)

// RegisterKind registers a job kind builder, typically from an init
// function of the operations layer. Registering the same name twice
// panics: two builders for one kind would silently diverge master and
// worker execution.
func RegisterKind(name string, b KindBuilder) {
	kindsMu.Lock()
	defer kindsMu.Unlock()
	if _, ok := kinds[name]; ok {
		panic(fmt.Sprintf("mapreduce: job kind %q registered twice", name))
	}
	kinds[name] = b
}

// HasKind reports whether a builder is registered for the kind.
func HasKind(name string) bool {
	kindsMu.RLock()
	defer kindsMu.RUnlock()
	_, ok := kinds[name]
	return ok
}

// BuildKind rebuilds a kind's functions from conf.
func BuildKind(name string, conf map[string]string) (KindFuncs, error) {
	kindsMu.RLock()
	b, ok := kinds[name]
	kindsMu.RUnlock()
	if !ok {
		return KindFuncs{}, fmt.Errorf("mapreduce: unknown job kind %q", name)
	}
	return b(conf)
}

// remoteJob builds the minimal runningJob a worker-side attempt executes
// under: the kind's functions, the shipped conf, and a throwaway registry
// (worker-side attempts report their metrics through the TaskMetrics
// buffer they return, never through a registry).
func remoteJob(kf KindFuncs, name string, conf map[string]string, nshards int) *runningJob {
	return &runningJob{
		job: &Job{
			Name:    name,
			Map:     kf.Map,
			Combine: kf.Combine,
			Reduce:  kf.Reduce,
			Conf:    conf,
		},
		reg:     obs.NewRegistry(),
		trace:   obs.NewTrace(name),
		nshards: nshards,
	}
}

// ExecMapAttempt runs one map attempt of a registered job kind against a
// reconstructed split — the worker-side map execution path. It is the
// exact code path of an in-process attempt (checksum verification, map,
// combiner, per-shard bucketing), so the returned shards and direct
// output are byte-identical to what the master would have produced.
func ExecMapAttempt(kf KindFuncs, jobName string, conf map[string]string, split *Split, nshards, attempt int) (shards [][]Pair, out []string, tm *obs.TaskMetrics, err error) {
	return runMapAttempt(remoteJob(kf, jobName, conf, nshards), split, attempt)
}

// ExecReduceAttempt runs one reduce attempt of a registered job kind over
// the fetched-and-grouped shard pairs — the worker-side reduce execution
// path, sharing the in-process attempt body (sorted key order, group
// counter, partition-records observation).
func ExecReduceAttempt(kf KindFuncs, jobName string, conf map[string]string, groups map[string][]string, attempt int) (out []string, valuesIn int64, tm *obs.TaskMetrics, err error) {
	return runReduceAttempt(remoteJob(kf, jobName, conf, 1), groups, attempt)
}

// GroupShards merges fetched map shards into reduce groups, in map-task
// order — the same order the in-process shuffle concatenates per-reducer
// runs in, so grouped value order (and therefore reduce output) is
// identical on both paths. taskShards must be indexed by map task.
func GroupShards(taskShards [][]Pair) map[string][]string {
	g := make(map[string][]string)
	for _, shard := range taskShards {
		MergePairs(g, shard)
	}
	return g
}

// MergePairs folds one run of pairs into reduce groups. Streaming
// reducers call it per decoded batch, so merge work overlaps the shard
// transfer; feeding batches in stream order is equivalent to merging the
// whole shard at once.
func MergePairs(g map[string][]string, pairs []Pair) {
	for _, p := range pairs {
		g[p.Key] = append(g[p.Key], p.Value)
	}
}

// runReduceAttempt executes one reduce attempt over grouped values: keys
// in sorted order, one CounterReduceGroups tick per key, and the
// partition-records observation — shared verbatim by the in-process
// scheduler and remote workers.
func runReduceAttempt(rj *runningJob, groups map[string][]string, attempt int) (out []string, valuesIn int64, tm *obs.TaskMetrics, err error) {
	keys := make([]string, 0, len(groups))
	for k, vs := range groups {
		keys = append(keys, k)
		valuesIn += int64(len(vs))
	}
	sort.Strings(keys)
	tm = obs.NewTaskMetrics()
	rctx := &TaskContext{job: rj, metrics: tm, attempt: attempt}
	for _, k := range keys {
		tm.Inc(CounterReduceGroups, 1)
		if err := rj.job.Reduce(rctx, k, groups[k]); err != nil {
			return nil, 0, nil, err
		}
	}
	tm.Observe(HistReducePartRecords, float64(valuesIn))
	return rctx.out, valuesIn, tm, nil
}

// ShardTotals sums a map attempt's shuffle output: pair count and encoded
// key+value bytes, the numbers behind CounterShufflePairs/Bytes. Exported
// for the worker package, which reports them in TaskDone.
func ShardTotals(shards [][]Pair) (pairs, bytes int64) {
	for _, shard := range shards {
		pairs += int64(len(shard))
		for _, p := range shard {
			bytes += int64(len(p.Key) + len(p.Value))
		}
	}
	return pairs, bytes
}

// StreamShardFrom streams one map shard from a shard server (worker or
// master) at addr in ShuffleChunkBytes chunks, invoking sink with each
// decoded batch of pairs as its frames complete — so a reducer merges
// while the rest of the shard is still in flight. Connection failures,
// torn frames, truncation (no end-of-stream marker) and gob damage all
// surface as errors the caller treats as a lost shard.
func StreamShardFrom(addr string, jobID int64, task, attempt, reduce int, sink func([]Pair) error) error {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer client.Close()
	var st ShardStream
	offset := int64(0)
	for {
		var reply FetchChunkReply
		args := FetchChunkArgs{
			JobID: jobID, Task: task, Attempt: attempt, Reduce: reduce,
			Offset: offset, MaxBytes: ShuffleChunkBytes,
		}
		if err := client.Call(ShardService+".FetchChunk", args, &reply); err != nil {
			return err
		}
		pairs, err := st.Feed(reply.Data)
		if err != nil {
			return err
		}
		if len(pairs) > 0 {
			if err := sink(pairs); err != nil {
				return err
			}
		}
		offset += int64(len(reply.Data))
		if reply.EOF {
			break
		}
		if len(reply.Data) == 0 {
			return &dfs.TornShardError{Reason: "empty non-final chunk"}
		}
	}
	if !st.Done() {
		return &dfs.TornShardError{Reason: "spill stream ends before its end-of-stream frame"}
	}
	return nil
}

// FetchShardFrom streams and collects one whole map shard — the
// non-incremental convenience used by the master's fallback reduce path.
func FetchShardFrom(addr string, jobID int64, task, attempt, reduce int) ([]Pair, error) {
	var all []Pair
	err := StreamShardFrom(addr, jobID, task, attempt, reduce, func(batch []Pair) error {
		all = append(all, batch...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return all, nil
}
