package mapreduce

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/obs"
)

// remoteRun is the per-job state of remote execution: the job's splits
// (served to workers via ReadSplit), the shard-location table naming the
// worker holding each map task's winning spill, the master-held shard
// store for attempts that ran in process (fallback and re-issues), and
// the shard-loss recovery path — a singleflight re-run of a map task
// whose shards died with their worker, published under the reissue
// attempt range with its metrics suppressed so the task still counts
// exactly once.
type remoteRun struct {
	m       *Master
	c       *Cluster
	rj      *runningJob
	job     *Job
	id      int64
	root    int64
	splits  []*Split
	nshards int

	mu           sync.Mutex
	locs         []shardLoc
	masterShards map[shardKey][]byte
	reissue      map[int]*reissueCall
	reissueNext  int
	closed       bool
}

// shardLoc names the holder of one map task's winning shards.
type shardLoc struct {
	addr    string
	attempt int
	worker  int64 // 0 when master-held
}

type shardKey struct {
	task, attempt, reduce int
}

// reissueCall is the singleflight slot for one task's shard recovery.
type reissueCall struct {
	done chan struct{}
	err  error
}

// remoteMapResult is one successful remote (or fallback-local) map
// attempt, before the win gate: publish records the shard location and
// runs only for the winning attempt.
type remoteMapResult struct {
	out       []string
	pairs     int64
	bytes     int64
	recordsIn int64
	tm        *obs.TaskMetrics
	publish   func()
}

// remoteReduceResult is one successful remote reduce attempt.
type remoteReduceResult struct {
	out       []string
	recordsIn int64
	tm        *obs.TaskMetrics
}

// startRemote decides whether the job runs on the worker pool and, if so,
// registers a run with the master. It returns nil — in-process execution
// — when no master is running, no worker is live, or the job carries no
// registered kind (its functions cannot be rebuilt remotely).
func (c *Cluster) startRemote(rj *runningJob, job *Job, splits []*Split, nshards int, root int64) *remoteRun {
	m := c.Master()
	if m == nil || m.LiveWorkers() == 0 {
		return nil
	}
	if job.Kind == "" || !HasKind(job.Kind) {
		return nil
	}
	r := &remoteRun{
		m: m, c: c, rj: rj, job: job, root: root,
		splits: splits, nshards: nshards,
		locs:         make([]shardLoc, len(splits)),
		masterShards: make(map[shardKey][]byte),
		reissue:      make(map[int]*reissueCall),
	}
	// Replicate the job's input blocks onto the pool before any map
	// dispatch, so locality-aware assignment has holders to match.
	m.plane.ensureReplicated(splits)
	m.registerRun(r)
	return r
}

// close detaches the run from the master; outstanding dispatches fail so
// nothing blocks on a job that already ended, and workers are told to
// drop the job's spill files (best-effort, in the background — a worker
// that misses the drop only leaks until its own teardown).
func (r *remoteRun) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.m.unregisterRun(r)
	addrs := make(map[string]bool)
	r.m.mu.Lock()
	for _, ws := range r.m.workers {
		if ws.live {
			addrs[ws.addr] = true
		}
	}
	r.m.mu.Unlock()
	for addr := range addrs {
		go func(addr string) {
			client, err := rpc.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer client.Close()
			var reply DropJobReply
			_ = client.Call(ShardService+".DropJob", DropJobArgs{JobID: r.id}, &reply)
		}(addr)
	}
}

func (r *remoteRun) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// setLoc records the winning attempt's shard holder for a map task.
func (r *remoteRun) setLoc(task int, loc shardLoc) {
	r.mu.Lock()
	r.locs[task] = loc
	r.mu.Unlock()
}

// storeMasterShards keeps an in-process attempt's sealed shard frames so
// reducers (remote or local) can fetch them from the master.
func (r *remoteRun) storeMasterShards(task, attempt int, frames [][]byte) {
	r.mu.Lock()
	for ri, frame := range frames {
		r.masterShards[shardKey{task, attempt, ri}] = frame
	}
	r.mu.Unlock()
}

// masterShard serves one master-held frame to Shards.Fetch.
func (r *remoteRun) masterShard(task, attempt, reduce int) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	frame, ok := r.masterShards[shardKey{task, attempt, reduce}]
	return frame, ok
}

// sources snapshots the shard-location table in map-task order — the
// fetch list shipped with every reduce dispatch. Re-issued shards show up
// here automatically on the reduce retry.
func (r *remoteRun) sources() []ShardSource {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardSource, len(r.locs))
	for i, loc := range r.locs {
		out[i] = ShardSource{Task: i, Attempt: loc.attempt, Addr: loc.addr}
	}
	return out
}

// mapAttempt executes one map attempt remotely — or in process when no
// worker is live (total worker loss mid-job; the shards are then held by
// the master). The returned publish callback is deferred to the win gate.
func (r *remoteRun) mapAttempt(split *Split, task, attempt int) (remoteMapResult, error) {
	if r.m.LiveWorkers() == 0 {
		shards, out, tm, err := runMapAttempt(r.rj, split, attempt)
		if err != nil {
			return remoteMapResult{}, err
		}
		pairs, bytes := ShardTotals(shards)
		frames := make([][]byte, len(shards))
		for ri, shard := range shards {
			frame, err := EncodeShard(shard)
			if err != nil {
				return remoteMapResult{}, err
			}
			frames[ri] = frame
		}
		return remoteMapResult{
			out: out, pairs: pairs, bytes: bytes,
			recordsIn: int64(split.NumRecords()), tm: tm,
			publish: func() {
				r.storeMasterShards(task, attempt, frames)
				r.setLoc(task, shardLoc{addr: r.m.Addr(), attempt: attempt})
			},
		}, nil
	}
	d := &dispatch{
		jobID: r.id, phase: TaskMap, task: task, attempt: attempt,
		jobKind: r.job.Kind, conf: r.job.Conf, nshards: r.nshards,
		resultCh: make(chan dispatchResult, 1),
	}
	if p := r.m.plane; p != nil {
		d.holders = p.holdersFor(split)
		d.meta = &WireSplitMeta{
			Partition: split.Partition, MBR: split.MBR,
			ContentMBR: split.ContentMBR, Tag: split.Tag,
			Blocks: p.blockRefs(split),
		}
	}
	if err := r.m.submit(d); err != nil {
		return remoteMapResult{}, err
	}
	res := <-d.resultCh
	if res.err != nil {
		if res.workerLost {
			r.rj.reg.Inc(CounterWorkerLost, 1)
		}
		return remoteMapResult{}, res.err
	}
	return remoteMapResult{
		out: res.out, pairs: res.pairs, bytes: res.bytes,
		recordsIn: res.recordsIn, tm: obs.ImportTaskMetrics(res.metrics),
		publish: func() {
			r.setLoc(task, shardLoc{addr: res.workerAddr, attempt: attempt, worker: res.workerID})
		},
	}, nil
}

// reduceAttempt executes one reduce attempt remotely — or in process when
// no worker is live, fetching worker-held shards itself. A fetch failure
// (dead holder, torn spill) triggers shard recovery and fails the attempt
// transiently; the scheduler's retry then reads the re-issued locations.
func (r *remoteRun) reduceAttempt(ri, attempt int) (remoteReduceResult, error) {
	sources := r.sources()
	if r.m.LiveWorkers() == 0 {
		taskShards := make([][]Pair, len(sources))
		var lost []int
		for i, src := range sources {
			pairs, err := r.fetchShard(src, ri)
			if err != nil {
				lost = append(lost, src.Task)
				continue
			}
			taskShards[i] = pairs
		}
		if len(lost) > 0 {
			r.recoverMaps(lost)
			return remoteReduceResult{}, fault.Transientf("mapreduce: reduce %d lost shards of %d map task(s)", ri, len(lost))
		}
		out, valuesIn, tm, err := runReduceAttempt(r.rj, GroupShards(taskShards), attempt)
		if err != nil {
			return remoteReduceResult{}, err
		}
		return remoteReduceResult{out: out, recordsIn: valuesIn, tm: tm}, nil
	}
	d := &dispatch{
		jobID: r.id, phase: TaskReduce, task: ri, attempt: attempt,
		jobKind: r.job.Kind, conf: r.job.Conf, nshards: r.nshards,
		sources:  sources,
		resultCh: make(chan dispatchResult, 1),
	}
	if err := r.m.submit(d); err != nil {
		return remoteReduceResult{}, err
	}
	res := <-d.resultCh
	if res.err != nil {
		if res.workerLost {
			r.rj.reg.Inc(CounterWorkerLost, 1)
		}
		if len(res.lostMaps) > 0 {
			r.recoverMaps(res.lostMaps)
		}
		return remoteReduceResult{}, res.err
	}
	return remoteReduceResult{out: res.out, recordsIn: res.recordsIn, tm: obs.ImportTaskMetrics(res.metrics)}, nil
}

// fetchShard reads one map shard for the master's own (fallback) reduce:
// master-held frames come straight from the store, worker-held ones over
// Shards.Fetch.
func (r *remoteRun) fetchShard(src ShardSource, reduce int) ([]Pair, error) {
	if src.Addr == "" {
		return nil, fmt.Errorf("mapreduce: map task %d has no shard location", src.Task)
	}
	if src.Addr == r.m.Addr() {
		frame, ok := r.masterShard(src.Task, src.Attempt, reduce)
		if !ok {
			return nil, fmt.Errorf("mapreduce: master holds no shard m%d.a%d.r%d", src.Task, src.Attempt, reduce)
		}
		return DecodeShard(frame)
	}
	return FetchShardFrom(src.Addr, r.id, src.Task, src.Attempt, reduce)
}

// onWorkerLost re-runs the completed map tasks whose winning shards lived
// on the dead worker. Map-only jobs skip it: their direct output is
// already on the master and their shards are never fetched.
func (r *remoteRun) onWorkerLost(workerID int64) {
	if r.job.Reduce == nil || r.isClosed() {
		return
	}
	r.mu.Lock()
	var tasks []int
	for t, loc := range r.locs {
		if loc.worker == workerID && loc.addr != "" {
			tasks = append(tasks, t)
		}
	}
	r.mu.Unlock()
	if len(tasks) > 0 {
		r.recoverMaps(tasks)
	}
}

// recoverMaps re-runs the given map tasks, one singleflight per task:
// the proactive path (lease expiry) and the lazy path (reduce fetch
// failure) coalesce onto one re-execution.
func (r *remoteRun) recoverMaps(tasks []int) {
	var wg sync.WaitGroup
	for _, t := range tasks {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.ensureShards(t)
		}()
	}
	wg.Wait()
}

// ensureShards re-runs one map task under singleflight.
func (r *remoteRun) ensureShards(task int) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	if call, ok := r.reissue[task]; ok {
		r.mu.Unlock()
		<-call.done
		return call.err
	}
	call := &reissueCall{done: make(chan struct{})}
	r.reissue[task] = call
	r.mu.Unlock()

	call.err = r.reissueMap(task)
	close(call.done)

	r.mu.Lock()
	delete(r.reissue, task)
	r.mu.Unlock()
	return call.err
}

// reissueMap re-executes one already-won map task because its shards were
// lost. The re-run publishes new shards and a span with OutcomeReissue,
// but its metrics buffer is dropped: the task's counters were merged when
// its original attempt won, and merging the re-run would double-count it.
func (r *remoteRun) reissueMap(task int) error {
	split := r.splits[task]
	pol := r.c.RetryPolicy()
	seed := int64(0)
	if in := r.c.Injector(); in != nil {
		seed = in.Plan().Seed
	}
	var lastErr error
	for try := 0; ; try++ {
		if r.isClosed() {
			return fault.Transientf("mapreduce: run ended during shard recovery")
		}
		r.mu.Lock()
		r.reissueNext++
		attempt := reissueAttempt + r.reissueNext
		r.mu.Unlock()
		span := r.rj.trace.Start(fmt.Sprintf("map-%d", task), obs.PhaseMap, r.root, task)
		span.Partition = split.Partition
		span.Attempt = attempt
		res, err := r.mapAttempt(split, task, attempt)
		if err == nil {
			res.publish()
			span.RecordsIn = res.recordsIn
			span.RecordsOut = res.pairs + int64(len(res.out))
			span.Bytes = res.bytes
			span.Finish(obs.OutcomeReissue)
			r.rj.reg.Inc(CounterReissuedMaps, 1)
			r.m.flog.Append(fault.Event{Phase: TaskMap, Task: task, Attempt: attempt, Kind: "reissue"})
			return nil
		}
		span.Finish(obs.OutcomeFailed)
		lastErr = err
		if !pol.ShouldRetry(err, try) {
			return lastErr
		}
		if d := pol.Backoff(seed, TaskMap, task, attempt); d > 0 {
			time.Sleep(d)
		}
	}
}
