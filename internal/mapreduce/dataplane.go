package mapreduce

import (
	"net/rpc"
	"sort"
	"sync"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
)

// The master-side data plane: which worker holds a sealed replica of
// which DFS block. When a job starts on the worker pool, every block of
// its splits is pushed (once — block ids are monotone and blocks are
// immutable once sealed) to Replication workers chosen by rendezvous
// placement, spatial-partition groups co-locating. Map dispatches then
// carry the holder set, the dispatch queue prefers holders, and workers
// read input locally or peer-to-peer; the master serves a block itself
// only as the last fallback. When a worker's lease expires, the blocks
// it held are re-replicated onto the survivors so the replica factor
// recovers without touching the job path.

// Data-plane metric names, written to the master's system registry —
// never to job registries, so remote and in-process runs keep identical
// job counter sets (the byte-identity contract).
const (
	// MetricDFSLocalReads / MetricDFSLocalBytes count map-input blocks
	// (and their record bytes) served from the reading worker's own
	// replica store; the Remote pair counts peer and master reads,
	// including whole-split fallbacks. Exported as
	// shadoop_dfs_local_reads_total etc.
	MetricDFSLocalReads  = "dfs.local.reads"
	MetricDFSLocalBytes  = "dfs.local.read.bytes"
	MetricDFSRemoteReads = "dfs.remote.reads"
	MetricDFSRemoteBytes = "dfs.remote.read.bytes"
	// MetricMasterEgress totals data bytes the master itself shipped:
	// split records, block frames, shard chunks, replica pushes. The
	// number the data plane exists to shrink.
	MetricMasterEgress = "dfs.master.egress.bytes"
	// MetricRereplications counts replicas re-pushed after worker loss.
	MetricRereplications = "dfs.rereplications"
	// MetricTasksDispatched counts task assignments handed to workers;
	// MetricDispatchLocal/Nonlocal split map assignments by whether the
	// assignee held a replica of its split.
	MetricTasksDispatched  = "mr.tasks.dispatched"
	MetricDispatchLocal    = "mr.dispatch.local"
	MetricDispatchNonlocal = "mr.dispatch.nonlocal"
)

// planeBlock is the data plane's record of one replicated block.
type planeBlock struct {
	partition string
	frame     []byte // sealed records, what PushBlock ships and ReadBlock serves
	bytes     int64  // decoded record bytes, for egress accounting
	holders   []int64
}

// dataPlane tracks replica placement for one master.
type dataPlane struct {
	m      *Master
	policy dfs.ReplicaPolicy

	mu     sync.Mutex
	blocks map[dfs.BlockID]*planeBlock
}

func newDataPlane(m *Master, replication int, seed int64) *dataPlane {
	return &dataPlane{
		m:      m,
		policy: dfs.ReplicaPolicy{Seed: seed, Factor: replication},
		blocks: make(map[dfs.BlockID]*planeBlock),
	}
}

// ensureReplicated pushes replicas of every not-yet-placed block of the
// given splits, called once per job at run registration. Push failures
// are tolerated: a holder that never got its replica simply isn't
// recorded, and readers fall through to the master.
func (p *dataPlane) ensureReplicated(splits []*Split) {
	if p == nil {
		return
	}
	for _, s := range splits {
		for _, b := range s.Blocks {
			p.ensureBlock(b)
		}
		for _, b := range s.Extra {
			p.ensureBlock(b)
		}
	}
}

// ensureBlock places and pushes one block if the plane has never seen it.
func (p *dataPlane) ensureBlock(b *dfs.Block) {
	p.mu.Lock()
	if _, ok := p.blocks[b.ID]; ok {
		p.mu.Unlock()
		return
	}
	pb := &planeBlock{partition: b.Partition, bytes: b.Bytes}
	p.blocks[b.ID] = pb
	p.mu.Unlock()

	frame, err := EncodeBlockFrame(b.Records())
	if err != nil {
		return // unencodable records never happen; leave the block master-served
	}
	group := dfs.PlacementGroup(b.Partition, b.ID)
	targets := p.policy.Place(group, p.m.liveWorkerIDs())
	p.mu.Lock()
	pb.frame = frame
	p.mu.Unlock()
	for _, id := range targets {
		if p.pushTo(id, b.ID, b.Partition, frame) {
			p.mu.Lock()
			pb.holders = append(pb.holders, id)
			p.mu.Unlock()
			p.m.flog.Append(fault.Event{Phase: "dfs", Task: int(b.ID), Kind: "replicate", Worker: id})
		}
	}
}

// pushTo installs one replica on one worker, best-effort.
func (p *dataPlane) pushTo(workerID int64, id dfs.BlockID, partition string, frame []byte) bool {
	addr := p.m.workerAddr(workerID)
	if addr == "" {
		return false
	}
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return false
	}
	defer client.Close()
	args := PushBlockArgs{ID: int64(id), Partition: partition, Frame: frame}
	var reply PushBlockReply
	if err := client.Call(ShardService+".PushBlock", args, &reply); err != nil {
		return false
	}
	if r := p.m.opts.Metrics; r != nil {
		r.Inc(MetricMasterEgress, int64(len(frame)))
	}
	return true
}

// holdersFor returns the ids of every worker holding a replica of some
// block of the split — the dispatch queue's locality set.
func (p *dataPlane) holdersFor(s *Split) []int64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	set := map[int64]bool{}
	collect := func(b *dfs.Block) {
		if pb := p.blocks[b.ID]; pb != nil {
			for _, id := range pb.holders {
				set[id] = true
			}
		}
	}
	for _, b := range s.Blocks {
		collect(b)
	}
	for _, b := range s.Extra {
		collect(b)
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]int64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockRefs builds the per-block replica directory shipped in a map
// assignment, resolving holder ids to live shard-serving addresses.
func (p *dataPlane) blockRefs(s *Split) []WireBlockRef {
	refs := make([]WireBlockRef, 0, len(s.Blocks)+len(s.Extra))
	add := func(b *dfs.Block, extra bool) {
		ref := WireBlockRef{ID: int64(b.ID), Partition: b.Partition, Extra: extra}
		p.mu.Lock()
		pb := p.blocks[b.ID]
		var holders []int64
		if pb != nil {
			holders = append(holders, pb.holders...)
		}
		p.mu.Unlock()
		for _, id := range holders {
			if addr := p.m.workerAddr(id); addr != "" {
				ref.Holders = append(ref.Holders, addr)
			}
		}
		refs = append(refs, ref)
	}
	for _, b := range s.Blocks {
		add(b, false)
	}
	for _, b := range s.Extra {
		add(b, true)
	}
	return refs
}

// readFrame serves one replicated block's sealed frame from the master —
// the fallback source for a worker that reached no replica.
func (p *dataPlane) readFrame(id dfs.BlockID) ([]byte, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pb := p.blocks[id]
	if pb == nil || pb.frame == nil {
		return nil, false
	}
	return pb.frame, true
}

// onWorkerLost re-replicates every block the dead worker held onto
// surviving workers, restoring the replica factor. Runs on the lease
// monitor's path, after the worker was already marked dead, so the
// placement excludes it naturally.
func (p *dataPlane) onWorkerLost(workerID int64) {
	if p == nil {
		return
	}
	type repush struct {
		id        dfs.BlockID
		pb        *planeBlock
		partition string
		frame     []byte
	}
	var lost []repush
	p.mu.Lock()
	for id, pb := range p.blocks {
		for i, h := range pb.holders {
			if h == workerID {
				pb.holders = append(pb.holders[:i], pb.holders[i+1:]...)
				if pb.frame != nil {
					lost = append(lost, repush{id: id, pb: pb, partition: pb.partition, frame: pb.frame})
				}
				break
			}
		}
	}
	p.mu.Unlock()

	live := p.m.liveWorkerIDs()
	for _, r := range lost {
		p.mu.Lock()
		missing := p.policy.Factor - len(r.pb.holders)
		current := map[int64]bool{}
		for _, h := range r.pb.holders {
			current[h] = true
		}
		p.mu.Unlock()
		if missing <= 0 {
			continue
		}
		// Rank the survivors for this block's group; the first non-holders
		// are the re-replication targets, so placement stays deterministic.
		ranked := p.policy.Place(dfs.PlacementGroup(r.partition, r.id), live)
		for _, id := range ranked {
			if missing <= 0 {
				break
			}
			if current[id] {
				continue
			}
			if p.pushTo(id, r.id, r.partition, r.frame) {
				p.mu.Lock()
				r.pb.holders = append(r.pb.holders, id)
				p.mu.Unlock()
				missing--
				if reg := p.m.opts.Metrics; reg != nil {
					reg.Inc(MetricRereplications, 1)
				}
				p.m.flog.Append(fault.Event{Phase: "dfs", Task: int(r.id), Kind: "re-replicate", Worker: id})
			}
		}
	}
}
