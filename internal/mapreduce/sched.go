package mapreduce

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/obs"
)

// This file is the task scheduler shared by the map and reduce phases:
// every task attempt runs under the cluster's fault.RetryPolicy (attempt
// budget, capped exponential backoff with seeded jitter, optional
// per-attempt deadline), failures are classified transient/permanent via
// fault.IsTransient, and a speculation monitor launches duplicate
// attempts against stragglers with first-finisher-wins semantics.
//
// Determinism contract: an attempt's result depends only on its task
// (map functions are pure in their split, reduce functions in their key
// group), so whichever attempt wins — primary, retry or speculative
// duplicate — publishes identical output, and a chaos run's output is
// byte-identical to a fault-free run. The win gate publishes exactly one
// attempt's result and metrics; every other attempt finishes as a
// suppressed duplicate.

// specAttempt is the attempt coordinate of speculative duplicates: a
// range disjoint from primary retries, so the injector draws an
// independent fate for the duplicate.
const specAttempt = 1000

// attemptOut is the outcome of one successful task attempt. The
// scheduler copies the span fields itself and invokes apply for the
// winning attempt only, so abandoned (deadline-exceeded) and duplicate
// attempts never touch shared state.
type attemptOut struct {
	recordsIn  int64
	recordsOut int64
	bytes      int64
	// apply publishes the attempt's result and merges its metrics; it is
	// called at most once per task, with the winning attempt's duration.
	apply func(dur time.Duration)
}

// attemptFn executes one attempt of a task. It must be safe to run
// concurrently with another attempt of the same task (speculation,
// abandoned deadline attempts).
type attemptFn func(attempt int) (attemptOut, error)

// schedTask is the scheduler's per-task state.
type schedTask struct {
	idx       int
	name      string
	partition string
	// block is a representative data block for injected corrupt-read
	// errors (nil for reduce tasks).
	block *dfs.Block
	run   attemptFn

	mu           sync.Mutex
	running      bool
	attemptStart time.Time
	specLaunched bool
	// specDone is closed when the speculative duplicate finishes (set
	// only after specLaunched).
	specDone chan struct{}
	done     bool
	doneCh   chan struct{}
}

// markWon closes the win gate; it reports true for exactly one attempt
// of the task.
func (ts *schedTask) markWon() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.done {
		return false
	}
	ts.done = true
	close(ts.doneCh)
	return true
}

// isDone reports whether some attempt already won.
func (ts *schedTask) isDone() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.done
}

// sched coordinates the tasks of one phase.
type sched struct {
	c            *Cluster
	rj           *runningJob
	phase        string // obs.PhaseMap or obs.PhaseReduce
	root         int64
	pol          fault.RetryPolicy
	in           *fault.Injector
	retryCounter string

	mu        sync.Mutex
	durations []time.Duration // completed task durations, for the median
	tasks     []*schedTask

	stop    chan struct{}
	helpers sync.WaitGroup // monitor + speculative attempts
}

// newSched creates a scheduler for one phase. retryCounter is the
// per-phase retry counter incremented alongside CounterTaskRetries.
func newSched(c *Cluster, rj *runningJob, phase string, root int64, pol fault.RetryPolicy, retryCounter string) *sched {
	return &sched{
		c: c, rj: rj, phase: phase, root: root, pol: pol, retryCounter: retryCounter,
		in:   c.Injector(),
		stop: make(chan struct{}),
	}
}

// addTask registers a task; call before start.
func (s *sched) addTask(idx int, name, partition string, block *dfs.Block, run attemptFn) {
	s.tasks = append(s.tasks, &schedTask{
		idx: idx, name: name, partition: partition, block: block, run: run,
		doneCh: make(chan struct{}),
	})
}

// seed returns the chaos seed driving backoff jitter (0 without a plan).
func (s *sched) seed() int64 {
	if s.in != nil {
		return s.in.Plan().Seed
	}
	return 0
}

// start launches the speculation monitor (when enabled).
func (s *sched) start(ctx context.Context) {
	if !s.pol.Speculation {
		return
	}
	tick := s.pol.SpeculativeMin / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	s.helpers.Add(1)
	go func() {
		defer s.helpers.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				s.scanStragglers(ctx)
			}
		}
	}()
}

// close stops the monitor and waits for every in-flight speculative
// attempt, so callers may read published results afterwards.
func (s *sched) close() {
	close(s.stop)
	s.helpers.Wait()
}

// runAll executes every registered task under the cluster's shared slot
// pool, with the speculation monitor running alongside, and returns the
// per-task errors (indexed by task idx). It blocks until every attempt —
// including in-flight speculative duplicates — has finished, so callers
// may read published results immediately after. Because the pool is
// cluster-wide, tasks of concurrently running jobs contend for the same
// slots instead of each job claiming a full complement.
func (s *sched) runAll(ctx context.Context) []error {
	s.start(ctx)
	errs := make([]error, len(s.tasks))
	var wg sync.WaitGroup
	for _, ts := range s.tasks {
		wg.Add(1)
		go func(ts *schedTask) {
			defer wg.Done()
			// slot.wait shows, per task, how long the attempt sat behind the
			// cluster-wide slot pool before executing (no-op without a
			// request trace on the context).
			_, ss := obs.StartSpan(ctx, "slot.wait")
			ss.SetAttr("task", ts.name)
			err := s.c.slots.Acquire(ctx)
			ss.End()
			if err != nil {
				errs[ts.idx] = err
				return
			}
			defer s.c.slots.Release()
			errs[ts.idx] = s.runTask(ctx, ts)
		}(ts)
	}
	wg.Wait()
	s.close()
	return errs
}

// median returns the median duration of the phase's completed tasks (0
// when none completed yet).
func (s *sched) median() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.durations)
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, s.durations)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[n/2]
}

func (s *sched) recordDuration(d time.Duration) {
	s.mu.Lock()
	s.durations = append(s.durations, d)
	s.mu.Unlock()
}

// scanStragglers launches one speculative duplicate for every running
// task that exceeds the straggler threshold (relative to the median of
// completed tasks; speculation needs at least one completion to have a
// baseline).
func (s *sched) scanStragglers(ctx context.Context) {
	med := s.median()
	if med == 0 {
		return
	}
	threshold := s.pol.StragglerThreshold(med)
	now := time.Now()
	for _, ts := range s.tasks {
		ts.mu.Lock()
		straggling := ts.running && !ts.done && !ts.specLaunched && now.Sub(ts.attemptStart) > threshold
		if straggling {
			// Speculative duplicates draw from the same shared slot pool
			// as primary attempts; when the cluster is saturated the
			// duplicate is simply not launched this tick (speculation is
			// opportunistic, never back-pressure).
			if !s.c.slots.TryAcquire() {
				ts.mu.Unlock()
				continue
			}
			ts.specLaunched = true
			ts.specDone = make(chan struct{})
		}
		ts.mu.Unlock()
		if !straggling {
			continue
		}
		s.rj.reg.Inc(CounterSpecLaunched, 1)
		s.helpers.Add(1)
		go func(ts *schedTask) {
			defer s.helpers.Done()
			defer s.c.slots.Release()
			defer close(ts.specDone)
			span := s.startSpan(ts, specAttempt, true)
			if err := s.attempt(ctx, ts, span, specAttempt, true); err != nil {
				// A failed duplicate is abandoned, never retried: the
				// primary attempt still owns the task.
				span.Finish(obs.OutcomeFailed)
			}
		}(ts)
	}
}

// startSpan opens the trace span for one attempt.
func (s *sched) startSpan(ts *schedTask, attempt int, spec bool) *obs.Span {
	span := s.rj.trace.Start(ts.name, s.phase, s.root, ts.idx)
	span.Partition = ts.partition
	span.Attempt = attempt
	span.Speculative = spec
	return span
}

// runTask drives one task to completion under the retry policy: attempts
// run until one wins (possibly a speculative duplicate), the budget is
// exhausted, or a permanent error surfaces.
func (s *sched) runTask(ctx context.Context, ts *schedTask) error {
	for attempt := 0; ; attempt++ {
		if ts.isDone() {
			return nil // a speculative duplicate won during our backoff
		}
		span := s.startSpan(ts, attempt, false)
		err := s.attempt(ctx, ts, span, attempt, false)
		if err == nil {
			return nil
		}
		if s.pol.ShouldRetry(err, attempt) && ctx.Err() == nil {
			span.Finish(obs.OutcomeRetry)
			s.rj.reg.Inc(CounterTaskRetries, 1)
			s.rj.reg.Inc(s.retryCounter, 1)
			if d := s.pol.Backoff(s.seed(), s.phase, ts.idx, attempt); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ts.doneCh: // a duplicate won; stop retrying
				case <-ctx.Done():
				}
				timer.Stop()
			}
			continue
		}
		span.Finish(obs.OutcomeFailed)
		// If a speculative duplicate is still in flight it may yet save
		// the task; wait for it before declaring failure.
		ts.mu.Lock()
		specDone := ts.specDone
		ts.mu.Unlock()
		if specDone != nil {
			<-specDone
			if ts.isDone() {
				return nil
			}
		}
		return err
	}
}

// attempt runs one attempt of ts: injects the seeded fault plan's fate,
// enforces the per-attempt deadline, and publishes the result through the
// win gate. A nil return means the task is decided (this attempt won, or
// finished as a suppressed duplicate).
func (s *sched) attempt(ctx context.Context, ts *schedTask, span *obs.Span, attempt int, spec bool) error {
	if !spec {
		ts.mu.Lock()
		ts.running = true
		ts.attemptStart = time.Now()
		ts.mu.Unlock()
		defer func() {
			ts.mu.Lock()
			ts.running = false
			ts.mu.Unlock()
		}()
	}
	start := time.Now()

	if in := s.in; in != nil {
		switch d := in.Decide(s.phase, ts.idx, attempt); d.Kind {
		case fault.KindTransient:
			return &fault.InjectedError{Phase: s.phase, Task: ts.idx, Attempt: attempt}
		case fault.KindPermanent:
			return &fault.InjectedError{Phase: s.phase, Task: ts.idx, Attempt: attempt, Permanent: true}
		case fault.KindCorrupt:
			// A corrupted block read: the DFS returned bytes whose CRC
			// does not match. Retryable — the next read models a healthy
			// replica.
			s.rj.reg.Inc(CounterChecksumFailures, 1)
			if b := ts.block; b != nil {
				return &dfs.ChecksumError{Block: b.ID, Want: b.Checksum(), Got: ^b.Checksum()}
			}
			return fault.Transientf("fault: injected corrupt read (%s task %d attempt %d)", s.phase, ts.idx, attempt)
		case fault.KindStraggle:
			// Straggle relative to the speculation threshold so injected
			// stragglers reliably cross it: sleep Slowdown x threshold.
			s.rj.reg.Inc(CounterStragglersInjected, 1)
			delay := time.Duration(float64(s.pol.StragglerThreshold(s.median())) * d.Slowdown)
			if delay > 0 {
				timer := time.NewTimer(delay)
				select {
				case <-timer.C:
				case <-ctx.Done():
				}
				timer.Stop()
			}
		}
	}

	out, err := s.exec(ctx, ts, attempt)
	if err != nil {
		return err
	}
	span.RecordsIn = out.recordsIn
	span.RecordsOut = out.recordsOut
	span.Bytes = out.bytes
	if !ts.markWon() {
		span.Finish(obs.OutcomeDuplicate)
		s.rj.reg.Inc(CounterSpecSuppressed, 1)
		return nil
	}
	dur := time.Since(start)
	out.apply(dur)
	s.recordDuration(dur)
	span.Finish(obs.OutcomeOK)
	if spec {
		s.rj.reg.Inc(CounterSpecWon, 1)
	}
	return nil
}

// exec runs the attempt body, bounding it by the policy's per-task
// deadline. An attempt that outlives its deadline keeps running in the
// background but its result is dropped (it can never win), and the
// deadline error is retryable.
func (s *sched) exec(ctx context.Context, ts *schedTask, attempt int) (attemptOut, error) {
	if s.pol.TaskDeadline <= 0 {
		return ts.run(attempt)
	}
	type result struct {
		out attemptOut
		err error
	}
	ch := make(chan result, 1) // buffered: the abandoned attempt must not block
	go func() {
		out, err := ts.run(attempt)
		ch <- result{out, err}
	}()
	timer := time.NewTimer(s.pol.TaskDeadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-timer.C:
		s.rj.reg.Inc(CounterDeadlineExceeded, 1)
		return attemptOut{}, fmt.Errorf("mapreduce: %s task %d attempt %d exceeded deadline %v: %w",
			s.phase, ts.idx, attempt, s.pol.TaskDeadline, context.DeadlineExceeded)
	case <-ctx.Done():
		return attemptOut{}, ctx.Err()
	}
}
