package mapreduce

import (
	"bytes"
	"encoding/gob"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/obs"
)

// This file is the wire protocol between the master runtime and worker
// processes (net/rpc over TCP, gob-encoded). The protocol is pull-based,
// like Hadoop's: workers register, heartbeat, long-poll for task
// assignments, read their split's input blocks (from their own replica
// store, a peer worker, or the master — in that order), execute, spill
// intermediate shards locally, and report completion. Reducers stream
// map shards in chunks directly from the worker that produced them — or
// from the master, for attempts that ran in process — over the same
// Shards.FetchChunk call on either side, merging frames as they arrive
// instead of waiting for a whole shard to transfer.

// RPC service names registered on the master and worker RPC servers.
const (
	// MasterService hosts the control-plane calls workers make.
	MasterService = "Master"
	// ShardService hosts the data-plane calls and is registered by both
	// sides: workers serve their spilled shard files and block replicas,
	// the master serves shards produced by in-process (fallback or
	// re-issued) map attempts plus blocks no worker replica holds.
	ShardService = "Shards"
)

// Task phases carried in assignments.
const (
	TaskMap    = "map"
	TaskReduce = "reduce"
	// TaskNone is returned by a GetTask long-poll that timed out with no
	// work available; the worker simply polls again.
	TaskNone = ""
)

// RegisterArgs introduces a worker to the master.
type RegisterArgs struct {
	// Addr is the worker's shard-serving listen address.
	Addr string
	// PID is the worker's OS process id, used by the real-process kill
	// mode of the chaos harness.
	PID int
	// CanServe marks a worker that runs the query-executor role
	// (-serve-tasks): it accepts ExecRange/ExecKNN calls against pinned
	// replica partitions. The master routes sharded serving only to
	// workers that registered with CanServe.
	CanServe bool
}

// RegisterReply assigns the worker its identity and lease terms.
type RegisterReply struct {
	WorkerID int64
	// HeartbeatEvery is how often the worker must check in; Lease is how
	// long the master waits past the last heartbeat before declaring the
	// worker dead and re-issuing its in-flight tasks.
	HeartbeatEvery time.Duration
	Lease          time.Duration
}

// HeartbeatArgs renews a worker's lease.
type HeartbeatArgs struct {
	WorkerID int64
}

// HeartbeatReply acknowledges a heartbeat. OK is false when the master no
// longer knows the worker (its lease expired); the worker must
// re-register before pulling further tasks.
type HeartbeatReply struct {
	OK bool
	// Epochs carries the DFS mutation epoch of every live file (set only
	// when the master has an epoch source). A serving worker compares the
	// snapshot against its pinned partitions and drops any pinned under
	// an older epoch — the push half of cache invalidation. Correctness
	// never depends on it: executor calls carry the query's epoch and the
	// tier is epoch-keyed, so a stale pin can never answer a fresh query.
	Epochs map[string]int64
}

// GetTaskArgs long-polls for a task assignment. A GetTask call also
// renews the worker's lease, so a worker busy polling never expires.
type GetTaskArgs struct {
	WorkerID int64
}

// ShardSource tells a reducer where to fetch one map task's shard: the
// shard-serving address of the worker (or master) holding the winning
// attempt's spill.
type ShardSource struct {
	Task    int
	Attempt int
	Addr    string
}

// TaskAssignment is one unit of work handed to a worker. Phase TaskNone
// means the long-poll timed out.
type TaskAssignment struct {
	DispatchID int64
	Phase      string // TaskMap, TaskReduce or TaskNone
	JobID      int64
	Task       int
	Attempt    int
	// JobKind names the registered job kind whose functions the worker
	// rebuilds from Conf (functions cannot ship over RPC).
	JobKind string
	Conf    map[string]string
	// NumShards is the job's reducer count; map tasks bucket their emitted
	// pairs into this many spill shards.
	NumShards int
	// Sources lists, for reduce tasks, the shard holders of every map
	// task in task order — the order the in-process shuffle merges in.
	Sources []ShardSource
	// Meta, for map tasks on a replicated data plane, describes the
	// split's blocks and their replica holders so the worker assembles
	// its input from local or peer replicas. Nil means replication is
	// off and the worker reads the whole split from the master.
	Meta *WireSplitMeta
}

// WireBlockRef names one block of a split and where its replicas live.
type WireBlockRef struct {
	ID        int64
	Partition string
	// Extra marks blocks of the secondary group of a pair split.
	Extra bool
	// Holders are shard-serving addresses of workers holding a sealed
	// replica, in placement order. A reader tries its own store first,
	// then peers, then the master.
	Holders []string
}

// WireSplitMeta is a split's shape without its records: enough for a
// worker to rebuild the split from block replicas, falling back to the
// master only for blocks it cannot reach anywhere else.
type WireSplitMeta struct {
	Partition  string
	MBR        geom.Rect
	ContentMBR geom.Rect
	Tag        string
	Blocks     []WireBlockRef
}

// ReadSplitArgs fetches the records of a map task's split from the
// master — the DFS read path of a remote map attempt.
type ReadSplitArgs struct {
	JobID int64
	Task  int
}

// WireSplit is a Split flattened for the wire. Records are shipped per
// block (not concatenated) because map output order depends on per-block
// iteration, and blocks are re-sealed worker-side so the checksum scrub
// covers shipped data too.
type WireSplit struct {
	Partition  string
	MBR        geom.Rect
	ContentMBR geom.Rect
	Tag        string
	// BlockParts/BlockRecords describe the primary block group, one entry
	// per block; ExtraParts/ExtraRecords the secondary group (pair splits).
	BlockParts   []string
	BlockRecords [][]string
	ExtraParts   []string
	ExtraRecords [][]string
}

// ToWire flattens a split for shipping.
func (s *Split) ToWire() *WireSplit {
	w := &WireSplit{Partition: s.Partition, MBR: s.MBR, ContentMBR: s.ContentMBR, Tag: s.Tag}
	for _, b := range s.Blocks {
		w.BlockParts = append(w.BlockParts, b.Partition)
		w.BlockRecords = append(w.BlockRecords, b.Records())
	}
	for _, b := range s.Extra {
		w.ExtraParts = append(w.ExtraParts, b.Partition)
		w.ExtraRecords = append(w.ExtraRecords, b.Records())
	}
	return w
}

// Split reconstructs the split worker-side, sealing each block so record
// iteration order, local-index construction and checksum verification
// match the in-process path exactly.
func (w *WireSplit) Split() *Split {
	s := &Split{Partition: w.Partition, MBR: w.MBR, ContentMBR: w.ContentMBR, Tag: w.Tag}
	for i, recs := range w.BlockRecords {
		s.Blocks = append(s.Blocks, dfs.NewBlockFromRecords(w.BlockParts[i], recs))
	}
	for i, recs := range w.ExtraRecords {
		s.Extra = append(s.Extra, dfs.NewBlockFromRecords(w.ExtraParts[i], recs))
	}
	return s
}

// TaskDoneArgs reports an attempt's outcome. Exactly one of Err/"success
// fields" is meaningful: a non-empty Err carries the failure (with its
// transience classification), otherwise Out/Metrics/totals carry the
// result. LostMaps lists map tasks whose shards a reduce attempt failed
// to fetch (dead holder, torn spill); the master re-issues those maps and
// the reduce attempt is retried.
type TaskDoneArgs struct {
	WorkerID   int64
	DispatchID int64

	Err       string
	Transient bool
	LostMaps  []int

	// Out is the attempt's direct (early-flush) output for map tasks, or
	// the reduce partition's output for reduce tasks.
	Out []string
	// Metrics is the attempt's task-local counter/observation buffer; the
	// master merges it through the win gate exactly like an in-process
	// attempt's buffer.
	Metrics obs.TaskMetricsWire
	// RecordsIn is the attempt's input record (map) or value (reduce)
	// count; Pairs/Bytes are a map attempt's shuffle totals.
	RecordsIn int64
	Pairs     int64
	Bytes     int64

	// Input-read locality of a map attempt, in block reads and record
	// bytes: Local counts blocks served from the worker's own replica
	// store, Remote counts peer and master reads (including a whole-split
	// fallback). The master folds these into its system registry — they
	// are runtime traffic metrics, never job counters, so remote and
	// in-process runs keep identical job counter sets.
	LocalReads  int64
	LocalBytes  int64
	RemoteReads int64
	RemoteBytes int64
}

// TaskDoneReply acknowledges a completion report.
type TaskDoneReply struct{}

// FetchChunkArgs requests one chunk of a map task's spill stream for one
// reducer. Offset is a byte offset into the stream; MaxBytes bounds the
// reply (the reader picks the chunk size, see ShuffleChunkBytes).
type FetchChunkArgs struct {
	JobID    int64
	Task     int
	Attempt  int
	Reduce   int
	Offset   int64
	MaxBytes int
}

// FetchChunkReply carries one chunk of spill-stream bytes. EOF marks the
// last chunk; chunk boundaries are arbitrary — the reader reassembles
// sealed frames with a ShardStream, so integrity never depends on how
// the server happened to slice the file.
type FetchChunkReply struct {
	Data []byte
	EOF  bool
}

// ShuffleChunkBytes is the chunk size reducers stream spill shards with.
// A var, not a const, so tests shrink it to force multi-chunk transfers
// on small shards.
var ShuffleChunkBytes = 64 << 10

// shardBatchPairs is the number of pairs per sealed frame in a spill
// stream. Batches are never empty, so the empty end-of-stream frame is
// unambiguous and a truncated stream is always detectable.
const shardBatchPairs = 512

// EncodeShard serializes one reducer's pairs into a spill stream: a
// sequence of sealed frames of at most shardBatchPairs pairs each,
// terminated by an empty sealed frame. A reducer can decode and merge
// every complete frame before the stream finishes transferring, and a
// stream cut anywhere — mid-frame or between frames — fails verification
// (torn frame, or missing end-of-stream marker).
func EncodeShard(pairs []Pair) ([]byte, error) {
	var out []byte
	for len(pairs) > 0 {
		n := shardBatchPairs
		if n > len(pairs) {
			n = len(pairs)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(pairs[:n]); err != nil {
			return nil, err
		}
		out = append(out, dfs.SealShard(buf.Bytes())...)
		pairs = pairs[n:]
	}
	return append(out, dfs.SealShard(nil)...), nil
}

// DecodeShard verifies and deserializes a whole spill stream. Damage —
// torn frames, truncation before the end-of-stream marker, trailing
// bytes — surfaces as dfs.ErrTornShard (transient: the producing map
// task can be re-run).
func DecodeShard(stream []byte) ([]Pair, error) {
	var st ShardStream
	pairs, err := st.Feed(stream)
	if err != nil {
		return nil, err
	}
	if !st.Done() {
		return nil, &dfs.TornShardError{Reason: "spill stream ends before its end-of-stream frame"}
	}
	return pairs, nil
}

// ShardStream reassembles a spill stream from arbitrarily sliced chunks,
// yielding decoded pair batches as soon as their frames complete — the
// reducer-side half of streaming shuffle.
type ShardStream struct {
	buf  []byte
	done bool
}

// Feed appends a chunk and returns the pairs of every frame it
// completed. After the end-of-stream frame, any further byte is an
// integrity failure.
func (s *ShardStream) Feed(chunk []byte) ([]Pair, error) {
	if s.done {
		if len(chunk) > 0 {
			return nil, &dfs.TornShardError{Reason: "bytes after the end-of-stream frame"}
		}
		return nil, nil
	}
	s.buf = append(s.buf, chunk...)
	var out []Pair
	for {
		n, err := dfs.PeekShardFrame(s.buf)
		if err != nil {
			return nil, err
		}
		if n == 0 || len(s.buf) < n {
			return out, nil
		}
		payload, err := dfs.UnsealShard(s.buf[:n])
		if err != nil {
			return nil, err
		}
		s.buf = s.buf[n:]
		if len(payload) == 0 {
			s.done = true
			if len(s.buf) > 0 {
				return nil, &dfs.TornShardError{Reason: "bytes after the end-of-stream frame"}
			}
			return out, nil
		}
		var batch []Pair
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&batch); err != nil {
			return nil, err
		}
		out = append(out, batch...)
	}
}

// Done reports whether the end-of-stream frame arrived; a transfer that
// ends without it was truncated.
func (s *ShardStream) Done() bool { return s.done }

// ReadBlockArgs fetches one sealed block-replica frame by block id, from
// a worker's replica store or from the master's data plane.
type ReadBlockArgs struct {
	ID int64
}

// ReadBlockReply carries the sealed frame (gob []string records inside
// dfs.SealShard); the reader unseals and decodes it, so a torn replica
// is detected at the consumer and the read falls through to the next
// source.
type ReadBlockReply struct {
	Frame []byte
}

// PushBlockArgs installs one sealed block replica on a worker — the
// master's replication (and re-replication) write path.
type PushBlockArgs struct {
	ID        int64
	Partition string
	Frame     []byte
}

// PushBlockReply acknowledges a replica installation.
type PushBlockReply struct{}

// DropJobArgs tells a worker a job ended; the worker garbage-collects
// the job's spill directory.
type DropJobArgs struct {
	JobID int64
}

// DropJobReply acknowledges spill GC.
type DropJobReply struct{}

// ExecRangeArgs asks a serving worker for one partition's fragment of a
// range query. Meta describes the split (with replica holders) so the
// worker can assemble it from its local replica store, falling through to
// peers and the master exactly like a map task; Epoch keys the worker's
// pinned tier so a rewrite can never be answered from a stale pin.
type ExecRangeArgs struct {
	File  string
	Epoch int64
	Meta  *WireSplitMeta
	Query geom.Rect
}

// ExecRangeReply carries the partition's matched points in canonical
// (X, then Y) order plus the partition's record count (the master mirrors
// the local engine's hotness and stats accounting with it).
type ExecRangeReply struct {
	Points  []geom.Point
	Records int64
}

// ExecKNNArgs asks a serving worker for one partition's tie-complete
// k-nearest candidate set — the per-worker half of the two-round kNN
// protocol. The master merges candidate sets from all consulted shards
// with the canonical (dist, record) comparator.
type ExecKNNArgs struct {
	File  string
	Epoch int64
	Meta  *WireSplitMeta
	Q     geom.Point
	K     int
}

// WireKNNCandidate is one (dist, record) candidate on the wire.
type WireKNNCandidate struct {
	Dist float64
	Rec  string
}

// ExecKNNReply carries the partition's candidate set (already sorted and
// truncated to k by the worker) plus its record count.
type ExecKNNReply struct {
	Cands   []WireKNNCandidate
	Records int64
}

// EncodeBlockFrame seals a block's records for replica push: the same
// CRC frame as spill streams, so a replica torn by a dying worker is
// detected exactly like a torn spill.
func EncodeBlockFrame(records []string) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, err
	}
	return dfs.SealShard(buf.Bytes()), nil
}

// DecodeBlockFrame verifies a replica frame and returns its records.
func DecodeBlockFrame(frame []byte) ([]string, error) {
	payload, err := dfs.UnsealShard(frame)
	if err != nil {
		return nil, err
	}
	var records []string
	if len(payload) == 0 {
		return nil, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&records); err != nil {
		return nil, err
	}
	return records, nil
}
