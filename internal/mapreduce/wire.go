package mapreduce

import (
	"bytes"
	"encoding/gob"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/obs"
)

// This file is the wire protocol between the master runtime and worker
// processes (net/rpc over TCP, gob-encoded). The protocol is pull-based,
// like Hadoop's: workers register, heartbeat, long-poll for task
// assignments, read their split's records from the master (the DFS lives
// in the master process), execute, spill intermediate shards locally, and
// report completion. Reducers fetch map shards directly from the worker
// that produced them — or from the master, for attempts that ran in
// process — over the same Shards.Fetch call on either side.

// RPC service names registered on the master and worker RPC servers.
const (
	// MasterService hosts the control-plane calls workers make.
	MasterService = "Master"
	// ShardService hosts Shards.Fetch and is registered by both sides:
	// workers serve their spilled shard files, the master serves shards
	// produced by in-process (fallback or re-issued) map attempts.
	ShardService = "Shards"
)

// Task phases carried in assignments.
const (
	TaskMap    = "map"
	TaskReduce = "reduce"
	// TaskNone is returned by a GetTask long-poll that timed out with no
	// work available; the worker simply polls again.
	TaskNone = ""
)

// RegisterArgs introduces a worker to the master.
type RegisterArgs struct {
	// Addr is the worker's shard-serving listen address.
	Addr string
	// PID is the worker's OS process id, used by the real-process kill
	// mode of the chaos harness.
	PID int
}

// RegisterReply assigns the worker its identity and lease terms.
type RegisterReply struct {
	WorkerID int64
	// HeartbeatEvery is how often the worker must check in; Lease is how
	// long the master waits past the last heartbeat before declaring the
	// worker dead and re-issuing its in-flight tasks.
	HeartbeatEvery time.Duration
	Lease          time.Duration
}

// HeartbeatArgs renews a worker's lease.
type HeartbeatArgs struct {
	WorkerID int64
}

// HeartbeatReply acknowledges a heartbeat. OK is false when the master no
// longer knows the worker (its lease expired); the worker must
// re-register before pulling further tasks.
type HeartbeatReply struct {
	OK bool
}

// GetTaskArgs long-polls for a task assignment. A GetTask call also
// renews the worker's lease, so a worker busy polling never expires.
type GetTaskArgs struct {
	WorkerID int64
}

// ShardSource tells a reducer where to fetch one map task's shard: the
// shard-serving address of the worker (or master) holding the winning
// attempt's spill.
type ShardSource struct {
	Task    int
	Attempt int
	Addr    string
}

// TaskAssignment is one unit of work handed to a worker. Phase TaskNone
// means the long-poll timed out.
type TaskAssignment struct {
	DispatchID int64
	Phase      string // TaskMap, TaskReduce or TaskNone
	JobID      int64
	Task       int
	Attempt    int
	// JobKind names the registered job kind whose functions the worker
	// rebuilds from Conf (functions cannot ship over RPC).
	JobKind string
	Conf    map[string]string
	// NumShards is the job's reducer count; map tasks bucket their emitted
	// pairs into this many spill shards.
	NumShards int
	// Sources lists, for reduce tasks, the shard holders of every map
	// task in task order — the order the in-process shuffle merges in.
	Sources []ShardSource
}

// ReadSplitArgs fetches the records of a map task's split from the
// master — the DFS read path of a remote map attempt.
type ReadSplitArgs struct {
	JobID int64
	Task  int
}

// WireSplit is a Split flattened for the wire. Records are shipped per
// block (not concatenated) because map output order depends on per-block
// iteration, and blocks are re-sealed worker-side so the checksum scrub
// covers shipped data too.
type WireSplit struct {
	Partition  string
	MBR        geom.Rect
	ContentMBR geom.Rect
	Tag        string
	// BlockParts/BlockRecords describe the primary block group, one entry
	// per block; ExtraParts/ExtraRecords the secondary group (pair splits).
	BlockParts   []string
	BlockRecords [][]string
	ExtraParts   []string
	ExtraRecords [][]string
}

// ToWire flattens a split for shipping.
func (s *Split) ToWire() *WireSplit {
	w := &WireSplit{Partition: s.Partition, MBR: s.MBR, ContentMBR: s.ContentMBR, Tag: s.Tag}
	for _, b := range s.Blocks {
		w.BlockParts = append(w.BlockParts, b.Partition)
		w.BlockRecords = append(w.BlockRecords, b.Records())
	}
	for _, b := range s.Extra {
		w.ExtraParts = append(w.ExtraParts, b.Partition)
		w.ExtraRecords = append(w.ExtraRecords, b.Records())
	}
	return w
}

// Split reconstructs the split worker-side, sealing each block so record
// iteration order, local-index construction and checksum verification
// match the in-process path exactly.
func (w *WireSplit) Split() *Split {
	s := &Split{Partition: w.Partition, MBR: w.MBR, ContentMBR: w.ContentMBR, Tag: w.Tag}
	for i, recs := range w.BlockRecords {
		s.Blocks = append(s.Blocks, dfs.NewBlockFromRecords(w.BlockParts[i], recs))
	}
	for i, recs := range w.ExtraRecords {
		s.Extra = append(s.Extra, dfs.NewBlockFromRecords(w.ExtraParts[i], recs))
	}
	return s
}

// TaskDoneArgs reports an attempt's outcome. Exactly one of Err/"success
// fields" is meaningful: a non-empty Err carries the failure (with its
// transience classification), otherwise Out/Metrics/totals carry the
// result. LostMaps lists map tasks whose shards a reduce attempt failed
// to fetch (dead holder, torn spill); the master re-issues those maps and
// the reduce attempt is retried.
type TaskDoneArgs struct {
	WorkerID   int64
	DispatchID int64

	Err       string
	Transient bool
	LostMaps  []int

	// Out is the attempt's direct (early-flush) output for map tasks, or
	// the reduce partition's output for reduce tasks.
	Out []string
	// Metrics is the attempt's task-local counter/observation buffer; the
	// master merges it through the win gate exactly like an in-process
	// attempt's buffer.
	Metrics obs.TaskMetricsWire
	// RecordsIn is the attempt's input record (map) or value (reduce)
	// count; Pairs/Bytes are a map attempt's shuffle totals.
	RecordsIn int64
	Pairs     int64
	Bytes     int64
}

// TaskDoneReply acknowledges a completion report.
type TaskDoneReply struct{}

// FetchShardArgs requests one map task's spill shard for one reducer.
type FetchShardArgs struct {
	JobID   int64
	Task    int
	Attempt int
	Reduce  int
}

// FetchShardReply carries the sealed shard frame (dfs.SealShard); the
// fetcher unseals it, so torn or truncated spill files are detected at
// the consumer regardless of which side served the bytes.
type FetchShardReply struct {
	Frame []byte
}

// EncodeShard serializes one reducer's pairs into a sealed spill frame.
func EncodeShard(pairs []Pair) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
		return nil, err
	}
	return dfs.SealShard(buf.Bytes()), nil
}

// DecodeShard unseals and deserializes a spill frame. Frame damage
// surfaces as dfs.ErrTornShard (transient: the producing map task can be
// re-run).
func DecodeShard(frame []byte) ([]Pair, error) {
	payload, err := dfs.UnsealShard(frame)
	if err != nil {
		return nil, err
	}
	var pairs []Pair
	if len(payload) == 0 {
		return nil, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pairs); err != nil {
		return nil, err
	}
	return pairs, nil
}
