package mapreduce

import (
	"fmt"
	"net"
	"net/rpc"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/obs"
)

// This file is the master side of the distributed runtime: it tracks
// worker processes under heartbeat leases, hands out task dispatches over
// a pull queue, marks a worker dead when its lease expires (failing its
// in-flight dispatches with a transient error so the scheduler re-issues
// them), and serves master-held shards to reducers. It also hosts the
// real-process chaos mode: at a seeded (phase, task, attempt) decision
// point it SIGKILLs a live worker, so fault tolerance is exercised by
// genuine process death rather than injected errors alone.

// Worker lifecycle metric names, written to the registry passed in
// MasterOptions (the system registry, so a serving process exports them
// at /metrics as shadoop_mr_workers_registered_total etc.).
const (
	MetricWorkersRegistered = "mr.workers.registered"
	MetricWorkersLost       = "mr.workers.lost"
	GaugeWorkersLive        = "mr.workers.live"
	GaugeHeartbeatsMissed   = "mr.heartbeats.missed"
)

// Job-level fault counters recorded by the remote execution path.
const (
	// CounterWorkerLost counts dispatches failed because their worker's
	// lease expired mid-task; each one turns into a scheduler retry.
	CounterWorkerLost = "fault.worker.lost"
	// CounterReissuedMaps counts map tasks re-executed because the worker
	// holding their winning attempt's shards died before every reducer
	// fetched them. The re-run's metrics are suppressed (the task already
	// counted once); only this counter and the reissue span record it.
	CounterReissuedMaps = "fault.reissue.map"
)

// reissueAttempt is the attempt coordinate base of shard-loss re-issues:
// disjoint from primary retries (0..) and speculative duplicates (1000..)
// so every re-issue is distinguishable in traces and draws independent
// backoff jitter.
const reissueAttempt = 2000

// MasterOptions configures a master runtime.
type MasterOptions struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// HeartbeatEvery is the interval workers are told to heartbeat at
	// (default 100ms). Lease is how long past the last sign of life the
	// master waits before declaring a worker dead (default 10x heartbeat).
	HeartbeatEvery time.Duration
	Lease          time.Duration
	// PollWait bounds a GetTask long-poll (default HeartbeatEvery).
	PollWait time.Duration
	// Metrics, when set, receives the worker lifecycle counters/gauges —
	// pass the system registry so a serving process exports them.
	Metrics *obs.Registry
	// EnableKill arms the injector's worker-kill mode: without it the
	// master never signals a process, whatever the fault plan says.
	EnableKill bool
	// KillFn overrides how a victim pid is killed (tests substitute a
	// goroutine-worker stopper). Nil means SIGKILL, skipped when the pid
	// is the master's own process (in-process test workers).
	KillFn func(pid int) error
	// RecordHeartbeats logs one event per Heartbeat RPC into the
	// heartbeat log (see HeartbeatLog) — the JSONL artifact the CI e2e
	// step uploads. Off by default: a busy pool heartbeats constantly.
	RecordHeartbeats bool
	// Replication, when positive, turns on the data plane: each job's
	// input blocks are pushed to this many workers before its maps run,
	// map dispatches prefer replica holders, and workers read input
	// locally or peer-to-peer instead of from the master. Zero (the
	// default) keeps the PR-8 behavior: every split ships from the
	// master via ReadSplit.
	Replication int
	// PlacementSeed seeds rendezvous replica placement (default 1), so
	// a replayed run places identically.
	PlacementSeed int64
}

func (o MasterOptions) withDefaults() MasterOptions {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 100 * time.Millisecond
	}
	if o.Lease <= 0 {
		o.Lease = 10 * o.HeartbeatEvery
	}
	if o.PollWait <= 0 {
		o.PollWait = o.HeartbeatEvery
	}
	if o.PlacementSeed == 0 {
		o.PlacementSeed = 1
	}
	return o
}

// workerState is the master's view of one registered worker.
type workerState struct {
	id       int64
	addr     string
	pid      int
	canServe bool
	live     bool
	lastBeat time.Time
	inflight map[int64]*dispatch
}

// dispatchResult is the outcome of one dispatched attempt.
type dispatchResult struct {
	workerID   int64
	workerAddr string

	out       []string
	metrics   obs.TaskMetricsWire
	recordsIn int64
	pairs     int64
	bytes     int64

	lostMaps   []int
	workerLost bool
	err        error
}

// dispatch is one task attempt travelling through the master's queue.
type dispatch struct {
	id      int64
	jobID   int64
	phase   string
	task    int
	attempt int
	jobKind string
	conf    map[string]string
	nshards int
	sources []ShardSource
	// holders are the worker ids holding a replica of this map task's
	// split — the locality set the pending queue matches pollers against.
	holders []int64
	// meta is the replica-aware split descriptor shipped in the
	// assignment (nil when the data plane is off: the worker falls back
	// to a whole-split ReadSplit from the master).
	meta *WireSplitMeta

	resultCh chan dispatchResult
	finished sync.Once
	isDone   atomic.Bool
}

// holds reports whether workerID is in the dispatch's locality set.
func (d *dispatch) holds(workerID int64) bool {
	for _, h := range d.holders {
		if h == workerID {
			return true
		}
	}
	return false
}

// finish delivers the result exactly once (a task may be failed by worker
// death and then reported by a late TaskDone from a process that was only
// presumed dead).
func (d *dispatch) finish(r dispatchResult) {
	d.finished.Do(func() {
		d.isDone.Store(true)
		d.resultCh <- r
	})
}

// done reports whether finish already ran.
func (d *dispatch) done() bool { return d.isDone.Load() }

// Master is the distributed runtime's coordinator.
type Master struct {
	c     *Cluster
	opts  MasterOptions
	ln    net.Listener
	srv   *rpc.Server
	flog  *fault.Log
	hblog *fault.Log

	// plane is the block-replica data plane, nil unless
	// MasterOptions.Replication is positive.
	plane *dataPlane

	mu           sync.Mutex
	workers      map[int64]*workerState
	nextWorker   int64
	nextDispatch int64
	nextJob      int64
	dispatches   map[int64]*dispatch
	runs         map[int64]*remoteRun
	live         int
	// pending is the dispatch queue. A slice rather than a channel so an
	// assignment can scan for a dispatch local to the polling worker
	// instead of taking strict FIFO order; waitCh is closed (and
	// replaced) on every submit to wake long-polling workers.
	pending []*dispatch
	waitCh  chan struct{}
	closed  bool

	// epochSrc feeds DFS file epochs into heartbeat replies so serving
	// workers drop stale pinned partitions (see SetEpochSource).
	epochSrc func() map[string]int64

	stop chan struct{}
}

// maxPending bounds the dispatch queue, matching the old channel buffer.
const maxPending = 4096

// StartMaster starts a master runtime listening for worker registrations.
// Jobs submitted to the cluster while at least one worker is live (and
// whose Kind is registered) execute on the workers; with none, execution
// falls back in process — the zero-config default.
func (c *Cluster) StartMaster(opts MasterOptions) (*Master, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	m := &Master{
		c:          c,
		opts:       opts,
		ln:         ln,
		srv:        rpc.NewServer(),
		flog:       &fault.Log{},
		hblog:      &fault.Log{},
		workers:    make(map[int64]*workerState),
		dispatches: make(map[int64]*dispatch),
		runs:       make(map[int64]*remoteRun),
		waitCh:     make(chan struct{}),
		stop:       make(chan struct{}),
	}
	if opts.Replication > 0 {
		m.plane = newDataPlane(m, opts.Replication, opts.PlacementSeed)
	}
	if err := m.srv.RegisterName(MasterService, &masterService{m: m}); err != nil {
		ln.Close()
		return nil, err
	}
	if err := m.srv.RegisterName(ShardService, &masterShards{m: m}); err != nil {
		ln.Close()
		return nil, err
	}
	go m.acceptLoop()
	go m.leaseMonitor()
	c.mu.Lock()
	c.master = m
	c.mu.Unlock()
	return m, nil
}

// Master returns the cluster's running master runtime (nil when none was
// started — the common, fully in-process configuration).
func (c *Cluster) Master() *Master {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.master
}

// Addr returns the master's listen address, the value workers dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// FaultLog returns the master's runtime fault-event log: registrations,
// lease expiries, kills and re-issues.
func (m *Master) FaultLog() *fault.Log { return m.flog }

// HeartbeatLog returns the heartbeat event log (populated only under
// MasterOptions.RecordHeartbeats).
func (m *Master) HeartbeatLog() *fault.Log { return m.hblog }

// Stop shuts the master down: the listener closes, queued and in-flight
// dispatches fail transiently (jobs still running fall back in process),
// and the cluster reverts to in-process execution.
func (m *Master) Stop() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var pending []*dispatch
	for _, d := range m.dispatches {
		pending = append(pending, d)
	}
	m.dispatches = make(map[int64]*dispatch)
	m.pending = nil
	m.live = 0
	for _, ws := range m.workers {
		ws.live = false
	}
	m.mu.Unlock()
	close(m.stop)
	m.ln.Close()
	for _, d := range pending {
		d.finish(dispatchResult{err: fault.Transientf("mapreduce: master stopped"), workerLost: true})
	}
	m.c.mu.Lock()
	if m.c.master == m {
		m.c.master = nil
	}
	m.c.mu.Unlock()
}

// LiveWorkers returns the number of workers currently under lease.
func (m *Master) LiveWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live
}

// Workers returns the ids of the currently live workers.
func (m *Master) WorkerIDs() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ids []int64
	for id, ws := range m.workers {
		if ws.live {
			ids = append(ids, id)
		}
	}
	return ids
}

// liveWorkerIDs is WorkerIDs in sorted order — the data plane's stable
// placement candidate list.
func (m *Master) liveWorkerIDs() []int64 {
	ids := m.WorkerIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// workerAddr resolves a live worker's shard-serving address ("" when the
// worker is unknown or dead).
func (m *Master) workerAddr(id int64) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws := m.workers[id]
	if ws == nil || !ws.live {
		return ""
	}
	return ws.addr
}

func (m *Master) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.srv.ServeConn(conn)
	}
}

// leaseMonitor expires workers that stopped heartbeating and maintains
// the live/missed gauges.
func (m *Master) leaseMonitor() {
	tick := m.opts.Lease / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		var expired []*workerState
		missed := 0
		m.mu.Lock()
		for _, ws := range m.workers {
			if !ws.live {
				continue
			}
			since := now.Sub(ws.lastBeat)
			missed += int(since / m.opts.HeartbeatEvery)
			if since > m.opts.Lease {
				expired = append(expired, ws)
			}
		}
		m.mu.Unlock()
		if r := m.opts.Metrics; r != nil {
			r.SetGauge(GaugeHeartbeatsMissed, float64(missed))
		}
		for _, ws := range expired {
			m.markDead(ws)
		}
	}
}

// markDead declares a worker dead: its lease is revoked, its in-flight
// dispatches fail transiently (the scheduler re-issues them), and every
// active run is told so completed map tasks whose shards died with the
// worker are re-run. When the last worker dies, the queue is drained so
// waiting dispatches fall back to in-process execution instead of
// stalling on a poll nobody makes.
func (m *Master) markDead(ws *workerState) {
	m.mu.Lock()
	if !ws.live {
		m.mu.Unlock()
		return
	}
	ws.live = false
	m.live--
	inflight := ws.inflight
	ws.inflight = make(map[int64]*dispatch)
	for id := range inflight {
		delete(m.dispatches, id)
	}
	var drained []*dispatch
	if m.live == 0 {
		for _, d := range m.pending {
			if !d.done() {
				delete(m.dispatches, d.id)
				drained = append(drained, d)
			}
		}
		m.pending = nil
	}
	live := m.live
	runs := make([]*remoteRun, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()

	if r := m.opts.Metrics; r != nil {
		r.Inc(MetricWorkersLost, 1)
		r.SetGauge(GaugeWorkersLive, float64(live))
	}
	m.flog.Append(fault.Event{Kind: "worker-lost", Worker: ws.id})
	lost := fault.Transientf("mapreduce: worker %d lost (lease expired)", ws.id)
	for _, d := range inflight {
		d.finish(dispatchResult{err: lost, workerLost: true})
	}
	noWorkers := fault.Transientf("mapreduce: no live workers")
	for _, d := range drained {
		d.finish(dispatchResult{err: noWorkers, workerLost: true})
	}
	// Re-replicate the dead worker's blocks before the runs react, so a
	// re-issued map already sees the restored holder set. markDead runs
	// only on the lease monitor (and never holds m.mu here), so the
	// synchronous pushes cannot deadlock or race another markDead.
	m.plane.onWorkerLost(ws.id)
	for _, run := range runs {
		go run.onWorkerLost(ws.id)
	}
}

// submit queues a dispatch for the next polling worker. It fails fast
// (transiently) when no worker is live, so callers fall back in process.
func (m *Master) submit(d *dispatch) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fault.Transientf("mapreduce: master stopped")
	}
	if m.live == 0 {
		m.mu.Unlock()
		return fault.Transientf("mapreduce: no live workers")
	}
	if len(m.pending) >= maxPending {
		m.mu.Unlock()
		return fault.Transientf("mapreduce: dispatch queue full")
	}
	m.nextDispatch++
	d.id = m.nextDispatch
	m.pending = append(m.pending, d)
	m.dispatches[d.id] = d
	// Wake every long-polling worker; each re-scans the pending list.
	close(m.waitCh)
	m.waitCh = make(chan struct{})
	m.mu.Unlock()
	return nil
}

// takePendingLocked removes and returns the dispatch the polling worker
// should run: the first pending dispatch whose replica-holder set
// contains the worker, or — with none local to it — the oldest pending
// dispatch (locality is a preference, not an assignment constraint).
// Dispatches finished while queued (worker-death drain, run teardown)
// are dropped on the way. Callers hold m.mu.
func (m *Master) takePendingLocked(workerID int64) *dispatch {
	alive := m.pending[:0]
	for _, d := range m.pending {
		if !d.done() {
			alive = append(alive, d)
		}
	}
	m.pending = alive
	idx := -1
	for i, d := range m.pending {
		if d.holds(workerID) {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(m.pending) == 0 {
			return nil
		}
		idx = 0
	}
	d := m.pending[idx]
	m.pending = append(m.pending[:idx], m.pending[idx+1:]...)
	return d
}

// registerRun attaches a job run to the master, allocating its job id.
func (m *Master) registerRun(r *remoteRun) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextJob++
	r.id = m.nextJob
	m.runs[r.id] = r
	return r.id
}

// unregisterRun detaches a finished run and fails its outstanding
// dispatches so no goroutine waits on a result that will never come.
func (m *Master) unregisterRun(r *remoteRun) {
	m.mu.Lock()
	delete(m.runs, r.id)
	var pending []*dispatch
	for id, d := range m.dispatches {
		if d.jobID == r.id {
			delete(m.dispatches, id)
			pending = append(pending, d)
		}
	}
	m.mu.Unlock()
	for _, d := range pending {
		d.finish(dispatchResult{err: fault.Transientf("mapreduce: job run ended")})
	}
}

// run looks up an active run by job id.
func (m *Master) run(jobID int64) *remoteRun {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs[jobID]
}

// renewLease stamps a sign of life from the worker.
func (m *Master) renewLease(workerID int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws := m.workers[workerID]
	if ws == nil || !ws.live {
		return false
	}
	ws.lastBeat = time.Now()
	return true
}

// maybeKill consults the fault plan's worker-kill mode for a dispatch
// being assigned and, when the seeded decision fires, kills the victim:
// the assignee (death during map or reduce execution) or, for reduce
// dispatches under WorkerKillHolder, a live shard holder other than the
// assignee (death during shuffle fetch).
func (m *Master) maybeKill(d *dispatch, assignee *workerState) {
	if !m.opts.EnableKill {
		return
	}
	in := m.c.Injector()
	if in == nil || !in.DecideKill(d.phase, d.task, d.attempt) {
		return
	}
	victim := assignee
	if in.Plan().WorkerKillReplicaHolder && d.phase == TaskMap && len(d.holders) > 0 {
		// Kill a live replica holder of the map task's split — possibly
		// the assignee itself (locality makes that the common case) —
		// so the read path's peer/master fallback and the plane's
		// re-replication are what the chaos mode exercises.
		m.mu.Lock()
		for _, h := range d.holders {
			if ws := m.workers[h]; ws != nil && ws.live {
				victim = ws
				break
			}
		}
		m.mu.Unlock()
	}
	if in.Plan().WorkerKillHolder && d.phase == TaskReduce {
		m.mu.Lock()
		for _, src := range d.sources {
			for _, ws := range m.workers {
				if ws.live && ws.addr == src.Addr && ws.id != assignee.id {
					victim = ws
					break
				}
			}
			if victim != assignee {
				break
			}
		}
		m.mu.Unlock()
	}
	m.flog.Append(fault.Event{Phase: d.phase, Task: d.task, Attempt: d.attempt, Kind: "worker-kill", Worker: victim.id})
	if kf := m.opts.KillFn; kf != nil {
		_ = kf(victim.pid)
		return
	}
	if victim.pid > 0 && victim.pid != os.Getpid() {
		_ = syscall.Kill(victim.pid, syscall.SIGKILL)
	}
}

// masterService hosts the control-plane RPC calls workers make.
type masterService struct {
	m *Master
}

// Register admits a worker into the pool.
func (s *masterService) Register(args RegisterArgs, reply *RegisterReply) error {
	m := s.m
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("mapreduce: master stopped")
	}
	m.nextWorker++
	id := m.nextWorker
	m.workers[id] = &workerState{
		id: id, addr: args.Addr, pid: args.PID, canServe: args.CanServe,
		live: true, lastBeat: time.Now(),
		inflight: make(map[int64]*dispatch),
	}
	m.live++
	live := m.live
	m.mu.Unlock()
	if r := m.opts.Metrics; r != nil {
		r.Inc(MetricWorkersRegistered, 1)
		r.SetGauge(GaugeWorkersLive, float64(live))
	}
	m.flog.Append(fault.Event{Kind: "worker-register", Worker: id})
	reply.WorkerID = id
	reply.HeartbeatEvery = m.opts.HeartbeatEvery
	reply.Lease = m.opts.Lease
	return nil
}

// Heartbeat renews the worker's lease. OK=false tells a worker the master
// forgot it (lease expired); it must re-register.
func (s *masterService) Heartbeat(args HeartbeatArgs, reply *HeartbeatReply) error {
	reply.OK = s.m.renewLease(args.WorkerID)
	if reply.OK {
		reply.Epochs = s.m.epochSnapshot()
	}
	if s.m.opts.RecordHeartbeats {
		kind := "heartbeat"
		if !reply.OK {
			kind = "heartbeat-rejected"
		}
		s.m.hblog.Append(fault.Event{Kind: kind, Worker: args.WorkerID})
	}
	return nil
}

// GetTask long-polls for work. The poll doubles as a heartbeat. The
// pending list is scanned for a dispatch local to this worker (one whose
// split replicas it holds) before falling back to the oldest dispatch.
func (s *masterService) GetTask(args GetTaskArgs, reply *TaskAssignment) error {
	m := s.m
	if !m.renewLease(args.WorkerID) {
		reply.Phase = TaskNone
		return nil
	}
	deadline := time.NewTimer(m.opts.PollWait)
	defer deadline.Stop()
	for {
		m.mu.Lock()
		ws := m.workers[args.WorkerID]
		if ws == nil || !ws.live {
			// The poller died between lease renewal and the scan; it
			// takes nothing.
			m.mu.Unlock()
			reply.Phase = TaskNone
			return nil
		}
		d := m.takePendingLocked(args.WorkerID)
		if d != nil {
			ws.inflight[d.id] = d
			m.mu.Unlock()
			if r := m.opts.Metrics; r != nil {
				r.Inc(MetricTasksDispatched, 1)
				if m.plane != nil && d.phase == TaskMap {
					if d.holds(args.WorkerID) {
						r.Inc(MetricDispatchLocal, 1)
					} else {
						r.Inc(MetricDispatchNonlocal, 1)
					}
				}
			}
			m.maybeKill(d, ws)
			reply.DispatchID = d.id
			reply.Phase = d.phase
			reply.JobID = d.jobID
			reply.Task = d.task
			reply.Attempt = d.attempt
			reply.JobKind = d.jobKind
			reply.Conf = d.conf
			reply.NumShards = d.nshards
			reply.Sources = d.sources
			reply.Meta = d.meta
			return nil
		}
		wake := m.waitCh
		m.mu.Unlock()
		select {
		case <-wake:
			// A submit happened; rescan.
		case <-deadline.C:
			reply.Phase = TaskNone
			return nil
		case <-m.stop:
			reply.Phase = TaskNone
			return nil
		}
	}
}

// ReadSplit ships a map task's split records to the worker — the remote
// DFS read path.
func (s *masterService) ReadSplit(args ReadSplitArgs, reply *WireSplit) error {
	r := s.m.run(args.JobID)
	if r == nil {
		return fmt.Errorf("mapreduce: no active run %d", args.JobID)
	}
	if args.Task < 0 || args.Task >= len(r.splits) {
		return fmt.Errorf("mapreduce: run %d has no task %d", args.JobID, args.Task)
	}
	sp := r.splits[args.Task]
	*reply = *sp.ToWire()
	if reg := s.m.opts.Metrics; reg != nil {
		var n int64
		for _, b := range sp.Blocks {
			n += b.Bytes
		}
		for _, b := range sp.Extra {
			n += b.Bytes
		}
		reg.Inc(MetricMasterEgress, n)
	}
	return nil
}

// TaskDone receives an attempt's outcome and routes it to the waiting
// dispatcher. Reports for dispatches already failed (presumed-dead
// worker, abandoned deadline attempt, finished run) are dropped.
func (s *masterService) TaskDone(args TaskDoneArgs, reply *TaskDoneReply) error {
	m := s.m
	m.renewLease(args.WorkerID)
	m.mu.Lock()
	d := m.dispatches[args.DispatchID]
	var addr string
	if d != nil {
		delete(m.dispatches, d.id)
		if ws := m.workers[args.WorkerID]; ws != nil {
			delete(ws.inflight, d.id)
			addr = ws.addr
		}
	}
	m.mu.Unlock()
	if reg := m.opts.Metrics; reg != nil {
		// Runtime traffic accounting from the attempt's read path; these
		// live in the master's system registry, never the job registry.
		if args.LocalReads > 0 {
			reg.Inc(MetricDFSLocalReads, args.LocalReads)
			reg.Inc(MetricDFSLocalBytes, args.LocalBytes)
		}
		if args.RemoteReads > 0 {
			reg.Inc(MetricDFSRemoteReads, args.RemoteReads)
			reg.Inc(MetricDFSRemoteBytes, args.RemoteBytes)
		}
	}
	if d == nil {
		return nil
	}
	res := dispatchResult{
		workerID:   args.WorkerID,
		workerAddr: addr,
		out:        args.Out,
		metrics:    args.Metrics,
		recordsIn:  args.RecordsIn,
		pairs:      args.Pairs,
		bytes:      args.Bytes,
		lostMaps:   args.LostMaps,
	}
	if args.Err != "" {
		err := fmt.Errorf("mapreduce: remote %s task %d: %s", d.phase, d.task, args.Err)
		if args.Transient {
			res.err = fault.Transient(err)
		} else {
			res.err = err
		}
	}
	d.finish(res)
	return nil
}

// masterShards serves shards produced by in-process (fallback or
// re-issued) map attempts — under the same Shards.FetchChunk contract
// workers serve their spill files with — and replicated block frames for
// workers that reached no replica.
type masterShards struct {
	m *Master
}

// FetchChunk returns one chunk of a master-held shard stream.
func (s *masterShards) FetchChunk(args FetchChunkArgs, reply *FetchChunkReply) error {
	r := s.m.run(args.JobID)
	if r == nil {
		return fmt.Errorf("mapreduce: no active run %d", args.JobID)
	}
	frame, ok := r.masterShard(args.Task, args.Attempt, args.Reduce)
	if !ok {
		return fmt.Errorf("mapreduce: master holds no shard j%d/m%d.a%d.r%d", args.JobID, args.Task, args.Attempt, args.Reduce)
	}
	if args.Offset < 0 || args.Offset > int64(len(frame)) {
		return fmt.Errorf("mapreduce: chunk offset %d outside shard of %d bytes", args.Offset, len(frame))
	}
	end := int64(len(frame))
	if args.MaxBytes > 0 && args.Offset+int64(args.MaxBytes) < end {
		end = args.Offset + int64(args.MaxBytes)
	}
	reply.Data = frame[args.Offset:end]
	reply.EOF = end == int64(len(frame))
	if reg := s.m.opts.Metrics; reg != nil {
		reg.Inc(MetricMasterEgress, int64(len(reply.Data)))
	}
	return nil
}

// ReadBlock serves a replicated block's sealed frame from the master —
// the terminal fallback of the worker read chain (own replica, peers,
// master).
func (s *masterShards) ReadBlock(args ReadBlockArgs, reply *ReadBlockReply) error {
	p := s.m.plane
	if p == nil {
		return fmt.Errorf("mapreduce: data plane is off")
	}
	frame, ok := p.readFrame(dfs.BlockID(args.ID))
	if !ok {
		return fmt.Errorf("mapreduce: master holds no block %d", args.ID)
	}
	reply.Frame = frame
	if reg := s.m.opts.Metrics; reg != nil {
		reg.Inc(MetricMasterEgress, int64(len(frame)))
	}
	return nil
}
