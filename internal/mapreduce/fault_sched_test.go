package mapreduce

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/obs"
)

// fastPolicy is a retry policy tuned for test latency: tiny backoffs, a
// low speculation threshold, and the default attempt budget.
func fastPolicy() fault.RetryPolicy {
	p := fault.DefaultRetryPolicy()
	p.BaseBackoff = 100 * time.Microsecond
	p.MaxBackoff = time.Millisecond
	p.SpeculativeMin = 5 * time.Millisecond
	return p
}

// identityJob writes every input record straight to the output.
func identityJob(name string) *Job {
	return &Job{
		Name:  name,
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Write(r)
			}
			return nil
		},
		Output: "out",
	}
}

// TestDeadlineCancellation: an attempt that outlives the per-task
// deadline is abandoned and retried; a later, faster attempt wins and
// the deadline counter records the abandonment.
func TestDeadlineCancellation(t *testing.T) {
	c := newTestCluster(t, 1<<20, 4)
	c.FS().WriteFile("in", []string{"a", "b", "c"})
	pol := fastPolicy()
	pol.Speculation = false
	pol.TaskDeadline = 20 * time.Millisecond
	c.SetRetryPolicy(pol)

	var calls int64
	job := identityJob("deadline")
	inner := job.Map
	job.Map = func(ctx *TaskContext, split *Split) error {
		if atomic.AddInt64(&calls, 1) == 1 {
			time.Sleep(200 * time.Millisecond) // first attempt blows the deadline
		}
		return inner(ctx, split)
	}
	rep, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Counters[CounterDeadlineExceeded]; got == 0 {
		t.Error("deadline counter not incremented")
	}
	if got := rep.Counters[CounterRetryMap]; got == 0 {
		t.Error("deadline abandonment must count as a map retry")
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 3 {
		t.Fatalf("output = %d records, want 3 (abandoned attempt must not publish)", len(out))
	}
}

// TestSpeculativeDuplicateSuppression: a straggling primary attempt gets
// a speculative duplicate; the duplicate wins, the straggler's late
// result is suppressed, and the output has no duplicates.
func TestSpeculativeDuplicateSuppression(t *testing.T) {
	c := newTestCluster(t, 16, 4)
	var recs []string
	for i := 0; i < 40; i++ {
		recs = append(recs, fmt.Sprintf("%012d", i))
	}
	c.FS().WriteFile("in", recs)
	pol := fastPolicy()
	pol.SpeculativeFactor = 2
	c.SetRetryPolicy(pol)

	job := identityJob("straggler")
	inner := job.Map
	var straggled int64
	job.Map = func(ctx *TaskContext, split *Split) error {
		// The primary attempt of exactly one task straggles; its
		// speculative duplicate (attempt in the disjoint high range)
		// returns promptly.
		if ctx.Split().Blocks[0].ID == 1 && !ctx.Speculative() && ctx.Attempt() == 0 {
			atomic.AddInt64(&straggled, 1)
			time.Sleep(150 * time.Millisecond)
		}
		return inner(ctx, split)
	}
	rep, err := c.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&straggled) == 0 {
		t.Fatal("test straggler never ran")
	}
	if rep.Counters[CounterSpecLaunched] == 0 {
		t.Error("no speculative attempt launched against the straggler")
	}
	if rep.Counters[CounterSpecWon] == 0 {
		t.Error("speculative duplicate should have won the straggling task")
	}
	if rep.Counters[CounterSpecSuppressed] == 0 {
		t.Error("the losing attempt's output should be counted as suppressed")
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != len(recs) {
		t.Fatalf("output = %d records, want %d (no loss, no duplication)", len(out), len(recs))
	}
	sort.Strings(out)
	for i, r := range out {
		if r != fmt.Sprintf("%012d", i) {
			t.Fatalf("record %d = %q", i, r)
		}
	}
	// The suppressed attempt must appear in the trace as a duplicate.
	dups := 0
	for _, s := range rep.Trace.Spans() {
		if s.Outcome == obs.OutcomeDuplicate {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no span finished with the duplicate outcome")
	}
}

// TestCommitRetries: injected transient commit failures are retried
// under the policy, the output is written exactly once, and every commit
// span is finished (the pre-refactor leak).
func TestCommitRetries(t *testing.T) {
	// Find a seed whose commit-phase draw fails attempt 0 but not 1.
	seed := int64(-1)
	for s := int64(0); s < 10_000; s++ {
		if fault.Uniform(s, fault.PhaseCommit, 0, 0) < 0.6 && fault.Uniform(s, fault.PhaseCommit, 0, 1) >= 0.6 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no suitable seed found")
	}
	c := newTestCluster(t, 1<<20, 4)
	c.FS().WriteFile("in", []string{"a", "b"})
	c.SetRetryPolicy(fastPolicy())
	// ReduceFailRate drives commit injection; the job has no reduce phase,
	// so only the commit step draws from it.
	c.SetFault(fault.Plan{Seed: seed, ReduceFailRate: 0.6})

	rep, err := c.Run(identityJob("commit-retry"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Counters[CounterRetryCommit]; got != 1 {
		t.Errorf("commit retries = %d, want 1", got)
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 2 {
		t.Fatalf("output = %d records, want 2", len(out))
	}
	commits := 0
	for _, s := range rep.Trace.Spans() {
		if s.Phase == obs.PhaseCommit {
			commits++
			if s.Outcome == "" {
				t.Error("unfinished commit span")
			}
		}
	}
	if commits != 2 {
		t.Errorf("commit spans = %d, want 2 (failed attempt + winner)", commits)
	}
}

// TestChecksumFailureFailsJob: a genuinely corrupted block (checksum
// mismatch on every re-read) exhausts the retry budget and fails the job
// with the typed dfs error.
func TestChecksumFailureFailsJob(t *testing.T) {
	c := newTestCluster(t, 1<<20, 4)
	c.FS().WriteFile("in", []string{"a", "b", "c"})
	if err := c.FS().CorruptBlock("in", 0); err != nil {
		t.Fatal(err)
	}
	pol := fastPolicy()
	pol.Speculation = false
	c.SetRetryPolicy(pol)

	_, err := c.Run(identityJob("corrupt"))
	if err == nil {
		t.Fatal("job over a corrupted block must fail")
	}
	if !errors.Is(err, dfs.ErrChecksum) {
		t.Fatalf("error = %v, want dfs.ErrChecksum", err)
	}
}

// TestInjectedCorruptReadHeals: an injector-produced checksum mismatch is
// transient — the retry draws a fresh coordinate and reads clean — so the
// job succeeds and records the checksum failure.
func TestInjectedCorruptReadHeals(t *testing.T) {
	// Find a seed where map task 0 attempt 0 draws corrupt and attempt 1
	// draws nothing.
	seed := int64(-1)
	for s := int64(0); s < 10_000; s++ {
		if fault.Uniform(s, fault.PhaseMap, 0, 0) < 0.5 && fault.Uniform(s, fault.PhaseMap, 0, 1) >= 0.5 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no suitable seed found")
	}
	c := newTestCluster(t, 1<<20, 4)
	c.FS().WriteFile("in", []string{"a", "b", "c"})
	c.SetRetryPolicy(fastPolicy())
	c.SetFault(fault.Plan{Seed: seed, CorruptBlockRate: 0.5})

	rep, err := c.Run(identityJob("healing-read"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters[CounterChecksumFailures] == 0 {
		t.Error("checksum failure counter not incremented")
	}
	if rep.Counters[CounterRetryMap] == 0 {
		t.Error("injected corrupt read must be retried")
	}
	out, _ := c.FS().ReadAll("out")
	if len(out) != 3 {
		t.Fatalf("output = %d records, want 3", len(out))
	}
}

// TestPermanentFailureNotRetried: a permanent injected failure fails the
// job without burning the retry budget.
func TestPermanentFailureNotRetried(t *testing.T) {
	// Find a seed where map task 0 attempt 0 draws the permanent band.
	seed := int64(-1)
	for s := int64(0); s < 10_000; s++ {
		if fault.Uniform(s, fault.PhaseMap, 0, 0) < 0.9 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no suitable seed found")
	}
	c := newTestCluster(t, 1<<20, 4)
	c.FS().WriteFile("in", []string{"a"})
	pol := fastPolicy()
	pol.Speculation = false
	c.SetRetryPolicy(pol)
	c.SetFault(fault.Plan{Seed: seed, PermanentFailRate: 0.9})

	rep, err := c.Run(identityJob("permanent"))
	if err == nil {
		t.Fatal("permanent failure must fail the job")
	}
	if rep != nil {
		t.Fatal("failed run must not return a report")
	}
	if errors.Is(err, fault.ErrInjected) {
		var ie *fault.InjectedError
		if !errors.As(err, &ie) || !ie.Permanent {
			t.Fatalf("error detail = %v", err)
		}
	} else {
		t.Fatalf("error = %v, want injected", err)
	}
}

// TestAllSpansFinishedUnderChaos: after a chaotic but successful run,
// every span in the trace carries an outcome — no span leaks open on any
// retry or failure path.
func TestAllSpansFinishedUnderChaos(t *testing.T) {
	c := newTestCluster(t, 64, 4)
	var recs []string
	for i := 0; i < 60; i++ {
		recs = append(recs, fmt.Sprintf("k%d\t%012d", i%7, i))
	}
	c.FS().WriteFile("in", recs)
	c.SetRetryPolicy(fastPolicy())
	c.SetFault(fault.Plan{Seed: 11, MapFailRate: 0.3, ReduceFailRate: 0.2, StragglerRate: 0.1, CorruptBlockRate: 0.1})

	rep, err := c.Run(&Job{
		Name:  "chaotic",
		Input: []string{"in"},
		Map: func(ctx *TaskContext, split *Split) error {
			for _, r := range split.Records() {
				ctx.Emit(r[:2], r)
			}
			return nil
		},
		Reduce: func(ctx *TaskContext, key string, values []string) error {
			ctx.Write(fmt.Sprintf("%s=%d", key, len(values)))
			return nil
		},
		NumReducers: 3,
		Output:      "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Trace.Spans() {
		if s.Outcome == "" {
			t.Errorf("span %s (phase %s attempt %d) has no outcome", s.Name, s.Phase, s.Attempt)
		}
	}
	var faults int64
	for _, name := range []string{
		CounterRetryMap, CounterRetryReduce, CounterRetryCommit,
		CounterStragglersInjected, CounterChecksumFailures,
	} {
		faults += rep.Counters[name]
	}
	if faults == 0 {
		t.Error("chaos plan injected nothing; raise the rates or change the seed")
	}
}

// TestRetryPolicyRoundTrip pins the accessor pair and the shim semantics:
// InjectFailures installs a legacy every-k-th plan and 0 clears it.
func TestRetryPolicyRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1<<20, 2)
	pol := fault.RetryPolicy{MaxAttempts: 7, BaseBackoff: time.Millisecond}
	c.SetRetryPolicy(pol)
	if got := c.RetryPolicy(); got != pol {
		t.Errorf("RetryPolicy = %+v, want %+v", got, pol)
	}
	c.InjectFailures(3)
	in := c.Injector()
	if in == nil || in.Plan().FailEveryKth != 3 {
		t.Fatalf("InjectFailures(3) installed %+v", in.Plan())
	}
	c.InjectFailures(0)
	if c.Injector() != nil {
		t.Error("InjectFailures(0) must clear the injector")
	}
}
