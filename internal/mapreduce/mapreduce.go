// Package mapreduce implements the MapReduce runtime the paper's
// algorithms run on: a master that turns a job into map and reduce tasks,
// a pool of simulated worker nodes, a hash shuffle, combiners, job metrics,
// and a CommitJob hook (used by the Voronoi H-merge step). The spatial
// extensions of SpatialHadoop plug in through the Filter hook, which plays
// the role of the SpatialFileSplitter: it sees the global index of the
// input and decides which splits become map tasks.
//
// Every job run is observed: an obs.Trace records one span per map
// attempt, shuffle, reduce partition and commit, and an obs.Registry
// collects counters, gauges and histograms. Tasks buffer their metrics in
// task-local obs.TaskMetrics and the runtime merges a buffer into the
// registry only when the attempt succeeds, so hot paths take no locks per
// emitted value and retried attempts are never double-counted. The Report
// returned by Run embeds the trace and a metrics snapshot.
package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"spatialhadoop/internal/dfs"
	"spatialhadoop/internal/fault"
	"spatialhadoop/internal/geom"
	"spatialhadoop/internal/obs"
	"spatialhadoop/internal/sindex"
)

// Split is the unit of work handed to one map task. For heap files a split
// is one block; for spatially indexed files it is one partition (all blocks
// sharing a partition key); operations over pairs of partitions (farthest
// pair) build splits holding two partitions.
type Split struct {
	// Partition is the partition key ("" for heap blocks).
	Partition string
	// MBR is the partition boundary rectangle. For heap files it is the
	// whole-file MBR, which conveys no pruning information — exactly the
	// situation of plain Hadoop.
	MBR geom.Rect
	// ContentMBR is the minimal MBR of the split's records (set by the
	// spatial layer for indexed files; empty otherwise). Dominance filters
	// consult it because minimality guarantees records on every edge.
	ContentMBR geom.Rect
	// Blocks are the data blocks of the split.
	Blocks []*dfs.Block
	// Extra optionally carries a second group of blocks, used by pair
	// splits; nil otherwise.
	Extra []*dfs.Block
	// Tag is operation-specific information attached by a Filter.
	Tag string
}

// Cover returns a rectangle guaranteed to contain every record of the
// split: the partition boundary united with the content MBR. Overlapping
// techniques derive the boundary from the loader's sample, so records
// routed to the partition later may lie outside MBR; pruning filters must
// test Cover. Replication dedup must NOT use it — the reference-point rule
// needs the boundary tiling (MBR) of disjoint techniques.
func (s *Split) Cover() geom.Rect {
	if s.ContentMBR.IsEmpty() {
		return s.MBR
	}
	return s.MBR.Union(s.ContentMBR)
}

// Records returns all records of the primary block group. For single-block
// splits the block's record slice is returned directly (no copy); it must
// not be modified.
func (s *Split) Records() []string {
	if len(s.Blocks) == 1 {
		return s.Blocks[0].Records()
	}
	n := 0
	for _, b := range s.Blocks {
		n += b.NumRecords()
	}
	out := make([]string, 0, n)
	for _, b := range s.Blocks {
		out = append(out, b.Records()...)
	}
	return out
}

// ExtraRecords returns the records of the secondary block group, sharing
// the block's slice for single-block groups like Records.
func (s *Split) ExtraRecords() []string {
	if len(s.Extra) == 1 {
		return s.Extra[0].Records()
	}
	n := 0
	for _, b := range s.Extra {
		n += b.NumRecords()
	}
	out := make([]string, 0, n)
	for _, b := range s.Extra {
		out = append(out, b.Records()...)
	}
	return out
}

// Points returns the records of the primary block group decoded as points,
// served from each block's decode cache: a block is parsed once per file
// lifetime, not once per map attempt, so retried attempts and multi-job
// pipelines (index build → query → query) skip the strconv hot path
// entirely. The returned slice is shared for single-block splits and must
// not be modified.
func (s *Split) Points() ([]geom.Point, error) {
	return blocksPoints(s.Blocks)
}

// ExtraPoints is Points for the secondary block group of pair splits.
func (s *Split) ExtraPoints() ([]geom.Point, error) {
	return blocksPoints(s.Extra)
}

func blocksPoints(blocks []*dfs.Block) ([]geom.Point, error) {
	if len(blocks) == 1 {
		return blocks[0].Points()
	}
	n := 0
	for _, b := range blocks {
		n += b.NumRecords()
	}
	out := make([]geom.Point, 0, n)
	for _, b := range blocks {
		pts, err := b.Points()
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// NumRecords returns the record count across both groups.
func (s *Split) NumRecords() int {
	n := 0
	for _, b := range s.Blocks {
		n += b.NumRecords()
	}
	for _, b := range s.Extra {
		n += b.NumRecords()
	}
	return n
}

// Pair is one intermediate key-value pair.
type Pair struct {
	Key   string
	Value string
}

// TaskContext is passed to map and reduce functions. It provides counters
// and direct final output (the "early flush" channel used by the pruning
// steps of the enhanced algorithms).
type TaskContext struct {
	job     *runningJob
	split   *Split // nil in reduce tasks
	metrics *obs.TaskMetrics
	out     []string
	// shards is the map-side partitioned shuffle output: emitted pairs are
	// bucketed by reducer as they are produced, so the master-side shuffle
	// only concatenates per-reducer runs instead of hashing every pair in
	// one sequential loop.
	shards  [][]Pair
	nshards int
	// attempt is the attempt ordinal running this task (speculative
	// duplicates use the disjoint specAttempt range).
	attempt int
}

// Split returns the split being processed (nil in a reduce task).
func (c *TaskContext) Split() *Split { return c.split }

// Attempt returns the attempt number of the running task: retries of the
// same task count up from 0; speculative duplicates run in a disjoint
// high range (see Speculative).
func (c *TaskContext) Attempt() int { return c.attempt }

// Speculative reports whether this attempt is a speculative duplicate
// launched against a straggling primary attempt.
func (c *TaskContext) Speculative() bool { return c.attempt >= specAttempt }

// Emit produces an intermediate pair for the shuffle, bucketing it into
// the destination reducer's shard at emit time.
func (c *TaskContext) Emit(key, value string) {
	if c.shards == nil {
		if c.nshards < 1 {
			c.nshards = 1
		}
		c.shards = make([][]Pair, c.nshards)
	}
	si := 0
	if c.nshards > 1 {
		si = partitionOf(key, c.nshards)
	}
	c.shards[si] = append(c.shards[si], Pair{Key: key, Value: value})
}

// numEmitted returns the pair count across all shards.
func (c *TaskContext) numEmitted() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh)
	}
	return n
}

// Write writes a record directly to the job output, bypassing the shuffle.
// It implements the early-flush pruning channel: safe Voronoi regions,
// clipped union segments and final skyline points go straight to the output
// file. Writes are buffered per task and committed atomically when the task
// succeeds, so task retries do not duplicate output.
func (c *TaskContext) Write(record string) {
	c.out = append(c.out, record)
}

// Inc adds delta to a named job counter. The increment lands in the task's
// local buffer (no locks) and becomes visible in the job metrics only when
// the attempt succeeds, so retried attempts never double-count.
func (c *TaskContext) Inc(name string, delta int64) {
	if c.metrics != nil {
		c.metrics.Inc(name, delta)
		return
	}
	c.job.reg.Inc(name, delta)
}

// Observe records one observation into a named job histogram, buffered
// like Inc.
func (c *TaskContext) Observe(name string, v float64) {
	if c.metrics != nil {
		c.metrics.Observe(name, v)
		return
	}
	c.job.reg.Observe(name, v)
}

// Config returns the job configuration value for key ("" when absent).
// It models Hadoop's job configuration broadcast: small values (such as the
// serialized global dominance-power set) are shipped to every task.
func (c *TaskContext) Config(key string) string { return c.job.job.Conf[key] }

// MapFunc processes one split. It may Emit intermediate pairs and/or Write
// final output directly.
type MapFunc func(ctx *TaskContext, split *Split) error

// ReduceFunc processes one key group.
type ReduceFunc func(ctx *TaskContext, key string, values []string) error

// FilterFunc selects and shapes the splits that become map tasks. It is
// SpatialHadoop's filter function: it sees partition-level metadata only
// (never records) and prunes partitions that cannot contribute to the
// answer.
type FilterFunc func(splits []*Split) []*Split

// CommitFunc runs once on the master after all reducers finish. It may
// read files and append final output records (the Voronoi H-merge step).
type CommitFunc func(cluster *Cluster, addOutput func(record string)) error

// Job describes one MapReduce job.
type Job struct {
	Name string
	// Kind optionally names a registered job kind (see RegisterKind).
	// Functions are Go closures and cannot ship over RPC, so only jobs
	// carrying a Kind are eligible for remote execution on worker
	// processes: both sides rebuild Map/Combine/Reduce from the kind's
	// builder and Conf. Jobs without a Kind always run in process.
	Kind string
	// Input files (already stored in the cluster's file system).
	Input []string
	// Splits, when non-nil, is used instead of the default one-per-block
	// (or one-per-partition) splits derived from Input. The spatial layer
	// builds splits carrying partition MBRs from the file's global index.
	Splits []*Split
	// Filter optionally prunes/shapes splits (requires indexed input to be
	// useful). Nil means all splits are processed.
	Filter FilterFunc
	// Map is required.
	Map MapFunc
	// Combine optionally pre-aggregates map output per task.
	Combine ReduceFunc
	// Reduce is optional; a map-only job writes only direct output.
	Reduce ReduceFunc
	// NumReducers defaults to 1 (the single-reducer merge bottleneck the
	// paper's enhanced algorithms eliminate).
	NumReducers int
	// Commit optionally post-processes on the master.
	Commit CommitFunc
	// Output is the output file name (required).
	Output string
	// Conf carries broadcast configuration values.
	Conf map[string]string
}

// Counters is a compatibility shim over the job's obs.Registry, retained
// for callers written against the original flat counter map. Increments
// take the registry mutex (they are mutex-based, not atomics), which is
// why the runtime's hot paths use per-task obs.TaskMetrics buffers merged
// once per task instead of this type.
type Counters struct {
	reg *obs.Registry
}

// Inc adds delta to counter name.
func (c *Counters) Inc(name string, delta int64) { c.reg.Inc(name, delta) }

// Get returns the value of counter name.
func (c *Counters) Get(name string) int64 { return c.reg.Counter(name) }

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 { return c.reg.Snapshot().Counters }

// Standard counter names maintained by the runtime.
const (
	CounterSplitsTotal    = "splits.total"
	CounterSplitsFiltered = "splits.filtered"
	CounterSplitsMapped   = "splits.mapped"
	CounterMapRecordsIn   = "map.records.in"
	CounterMapRecordsOut  = "map.records.out"
	CounterShuffleBytes   = "shuffle.bytes"
	CounterShufflePairs   = "shuffle.pairs"
	CounterReduceGroups   = "reduce.groups"
	CounterOutputRecords  = "output.records"
	CounterTaskRetries    = "task.retries"
)

// Fault-tolerance counter names maintained by the scheduler. They feed
// the fault table of Report.WriteSummary and the chaos soak assertions.
const (
	// CounterRetryMap/Reduce/Commit break CounterTaskRetries down by phase.
	CounterRetryMap    = "fault.retry.map"
	CounterRetryReduce = "fault.retry.reduce"
	CounterRetryCommit = "fault.retry.commit"
	// CounterSpecLaunched counts speculative duplicate attempts launched
	// against stragglers; CounterSpecWon counts duplicates that finished
	// first; CounterSpecSuppressed counts attempts (either side) whose
	// output was discarded because the other attempt had already won.
	CounterSpecLaunched   = "fault.spec.launched"
	CounterSpecWon        = "fault.spec.won"
	CounterSpecSuppressed = "fault.spec.suppressed"
	// CounterStragglersInjected counts attempts the injector delayed.
	CounterStragglersInjected = "fault.stragglers.injected"
	// CounterDeadlineExceeded counts attempts abandoned at the per-task
	// deadline.
	CounterDeadlineExceeded = "fault.deadline.exceeded"
	// CounterChecksumFailures counts block reads that surfaced a checksum
	// mismatch (real or injected).
	CounterChecksumFailures = "fault.checksum.failures"
)

// Gauge names maintained by the runtime.
const (
	// GaugeFilterPruneRatio is the fraction of splits the filter function
	// pruned (0 when the job had no filter or no splits).
	GaugeFilterPruneRatio = "filter.prune.ratio"
)

// Histogram names maintained by the runtime.
const (
	HistMapTaskDurationUS    = "map.task.duration_us"
	HistMapTaskRecordsIn     = "map.task.records_in"
	HistMapTaskShuffleBytes  = "map.task.shuffle_bytes"
	HistReduceTaskDurationUS = "reduce.task.duration_us"
	HistReducePartRecords    = "reduce.partition.records"
)

// Report summarizes one finished job.
type Report struct {
	Job         string
	Splits      int // splits after filtering
	SplitsTotal int // splits before filtering
	MapTasks    int
	ReduceTasks int
	Counters    map[string]int64
	MapTime     time.Duration
	ShuffleTime time.Duration
	ReduceTime  time.Duration
	CommitTime  time.Duration
	Total       time.Duration
	OutputFile  string
	OutputCount int64
	WorkersUsed int

	// MapWorkSum/MapTaskMax aggregate the CPU time of the individual map
	// tasks (successful attempts only); ReduceWorkSum/ReduceTaskMax do the
	// same for reduce tasks. They feed SimulatedParallel.
	MapWorkSum    time.Duration
	MapTaskMax    time.Duration
	ReduceWorkSum time.Duration
	ReduceTaskMax time.Duration

	// Metrics is the job's full metrics snapshot (Counters above is its
	// counter section, kept for compatibility).
	Metrics *obs.Snapshot
	// Trace is the job's span log: one span per map attempt, shuffle,
	// reduce partition and commit, under a single job root span.
	Trace *obs.Trace
}

// SimulatedParallel estimates the job's makespan on a cluster with the
// given number of worker machines using the standard LPT bound per phase:
// max(total work / workers, longest task). It lets a run on a small host
// report what the paper's 25-node deployment would observe, modulo network
// costs (which this runtime does not charge).
func (r *Report) SimulatedParallel(workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	phase := func(sum, max time.Duration) time.Duration {
		ideal := sum / time.Duration(workers)
		if max > ideal {
			return max
		}
		return ideal
	}
	return phase(r.MapWorkSum, r.MapTaskMax) +
		r.ShuffleTime +
		phase(r.ReduceWorkSum, r.ReduceTaskMax) +
		r.CommitTime
}

// Cluster is the compute side: a file system plus a pool of worker slots.
// One Cluster models the paper's 25-machine deployment; a Cluster with one
// worker is the "single machine" configuration.
type Cluster struct {
	fs      *dfs.FileSystem
	workers int
	// slots is the cluster-wide worker slot pool shared by every
	// concurrently running job: all map, reduce and speculative attempts
	// acquire from it, so N racing RunCtx calls share one cap instead of
	// oversubscribing the cluster N-fold.
	slots *SlotPool

	mu       sync.Mutex
	injector *fault.Injector
	policy   fault.RetryPolicy
	admit    *admission
	// master is the distributed runtime's coordinator, nil in the default
	// fully in-process configuration (see StartMaster).
	master *Master
}

// NewCluster creates a cluster over fs with the given number of worker
// slots. The worker count is the modelled cluster size: it bounds the
// total task parallelism across all concurrent jobs (through the shared
// SlotPool), and it feeds reducer counts and SimulatedParallel.
func NewCluster(fs *dfs.FileSystem, workers int) *Cluster {
	if workers <= 0 {
		workers = 1
	}
	return &Cluster{
		fs:      fs,
		workers: workers,
		slots:   NewSlotPool(workers),
		policy:  fault.DefaultRetryPolicy(),
	}
}

// Slots returns the cluster's shared worker slot pool.
func (c *Cluster) Slots() *SlotPool { return c.slots }

// execSlots returns the cap on concurrently executing tasks — the shared
// pool's capacity.
func (c *Cluster) execSlots() int {
	return c.slots.Cap()
}

// FS returns the cluster's file system.
func (c *Cluster) FS() *dfs.FileSystem { return c.fs }

// Workers returns the number of worker slots.
func (c *Cluster) Workers() int { return c.workers }

// SetFault installs a seeded fault plan driving the injector for all
// subsequent jobs. A disabled (zero) plan clears injection. The injector
// is replaced wholesale, resetting its event log and legacy counter.
func (c *Cluster) SetFault(p fault.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !p.Enabled() {
		c.injector = nil
		return
	}
	c.injector = fault.NewInjector(p)
}

// Injector returns the cluster's current fault injector (nil when no
// plan is installed).
func (c *Cluster) Injector() *fault.Injector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injector
}

// SetRetryPolicy replaces the scheduler's retry policy for subsequent
// jobs.
func (c *Cluster) SetRetryPolicy(p fault.RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
}

// RetryPolicy returns the scheduler's current retry policy.
func (c *Cluster) RetryPolicy() fault.RetryPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy
}

// InjectFailures makes every k-th map task attempt fail once with a
// transient error (0 disables).
//
// Deprecated: InjectFailures is a shim over SetFault, kept for callers of
// the original knob; new code should install a fault.Plan directly.
func (c *Cluster) InjectFailures(k int) {
	if k <= 0 {
		c.SetFault(fault.Plan{})
		return
	}
	c.SetFault(fault.Plan{FailEveryKth: k})
}

type runningJob struct {
	job   *Job
	reg   *obs.Registry
	trace *obs.Trace
	// nshards is the effective reducer count; map tasks bucket their
	// emitted pairs into this many shards.
	nshards int
}

// Run executes the job and returns its report.
func (c *Cluster) Run(job *Job) (*Report, error) {
	return c.RunCtx(context.Background(), job)
}

// RunCtx executes the job under a context: cancelling it stops new
// attempts (tasks in flight finish their current attempt). When an
// admission controller is installed (SetAdmission), the job first passes
// admission: it may queue behind other jobs, be rejected with
// ErrOverloaded when the queue is full, or run under the configured
// per-job deadline.
func (c *Cluster) RunCtx(ctx context.Context, job *Job) (*Report, error) {
	if a := c.admission(); a != nil {
		// queue.wait covers the admission gate: on a loaded cluster this is
		// where a request trace shows the job sitting behind other jobs.
		_, qs := obs.StartSpan(ctx, "queue.wait")
		release, err := a.enter(ctx)
		qs.End()
		if err != nil {
			return nil, err
		}
		defer release()
		if a.cfg.JobDeadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, a.cfg.JobDeadline)
			defer cancel()
		}
	}
	return c.runJob(ctx, job)
}

// runJob executes one admitted job.
func (c *Cluster) runJob(ctx context.Context, job *Job) (*Report, error) {
	if job.Map == nil {
		return nil, fmt.Errorf("mapreduce: job %q has no map function", job.Name)
	}
	if job.Output == "" {
		return nil, fmt.Errorf("mapreduce: job %q has no output file", job.Name)
	}
	start := time.Now()
	numRed := job.NumReducers
	if numRed <= 0 {
		numRed = 1
	}
	rj := &runningJob{job: job, reg: obs.NewRegistry(), trace: obs.NewTrace(job.Name), nshards: numRed}
	// When the context carries a request trace (serving path), mirror the
	// job into it: a "job" span parents per-phase spans, which in turn
	// parent the scheduler's slot.wait spans. Batch callers carry no trace
	// and all of these are free no-ops.
	ctx, jspan := obs.StartSpan(ctx, "job")
	jspan.SetAttr("name", job.Name)
	defer jspan.End()
	root := rj.trace.Start(job.Name, obs.PhaseJob, 0, -1)
	// fail finishes the root span on every error path so traces never
	// leak open spans.
	fail := func(err error) (*Report, error) {
		root.Finish(obs.OutcomeFailed)
		return nil, err
	}
	pol := c.RetryPolicy()

	splits := job.Splits
	if splits == nil {
		var err error
		splits, err = c.MakeSplits(job.Input)
		if err != nil {
			return fail(err)
		}
	}
	total := len(splits)
	rj.reg.Inc(CounterSplitsTotal, int64(total))
	if job.Filter != nil {
		fspan := rj.trace.Start("filter", obs.PhaseFilter, root.ID, -1)
		fspan.RecordsIn = int64(total)
		_, frs := obs.StartSpan(ctx, "phase.filter")
		splits = job.Filter(splits)
		frs.SetAttr("splits_in", fmt.Sprint(total))
		frs.SetAttr("splits_out", fmt.Sprint(len(splits)))
		frs.End()
		fspan.RecordsOut = int64(len(splits))
		fspan.Finish(obs.OutcomeOK)
		rj.reg.Inc(CounterSplitsFiltered, int64(total-len(splits)))
	}
	rj.reg.Inc(CounterSplitsMapped, int64(len(splits)))
	if total > 0 {
		rj.reg.SetGauge(GaugeFilterPruneRatio, float64(total-len(splits))/float64(total))
	}

	// When a master runtime is up with live workers and the job carries a
	// registered kind, tasks execute on remote worker processes; rem stays
	// nil otherwise and everything below runs in process as before.
	rem := c.startRemote(rj, job, splits, numRed, root.ID)
	if rem != nil {
		defer rem.close()
	}

	// ---- Map phase ----
	mapStart := time.Now()
	mapCtx, mapSpan := obs.StartSpan(ctx, "phase.map")
	mapSpan.SetAttr("tasks", fmt.Sprint(len(splits)))
	type mapResult struct {
		// shards holds the task's emitted pairs pre-bucketed by reducer.
		shards [][]Pair
		out    []string
		// pairs/bytes are the task's shuffle totals, computed once here and
		// reused by both the task counters and the shuffle span, so the two
		// never disagree.
		pairs int64
		bytes int64
		dur   time.Duration
	}
	results := make([]mapResult, len(splits))
	ms := newSched(c, rj, obs.PhaseMap, root.ID, pol, CounterRetryMap)
	for i := range splits {
		i, split := i, splits[i]
		var blk *dfs.Block
		if len(split.Blocks) > 0 {
			blk = split.Blocks[0]
		}
		ms.addTask(i, fmt.Sprintf("map-%d", i), split.Partition, blk, func(attempt int) (attemptOut, error) {
			if rem != nil {
				res, err := rem.mapAttempt(split, i, attempt)
				if err != nil {
					return attemptOut{}, err
				}
				// Mirror the in-process bookkeeping onto the shipped metrics
				// buffer so counters and histograms are identical either way.
				tm := res.tm
				tm.Inc(CounterShuffleBytes, res.bytes)
				tm.Inc(CounterShufflePairs, res.pairs)
				tm.Observe(HistMapTaskRecordsIn, float64(res.recordsIn))
				tm.Observe(HistMapTaskShuffleBytes, float64(res.bytes))
				return attemptOut{
					recordsIn:  res.recordsIn,
					recordsOut: res.pairs + int64(len(res.out)),
					bytes:      res.bytes,
					apply: func(dur time.Duration) {
						tm.Observe(HistMapTaskDurationUS, float64(dur.Microseconds()))
						rj.reg.Merge(tm)
						// Publishing the shard location under the win gate
						// guarantees reducers fetch exactly one attempt's
						// shards, whichever attempt won.
						res.publish()
						results[i] = mapResult{out: res.out, pairs: res.pairs, bytes: res.bytes, dur: dur}
					},
				}, nil
			}
			shards, out, tm, err := runMapAttempt(rj, split, attempt)
			if err != nil {
				// The attempt's metric buffer is dropped with the attempt.
				return attemptOut{}, err
			}
			// Shuffle totals are summed here, once per successful task,
			// instead of under a registry mutex per pair.
			var pairs, bytes int64
			for _, shard := range shards {
				pairs += int64(len(shard))
				for _, p := range shard {
					bytes += int64(len(p.Key) + len(p.Value))
				}
			}
			tm.Inc(CounterShuffleBytes, bytes)
			tm.Inc(CounterShufflePairs, pairs)
			tm.Observe(HistMapTaskRecordsIn, float64(split.NumRecords()))
			tm.Observe(HistMapTaskShuffleBytes, float64(bytes))
			return attemptOut{
				recordsIn:  int64(split.NumRecords()),
				recordsOut: pairs + int64(len(out)),
				bytes:      bytes,
				apply: func(dur time.Duration) {
					tm.Observe(HistMapTaskDurationUS, float64(dur.Microseconds()))
					rj.reg.Merge(tm)
					results[i] = mapResult{shards: shards, out: out, pairs: pairs, bytes: bytes, dur: dur}
				},
			}, nil
		})
	}
	mapErrs := ms.runAll(mapCtx)
	mapSpan.End()
	for _, e := range mapErrs {
		if e != nil {
			return fail(fmt.Errorf("mapreduce: job %q map failed: %w", job.Name, e))
		}
	}
	mapTime := time.Since(mapStart)
	var mapWorkSum, mapTaskMax time.Duration
	for _, r := range results {
		mapWorkSum += r.dur
		if r.dur > mapTaskMax {
			mapTaskMax = r.dur
		}
	}

	// ---- Shuffle ----
	// Map tasks already bucketed their pairs by reducer, so the merge is
	// embarrassingly parallel: one goroutine per reducer concatenates that
	// reducer's shard from every task, in task order (which keeps the
	// grouped value order identical to the old sequential loop). The totals
	// come from the per-task sums recorded in the map phase — the same
	// numbers already merged into the task counters — rather than a second
	// walk over every pair.
	shuffleStart := time.Now()
	_, shReq := obs.StartSpan(ctx, "phase.shuffle")
	shSpan := rj.trace.Start("shuffle", obs.PhaseShuffle, root.ID, -1)
	groups := make([]map[string][]string, numRed)
	var swg sync.WaitGroup
	if rem == nil {
		for ri := 0; ri < numRed; ri++ {
			swg.Add(1)
			go func(ri int) {
				defer swg.Done()
				// Merge work is bounded and must complete even when ctx is
				// cancelled (the job fails later with complete state), so the
				// acquire does not take the job context.
				_ = c.slots.Acquire(context.Background())
				defer c.slots.Release()
				g := make(map[string][]string)
				for _, r := range results {
					if ri >= len(r.shards) {
						continue // task emitted nothing
					}
					for _, p := range r.shards[ri] {
						g[p.Key] = append(g[p.Key], p.Value)
					}
				}
				groups[ri] = g
			}(ri)
		}
	}
	// Under remote execution the map shards never pass through the master:
	// they sit spilled on the workers (or in the master shard store) and
	// each reducer fetches its shard directly from every holder. The
	// shuffle span still records the job-wide totals.
	var directOut []string
	var shufflePairs, shuffleBytes int64
	for _, r := range results {
		directOut = append(directOut, r.out...)
		shufflePairs += r.pairs
		shuffleBytes += r.bytes
	}
	swg.Wait()
	shSpan.RecordsIn = shufflePairs
	shSpan.Bytes = shuffleBytes
	shSpan.Finish(obs.OutcomeOK)
	shReq.SetAttr("bytes", fmt.Sprint(shuffleBytes))
	shReq.End()
	shuffleTime := time.Since(shuffleStart)

	// ---- Reduce phase ----
	reduceStart := time.Now()
	reduceOut := make([][]string, numRed)
	reduceDur := make([]time.Duration, numRed)
	if job.Reduce != nil {
		redCtx, redSpan := obs.StartSpan(ctx, "phase.reduce")
		redSpan.SetAttr("tasks", fmt.Sprint(numRed))
		rs := newSched(c, rj, obs.PhaseReduce, root.ID, pol, CounterRetryReduce)
		for ri := 0; ri < numRed; ri++ {
			ri := ri
			rs.addTask(ri, fmt.Sprintf("reduce-%d", ri), "", nil, func(attempt int) (attemptOut, error) {
				var out []string
				var valuesIn int64
				var tm *obs.TaskMetrics
				var err error
				if rem != nil {
					var res remoteReduceResult
					res, err = rem.reduceAttempt(ri, attempt)
					out, valuesIn, tm = res.out, res.recordsIn, res.tm
				} else {
					out, valuesIn, tm, err = runReduceAttempt(rj, groups[ri], attempt)
				}
				if err != nil {
					return attemptOut{}, err
				}
				return attemptOut{
					recordsIn:  valuesIn,
					recordsOut: int64(len(out)),
					apply: func(dur time.Duration) {
						tm.Observe(HistReduceTaskDurationUS, float64(dur.Microseconds()))
						rj.reg.Merge(tm)
						reduceOut[ri] = out
						reduceDur[ri] = dur
					},
				}, nil
			})
		}
		redErrs := rs.runAll(redCtx)
		redSpan.End()
		for _, e := range redErrs {
			if e != nil {
				return fail(fmt.Errorf("mapreduce: job %q reduce failed: %w", job.Name, e))
			}
		}
	}
	reduceTime := time.Since(reduceStart)
	var reduceWorkSum, reduceTaskMax time.Duration
	for _, d := range reduceDur {
		reduceWorkSum += d
		if d > reduceTaskMax {
			reduceTaskMax = d
		}
	}

	// ---- Output + commit ----
	// The commit step (final output write plus the job's Commit hook) runs
	// under the same retry policy as tasks. Every attempt rewrites the
	// output file from scratch (CreateOrReplace truncates), so a retried
	// commit never duplicates records, and every attempt's span is
	// finished on every path — success, retry and failure alike.
	commitStart := time.Now()
	_, commitReq := obs.StartSpan(ctx, "phase.commit")
	var outCount int64
	injector := c.Injector()
	var commitErr error
	for attempt := 0; ; attempt++ {
		cSpan := rj.trace.Start("commit", obs.PhaseCommit, root.ID, -1)
		cSpan.Attempt = attempt
		outCount = 0
		err := c.attemptCommit(injector, job, directOut, reduceOut, attempt, &outCount)
		if err == nil {
			cSpan.RecordsOut = outCount
			cSpan.Finish(obs.OutcomeOK)
			break
		}
		if pol.ShouldRetry(err, attempt) && ctx.Err() == nil {
			cSpan.Finish(obs.OutcomeRetry)
			rj.reg.Inc(CounterTaskRetries, 1)
			rj.reg.Inc(CounterRetryCommit, 1)
			var seed int64
			if injector != nil {
				seed = injector.Plan().Seed
			}
			if d := pol.Backoff(seed, obs.PhaseCommit, 0, attempt); d > 0 {
				time.Sleep(d)
			}
			continue
		}
		cSpan.Finish(obs.OutcomeFailed)
		commitErr = err
		break
	}
	commitReq.End()
	if commitErr != nil {
		return fail(fmt.Errorf("mapreduce: job %q commit failed: %w", job.Name, commitErr))
	}
	rj.reg.Inc(CounterOutputRecords, outCount)
	commitTime := time.Since(commitStart)
	root.RecordsOut = outCount
	root.Finish(obs.OutcomeOK)

	snap := rj.reg.Snapshot()
	return &Report{
		Job:         job.Name,
		Splits:      len(splits),
		SplitsTotal: total,
		MapTasks:    len(splits),
		ReduceTasks: numRed,
		Counters:    snap.Counters,
		MapTime:     mapTime,
		ShuffleTime: shuffleTime,
		ReduceTime:  reduceTime,
		CommitTime:  commitTime,
		Total:       time.Since(start),
		OutputFile:  job.Output,
		OutputCount: outCount,
		WorkersUsed: c.workers,

		MapWorkSum:    mapWorkSum,
		MapTaskMax:    mapTaskMax,
		ReduceWorkSum: reduceWorkSum,
		ReduceTaskMax: reduceTaskMax,

		Metrics: snap,
		Trace:   rj.trace,
	}, nil
}

// attemptCommit runs one attempt of the commit step: it (re)creates the
// output file, writes the buffered map/reduce output and runs the job's
// Commit hook. The injector may fail the attempt before any write.
func (c *Cluster) attemptCommit(in *fault.Injector, job *Job, directOut []string, reduceOut [][]string, attempt int, outCount *int64) error {
	if in != nil {
		switch in.Decide(fault.PhaseCommit, 0, attempt).Kind {
		case fault.KindTransient:
			return &fault.InjectedError{Phase: fault.PhaseCommit, Task: 0, Attempt: attempt}
		case fault.KindPermanent:
			return &fault.InjectedError{Phase: fault.PhaseCommit, Task: 0, Attempt: attempt, Permanent: true}
		}
	}
	w, err := c.fs.CreateOrReplace(job.Output)
	if err != nil {
		return err
	}
	writeRec := func(rec string) {
		w.WriteRecord(rec)
		*outCount++
	}
	for _, rec := range directOut {
		writeRec(rec)
	}
	for _, part := range reduceOut {
		for _, rec := range part {
			writeRec(rec)
		}
	}
	if job.Commit != nil {
		if err := job.Commit(c, writeRec); err != nil {
			return err
		}
	}
	return w.Close()
}

// runMapAttempt executes one map attempt, applying the combiner to its
// output, and returns the task's emitted pairs bucketed by reducer shard.
// The attempt's metrics stay in the returned TaskMetrics buffer; the
// caller merges it into the job registry only on success, so a failed
// attempt's counts (including the combiner re-run) are discarded with it.
// Block checksums are verified before any record is decoded; a mismatch
// fails the attempt with the retryable dfs checksum error. It is a free
// function of the runningJob (not a Cluster method) because remote
// workers run it too, against a runningJob rebuilt from the job kind.
func runMapAttempt(rj *runningJob, split *Split, attempt int) ([][]Pair, []string, *obs.TaskMetrics, error) {
	for _, group := range [][]*dfs.Block{split.Blocks, split.Extra} {
		for _, b := range group {
			if err := b.VerifyCached(); err != nil {
				rj.reg.Inc(CounterChecksumFailures, 1)
				return nil, nil, nil, err
			}
		}
	}
	tm := obs.NewTaskMetrics()
	ctx := &TaskContext{job: rj, split: split, metrics: tm, nshards: rj.nshards, attempt: attempt}
	tm.Inc(CounterMapRecordsIn, int64(split.NumRecords()))
	if err := rj.job.Map(ctx, split); err != nil {
		return nil, nil, nil, err
	}
	shards := ctx.shards
	if rj.job.Combine != nil && ctx.numEmitted() > 0 {
		// Combine shard by shard: all occurrences of a key live in one
		// shard, so per-shard grouping sees every value of the key, and the
		// combiner's own emits re-bucket to the same shard.
		cctx := &TaskContext{job: rj, split: split, metrics: tm, nshards: rj.nshards, attempt: attempt}
		for _, shard := range shards {
			if len(shard) == 0 {
				continue
			}
			grouped := make(map[string][]string)
			order := make([]string, 0)
			for _, p := range shard {
				if _, ok := grouped[p.Key]; !ok {
					order = append(order, p.Key)
				}
				grouped[p.Key] = append(grouped[p.Key], p.Value)
			}
			for _, k := range order {
				if err := rj.job.Combine(cctx, k, grouped[k]); err != nil {
					return nil, nil, nil, err
				}
			}
		}
		// Direct writes from the combiner join the map task's output.
		ctx.out = append(ctx.out, cctx.out...)
		shards = cctx.shards
	}
	emitted := 0
	for _, shard := range shards {
		emitted += len(shard)
	}
	tm.Inc(CounterMapRecordsOut, int64(emitted))
	return shards, ctx.out, tm, nil
}

// partitionOf hashes a key to a reducer index with an inlined FNV-1a loop.
// The stdlib hash/fnv equivalent allocates a fresh hasher per call, which
// showed up as the top allocation site of shuffle-heavy jobs; the inline
// loop produces bit-identical hashes (pinned by TestPartitionOfStability)
// with zero allocations.
func partitionOf(key string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// MakeSplits builds the default (unfiltered) splits for the input files:
// one split per partition for indexed files, one split per block for heap
// files. When a file carries a master index attachment, each partition
// split gets the real cell boundary and content MBR from the global index,
// so filter functions can prune even on the default split path.
func (c *Cluster) MakeSplits(inputs []string) ([]*Split, error) {
	var splits []*Split
	for _, name := range inputs {
		f, err := c.fs.Open(name)
		if err != nil {
			return nil, err
		}
		var gi *sindex.GlobalIndex
		if len(f.Master) > 0 {
			if g, derr := sindex.Decode(f.Master); derr == nil {
				gi = g
			}
		}
		byPart := make(map[string][]*dfs.Block)
		var order []string
		for _, b := range f.Blocks {
			if _, ok := byPart[b.Partition]; !ok {
				order = append(order, b.Partition)
			}
			byPart[b.Partition] = append(byPart[b.Partition], b)
		}
		if len(order) == 1 && order[0] == "" {
			// Heap file: one split per block.
			for _, b := range f.Blocks {
				splits = append(splits, &Split{MBR: geom.WorldRect(), Blocks: []*dfs.Block{b}})
			}
			continue
		}
		for _, key := range order {
			s := &Split{Partition: key, MBR: geom.WorldRect(), Blocks: byPart[key]}
			if gi != nil {
				if cell, ok := gi.CellByKey(key); ok {
					s.MBR = cell.Boundary
					s.ContentMBR = cell.Content
				}
			}
			splits = append(splits, s)
		}
	}
	return splits, nil
}
